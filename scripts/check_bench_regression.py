#!/usr/bin/env python3
"""Bench regression gate: diff a fresh bench_micro --json run against the
checked-in baseline(s) instead of only archiving it.

Speedup ratios (new path vs in-tree reference path) are compared for
every result key the current run shares with the baselines; absolute
ns/op is machine-dependent and deliberately ignored. When several
baselines record the same key, the MOST RECENT one (last on the
command line / highest-numbered default) wins: it was measured on the
machine class closest to the current run, while older files document
the trajectory. A key regresses when its current speedup falls more
than --tolerance (default 15%) below the winning baseline's recorded
speedup.

Usage:
  check_bench_regression.py CURRENT.json [BASELINE.json ...]
      [--tolerance 0.15]
With no baselines given, the checked-in BENCH_pr2.json through
BENCH_pr10.json next to this script's repo root are used.
Exit code 1 on any regression.
"""

import argparse
import json
import os
import sys

DEFAULT_BASELINES = ["BENCH_pr2.json", "BENCH_pr3.json", "BENCH_pr4.json",
                     "BENCH_pr5.json", "BENCH_pr6.json", "BENCH_pr7.json",
                     "BENCH_pr8.json", "BENCH_pr9.json", "BENCH_pr10.json"]


def load_results(path):
    with open(path) as f:
        doc = json.load(f)
    return doc.get("results", {})


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("current")
    parser.add_argument("baselines", nargs="*")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed fractional speedup drop (default 0.15)")
    args = parser.parse_args()
    if not args.baselines:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        args.baselines = [os.path.join(root, name) for name in DEFAULT_BASELINES
                          if os.path.exists(os.path.join(root, name))]

    current = load_results(args.current)
    if not current:
        print(f"error: no results in {args.current}")
        return 1

    # Later baselines override earlier ones per key: the newest recorded
    # speedup is the live expectation, older files are history.
    expected = {}
    for baseline_path in args.baselines:
        for key, row in load_results(baseline_path).items():
            if row.get("speedup"):
                expected[key] = (row["speedup"], baseline_path)

    failures = []
    compared = 0
    for key in sorted(set(current) & set(expected)):
        cur_speedup = current[key].get("speedup")
        if not cur_speedup:
            continue
        base_speedup, baseline_path = expected[key]
        compared += 1
        floor = base_speedup * (1.0 - args.tolerance)
        status = "ok" if cur_speedup >= floor else "REGRESSED"
        print(f"{key:40s} baseline {base_speedup:6.2f}x  "
              f"current {cur_speedup:6.2f}x  floor {floor:6.2f}x  {status}"
              f"  [{baseline_path}]")
        if cur_speedup < floor:
            failures.append(key)

    if compared == 0:
        print("error: no comparable result keys between current run and baselines")
        return 1
    if failures:
        print(f"\n{len(failures)} bench regression(s): {', '.join(failures)}")
        return 1
    print(f"\nall {compared} compared benches within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
