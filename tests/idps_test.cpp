// Tests for the IDPS substrate: Aho-Corasick matching, Snort rule
// parsing, and the combined engine.
#include <gtest/gtest.h>

#include "idps/aho_corasick.hpp"
#include "idps/engine.hpp"
#include "idps/snort_rules.hpp"

namespace endbox::idps {
namespace {

using net::Ipv4;
using net::Packet;

// ---- Aho-Corasick -------------------------------------------------------

TEST(AhoCorasick, FindsSinglePattern) {
  AhoCorasick ac;
  ac.add_pattern(to_bytes("needle"), 1);
  ac.build();
  EXPECT_TRUE(ac.contains_any(to_bytes("hay needle stack")));
  EXPECT_FALSE(ac.contains_any(to_bytes("hay stack")));
}

TEST(AhoCorasick, ClassicOverlappingPatterns) {
  // The canonical example from the 1975 paper: {he, she, his, hers}.
  AhoCorasick ac;
  ac.add_pattern(to_bytes("he"), 0);
  ac.add_pattern(to_bytes("she"), 1);
  ac.add_pattern(to_bytes("his"), 2);
  ac.add_pattern(to_bytes("hers"), 3);
  ac.build();
  auto matches = ac.match(to_bytes("ushers"));
  // "ushers" contains she (ends 4), he (ends 4), hers (ends 6).
  ASSERT_EQ(matches.size(), 3u);
  std::vector<int> ids;
  for (auto& m : matches) ids.push_back(m.pattern_id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<int>{0, 1, 3}));
}

TEST(AhoCorasick, ReportsEndOffsets) {
  AhoCorasick ac;
  ac.add_pattern(to_bytes("ab"), 7);
  ac.build();
  auto matches = ac.match(to_bytes("abxxab"));
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].end_offset, 2u);
  EXPECT_EQ(matches[1].end_offset, 6u);
}

TEST(AhoCorasick, PatternIsSubstringOfAnother) {
  AhoCorasick ac;
  ac.add_pattern(to_bytes("abc"), 1);
  ac.add_pattern(to_bytes("b"), 2);
  ac.build();
  auto matches = ac.match(to_bytes("abc"));
  ASSERT_EQ(matches.size(), 2u);  // both "b" and "abc"
}

TEST(AhoCorasick, RepeatedAndSelfOverlappingPattern) {
  AhoCorasick ac;
  ac.add_pattern(to_bytes("aa"), 1);
  ac.build();
  auto matches = ac.match(to_bytes("aaaa"));
  EXPECT_EQ(matches.size(), 3u);  // positions 2,3,4
}

TEST(AhoCorasick, BinaryPatterns) {
  AhoCorasick ac;
  Bytes pattern = {0x90, 0x90, 0x90, 0xcc};
  ac.add_pattern(pattern, 42);
  ac.build();
  Bytes haystack(100, 0);
  std::copy(pattern.begin(), pattern.end(), haystack.begin() + 50);
  auto matches = ac.match(haystack);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].pattern_id, 42);
  EXPECT_EQ(matches[0].end_offset, 54u);
}

TEST(AhoCorasick, EmptyTextAndNoPatterns) {
  AhoCorasick ac;
  ac.build();
  EXPECT_FALSE(ac.contains_any(to_bytes("anything")));
  AhoCorasick ac2;
  ac2.add_pattern(to_bytes("x"), 1);
  ac2.build();
  EXPECT_TRUE(ac2.match({}).empty());
}

TEST(AhoCorasick, EmptyPatternIgnored) {
  AhoCorasick ac;
  ac.add_pattern({}, 1);
  ac.add_pattern(to_bytes("real"), 2);
  ac.build();
  EXPECT_EQ(ac.pattern_count(), 1u);
}

TEST(AhoCorasick, AddAfterBuildThrows) {
  AhoCorasick ac;
  ac.build();
  EXPECT_THROW(ac.add_pattern(to_bytes("x"), 1), std::logic_error);
}

TEST(AhoCorasick, MatchMultiAgreesWithPerTextMatch) {
  // Property: the interleaved multi-stream walk reports, per stream,
  // exactly the matches (ids, offsets, order) of a solo match() over
  // that stream — across mixed lengths, empty texts and >16 streams
  // (several lane groups).
  Rng rng(0xac);
  AhoCorasick automaton;
  auto rules = generate_community_ruleset(53, rng);
  int id = 0;
  for (const auto& rule : rules)
    for (const auto& content : rule.contents) automaton.add_pattern(content.bytes, id++);
  automaton.add_pattern(to_bytes("xyz"), id++);
  automaton.add_pattern(to_bytes("yzx"), id++);
  automaton.build();

  std::vector<Bytes> texts;
  for (std::size_t k = 0; k < 41; ++k) {
    Bytes text = rng.bytes(k * 37 % 600);
    // Sprinkle known patterns so matches actually occur.
    if (text.size() > 8 && k % 3 == 0) {
      Bytes evil = to_bytes("xyzxyz");
      std::copy(evil.begin(), evil.end(), text.begin() + 2);
    }
    texts.push_back(std::move(text));
  }
  texts.emplace_back();  // empty stream

  std::vector<ByteView> views(texts.begin(), texts.end());
  std::vector<std::vector<AcMatch>> multi(views.size());
  std::size_t total = automaton.match_multi(views, [&](std::size_t s, const AcMatch& m) {
    multi[s].push_back(m);
    return true;
  });

  std::size_t expected_total = 0;
  for (std::size_t s = 0; s < texts.size(); ++s) {
    auto solo = automaton.match(texts[s]);
    expected_total += solo.size();
    ASSERT_EQ(multi[s].size(), solo.size()) << "stream " << s;
    for (std::size_t k = 0; k < solo.size(); ++k) {
      EXPECT_EQ(multi[s][k].pattern_id, solo[k].pattern_id);
      EXPECT_EQ(multi[s][k].end_offset, solo[k].end_offset);
    }
  }
  EXPECT_EQ(total, expected_total);
  EXPECT_GT(total, 0u);
}

TEST(IdpsEngine, InspectBatchAgreesWithPerPacketInspect) {
  Rng rng(0xeb);
  IdpsEngine a(generate_community_ruleset(61, rng));
  Rng rng2(0xeb);
  IdpsEngine b(generate_community_ruleset(61, rng2));

  std::vector<Packet> packets;
  for (std::size_t k = 0; k < 40; ++k) {
    Packet p = Packet::udp(Ipv4(10, 8, 0, 2), Ipv4(10, 0, 0, 1),
                           static_cast<std::uint16_t>(1000 + k), 80,
                           rng.bytes(30 + k * 13 % 400));
    packets.push_back(std::move(p));
  }

  std::vector<IdpsVerdict> single;
  for (const Packet& p : packets) single.push_back(a.inspect(p));

  std::vector<const Packet*> ptrs;
  std::vector<ByteView> payloads;
  for (const Packet& p : packets) {
    ptrs.push_back(&p);
    payloads.push_back(p.payload);
  }
  std::vector<IdpsVerdict> batch(packets.size());
  IdpsEngine::BatchScratch scratch;
  b.inspect_batch(ptrs, payloads, scratch, batch.data());

  for (std::size_t k = 0; k < packets.size(); ++k) {
    EXPECT_EQ(batch[k].matched, single[k].matched) << k;
    EXPECT_EQ(batch[k].drop, single[k].drop) << k;
    EXPECT_EQ(batch[k].sid, single[k].sid) << k;
  }
  EXPECT_EQ(a.packets_inspected(), b.packets_inspected());
  EXPECT_EQ(a.alerts(), b.alerts());
  EXPECT_EQ(a.drops(), b.drops());
}

TEST(AhoCorasick, EarlyExitStopsMatching) {
  AhoCorasick ac;
  ac.add_pattern(to_bytes("a"), 1);
  ac.build();
  int seen = 0;
  ac.match(to_bytes("aaaaa"), [&](const AcMatch&) { return ++seen < 2; });
  EXPECT_EQ(seen, 2);
}

TEST(AhoCorasick, ManyPatternsStress) {
  AhoCorasick ac;
  for (int i = 0; i < 500; ++i) ac.add_pattern(to_bytes("pat" + std::to_string(i) + "x"), i);
  ac.build();
  EXPECT_EQ(ac.pattern_count(), 500u);
  EXPECT_TRUE(ac.contains_any(to_bytes("zzzpat123xzzz")));
  EXPECT_FALSE(ac.contains_any(to_bytes("pat123")));  // missing trailing x
}

// ---- Snort rule parsing -----------------------------------------------

TEST(SnortRules, ParsesFullRule) {
  auto rule = parse_snort_rule(
      R"(alert tcp $EXTERNAL_NET any -> $HOME_NET 80 (msg:"WEB attack"; content:"/bin/sh"; sid:1001;))");
  ASSERT_TRUE(rule.ok()) << rule.error();
  EXPECT_EQ(rule->action, RuleAction::Alert);
  EXPECT_EQ(*rule->proto, net::IpProto::Tcp);
  EXPECT_TRUE(rule->src.any);
  EXPECT_FALSE(rule->dst.any);
  EXPECT_EQ(rule->dst.prefix, 8u);
  EXPECT_EQ(rule->dst_port.port, 80);
  EXPECT_EQ(rule->msg, "WEB attack");
  ASSERT_EQ(rule->contents.size(), 1u);
  EXPECT_EQ(to_string(rule->contents[0].bytes), "/bin/sh");
  EXPECT_EQ(rule->sid, 1001u);
}

TEST(SnortRules, HexContentDecoding) {
  auto rule = parse_snort_rule(
      R"(alert tcp any any -> any any (content:"AB|00 01|CD"; sid:7;))");
  ASSERT_TRUE(rule.ok()) << rule.error();
  Bytes expected = {'A', 'B', 0x00, 0x01, 'C', 'D'};
  EXPECT_EQ(rule->contents[0].bytes, expected);
}

TEST(SnortRules, NocaseAndMultipleContents) {
  auto rule = parse_snort_rule(
      R"(drop udp any any -> any 53 (content:"evil"; nocase; content:"dns"; sid:9;))");
  ASSERT_TRUE(rule.ok()) << rule.error();
  EXPECT_EQ(rule->action, RuleAction::Drop);
  ASSERT_EQ(rule->contents.size(), 2u);
  EXPECT_TRUE(rule->contents[0].nocase);
  EXPECT_FALSE(rule->contents[1].nocase);
}

TEST(SnortRules, NegatedAddress) {
  auto rule = parse_snort_rule(
      R"(alert ip !10.0.0.0/8 any -> any any (content:"x"; sid:3;))");
  ASSERT_TRUE(rule.ok()) << rule.error();
  EXPECT_TRUE(rule->src.negated);
  EXPECT_TRUE(rule->src.matches(Ipv4(8, 8, 8, 8)));
  EXPECT_FALSE(rule->src.matches(Ipv4(10, 1, 2, 3)));
}

TEST(SnortRules, RejectsMalformed) {
  EXPECT_FALSE(parse_snort_rule("alert tcp any any -> any any").ok());   // no options
  EXPECT_FALSE(parse_snort_rule("alert tcp any -> any (sid:1;)").ok());  // short header
  EXPECT_FALSE(parse_snort_rule(
      "alert tcp any any -> any any (content:\"x\";)").ok());            // no sid
  EXPECT_FALSE(parse_snort_rule(
      "zap tcp any any -> any any (sid:1;)").ok());                      // bad action
  EXPECT_FALSE(parse_snort_rule(
      "alert tcp any any -> any any (content:\"|zz|\"; sid:1;)").ok());  // bad hex
  EXPECT_FALSE(parse_snort_rule(
      "alert tcp any any -> any any (nocase; sid:1;)").ok());            // dangling nocase
}

TEST(SnortRules, RulesetParsingSkipsCommentsAndBlanks) {
  auto rules = parse_snort_ruleset(
      "# community rules\n"
      "\n"
      "alert tcp any any -> any 80 (content:\"attack\"; sid:1;)\n"
      "alert udp any any -> any 53 (content:\"tunnel\"; sid:2;)\n");
  ASSERT_TRUE(rules.ok()) << rules.error();
  EXPECT_EQ(rules->size(), 2u);
}

TEST(SnortRules, RulesetReportsErrorLine) {
  auto rules = parse_snort_ruleset(
      "alert tcp any any -> any 80 (content:\"ok\"; sid:1;)\n"
      "garbage here\n");
  ASSERT_FALSE(rules.ok());
  EXPECT_NE(rules.error().find("line 2"), std::string::npos);
}

TEST(SnortRules, FormatRoundTrip) {
  Rng rng(1);
  auto rules = generate_community_ruleset(50, rng);
  for (const auto& rule : rules) {
    auto text = format_snort_rule(rule);
    auto back = parse_snort_rule(text);
    ASSERT_TRUE(back.ok()) << back.error() << "\n  rule: " << text;
    EXPECT_EQ(back->sid, rule.sid);
    ASSERT_EQ(back->contents.size(), rule.contents.size());
    for (std::size_t i = 0; i < rule.contents.size(); ++i)
      EXPECT_EQ(back->contents[i].bytes, rule.contents[i].bytes);
  }
}

TEST(SnortRules, GeneratorIsDeterministicAndSized) {
  Rng a(5), b(5);
  auto ra = generate_community_ruleset(377, a);
  auto rb = generate_community_ruleset(377, b);
  ASSERT_EQ(ra.size(), 377u);
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].sid, rb[i].sid);
    EXPECT_EQ(ra[i].contents[0].bytes, rb[i].contents[0].bytes);
  }
}

// ---- Engine ----------------------------------------------------------

SnortRule simple_rule(std::uint32_t sid, const std::string& content,
                      RuleAction action = RuleAction::Alert) {
  SnortRule rule;
  rule.action = action;
  rule.proto = net::IpProto::Udp;
  rule.contents.push_back({to_bytes(content), false});
  rule.sid = sid;
  return rule;
}

Packet udp_payload(const std::string& payload, std::uint16_t dport = 80) {
  return Packet::udp(Ipv4(10, 8, 0, 2), Ipv4(10, 0, 0, 1), 5555, dport,
                     to_bytes(payload));
}

TEST(Engine, AlertsOnContentMatch) {
  IdpsEngine engine({simple_rule(100, "exploit")});
  auto verdict = engine.inspect(udp_payload("this is an exploit attempt"));
  EXPECT_TRUE(verdict.matched);
  EXPECT_FALSE(verdict.drop);
  EXPECT_EQ(verdict.sid, 100u);
  EXPECT_EQ(engine.alerts(), 1u);
}

TEST(Engine, DropRuleSetsDrop) {
  IdpsEngine engine({simple_rule(5, "malware", RuleAction::Drop)});
  auto verdict = engine.inspect(udp_payload("malware inside"));
  EXPECT_TRUE(verdict.drop);
  EXPECT_EQ(engine.drops(), 1u);
}

TEST(Engine, NoMatchOnCleanTraffic) {
  IdpsEngine engine({simple_rule(5, "malware")});
  auto verdict = engine.inspect(udp_payload("completely benign data"));
  EXPECT_FALSE(verdict.matched);
  EXPECT_EQ(engine.alerts(), 0u);
}

TEST(Engine, AllContentsMustMatch) {
  SnortRule rule = simple_rule(8, "alpha");
  rule.contents.push_back({to_bytes("beta"), false});
  IdpsEngine engine({rule});
  EXPECT_FALSE(engine.inspect(udp_payload("alpha only")).matched);
  EXPECT_FALSE(engine.inspect(udp_payload("beta only")).matched);
  EXPECT_TRUE(engine.inspect(udp_payload("alpha and beta")).matched);
}

TEST(Engine, HeaderConstraintsGateContentMatches) {
  SnortRule rule = simple_rule(9, "ssh");
  rule.dst_port.any = false;
  rule.dst_port.port = 22;
  IdpsEngine engine({rule});
  EXPECT_TRUE(engine.inspect(udp_payload("ssh probe", 22)).matched);
  EXPECT_FALSE(engine.inspect(udp_payload("ssh probe", 80)).matched);
}

TEST(Engine, ProtocolGate) {
  SnortRule rule = simple_rule(10, "data");
  rule.proto = net::IpProto::Tcp;
  IdpsEngine engine({rule});
  EXPECT_FALSE(engine.inspect(udp_payload("data")).matched);
  Packet tcp = Packet::tcp(Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 1, 2, 0, 0, 0,
                           to_bytes("data"));
  EXPECT_TRUE(engine.inspect(tcp).matched);
}

TEST(Engine, NocaseMatchesAnyCase) {
  SnortRule rule = simple_rule(11, "");
  rule.contents = {{to_bytes("attack"), true}};
  IdpsEngine engine({rule});
  EXPECT_TRUE(engine.inspect(udp_payload("ATTACK vector")).matched);
  EXPECT_TRUE(engine.inspect(udp_payload("AtTaCk vector")).matched);
}

TEST(Engine, CaseSensitiveDoesNotMatchWrongCase) {
  IdpsEngine engine({simple_rule(12, "attack")});
  EXPECT_FALSE(engine.inspect(udp_payload("ATTACK vector")).matched);
  EXPECT_TRUE(engine.inspect(udp_payload("attack vector")).matched);
}

TEST(Engine, FirstMatchingSidReported) {
  IdpsEngine engine({simple_rule(1, "foo"), simple_rule(2, "bar")});
  auto verdict = engine.inspect(udp_payload("xx bar yy"));
  EXPECT_EQ(verdict.sid, 2u);
}

TEST(Engine, CommunityRulesetCleanTrafficNoAlerts) {
  // Reproduces the evaluation property: the 377-rule community subset
  // fires on none of the generated benign packets.
  Rng rng(7);
  IdpsEngine engine(generate_community_ruleset(377, rng));
  EXPECT_EQ(engine.rule_count(), 377u);
  Rng traffic(8);
  for (int i = 0; i < 200; ++i) {
    Bytes payload(1400);
    for (auto& b : payload)
      b = static_cast<std::uint8_t>('a' + traffic.uniform(0, 25));
    auto verdict = engine.inspect(
        Packet::udp(Ipv4(10, 8, 0, 2), Ipv4(10, 0, 0, 1), 5555, 5001, payload));
    ASSERT_FALSE(verdict.matched) << "rule fired on benign payload, sid=" << verdict.sid;
  }
  EXPECT_EQ(engine.packets_inspected(), 200u);
}

TEST(Engine, CommunityRulesetDetectsPlantedPattern) {
  Rng rng(7);
  auto rules = generate_community_ruleset(377, rng);
  IdpsEngine engine(rules);
  // Plant the first rule's content into an otherwise benign payload.
  Bytes payload = to_bytes("benign prefix ");
  append(payload, rules[0].contents.size() == 1 ? rules[0].contents[0].bytes
                                                : rules[0].contents[0].bytes);
  Packet p = Packet::udp(Ipv4(1, 2, 3, 4), Ipv4(5, 6, 7, 8), 1, 1, payload);
  if (rules[0].contents.size() == 1 && !rules[0].dst_port.any)
    p.dst_port = rules[0].dst_port.port;
  if (rules[0].contents.size() == 1 && rules[0].proto)
    p.proto = *rules[0].proto;
  // Only assert when the rule is single-content and proto/port line up.
  if (rules[0].contents.size() == 1) {
    auto verdict = engine.inspect(p);
    EXPECT_TRUE(verdict.matched);
    EXPECT_EQ(verdict.sid, rules[0].sid);
  }
}

}  // namespace
}  // namespace endbox::idps
