// Tests for the CA / key-management flow (Fig 4): provisioning,
// certificate verification, rejection paths.
#include <gtest/gtest.h>

#include "ca/authority.hpp"
#include "sgx/enclave.hpp"
#include "sgx/platform.hpp"

namespace endbox::ca {
namespace {

struct ClientEnclave : sgx::Enclave {
  using Enclave::Enclave;
};

struct Fixture : ::testing::Test {
  Rng rng{21};
  sim::Clock clock;
  sgx::AttestationService ias{rng};
  CertificateAuthority authority{rng, ias};
  sgx::SgxPlatform platform{"client-1", rng, clock};
  ClientEnclave enclave{platform, "endbox-v1", sgx::SgxMode::Hardware};
  crypto::RsaKeyPair enclave_key = crypto::rsa_generate(rng);

  Fixture() {
    ias.register_platform("client-1", platform.attestation_key().pub);
    authority.allow_measurement(enclave.measurement());
  }

  Bytes make_quote(const crypto::RsaPublicKey& key_to_bind) {
    sgx::QuotingEnclave qe(platform);
    auto report = enclave.create_report(sgx::bind_report_data(key_to_bind.serialize()));
    auto quote = qe.quote(report);
    EXPECT_TRUE(quote.ok());
    return quote->serialize();
  }
};

TEST_F(Fixture, ProvisioningHappyPath) {
  auto response = authority.provision(make_quote(enclave_key.pub), enclave_key.pub);
  ASSERT_TRUE(response.ok()) << response.error();
  EXPECT_TRUE(response->certificate.verify(authority.public_key()));
  EXPECT_EQ(response->certificate.subject_key, enclave_key.pub);
  EXPECT_EQ(response->certificate.mrenclave, enclave.measurement());
  EXPECT_EQ(response->certificate.serial, 1u);
  // The config key decrypts only with the enclave private key.
  EXPECT_EQ(crypto::rsa_decrypt(enclave_key, response->encrypted_config_key),
            authority.config_key() % enclave_key.pub.n);
}

TEST_F(Fixture, SerialsIncrease) {
  auto a = authority.provision(make_quote(enclave_key.pub), enclave_key.pub);
  auto key2 = crypto::rsa_generate(rng);
  auto b = authority.provision(make_quote(key2.pub), key2.pub);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LT(a->certificate.serial, b->certificate.serial);
  EXPECT_EQ(authority.certificates_issued(), 2u);
}

TEST_F(Fixture, RejectsUnknownMeasurement) {
  ClientEnclave rogue(platform, "tampered-endbox", sgx::SgxMode::Hardware);
  sgx::QuotingEnclave qe(platform);
  auto report = rogue.create_report(sgx::bind_report_data(enclave_key.pub.serialize()));
  auto quote = qe.quote(report);
  ASSERT_TRUE(quote.ok());
  auto response = authority.provision(quote->serialize(), enclave_key.pub);
  ASSERT_FALSE(response.ok());
  EXPECT_NE(response.error().find("measurement"), std::string::npos);
}

TEST_F(Fixture, RejectsKeySubstitution) {
  // MITM presents its own key with a quote that binds the enclave's key.
  auto attacker_key = crypto::rsa_generate(rng);
  auto response = authority.provision(make_quote(enclave_key.pub), attacker_key.pub);
  ASSERT_FALSE(response.ok());
  EXPECT_NE(response.error().find("bind"), std::string::npos);
}

TEST_F(Fixture, RejectsUnregisteredPlatform) {
  Rng rng2(99);
  sim::Clock clock2;
  sgx::SgxPlatform rogue_platform("rogue-machine", rng2, clock2);
  ClientEnclave rogue_enclave(rogue_platform, "endbox-v1", sgx::SgxMode::Hardware);
  sgx::QuotingEnclave qe(rogue_platform);
  auto report =
      rogue_enclave.create_report(sgx::bind_report_data(enclave_key.pub.serialize()));
  auto quote = qe.quote(report);
  ASSERT_TRUE(quote.ok());
  EXPECT_FALSE(authority.provision(quote->serialize(), enclave_key.pub).ok());
}

TEST_F(Fixture, RejectsSimulationModeEnclave) {
  ClientEnclave sim_enclave(platform, "endbox-v1", sgx::SgxMode::Simulation);
  sgx::QuotingEnclave qe(platform);
  auto report =
      sim_enclave.create_report(sgx::bind_report_data(enclave_key.pub.serialize()));
  EXPECT_FALSE(qe.quote(report).ok());  // cannot even obtain a quote
}

TEST_F(Fixture, RejectsGarbageQuote) {
  EXPECT_FALSE(authority.provision(Bytes{1, 2, 3}, enclave_key.pub).ok());
}

TEST_F(Fixture, CertificateSerializationRoundTrip) {
  auto response = authority.provision(make_quote(enclave_key.pub), enclave_key.pub);
  ASSERT_TRUE(response.ok());
  auto back = Certificate::deserialize(response->certificate.serialize());
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_TRUE(back->verify(authority.public_key()));
  EXPECT_EQ(back->serial, response->certificate.serial);
}

TEST_F(Fixture, TamperedCertificateFailsVerification) {
  auto response = authority.provision(make_quote(enclave_key.pub), enclave_key.pub);
  ASSERT_TRUE(response.ok());
  Certificate cert = response->certificate;
  cert.serial += 1;  // tamper a signed field
  EXPECT_FALSE(cert.verify(authority.public_key()));
  // Self-signed by a different "CA":
  auto fake_ca = crypto::rsa_generate(rng);
  Certificate forged = response->certificate;
  forged.signature = crypto::rsa_sign(fake_ca, forged.signed_portion());
  EXPECT_FALSE(forged.verify(authority.public_key()));
}

}  // namespace
}  // namespace endbox::ca
