// Focused tests for EndBoxEnclave's ecall surface: provisioning checks,
// sealed-credential restore, config install edge cases, data-path
// guards, EPC accounting.
#include <gtest/gtest.h>

#include "endbox_world.hpp"

namespace endbox {
namespace {

using testing::World;

struct EnclaveFixture : ::testing::Test {
  World world;
  config::ConfigBundle bundle = world.publish(UseCase::Nop);

  EndBoxEnclave& provisioned() {
    auto& client = world.add_client(bundle);
    return client.enclave();
  }
};

TEST_F(EnclaveFixture, ProvisioningRejectsForeignCertificate) {
  sgx::SgxPlatform platform("c1", world.rng, world.clock);
  EndBoxEnclave enclave(platform, sgx::SgxMode::Hardware,
                        world.authority.public_key(), world.rng);
  // Certificate signed by a different CA.
  Rng rng(3);
  sgx::AttestationService other_ias(rng);
  ca::CertificateAuthority other_ca(rng, other_ias);
  auto cert = other_ca.issue_legacy_certificate(enclave.ecall_public_key());
  ca::ProvisioningResponse response;
  response.certificate = *cert;
  response.encrypted_config_key = Bytes(8, 0);
  EXPECT_FALSE(enclave.ecall_store_provisioning(response).ok());
  EXPECT_FALSE(enclave.provisioned());
}

TEST_F(EnclaveFixture, ProvisioningRejectsCertificateForOtherKey) {
  sgx::SgxPlatform platform("c1", world.rng, world.clock);
  EndBoxEnclave enclave(platform, sgx::SgxMode::Hardware,
                        world.authority.public_key(), world.rng);
  auto other_key = crypto::rsa_generate(world.rng);
  auto cert = world.authority.issue_legacy_certificate(other_key.pub);
  ca::ProvisioningResponse response;
  response.certificate = *cert;
  response.encrypted_config_key = Bytes(8, 0);
  auto status = enclave.ecall_store_provisioning(response);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().find("different key"), std::string::npos);
}

TEST_F(EnclaveFixture, SealedCredentialsRejectGarbage) {
  auto& enclave = provisioned();
  EXPECT_FALSE(enclave.ecall_restore_credentials(Bytes{}).ok());
  EXPECT_FALSE(enclave.ecall_restore_credentials(Bytes(64, 0xaa)).ok());
  Bytes sealed = enclave.ecall_sealed_credentials();
  Bytes tampered = sealed;
  tampered[tampered.size() / 2] ^= 1;
  EXPECT_FALSE(enclave.ecall_restore_credentials(tampered).ok());
  // The genuine blob restores.
  EXPECT_TRUE(enclave.ecall_restore_credentials(sealed).ok());
}

TEST_F(EnclaveFixture, SealedCredentialsBoundToPlatform) {
  auto& enclave = provisioned();
  Bytes sealed = enclave.ecall_sealed_credentials();
  // Same code, different machine: unseal must fail (stolen blob).
  sgx::SgxPlatform thief("thief", world.rng, world.clock);
  EndBoxEnclave other(thief, sgx::SgxMode::Hardware, world.authority.public_key(),
                      world.rng);
  EXPECT_FALSE(other.ecall_restore_credentials(sealed).ok());
}

TEST_F(EnclaveFixture, InstallConfigRequiresProvisioning) {
  sgx::SgxPlatform platform("c1", world.rng, world.clock);
  EndBoxEnclave enclave(platform, sgx::SgxMode::Hardware,
                        world.authority.public_key(), world.rng);
  EXPECT_FALSE(enclave.ecall_install_config(bundle).ok());
}

TEST_F(EnclaveFixture, InstallConfigRejectsBrokenGraph) {
  auto& enclave = provisioned();
  auto broken = world.server.publish_config(5, "x :: NoSuchElement;", true, 0, 0);
  ASSERT_TRUE(broken.ok());
  EXPECT_FALSE(enclave.ecall_install_config(*broken).ok());
  // Old router keeps running (atomicity).
  EXPECT_NE(enclave.router(), nullptr);
  EXPECT_EQ(enclave.config_version(), 2u);
}

TEST_F(EnclaveFixture, EpcAccountingTracksConfigs) {
  auto& enclave = provisioned();
  std::size_t small_epc = enclave.epc_used();
  EXPECT_GT(small_epc, 0u);
  auto big = world.server.publish_config(5, use_case_config(UseCase::Ddos), true, 0, 0);
  ASSERT_TRUE(big.ok());
  ASSERT_TRUE(enclave.ecall_install_config(*big).ok());
  EXPECT_GT(enclave.epc_used(), small_epc);  // bigger graph, more trusted heap
  EXPECT_FALSE(enclave.epc_over_limit());
}

TEST_F(EnclaveFixture, HandshakeBeforeProvisioningFails) {
  sgx::SgxPlatform platform("c1", world.rng, world.clock);
  EndBoxEnclave enclave(platform, sgx::SgxMode::Hardware,
                        world.authority.public_key(), world.rng);
  EXPECT_FALSE(enclave.ecall_handshake_init(world.server.public_key()).ok());
}

TEST_F(EnclaveFixture, DataPathGuardsWhenNotConnected) {
  sgx::SgxPlatform platform("c1", world.rng, world.clock);
  EndBoxEnclave enclave(platform, sgx::SgxMode::Hardware,
                        world.authority.public_key(), world.rng);
  EXPECT_FALSE(enclave.ecall_process_egress(world.benign_packet()).ok());
  EXPECT_FALSE(enclave.ecall_process_ingress(Bytes(32, 0)).ok());
  EXPECT_FALSE(enclave.ecall_create_ping().ok());
  EXPECT_FALSE(enclave.ecall_handle_ping(Bytes(32, 0)).ok());
}

TEST_F(EnclaveFixture, PingOnDataPathRejected) {
  auto& client = world.add_client(bundle);
  // A ping message fed into the data-ingress ecall is refused (strict
  // interface separation, section IV-B).
  Bytes ping = world.server.create_ping(1);
  EXPECT_FALSE(client.enclave().ecall_process_ingress(ping).ok());
}

TEST_F(EnclaveFixture, DecryptedPayloadNeverLeavesEnclave) {
  // Even if an element attaches plaintext, the egress path clears the
  // annotation before sealing.
  auto& client = world.add_client(bundle);
  net::Packet packet = world.benign_packet();
  packet.decrypted_payload = to_bytes("plaintext-that-must-not-leak");
  auto sent = client.send_packet(std::move(packet), 0);
  ASSERT_TRUE(sent.ok());
  Bytes marker = to_bytes("plaintext-that-must-not-leak");
  for (const auto& wire : sent->wire) {
    auto it = std::search(wire.begin(), wire.end(), marker.begin(), marker.end());
    EXPECT_EQ(it, wire.end());
  }
}

TEST_F(EnclaveFixture, TrustedTimeOcallsAreCounted) {
  // The DDoS config's TrustedSplitter reads trusted time via an ocall.
  World ddos_world;
  auto ddos_bundle = ddos_world.publish(UseCase::Ddos);
  auto& client = ddos_world.add_client(ddos_bundle);
  auto ocalls_before = client.enclave().transitions().ocalls;
  ASSERT_TRUE(ddos_world.send_through(client, ddos_world.benign_packet()).ok());
  EXPECT_GT(client.enclave().transitions().ocalls, ocalls_before);
}

TEST_F(EnclaveFixture, RulesetRegistrationIsEcall) {
  auto& enclave = provisioned();
  auto ecalls_before = enclave.transitions().ecalls;
  enclave.ecall_add_ruleset("extra", world.community_rules);
  EXPECT_EQ(enclave.transitions().ecalls, ecalls_before + 1);
}

TEST_F(EnclaveFixture, MeasurementMatchesCanonicalIdentity) {
  auto& enclave = provisioned();
  EXPECT_EQ(enclave.measurement(),
            sgx::measure(std::string(kEndBoxEnclaveIdentity)));
}

}  // namespace
}  // namespace endbox
