// Tests for the workload generators: iperf harness, ping runner,
// page-load model — including parameterized property sweeps.
#include <gtest/gtest.h>

#include "sim/cpu.hpp"
#include "workload/iperf.hpp"
#include "workload/pageload.hpp"
#include "workload/ping.hpp"

namespace endbox::workload {
namespace {

// ---- Iperf harness ---------------------------------------------------------

/// Synthetic source/sink: fixed client service time, fixed server
/// service time on a given CPU.
struct SyntheticRig {
  sim::CpuAccount client_cpu{1, 1e9};
  sim::CpuAccount server_cpu{1, 1e9};
  double client_cycles = 10'000;  // 10 us
  double server_cycles = 5'000;   // 5 us
  std::size_t write_size = 1250;  // 10 us serialisation at 1 Gbps

  IperfSource source() {
    IperfSource src;
    src.write_size = write_size;
    src.send = [this](sim::Time now) {
      SendOutcome out;
      out.done = client_cpu.charge(now, client_cycles);
      out.wire.push_back(Bytes(write_size));
      return out;
    };
    return src;
  }
  IperfHarness::ServeFn sink() {
    return [this](const Bytes&, sim::Time now) {
      ServeOutcome out;
      out.done = server_cpu.charge(now, server_cycles);
      out.delivered = true;
      return out;
    };
  }
};

TEST(Iperf, BurstSourcesCountEveryWrite) {
  // A burst source hands the harness N writes per send call; goodput
  // must match N independent single-write sends with the same per-write
  // costs (the burst changes packaging, not accounting).
  constexpr std::uint32_t kBurst = 8;
  SyntheticRig single_rig, burst_rig;
  IperfSource burst_src;
  burst_src.write_size = burst_rig.write_size;
  burst_src.send = [&](sim::Time now) {
    SendOutcome out;
    out.writes = kBurst;
    out.done = burst_rig.client_cpu.charge(
        now, burst_rig.client_cycles * kBurst);
    for (std::uint32_t k = 0; k < kBurst; ++k)
      out.wire.push_back(Bytes(burst_rig.write_size));
    return out;
  };
  IperfConfig config;
  config.duration = sim::from_seconds(0.05);

  IperfHarness single(single_rig.sink(), config);
  single.add_source(single_rig.source());
  auto single_report = single.run();

  IperfHarness burst(burst_rig.sink(), config);
  burst.add_source(std::move(burst_src));
  auto burst_report = burst.run();

  ASSERT_GT(burst_report.writes_delivered, 0u);
  EXPECT_EQ(burst_report.writes_sent % kBurst, 0u);
  EXPECT_NEAR(burst_report.throughput_mbps, single_report.throughput_mbps,
              0.05 * single_report.throughput_mbps);
}

TEST(Iperf, ClosedLoopBoundByClientServiceTime) {
  SyntheticRig rig;
  IperfConfig config;
  config.duration = sim::from_seconds(0.1);
  IperfHarness harness(rig.sink(), config);
  harness.add_source(rig.source());
  auto report = harness.run();
  // 10 us per write -> 100k writes/s -> 1250 B * 8 * 100k = 1 Gbps.
  EXPECT_NEAR(report.throughput_mbps, 1000.0, 50.0);
  EXPECT_EQ(report.writes_sent, report.writes_delivered);
}

TEST(Iperf, OfferedRatePacesSources) {
  SyntheticRig rig;
  IperfConfig config;
  config.duration = sim::from_seconds(0.1);
  IperfHarness harness(rig.sink(), config);
  auto src = rig.source();
  src.offered_bps = 100e6;  // far below the client's 1 Gbps capability
  harness.add_source(src);
  auto report = harness.run();
  EXPECT_NEAR(report.throughput_mbps, 100.0, 10.0);
}

TEST(Iperf, ServerSaturationCapsGoodput) {
  SyntheticRig rig;
  rig.server_cycles = 50'000;  // 50 us per write: server max 20k writes/s
  IperfConfig config;
  config.duration = sim::from_seconds(0.1);
  IperfHarness harness(rig.sink(), config);
  harness.add_source(rig.source());
  auto report = harness.run();
  // Client sends 100k/s but only ~20k/s complete within the window.
  EXPECT_NEAR(report.throughput_mbps, 200.0, 30.0);
  EXPECT_GT(report.writes_sent, report.writes_delivered);
}

TEST(Iperf, BottleneckLinkCapsGoodput) {
  SyntheticRig rig;
  rig.client_cycles = 100;  // effectively free client
  rig.server_cycles = 100;
  netsim::Link slow(100e6, 0, "slow");  // 100 Mbps wire
  IperfConfig config;
  config.duration = sim::from_seconds(0.1);
  config.link = &slow;
  IperfHarness harness(rig.sink(), config);
  harness.add_source(rig.source());
  auto report = harness.run();
  EXPECT_LT(report.throughput_mbps, 115.0);
}

TEST(Iperf, PerSourcePathCarriesFramesInsteadOfSharedLink) {
  SyntheticRig rig;
  rig.client_cycles = 100;
  rig.server_cycles = 100;
  netsim::Link shared(100e6, 0, "shared");  // would cap at 100 Mbps
  netsim::Link own(1e9, 0, "own");
  IperfConfig config;
  config.duration = sim::from_seconds(0.05);
  config.link = &shared;
  IperfHarness harness(rig.sink(), config);
  auto src = rig.source();
  src.path = netsim::Path({&own});
  harness.add_source(std::move(src));
  auto report = harness.run();
  // The source's own 1 Gbps path governs, not the 100 Mbps shared link.
  EXPECT_GT(report.throughput_mbps, 500.0);
  EXPECT_EQ(shared.frames(), 0u);
  EXPECT_EQ(own.frames(), report.wire_messages);
}

TEST(Iperf, PathContentionCapsGoodputLikeASharedLink) {
  // Two sources whose paths share one slow uplink: the uplink still
  // serialises everything, exactly as the old shared-link config did.
  SyntheticRig a, b;
  a.client_cycles = b.client_cycles = 100;
  a.server_cycles = b.server_cycles = 100;
  sim::CpuAccount big_server(8, 1e9);
  netsim::Link access_a(1e9, 0, "a-access");
  netsim::Link access_b(1e9, 0, "b-access");
  netsim::Link uplink(100e6, 0, "uplink");
  IperfConfig config;
  config.duration = sim::from_seconds(0.05);
  IperfHarness harness(
      [&](const Bytes&, sim::Time now) {
        ServeOutcome out;
        out.done = big_server.charge(now, 100);
        out.delivered = true;
        return out;
      },
      config);
  auto src_a = a.source();
  src_a.path = netsim::Path({&access_a, &uplink});
  auto src_b = b.source();
  src_b.path = netsim::Path({&access_b, &uplink});
  harness.add_source(std::move(src_a));
  harness.add_source(std::move(src_b));
  auto report = harness.run();
  EXPECT_LT(report.throughput_mbps, 120.0);
  EXPECT_EQ(uplink.frames(), access_a.frames() + access_b.frames());
}

TEST(Iperf, MultipleSourcesAggregate) {
  SyntheticRig rig;
  sim::CpuAccount big_server(8, 1e9);
  IperfConfig config;
  config.duration = sim::from_seconds(0.05);
  IperfHarness harness(
      [&](const Bytes&, sim::Time now) {
        ServeOutcome out;
        out.done = big_server.charge(now, 1'000);
        out.delivered = true;
        return out;
      },
      config);
  // Four paced sources at 50 Mbps each -> ~200 Mbps aggregate.
  std::vector<std::unique_ptr<sim::CpuAccount>> cpus;
  for (int i = 0; i < 4; ++i) {
    cpus.push_back(std::make_unique<sim::CpuAccount>(1, 1e9));
    IperfSource src;
    src.write_size = 1250;
    src.offered_bps = 50e6;
    auto* cpu = cpus.back().get();
    src.send = [cpu](sim::Time now) {
      SendOutcome out;
      out.done = cpu->charge(now, 1'000);
      out.wire.push_back(Bytes(1250));
      return out;
    };
    harness.add_source(std::move(src));
  }
  auto report = harness.run();
  EXPECT_NEAR(report.throughput_mbps, 200.0, 25.0);
}

TEST(Iperf, EmptyHarnessReportsZero) {
  IperfConfig config;
  IperfHarness harness([](const Bytes&, sim::Time) { return ServeOutcome{}; },
                       config);
  auto report = harness.run();
  EXPECT_EQ(report.throughput_mbps, 0.0);
  EXPECT_EQ(report.writes_sent, 0u);
}

// ---- Ping runner --------------------------------------------------------------

TEST(Ping, CollectsRttsAndLosses) {
  int count = 0;
  PingRunner runner([&](sim::Time now) -> std::optional<sim::Time> {
    if (++count % 3 == 0) return std::nullopt;  // lose every third
    return now + sim::from_millis(12.5);
  });
  auto stats = runner.run(0, 9, sim::from_millis(100));
  EXPECT_EQ(stats.sent, 9u);
  EXPECT_EQ(stats.lost, 3u);
  EXPECT_EQ(stats.rtts_ms.size(), 6u);
  EXPECT_DOUBLE_EQ(stats.average(), 12.5);
  EXPECT_DOUBLE_EQ(stats.min(), 12.5);
  EXPECT_DOUBLE_EQ(stats.max(), 12.5);
}

TEST(Ping, PercentilesOrdered) {
  std::vector<double> values = {1, 2, 3, 4, 100};
  PingStats stats;
  stats.rtts_ms = values;
  EXPECT_DOUBLE_EQ(stats.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(stats.percentile(100), 100.0);
  EXPECT_LE(stats.percentile(50), stats.percentile(90));
  EXPECT_THROW(stats.percentile(101), std::invalid_argument);
}

TEST(Ping, EmptyStatsAreZero) {
  PingStats stats;
  EXPECT_EQ(stats.average(), 0.0);
  EXPECT_EQ(stats.percentile(50), 0.0);
}

// ---- Page-load model -----------------------------------------------------------

TEST(PageLoad, SitesAreDeterministicAndPlausible) {
  Rng a(3), b(3);
  auto sites_a = generate_alexa_like_sites(100, a);
  auto sites_b = generate_alexa_like_sites(100, b);
  ASSERT_EQ(sites_a.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(sites_a[i].objects, sites_b[i].objects);
    EXPECT_EQ(sites_a[i].rtt, sites_b[i].rtt);
    EXPECT_GE(sites_a[i].objects, 8u);
    EXPECT_LE(sites_a[i].objects, 180u);
    EXPECT_GE(sites_a[i].rtt, sim::from_millis(10));
  }
}

TEST(PageLoad, LoadTimeGrowsWithRtt) {
  Site site;
  site.objects = 10;
  site.object_bytes.assign(10, 20'000);
  PageLoadConfig config;
  site.rtt = sim::from_millis(10);
  auto fast = page_load_time(site, config);
  site.rtt = sim::from_millis(100);
  auto slow = page_load_time(site, config);
  EXPECT_GT(slow, fast);
}

TEST(PageLoad, PerPacketCostAddsLittle) {
  Rng rng(5);
  auto sites = generate_alexa_like_sites(200, rng);
  PageLoadConfig direct;
  PageLoadConfig endbox = direct;
  endbox.per_packet_cost = 8'000;  // 8 us per packet
  auto a = page_load_cdf(sites, direct);
  auto b = page_load_cdf(sites, endbox);
  // Median overhead bounded (the Fig 6 claim).
  EXPECT_LT(b[100] / a[100] - 1.0, 0.05);
  EXPECT_GE(b[100], a[100]);
}

TEST(PageLoad, ParallelismHelps) {
  Site site;
  site.objects = 24;
  site.object_bytes.assign(24, 50'000);
  site.rtt = sim::from_millis(30);
  PageLoadConfig serial;
  serial.parallel_connections = 1;
  PageLoadConfig parallel;
  parallel.parallel_connections = 6;
  EXPECT_GT(page_load_time(site, serial), page_load_time(site, parallel));
}

TEST(PageLoad, CdfSorted) {
  Rng rng(6);
  auto sites = generate_alexa_like_sites(50, rng);
  auto cdf = page_load_cdf(sites, {});
  EXPECT_TRUE(std::is_sorted(cdf.begin(), cdf.end()));
}

}  // namespace
}  // namespace endbox::workload
