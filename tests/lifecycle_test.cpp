// Unit + property tests for the bounded session/flow lifecycle table
// (open addressing + timer-wheel idle expiry) that every per-session
// map in the data path hangs off.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/lifecycle_table.hpp"
#include "common/rng.hpp"

namespace endbox {
namespace {

using Table = LifecycleTable<std::uint64_t, std::string>;

Table::Options make_options(std::size_t capacity, sim::Time idle_timeout,
                            sim::Time tick = sim::kMillisecond) {
  Table::Options options;
  options.capacity = capacity;
  options.idle_timeout = idle_timeout;
  options.wheel.tick = tick;
  return options;
}

TEST(LifecycleTable, InsertFindEraseBasics) {
  Table table;
  EXPECT_EQ(table.size(), 0u);
  EXPECT_FALSE(table.contains(1));
  ASSERT_NE(table.insert(1, "one", 0), nullptr);
  ASSERT_NE(table.insert(2, "two", 0), nullptr);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.find(1)->value, "one");
  EXPECT_EQ(table.find(2)->value, "two");
  EXPECT_EQ(table.find(3), nullptr);
  EXPECT_TRUE(table.erase(1));
  EXPECT_FALSE(table.erase(1));
  EXPECT_FALSE(table.contains(1));
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.stats().inserted, 2u);
  EXPECT_EQ(table.stats().erased, 1u);
}

TEST(LifecycleTable, InsertOverwritesExistingKey) {
  Table table;
  table.insert(5, "old", 0);
  Table::Entry* entry = table.insert(5, "new", 10);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->value, "new");
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.stats().inserted, 1u);  // upsert is not a new admission
  EXPECT_EQ(table.last_activity(5), 10u);
}

TEST(LifecycleTable, CapacityBoundRejectsNewAdmissions) {
  Table table(make_options(3, 0));
  for (std::uint64_t k = 0; k < 3; ++k)
    ASSERT_NE(table.insert(k, "v", 0), nullptr);
  EXPECT_EQ(table.insert(99, "v", 0), nullptr);
  EXPECT_EQ(table.stats().rejected_full, 1u);
  EXPECT_EQ(table.size(), 3u);
  // Overwrites of live keys still succeed at capacity.
  EXPECT_NE(table.insert(1, "v2", 0), nullptr);
  // Erasing makes room again.
  table.erase(0);
  EXPECT_NE(table.insert(99, "v", 0), nullptr);
  EXPECT_EQ(table.stats().peak_size, 3u);
}

TEST(LifecycleTable, IdleExpiryIsExactAtTickResolution) {
  // timeout 100, tick 10: an entry last touched at t expires on the
  // first expire_idle at or after t + 100 (deadlines round down to the
  // 10-unit tick), and never one tick earlier.
  Table table(make_options(16, 100, 10));
  table.insert(1, "v", 40);  // deadline 140, tick 14
  std::size_t expired = table.expire_idle(139, [](std::uint64_t, std::string&&) {});
  EXPECT_EQ(expired, 0u);
  EXPECT_TRUE(table.contains(1));
  std::vector<std::uint64_t> gone;
  expired = table.expire_idle(140, [&](std::uint64_t k, std::string&&) {
    gone.push_back(k);
  });
  EXPECT_EQ(expired, 1u);
  EXPECT_EQ(gone, (std::vector<std::uint64_t>{1}));
  EXPECT_FALSE(table.contains(1));
  EXPECT_EQ(table.stats().expired_idle, 1u);
}

TEST(LifecycleTable, TouchKeepsEntriesAlive) {
  Table table(make_options(16, 100, 1));
  table.insert(1, "v", 0);
  for (sim::Time now = 50; now <= 1000; now += 50) {
    table.expire_idle(now, [](std::uint64_t, std::string&&) { FAIL(); });
    table.touch(*table.find(1), now);
  }
  // Stop touching: expires 100 past the last touch, not before.
  EXPECT_EQ(table.expire_idle(1099, [](std::uint64_t, std::string&&) {}), 0u);
  EXPECT_EQ(table.expire_idle(1100, [](std::uint64_t, std::string&&) {}), 1u);
}

TEST(LifecycleTable, ZeroTimeoutNeverExpires) {
  Table table(make_options(16, 0));
  table.insert(1, "v", 0);
  EXPECT_EQ(table.pending_timers(), 0u);  // no wheel at all
  EXPECT_EQ(table.expire_idle(1'000'000'000,
                              [](std::uint64_t, std::string&&) { FAIL(); }),
            0u);
  EXPECT_TRUE(table.contains(1));
}

TEST(LifecycleTable, StaleTimerAfterEraseAndReinsertDoesNotExpireFresh) {
  // Erase + immediate re-insert reuses the slot with a bumped
  // generation: the original (now stale) timer must not evict the new
  // tenant, and the new tenant expires on its own schedule.
  Table table(make_options(16, 100, 1));
  table.insert(1, "first", 0);  // timer armed for 100
  table.erase(1);
  table.insert(1, "second", 90);  // same slot, new generation
  EXPECT_EQ(table.expire_idle(100, [](std::uint64_t, std::string&&) { FAIL(); }),
            0u);
  ASSERT_TRUE(table.contains(1));
  EXPECT_EQ(table.find(1)->value, "second");
  EXPECT_EQ(table.expire_idle(190, [](std::uint64_t, std::string&&) {}), 1u);
  EXPECT_FALSE(table.contains(1));
}

TEST(LifecycleTable, LazyRescheduleReArmsAtTrueDeadline) {
  Table table(make_options(16, 100, 1));
  table.insert(1, "v", 0);
  table.touch(*table.find(1), 80);  // true deadline now 180
  // The original timer fires at 100, sees the fresh stamp, re-arms.
  EXPECT_EQ(table.expire_idle(100, [](std::uint64_t, std::string&&) { FAIL(); }),
            0u);
  EXPECT_EQ(table.expire_idle(179, [](std::uint64_t, std::string&&) { FAIL(); }),
            0u);
  EXPECT_EQ(table.expire_idle(180, [](std::uint64_t, std::string&&) {}), 1u);
}

TEST(LifecycleTable, ExpiredValueIsMovedOut) {
  LifecycleTable<std::uint64_t, std::vector<int>> table(
      {16, 100, {1}});
  table.insert(1, std::vector<int>{1, 2, 3}, 0);
  std::vector<int> out;
  table.expire_idle(100, [&](std::uint64_t, std::vector<int>&& v) {
    out = std::move(v);
  });
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

TEST(LifecycleTable, ForEachVisitsExactlyTheLiveEntries) {
  Table table(make_options(64, 0));
  for (std::uint64_t k = 0; k < 10; ++k) table.insert(k, "v", 0);
  for (std::uint64_t k = 0; k < 10; k += 2) table.erase(k);
  std::set<std::uint64_t> seen;
  table.for_each([&](std::uint64_t k, std::string&) { seen.insert(k); });
  EXPECT_EQ(seen, (std::set<std::uint64_t>{1, 3, 5, 7, 9}));
}

TEST(LifecycleTable, ExtractAllMovesEverythingAndResets) {
  Table table(make_options(64, 100, 1));
  table.insert(1, "a", 10);
  table.insert(2, "b", 20);
  std::map<std::uint64_t, std::pair<std::string, sim::Time>> out;
  table.extract_all([&](std::uint64_t&& k, std::string&& v, sim::Time t) {
    out[k] = {std::move(v), t};
  });
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1], std::make_pair(std::string("a"), sim::Time{10}));
  EXPECT_EQ(out[2], std::make_pair(std::string("b"), sim::Time{20}));
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.pending_timers(), 0u);
  // The reset table is immediately reusable.
  EXPECT_NE(table.insert(3, "c", 30), nullptr);
  EXPECT_TRUE(table.contains(3));
}

TEST(LifecycleTable, MigrationPreservesExpiryDeadlinesExactly) {
  // insert_migrated must neither expire early (deadline measured from
  // the original stamp, not migration time) nor immortalise (it still
  // expires). It also bypasses the admission bound.
  Table source(make_options(16, 100, 1));
  source.insert(1, "old-traffic", 0);   // deadline 100
  source.insert(2, "fresh", 95);        // deadline 195

  Table target(make_options(1, 100, 1));  // capacity 1: bound must not apply
  source.extract_all([&](std::uint64_t&& k, std::string&& v, sim::Time t) {
    ASSERT_NE(target.insert_migrated(k, std::move(v), t), nullptr);
  });
  target.absorb_stats(source.stats());
  EXPECT_EQ(target.size(), 2u);
  EXPECT_EQ(target.stats().rejected_full, 0u);
  EXPECT_EQ(target.stats().inserted, 2u);  // folded, not double counted

  EXPECT_EQ(target.expire_idle(99, [](std::uint64_t, std::string&&) {}), 0u);
  std::vector<std::uint64_t> gone;
  target.expire_idle(100, [&](std::uint64_t k, std::string&&) { gone.push_back(k); });
  EXPECT_EQ(gone, (std::vector<std::uint64_t>{1}));
  target.expire_idle(195, [&](std::uint64_t k, std::string&&) { gone.push_back(k); });
  EXPECT_EQ(gone, (std::vector<std::uint64_t>{1, 2}));
}

TEST(LifecycleTable, TombstoneChurnKeepsProbesBounded) {
  // Heavy insert/erase churn at a fixed small size: the index rebuild
  // policy must keep lookups working (and terminate) forever.
  Table table(make_options(8, 0));
  Rng rng(0xc0de);
  std::set<std::uint64_t> live;
  for (int step = 0; step < 200'000; ++step) {
    std::uint64_t key = rng.uniform(0, 1'000'000);
    if (live.size() < 8 && rng.uniform(0, 1) == 0) {
      if (table.insert(key, "v", 0) != nullptr) live.insert(key);
    } else if (!live.empty()) {
      std::uint64_t victim = *live.begin();
      EXPECT_TRUE(table.erase(victim));
      live.erase(victim);
    }
    ASSERT_EQ(table.size(), live.size());
  }
  for (std::uint64_t k : live) EXPECT_TRUE(table.contains(k));
}

TEST(LifecycleTable, ChurnMatchesReferenceModelAtTickBoundaries) {
  // Property: random insert/touch/erase/advance against an obvious
  // reference (map + last-activity scan, observed at wheel-tick
  // multiples so both models agree on expiry instants).
  constexpr sim::Time kTick = 10;
  constexpr sim::Time kTimeout = 200;
  Table table(make_options(64, kTimeout, kTick));
  std::unordered_map<std::uint64_t, sim::Time> reference;  // key -> last activity
  Rng rng(0x1dea);
  sim::Time now = 0;

  auto reference_expire = [&](sim::Time at) {
    std::set<std::uint64_t> gone;
    for (auto it = reference.begin(); it != reference.end();) {
      // Expiry is observed at tick multiples: deadline rounds down.
      if ((it->second + kTimeout) / kTick * kTick <= at) {
        gone.insert(it->first);
        it = reference.erase(it);
      } else {
        ++it;
      }
    }
    return gone;
  };

  for (int step = 0; step < 30'000; ++step) {
    std::uint64_t key = rng.uniform(1, 90);
    switch (rng.uniform(0, 3)) {
      case 0: {
        bool full = reference.size() >= 64 && !reference.count(key);
        Table::Entry* entry = table.insert(key, "v", now);
        if (full) {
          ASSERT_EQ(entry, nullptr);
        } else {
          ASSERT_NE(entry, nullptr);
          reference[key] = now;
        }
        break;
      }
      case 1: {
        Table::Entry* entry = table.find_touch(key, now);
        ASSERT_EQ(entry != nullptr, reference.count(key) == 1);
        if (entry) reference[key] = now;
        break;
      }
      case 2: {
        ASSERT_EQ(table.erase(key), reference.erase(key) == 1);
        break;
      }
      default: {
        now += kTick * rng.uniform(1, 40);  // advance at tick multiples
        std::set<std::uint64_t> gone;
        table.expire_idle(now, [&](std::uint64_t k, std::string&&) {
          gone.insert(k);
        });
        ASSERT_EQ(gone, reference_expire(now)) << "now " << now;
        break;
      }
    }
    ASSERT_EQ(table.size(), reference.size());
  }
}

// ---- LRU capacity eviction -------------------------------------------------

Table::Options lru_options(std::size_t capacity) {
  Table::Options options;
  options.capacity = capacity;
  options.eviction = EvictionPolicy::EvictIdleLongest;
  return options;
}

TEST(LifecycleTable, RejectAtCapacityStaysTheDefault) {
  Table table(make_options(2, 0));
  ASSERT_NE(table.insert(1, "a", 0), nullptr);
  ASSERT_NE(table.insert(2, "b", 0), nullptr);
  EXPECT_EQ(table.insert(3, "c", 10), nullptr);
  EXPECT_EQ(table.stats().rejected_full, 1u);
  EXPECT_EQ(table.stats().evicted_lru, 0u);
}

TEST(LifecycleTable, EvictIdleLongestAdmitsByRecyclingTheStalest) {
  Table table(lru_options(3));
  table.insert(1, "a", 10);
  table.insert(2, "b", 20);
  table.insert(3, "c", 30);
  Table::Entry* entry = table.insert(4, "d", 40);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(table.size(), 3u);
  EXPECT_FALSE(table.contains(1));  // idle-longest victim
  EXPECT_TRUE(table.contains(2));
  EXPECT_TRUE(table.contains(4));
  EXPECT_EQ(table.stats().evicted_lru, 1u);
  EXPECT_EQ(table.stats().rejected_full, 0u);
}

TEST(LifecycleTable, TouchProtectsFromEviction) {
  Table table(lru_options(2));
  table.insert(1, "a", 10);
  table.insert(2, "b", 20);
  table.find_touch(1, 50);  // 1 is now the most recently active
  table.insert(3, "c", 60);
  EXPECT_TRUE(table.contains(1));
  EXPECT_FALSE(table.contains(2));
}

TEST(LifecycleTable, EvictHookFiresWithTheVictim) {
  Table table(lru_options(1));
  std::vector<std::pair<std::uint64_t, std::string>> victims;
  table.set_evict_hook([&](std::uint64_t key, std::string&& value) {
    victims.emplace_back(key, std::move(value));
  });
  table.insert(1, "a", 10);
  table.insert(2, "b", 20);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0].first, 1u);
  EXPECT_EQ(victims[0].second, "a");
}

TEST(LifecycleTable, PinnedEntriesAreNeverVictims) {
  Table table(lru_options(2));
  Table::Entry* a = table.insert(1, "a", 10);
  table.pin(*a, 1000);  // mid-handshake shield
  table.insert(2, "b", 20);
  // 1 is idle-longest but pinned: 2 is the victim instead.
  ASSERT_NE(table.insert(3, "c", 30), nullptr);
  EXPECT_TRUE(table.contains(1));
  EXPECT_FALSE(table.contains(2));
}

TEST(LifecycleTable, AllPinnedMeansRejectNotEvict) {
  Table table(lru_options(2));
  table.pin(*table.insert(1, "a", 10), 1000);
  table.pin(*table.insert(2, "b", 20), 1000);
  EXPECT_EQ(table.insert(3, "c", 30), nullptr);
  EXPECT_EQ(table.stats().rejected_full, 1u);
  EXPECT_EQ(table.stats().evicted_lru, 0u);
}

TEST(LifecycleTable, PinExpiresWithTime) {
  Table table(lru_options(1));
  Table::Entry* a = table.insert(1, "a", 10);
  table.pin(*a, 100);
  EXPECT_TRUE(table.pinned_at(*a, 50));
  EXPECT_FALSE(table.pinned_at(*a, 100));  // shield lapsed
  ASSERT_NE(table.insert(2, "b", 200), nullptr);
  EXPECT_FALSE(table.contains(1));
}

TEST(LifecycleTable, RecycledSlotDoesNotInheritAPin) {
  Table table(lru_options(1));
  table.pin(*table.insert(1, "a", 10), 50);
  ASSERT_TRUE(table.erase(1));
  // The new entry reuses the freed slot; a stale pin there would
  // shield a session that never asked for one.
  Table::Entry* fresh = table.insert(2, "b", 20);
  ASSERT_NE(fresh, nullptr);
  EXPECT_FALSE(table.pinned_at(*fresh, 20));
  ASSERT_NE(table.insert(3, "c", 30), nullptr);
  EXPECT_FALSE(table.contains(2));
}

TEST(LifecycleTable, AbsorbStatsFoldsEvictions) {
  Table a(lru_options(1)), b(lru_options(1));
  a.insert(1, "x", 0);
  a.insert(2, "y", 1);  // evicts 1
  b.absorb_stats(a.stats());
  EXPECT_EQ(b.stats().evicted_lru, 1u);
}

TEST(LifecycleTable, EvictionScanCyclesPastAPinnedCluster) {
  // More pinned entries than one scan budget: the clock hand must
  // still find the lone unpinned victim somewhere behind them.
  Table::Options options = lru_options(8);
  options.eviction_scan = 4;
  Table table(options);
  for (std::uint64_t key = 0; key < 8; ++key) {
    Table::Entry* entry = table.insert(key, "v", 10 + key);
    if (key != 6) table.pin(*entry, 1'000'000);
  }
  ASSERT_NE(table.insert(100, "new", 500), nullptr);
  EXPECT_FALSE(table.contains(6));
  EXPECT_EQ(table.size(), 8u);
}

TEST(LifecycleTable, LruKeepsWorkingUnderChurn) {
  // Sustained over-capacity insert stream: size stays bounded, every
  // insert is admitted, and victims are plausibly stale (never the
  // most recent key).
  Table table(lru_options(16));
  for (std::uint64_t key = 0; key < 500; ++key) {
    ASSERT_NE(table.insert(key, "v", key), nullptr);
    ASSERT_LE(table.size(), 16u);
    EXPECT_TRUE(table.contains(key));
  }
  EXPECT_EQ(table.stats().evicted_lru, 500u - 16u);
}

}  // namespace
}  // namespace endbox
