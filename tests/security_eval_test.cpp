// Section V-A security evaluation as an executable test suite: every
// attack the paper discusses is mounted against a live deployment and
// must be rejected by the corresponding defence.
#include <gtest/gtest.h>

#include "endbox_world.hpp"

namespace endbox {
namespace {

using testing::World;

// ---- Bypassing middlebox functions ------------------------------------

TEST(SecurityEval, RawTrafficCannotEnterTheNetwork) {
  // A malicious client sends plain IP packets, skipping EndBox: the
  // server is the only entry point and only accepts tunnel messages.
  World world;
  world.publish(UseCase::Fw);
  Bytes raw = net::Packet::udp(net::Ipv4(10, 8, 0, 66), net::Ipv4(10, 0, 0, 1), 1, 2,
                               to_bytes("bypass attempt")).serialize();
  EXPECT_FALSE(world.server.handle_wire(raw, 0).ok());
}

TEST(SecurityEval, TrafficEncryptedWithWrongKeysRejected) {
  World world;
  auto bundle = world.publish(UseCase::Nop);
  auto& client = world.add_client(bundle);
  (void)client;
  // Forge a data message for session 1 with self-chosen keys.
  vpn::SessionKeys wrong{Bytes(16, 7), Bytes(32, 7)};
  Rng rng(1);
  vpn::WireMessage forged;
  forged.type = vpn::MsgType::Data;
  forged.session_id = 1;
  forged.body = vpn::seal_data_body(wrong, {1, 1, 0, 1}, to_bytes("evil"), rng);
  EXPECT_FALSE(world.server.handle_wire(forged.serialize(), 0).ok());
  EXPECT_EQ(world.server.vpn().auth_failures(), 1u);
}

TEST(SecurityEval, UnattestedEnclaveGetsNoCertificate) {
  World world;
  // Tampered enclave code -> unknown measurement -> CA refuses.
  sgx::SgxPlatform platform("mallory", world.rng, world.clock);
  world.ias.register_platform("mallory", platform.attestation_key().pub);
  struct Tampered : sgx::Enclave {
    using Enclave::Enclave;
  } tampered(platform, "endbox-enclave-v1.0-TAMPERED", sgx::SgxMode::Hardware);
  auto key = crypto::rsa_generate(world.rng);
  sgx::QuotingEnclave qe(platform);
  auto quote = qe.quote(tampered.create_report(
      sgx::bind_report_data(key.pub.serialize())));
  ASSERT_TRUE(quote.ok());
  EXPECT_FALSE(world.authority.provision(quote->serialize(), key.pub).ok());
}

// ---- Old or invalid middlebox configurations ----------------------------

TEST(SecurityEval, ConfigRollbackRejected) {
  World world;
  auto v2 = world.publish(UseCase::Nop);
  auto v3 = world.server.publish_config(3, use_case_config(UseCase::Fw), true, 0, 0);
  ASSERT_TRUE(v3.ok());
  auto& client = world.add_client(v2);
  ASSERT_TRUE(client.install_config(*v3, 0).ok());
  EXPECT_FALSE(client.install_config(v2, 0).ok());
}

TEST(SecurityEval, UnauthorisedConfigRejected) {
  World world;
  auto& client = world.add_client(world.publish(UseCase::Nop));
  // Attacker-signed configuration (not the network CA).
  Rng rng(9);
  auto attacker_ca = crypto::rsa_generate(rng);
  auto forged = config::make_bundle(9, "x :: Counter;", attacker_ca,
                                    /*config_key=*/1234, false);
  EXPECT_FALSE(client.install_config(forged, 0).ok());
}

TEST(SecurityEval, StaleConfigBlockedAfterGrace) {
  World world;
  auto& client = world.add_client(world.publish(UseCase::Nop));
  ASSERT_TRUE(world.server.publish_config(3, use_case_config(UseCase::Nop), true, 5,
                                          world.clock.now()).ok());
  world.clock.advance_to(6 * sim::kSecond);
  auto blocked = world.send_through(client, world.benign_packet());
  EXPECT_FALSE(blocked.ok());
  EXPECT_GT(world.server.vpn().stale_config_drops(), 0u);
}

TEST(SecurityEval, VersionClaimsInPingsCannotRollBack) {
  World world;
  auto& client = world.add_client(world.publish(UseCase::Nop));
  client.enclave().session();  // connected
  // Directly exercise the server-side monotonicity (tested in depth in
  // vpn_test): a lower version in a later ping is ignored.
  auto session_version_before = world.server.vpn().session_config_version(1);
  ASSERT_TRUE(world.server.handle_wire(*client.create_ping(0), 0).ok());
  EXPECT_GE(world.server.vpn().session_config_version(1), session_version_before);
}

// ---- Replay -----------------------------------------------------------

TEST(SecurityEval, DataReplayRejected) {
  World world;
  auto& client = world.add_client(world.publish(UseCase::Nop));
  auto sent = client.send_packet(world.benign_packet(), 0);
  ASSERT_TRUE(sent.ok());
  ASSERT_TRUE(world.server.handle_wire(sent->wire[0], 0).ok());
  EXPECT_FALSE(world.server.handle_wire(sent->wire[0], 0).ok());
  EXPECT_EQ(world.server.vpn().replays_rejected(), 1u);
}

TEST(SecurityEval, ServerPingReplayDetectableViaSeq) {
  World world;
  auto& client = world.add_client(world.publish(UseCase::Nop));
  Bytes ping1 = world.server.create_ping(1);
  Bytes ping2 = world.server.create_ping(1);
  auto a = client.handle_server_ping(ping1, nullptr, 0);
  auto b = client.handle_server_ping(ping2, nullptr, 0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LT(a->info.seq, b->info.seq);  // monotonic sequence numbers
}

// ---- Denial of service ---------------------------------------------------

TEST(SecurityEval, EnclaveDosOnlyHurtsTheAttacker) {
  World world;
  auto bundle = world.publish(UseCase::Nop);
  auto& victim = world.add_client(bundle);
  auto& bystander = world.add_client(bundle);

  victim.enclave().destroy();
  EXPECT_THROW(victim.send_packet(world.benign_packet(), 0), std::runtime_error);
  EXPECT_GT(victim.enclave().transitions().rejected_entries, 0u);

  // The rest of the network is unaffected.
  EXPECT_TRUE(world.send_through(bystander, world.benign_packet()).ok());

  // Restarting the enclave restores the victim's connectivity.
  victim.enclave().start();
  EXPECT_TRUE(world.send_through(victim, world.benign_packet()).ok());
}

// ---- Downgrade -----------------------------------------------------------

TEST(SecurityEval, ServerRejectsLowVersions) {
  World world;
  auto& client = world.add_client(world.publish(UseCase::Nop));
  (void)client;
  // Replay the attack at the protocol level (details in vpn_test).
  Rng rng(4);
  auto key = crypto::rsa_generate(rng);
  ca::Certificate cert;
  cert.subject_key = key.pub;
  vpn::VpnClientSession weak(rng, cert, key, world.server.public_key(), {});
  auto init = weak.create_handshake_init(0x0301);  // TLS 1.0
  auto result = world.server.handle_wire(init.serialize(), 0);
  EXPECT_FALSE(result.ok());
}

// ---- Interface attacks -----------------------------------------------------

TEST(SecurityEval, OversizedEcallInputRejected) {
  World world;
  auto& client = world.add_client(world.publish(UseCase::Nop));
  EXPECT_FALSE(client.send_packet(world.benign_packet(600 * 1024), 0).ok());
}

TEST(SecurityEval, MalformedIngressWireRejected) {
  World world;
  auto& client = world.add_client(world.publish(UseCase::Nop));
  EXPECT_FALSE(client.receive_wire(Bytes{1, 2, 3}, 0).ok());
  Bytes garbage(100, 0xff);
  EXPECT_FALSE(client.receive_wire(garbage, 0).ok());
}

TEST(SecurityEval, MalformedTlsKeyRejected) {
  World world;
  auto& client = world.add_client(world.publish(UseCase::Nop));
  tls::SessionKeys bad;
  bad.enc_key = Bytes(3, 1);  // wrong length
  bad.mac_key = Bytes(32, 1);
  EXPECT_FALSE(client.forward_tls_key(bad).ok());
}

// ---- QoS flag forgery --------------------------------------------------------

TEST(SecurityEval, ExternalQosFlagDoesNotBypassClick) {
  // An external attacker sets the 0xeb flag hoping receivers skip
  // inspection; the gateway strips it before forwarding (section IV-A).
  net::Packet forged = net::Packet::udp(net::Ipv4(203, 0, 113, 5),
                                        net::Ipv4(10, 8, 0, 2), 53, 4000,
                                        to_bytes("external evil"));
  forged.set_processed_flag();
  EndBoxServer::strip_external_qos(forged);
  EXPECT_FALSE(forged.processed_flag());
}

TEST(SecurityEval, InTunnelQosFlagIsIntegrityProtected) {
  // Flipping the QoS byte of a sealed tunnel message breaks its MAC.
  World world;
  auto& client = world.add_client(world.publish(UseCase::Nop));
  auto sent = client.send_packet(world.benign_packet(), 0);
  ASSERT_TRUE(sent.ok());
  Bytes tampered = sent->wire[0];
  tampered[tampered.size() / 2] ^= 0xeb;
  EXPECT_FALSE(world.server.handle_wire(tampered, 0).ok());
}

// ---- Traffic privacy -----------------------------------------------------------

TEST(SecurityEval, PayloadNotVisibleOnTheWire) {
  World world;
  auto& client = world.add_client(world.publish(UseCase::Nop));
  net::Packet packet = world.benign_packet(0);
  packet.payload = to_bytes("TOP-SECRET-PAYLOAD-MARKER");
  auto sent = client.send_packet(std::move(packet), 0);
  ASSERT_TRUE(sent.ok());
  Bytes marker = to_bytes("TOP-SECRET-PAYLOAD-MARKER");
  for (const auto& wire : sent->wire) {
    auto it = std::search(wire.begin(), wire.end(), marker.begin(), marker.end());
    EXPECT_EQ(it, wire.end());
  }
}

}  // namespace
}  // namespace endbox
