// Shared test/bench harness: a complete EndBox deployment in one
// object — IAS, CA, VPN/EndBox server, and any number of attested
// clients — so integration tests and benchmarks assemble scenarios in
// a few lines.
#pragma once

#include <memory>
#include <vector>

#include "endbox/client.hpp"
#include "endbox/configs.hpp"
#include "endbox/server.hpp"
#include "endbox/vanilla_client.hpp"
#include "idps/snort_rules.hpp"
#include "sim/event_queue.hpp"

namespace endbox::testing {

/// One client machine: platform + single-core CPU slice + EndBox client.
struct ClientRig {
  sgx::SgxPlatform platform;
  sim::CpuAccount cpu;
  EndBoxClient client;

  ClientRig(const std::string& name, Rng& rng, const sim::Clock& clock,
            const sim::PerfModel& model, crypto::RsaPublicKey ca_key,
            EndBoxClientOptions options)
      : platform(name, rng, clock),
        cpu(1, model.client_hz),  // OpenVPN is single-threaded
        client(name, platform, rng, cpu, model, ca_key, options) {}
};

struct World {
  Rng rng;
  sim::Clock clock;
  sim::EventQueue events{clock};
  sim::PerfModel model;
  sgx::AttestationService ias{rng};
  ca::CertificateAuthority authority{rng, ias};
  sim::CpuAccount server_cpu;
  EndBoxServer server;
  std::vector<std::unique_ptr<ClientRig>> rigs;
  std::vector<idps::SnortRule> community_rules;

  explicit World(std::uint64_t seed = 0xeb0c5eed,
                 ServerMode server_mode = ServerMode::Plain,
                 vpn::VpnServerConfig vpn_config = {})
      : rng(seed),
        server_cpu(sim::PerfModel{}.server_cores, sim::PerfModel{}.server_hz),
        server(rng, authority, server_cpu, model, server_mode, vpn_config) {
    authority.allow_measurement(sgx::measure(std::string(kEndBoxEnclaveIdentity)));
    Rng rules_rng(7);
    community_rules = idps::generate_community_ruleset(377, rules_rng);
    server.add_ruleset("community", community_rules);
  }

  /// Publishes the initial middlebox configuration as version 2 (fresh
  /// enclaves start at version 0 and install whatever is announced).
  config::ConfigBundle publish(UseCase use_case, std::uint32_t version = 2,
                               bool encrypt = true, std::uint32_t grace = 0) {
    auto bundle = server.publish_config(version, use_case_config(use_case),
                                        encrypt, grace, clock.now());
    if (!bundle.ok()) throw std::runtime_error("publish failed: " + bundle.error());
    return *bundle;
  }

  /// Creates, attests and fully connects an EndBox client running the
  /// given bundle.
  EndBoxClient& add_client(const config::ConfigBundle& bundle,
                           EndBoxClientOptions options = {}) {
    auto rig = std::make_unique<ClientRig>(
        "client-" + std::to_string(rigs.size() + 1), rng, clock, model,
        authority.public_key(), options);
    EndBoxClient& client = rig->client;
    ias.register_platform(rig->platform.platform_id(),
                          rig->platform.attestation_key().pub);
    if (options.sgx_mode == sgx::SgxMode::Hardware) {
      if (auto s = client.attest(authority); !s.ok())
        throw std::runtime_error("attest: " + s.error());
    } else {
      // Simulation-mode enclaves cannot be remotely attested (like real
      // SGX SIM mode); performance experiments provision them through
      // the conventional PKI path instead.
      auto& key = client.enclave().ecall_public_key();
      auto cert = authority.issue_legacy_certificate(key);
      if (!cert.ok()) throw std::runtime_error(cert.error());
      ca::ProvisioningResponse response;
      response.certificate = *cert;
      response.encrypted_config_key =
          crypto::rsa_encrypt(key, authority.config_key() % key.n);
      if (auto s = client.enclave().ecall_store_provisioning(response); !s.ok())
        throw std::runtime_error("sim provision: " + s.error());
    }
    client.add_ruleset("community", community_rules);
    if (auto t = client.install_config(bundle, clock.now()); !t.ok())
      throw std::runtime_error("install: " + t.error());
    connect(client);
    rigs.push_back(std::move(rig));
    return client;
  }

  void connect(EndBoxClient& client) {
    auto init = client.start_connect(server.public_key());
    if (!init.ok()) throw std::runtime_error("connect: " + init.error());
    auto handled = server.handle_wire(*init, clock.now());
    if (!handled.ok()) throw std::runtime_error("connect: " + handled.error());
    auto& done = std::get<vpn::VpnServer::HandshakeDone>(handled->event);
    if (auto s = client.finish_connect(done.reply_wire); !s.ok())
      throw std::runtime_error("connect: " + s.error());
  }

  /// Sends one packet client->server; returns the PacketIn event (or
  /// the error that blocked it).
  Result<vpn::VpnServer::PacketIn> send_through(EndBoxClient& client,
                                                net::Packet packet) {
    auto sent = client.send_packet(std::move(packet), clock.now());
    if (!sent.ok()) return err(sent.error());
    if (!sent->accepted) return err("rejected by client-side middlebox");
    for (const auto& wire : sent->wire) {
      auto handled = server.handle_wire(wire, clock.now());
      if (!handled.ok()) return err(handled.error());
      if (auto* in = std::get_if<vpn::VpnServer::PacketIn>(&handled->event))
        return *in;
    }
    return err("fragments pending (packet larger than expected)");
  }

  net::Packet benign_packet(std::size_t payload = 1400, std::uint16_t dport = 5001) {
    return net::Packet::udp(net::Ipv4(10, 8, 0, 2), net::Ipv4(10, 0, 0, 1), 40000,
                            dport, Bytes(payload, 'x'));
  }
};

}  // namespace endbox::testing
