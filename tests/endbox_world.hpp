// Shared test/bench harness: a complete EndBox deployment in one
// object — IAS, CA, VPN/EndBox server, a star topology and any number
// of attested clients — so integration tests and benchmarks assemble
// scenarios in a few lines.
//
// Worlds are parameterisable (WorldOptions) and deterministic: the one
// experiment seed fixes every random choice, and each client draws from
// its own forked stream so adding client k never perturbs client k+1.
#pragma once

#include <memory>
#include <vector>

#include "endbox/client.hpp"
#include "endbox/configs.hpp"
#include "endbox/server.hpp"
#include "endbox/vanilla_client.hpp"
#include "idps/snort_rules.hpp"
#include "netsim/topology.hpp"
#include "sim/event_queue.hpp"

namespace endbox::testing {

/// Everything a World's constructor can vary. Defaults reproduce the
/// single-client deployments the integration tests use.
struct WorldOptions {
  std::uint64_t seed = 0xeb0c5eed;
  std::size_t clients = 0;  ///< built (attested + connected) eagerly
  UseCase use_case = UseCase::Nop;
  ServerMode server_mode = ServerMode::Plain;
  vpn::VpnServerConfig vpn_config = {};
  EndBoxClientOptions client_options = {};
  bool encrypt_config = true;
  netsim::StarTopologyOptions topology = {};
};

/// One client machine: private RNG stream, class-A host in the star
/// topology, single-core CPU slice and an EndBox client.
struct ClientRig {
  Rng rng;  ///< forked from the world seed; owned so streams never interleave
  sim::CpuAccount cpu;
  sgx::SgxPlatform platform;
  EndBoxClient client;

  ClientRig(const std::string& name, Rng stream, const sim::Clock& clock,
            const netsim::Host& host, const sim::PerfModel& model,
            crypto::RsaPublicKey ca_key, EndBoxClientOptions options)
      : rng(stream),
        // OpenVPN is single-threaded; a sharded enclave additionally
        // pins one core per element-graph shard worker.
        cpu(host.make_account(
            static_cast<unsigned>(std::max<std::size_t>(1, options.shards)))),
        platform(name, rng, clock),
        client(name, platform, rng, cpu, model, ca_key, options) {}
};

struct World {
  WorldOptions options;
  Rng rng;
  sim::Clock clock;
  sim::EventQueue events{clock};
  sim::PerfModel model;
  netsim::StarTopology topology;
  sgx::AttestationService ias{rng};
  ca::CertificateAuthority authority{rng, ias};
  sim::CpuAccount server_cpu;
  EndBoxServer server;
  std::vector<std::unique_ptr<ClientRig>> rigs;
  std::vector<idps::SnortRule> community_rules;

  explicit World(const WorldOptions& opts)
      : options(opts),
        rng(opts.seed),
        topology(model, opts.topology),
        server_cpu(sim::PerfModel{}.server_cores, sim::PerfModel{}.server_hz),
        server(rng, authority, server_cpu, model, opts.server_mode,
               opts.vpn_config) {
    authority.allow_measurement(sgx::measure(std::string(kEndBoxEnclaveIdentity)));
    Rng rules_rng(7);
    community_rules = idps::generate_community_ruleset(377, rules_rng);
    server.add_ruleset("community", community_rules);
    if (opts.clients > 0) {
      auto bundle = publish(opts.use_case, 2, opts.encrypt_config);
      for (std::size_t i = 0; i < opts.clients; ++i)
        add_client(bundle, opts.client_options);
    }
  }

  explicit World(std::uint64_t seed = 0xeb0c5eed,
                 ServerMode server_mode = ServerMode::Plain,
                 vpn::VpnServerConfig vpn_config = {})
      : World(make_options(seed, server_mode, std::move(vpn_config))) {}

  static WorldOptions make_options(std::uint64_t seed, ServerMode server_mode,
                                   vpn::VpnServerConfig vpn_config) {
    WorldOptions opts;
    opts.seed = seed;
    opts.server_mode = server_mode;
    opts.vpn_config = std::move(vpn_config);
    return opts;
  }

  /// Publishes the initial middlebox configuration as version 2 (fresh
  /// enclaves start at version 0 and install whatever is announced).
  config::ConfigBundle publish(UseCase use_case, std::uint32_t version = 2,
                               bool encrypt = true, std::uint32_t grace = 0) {
    auto bundle = server.publish_config(version, use_case_config(use_case),
                                        encrypt, grace, clock.now());
    if (!bundle.ok()) throw std::runtime_error("publish failed: " + bundle.error());
    return *bundle;
  }

  /// Creates, attests and fully connects an EndBox client running the
  /// given bundle.
  EndBoxClient& add_client(const config::ConfigBundle& bundle,
                           EndBoxClientOptions options = {}) {
    std::size_t index = rigs.size();
    std::string name = "client-" + std::to_string(index + 1);
    topology.add_client(name);
    auto rig = std::make_unique<ClientRig>(
        name, rng.fork(index), clock, topology.client_host(index), model,
        authority.public_key(), options);
    EndBoxClient& client = rig->client;
    ias.register_platform(rig->platform.platform_id(),
                          rig->platform.attestation_key().pub);
    if (options.sgx_mode == sgx::SgxMode::Hardware) {
      if (auto s = client.attest(authority); !s.ok())
        throw std::runtime_error("attest: " + s.error());
    } else {
      // Simulation-mode enclaves cannot be remotely attested (like real
      // SGX SIM mode); performance experiments provision them through
      // the conventional PKI path instead.
      auto& key = client.enclave().ecall_public_key();
      auto cert = authority.issue_legacy_certificate(key);
      if (!cert.ok()) throw std::runtime_error(cert.error());
      ca::ProvisioningResponse response;
      response.certificate = *cert;
      response.encrypted_config_key =
          crypto::rsa_encrypt(key, authority.config_key() % key.n);
      if (auto s = client.enclave().ecall_store_provisioning(response); !s.ok())
        throw std::runtime_error("sim provision: " + s.error());
    }
    client.add_ruleset("community", community_rules);
    if (auto t = client.install_config(bundle, clock.now()); !t.ok())
      throw std::runtime_error("install: " + t.error());
    connect(client);
    rigs.push_back(std::move(rig));
    return client;
  }

  void connect(EndBoxClient& client) {
    auto init = client.start_connect(server.public_key());
    if (!init.ok()) throw std::runtime_error("connect: " + init.error());
    auto handled = server.handle_wire(*init, clock.now());
    if (!handled.ok()) throw std::runtime_error("connect: " + handled.error());
    auto& done = std::get<vpn::VpnServer::HandshakeDone>(handled->event);
    if (auto s = client.finish_connect(done.reply_wire); !s.ok())
      throw std::runtime_error("connect: " + s.error());
  }

  /// Sends one packet client->server; returns the PacketIn event (or
  /// the error that blocked it).
  Result<vpn::VpnServer::PacketIn> send_through(EndBoxClient& client,
                                                net::Packet packet) {
    auto sent = client.send_packet(std::move(packet), clock.now());
    if (!sent.ok()) return err(sent.error());
    if (!sent->accepted) return err("rejected by client-side middlebox");
    for (const auto& wire : sent->wire) {
      auto handled = server.handle_wire(wire, clock.now());
      if (!handled.ok()) return err(handled.error());
      if (auto* in = std::get_if<vpn::VpnServer::PacketIn>(&handled->event))
        return *in;
    }
    return err("fragments pending (packet larger than expected)");
  }

  /// Like send_through, but for client `i` with wire fragments carried
  /// over that client's access link and the shared uplink, so the
  /// server sees network arrival times and the topology counts bytes.
  Result<vpn::VpnServer::PacketIn> send_from(std::size_t i, net::Packet packet) {
    ClientRig& rig = *rigs.at(i);
    sim::Time now = clock.now();
    auto sent = rig.client.send_packet(std::move(packet), now);
    if (!sent.ok()) return err(sent.error());
    if (!sent->accepted) return err("rejected by client-side middlebox");
    for (const auto& wire : sent->wire) {
      sim::Time arrival = topology.deliver_to_server(i, now, wire.size());
      auto handled = server.handle_wire(wire, arrival);
      if (!handled.ok()) return err(handled.error());
      if (auto* in = std::get_if<vpn::VpnServer::PacketIn>(&handled->event))
        return *in;
    }
    return err("fragments pending (packet larger than expected)");
  }

  /// Outcome of run_uniform_traffic: what the server saw and what it
  /// paid for it — the quantities the Fig 10a scalability claims are
  /// stated in.
  struct TrafficReport {
    std::uint64_t offered = 0;    ///< packets offered across all clients
    std::uint64_t delivered = 0;  ///< PacketIn events at the server
    std::vector<std::uint64_t> per_client_delivered;
    double server_busy_core_ns = 0;  ///< server CPU work during the run
    /// Burst completion latency (done - submit), summed over bursts:
    /// the quantity sharding shrinks under honest multi-core
    /// accounting, while busy core time stays ~flat (total work does
    /// not disappear by spreading it).
    double client_burst_latency_ns = 0;
    double server_burst_latency_ns = 0;

    double server_cost_per_packet_ns() const {
      return delivered == 0 ? 0.0
                            : server_busy_core_ns / static_cast<double>(delivered);
    }
    double server_cost_per_client_ns() const {
      return per_client_delivered.empty()
                 ? 0.0
                 : server_busy_core_ns /
                       static_cast<double>(per_client_delivered.size());
    }
  };

  /// Every client sends `packets_per_client` benign packets round-robin
  /// through the topology. Deterministic for a fixed world seed.
  TrafficReport run_uniform_traffic(std::uint64_t packets_per_client,
                                    std::size_t payload = 1400) {
    TrafficReport report;
    report.per_client_delivered.assign(rigs.size(), 0);
    double busy_before = server_cpu.busy_core_ns();
    for (std::uint64_t k = 0; k < packets_per_client; ++k) {
      for (std::size_t i = 0; i < rigs.size(); ++i) {
        ++report.offered;
        auto in = send_from(i, benign_packet_from(i, payload));
        if (in.ok()) {
          ++report.delivered;
          ++report.per_client_delivered[i];
        }
      }
    }
    report.server_busy_core_ns = server_cpu.busy_core_ns() - busy_before;
    return report;
  }

  /// Batched counterpart of run_uniform_traffic: clients push bursts of
  /// `burst` packets through one batch ecall (sharded clients spread
  /// them over their element-graph shards by flow), the sealed frames
  /// travel the topology back to back (transmit_burst) and the server
  /// drains each train with one batched open (handle_batch) — the Fig
  /// 10a world exercising real bursts end to end. `flows` spreads each
  /// client's packets over that many 5-tuples (distinct source ports)
  /// so RSS sharding has flows to balance.
  TrafficReport run_uniform_traffic_batched(std::uint64_t packets_per_client,
                                            std::size_t burst = 32,
                                            std::size_t payload = 1400,
                                            std::size_t flows = 1) {
    burst = std::min(burst, click::PacketBatch::kMaxBurst);
    if (flows == 0) flows = 1;
    TrafficReport report;
    report.per_client_delivered.assign(rigs.size(), 0);
    double busy_before = server_cpu.busy_core_ns();
    click::PacketBatch batch;
    EgressBatch egress;
    for (std::uint64_t sent_so_far = 0; sent_so_far < packets_per_client;) {
      std::size_t n = static_cast<std::size_t>(
          std::min<std::uint64_t>(burst, packets_per_client - sent_so_far));
      for (std::size_t i = 0; i < rigs.size(); ++i) {
        ClientRig& rig = *rigs[i];
        net::PacketPool& pool = rig.client.enclave().packet_pool();
        for (std::size_t k = 0; k < n; ++k) {
          net::Packet packet = benign_packet_from(i, payload);
          packet.src_port = static_cast<std::uint16_t>(
              40000 + (sent_so_far + k) % flows);
          // Steal pooled capacity for the payload before filling it, so
          // warm worlds stop allocating per packet.
          Bytes pooled = pool.acquire_bytes();
          if (pooled.capacity() >= payload) {
            pooled.assign(payload, 'x');
            packet.payload = std::move(pooled);
          }
          batch.push_back(std::move(packet));
        }
        report.offered += n;
        sim::Time now = clock.now();
        auto sent = rig.client.send_batch(std::move(batch), egress, now);
        batch.clear();
        if (!sent.ok()) continue;
        report.client_burst_latency_ns += static_cast<double>(sent->done - now);
        std::size_t bytes = 0;
        for (std::size_t f = 0; f < sent->frames; ++f)
          bytes += egress.frames[f].size();
        sim::Time arrival =
            topology.deliver_burst_to_server(i, now, bytes, sent->frames);
        auto handled = server.handle_batch(
            std::span<const Bytes>(egress.frames.data(), sent->frames), arrival);
        if (handled.ok()) {
          report.delivered += handled->delivered;
          report.per_client_delivered[i] += handled->delivered;
          report.server_burst_latency_ns +=
              static_cast<double>(handled->done - arrival);
        }
      }
      sent_so_far += n;
    }
    report.server_busy_core_ns = server_cpu.busy_core_ns() - busy_before;
    return report;
  }

  net::Packet benign_packet(std::size_t payload = 1400, std::uint16_t dport = 5001) {
    return net::Packet::udp(net::Ipv4(10, 8, 0, 2), net::Ipv4(10, 0, 0, 1), 40000,
                            dport, Bytes(payload, 'x'));
  }

  /// benign_packet with a per-client source address (10.8.x.y).
  net::Packet benign_packet_from(std::size_t i, std::size_t payload = 1400,
                                 std::uint16_t dport = 5001) {
    auto host_part = static_cast<std::uint32_t>(i + 2);
    net::Ipv4 src(10, 8, static_cast<std::uint8_t>(host_part >> 8),
                  static_cast<std::uint8_t>(host_part & 0xff));
    return net::Packet::udp(src, net::Ipv4(10, 0, 0, 1), 40000, dport,
                            Bytes(payload, 'x'));
  }
};

}  // namespace endbox::testing
