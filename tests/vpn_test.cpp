// Tests for the VPN substrate: replay window, fragmentation, wire
// formats, handshake, data channel, pings, config enforcement.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>
#include <span>

#include "ca/authority.hpp"
#include "common/rng.hpp"
#include "sgx/enclave.hpp"
#include "sgx/platform.hpp"
#include "vpn/client.hpp"
#include "vpn/replay.hpp"
#include "vpn/server.hpp"

namespace endbox::vpn {
namespace {

// ---- Replay window -------------------------------------------------------

TEST(Replay, AcceptsFreshRejectsDuplicate) {
  ReplayWindow window;
  EXPECT_TRUE(window.accept(1));
  EXPECT_TRUE(window.accept(2));
  EXPECT_FALSE(window.accept(2));
  EXPECT_FALSE(window.accept(1));
  EXPECT_EQ(window.replays_rejected(), 2u);
}

TEST(Replay, AcceptsOutOfOrderWithinWindow) {
  ReplayWindow window;
  EXPECT_TRUE(window.accept(10));
  EXPECT_TRUE(window.accept(5));
  EXPECT_TRUE(window.accept(7));
  EXPECT_FALSE(window.accept(5));
}

TEST(Replay, RejectsOlderThanWindow) {
  ReplayWindow window;
  EXPECT_TRUE(window.accept(100));
  EXPECT_FALSE(window.accept(100 - 64));  // age 64 >= window
  EXPECT_TRUE(window.accept(100 - 63));   // age 63 < window
}

TEST(Replay, LargeJumpClearsWindow) {
  ReplayWindow window;
  EXPECT_TRUE(window.accept(1));
  EXPECT_TRUE(window.accept(1000));
  EXPECT_TRUE(window.accept(999));
  EXPECT_FALSE(window.accept(1000));
}

TEST(Replay, DuplicateAtWindowEdge) {
  ReplayWindow window;
  EXPECT_TRUE(window.accept(100));
  // Oldest id still inside the 64-id window: accepted once, then a
  // replay of it must be caught (it sits on the last bitmap bit).
  EXPECT_TRUE(window.accept(100 - 63));
  EXPECT_FALSE(window.accept(100 - 63));
  // The id one past the edge is rejected outright, before and after.
  EXPECT_FALSE(window.accept(100 - 64));
  EXPECT_FALSE(window.accept(100 - 64));
  EXPECT_EQ(window.replays_rejected(), 3u);
}

TEST(Replay, AdvanceByExactlyWindowSizeClearsAllHistory) {
  ReplayWindow window;
  for (std::uint64_t id = 1; id <= 10; ++id) EXPECT_TRUE(window.accept(id));
  // shift == 64: every previously-seen id falls off the window; a
  // shift of exactly the window size must not invoke UB (x << 64).
  EXPECT_TRUE(window.accept(10 + 64));
  EXPECT_EQ(window.highest_seen(), 74u);
  // Old ids are now older-than-window, not "unseen".
  EXPECT_FALSE(window.accept(10));
  // The new highest itself is tracked.
  EXPECT_FALSE(window.accept(74));
}

TEST(Replay, AdvanceByWindowMinusOneKeepsTheOldHighest) {
  ReplayWindow window;
  EXPECT_TRUE(window.accept(10));
  EXPECT_TRUE(window.accept(10 + 63));  // old highest now at age 63
  EXPECT_FALSE(window.accept(10));      // still tracked: replay caught
  EXPECT_TRUE(window.accept(11));       // age 62, never seen: fresh
}

TEST(Replay, FarFutureSequenceNumberIsAcceptedOnceAndTracked) {
  ReplayWindow window;
  EXPECT_TRUE(window.accept(5));
  std::uint64_t far = 5 + (1ULL << 62);
  EXPECT_TRUE(window.accept(far));
  EXPECT_FALSE(window.accept(far));
  EXPECT_EQ(window.highest_seen(), far);
  // Everything between is now ancient and rejected.
  EXPECT_FALSE(window.accept(far - 64));
  EXPECT_TRUE(window.accept(far - 63));
}

TEST(Replay, WrapAroundNearMaxId) {
  // Ids close to 2^64 - 1: unsigned arithmetic on ages/shifts must not
  // wrap into false accepts.
  ReplayWindow window;
  std::uint64_t top = ~0ULL;
  EXPECT_TRUE(window.accept(top - 1));
  EXPECT_TRUE(window.accept(top));
  EXPECT_FALSE(window.accept(top));
  EXPECT_FALSE(window.accept(top - 1));
  EXPECT_TRUE(window.accept(top - 63));
  EXPECT_FALSE(window.accept(top - 64));
}

TEST(Replay, MatchesReferenceModelOverRandomStream) {
  // Property: the bitmap implementation agrees with an obvious
  // reference model (remember every id; accept iff unseen and within
  // the window of the running maximum).
  ReplayWindow window;
  Rng rng(0x5ea1);
  std::set<std::uint64_t> seen;
  std::uint64_t highest = 0;
  bool any = false;
  for (int i = 0; i < 2000; ++i) {
    std::uint64_t id = 1000 + rng.uniform(0, 200) + i / 4;
    bool expect;
    if (!any) {
      expect = true;
    } else {
      std::uint64_t top = std::max(highest, id);
      expect = (top - id < 64) && !seen.count(id);
    }
    EXPECT_EQ(window.accept(id), expect) << "id " << id << " step " << i;
    if (expect) {
      seen.insert(id);
      highest = std::max(highest, id);
      any = true;
    }
  }
}

// ---- Fragmentation ---------------------------------------------------------

TEST(Fragment, SplitSizes) {
  Bytes payload(10000, 7);
  auto frags = fragment_payload(payload, 4096);
  ASSERT_EQ(frags.size(), 3u);
  EXPECT_EQ(frags[0].size(), 4096u);
  EXPECT_EQ(frags[1].size(), 4096u);
  EXPECT_EQ(frags[2].size(), 10000u - 8192u);
}

TEST(Fragment, SmallPayloadSingleFragment) {
  auto frags = fragment_payload(Bytes(100), 9000);
  EXPECT_EQ(frags.size(), 1u);
  auto empty = fragment_payload({}, 9000);
  EXPECT_EQ(empty.size(), 1u);
  EXPECT_TRUE(empty[0].empty());
}

TEST(Fragment, ReassemblyInOrderAndOutOfOrder) {
  Rng rng(3);
  Bytes payload = rng.bytes(25000);
  auto frags = fragment_payload(payload, 9000);
  ASSERT_EQ(frags.size(), 3u);

  Reassembler reasm;
  // Out of order: 2, 0, 1.
  FragmentHeader h{1, 42, 2, 3};
  EXPECT_FALSE(reasm.add(h, Bytes(frags[2])).has_value());
  h.index = 0;
  EXPECT_FALSE(reasm.add(h, Bytes(frags[0])).has_value());
  h.index = 1;
  auto whole = reasm.add(h, Bytes(frags[1]));
  ASSERT_TRUE(whole.has_value());
  EXPECT_EQ(*whole, payload);
  EXPECT_EQ(reasm.pending_groups(), 0u);
}

TEST(Fragment, DuplicateFragmentIgnored) {
  Reassembler reasm;
  FragmentHeader h{1, 7, 0, 2};
  EXPECT_FALSE(reasm.add(h, to_bytes("ab")).has_value());
  EXPECT_FALSE(reasm.add(h, to_bytes("ab")).has_value());  // dup
  h.index = 1;
  auto whole = reasm.add(h, to_bytes("cd"));
  ASSERT_TRUE(whole.has_value());
  EXPECT_EQ(to_string(*whole), "abcd");
}

TEST(Fragment, InterleavedGroups) {
  Reassembler reasm;
  EXPECT_FALSE(reasm.add({1, 1, 0, 2}, to_bytes("A")).has_value());
  EXPECT_FALSE(reasm.add({2, 2, 0, 2}, to_bytes("X")).has_value());
  auto g1 = reasm.add({3, 1, 1, 2}, to_bytes("B"));
  ASSERT_TRUE(g1.has_value());
  EXPECT_EQ(to_string(*g1), "AB");
  auto g2 = reasm.add({4, 2, 1, 2}, to_bytes("Y"));
  ASSERT_TRUE(g2.has_value());
  EXPECT_EQ(to_string(*g2), "XY");
}

TEST(Fragment, EvictionBoundsMemory) {
  Reassembler reasm(4);
  for (std::uint32_t g = 0; g < 20; ++g)
    reasm.add({g, g, 0, 2}, to_bytes("x"));  // never completed
  EXPECT_LE(reasm.pending_groups(), 4u);
  EXPECT_EQ(reasm.evicted(), 16u);
}

TEST(Fragment, BogusHeadersRejected) {
  Reassembler reasm;
  EXPECT_FALSE(reasm.add({1, 1, 5, 3}, to_bytes("x")).has_value());  // index >= count
  EXPECT_FALSE(reasm.add({1, 1, 0, 0}, to_bytes("x")).has_value());  // count == 0
}

TEST(Fragment, FloodEvictsOldestFirstByThousands) {
  // Regression for the O(n) eviction scan: a fragment flood of
  // thousands of never-completed groups must evict strictly oldest
  // first (FIFO order) while the live set stays bounded. With the old
  // full-scan this test was O(n^2); the intrusive FIFO makes each
  // eviction O(1).
  constexpr std::uint32_t kFlood = 5000;
  Reassembler reasm(64);
  for (std::uint32_t g = 0; g < kFlood; ++g)
    reasm.add({g, g, 0, 2}, to_bytes("x"));
  EXPECT_EQ(reasm.pending_groups(), 64u);
  EXPECT_EQ(reasm.evicted(), kFlood - 64);

  // The survivors are exactly the newest 64 groups: completing each
  // of them must succeed, and completing any evicted group must not
  // (its first half is gone, so the second half reopens the group).
  for (std::uint32_t g = kFlood - 64; g < kFlood; ++g) {
    auto whole = reasm.add({kFlood + g, g, 1, 2}, to_bytes("y"));
    ASSERT_TRUE(whole.has_value()) << "group " << g << " was wrongly evicted";
    EXPECT_EQ(to_string(*whole), "xy");
  }
  EXPECT_EQ(reasm.pending_groups(), 0u);
  auto stale = reasm.add({2 * kFlood, 0, 1, 2}, to_bytes("y"));
  EXPECT_FALSE(stale.has_value());  // group 0 was evicted long ago
}

TEST(Fragment, CompletionUnlinksFifoMiddle) {
  Reassembler reasm(3);
  // Open 1..3, complete 2 (unlinks the FIFO's middle entry), refill,
  // overflow: the eviction must take group 1 (the true oldest), not
  // trip over the unlinked entry.
  reasm.add({1, 1, 0, 2}, to_bytes("a"));
  reasm.add({2, 2, 0, 2}, to_bytes("b"));
  reasm.add({3, 3, 0, 2}, to_bytes("c"));
  ASSERT_TRUE(reasm.add({4, 2, 1, 2}, to_bytes("B")).has_value());
  reasm.add({5, 4, 0, 2}, to_bytes("d"));  // fills the freed slot
  EXPECT_EQ(reasm.evicted(), 0u);
  reasm.add({6, 5, 0, 2}, to_bytes("e"));  // overflow: evicts group 1
  EXPECT_EQ(reasm.evicted(), 1u);
  // Group 3 survived (group 1 went first) and completes normally.
  auto g3 = reasm.add({7, 3, 1, 2}, to_bytes("C"));
  ASSERT_TRUE(g3.has_value());
  EXPECT_EQ(to_string(*g3), "cC");
  // Group 1 is gone: its second half reopens a fresh group instead.
  EXPECT_FALSE(reasm.add({8, 1, 1, 2}, to_bytes("A")).has_value());
}

TEST(Fragment, PoolRecyclesPartAndWholeBuffers) {
  net::PacketPool pool(16);
  Reassembler reasm(8, &pool);
  Rng rng(11);
  Bytes payload = rng.bytes(4000);
  auto frags = fragment_payload(payload, 1500);
  ASSERT_EQ(frags.size(), 3u);

  std::uint64_t id = 1;
  std::uint32_t group = 1;
  auto round_trip = [&] {
    std::optional<Bytes> whole;
    for (std::size_t i = 0; i < frags.size(); ++i) {
      Bytes part = pool.acquire_bytes();
      part.assign(frags[i].begin(), frags[i].end());
      whole = reasm.add({id++, group, static_cast<std::uint16_t>(i),
                         static_cast<std::uint16_t>(frags.size())},
                        std::move(part));
    }
    ++group;
    ASSERT_TRUE(whole.has_value());
    EXPECT_EQ(*whole, payload);
    pool.release_bytes(std::move(*whole));
  };
  round_trip();
  // Warmed up: part buffers and the reassembled whole now cycle through
  // the pool, so further round trips are pure pool hits.
  std::uint64_t misses_before = pool.misses();
  for (int i = 0; i < 20; ++i) round_trip();
  EXPECT_EQ(pool.misses(), misses_before);
  EXPECT_GT(pool.hits(), 0u);
}

TEST(Fragment, AgeHorizonExpiresStaleGroups) {
  Reassembler reasm;
  reasm.set_horizon(100);
  reasm.add({1, 1, 0, 2}, to_bytes("a"), 0);
  reasm.add({2, 2, 0, 2}, to_bytes("b"), 50);
  EXPECT_EQ(reasm.pending_groups(), 2u);
  // At 99 nothing has aged out yet (horizon not reached for anyone).
  EXPECT_EQ(reasm.expire_stale(99), 0u);
  // At 100 group 1 (born 0) is exactly horizon old and goes; group 2
  // (born 50) survives and still completes.
  EXPECT_EQ(reasm.expire_stale(100), 1u);
  EXPECT_EQ(reasm.expired(), 1u);
  auto g2 = reasm.add({3, 2, 1, 2}, to_bytes("B"), 100);
  ASSERT_TRUE(g2.has_value());
  EXPECT_EQ(to_string(*g2), "bB");
  // Group 1 is gone: its second half reopens a fresh group.
  EXPECT_FALSE(reasm.add({4, 1, 1, 2}, to_bytes("A"), 100).has_value());
}

TEST(Fragment, ZeroHorizonNeverAgesOut) {
  Reassembler reasm;  // horizon defaults to 0: count-based cap only
  reasm.add({1, 1, 0, 2}, to_bytes("a"), 0);
  EXPECT_EQ(reasm.expire_stale(1'000'000'000), 0u);
  EXPECT_EQ(reasm.pending_groups(), 1u);
}

TEST(Fragment, FloodThenIdleReclaimsEveryStaleGroup) {
  // Regression for unbounded-age fragment state: a flood of
  // never-completed groups followed by idle time must be reclaimed in
  // full by the age horizon — without the horizon the only bound was
  // the LRU cap, so a slow trickle below the cap leaked forever.
  constexpr std::uint32_t kFlood = 5000;
  Reassembler reasm(8192);
  reasm.set_horizon(1000);
  for (std::uint32_t g = 0; g < kFlood; ++g)
    reasm.add({g, g, 0, 2}, to_bytes("x"), g / 100);  // born 0..49
  EXPECT_EQ(reasm.pending_groups(), kFlood);
  EXPECT_EQ(reasm.evicted(), 0u);  // under the LRU cap: age is the bound
  // One packet after a long idle gap sweeps the whole backlog.
  reasm.add({kFlood, kFlood, 0, 2}, to_bytes("y"), 10'000);
  EXPECT_EQ(reasm.pending_groups(), 1u);
  EXPECT_EQ(reasm.expired(), kFlood);
}

// ---- Wire format ------------------------------------------------------------

TEST(Wire, MessageRoundTrip) {
  WireMessage msg;
  msg.type = MsgType::Ping;
  msg.session_id = 77;
  msg.body = to_bytes("body");
  auto back = WireMessage::parse(msg.serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->type, MsgType::Ping);
  EXPECT_EQ(back->session_id, 77u);
  EXPECT_EQ(back->body, to_bytes("body"));
}

TEST(Wire, ParseRejectsGarbage) {
  EXPECT_FALSE(WireMessage::parse(Bytes{1, 2}).ok());
  Bytes bad = {99, 0, 0, 0, 1};  // unknown type
  EXPECT_FALSE(WireMessage::parse(bad).ok());
}

// ---- Full tunnel ------------------------------------------------------------

struct TunnelFixture : ::testing::Test {
  Rng rng{31};
  sim::Clock clock;
  sgx::AttestationService ias{rng};
  ca::CertificateAuthority authority{rng, ias};
  sgx::SgxPlatform platform{"client-1", rng, clock};
  sgx::Enclave enclave{platform, "endbox-v1", sgx::SgxMode::Hardware};
  crypto::RsaKeyPair enclave_key = crypto::rsa_generate(rng);
  // Runs before `server` is constructed (member order): registers the
  // platform with the IAS and allow-lists the enclave measurement.
  bool registrations_done = [this] {
    ias.register_platform("client-1", platform.attestation_key().pub);
    authority.allow_measurement(enclave.measurement());
    return true;
  }();
  VpnServer server{rng, authority.public_key(), VpnServerConfig{}};
  ca::Certificate certificate;

  TunnelFixture() {
    sgx::QuotingEnclave qe(platform);
    auto quote = qe.quote(enclave.create_report(
        sgx::bind_report_data(enclave_key.pub.serialize())));
    auto response = authority.provision(quote->serialize(), enclave_key.pub);
    certificate = response->certificate;
  }

  VpnClientSession make_client(VpnClientConfig config = {}) {
    return VpnClientSession(rng, certificate, enclave_key, server.public_key(),
                            config);
  }

  /// Runs the handshake against an arbitrary server instance.
  VpnClientSession connect_to(VpnServer& target, VpnClientConfig config = {}) {
    VpnClientSession client(rng, certificate, enclave_key, target.public_key(),
                            config);
    auto init = client.create_handshake_init();
    auto event = target.handle(init.serialize(), clock.now());
    EXPECT_TRUE(event.ok()) << event.error();
    auto& done = std::get<VpnServer::HandshakeDone>(*event);
    auto reply = WireMessage::parse(done.reply_wire);
    EXPECT_TRUE(reply.ok());
    auto status = client.process_handshake_reply(*reply);
    EXPECT_TRUE(status.ok()) << status.error();
    return client;
  }

  /// Runs the handshake; returns the established client session.
  VpnClientSession connect(VpnClientConfig config = {}) {
    return connect_to(server, config);
  }
};

TEST_F(TunnelFixture, HandshakeEstablishes) {
  auto client = connect();
  EXPECT_TRUE(client.established());
  EXPECT_EQ(client.negotiated_version(), kVersionTls13);
  EXPECT_EQ(server.session_count(), 1u);
}

TEST_F(TunnelFixture, DataRoundTripClientToServer) {
  auto client = connect();
  Bytes ip_packet = to_bytes("pretend-ip-packet-bytes");
  auto messages = client.seal_packet(ip_packet);
  ASSERT_EQ(messages.size(), 1u);
  auto event = server.handle(messages[0].serialize(), clock.now());
  ASSERT_TRUE(event.ok()) << event.error();
  auto& packet = std::get<VpnServer::PacketIn>(*event);
  EXPECT_EQ(packet.ip_packet, ip_packet);
  EXPECT_TRUE(packet.was_encrypted);
}

TEST_F(TunnelFixture, DataRoundTripServerToClient) {
  auto client = connect();
  Bytes ip_packet = to_bytes("server pushes this");
  auto messages = server.seal_packet(client.session_id(), ip_packet);
  ASSERT_EQ(messages.size(), 1u);
  auto opened = client.open_data(messages[0]);
  ASSERT_TRUE(opened.ok()) << opened.error();
  ASSERT_TRUE(opened->has_value());
  EXPECT_EQ(**opened, ip_packet);
}

TEST_F(TunnelFixture, LargePacketsFragmentAndReassemble) {
  VpnClientConfig config;
  config.mtu = 9000;
  auto client = connect(config);
  Rng data_rng(5);
  Bytes big = data_rng.bytes(64 * 1024);
  auto messages = client.seal_packet(big);
  EXPECT_EQ(messages.size(), 8u);  // ceil(65536 / 9000)
  for (std::size_t i = 0; i + 1 < messages.size(); ++i) {
    auto event = server.handle(messages[i].serialize(), clock.now());
    ASSERT_TRUE(event.ok());
    EXPECT_TRUE(std::holds_alternative<VpnServer::FragmentPending>(*event));
  }
  auto last = server.handle(messages.back().serialize(), clock.now());
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(std::get<VpnServer::PacketIn>(*last).ip_packet, big);
}

TEST_F(TunnelFixture, OpenBatchDeliversMixedSessionsInArrivalOrder) {
  auto alice = connect();
  auto bob = connect();
  // An interleaved uplink train: alice, bob, alice.
  std::vector<Bytes> frames;
  std::size_t n = 0;
  n = alice.seal_packet_wire_at(to_bytes("alice-1"), frames, n);
  n = bob.seal_packet_wire_at(to_bytes("bob-1"), frames, n);
  n = alice.seal_packet_wire_at(to_bytes("alice-2"), frames, n);
  ASSERT_EQ(n, 3u);

  VpnServer::OpenBatch out;
  server.open_batch(std::span<const Bytes>(frames.data(), n), clock.now(), out);
  EXPECT_EQ(out.complete, 3u);
  EXPECT_EQ(out.rejected, 0u);
  EXPECT_EQ(out.pending, 0u);
  ASSERT_EQ(out.packet_count, 3u);
  EXPECT_EQ(to_string(out.packets[0].ip_packet), "alice-1");
  EXPECT_EQ(out.packets[0].session_id, alice.session_id());
  EXPECT_EQ(to_string(out.packets[1].ip_packet), "bob-1");
  EXPECT_EQ(out.packets[1].session_id, bob.session_id());
  EXPECT_EQ(to_string(out.packets[2].ip_packet), "alice-2");
}

TEST_F(TunnelFixture, OpenBatchReassemblesFragmentsAcrossTheTrain) {
  VpnClientConfig config;
  config.mtu = 100;
  auto client = connect(config);
  Rng data_rng(9);
  Bytes big = data_rng.bytes(250);  // 3 fragments
  std::vector<Bytes> frames;
  std::size_t n = client.seal_packet_wire_at(big, frames, 0);
  ASSERT_EQ(n, 3u);

  VpnServer::OpenBatch out;
  server.open_batch(std::span<const Bytes>(frames.data(), n), clock.now(), out);
  EXPECT_EQ(out.complete, 1u);
  EXPECT_EQ(out.pending, 2u);
  ASSERT_EQ(out.packet_count, 1u);
  EXPECT_EQ(out.packets[0].ip_packet, big);
}

TEST_F(TunnelFixture, OpenBatchRejectsBadFramesIndividually) {
  auto client = connect();
  std::vector<Bytes> frames;
  std::size_t n = 0;
  n = client.seal_packet_wire_at(to_bytes("good-1"), frames, n);
  n = client.seal_packet_wire_at(to_bytes("tampered"), frames, n);
  n = client.seal_packet_wire_at(to_bytes("good-2"), frames, n);
  ASSERT_EQ(n, 3u);
  frames[1].back() ^= 0x01;  // corrupt the MAC of the middle frame

  std::uint64_t auth_before = server.auth_failures();
  VpnServer::OpenBatch out;
  server.open_batch(std::span<const Bytes>(frames.data(), n), clock.now(), out);
  EXPECT_EQ(out.complete, 2u);
  EXPECT_EQ(out.rejected, 1u);
  EXPECT_EQ(server.auth_failures(), auth_before + 1);
  ASSERT_EQ(out.packet_count, 2u);
  EXPECT_EQ(to_string(out.packets[0].ip_packet), "good-1");
  EXPECT_EQ(to_string(out.packets[1].ip_packet), "good-2");

  // A ping frame does not belong on the batched data drain.
  Bytes ping = client.create_ping().serialize();
  std::vector<Bytes> control{ping};
  server.open_batch(std::span<const Bytes>(control.data(), 1), clock.now(), out);
  EXPECT_EQ(out.rejected, 1u);
  EXPECT_EQ(out.complete, 0u);
}

TEST_F(TunnelFixture, OpenBatchEnforcesReplayWindowInOrder) {
  auto client = connect();
  std::vector<Bytes> frames;
  std::size_t n = 0;
  n = client.seal_packet_wire_at(to_bytes("one"), frames, n);
  n = client.seal_packet_wire_at(to_bytes("two"), frames, n);

  VpnServer::OpenBatch out;
  server.open_batch(std::span<const Bytes>(frames.data(), n), clock.now(), out);
  EXPECT_EQ(out.complete, 2u);

  // Replaying the identical train: every frame rejected, none delivered.
  std::uint64_t replays_before = server.replays_rejected();
  server.open_batch(std::span<const Bytes>(frames.data(), n), clock.now(), out);
  EXPECT_EQ(out.complete, 0u);
  EXPECT_EQ(out.rejected, 2u);
  EXPECT_EQ(server.replays_rejected(), replays_before + 2);
}

TEST_F(TunnelFixture, OpenBatchMatchesPerFrameReplayAndDeliveryCounts) {
  // The same train through open_batch and through frame-at-a-time
  // handle() on a twin session must deliver identical packet sequences.
  auto batch_client = connect();
  auto frame_client = connect();
  Rng data_rng(21);
  std::vector<Bytes> payloads;
  for (int i = 0; i < 8; ++i) payloads.push_back(data_rng.bytes(40 + 13 * i));

  std::vector<Bytes> batch_frames;
  std::size_t n = 0;
  for (const Bytes& p : payloads)
    n = batch_client.seal_packet_wire_at(p, batch_frames, n);
  VpnServer::OpenBatch out;
  server.open_batch(std::span<const Bytes>(batch_frames.data(), n), clock.now(), out);
  ASSERT_EQ(out.packet_count, payloads.size());

  std::vector<Bytes> frame_frames;
  std::size_t m = 0;
  for (const Bytes& p : payloads)
    m = frame_client.seal_packet_wire_at(p, frame_frames, m);
  for (std::size_t i = 0; i < m; ++i) {
    auto event = server.handle(frame_frames[i], clock.now());
    ASSERT_TRUE(event.ok()) << event.error();
    auto* in = std::get_if<VpnServer::PacketIn>(&*event);
    ASSERT_NE(in, nullptr);
    EXPECT_EQ(in->ip_packet, out.packets[i].ip_packet);
  }
}

TEST_F(TunnelFixture, SealBatchRoundTripsThroughTheClient) {
  auto client = connect();
  Bytes a = to_bytes("downlink-a");
  Bytes b = to_bytes("downlink-b-longer");
  std::array<ByteView, 2> packets{ByteView(a), ByteView(b)};
  std::vector<Bytes> frames;
  std::size_t n = server.seal_batch(client.session_id(), packets, frames);
  ASSERT_EQ(n, 2u);
  for (std::size_t i = 0; i < n; ++i) {
    auto msg = WireMessage::parse(frames[i]);
    ASSERT_TRUE(msg.ok());
    auto opened = client.open_data(*msg);
    ASSERT_TRUE(opened.ok()) << opened.error();
    ASSERT_TRUE(opened->has_value());
    EXPECT_EQ(**opened, i == 0 ? a : b);
  }
}

TEST_F(TunnelFixture, CiphertextRevealsNothingObvious) {
  auto client = connect();
  Bytes secret = to_bytes("SUPER-SECRET-MARKER");
  auto wire = client.seal_packet(secret)[0].serialize();
  // The plaintext marker must not appear in the sealed message.
  auto it = std::search(wire.begin(), wire.end(), secret.begin(), secret.end());
  EXPECT_EQ(it, wire.end());
}

TEST_F(TunnelFixture, TamperedDataRejected) {
  auto client = connect();
  auto msg = client.seal_packet(to_bytes("payload"))[0];
  msg.body[msg.body.size() / 2] ^= 1;
  EXPECT_FALSE(server.handle(msg.serialize(), clock.now()).ok());
  EXPECT_EQ(server.auth_failures(), 1u);
}

TEST_F(TunnelFixture, ReplayedTrafficRejected) {
  auto client = connect();
  auto wire = client.seal_packet(to_bytes("payload"))[0].serialize();
  EXPECT_TRUE(server.handle(wire, clock.now()).ok());
  auto replay = server.handle(wire, clock.now());
  EXPECT_FALSE(replay.ok());
  EXPECT_NE(replay.error().find("replay"), std::string::npos);
  EXPECT_EQ(server.replays_rejected(), 1u);
}

TEST_F(TunnelFixture, UnknownSessionRejected) {
  auto client = connect();
  auto msg = client.seal_packet(to_bytes("x"))[0];
  msg.session_id = 999;
  EXPECT_FALSE(server.handle(msg.serialize(), clock.now()).ok());
}

TEST_F(TunnelFixture, ForgedCertificateRejected) {
  // Self-issued certificate: not signed by the network CA.
  auto attacker_key = crypto::rsa_generate(rng);
  ca::Certificate forged;
  forged.subject_key = attacker_key.pub;
  forged.serial = 1;
  forged.signature = crypto::rsa_sign(attacker_key, forged.signed_portion());
  VpnClientSession attacker(rng, forged, attacker_key, server.public_key(), {});
  auto init = attacker.create_handshake_init();
  auto event = server.handle(init.serialize(), clock.now());
  EXPECT_FALSE(event.ok());
  EXPECT_EQ(server.handshakes_rejected(), 1u);
  EXPECT_EQ(server.session_count(), 0u);
}

TEST_F(TunnelFixture, DowngradeRejectedByServer) {
  auto client = make_client();
  auto init = client.create_handshake_init(0x0301);  // TLS 1.0
  EXPECT_FALSE(server.handle(init.serialize(), clock.now()).ok());
}

TEST_F(TunnelFixture, DowngradeRejectedInsideEnclaveCheck) {
  // A MITM rewrites the reply to claim TLS 1.0: client-side (in-enclave)
  // check must reject even if the signature were somehow valid; here the
  // signature check also fails — both defenses hold.
  auto client = make_client();
  auto init = client.create_handshake_init();
  auto event = server.handle(init.serialize(), clock.now());
  ASSERT_TRUE(event.ok());
  auto reply = WireMessage::parse(std::get<VpnServer::HandshakeDone>(*event).reply_wire);
  ASSERT_TRUE(reply.ok());
  reply->body[0] = 0x03;
  reply->body[1] = 0x01;  // claim TLS 1.0
  EXPECT_FALSE(client.process_handshake_reply(*reply).ok());
}

TEST_F(TunnelFixture, IntegrityOnlyModeRequiresServerPolicy) {
  VpnClientConfig isp_config;
  isp_config.encrypt_data = false;
  auto client = connect(isp_config);
  auto msg = client.seal_packet(to_bytes("isp traffic"))[0];
  EXPECT_EQ(msg.type, MsgType::DataIntegrityOnly);
  // Default server policy: reject.
  EXPECT_FALSE(server.handle(msg.serialize(), clock.now()).ok());
}

TEST_F(TunnelFixture, IntegrityOnlyModeWorksWhenAllowed) {
  VpnServerConfig server_config;
  server_config.allow_integrity_only = true;
  VpnServer isp_server(rng, authority.public_key(), server_config);
  VpnClientConfig isp_config;
  isp_config.encrypt_data = false;
  VpnClientSession client(rng, certificate, enclave_key, isp_server.public_key(),
                          isp_config);
  auto event = isp_server.handle(client.create_handshake_init().serialize(), 0);
  ASSERT_TRUE(event.ok()) << event.error();
  auto reply = WireMessage::parse(std::get<VpnServer::HandshakeDone>(*event).reply_wire);
  ASSERT_TRUE(client.process_handshake_reply(*reply).ok());

  auto msg = client.seal_packet(to_bytes("isp traffic"))[0];
  auto data_event = isp_server.handle(msg.serialize(), 0);
  ASSERT_TRUE(data_event.ok()) << data_event.error();
  auto& packet = std::get<VpnServer::PacketIn>(*data_event);
  EXPECT_FALSE(packet.was_encrypted);
  EXPECT_EQ(packet.ip_packet, to_bytes("isp traffic"));
  // Integrity still enforced:
  auto msg2 = client.seal_packet(to_bytes("isp traffic 2"))[0];
  msg2.body[20] ^= 1;
  EXPECT_FALSE(isp_server.handle(msg2.serialize(), 0).ok());
}

TEST_F(TunnelFixture, PingCarriesConfigVersionBothWays) {
  auto client = connect();
  // Server -> client ping announces version + grace.
  server.announce_config(5, 30, clock.now());
  auto server_ping = server.create_ping(client.session_id());
  auto info = client.process_ping(server_ping);
  ASSERT_TRUE(info.ok()) << info.error();
  EXPECT_EQ(info->config_version, 5u);
  EXPECT_EQ(info->grace_period_secs, 30u);

  // Client -> server ping proves the update was applied.
  client.set_config_version(5);
  auto event = server.handle(client.create_ping().serialize(), clock.now());
  ASSERT_TRUE(event.ok());
  EXPECT_EQ(std::get<VpnServer::PingIn>(*event).info.config_version, 5u);
  EXPECT_EQ(server.session_config_version(client.session_id()), 5u);
}

TEST_F(TunnelFixture, CraftedPingRejected) {
  auto client = connect();
  WireMessage forged;
  forged.type = MsgType::Ping;
  forged.session_id = client.session_id();
  PingInfo fake{1, 999, 0};
  SessionKeys wrong_keys{Bytes(16, 0), Bytes(32, 0)};
  forged.body = seal_ping_body(wrong_keys, fake);
  EXPECT_FALSE(server.handle(forged.serialize(), clock.now()).ok());
  EXPECT_EQ(server.auth_failures(), 1u);
}

TEST_F(TunnelFixture, StaleConfigBlockedAfterGrace) {
  auto client = connect();  // client at config version 1
  ASSERT_TRUE(server.handle(client.seal_packet(to_bytes("ok")) [0].serialize(),
                            clock.now()).ok());

  server.announce_config(2, 10, clock.now());  // v2, 10 s grace

  // During grace: old config still accepted.
  clock.advance_to(5 * sim::kSecond);
  EXPECT_TRUE(server.handle(client.seal_packet(to_bytes("still ok"))[0].serialize(),
                            clock.now()).ok());

  // After grace: blocked.
  clock.advance_to(11 * sim::kSecond);
  auto blocked = server.handle(client.seal_packet(to_bytes("nope"))[0].serialize(),
                               clock.now());
  EXPECT_FALSE(blocked.ok());
  EXPECT_NE(blocked.error().find("stale"), std::string::npos);
  EXPECT_EQ(server.stale_config_drops(), 1u);

  // Client updates and proves it via ping: traffic flows again.
  client.set_config_version(2);
  ASSERT_TRUE(server.handle(client.create_ping().serialize(), clock.now()).ok());
  EXPECT_TRUE(server.handle(client.seal_packet(to_bytes("fresh"))[0].serialize(),
                            clock.now()).ok());
}

TEST_F(TunnelFixture, ConfigVersionCannotRollBack) {
  auto client = connect();
  client.set_config_version(5);
  ASSERT_TRUE(server.handle(client.create_ping().serialize(), clock.now()).ok());
  EXPECT_EQ(server.session_config_version(client.session_id()), 5u);
  // A malicious ping claiming an older version must not roll back.
  client.set_config_version(3);
  ASSERT_TRUE(server.handle(client.create_ping().serialize(), clock.now()).ok());
  EXPECT_EQ(server.session_config_version(client.session_id()), 5u);
}

TEST_F(TunnelFixture, AnnounceConfigIgnoresOldVersions) {
  server.announce_config(5, 10, clock.now());
  server.announce_config(3, 10, clock.now());
  EXPECT_EQ(server.current_config_version(), 5u);
}

TEST_F(TunnelFixture, MultipleClients) {
  auto c1 = connect();
  auto c2 = connect();
  EXPECT_NE(c1.session_id(), c2.session_id());
  EXPECT_EQ(server.session_count(), 2u);
  auto e1 = server.handle(c1.seal_packet(to_bytes("from c1"))[0].serialize(), 0);
  auto e2 = server.handle(c2.seal_packet(to_bytes("from c2"))[0].serialize(), 0);
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ(std::get<VpnServer::PacketIn>(*e1).session_id, c1.session_id());
  EXPECT_EQ(std::get<VpnServer::PacketIn>(*e2).session_id, c2.session_id());
}

// ---- Session lifecycle ------------------------------------------------------

TEST_F(TunnelFixture, IdleSessionExpiresAndFiresCloseHook) {
  VpnServerConfig config;
  config.session_idle_timeout = 30 * sim::kSecond;
  VpnServer srv(rng, authority.public_key(), config);
  std::vector<std::uint32_t> closed;
  srv.set_session_close_hook([&](std::uint32_t id) { closed.push_back(id); });

  auto active = connect_to(srv);
  auto idle = connect_to(srv);
  EXPECT_EQ(srv.session_count(), 2u);

  // Only `active` keeps talking.
  clock.advance_to(20 * sim::kSecond);
  ASSERT_TRUE(srv.handle(active.seal_packet(to_bytes("keepalive"))[0].serialize(),
                         clock.now())
                  .ok());
  // 31 s in: `idle` (silent since its handshake at t=0) is past the
  // timeout; the sweep runs on the next frame the server sees.
  clock.advance_to(31 * sim::kSecond);
  ASSERT_TRUE(srv.handle(active.seal_packet(to_bytes("tick"))[0].serialize(),
                         clock.now())
                  .ok());
  EXPECT_EQ(srv.session_count(), 1u);
  EXPECT_EQ(srv.sessions_expired(), 1u);
  EXPECT_EQ(closed, (std::vector<std::uint32_t>{idle.session_id()}));
  EXPECT_TRUE(srv.has_session(active.session_id()));
  // The expired session's traffic is now rejected like any unknown id.
  EXPECT_FALSE(srv.handle(idle.seal_packet(to_bytes("x"))[0].serialize(),
                          clock.now())
                   .ok());
}

TEST_F(TunnelFixture, CloseSessionDropsStateAndFiresHook) {
  std::vector<std::uint32_t> closed;
  server.set_session_close_hook([&](std::uint32_t id) { closed.push_back(id); });
  auto client = connect();
  EXPECT_TRUE(server.close_session(client.session_id()));
  EXPECT_FALSE(server.close_session(client.session_id()));  // already gone
  EXPECT_EQ(server.session_count(), 0u);
  EXPECT_EQ(closed, (std::vector<std::uint32_t>{client.session_id()}));
  EXPECT_FALSE(server.handle(client.seal_packet(to_bytes("x"))[0].serialize(),
                             clock.now())
                   .ok());
  // Re-key: a fresh handshake establishes a brand-new session.
  auto again = connect();
  EXPECT_TRUE(server.has_session(again.session_id()));
  EXPECT_EQ(server.session_count(), 1u);
}

TEST_F(TunnelFixture, HandshakeRejectedWhenShardAtCapacity) {
  VpnServerConfig config;
  config.session_capacity_per_shard = 2;
  VpnServer srv(rng, authority.public_key(), config);
  auto a = connect_to(srv);
  connect_to(srv);
  VpnClientSession third(rng, certificate, enclave_key, srv.public_key(), {});
  auto event = srv.handle(third.create_handshake_init().serialize(), clock.now());
  EXPECT_FALSE(event.ok());
  EXPECT_NE(event.error().find("capacity"), std::string::npos);
  EXPECT_EQ(srv.sessions_rejected_full(), 1u);
  EXPECT_EQ(srv.handshakes_rejected(), 1u);
  EXPECT_EQ(srv.session_count(), 2u);
  // Closing one session makes room for the next admission.
  EXPECT_TRUE(srv.close_session(a.session_id()));
  connect_to(srv);
  EXPECT_EQ(srv.session_count(), 2u);
  EXPECT_EQ(srv.shard_peak_sessions(0), 2u);
}

TEST_F(TunnelFixture, GarbageFloodDoesNotKeepSessionAlive) {
  // Only authenticated traffic counts as session activity: an attacker
  // spraying tampered frames at a session id must not extend its life.
  VpnServerConfig config;
  config.session_idle_timeout = 30 * sim::kSecond;
  VpnServer srv(rng, authority.public_key(), config);
  auto client = connect_to(srv);
  auto msg = client.seal_packet(to_bytes("payload"))[0];
  msg.body[msg.body.size() / 2] ^= 1;  // break the MAC
  Bytes tampered = msg.serialize();
  for (sim::Time t = 5; t <= 25; t += 10) {
    clock.advance_to(t * sim::kSecond);
    EXPECT_FALSE(srv.handle(tampered, clock.now()).ok());
    EXPECT_EQ(srv.session_last_activity(client.session_id()), 0u);
  }
  clock.advance_to(30 * sim::kSecond);
  EXPECT_FALSE(srv.handle(tampered, clock.now()).ok());
  EXPECT_EQ(srv.session_count(), 0u);
  EXPECT_EQ(srv.sessions_expired(), 1u);
}

TEST_F(TunnelFixture, FragmentHorizonDropsStaleGroupsInTheServer) {
  VpnServerConfig config;
  config.fragment_horizon = 5 * sim::kSecond;
  VpnServer srv(rng, authority.public_key(), config);
  VpnClientConfig client_config;
  client_config.mtu = 100;
  auto client = connect_to(srv, client_config);
  Rng data_rng(17);
  Bytes big = data_rng.bytes(250);  // 3 fragments
  auto messages = client.seal_packet(big);
  ASSERT_EQ(messages.size(), 3u);
  for (int i = 0; i < 2; ++i) {
    auto event = srv.handle(messages[static_cast<std::size_t>(i)].serialize(),
                            clock.now());
    ASSERT_TRUE(event.ok());
    EXPECT_TRUE(std::holds_alternative<VpnServer::FragmentPending>(*event));
  }
  // The last fragment lands 10 s later: the half-built group (born at
  // t=0) aged out, so instead of completing it reopens a fresh group.
  clock.advance_to(10 * sim::kSecond);
  auto late = srv.handle(messages[2].serialize(), clock.now());
  ASSERT_TRUE(late.ok());
  EXPECT_TRUE(std::holds_alternative<VpnServer::FragmentPending>(*late));
  EXPECT_EQ(srv.fragments_expired(), 1u);
  // A fresh large packet delivered promptly still reassembles fine.
  Bytes big2 = data_rng.bytes(250);
  auto messages2 = client.seal_packet(big2);
  ASSERT_EQ(messages2.size(), 3u);
  for (std::size_t i = 0; i + 1 < messages2.size(); ++i)
    ASSERT_TRUE(srv.handle(messages2[i].serialize(), clock.now()).ok());
  auto done = srv.handle(messages2.back().serialize(), clock.now());
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(std::get<VpnServer::PacketIn>(*done).ip_packet, big2);
}

TEST_F(TunnelFixture, SealBeforeHandshakeThrows) {
  auto client = make_client();
  EXPECT_THROW(client.seal_packet(to_bytes("x")), std::logic_error);
  EXPECT_THROW(client.create_ping(), std::logic_error);
}

// ---- Robustness: mutation fuzz, duplicate handshakes, re-key ---------------

TEST_F(TunnelFixture, MutationFuzzDataFrameEveryByteRejectsCleanly) {
  auto client = connect();
  std::vector<Bytes> frames;
  client.seal_packet_wire(to_bytes("fuzz-me-until-i-break"), frames);
  ASSERT_EQ(frames.size(), 1u);
  const Bytes valid = frames[0];
  VpnServer::OpenBatch out;
  std::vector<Bytes> train(1);
  for (std::size_t i = 0; i < valid.size(); ++i) {
    for (std::uint8_t mask : {std::uint8_t{0x01}, std::uint8_t{0x80}}) {
      train[0] = valid;
      train[0][i] ^= mask;
      // Typed rejection, no throw, no state advanced.
      server.open_batch(train, clock.now(), out);
      EXPECT_EQ(out.complete, 0u) << "byte " << i << " mask " << int(mask);
      EXPECT_EQ(out.rejected, 1u) << "byte " << i << " mask " << int(mask);
    }
  }
  // Truncations of every length reject cleanly too.
  for (std::size_t len = 0; len < valid.size(); ++len) {
    train[0].assign(valid.begin(), valid.begin() + static_cast<std::ptrdiff_t>(len));
    server.open_batch(train, clock.now(), out);
    EXPECT_EQ(out.complete, 0u) << "len " << len;
  }
  // No mutant advanced the replay window: the pristine frame, with the
  // very packet id every mutant carried, still opens.
  train[0] = valid;
  server.open_batch(train, clock.now(), out);
  ASSERT_EQ(out.complete, 1u);
  EXPECT_EQ(Bytes(out.packets[0].ip_packet), to_bytes("fuzz-me-until-i-break"));
}

TEST_F(TunnelFixture, MutationFuzzHandshakeReplyEveryByteRejectsCleanly) {
  auto client = make_client();
  auto init = client.create_handshake_init();
  auto event = server.handle(init.serialize(), clock.now());
  ASSERT_TRUE(event.ok()) << event.error();
  const Bytes valid = std::get<VpnServer::HandshakeDone>(*event).reply_wire;
  for (std::size_t i = 0; i < valid.size(); ++i) {
    for (std::uint8_t mask : {std::uint8_t{0x01}, std::uint8_t{0x80}}) {
      Bytes mutant = valid;
      mutant[i] ^= mask;
      auto parsed = WireMessage::parse(mutant);
      if (!parsed.ok()) continue;  // typed parse error: also fine
      auto status = client.process_handshake_reply(*parsed);
      EXPECT_FALSE(status.ok()) << "byte " << i << " mask " << int(mask);
      EXPECT_FALSE(client.established());
    }
    // Truncated replies reject without throwing (ByteReader bounds).
    Bytes short_reply(valid.begin(), valid.begin() + static_cast<std::ptrdiff_t>(i));
    auto parsed = WireMessage::parse(short_reply);
    if (parsed.ok()) {
      EXPECT_FALSE(client.process_handshake_reply(*parsed).ok());
    }
  }
  // The untouched reply still completes the handshake afterwards.
  auto parsed = WireMessage::parse(valid);
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(client.process_handshake_reply(*parsed).ok());
  EXPECT_TRUE(client.established());
}

TEST_F(TunnelFixture, DuplicateHandshakeInitMintsNoSecondSession) {
  auto client = make_client();
  Bytes init = client.create_handshake_init().serialize();
  auto first = server.handle(init, clock.now());
  ASSERT_TRUE(first.ok()) << first.error();
  auto& done1 = std::get<VpnServer::HandshakeDone>(*first);
  // The network (or the retransmission layer) delivers the same init
  // again: the dedupe cache answers with the SAME session and reply.
  auto second = server.handle(init, clock.now());
  ASSERT_TRUE(second.ok()) << second.error();
  auto& done2 = std::get<VpnServer::HandshakeDone>(*second);
  EXPECT_EQ(done1.session_id, done2.session_id);
  EXPECT_EQ(done1.reply_wire, done2.reply_wire);
  EXPECT_EQ(server.session_count(), 1u);
  EXPECT_EQ(server.handshakes_deduped(), 1u);
}

TEST_F(TunnelFixture, DuplicateHandshakeReplyDoesNotResetTheSession) {
  auto client = make_client();
  auto event = server.handle(client.create_handshake_init().serialize(),
                             clock.now());
  ASSERT_TRUE(event.ok());
  auto reply = WireMessage::parse(
      std::get<VpnServer::HandshakeDone>(*event).reply_wire);
  ASSERT_TRUE(reply.ok());
  ASSERT_TRUE(client.process_handshake_reply(*reply).ok());
  // Send some data so the replay window has advanced past zero.
  for (int i = 0; i < 3; ++i) {
    auto sent = client.seal_packet(to_bytes("pkt"));
    ASSERT_TRUE(server.handle(sent[0].serialize(), clock.now()).ok());
  }
  // The duplicated reply lands again: success with no state change —
  // keys, session id and the replay window all survive.
  ASSERT_TRUE(client.process_handshake_reply(*reply).ok());
  auto sent = client.seal_packet(to_bytes("after-dup"));
  auto opened = server.handle(sent[0].serialize(), clock.now());
  ASSERT_TRUE(opened.ok()) << opened.error();
  EXPECT_EQ(std::get<VpnServer::PacketIn>(*opened).ip_packet,
            to_bytes("after-dup"));
}

TEST_F(TunnelFixture, StaleReplyCannotCompleteANewHandshakeCycle) {
  auto client = make_client();
  auto event = server.handle(client.create_handshake_init().serialize(),
                             clock.now());
  ASSERT_TRUE(event.ok());
  auto old_reply = WireMessage::parse(
      std::get<VpnServer::HandshakeDone>(*event).reply_wire);
  ASSERT_TRUE(old_reply.ok());
  ASSERT_TRUE(client.process_handshake_reply(*old_reply).ok());
  // The client re-keys (new nonce): a duplicate of the OLD reply must
  // not falsely complete the NEW cycle — its signature binds the old
  // client nonce.
  client.create_handshake_init();
  EXPECT_FALSE(client.established());
  EXPECT_FALSE(client.process_handshake_reply(*old_reply).ok());
  EXPECT_FALSE(client.established());
}

TEST_F(TunnelFixture, RekeyDropsPendingFragmentsOfTheOldSession) {
  // Server-side MTU governs server->client fragmentation.
  VpnServerConfig small_mtu;
  small_mtu.mtu = 100;
  VpnServer srv(rng, authority.public_key(), small_mtu);
  auto client = connect_to(srv);
  std::uint32_t old_session = client.session_id();
  Rng data_rng(23);
  Bytes old_packet = data_rng.bytes(250);
  auto old_frags = srv.seal_packet(old_session, old_packet);
  ASSERT_EQ(old_frags.size(), 3u);
  // Two of three old-session fragments arrive, then the client re-keys.
  ASSERT_TRUE(client.open_data(old_frags[0]).ok());
  ASSERT_TRUE(client.open_data(old_frags[1]).ok());
  auto init = client.create_handshake_init();
  auto event = srv.handle(init.serialize(), clock.now());
  ASSERT_TRUE(event.ok());
  auto reply = WireMessage::parse(
      std::get<VpnServer::HandshakeDone>(*event).reply_wire);
  ASSERT_TRUE(client.process_handshake_reply(*reply).ok());
  // The straggler fragment of the old session fails the new keys' MAC
  // — and, crucially, the half-built old group is gone, so nothing can
  // ever complete from a mix of old and new fragments.
  EXPECT_FALSE(client.open_data(old_frags[2]).ok());
  Bytes new_packet = data_rng.bytes(250);
  auto new_frags = srv.seal_packet(client.session_id(), new_packet);
  ASSERT_EQ(new_frags.size(), 3u);
  std::optional<Bytes> assembled;
  for (const auto& frag : new_frags) {
    auto opened = client.open_data(frag);
    ASSERT_TRUE(opened.ok()) << opened.error();
    if (opened->has_value()) assembled = std::move(**opened);
  }
  ASSERT_TRUE(assembled.has_value());
  EXPECT_EQ(*assembled, new_packet);
}

TEST_F(TunnelFixture, CorruptFragmentNeverPoisonsReassembly) {
  VpnClientConfig config;
  config.mtu = 100;
  auto client = connect(config);
  Rng data_rng(29);
  Bytes packet = data_rng.bytes(250);
  auto frags = client.seal_packet(packet);
  ASSERT_EQ(frags.size(), 3u);
  // The middle fragment arrives corrupted, the rest intact and out of
  // order. The corrupt copy is rejected before touching the group.
  Bytes corrupt = frags[1].serialize();
  corrupt[corrupt.size() / 2] ^= 0x40;
  ASSERT_TRUE(server.handle(frags[2].serialize(), clock.now()).ok());
  EXPECT_FALSE(server.handle(corrupt, clock.now()).ok());
  ASSERT_TRUE(server.handle(frags[0].serialize(), clock.now()).ok());
  // A pristine retransmit of the middle fragment completes the packet.
  auto done = server.handle(frags[1].serialize(), clock.now());
  ASSERT_TRUE(done.ok()) << done.error();
  EXPECT_EQ(std::get<VpnServer::PacketIn>(*done).ip_packet, packet);
}

TEST_F(TunnelFixture, DuplicatedFragmentAssemblesExactlyOnce) {
  VpnClientConfig config;
  config.mtu = 100;
  auto client = connect(config);
  Rng data_rng(31);
  Bytes packet = data_rng.bytes(250);
  auto frags = client.seal_packet(packet);
  ASSERT_EQ(frags.size(), 3u);
  ASSERT_TRUE(server.handle(frags[0].serialize(), clock.now()).ok());
  // The network duplicates a fragment: the copy is a replay (each
  // fragment carries its own packet id) and is rejected.
  EXPECT_FALSE(server.handle(frags[0].serialize(), clock.now()).ok());
  ASSERT_TRUE(server.handle(frags[1].serialize(), clock.now()).ok());
  auto done = server.handle(frags[2].serialize(), clock.now());
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(std::get<VpnServer::PacketIn>(*done).ip_packet, packet);
}

TEST_F(TunnelFixture, ServerRestartClosesEverySessionAndInvalidatesTheEpoch) {
  auto alice = connect();
  auto bob = connect();
  std::vector<std::uint32_t> closed;
  server.set_session_close_hook(
      [&](std::uint32_t id) { closed.push_back(id); });
  EXPECT_EQ(server.restart(), 2u);
  EXPECT_EQ(server.session_count(), 0u);
  EXPECT_EQ(closed.size(), 2u);
  // Old-epoch traffic bounces: the restarted server has no sessions.
  auto stale = alice.seal_packet(to_bytes("stale"));
  EXPECT_FALSE(server.handle(stale[0].serialize(), clock.now()).ok());
  // Re-handshaking works, and the dedupe cache was emptied too: the
  // same server mints fresh sessions for the new epoch.
  auto event = server.handle(bob.create_handshake_init().serialize(),
                             clock.now());
  ASSERT_TRUE(event.ok()) << event.error();
  auto reply = WireMessage::parse(
      std::get<VpnServer::HandshakeDone>(*event).reply_wire);
  ASSERT_TRUE(bob.process_handshake_reply(*reply).ok());
  auto fresh = bob.seal_packet(to_bytes("fresh"));
  auto opened = server.handle(fresh[0].serialize(), clock.now());
  ASSERT_TRUE(opened.ok()) << opened.error();
  EXPECT_EQ(std::get<VpnServer::PacketIn>(*opened).ip_packet,
            to_bytes("fresh"));
  EXPECT_EQ(server.handshakes_deduped(), 0u);
}

TEST_F(TunnelFixture, LruEvictionAdmitsAStormWithinTheCapacityBound) {
  VpnServerConfig config;
  config.session_capacity_per_shard = 4;
  config.lru_eviction = true;
  config.handshake_pin = 0;  // storm clients never speak again: evictable
  VpnServer srv(rng, authority.public_key(), config);
  sim::Time now = 0;
  for (int i = 0; i < 16; ++i) {
    now += sim::kMillisecond;
    VpnClientSession client(rng, certificate, enclave_key, srv.public_key(),
                            {});
    auto event = srv.handle(client.create_handshake_init().serialize(), now);
    ASSERT_TRUE(event.ok()) << event.error();
    ASSERT_LE(srv.session_count(), 4u);
  }
  EXPECT_EQ(srv.sessions_evicted_lru(), 12u);
  EXPECT_EQ(srv.sessions_rejected_full(), 0u);
}

TEST_F(TunnelFixture, HandshakePinShieldsMidHandshakeSessionsFromTheStorm) {
  VpnServerConfig config;
  config.session_capacity_per_shard = 4;
  config.lru_eviction = true;
  config.handshake_pin = 10 * sim::kSecond;
  VpnServer srv(rng, authority.public_key(), config);
  // Every admitted session is still inside its handshake grace: a
  // storm cannot evict any of them, so the table rejects instead.
  sim::Time now = 0;
  std::vector<VpnClientSession> clients;
  for (int i = 0; i < 8; ++i) {
    now += sim::kMillisecond;
    clients.emplace_back(rng, certificate, enclave_key, srv.public_key(),
                         VpnClientConfig{});
    auto event =
        srv.handle(clients.back().create_handshake_init().serialize(), now);
    if (i < 4) {
      ASSERT_TRUE(event.ok()) << event.error();
      auto reply = WireMessage::parse(
          std::get<VpnServer::HandshakeDone>(*event).reply_wire);
      ASSERT_TRUE(clients.back().process_handshake_reply(*reply).ok());
    } else {
      EXPECT_FALSE(event.ok());  // mid-handshake sessions never evicted
    }
  }
  EXPECT_EQ(srv.session_count(), 4u);
  EXPECT_EQ(srv.sessions_evicted_lru(), 0u);
  EXPECT_GT(srv.sessions_rejected_full(), 0u);
  // An authenticated data frame unpins its session, making it fair
  // game: the next storm handshake evicts exactly that one.
  auto sent = clients[0].seal_packet(to_bytes("hello"));
  ASSERT_TRUE(srv.handle(sent[0].serialize(), now).ok());
  std::uint32_t unpinned = clients[0].session_id();
  now += sim::kMillisecond;
  VpnClientSession late(rng, certificate, enclave_key, srv.public_key(), {});
  auto event = srv.handle(late.create_handshake_init().serialize(), now);
  ASSERT_TRUE(event.ok()) << event.error();
  EXPECT_EQ(srv.sessions_evicted_lru(), 1u);
  EXPECT_FALSE(srv.has_session(unpinned));
  EXPECT_EQ(srv.session_count(), 4u);
}

}  // namespace
}  // namespace endbox::vpn
