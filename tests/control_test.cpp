// Tests for the client control plane: handshake retransmission with
// exponential backoff, capped attempts, keepalive dead-peer detection
// and the epoch-change (MAC-failure streak) re-key trigger. Hooks are
// bound to plain fakes so every schedule decision is observable.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "vpn/control.hpp"

namespace endbox::vpn {
namespace {

// A scripted endpoint: records every send, answers replies/pings on
// demand. Frame kinds are distinguished by the real wire type byte so
// ClientControlPlane::deliver routes them exactly as in production.
struct FakeTransport {
  std::vector<std::pair<Bytes, sim::Time>> sent;
  std::uint64_t inits_made = 0;
  std::uint64_t established_calls = 0;
  std::uint64_t failed_calls = 0;
  std::string last_failure;
  bool reject_replies = false;

  ClientControlPlane::Hooks hooks() {
    ClientControlPlane::Hooks h;
    h.make_init = [this]() -> Result<Bytes> {
      ++inits_made;
      // Distinct bytes per cycle: retransmits must resend the SAME
      // cached wire, so any new byte pattern marks a re-key.
      return Bytes{static_cast<std::uint8_t>(MsgType::HandshakeInit),
                   static_cast<std::uint8_t>(inits_made)};
    };
    h.on_reply = [this](ByteView) -> Status {
      if (reject_replies) return err("reply rejected");
      return {};
    };
    h.make_ping = [](Bytes& frame) -> Status {
      frame = {static_cast<std::uint8_t>(MsgType::Ping), 0};
      return {};
    };
    h.send = [this](ByteView frame, sim::Time now) {
      sent.emplace_back(Bytes(frame.begin(), frame.end()), now);
    };
    h.on_ping = [](ByteView, sim::Time) -> Status { return {}; };
    h.on_established = [this](sim::Time) { ++established_calls; };
    h.on_failed = [this](sim::Time, const std::string& why) {
      ++failed_calls;
      last_failure = why;
    };
    return h;
  }

  Bytes reply_wire() const {
    return {static_cast<std::uint8_t>(MsgType::HandshakeReply), 0};
  }
};

ControlPlaneConfig fast_config() {
  ControlPlaneConfig config;
  config.retry_initial = 100 * sim::kMillisecond;
  config.retry_backoff = 2.0;
  config.retry_max = sim::kSecond;
  config.retry_jitter = 0;  // deterministic deadlines for these tests
  config.max_attempts = 4;
  config.keepalive_interval = 200 * sim::kMillisecond;
  config.dead_after_intervals = 3;
  config.rehandshake_auth_failures = 3;
  return config;
}

void advance_to(ClientControlPlane& cp, sim::Time until,
                sim::Time step = 10 * sim::kMillisecond) {
  for (sim::Time t = 0; t <= until; t += step) cp.advance(t);
}

TEST(ControlPlane, StartSendsTheInitImmediately) {
  FakeTransport transport;
  ClientControlPlane cp(fast_config(), transport.hooks());
  ASSERT_TRUE(cp.start(0).ok());
  EXPECT_EQ(cp.state(), ClientControlPlane::State::Connecting);
  ASSERT_EQ(transport.sent.size(), 1u);
  EXPECT_EQ(transport.sent[0].second, 0u);
  EXPECT_EQ(cp.attempt(), 1u);
}

TEST(ControlPlane, RetransmitsTheSameBytesWithExponentialBackoff) {
  FakeTransport transport;
  ClientControlPlane cp(fast_config(), transport.hooks());
  ASSERT_TRUE(cp.start(0).ok());
  advance_to(cp, 800 * sim::kMillisecond);
  // Sends at 0, 100ms, 300ms (100+200), 700ms (300+400); the 5th
  // attempt would exceed max_attempts so the cycle fails instead.
  ASSERT_GE(transport.sent.size(), 4u);
  EXPECT_EQ(transport.sent[1].second, 100 * sim::kMillisecond);
  EXPECT_EQ(transport.sent[2].second, 300 * sim::kMillisecond);
  EXPECT_EQ(transport.sent[3].second, 700 * sim::kMillisecond);
  // Every retransmit carries the identical cached init wire.
  for (std::size_t i = 1; i < 4; ++i)
    EXPECT_EQ(transport.sent[i].first, transport.sent[0].first);
  EXPECT_EQ(cp.handshake_retransmits(), 3u);
}

TEST(ControlPlane, BackoffDelayCapsAtRetryMax) {
  ControlPlaneConfig config = fast_config();
  config.max_attempts = 8;
  FakeTransport transport;
  ClientControlPlane cp(config, transport.hooks());
  ASSERT_TRUE(cp.start(0).ok());
  advance_to(cp, 6 * sim::kSecond);
  // Deltas: 100, 200, 400, 800, then capped at 1000 ms.
  ASSERT_GE(transport.sent.size(), 7u);
  sim::Time d5 = transport.sent[5].second - transport.sent[4].second;
  sim::Time d6 = transport.sent[6].second - transport.sent[5].second;
  EXPECT_EQ(d5, sim::kSecond);
  EXPECT_EQ(d6, sim::kSecond);
}

TEST(ControlPlane, JitterStaysWithinTheConfiguredSwing) {
  ControlPlaneConfig config = fast_config();
  config.retry_jitter = 0.25;
  config.max_attempts = 2;
  FakeTransport transport;
  ClientControlPlane cp(config, transport.hooks());
  ASSERT_TRUE(cp.start(0).ok());
  advance_to(cp, sim::kSecond, sim::kMillisecond);
  ASSERT_GE(transport.sent.size(), 2u);
  sim::Time delay = transport.sent[1].second;
  EXPECT_GE(delay, 75 * sim::kMillisecond);
  EXPECT_LE(delay, 126 * sim::kMillisecond);  // 125ms + one 1ms tick
}

TEST(ControlPlane, ExhaustedRetriesFailTheCycle) {
  FakeTransport transport;
  ClientControlPlane cp(fast_config(), transport.hooks());
  ASSERT_TRUE(cp.start(0).ok());
  advance_to(cp, 5 * sim::kSecond);
  EXPECT_EQ(cp.state(), ClientControlPlane::State::Failed);
  EXPECT_EQ(transport.sent.size(), 4u);  // max_attempts total sends
  EXPECT_EQ(transport.failed_calls, 1u);
  EXPECT_EQ(cp.connect_failures(), 1u);
  EXPECT_NE(cp.last_error().find("retries exhausted"), std::string::npos);
  // A failed plane can be restarted explicitly.
  ASSERT_TRUE(cp.start(6 * sim::kSecond).ok());
  EXPECT_EQ(cp.state(), ClientControlPlane::State::Connecting);
}

TEST(ControlPlane, ReplyEstablishesAndStopsRetransmits) {
  FakeTransport transport;
  ClientControlPlane cp(fast_config(), transport.hooks());
  ASSERT_TRUE(cp.start(0).ok());
  ASSERT_TRUE(cp.deliver(transport.reply_wire(), 50 * sim::kMillisecond).ok());
  EXPECT_TRUE(cp.established());
  EXPECT_EQ(transport.established_calls, 1u);
  std::size_t sends_at_establish = transport.sent.size();
  // The pending retry timer is orphaned: only keepalives flow now, and
  // activity keeps the peer alive.
  for (sim::Time t = 60 * sim::kMillisecond; t < sim::kSecond;
       t += 10 * sim::kMillisecond) {
    cp.advance(t);
    cp.note_peer_activity(t);
  }
  EXPECT_EQ(cp.handshake_retransmits(), 0u);
  EXPECT_GT(cp.pings_sent(), 0u);
  for (std::size_t i = sends_at_establish; i < transport.sent.size(); ++i)
    EXPECT_EQ(transport.sent[i].first[0],
              static_cast<std::uint8_t>(MsgType::Ping));
}

TEST(ControlPlane, CorruptReplyLeavesTheCycleAlive) {
  FakeTransport transport;
  transport.reject_replies = true;
  ClientControlPlane cp(fast_config(), transport.hooks());
  ASSERT_TRUE(cp.start(0).ok());
  EXPECT_FALSE(cp.deliver(transport.reply_wire(), 10 * sim::kMillisecond).ok());
  EXPECT_EQ(cp.state(), ClientControlPlane::State::Connecting);
  EXPECT_EQ(cp.replies_rejected(), 1u);
  // The retry schedule is untouched: the next retransmit still fires.
  transport.reject_replies = false;
  advance_to(cp, 150 * sim::kMillisecond);
  EXPECT_EQ(cp.handshake_retransmits(), 1u);
  ASSERT_TRUE(cp.deliver(transport.reply_wire(), 160 * sim::kMillisecond).ok());
  EXPECT_TRUE(cp.established());
}

TEST(ControlPlane, DuplicateReplyIsIdempotent) {
  FakeTransport transport;
  ClientControlPlane cp(fast_config(), transport.hooks());
  ASSERT_TRUE(cp.start(0).ok());
  ASSERT_TRUE(cp.deliver(transport.reply_wire(), 10).ok());
  ASSERT_TRUE(cp.deliver(transport.reply_wire(), 20).ok());  // duplicated
  EXPECT_TRUE(cp.established());
  EXPECT_EQ(transport.established_calls, 1u);
  EXPECT_EQ(cp.handshakes_started(), 1u);
}

TEST(ControlPlane, SilentPeerTriggersRekey) {
  FakeTransport transport;
  ClientControlPlane cp(fast_config(), transport.hooks());
  ASSERT_TRUE(cp.start(0).ok());
  ASSERT_TRUE(cp.deliver(transport.reply_wire(), 0).ok());
  // No peer activity at all: 3 keepalive intervals (600ms) of silence
  // declare the peer dead and start a fresh handshake cycle.
  advance_to(cp, 2 * sim::kSecond);
  EXPECT_EQ(cp.dead_peer_events(), 1u);
  EXPECT_EQ(cp.rehandshakes(), 1u);
  EXPECT_EQ(transport.inits_made, 2u);  // fresh init = fresh nonce/keys
  EXPECT_EQ(cp.state(), ClientControlPlane::State::Connecting);
}

TEST(ControlPlane, ActivityHoldsOffDeadPeerDetection) {
  FakeTransport transport;
  ClientControlPlane cp(fast_config(), transport.hooks());
  ASSERT_TRUE(cp.start(0).ok());
  ASSERT_TRUE(cp.deliver(transport.reply_wire(), 0).ok());
  for (sim::Time t = 0; t <= 3 * sim::kSecond; t += 100 * sim::kMillisecond) {
    cp.advance(t);
    cp.note_peer_activity(t);
  }
  EXPECT_EQ(cp.dead_peer_events(), 0u);
  EXPECT_TRUE(cp.established());
}

TEST(ControlPlane, AuthFailureStreakRekeysImmediately) {
  FakeTransport transport;
  ClientControlPlane cp(fast_config(), transport.hooks());
  ASSERT_TRUE(cp.start(0).ok());
  ASSERT_TRUE(cp.deliver(transport.reply_wire(), 0).ok());
  cp.note_auth_failure(10);
  cp.note_auth_failure(20);
  EXPECT_TRUE(cp.established());  // below the streak threshold
  cp.note_auth_failure(30);       // third consecutive failure
  EXPECT_EQ(cp.state(), ClientControlPlane::State::Connecting);
  EXPECT_EQ(cp.rehandshakes(), 1u);
  EXPECT_EQ(cp.dead_peer_events(), 1u);
}

TEST(ControlPlane, AuthenticatedTrafficResetsTheFailureStreak) {
  FakeTransport transport;
  ClientControlPlane cp(fast_config(), transport.hooks());
  ASSERT_TRUE(cp.start(0).ok());
  ASSERT_TRUE(cp.deliver(transport.reply_wire(), 0).ok());
  // Interleaved corruption noise never accumulates into a re-key.
  for (int round = 0; round < 10; ++round) {
    cp.note_auth_failure(round * 100);
    cp.note_auth_failure(round * 100 + 1);
    cp.note_peer_activity(round * 100 + 2);
  }
  EXPECT_TRUE(cp.established());
  EXPECT_EQ(cp.rehandshakes(), 0u);
}

TEST(ControlPlane, AuthFailuresWhileConnectingAreIgnored) {
  FakeTransport transport;
  ClientControlPlane cp(fast_config(), transport.hooks());
  ASSERT_TRUE(cp.start(0).ok());
  for (int i = 0; i < 10; ++i) cp.note_auth_failure(i);
  // Straggler frames of the old epoch must not restart the cycle that
  // is already re-keying.
  EXPECT_EQ(cp.handshakes_started(), 1u);
  EXPECT_EQ(cp.state(), ClientControlPlane::State::Connecting);
}

TEST(ControlPlane, FailedMakeInitFailsTheCycle) {
  FakeTransport transport;
  auto hooks = transport.hooks();
  hooks.make_init = []() -> Result<Bytes> { return err("no certificate"); };
  ClientControlPlane cp(fast_config(), std::move(hooks));
  EXPECT_FALSE(cp.start(0).ok());
  EXPECT_EQ(cp.state(), ClientControlPlane::State::Failed);
  EXPECT_EQ(transport.failed_calls, 1u);
}

TEST(ControlPlane, NonControlFramesAreRejected) {
  FakeTransport transport;
  ClientControlPlane cp(fast_config(), transport.hooks());
  ASSERT_TRUE(cp.start(0).ok());
  EXPECT_FALSE(cp.deliver(Bytes{}, 0).ok());
  Bytes data = {static_cast<std::uint8_t>(MsgType::Data), 1, 2, 3};
  EXPECT_FALSE(cp.deliver(data, 0).ok());
  EXPECT_EQ(cp.state(), ClientControlPlane::State::Connecting);
}

}  // namespace
}  // namespace endbox::vpn
