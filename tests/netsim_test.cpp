// Tests for the network simulation: links, queueing, paths, hosts,
// star topology.
#include <gtest/gtest.h>

#include "netsim/host.hpp"
#include "netsim/link.hpp"
#include "netsim/topology.hpp"

namespace endbox::netsim {
namespace {

TEST(Link, SerialisationPlusPropagation) {
  // 1 Gbps, 1 ms: 1250 bytes = 10 us serialisation.
  Link link(1e9, sim::from_millis(1.0));
  sim::Time arrival = link.transmit(0, 1250);
  EXPECT_EQ(arrival, 10 * sim::kMicrosecond + sim::from_millis(1.0));
}

TEST(Link, BackToBackFramesQueue) {
  Link link(1e9, 0);
  sim::Time first = link.transmit(0, 1250);   // 10 us
  sim::Time second = link.transmit(0, 1250);  // starts at 10 us
  EXPECT_EQ(first, 10 * sim::kMicrosecond);
  EXPECT_EQ(second, 20 * sim::kMicrosecond);
  EXPECT_EQ(link.frames(), 2u);
}

TEST(Link, IdleLinkTransmitsImmediately) {
  Link link(1e9, 0);
  link.transmit(0, 1250);
  // Arriving long after the link drained: no queueing.
  sim::Time arrival = link.transmit(sim::kSecond, 1250);
  EXPECT_EQ(arrival, sim::kSecond + 10 * sim::kMicrosecond);
}

TEST(Link, PeekDoesNotOccupy) {
  Link link(1e9, 0);
  EXPECT_EQ(link.peek(0, 1250), 10 * sim::kMicrosecond);
  EXPECT_EQ(link.peek(0, 1250), 10 * sim::kMicrosecond);
  EXPECT_EQ(link.frames(), 0u);
}

TEST(Link, UtilisationTracksBusyTime) {
  Link link(1e9, 0);
  link.transmit(0, 12500);  // 100 us busy
  EXPECT_NEAR(link.utilisation(0, 200 * sim::kMicrosecond), 0.5, 1e-9);
}

TEST(Link, SaturatedLinkCapsThroughput) {
  // Offer 2 Gbps worth of frames to a 1 Gbps link for one second:
  // deliveries stretch to ~2 seconds.
  Link link(1e9, 0);
  sim::Time last = 0;
  for (int i = 0; i < 2000; ++i) last = link.transmit(0, 125'000);  // 1 ms each
  EXPECT_NEAR(sim::to_seconds(last), 2.0, 0.01);
}

TEST(Link, RejectsBadParameters) {
  EXPECT_THROW(Link(0, 0), std::invalid_argument);
  EXPECT_THROW(Link(1e9, -5), std::invalid_argument);
}

TEST(Link, ResetClearsState) {
  Link link(1e9, 0);
  link.transmit(0, 1250);
  link.reset();
  EXPECT_EQ(link.frames(), 0u);
  EXPECT_EQ(link.transmit(0, 1250), 10 * sim::kMicrosecond);
}

TEST(Path, AccumulatesAcrossLinks) {
  Link a(1e9, sim::from_millis(1));
  Link b(1e9, sim::from_millis(2));
  Path path({&a, &b});
  EXPECT_EQ(path.hops(), 2u);
  EXPECT_EQ(path.base_latency(), sim::from_millis(3));
  // 1250 B: 10 us per link + 3 ms propagation.
  EXPECT_EQ(path.deliver(0, 1250), sim::from_millis(3) + 20 * sim::kMicrosecond);
}

TEST(Path, EmptyPathIsZeroCost) {
  Path path;
  EXPECT_EQ(path.deliver(123, 1250), 123u);
}

TEST(Host, MachineClassesDifferInCpu) {
  sim::PerfModel model;
  model.client_cores = 8;
  model.server_cores = 4;
  Host client("c", MachineClass::A, model);
  Host server("s", MachineClass::B, model);
  EXPECT_EQ(client.cpu().cores(), 8u);
  EXPECT_EQ(server.cpu().cores(), 4u);
  EXPECT_EQ(client.name(), "c");
}

TEST(Host, SingleCoreSliceForSingleThreadedProcesses) {
  sim::PerfModel model;
  Host host("h", MachineClass::A, model);
  auto core = host.make_single_core();
  EXPECT_EQ(core.cores(), 1u);
  EXPECT_EQ(core.hz(), host.cpu().hz());
}

TEST(Link, CountsBytes) {
  Link link(1e9, 0);
  link.transmit(0, 1250);
  link.transmit(0, 750);
  EXPECT_EQ(link.bytes(), 2000u);
  link.reset();
  EXPECT_EQ(link.bytes(), 0u);
}

TEST(StarTopology, BuildsHostsAndLinksPerClient) {
  sim::PerfModel model;
  StarTopology topo(model);
  EXPECT_EQ(topo.clients(), 0u);
  EXPECT_EQ(topo.add_client("c1"), 0u);
  EXPECT_EQ(topo.add_client("c2"), 1u);
  EXPECT_EQ(topo.clients(), 2u);
  EXPECT_EQ(topo.client_host(0).machine_class(), MachineClass::A);
  EXPECT_EQ(topo.server_host().machine_class(), MachineClass::B);
  EXPECT_EQ(topo.access_link(0).name(), "c1-access");
  EXPECT_EQ(topo.uplink_path(0).hops(), 2u);
  EXPECT_EQ(topo.downlink_path(1).hops(), 2u);
}

TEST(StarTopology, DeliveryCrossesAccessAndUplink) {
  sim::PerfModel model;
  StarTopologyOptions options;
  options.access_rate_bps = 1e9;
  options.uplink_rate_bps = 1e9;
  options.access_latency = sim::from_millis(1);
  options.uplink_latency = sim::from_millis(2);
  StarTopology topo(model, options);
  topo.add_client("c1");
  // 1250 B: 10 us serialisation on each of the two links + 3 ms total
  // propagation.
  sim::Time arrival = topo.deliver_to_server(0, 0, 1250);
  EXPECT_EQ(arrival, sim::from_millis(3) + 20 * sim::kMicrosecond);
  EXPECT_EQ(topo.client_bytes(0), 1250u);
  EXPECT_EQ(topo.aggregate_bytes(), 1250u);
  EXPECT_EQ(topo.aggregate_frames(), 1u);
}

TEST(StarTopology, SharedUplinkAggregatesButAccessLinksDoNot) {
  sim::PerfModel model;
  StarTopology topo(model);
  topo.add_client("c1");
  topo.add_client("c2");
  topo.deliver_to_server(0, 0, 9000);
  topo.deliver_to_server(1, 0, 9000);
  // Both frames crossed the one uplink; each access link saw only its
  // own client's frame.
  EXPECT_EQ(topo.aggregate_bytes(), 18000u);
  EXPECT_EQ(topo.client_bytes(0), 9000u);
  EXPECT_EQ(topo.client_bytes(1), 9000u);
  EXPECT_EQ(topo.uplink().frames(), 2u);
  EXPECT_EQ(topo.access_link(0).frames(), 1u);
}

TEST(StarTopology, ContentionOnlyOnTheSharedUplink) {
  sim::PerfModel model;
  StarTopologyOptions options;
  options.access_rate_bps = 10e9;
  options.uplink_rate_bps = 1e9;  // uplink is the bottleneck
  options.access_latency = 0;
  options.uplink_latency = 0;
  StarTopology topo(model, options);
  topo.add_client("c1");
  topo.add_client("c2");
  // Two simultaneous 125000-B frames: 1 ms each on the uplink, so the
  // second client's frame queues behind the first.
  sim::Time first = topo.deliver_to_server(0, 0, 125'000);
  sim::Time second = topo.deliver_to_server(1, 0, 125'000);
  EXPECT_GT(second, first);
}

TEST(StarTopology, ResetClearsAllCounters) {
  sim::PerfModel model;
  StarTopology topo(model);
  topo.add_client("c1");
  topo.deliver_to_server(0, 0, 1000);
  topo.reset();
  EXPECT_EQ(topo.aggregate_bytes(), 0u);
  EXPECT_EQ(topo.client_bytes(0), 0u);
  EXPECT_EQ(topo.clients(), 1u);  // hosts survive, counters do not
}

// ---- Fault injection -------------------------------------------------------

TEST(Fault, NoPlanDegradesToPlainTransmit) {
  Link plain(1e9, sim::from_millis(1.0));
  Link faulty(1e9, sim::from_millis(1.0));
  faulty.set_fault_plan(FaultPlan{});  // disabled plan = no fault state
  EXPECT_FALSE(faulty.fault_plan_enabled());
  auto out = faulty.transmit_faulty(0, 1250);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].at, plain.transmit(0, 1250));
  EXPECT_FALSE(out[0].corrupted());
}

TEST(Fault, DropAlwaysDropsAndCounts) {
  Link link(1e9, 0, "lossy");
  FaultPlan plan;
  plan.drop = 1.0;
  link.set_fault_plan(plan);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(link.transmit_faulty(0, 100).dropped());
  EXPECT_EQ(link.fault_stats().frames_offered, 10u);
  EXPECT_EQ(link.fault_stats().frames_dropped, 10u);
  EXPECT_EQ(link.fault_stats().bytes_dropped, 1000u);
  EXPECT_EQ(link.fault_stats().frames_flap_dropped, 0u);
  // Random drops serialise first (the bytes crossed the wire before
  // the far end lost them), so the link byte counters still advance.
  EXPECT_EQ(link.bytes(), 1000u);
}

TEST(Fault, DuplicateDeliversTwoCopies) {
  Link link(1e9, 0, "dupey");
  FaultPlan plan;
  plan.duplicate = 1.0;
  link.set_fault_plan(plan);
  auto out = link.transmit_faulty(0, 100);
  ASSERT_EQ(out.size(), 2u);
  // The duplicate serialises behind the original.
  EXPECT_GT(out[1].at, out[0].at);
  EXPECT_EQ(link.fault_stats().frames_duplicated, 1u);
}

TEST(Fault, CorruptionAlwaysChangesTheBytes) {
  Link link(1e9, 0, "noisy");
  FaultPlan plan;
  plan.corrupt = 1.0;
  link.set_fault_plan(plan);
  for (int i = 0; i < 32; ++i) {
    auto out = link.transmit_faulty(0, 64);
    ASSERT_EQ(out.size(), 1u);
    ASSERT_TRUE(out[0].corrupted());
    std::vector<std::uint8_t> frame(64, 0xab);
    out[0].apply(frame);
    EXPECT_NE(frame, std::vector<std::uint8_t>(64, 0xab));
  }
  EXPECT_EQ(link.fault_stats().frames_corrupted, 32u);
}

TEST(Fault, ReorderHoldsTheCopyBack) {
  Link link(1e9, 0, "jittery");
  FaultPlan plan;
  plan.reorder = 1.0;
  plan.reorder_delay = sim::from_millis(5.0);
  link.set_fault_plan(plan);
  Link clean(1e9, 0);
  auto out = link.transmit_faulty(0, 100);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].reordered);
  EXPECT_EQ(out[0].at, clean.transmit(0, 100) + sim::from_millis(5.0));
  EXPECT_EQ(link.fault_stats().frames_reordered, 1u);
}

TEST(Fault, DownWindowDropsWithoutSerialising) {
  Link link(1e9, 0, "flappy");
  FaultPlan plan;
  plan.down.push_back({sim::kSecond, 2 * sim::kSecond});
  link.set_fault_plan(plan);
  EXPECT_FALSE(link.transmit_faulty(0, 100).dropped());          // before
  EXPECT_TRUE(link.transmit_faulty(sim::kSecond, 100).dropped());  // inside
  EXPECT_FALSE(link.transmit_faulty(2 * sim::kSecond, 100).dropped());  // after
  EXPECT_EQ(link.fault_stats().frames_flap_dropped, 1u);
  EXPECT_EQ(link.fault_stats().frames_dropped, 1u);
  // A dead transmitter sends nothing: only the surviving frames count.
  EXPECT_EQ(link.frames(), 2u);
}

TEST(Fault, SameSeedSameNameReproducesTheLossPattern) {
  FaultPlan plan;
  plan.drop = 0.3;
  plan.corrupt = 0.2;
  plan.duplicate = 0.1;
  auto pattern = [&](const std::string& name) {
    Link link(1e9, 0, name);
    link.set_fault_plan(plan);
    std::vector<std::size_t> copies;
    for (int i = 0; i < 200; ++i) copies.push_back(link.transmit_faulty(0, 100).size());
    return copies;
  };
  EXPECT_EQ(pattern("a"), pattern("a"));
  EXPECT_NE(pattern("a"), pattern("b"));  // per-link independent streams
}

TEST(Fault, ResetRewindsTheFaultStream) {
  FaultPlan plan;
  plan.drop = 0.5;
  Link link(1e9, 0, "rewind");
  link.set_fault_plan(plan);
  std::vector<bool> first;
  for (int i = 0; i < 100; ++i) first.push_back(link.transmit_faulty(0, 100).dropped());
  link.reset();
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(link.transmit_faulty(0, 100).dropped(), first[static_cast<std::size_t>(i)]);
}

TEST(Fault, PathChainsHopsAndAccumulatesCorruptions) {
  Link a(1e9, 0, "hop-a");
  Link b(1e9, 0, "hop-b");
  FaultPlan plan;
  plan.corrupt = 1.0;
  a.set_fault_plan(plan);
  b.set_fault_plan(plan);
  Path path({&a, &b});
  auto out = path.deliver_faulty(0, 64);
  ASSERT_EQ(out.size(), 1u);
  // Each hop adds one corruption to the surviving copy.
  EXPECT_EQ(out[0].corruption_count, 2u);
}

TEST(Fault, PathDuplicationFansOutToTheCap) {
  Link a(1e9, 0, "hop-a");
  Link b(1e9, 0, "hop-b");
  FaultPlan plan;
  plan.duplicate = 1.0;
  a.set_fault_plan(plan);
  b.set_fault_plan(plan);
  Path path({&a, &b});
  auto out = path.deliver_faulty(0, 64);
  EXPECT_EQ(out.size(), FaultOutcome::kMaxDeliveries);  // 2 x 2 copies
}

TEST(Fault, StarTopologyAppliesOnePlanEverywhere) {
  sim::PerfModel model;
  StarTopology topo(model);
  topo.add_client("c1");
  FaultPlan plan;
  plan.drop = 1.0;
  topo.set_fault_plan_all(plan);
  EXPECT_TRUE(topo.uplink().fault_plan_enabled());
  EXPECT_TRUE(topo.access_link(0).fault_plan_enabled());
  EXPECT_TRUE(topo.deliver_to_server_faulty(0, 0, 100).dropped());
  // Clients added after the plan inherit it.
  topo.add_client("c2");
  EXPECT_TRUE(topo.access_link(1).fault_plan_enabled());
  EXPECT_TRUE(topo.deliver_to_client_faulty(1, 0, 100).dropped());
}

TEST(Fault, CorruptionApplyWrapsTheOffset) {
  Delivery d;
  d.add_corruption({100, 0x01});
  std::vector<std::uint8_t> frame(7, 0);
  d.apply(frame);
  EXPECT_EQ(frame[100 % 7], 0x01);
}

}  // namespace
}  // namespace endbox::netsim
