// Tests for the network simulation: links, queueing, paths, hosts,
// star topology.
#include <gtest/gtest.h>

#include "netsim/host.hpp"
#include "netsim/link.hpp"
#include "netsim/topology.hpp"

namespace endbox::netsim {
namespace {

TEST(Link, SerialisationPlusPropagation) {
  // 1 Gbps, 1 ms: 1250 bytes = 10 us serialisation.
  Link link(1e9, sim::from_millis(1.0));
  sim::Time arrival = link.transmit(0, 1250);
  EXPECT_EQ(arrival, 10 * sim::kMicrosecond + sim::from_millis(1.0));
}

TEST(Link, BackToBackFramesQueue) {
  Link link(1e9, 0);
  sim::Time first = link.transmit(0, 1250);   // 10 us
  sim::Time second = link.transmit(0, 1250);  // starts at 10 us
  EXPECT_EQ(first, 10 * sim::kMicrosecond);
  EXPECT_EQ(second, 20 * sim::kMicrosecond);
  EXPECT_EQ(link.frames(), 2u);
}

TEST(Link, IdleLinkTransmitsImmediately) {
  Link link(1e9, 0);
  link.transmit(0, 1250);
  // Arriving long after the link drained: no queueing.
  sim::Time arrival = link.transmit(sim::kSecond, 1250);
  EXPECT_EQ(arrival, sim::kSecond + 10 * sim::kMicrosecond);
}

TEST(Link, PeekDoesNotOccupy) {
  Link link(1e9, 0);
  EXPECT_EQ(link.peek(0, 1250), 10 * sim::kMicrosecond);
  EXPECT_EQ(link.peek(0, 1250), 10 * sim::kMicrosecond);
  EXPECT_EQ(link.frames(), 0u);
}

TEST(Link, UtilisationTracksBusyTime) {
  Link link(1e9, 0);
  link.transmit(0, 12500);  // 100 us busy
  EXPECT_NEAR(link.utilisation(0, 200 * sim::kMicrosecond), 0.5, 1e-9);
}

TEST(Link, SaturatedLinkCapsThroughput) {
  // Offer 2 Gbps worth of frames to a 1 Gbps link for one second:
  // deliveries stretch to ~2 seconds.
  Link link(1e9, 0);
  sim::Time last = 0;
  for (int i = 0; i < 2000; ++i) last = link.transmit(0, 125'000);  // 1 ms each
  EXPECT_NEAR(sim::to_seconds(last), 2.0, 0.01);
}

TEST(Link, RejectsBadParameters) {
  EXPECT_THROW(Link(0, 0), std::invalid_argument);
  EXPECT_THROW(Link(1e9, -5), std::invalid_argument);
}

TEST(Link, ResetClearsState) {
  Link link(1e9, 0);
  link.transmit(0, 1250);
  link.reset();
  EXPECT_EQ(link.frames(), 0u);
  EXPECT_EQ(link.transmit(0, 1250), 10 * sim::kMicrosecond);
}

TEST(Path, AccumulatesAcrossLinks) {
  Link a(1e9, sim::from_millis(1));
  Link b(1e9, sim::from_millis(2));
  Path path({&a, &b});
  EXPECT_EQ(path.hops(), 2u);
  EXPECT_EQ(path.base_latency(), sim::from_millis(3));
  // 1250 B: 10 us per link + 3 ms propagation.
  EXPECT_EQ(path.deliver(0, 1250), sim::from_millis(3) + 20 * sim::kMicrosecond);
}

TEST(Path, EmptyPathIsZeroCost) {
  Path path;
  EXPECT_EQ(path.deliver(123, 1250), 123u);
}

TEST(Host, MachineClassesDifferInCpu) {
  sim::PerfModel model;
  model.client_cores = 8;
  model.server_cores = 4;
  Host client("c", MachineClass::A, model);
  Host server("s", MachineClass::B, model);
  EXPECT_EQ(client.cpu().cores(), 8u);
  EXPECT_EQ(server.cpu().cores(), 4u);
  EXPECT_EQ(client.name(), "c");
}

TEST(Host, SingleCoreSliceForSingleThreadedProcesses) {
  sim::PerfModel model;
  Host host("h", MachineClass::A, model);
  auto core = host.make_single_core();
  EXPECT_EQ(core.cores(), 1u);
  EXPECT_EQ(core.hz(), host.cpu().hz());
}

TEST(Link, CountsBytes) {
  Link link(1e9, 0);
  link.transmit(0, 1250);
  link.transmit(0, 750);
  EXPECT_EQ(link.bytes(), 2000u);
  link.reset();
  EXPECT_EQ(link.bytes(), 0u);
}

TEST(StarTopology, BuildsHostsAndLinksPerClient) {
  sim::PerfModel model;
  StarTopology topo(model);
  EXPECT_EQ(topo.clients(), 0u);
  EXPECT_EQ(topo.add_client("c1"), 0u);
  EXPECT_EQ(topo.add_client("c2"), 1u);
  EXPECT_EQ(topo.clients(), 2u);
  EXPECT_EQ(topo.client_host(0).machine_class(), MachineClass::A);
  EXPECT_EQ(topo.server_host().machine_class(), MachineClass::B);
  EXPECT_EQ(topo.access_link(0).name(), "c1-access");
  EXPECT_EQ(topo.uplink_path(0).hops(), 2u);
  EXPECT_EQ(topo.downlink_path(1).hops(), 2u);
}

TEST(StarTopology, DeliveryCrossesAccessAndUplink) {
  sim::PerfModel model;
  StarTopologyOptions options;
  options.access_rate_bps = 1e9;
  options.uplink_rate_bps = 1e9;
  options.access_latency = sim::from_millis(1);
  options.uplink_latency = sim::from_millis(2);
  StarTopology topo(model, options);
  topo.add_client("c1");
  // 1250 B: 10 us serialisation on each of the two links + 3 ms total
  // propagation.
  sim::Time arrival = topo.deliver_to_server(0, 0, 1250);
  EXPECT_EQ(arrival, sim::from_millis(3) + 20 * sim::kMicrosecond);
  EXPECT_EQ(topo.client_bytes(0), 1250u);
  EXPECT_EQ(topo.aggregate_bytes(), 1250u);
  EXPECT_EQ(topo.aggregate_frames(), 1u);
}

TEST(StarTopology, SharedUplinkAggregatesButAccessLinksDoNot) {
  sim::PerfModel model;
  StarTopology topo(model);
  topo.add_client("c1");
  topo.add_client("c2");
  topo.deliver_to_server(0, 0, 9000);
  topo.deliver_to_server(1, 0, 9000);
  // Both frames crossed the one uplink; each access link saw only its
  // own client's frame.
  EXPECT_EQ(topo.aggregate_bytes(), 18000u);
  EXPECT_EQ(topo.client_bytes(0), 9000u);
  EXPECT_EQ(topo.client_bytes(1), 9000u);
  EXPECT_EQ(topo.uplink().frames(), 2u);
  EXPECT_EQ(topo.access_link(0).frames(), 1u);
}

TEST(StarTopology, ContentionOnlyOnTheSharedUplink) {
  sim::PerfModel model;
  StarTopologyOptions options;
  options.access_rate_bps = 10e9;
  options.uplink_rate_bps = 1e9;  // uplink is the bottleneck
  options.access_latency = 0;
  options.uplink_latency = 0;
  StarTopology topo(model, options);
  topo.add_client("c1");
  topo.add_client("c2");
  // Two simultaneous 125000-B frames: 1 ms each on the uplink, so the
  // second client's frame queues behind the first.
  sim::Time first = topo.deliver_to_server(0, 0, 125'000);
  sim::Time second = topo.deliver_to_server(1, 0, 125'000);
  EXPECT_GT(second, first);
}

TEST(StarTopology, ResetClearsAllCounters) {
  sim::PerfModel model;
  StarTopology topo(model);
  topo.add_client("c1");
  topo.deliver_to_server(0, 0, 1000);
  topo.reset();
  EXPECT_EQ(topo.aggregate_bytes(), 0u);
  EXPECT_EQ(topo.client_bytes(0), 0u);
  EXPECT_EQ(topo.clients(), 1u);  // hosts survive, counters do not
}

}  // namespace
}  // namespace endbox::netsim
