// Tests for the miniature TLS: handshake, record layer, key export
// hook, downgrade protection, key store.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "tls/keystore.hpp"
#include "tls/session.hpp"

namespace endbox::tls {
namespace {

struct Handshake {
  Rng rng{1};
  TlsClient client{rng};
  TlsServer server{rng};
  Bytes pre_master = to_bytes("pre-master-secret");

  Status run() {
    auto ch = client.start_handshake();
    auto sh = server.accept(ch, pre_master);
    if (!sh.ok()) return err(sh.error());
    return client.finish_handshake(*sh, pre_master);
  }
};

TEST(Tls, HandshakeEstablishesMatchingKeys) {
  Handshake hs;
  ASSERT_TRUE(hs.run().ok());
  EXPECT_TRUE(hs.client.established());
  EXPECT_TRUE(hs.server.established());
  EXPECT_EQ(hs.client.keys(), hs.server.keys());
  EXPECT_EQ(hs.client.negotiated_version(), TlsVersion::Tls13);
}

TEST(Tls, ApplicationDataRoundTrip) {
  Handshake hs;
  ASSERT_TRUE(hs.run().ok());
  auto record = hs.client.send(to_bytes("GET / HTTP/1.1"));
  auto plain = hs.server.receive(record);
  ASSERT_TRUE(plain.ok()) << plain.error();
  EXPECT_EQ(to_string(*plain), "GET / HTTP/1.1");

  auto reply = hs.server.send(to_bytes("200 OK"));
  auto got = hs.client.receive(reply);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(to_string(*got), "200 OK");
}

TEST(Tls, RecordsDifferAcrossSends) {
  Handshake hs;
  ASSERT_TRUE(hs.run().ok());
  auto a = hs.client.send(to_bytes("same"));
  auto b = hs.client.send(to_bytes("same"));
  EXPECT_NE(a.ciphertext, b.ciphertext);  // distinct sequence nonces
  EXPECT_NE(a.sequence, b.sequence);
}

TEST(Tls, TamperedRecordRejected) {
  Handshake hs;
  ASSERT_TRUE(hs.run().ok());
  auto record = hs.client.send(to_bytes("payload"));
  record.ciphertext[0] ^= 1;
  EXPECT_FALSE(hs.server.receive(record).ok());
  auto record2 = hs.client.send(to_bytes("payload"));
  record2.mac[0] ^= 1;
  EXPECT_FALSE(hs.server.receive(record2).ok());
}

TEST(Tls, WrongKeysRejected) {
  Handshake a, b;
  ASSERT_TRUE(a.run().ok());
  b.pre_master = to_bytes("different");
  ASSERT_TRUE(b.run().ok());
  auto record = a.client.send(to_bytes("secret"));
  EXPECT_FALSE(b.server.receive(record).ok());
}

TEST(Tls, RecordSerializationRoundTrip) {
  Handshake hs;
  ASSERT_TRUE(hs.run().ok());
  auto record = hs.client.send(to_bytes("hello world"));
  auto back = TlsRecord::parse(record.serialize());
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_EQ(back->sequence, record.sequence);
  EXPECT_EQ(back->ciphertext, record.ciphertext);
  auto plain = hs.server.receive(*back);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(to_string(*plain), "hello world");
}

TEST(Tls, ParseRejectsTruncatedAndTrailing) {
  EXPECT_FALSE(TlsRecord::parse(Bytes{1, 2, 3}).ok());
  Handshake hs;
  ASSERT_TRUE(hs.run().ok());
  Bytes wire = hs.client.send(to_bytes("x")).serialize();
  wire.push_back(0);
  EXPECT_FALSE(TlsRecord::parse(wire).ok());
}

TEST(Tls, KeyExportHookFires) {
  Handshake hs;
  std::optional<SessionKeys> exported;
  hs.client.set_key_export_hook([&](const SessionKeys& k) { exported = k; });
  ASSERT_TRUE(hs.run().ok());
  ASSERT_TRUE(exported.has_value());
  EXPECT_EQ(*exported, hs.client.keys());
}

TEST(Tls, ServerEnforcesMinimumVersion) {
  // Downgrade attack (section V-A): client claims only TLS 1.0.
  Rng rng(2);
  TlsClient old_client(rng, TlsVersion::Tls10);
  TlsServer server(rng, TlsVersion::Tls12);
  auto sh = server.accept(old_client.start_handshake(), to_bytes("pm"));
  EXPECT_FALSE(sh.ok());
}

TEST(Tls, ClientRejectsVersionAboveOffer) {
  // A MITM "upgrading" the version is also rejected client-side.
  Rng rng(3);
  TlsClient client(rng, TlsVersion::Tls12);
  client.start_handshake();
  ServerHello forged;
  forged.server_random = rng.bytes(32);
  forged.chosen_version = TlsVersion::Tls13;
  EXPECT_FALSE(client.finish_handshake(forged, to_bytes("pm")).ok());
}

TEST(Tls, NegotiatesClientMaxWhenAllowed) {
  Rng rng(4);
  TlsClient client(rng, TlsVersion::Tls12);
  TlsServer server(rng, TlsVersion::Tls12);
  auto sh = server.accept(client.start_handshake(), to_bytes("pm"));
  ASSERT_TRUE(sh.ok()) << sh.error();
  ASSERT_TRUE(client.finish_handshake(*sh, to_bytes("pm")).ok());
  EXPECT_EQ(client.negotiated_version(), TlsVersion::Tls12);
}

TEST(Tls, SendBeforeHandshakeThrows) {
  Rng rng(5);
  TlsClient client(rng);
  EXPECT_THROW(client.send(to_bytes("x")), std::logic_error);
}

TEST(KeyStore, PutGetErase) {
  SessionKeyStore store;
  SessionKeys keys{Bytes(16, 1), Bytes(32, 2), 42};
  store.put(keys);
  EXPECT_EQ(store.size(), 1u);
  auto got = store.get(42);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, keys);
  EXPECT_FALSE(store.get(43).has_value());
  EXPECT_EQ(store.misses(), 1u);
  EXPECT_EQ(store.lookups(), 2u);
  EXPECT_TRUE(store.erase(42));
  EXPECT_FALSE(store.erase(42));
  EXPECT_FALSE(store.get(42).has_value());
}

TEST(KeyStore, OverwriteSameSession) {
  SessionKeyStore store;
  store.put({Bytes(16, 1), Bytes(32, 1), 7});
  store.put({Bytes(16, 9), Bytes(32, 9), 7});
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.get(7)->enc_key, Bytes(16, 9));
}

TEST(KeyStore, CapacityBoundRejectsNewSessions) {
  SessionKeyStore::Options options;
  options.capacity = 2;
  SessionKeyStore store(options);
  EXPECT_TRUE(store.put({Bytes(16, 1), Bytes(32, 1), 1}));
  EXPECT_TRUE(store.put({Bytes(16, 2), Bytes(32, 2), 2}));
  EXPECT_FALSE(store.put({Bytes(16, 3), Bytes(32, 3), 3}));
  EXPECT_EQ(store.rejected_full(), 1u);
  EXPECT_EQ(store.size(), 2u);
  // Refreshing a live session's keys is not a new admission.
  EXPECT_TRUE(store.put({Bytes(16, 9), Bytes(32, 9), 2}));
  // Teardown makes room again.
  EXPECT_TRUE(store.erase(1));
  EXPECT_TRUE(store.put({Bytes(16, 3), Bytes(32, 3), 3}));
}

TEST(KeyStore, IdleKeysExpireAndCountHonestMisses) {
  constexpr sim::Time kMs = sim::kMillisecond;
  SessionKeyStore::Options options;
  options.idle_timeout = 100 * kMs;
  SessionKeyStore store(options);
  store.note_time(0);
  store.put({Bytes(16, 1), Bytes(32, 1), 1});
  store.put({Bytes(16, 2), Bytes(32, 2), 2});
  // Key 1 is used at t=80ms (activity stamp refreshed); key 2 idles.
  store.note_time(80 * kMs);
  ASSERT_TRUE(store.get(1).has_value());
  EXPECT_EQ(store.expire_idle(100 * kMs), 1u);  // key 2, idle since 0
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.expired(), 1u);
  ASSERT_TRUE(store.get(1).has_value());
  // The pruned key is an honest miss, not a phantom hit.
  std::uint64_t misses = store.misses();
  EXPECT_FALSE(store.get(2).has_value());
  EXPECT_EQ(store.misses(), misses + 1);
  // Key 1 was last used at t=100ms (the hit above, after expire_idle
  // advanced the store's clock): it expires at exactly t=200ms.
  EXPECT_EQ(store.expire_idle(199 * kMs), 0u);
  EXPECT_EQ(store.expire_idle(200 * kMs), 1u);
  EXPECT_EQ(store.size(), 0u);
}

TEST(KeyStore, ConcurrentLookupsAreRaceFreeAndCounted) {
  // Shard workers call get() concurrently during a burst while the
  // stamp refresh is a relaxed store: must be clean under TSan and the
  // counters must still add up exactly.
  SessionKeyStore::Options options;
  options.idle_timeout = 100 * sim::kMillisecond;
  SessionKeyStore store(options);
  for (std::uint64_t id = 0; id < 64; ++id)
    ASSERT_TRUE(store.put(
        {Bytes(16, static_cast<std::uint8_t>(id)), Bytes(32, 2), id}));
  constexpr int kThreads = 4;
  constexpr int kLookups = 128 * 150;  // full cycles of the id range
  std::atomic<std::uint64_t> hits{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&store, &hits, t] {
      std::uint64_t local = 0;
      for (int i = 0; i < kLookups; ++i) {
        std::uint64_t id = static_cast<std::uint64_t>((i + t) % 128);
        if (store.get(id).has_value()) ++local;  // ids 64..127 miss
      }
      hits += local;
    });
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(store.lookups(), static_cast<std::uint64_t>(kThreads) * kLookups);
  EXPECT_EQ(store.misses(), store.lookups() - hits.load());
  EXPECT_EQ(hits.load(), store.lookups() / 2);
}

}  // namespace
}  // namespace endbox::tls
