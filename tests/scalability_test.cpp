// Multi-client scalability suite mirroring Fig 10a: because EndBox runs
// middlebox functions on the clients, the server's per-packet cost must
// stay ~flat as the fleet grows, while aggregate processed traffic
// scales linearly with the client count. Built on the parameterisable
// World (N clients, per-client CPU accounts and RNG streams, one
// experiment seed).
#include <gtest/gtest.h>

#include <cstdlib>
#include <unordered_map>

#include "ca/authority.hpp"
#include "endbox/reshard_controller.hpp"
#include "endbox_world.hpp"
#include "sgx/enclave.hpp"
#include "sgx/platform.hpp"
#include "vpn/client.hpp"
#include "vpn/server.hpp"

namespace endbox {
namespace {

using testing::World;
using testing::WorldOptions;

WorldOptions scale_options(std::size_t clients,
                           ServerMode mode = ServerMode::Plain) {
  WorldOptions opts;
  opts.seed = 0x5ca1ab1e;
  opts.clients = clients;
  opts.use_case = UseCase::Nop;
  opts.server_mode = mode;
  return opts;
}

constexpr std::uint64_t kPacketsPerClient = 25;

TEST(ScalabilityTest, WorldBuildsRequestedFleet) {
  World world(scale_options(8));
  EXPECT_EQ(world.rigs.size(), 8u);
  EXPECT_EQ(world.topology.clients(), 8u);
  // Every client owns its CPU account and forked RNG stream.
  for (auto& rig : world.rigs) EXPECT_EQ(rig->cpu.cores(), 1u);
}

TEST(ScalabilityTest, DeterministicAcrossRuns) {
  for (std::size_t clients : {1u, 8u, 64u}) {
    World a(scale_options(clients));
    World b(scale_options(clients));
    auto ra = a.run_uniform_traffic(kPacketsPerClient);
    auto rb = b.run_uniform_traffic(kPacketsPerClient);
    EXPECT_EQ(ra.offered, rb.offered) << clients << " clients";
    EXPECT_EQ(ra.delivered, rb.delivered) << clients << " clients";
    EXPECT_EQ(ra.per_client_delivered, rb.per_client_delivered);
    EXPECT_EQ(ra.server_busy_core_ns, rb.server_busy_core_ns);
    EXPECT_EQ(a.topology.aggregate_bytes(), b.topology.aggregate_bytes());
  }
}

TEST(ScalabilityTest, AggregatePacketsScaleLinearly) {
  for (std::size_t clients : {1u, 8u, 64u}) {
    World world(scale_options(clients));
    auto report = world.run_uniform_traffic(kPacketsPerClient);
    // Nothing is dropped: every offered packet arrives, so the
    // aggregate is exactly clients x per-client.
    EXPECT_EQ(report.delivered, clients * kPacketsPerClient);
    for (std::size_t i = 0; i < clients; ++i)
      EXPECT_EQ(report.per_client_delivered[i], kPacketsPerClient);
  }
}

TEST(ScalabilityTest, ServerCostPerClientStaysFlat) {
  World one(scale_options(1));
  World many(scale_options(64));
  auto r1 = one.run_uniform_traffic(kPacketsPerClient);
  auto r64 = many.run_uniform_traffic(kPacketsPerClient);
  ASSERT_GT(r1.delivered, 0u);
  ASSERT_GT(r64.delivered, 0u);
  // Per-client server cost: total server work divided by fleet size,
  // with every client offering the same load. Fig 10a's EndBox curve
  // tracks vanilla OpenVPN because the middleboxes run client-side.
  double cost1 = r1.server_cost_per_client_ns();
  double cost64 = r64.server_cost_per_client_ns();
  EXPECT_LE(cost64, 1.5 * cost1)
      << "per-client server cost grew from " << cost1 << " ns to " << cost64
      << " ns";
  // And per-packet cost is flat too (same statement, normalised).
  EXPECT_LE(r64.server_cost_per_packet_ns(),
            1.5 * r1.server_cost_per_packet_ns());
}

TEST(ScalabilityTest, ServerSideClickCostsGrowInContrast) {
  // The OpenVPN+Click baseline pays per-client Click instances on the
  // server: per-packet cost at 32 clients must exceed the 1-client cost
  // by more than EndBox's (which stays ~flat).
  World one(scale_options(1, ServerMode::WithClick));
  World many(scale_options(32, ServerMode::WithClick));
  auto r1 = one.run_uniform_traffic(kPacketsPerClient);
  auto r32 = many.run_uniform_traffic(kPacketsPerClient);
  ASSERT_GT(r1.delivered, 0u);
  ASSERT_GT(r32.delivered, 0u);
  World endbox_many(scale_options(32));
  auto e32 = endbox_many.run_uniform_traffic(kPacketsPerClient);
  double click_growth =
      r32.server_cost_per_packet_ns() / r1.server_cost_per_packet_ns();
  EXPECT_GT(r32.server_cost_per_packet_ns(), e32.server_cost_per_packet_ns());
  EXPECT_GT(click_growth, 1.0);
}

TEST(ScalabilityTest, ServerAccountsPacketsPerSession) {
  World world(scale_options(8));
  auto report = world.run_uniform_traffic(kPacketsPerClient);
  ASSERT_EQ(report.delivered, 8 * kPacketsPerClient);
  // The server's per-session ledger agrees with the aggregate counter
  // and sees exactly one session per client.
  EXPECT_EQ(world.server.sessions_with_traffic(), 8u);
  EXPECT_EQ(world.server.packets_forwarded(), report.delivered);
  EXPECT_EQ(world.server.packets_forwarded_for(0), 0u);  // unknown session
}

TEST(ScalabilityTest, TopologyCountsAggregateTraffic) {
  World world(scale_options(8));
  auto report = world.run_uniform_traffic(kPacketsPerClient);
  ASSERT_EQ(report.delivered, 8 * kPacketsPerClient);
  // Every wire frame crossed one access link and the shared uplink.
  std::uint64_t access_total = 0;
  for (std::size_t i = 0; i < 8; ++i) access_total += world.topology.client_bytes(i);
  EXPECT_EQ(world.topology.aggregate_bytes(), access_total);
  EXPECT_GE(world.topology.aggregate_frames(), report.delivered);
  // Uniform load: each access link carried the same byte count.
  for (std::size_t i = 1; i < 8; ++i)
    EXPECT_EQ(world.topology.client_bytes(i), world.topology.client_bytes(0));
}

TEST(ScalabilityTest, BatchedWorldDeliversIdenticalTrafficForLess) {
  // The batched data path (one ecall + one virtual-call chain per
  // burst) must deliver exactly the same packets as the per-packet
  // path; the server does the same per-frame work, while clients get
  // cheaper (amortised transitions), which is the batching win.
  World per_packet(scale_options(8));
  auto baseline = per_packet.run_uniform_traffic(kPacketsPerClient);

  World batched(scale_options(8));
  auto burst = batched.run_uniform_traffic_batched(kPacketsPerClient, 32);

  EXPECT_EQ(burst.offered, baseline.offered);
  EXPECT_EQ(burst.delivered, baseline.delivered);
  EXPECT_EQ(burst.per_client_delivered, baseline.per_client_delivered);
  // Identical frames hit the server, so its work stays within noise.
  EXPECT_LE(burst.server_busy_core_ns, baseline.server_busy_core_ns * 1.01);
  // The uplink carried the same bytes and frames (bursts back to back).
  EXPECT_EQ(batched.topology.aggregate_bytes(),
            per_packet.topology.aggregate_bytes());
  EXPECT_EQ(batched.topology.aggregate_frames(),
            per_packet.topology.aggregate_frames());
}

TEST(ScalabilityTest, BatchedClientCostBelowPerPacketCost) {
  // Client-side virtual-time cost per packet must drop under batching:
  // the enclave transition and the element-entry chain amortise over
  // the burst.
  World per_packet(scale_options(1));
  World batched(scale_options(1));
  auto r1 = per_packet.run_uniform_traffic(kPacketsPerClient * 4);
  auto r2 = batched.run_uniform_traffic_batched(kPacketsPerClient * 4, 50);
  ASSERT_EQ(r1.delivered, r2.delivered);
  double busy_single = per_packet.rigs[0]->cpu.busy_core_ns();
  double busy_batched = batched.rigs[0]->cpu.busy_core_ns();
  EXPECT_LT(busy_batched, busy_single)
      << "batching did not reduce the modelled client cost";
}

TEST(ScalabilityTest, ShardedClientsDeliverIdenticalTrafficFaster) {
  // Fig 10a with multi-core clients under honest accounting: 1/2/4-shard
  // element graphs must deliver exactly the same packets (RSS sharding
  // never drops or reorders within a flow); spreading the Click work
  // across cores shrinks the burst *completion latency* (the critical
  // path), while busy core time stays ~flat — the work does not
  // disappear, it runs on more cores (each shard even pays its own
  // element-entry chain, so total work grows slightly).
  WorldOptions opts = scale_options(2);
  opts.use_case = UseCase::Idps;

  std::vector<std::uint64_t> delivered;
  std::vector<double> client_busy;
  std::vector<double> client_latency;
  for (std::size_t shards : {1u, 2u, 4u}) {
    WorldOptions sharded = opts;
    sharded.client_options.shards = shards;
    World world(sharded);
    auto report = world.run_uniform_traffic_batched(kPacketsPerClient * 4, 32,
                                                    1400, /*flows=*/8);
    EXPECT_EQ(report.delivered, report.offered) << shards << " shards";
    delivered.push_back(report.delivered);
    client_busy.push_back(world.rigs[0]->cpu.busy_core_ns());
    client_latency.push_back(report.client_burst_latency_ns);
    EXPECT_EQ(world.rigs[0]->client.enclave().shard_count(), shards);
    EXPECT_EQ(world.rigs[0]->cpu.cores(), shards);
  }
  EXPECT_EQ(delivered[0], delivered[1]);
  EXPECT_EQ(delivered[0], delivered[2]);
  // Completion latency strictly decreases with the shard count (the
  // scan-heavy IDPS pipeline dominates the parallel phase).
  EXPECT_LT(client_latency[1], client_latency[0]);
  EXPECT_LT(client_latency[2], client_latency[1]);
  // Busy core time is ~flat: within a small band of the single-shard
  // total (a little above it — per-shard entry chains + staging).
  for (std::size_t i : {1u, 2u}) {
    EXPECT_GE(client_busy[i], client_busy[0] * 0.99);
    EXPECT_LE(client_busy[i], client_busy[0] * 1.25);
  }
}

TEST(ScalabilityTest, ServerShardsDeliverIdenticalTrafficForFlatCost) {
  // Sweeping the server's session-shard count must change nothing about
  // what is delivered, and busy core time stays ~flat (1-shard total
  // plus the explicit per-frame staging cost): spreading the drain over
  // workers is not free capacity, it is the same work on more cores.
  std::vector<std::uint64_t> delivered;
  std::vector<double> busy;
  for (std::size_t shards : {1u, 2u, 4u}) {
    WorldOptions opts = scale_options(8);
    opts.vpn_config.session_shards = shards;
    World world(opts);
    auto report = world.run_uniform_traffic_batched(kPacketsPerClient * 2, 32);
    EXPECT_EQ(world.server.vpn().session_shard_count(), shards);
    delivered.push_back(report.delivered);
    busy.push_back(report.server_busy_core_ns);
    EXPECT_EQ(report.delivered, report.offered) << shards << " server shards";
  }
  EXPECT_EQ(delivered[0], delivered[1]);
  EXPECT_EQ(delivered[0], delivered[2]);
  for (std::size_t i : {1u, 2u}) {
    EXPECT_GE(busy[i], busy[0] * 0.999);
    EXPECT_LE(busy[i], busy[0] * 1.001);
  }
}

TEST(ScalabilityTest, ServerShardsCutMixedTrainDrainLatency) {
  // Fig 10a server side: when the uplink delivers one interleaved train
  // spanning every session, the batched drain completes at the critical
  // path of the shard workers — more shards, shorter drain. (Per-client
  // trains carry one session each and cannot parallelise further; this
  // is the mixed-train case the session sharding exists for.)
  std::vector<double> latency;
  std::vector<std::uint32_t> delivered;
  for (std::size_t shards : {1u, 2u, 4u}) {
    WorldOptions opts = scale_options(8);
    opts.vpn_config.session_shards = shards;
    World world(opts);
    click::PacketBatch batch;
    EgressBatch egress;
    std::vector<Bytes> train;
    for (std::uint64_t round = 0; round < 4; ++round) {
      for (std::size_t i = 0; i < world.rigs.size(); ++i) {
        batch.push_back(world.benign_packet_from(i, 1400));
        auto sent = world.rigs[i]->client.send_batch(std::move(batch), egress,
                                                     world.clock.now());
        batch.clear();
        ASSERT_TRUE(sent.ok());
        for (std::size_t f = 0; f < sent->frames; ++f)
          train.push_back(egress.frames[f]);
      }
    }
    sim::Time now = world.clock.now();
    auto handled = world.server.handle_batch(train, now);
    ASSERT_TRUE(handled.ok());
    delivered.push_back(handled->delivered);
    latency.push_back(static_cast<double>(handled->done - now));
  }
  EXPECT_EQ(delivered[0], 32u);
  EXPECT_EQ(delivered[0], delivered[1]);
  EXPECT_EQ(delivered[0], delivered[2]);
  EXPECT_LT(latency[1], latency[0]);
  EXPECT_LT(latency[2], latency[1]);
}

TEST(ScalabilityTest, GarbageBurstsDoNotGrowServerLedgers) {
  // Satellite regression: a burst whose frames all fail to open for a
  // known session charges the server CPU (the MAC check ran) but must
  // not create per-session ledger entries — only the first successful
  // open does.
  World world(scale_options(1));
  const auto* session = world.rigs[0]->client.enclave().session();
  ASSERT_NE(session, nullptr);
  Bytes bad(64, 0xab);
  bad[0] = static_cast<std::uint8_t>(vpn::MsgType::Data);
  put_u32(bad.data() + 1, session->session_id());
  std::vector<Bytes> burst(8, bad);
  double busy_before = world.server_cpu.busy_core_ns();
  auto handled = world.server.handle_batch(burst, world.clock.now());
  ASSERT_TRUE(handled.ok());
  EXPECT_EQ(handled->rejected, 8u);
  EXPECT_GT(world.server_cpu.busy_core_ns(), busy_before);
  EXPECT_EQ(world.server.sessions_with_traffic(), 0u);
  EXPECT_EQ(world.server.session_process_entries(), 0u);

  // A successfully opened frame whose fragment group is still pending
  // is real work: it earns the ledger entry even though no packet has
  // completed yet (matching handle_wire's FragmentPending behaviour).
  click::PacketBatch batch;
  EgressBatch egress;
  batch.push_back(world.benign_packet(20000));  // 3 fragments at MTU 9000
  auto sent = world.rigs[0]->client.send_batch(std::move(batch), egress,
                                               world.clock.now());
  ASSERT_TRUE(sent.ok());
  ASSERT_EQ(sent->frames, 3u);
  auto partial = world.server.handle_batch(
      std::span<const Bytes>(egress.frames.data(), 2), world.clock.now());
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(partial->delivered, 0u);
  EXPECT_EQ(partial->pending, 2u);
  EXPECT_EQ(world.server.sessions_with_traffic(), 0u);
  EXPECT_EQ(world.server.session_process_entries(), 1u);
  auto rest = world.server.handle_batch(
      std::span<const Bytes>(egress.frames.data() + 2, 1), world.clock.now());
  ASSERT_TRUE(rest.ok());
  EXPECT_EQ(rest->delivered, 1u);
  EXPECT_EQ(world.server.sessions_with_traffic(), 1u);

  auto report = world.run_uniform_traffic_batched(4, 4);
  EXPECT_EQ(report.delivered, 4u);
  EXPECT_EQ(world.server.sessions_with_traffic(), 1u);
  EXPECT_EQ(world.server.session_process_entries(), 1u);
}

TEST(ScalabilityTest, AdaptiveControllerFollowsLoadLosslessly) {
  // The acceptance scenario: one controller watches the per-interval
  // offered frame count and drives both halves of the reshard
  // machinery — VpnServer::reshard_sessions and every client's
  // ecall_reshard — growing 1 -> 4 as load rises and shrinking back as
  // it falls, while every packet is delivered and every flow's payload
  // sequence arrives strictly in order across the transitions (the
  // run-to-completion contract: a flow lives in one lane's FIFO, so
  // ordering is per flow; each client session carries 8 flows).
  WorldOptions opts = scale_options(8);
  World world(opts);

  ReshardPolicy policy;
  policy.max_shards = 4;
  policy.shard_capacity = 100;  // frames per interval per shard
  policy.ewma_alpha = 0.5;
  policy.cooldown_intervals = 1;
  AdaptiveReshardController controller(policy, 1);

  std::unordered_map<std::uint32_t, std::uint32_t> next_seq;
  std::unordered_map<std::size_t, std::uint32_t> sent_seq;
  std::uint64_t offered = 0, delivered_total = 0;
  std::size_t max_shards_seen = 1;
  std::uint64_t reorders = 0;

  click::PacketBatch batch;
  EgressBatch egress;
  vpn::VpnServer::OpenBatch opened;
  auto run_interval = [&](std::size_t packets_per_client) {
    std::size_t frames_this_interval = 0;
    for (std::size_t i = 0; i < world.rigs.size(); ++i) {
      auto& rig = *world.rigs[i];
      for (std::size_t k = 0; k < packets_per_client; ++k) {
        std::uint32_t seq = sent_seq[i]++;
        Bytes payload(64, 0);
        put_u32(payload.data(), seq);
        net::Packet packet = net::Packet::udp(
            net::Ipv4(10, 8, 0, static_cast<std::uint8_t>(i + 2)),
            net::Ipv4(10, 0, 0, 1),
            static_cast<std::uint16_t>(40000 + seq % 8), 5001, payload);
        batch.push_back(std::move(packet));
      }
      offered += packets_per_client;
      auto sent = rig.client.send_batch(std::move(batch), egress, world.clock.now());
      batch.clear();
      ASSERT_TRUE(sent.ok()) << sent.error();
      frames_this_interval += sent->frames;
      world.server.vpn().open_batch(
          std::span<const Bytes>(egress.frames.data(), sent->frames),
          world.clock.now(), opened);
      delivered_total += opened.complete;
      for (std::size_t p = 0; p < opened.packet_count; ++p) {
        auto parsed = net::Packet::parse(opened.packets[p].ip_packet);
        ASSERT_TRUE(parsed.ok());
        std::uint32_t seq = get_u32(parsed->payload.data());
        std::uint32_t sid = opened.packets[p].session_id;
        // Flow f of a session carries seqs f, f+8, f+16, ...: an exact
        // per-flow sequence (zero loss AND zero within-flow
        // reordering). Cross-flow interleaving within a session is the
        // lane pipeline's documented freedom.
        std::uint32_t flow_key = sid * 8 + seq % 8;
        auto it = next_seq.find(flow_key);
        std::uint32_t expected = it == next_seq.end() ? seq % 8 : it->second;
        if (seq != expected) ++reorders;
        next_seq[flow_key] = seq + 8;
      }
    }
    std::size_t target = controller.observe(static_cast<double>(frames_this_interval));
    if (target != world.server.vpn().session_shard_count()) {
      ASSERT_TRUE(world.server.vpn().reshard_sessions(target).ok());
      for (auto& rig : world.rigs)
        ASSERT_TRUE(rig->client.enclave().ecall_reshard(target).ok());
    }
    max_shards_seen = std::max(max_shards_seen, world.server.vpn().session_shard_count());
  };

  for (int i = 0; i < 4; ++i) run_interval(6);    // ~48 frames: 1 shard
  EXPECT_EQ(world.server.vpn().session_shard_count(), 1u);
  for (int i = 0; i < 12; ++i) run_interval(48);  // ~384 frames: grow to 4
  EXPECT_EQ(world.server.vpn().session_shard_count(), 4u);
  EXPECT_EQ(world.rigs[0]->client.enclave().shard_count(), 4u);
  for (int i = 0; i < 12; ++i) run_interval(6);   // load falls: shrink back
  EXPECT_EQ(world.server.vpn().session_shard_count(), 1u);

  EXPECT_EQ(max_shards_seen, 4u);
  EXPECT_GE(controller.grow_decisions(), 2u);
  EXPECT_GE(controller.shrink_decisions(), 2u);
  // Zero loss, zero reordering within any session, across every
  // transition the controller drove.
  EXPECT_EQ(delivered_total, offered);
  EXPECT_EQ(reorders, 0u);
}

TEST(ScalabilityTest, MillionSessionChurnStaysBounded) {
  // Lifecycle acceptance: ~1M sessions churn through handshake ->
  // traffic -> idle-expiry -> re-key while every per-shard table stays
  // within its configured capacity, nothing live is lost, and the timer
  // wheel reclaims everything. Set ENDBOX_CHURN_WAVES to shrink the
  // sweep for slow (sanitizer) runs.
  std::size_t waves = 256;
  if (const char* env = std::getenv("ENDBOX_CHURN_WAVES"))
    waves = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  ASSERT_GE(waves, 2u);
  constexpr std::size_t kSessionsPerWave = 4096;
  constexpr sim::Time kWaveSpacing = 60 * sim::kSecond;

  // Minimal PKI: one attested client identity re-handshaking for every
  // churned session (the server treats each handshake as a new session,
  // so one client object drives the whole fleet cheaply).
  Rng rng(0x10a9c5e5);
  sim::Clock clock;
  sgx::AttestationService ias(rng);
  ca::CertificateAuthority authority(rng, ias);
  sgx::SgxPlatform platform("churn-client", rng, clock);
  sgx::Enclave enclave(platform, "endbox-v1", sgx::SgxMode::Hardware);
  crypto::RsaKeyPair enclave_key = crypto::rsa_generate(rng);
  ias.register_platform("churn-client", platform.attestation_key().pub);
  authority.allow_measurement(enclave.measurement());
  sgx::QuotingEnclave qe(platform);
  auto quote = qe.quote(enclave.create_report(
      sgx::bind_report_data(enclave_key.pub.serialize())));
  auto response = authority.provision(quote->serialize(), enclave_key.pub);
  ASSERT_TRUE(response.ok()) << response.error();

  vpn::VpnServerConfig config;
  config.session_shards = 4;
  config.session_capacity_per_shard = 2048;
  config.session_idle_timeout = 30 * sim::kSecond;
  Rng server_rng(0xc5e5);
  vpn::VpnServer server(server_rng, authority.public_key(), config);
  Rng client_rng(0xc11e47);
  vpn::VpnClientSession client(client_rng, response->certificate, enclave_key,
                               server.public_key(), {});

  const Bytes payload = to_bytes("churn-traffic");
  std::uint64_t created = 0;
  std::uint64_t rekeyed = 0;
  std::uint64_t delivered = 0;
  for (std::size_t wave = 0; wave < waves; ++wave) {
    const sim::Time now = static_cast<sim::Time>(wave) * kWaveSpacing;
    for (std::size_t i = 0; i < kSessionsPerWave; ++i) {
      // Handshake: the sweep at the top of handle() retires the
      // previous wave (idle > 30s) before this admission, so occupancy
      // never exceeds one wave's worth of sessions.
      auto init = client.create_handshake_init();
      auto hs = server.handle(init.serialize(), now);
      ASSERT_TRUE(hs.ok()) << "wave " << wave << " #" << i << ": "
                           << hs.error();
      auto reply = vpn::WireMessage::parse(
          std::get<vpn::VpnServer::HandshakeDone>(*hs).reply_wire);
      ASSERT_TRUE(reply.ok());
      ASSERT_TRUE(client.process_handshake_reply(*reply).ok());
      ++created;

      // Traffic: a live session's packet must always land (zero loss).
      auto frames = client.seal_packet(payload);
      ASSERT_EQ(frames.size(), 1u);
      auto event = server.handle(frames[0].serialize(), now);
      ASSERT_TRUE(event.ok()) << event.error();
      auto* in = std::get_if<vpn::VpnServer::PacketIn>(&*event);
      ASSERT_NE(in, nullptr);
      ASSERT_EQ(in->ip_packet, payload);
      ++delivered;

      // Re-key a slice of the fleet: explicit teardown followed by a
      // fresh handshake, exercising erase + immediate re-admission.
      if (i % 512 == 0) {
        ASSERT_TRUE(server.close_session(client.session_id()));
        auto again = client.create_handshake_init();
        auto hs2 = server.handle(again.serialize(), now);
        ASSERT_TRUE(hs2.ok()) << hs2.error();
        auto reply2 = vpn::WireMessage::parse(
            std::get<vpn::VpnServer::HandshakeDone>(*hs2).reply_wire);
        ASSERT_TRUE(reply2.ok());
        ASSERT_TRUE(client.process_handshake_reply(*reply2).ok());
        ++created;
        ++rekeyed;
      }
    }
    // The bound is enforced continuously, not just at the end.
    for (std::size_t s = 0; s < server.session_shard_count(); ++s)
      ASSERT_LE(server.shard_peak_sessions(s),
                server.session_capacity_per_shard())
          << "wave " << wave << " shard " << s;
    ASSERT_EQ(server.sessions_rejected_full(), 0u) << "wave " << wave;
  }

  EXPECT_EQ(created, waves * kSessionsPerWave + rekeyed);
  EXPECT_EQ(delivered, waves * kSessionsPerWave);

  // Drain: one idle timeout after the last wave, the wheel has
  // reclaimed every remaining session.
  const sim::Time drain =
      static_cast<sim::Time>(waves) * kWaveSpacing + 31 * sim::kSecond;
  server.expire_idle_sessions(drain);
  EXPECT_EQ(server.session_count(), 0u);
  EXPECT_EQ(server.sessions_expired() + rekeyed, created);
  EXPECT_EQ(server.sessions_rejected_full(), 0u);
}

TEST(ScalabilityTest, DifferentSeedsDifferentKeyMaterial) {
  World a(scale_options(2));
  WorldOptions other = scale_options(2);
  other.seed = 0xfeedface;
  World b(other);
  // Distinct seeds must produce distinct session key material — the
  // forked per-client streams derive from the world seed.
  EXPECT_NE(a.rigs[0]->rng.next_u64(), b.rigs[0]->rng.next_u64());
  // And distinct clients within one world draw from distinct streams.
  EXPECT_NE(a.rigs[0]->rng.next_u64(), a.rigs[1]->rng.next_u64());
}

}  // namespace
}  // namespace endbox
