// Multi-client scalability suite mirroring Fig 10a: because EndBox runs
// middlebox functions on the clients, the server's per-packet cost must
// stay ~flat as the fleet grows, while aggregate processed traffic
// scales linearly with the client count. Built on the parameterisable
// World (N clients, per-client CPU accounts and RNG streams, one
// experiment seed).
#include <gtest/gtest.h>

#include "endbox_world.hpp"

namespace endbox {
namespace {

using testing::World;
using testing::WorldOptions;

WorldOptions scale_options(std::size_t clients,
                           ServerMode mode = ServerMode::Plain) {
  WorldOptions opts;
  opts.seed = 0x5ca1ab1e;
  opts.clients = clients;
  opts.use_case = UseCase::Nop;
  opts.server_mode = mode;
  return opts;
}

constexpr std::uint64_t kPacketsPerClient = 25;

TEST(ScalabilityTest, WorldBuildsRequestedFleet) {
  World world(scale_options(8));
  EXPECT_EQ(world.rigs.size(), 8u);
  EXPECT_EQ(world.topology.clients(), 8u);
  // Every client owns its CPU account and forked RNG stream.
  for (auto& rig : world.rigs) EXPECT_EQ(rig->cpu.cores(), 1u);
}

TEST(ScalabilityTest, DeterministicAcrossRuns) {
  for (std::size_t clients : {1u, 8u, 64u}) {
    World a(scale_options(clients));
    World b(scale_options(clients));
    auto ra = a.run_uniform_traffic(kPacketsPerClient);
    auto rb = b.run_uniform_traffic(kPacketsPerClient);
    EXPECT_EQ(ra.offered, rb.offered) << clients << " clients";
    EXPECT_EQ(ra.delivered, rb.delivered) << clients << " clients";
    EXPECT_EQ(ra.per_client_delivered, rb.per_client_delivered);
    EXPECT_EQ(ra.server_busy_core_ns, rb.server_busy_core_ns);
    EXPECT_EQ(a.topology.aggregate_bytes(), b.topology.aggregate_bytes());
  }
}

TEST(ScalabilityTest, AggregatePacketsScaleLinearly) {
  for (std::size_t clients : {1u, 8u, 64u}) {
    World world(scale_options(clients));
    auto report = world.run_uniform_traffic(kPacketsPerClient);
    // Nothing is dropped: every offered packet arrives, so the
    // aggregate is exactly clients x per-client.
    EXPECT_EQ(report.delivered, clients * kPacketsPerClient);
    for (std::size_t i = 0; i < clients; ++i)
      EXPECT_EQ(report.per_client_delivered[i], kPacketsPerClient);
  }
}

TEST(ScalabilityTest, ServerCostPerClientStaysFlat) {
  World one(scale_options(1));
  World many(scale_options(64));
  auto r1 = one.run_uniform_traffic(kPacketsPerClient);
  auto r64 = many.run_uniform_traffic(kPacketsPerClient);
  ASSERT_GT(r1.delivered, 0u);
  ASSERT_GT(r64.delivered, 0u);
  // Per-client server cost: total server work divided by fleet size,
  // with every client offering the same load. Fig 10a's EndBox curve
  // tracks vanilla OpenVPN because the middleboxes run client-side.
  double cost1 = r1.server_cost_per_client_ns();
  double cost64 = r64.server_cost_per_client_ns();
  EXPECT_LE(cost64, 1.5 * cost1)
      << "per-client server cost grew from " << cost1 << " ns to " << cost64
      << " ns";
  // And per-packet cost is flat too (same statement, normalised).
  EXPECT_LE(r64.server_cost_per_packet_ns(),
            1.5 * r1.server_cost_per_packet_ns());
}

TEST(ScalabilityTest, ServerSideClickCostsGrowInContrast) {
  // The OpenVPN+Click baseline pays per-client Click instances on the
  // server: per-packet cost at 32 clients must exceed the 1-client cost
  // by more than EndBox's (which stays ~flat).
  World one(scale_options(1, ServerMode::WithClick));
  World many(scale_options(32, ServerMode::WithClick));
  auto r1 = one.run_uniform_traffic(kPacketsPerClient);
  auto r32 = many.run_uniform_traffic(kPacketsPerClient);
  ASSERT_GT(r1.delivered, 0u);
  ASSERT_GT(r32.delivered, 0u);
  World endbox_many(scale_options(32));
  auto e32 = endbox_many.run_uniform_traffic(kPacketsPerClient);
  double click_growth =
      r32.server_cost_per_packet_ns() / r1.server_cost_per_packet_ns();
  EXPECT_GT(r32.server_cost_per_packet_ns(), e32.server_cost_per_packet_ns());
  EXPECT_GT(click_growth, 1.0);
}

TEST(ScalabilityTest, ServerAccountsPacketsPerSession) {
  World world(scale_options(8));
  auto report = world.run_uniform_traffic(kPacketsPerClient);
  ASSERT_EQ(report.delivered, 8 * kPacketsPerClient);
  // The server's per-session ledger agrees with the aggregate counter
  // and sees exactly one session per client.
  EXPECT_EQ(world.server.sessions_with_traffic(), 8u);
  EXPECT_EQ(world.server.packets_forwarded(), report.delivered);
  EXPECT_EQ(world.server.packets_forwarded_for(0), 0u);  // unknown session
}

TEST(ScalabilityTest, TopologyCountsAggregateTraffic) {
  World world(scale_options(8));
  auto report = world.run_uniform_traffic(kPacketsPerClient);
  ASSERT_EQ(report.delivered, 8 * kPacketsPerClient);
  // Every wire frame crossed one access link and the shared uplink.
  std::uint64_t access_total = 0;
  for (std::size_t i = 0; i < 8; ++i) access_total += world.topology.client_bytes(i);
  EXPECT_EQ(world.topology.aggregate_bytes(), access_total);
  EXPECT_GE(world.topology.aggregate_frames(), report.delivered);
  // Uniform load: each access link carried the same byte count.
  for (std::size_t i = 1; i < 8; ++i)
    EXPECT_EQ(world.topology.client_bytes(i), world.topology.client_bytes(0));
}

TEST(ScalabilityTest, BatchedWorldDeliversIdenticalTrafficForLess) {
  // The batched data path (one ecall + one virtual-call chain per
  // burst) must deliver exactly the same packets as the per-packet
  // path; the server does the same per-frame work, while clients get
  // cheaper (amortised transitions), which is the batching win.
  World per_packet(scale_options(8));
  auto baseline = per_packet.run_uniform_traffic(kPacketsPerClient);

  World batched(scale_options(8));
  auto burst = batched.run_uniform_traffic_batched(kPacketsPerClient, 32);

  EXPECT_EQ(burst.offered, baseline.offered);
  EXPECT_EQ(burst.delivered, baseline.delivered);
  EXPECT_EQ(burst.per_client_delivered, baseline.per_client_delivered);
  // Identical frames hit the server, so its work stays within noise.
  EXPECT_LE(burst.server_busy_core_ns, baseline.server_busy_core_ns * 1.01);
  // The uplink carried the same bytes and frames (bursts back to back).
  EXPECT_EQ(batched.topology.aggregate_bytes(),
            per_packet.topology.aggregate_bytes());
  EXPECT_EQ(batched.topology.aggregate_frames(),
            per_packet.topology.aggregate_frames());
}

TEST(ScalabilityTest, BatchedClientCostBelowPerPacketCost) {
  // Client-side virtual-time cost per packet must drop under batching:
  // the enclave transition and the element-entry chain amortise over
  // the burst.
  World per_packet(scale_options(1));
  World batched(scale_options(1));
  auto r1 = per_packet.run_uniform_traffic(kPacketsPerClient * 4);
  auto r2 = batched.run_uniform_traffic_batched(kPacketsPerClient * 4, 50);
  ASSERT_EQ(r1.delivered, r2.delivered);
  double busy_single = per_packet.rigs[0]->cpu.busy_core_ns();
  double busy_batched = batched.rigs[0]->cpu.busy_core_ns();
  EXPECT_LT(busy_batched, busy_single)
      << "batching did not reduce the modelled client cost";
}

TEST(ScalabilityTest, ShardedClientsDeliverIdenticalTrafficForLess) {
  // Fig 10a with multi-core clients: 1/2/4-shard element graphs must
  // deliver exactly the same packets (RSS sharding never drops or
  // reorders within a flow), while the modelled client cost falls as
  // shards spread the per-burst Click work across cores.
  WorldOptions opts = scale_options(2);
  opts.use_case = UseCase::Idps;

  std::vector<std::uint64_t> delivered;
  std::vector<double> client_busy;
  for (std::size_t shards : {1u, 2u, 4u}) {
    WorldOptions sharded = opts;
    sharded.client_options.shards = shards;
    World world(sharded);
    auto report = world.run_uniform_traffic_batched(kPacketsPerClient * 4, 32,
                                                    1400, /*flows=*/8);
    EXPECT_EQ(report.delivered, report.offered) << shards << " shards";
    delivered.push_back(report.delivered);
    client_busy.push_back(world.rigs[0]->cpu.busy_core_ns());
    EXPECT_EQ(world.rigs[0]->client.enclave().shard_count(), shards);
  }
  EXPECT_EQ(delivered[0], delivered[1]);
  EXPECT_EQ(delivered[0], delivered[2]);
  // Modelled client cost strictly decreases with the shard count (the
  // scan-heavy IDPS pipeline dominates, and it parallelises).
  EXPECT_LT(client_busy[1], client_busy[0]);
  EXPECT_LT(client_busy[2], client_busy[1]);
}

TEST(ScalabilityTest, DifferentSeedsDifferentKeyMaterial) {
  World a(scale_options(2));
  WorldOptions other = scale_options(2);
  other.seed = 0xfeedface;
  World b(other);
  // Distinct seeds must produce distinct session key material — the
  // forked per-client streams derive from the world seed.
  EXPECT_NE(a.rigs[0]->rng.next_u64(), b.rigs[0]->rng.next_u64());
  // And distinct clients within one world draw from distinct streams.
  EXPECT_NE(a.rigs[0]->rng.next_u64(), a.rigs[1]->rng.next_u64());
}

}  // namespace
}  // namespace endbox
