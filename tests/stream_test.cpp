// Stream-aware inspection tests: the CTX chain (CTXManager -> TCPIn ->
// IDSMatcher -> TCPOut), the resumable Aho-Corasick walk, split-payload
// evasion coverage (the regression the per-packet matcher misses),
// property equivalence against a concatenate-then-rescan model, stream
// state bounds under hostile flows, reshard migration of live stream
// contexts, lane-count determinism, and the enclave-level STREAM+IDPS
// use case. This suite also runs under TSan and ASan in CI.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "click/router.hpp"
#include "click/sharded_router.hpp"
#include "click/standard_elements.hpp"
#include "elements/context.hpp"
#include "elements/ctx_manager.hpp"
#include "elements/device.hpp"
#include "elements/ids_matcher.hpp"
#include "elements/tcp_stream.hpp"
#include "endbox_world.hpp"
#include "idps/aho_corasick.hpp"
#include "idps/engine.hpp"
#include "idps/snort_rules.hpp"

namespace endbox {
namespace {

using click::PacketBatch;
using elements::CTXManager;
using elements::IDSMatcher;
using elements::TCPIn;
using elements::TCPOut;
using net::Ipv4;
using net::Packet;

constexpr std::uint8_t kAck = 0x10;

/// One TCP segment of the test flow (10.8.0.2:sport -> 10.0.0.1:80).
Packet seg(std::uint32_t seq, std::string_view data, std::uint16_t sport = 4242,
           std::uint8_t flags = kAck) {
  return Packet::tcp(Ipv4(10, 8, 0, 2), Ipv4(10, 0, 0, 1), sport, 80, seq, 0,
                     flags, to_bytes(data));
}

std::string stream_config(const std::string& ids_args,
                          const std::string& ctx_args = "") {
  return "from :: FromDevice; ctx :: CTXManager(" + ctx_args +
         "); tin :: TCPIn; ids :: IDSMatcher(" + ids_args +
         "); tout :: TCPOut; to :: ToDevice;"
         " from -> ctx -> tin -> ids -> tout -> to;"
         " tin[1] -> [1]to; ids[1] -> [1]to;";
}

std::string per_packet_config(const std::string& ids_args) {
  return "from :: FromDevice; ids :: IDSMatcher(" + ids_args +
         "); to :: ToDevice; from -> ids -> to; ids[1] -> [1]to;";
}

struct StreamFixture : ::testing::Test {
  Rng rng{17};
  tls::SessionKeyStore key_store;
  elements::ElementContext context;
  click::ElementRegistry registry;
  std::vector<std::pair<Packet, bool>> delivered;

  StreamFixture() : registry(click::ElementRegistry::with_standard_elements()) {
    context.key_store = &key_store;
    context.trusted_time = [] { return sim::Time{0}; };
    context.untrusted_time = [] { return sim::Time{0}; };
    context.to_device = [this](Packet&& p, bool accepted) {
      delivered.emplace_back(std::move(p), accepted);
    };
    context.rulesets["community"] = idps::generate_community_ruleset(100, rng);
    context.rulesets["strict"] = *idps::parse_snort_ruleset(
        "drop ip any any -> any any (content:\"malware\"; sid:1;)\n"
        "alert ip any any -> any any (content:\"suspicious\"; sid:2;)\n");
    context.rulesets["multi"] = *idps::parse_snort_ruleset(
        "alert ip any any -> any any (content:\"alpha\"; content:\"bravo\"; "
        "sid:7;)\n");
    elements::register_endbox_elements(registry, context);
  }

  std::unique_ptr<click::Router> build(const std::string& config) {
    auto router = click::Router::from_config(config, registry);
    if (!router.ok()) throw std::runtime_error(router.error());
    return std::move(*router);
  }

  /// Accept/reject verdicts observed at ToDevice, oldest first.
  std::vector<bool> verdicts() const {
    std::vector<bool> out;
    for (const auto& [packet, accepted] : delivered) out.push_back(accepted);
    return out;
  }
};

// ---- The split-payload evasion, documented then closed -------------------

TEST_F(StreamFixture, PerPacketMatcherMissesSplitPayload) {
  // The regression this PR exists for: "malware" delivered as
  // "mal" + "ware" crosses two packets, so per-packet scanning sees
  // neither half match — both segments sail through a DROP ruleset.
  auto router = build(per_packet_config("RULESET strict, DROP"));
  router->push_to("from", seg(1000, "xx mal"));
  router->push_to("from", seg(1006, "ware yy"));
  EXPECT_EQ(verdicts(), (std::vector<bool>{true, true}));
  EXPECT_EQ(router->find_as<IDSMatcher>("ids")->matches(), 0u);
}

TEST_F(StreamFixture, StreamChainCatchesTwoSegmentStraddle) {
  auto router = build(stream_config("RULESET strict, DROP"));
  router->push_to("from", seg(1000, "xx mal"));
  router->push_to("from", seg(1006, "ware yy"));
  // First segment passed (nothing matched yet); the completing segment
  // is dropped with the same sid single-segment delivery would produce.
  EXPECT_EQ(verdicts(), (std::vector<bool>{true, false}));
  auto* ids = router->find_as<IDSMatcher>("ids");
  EXPECT_EQ(ids->matches(), 1u);
  EXPECT_EQ(ids->stream_evasions(), 1u);  // match began in an earlier segment
  EXPECT_EQ(ids->flows_killed(), 1u);
  // The killed flow stays dead: later segments drop without matching.
  router->push_to("from", seg(1013, "benign tail"));
  EXPECT_EQ(verdicts(), (std::vector<bool>{true, false, false}));
}

TEST_F(StreamFixture, ThreeWaySplitCaught) {
  auto router = build(stream_config("RULESET strict, DROP"));
  router->push_to("from", seg(0, "aa mal"));
  router->push_to("from", seg(6, "wa"));
  router->push_to("from", seg(8, "re bb"));
  EXPECT_EQ(verdicts(), (std::vector<bool>{true, true, false}));
  EXPECT_EQ(router->find_as<IDSMatcher>("ids")->stream_evasions(), 1u);
}

TEST_F(StreamFixture, OutOfOrderSplitCaught) {
  auto router = build(stream_config("RULESET strict, DROP"));
  // The SYN anchors the cursor at 1000 (the first packet seen defines
  // the stream start). The tail then arrives early and parks; the head
  // fills the hole and the released tail completes the pattern.
  router->push_to("from", seg(999, "", 4242, 0x02));
  router->push_to("from", seg(1006, "ware yy"));
  router->push_to("from", seg(1000, "xx mal"));
  EXPECT_EQ(verdicts(), (std::vector<bool>{true, true, false}));
  auto* ids = router->find_as<IDSMatcher>("ids");
  EXPECT_EQ(ids->matches(), 1u);
  EXPECT_EQ(ids->stream_evasions(), 1u);
  const auto& stats = router->find_as<CTXManager>("ctx")->stream_stats();
  EXPECT_EQ(stats.segments_parked, 1u);
  EXPECT_EQ(stats.segments_released, 1u);
  EXPECT_EQ(stats.bytes_buffered, 0u);  // released bytes are unaccounted
  EXPECT_EQ(stats.bytes_buffered_peak, 7u);
}

TEST_F(StreamFixture, OverlappingRetransmitScansBytesOnce) {
  // Alert-only: the flow lives on, so re-firing would be visible.
  auto router = build(stream_config("RULESET strict"));
  router->push_to("from", seg(0, "susp"));
  router->push_to("from", seg(2, "spicious!"));   // overlaps [2,4)
  router->push_to("from", seg(0, "suspicious!")); // full retransmit
  auto* ids = router->find_as<IDSMatcher>("ids");
  EXPECT_EQ(ids->matches(), 1u);  // fired once, on the completing segment
  EXPECT_EQ(verdicts(), (std::vector<bool>{true, true, true}));
  // Retransmitted bytes contribute no new stream window.
  EXPECT_EQ(router->find_as<TCPIn>("tin")->in_order_bytes(), 11u);
}

TEST_F(StreamFixture, SynConsumesSequenceNumber) {
  auto router = build(stream_config("RULESET strict, DROP"));
  router->push_to("from", seg(999, "", 4242, 0x02));  // SYN, seq 999
  router->push_to("from", seg(1000, "malware"));
  EXPECT_EQ(verdicts(), (std::vector<bool>{true, false}));
  EXPECT_EQ(router->find_as<IDSMatcher>("ids")->matches(), 1u);
  // Single-segment content: no cross-segment match involved.
  EXPECT_EQ(router->find_as<IDSMatcher>("ids")->stream_evasions(), 0u);
}

TEST_F(StreamFixture, MultiContentRuleCompletesAcrossSegments) {
  auto router = build(stream_config("RULESET multi"));
  router->push_to("from", seg(0, ".. alpha .."));
  router->push_to("from", seg(11, "filler"));
  router->push_to("from", seg(17, ".. bravo .."));
  auto* ids = router->find_as<IDSMatcher>("ids");
  EXPECT_EQ(ids->matches(), 1u);  // fired when the second content landed
  // Hits persist per flow: more alphas complete nothing new.
  router->push_to("from", seg(28, "alpha alpha"));
  EXPECT_EQ(ids->matches(), 1u);
  EXPECT_EQ(ids->engine()->alerts(), 1u);
}

// ---- Stream rewriting ----------------------------------------------------

TEST_F(StreamFixture, MaskRewritesMatchedBytesSingleSegment) {
  auto router = build(stream_config("RULESET strict, MASK"));
  router->push_to("from", seg(0, "xx suspicious yy"));
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_TRUE(delivered[0].second);
  EXPECT_EQ(std::string(delivered[0].first.payload.begin(),
                        delivered[0].first.payload.end()),
            "xx XXXXXXXXXX yy");
}

TEST_F(StreamFixture, MaskRewritesCompletingChunkOfSplitMatch) {
  auto router = build(stream_config("RULESET strict, MASK"));
  router->push_to("from", seg(0, "xx susp"));
  router->push_to("from", seg(7, "icious yy"));
  ASSERT_EQ(delivered.size(), 2u);
  // Best effort: the first chunk already left before the match
  // completed; the completing chunk's share is rewritten.
  EXPECT_EQ(std::string(delivered[0].first.payload.begin(),
                        delivered[0].first.payload.end()),
            "xx susp");
  EXPECT_EQ(std::string(delivered[1].first.payload.begin(),
                        delivered[1].first.payload.end()),
            "XXXXXX yy");
}

// ---- Per-packet equivalence on single-segment flows ----------------------

TEST_F(StreamFixture, SingleSegmentFlowsMatchPerPacketReference) {
  // Each flow delivers its whole payload in one segment; the stream
  // path must be byte-identical to the per-packet reference path:
  // same verdict sequence, same match count, same engine statistics.
  auto make_packets = [&](Rng& r) {
    std::vector<Packet> packets;
    for (std::uint16_t i = 0; i < 60; ++i) {
      std::string payload(20 + r.uniform(0, 99), 'a');
      for (auto& c : payload) c = static_cast<char>('a' + r.uniform(0, 25));
      if (r.uniform(0, 3) == 0) payload.insert(payload.size() / 2, "malware");
      if (r.uniform(0, 3) == 1) payload.insert(0, "suspicious");
      packets.push_back(seg(100, payload, static_cast<std::uint16_t>(5000 + i)));
    }
    return packets;
  };
  Rng r1{99}, r2{99};

  auto stream_router = build(stream_config("RULESET strict, DROP"));
  for (auto& packet : make_packets(r1))
    stream_router->push_to("from", std::move(packet));
  auto stream_verdicts = verdicts();
  delivered.clear();

  auto reference = build(per_packet_config("RULESET strict, DROP"));
  for (auto& packet : make_packets(r2))
    reference->push_to("from", std::move(packet));

  EXPECT_EQ(stream_verdicts, verdicts());
  auto* s = stream_router->find_as<IDSMatcher>("ids");
  auto* p = reference->find_as<IDSMatcher>("ids");
  EXPECT_EQ(s->matches(), p->matches());
  EXPECT_EQ(s->engine()->alerts(), p->engine()->alerts());
  EXPECT_EQ(s->engine()->drops(), p->engine()->drops());
  EXPECT_EQ(s->stream_evasions(), 0u);  // nothing straddled
}

// ---- Randomized reassembly + resumable-scan properties -------------------

/// A segment plan: (offset, length) pairs covering [0, n) in order,
/// with random overlaps between consecutive segments.
std::vector<std::pair<std::size_t, std::size_t>> plan_segments(Rng& rng,
                                                               std::size_t n) {
  std::vector<std::pair<std::size_t, std::size_t>> plan;
  std::size_t pos = 0;
  while (pos < n) {
    std::size_t back = pos == 0 ? 0 : rng.uniform(0, std::min<std::size_t>(pos, 8));
    std::size_t start = pos - back;
    std::size_t end = std::min(n, pos + 1 + rng.uniform(0, 63));
    plan.emplace_back(start, end - start);
    pos = end;
  }
  return plan;
}

TEST_F(StreamFixture, ReassemblyReconstructsStreamUnderReordering) {
  // TCPIn's stream windows, concatenated in emission order, must equal
  // the original byte stream for arbitrary segmentation, overlap,
  // duplication and (fully random) reordering. The graph stops at
  // ToDevice before TCPOut so the window annotations stay readable.
  for (int round = 0; round < 20; ++round) {
    delivered.clear();
    auto router = build(
        "from :: FromDevice; ctx :: CTXManager(PARK_SEGS 1024, PARK_BYTES "
        "1048576); tin :: TCPIn; to :: ToDevice;"
        " from -> ctx -> tin -> to; tin[1] -> [1]to;");
    Bytes stream = rng.bytes(500 + rng.uniform(0, 1500));
    auto plan = plan_segments(rng, stream.size());
    // Duplicate a few segments, then shuffle everything.
    std::size_t dups = rng.uniform(0, 4);
    for (std::size_t d = 0; d < dups; ++d)
      plan.push_back(plan[rng.uniform(0, plan.size() - 1)]);
    for (std::size_t i = plan.size(); i > 1; --i)
      std::swap(plan[i - 1], plan[rng.uniform(0, i - 1)]);

    // Base sequence near the wrap point exercises serial arithmetic.
    std::uint32_t base = 0xffffff80u;
    // A zero-length anchor pins the cursor to `base` so the shuffled
    // first segment is not mistaken for the stream start.
    router->push_to("from", seg(base, ""));
    for (auto [off, len] : plan) {
      std::string data(stream.begin() + off, stream.begin() + off + len);
      router->push_to("from",
                      seg(base + static_cast<std::uint32_t>(off), data));
    }
    Bytes reassembled;
    for (const auto& [packet, accepted] : delivered) {
      ASSERT_TRUE(accepted);
      ASSERT_LE(packet.stream_off + packet.stream_len, packet.payload.size());
      reassembled.insert(reassembled.end(),
                         packet.payload.begin() + packet.stream_off,
                         packet.payload.begin() + packet.stream_off +
                             packet.stream_len);
    }
    ASSERT_EQ(reassembled, stream) << "round " << round;
    const auto& stats = router->find_as<CTXManager>("ctx")->stream_stats();
    EXPECT_EQ(stats.bytes_buffered, 0u) << "round " << round;
  }
}

TEST_F(StreamFixture, ResumableScanEqualsConcatenateThenRescan) {
  // Engine-level model check: scanning a stream chunk-by-chunk with
  // inspect_stream must agree with one inspect() over the whole
  // concatenated stream — same any-match verdict, same alert count
  // (each rule once), same drop effect — for random payloads with
  // planted rule contents and random chunk boundaries.
  const auto& rules = context.rulesets["community"];
  Packet probe = seg(0, "");
  for (int round = 0; round < 30; ++round) {
    Bytes stream = rng.bytes(200 + rng.uniform(0, 800));
    // Plant the full content list of a few random rules so multi-
    // content rules can complete (possibly across chunk boundaries).
    for (std::size_t p = 0; p < 1 + rng.uniform(0, 2); ++p) {
      const auto& rule = rules[rng.uniform(0, rules.size() - 1)];
      std::size_t at = rng.uniform(0, stream.size() - 1);
      for (const auto& content : rule.contents) {
        stream.insert(stream.begin() + at, content.bytes.begin(),
                      content.bytes.end());
        at += content.bytes.size() + rng.uniform(0, 20);
        at = std::min(at, stream.size());
      }
    }

    idps::IdpsEngine model(rules);
    idps::IdpsEngine::InspectScratch model_scratch;
    auto whole = model.inspect(probe, stream, model_scratch);

    idps::IdpsEngine streamed(rules);
    idps::IdpsEngine::InspectScratch scratch;
    idps::StreamMatchState state;
    bool any = false;
    std::uint32_t first_sid = 0;
    std::size_t pos = 0;
    while (pos < stream.size()) {
      std::size_t len = std::min<std::size_t>(stream.size() - pos,
                                              1 + rng.uniform(0, 40));
      auto verdict = streamed.inspect_stream(
          probe, ByteView(stream.data() + pos, len), state, scratch);
      if (verdict.matched && !any) {
        any = true;
        first_sid = verdict.sid;
      }
      pos += len;
    }
    EXPECT_EQ(any, whole.matched) << "round " << round;
    EXPECT_EQ(streamed.alerts(), model.alerts()) << "round " << round;
    // first_sid is deliberately NOT compared against whole.sid here:
    // stream mode reports the rule whose last content lands in the
    // earliest chunk, which can differ from the whole-buffer walk's
    // lowest-rule-index pick when several rules complete in different
    // chunks. Single-rule sid equality is asserted in the split tests.
    if (whole.matched) {
      EXPECT_NE(first_sid, 0u) << "round " << round;
    }
  }
}

TEST_F(StreamFixture, StreamBatchEqualsSequentialStreamCalls) {
  // inspect_stream_batch (interleaved, round-scheduled) must be
  // verdict-identical to per-chunk inspect_stream in burst order, even
  // when one flow contributes several chunks to the same burst.
  const auto& rules = context.rulesets["strict"];
  Packet probe = seg(0, "");
  for (int round = 0; round < 20; ++round) {
    // 3 flows, interleaved chunks; flow 0 carries a straddled pattern.
    std::vector<std::string> flows[3];
    flows[0] = {"xx mal", "ware yy", "tail"};
    flows[1] = {"benign", " data ", "suspi", "cious"};
    flows[2] = {"no", "thing", " here"};
    struct Chunk {
      std::size_t flow;
      std::string data;
    };
    std::vector<Chunk> order;
    std::size_t next[3] = {0, 0, 0};
    Rng shuffle_rng(static_cast<std::uint64_t>(round) + 1);
    while (order.size() < flows[0].size() + flows[1].size() + flows[2].size()) {
      std::size_t f = shuffle_rng.uniform(0, 2);
      if (next[f] < flows[f].size()) order.push_back({f, flows[f][next[f]++]});
    }

    idps::IdpsEngine sequential(rules);
    idps::IdpsEngine::InspectScratch scratch;
    idps::StreamMatchState seq_states[3];
    std::vector<idps::IdpsVerdict> expected;
    for (const Chunk& c : order)
      expected.push_back(sequential.inspect_stream(probe, to_bytes(c.data),
                                                   seq_states[c.flow], scratch));

    idps::IdpsEngine batched(rules);
    idps::IdpsEngine::BatchScratch batch_scratch;
    idps::StreamMatchState batch_states[3];
    std::vector<Bytes> storage;
    for (const Chunk& c : order) storage.push_back(to_bytes(c.data));
    std::vector<const Packet*> packets(order.size(), &probe);
    std::vector<ByteView> chunks;
    std::vector<idps::StreamMatchState*> states;
    for (std::size_t i = 0; i < order.size(); ++i) {
      chunks.push_back(storage[i]);
      states.push_back(&batch_states[order[i].flow]);
    }
    std::vector<idps::IdpsVerdict> got(order.size());
    batched.inspect_stream_batch({packets.data(), packets.size()},
                                 {chunks.data(), chunks.size()},
                                 {states.data(), states.size()}, batch_scratch,
                                 got.data());
    for (std::size_t i = 0; i < order.size(); ++i) {
      EXPECT_EQ(got[i].matched, expected[i].matched) << i;
      EXPECT_EQ(got[i].drop, expected[i].drop) << i;
      EXPECT_EQ(got[i].sid, expected[i].sid) << i;
    }
    EXPECT_EQ(batched.alerts(), sequential.alerts());
    EXPECT_EQ(batched.drops(), sequential.drops());
    for (std::size_t f = 0; f < 3; ++f) {
      EXPECT_EQ(batch_states[f].cs_state, seq_states[f].cs_state);
      EXPECT_EQ(batch_states[f].ci_state, seq_states[f].ci_state);
      EXPECT_EQ(batch_states[f].cross_segment_matches,
                seq_states[f].cross_segment_matches);
    }
  }
}

TEST_F(StreamFixture, AhoCorasickResumeEquivalence) {
  // match_resume over arbitrary chunkings reports exactly the matches
  // of one match() over the whole text (offsets rebased per chunk);
  // match_multi_resume equals match_resume per stream.
  for (int round = 0; round < 25; ++round) {
    idps::AhoCorasick ac;
    std::size_t n_patterns = 1 + rng.uniform(0, 7);
    for (std::size_t p = 0; p < n_patterns; ++p) {
      Bytes pattern(1 + rng.uniform(0, 5), 0);
      for (auto& b : pattern) b = static_cast<std::uint8_t>('a' + rng.uniform(0, 2));
      ac.add_pattern(pattern, static_cast<int>(p));
    }
    ac.build();
    Bytes text(80 + rng.uniform(0, 400), 0);
    for (auto& b : text) b = static_cast<std::uint8_t>('a' + rng.uniform(0, 2));

    auto whole = ac.match(text);

    std::vector<idps::AcMatch> resumed;
    std::uint32_t state = 0;
    std::size_t pos = 0;
    while (pos < text.size()) {
      std::size_t len =
          std::min<std::size_t>(text.size() - pos, 1 + rng.uniform(0, 16));
      ac.match_resume(ByteView(text.data() + pos, len), &state,
                      [&](const idps::AcMatch& m) {
                        resumed.push_back(
                            {m.pattern_id, m.end_offset + pos});  // rebase
                        return true;
                      });
      pos += len;
    }
    ASSERT_EQ(resumed.size(), whole.size()) << "round " << round;
    for (std::size_t i = 0; i < whole.size(); ++i) {
      EXPECT_EQ(resumed[i].pattern_id, whole[i].pattern_id);
      EXPECT_EQ(resumed[i].end_offset, whole[i].end_offset);
    }

    // Multi-stream: 5 chunked streams walked in lockstep.
    std::vector<Bytes> streams;
    std::vector<ByteView> views;
    std::vector<std::uint32_t> states(5);
    for (int s = 0; s < 5; ++s) {
      Bytes t(10 + rng.uniform(0, 60), 0);
      for (auto& b : t) b = static_cast<std::uint8_t>('a' + rng.uniform(0, 2));
      streams.push_back(std::move(t));
    }
    for (const auto& s : streams) views.push_back(s);
    std::vector<std::vector<idps::AcMatch>> multi(5);
    ac.match_multi_resume({views.data(), views.size()}, states.data(),
                          [&](std::size_t stream, const idps::AcMatch& m) {
                            multi[stream].push_back(m);
                            return true;
                          });
    for (int s = 0; s < 5; ++s) {
      auto expect = ac.match(streams[s]);
      ASSERT_EQ(multi[s].size(), expect.size());
      for (std::size_t i = 0; i < expect.size(); ++i) {
        EXPECT_EQ(multi[s][i].pattern_id, expect[i].pattern_id);
        EXPECT_EQ(multi[s][i].end_offset, expect[i].end_offset);
      }
      // And the final state resumes correctly: a second chunk continues
      // the stream.
      std::uint32_t resume = states[s];
      ac.match_resume(streams[s], &resume,
                      [](const idps::AcMatch&) { return true; });
    }
  }
}

// ---- Bounds: a hostile flow cannot pin lane memory -----------------------

TEST_F(StreamFixture, HostileFloodIsBoundedAndDropped) {
  auto router = build(
      stream_config("RULESET strict, DROP", "PARK_SEGS 8, PARK_BYTES 4096"));
  // Anchor the cursor, then send only far-future segments: the hole at
  // the cursor never fills, so everything parks until the caps bite.
  router->push_to("from", seg(0, ""));
  std::size_t sent = 0;
  for (std::uint32_t i = 1; i <= 100; ++i) {
    router->push_to("from", seg(i * 1000, std::string(100, 'z')));
    ++sent;
  }
  const auto& stats = router->find_as<CTXManager>("ctx")->stream_stats();
  EXPECT_LE(stats.bytes_buffered, 4096u);
  EXPECT_LE(stats.bytes_buffered_peak, 4096u);
  EXPECT_EQ(stats.segments_parked, 8u);
  EXPECT_EQ(stats.segments_dropped_overflow, sent - 8);
  // Overflow exits output 1 marked dropped — never forwarded unscanned.
  std::size_t rejected = 0;
  for (const auto& [packet, accepted] : delivered)
    if (!accepted) ++rejected;
  EXPECT_EQ(rejected, sent - 8);
}

TEST_F(StreamFixture, CtxTableCapacityDegradesToPerPacketPath) {
  auto router = build(stream_config("RULESET strict, DROP", "CAPACITY 4"));
  // 8 flows each straddle "malware" across two segments. The first 4
  // get contexts and are caught; the rest fall back to per-packet
  // scanning (the documented miss) instead of being disrupted.
  for (std::uint16_t f = 0; f < 8; ++f) {
    router->push_to("from", seg(0, "xx mal", static_cast<std::uint16_t>(6000 + f)));
    router->push_to("from", seg(6, "ware yy", static_cast<std::uint16_t>(6000 + f)));
  }
  auto* ids = router->find_as<IDSMatcher>("ids");
  auto* ctx = router->find_as<CTXManager>("ctx");
  EXPECT_EQ(ids->matches(), 4u);
  EXPECT_EQ(ctx->flows_tracked(), 4u);
  // Both segments of each untracked flow retry the insert.
  EXPECT_EQ(ctx->table_stats().rejected_full, 8u);
  std::size_t rejected = 0;
  for (const auto& [packet, accepted] : delivered)
    if (!accepted) ++rejected;
  EXPECT_EQ(rejected, 4u);  // only the tracked flows' completing segments
}

TEST_F(StreamFixture, ParkedSegmentsExpireAtAgeHorizon) {
  auto router = build(
      stream_config("RULESET strict", "PARK_AGE 16"));
  router->push_to("from", seg(0, ""));            // anchor flow A
  router->push_to("from", seg(5000, "stalled"));  // parked: hole at 0
  // Other-lane traffic ages flow A's parked segment past the horizon.
  for (std::uint16_t i = 0; i < 20; ++i)
    router->push_to("from", seg(0, "b", static_cast<std::uint16_t>(7000 + i)));
  // Next touch of flow A sweeps the stale parking lot.
  router->push_to("from", seg(0, ""));
  const auto& stats = router->find_as<CTXManager>("ctx")->stream_stats();
  EXPECT_EQ(stats.segments_expired_age, 1u);
  EXPECT_EQ(stats.bytes_buffered, 0u);
}

TEST_F(StreamFixture, IdleContextExpiryReleasesBufferedBytes) {
  auto router = build(
      stream_config("RULESET strict", "CAPACITY 64, IDLE_PKTS 8"));
  router->push_to("from", seg(0, ""));
  router->push_to("from", seg(5000, "stalled"));  // 7 bytes parked
  auto* ctx = router->find_as<CTXManager>("ctx");
  EXPECT_EQ(ctx->stream_stats().bytes_buffered, 7u);
  // Flow A goes idle while other flows keep the lane clock moving.
  for (std::uint16_t i = 0; i < 30; ++i)
    router->push_to("from", seg(0, "b", static_cast<std::uint16_t>(7100 + i)));
  EXPECT_GE(ctx->stream_stats().flows_expired, 1u);
  EXPECT_EQ(ctx->stream_stats().bytes_buffered, 0u);
  EXPECT_GE(ctx->table_stats().expired_idle, 1u);
}

// ---- Burst path ----------------------------------------------------------

TEST_F(StreamFixture, BatchPathCatchesStraddlesWithinOneBurst) {
  // Two flows, each splitting a pattern across two segments, all four
  // in ONE burst: the round scheduler must chain same-flow chunks so
  // the straddle still matches (and verdicts equal the per-packet
  // push path).
  auto router = build(stream_config("RULESET strict, DROP"));
  PacketBatch batch;
  batch.push_back(seg(0, "xx mal", 6001));
  batch.push_back(seg(0, "yy mal", 6002));
  batch.push_back(seg(6, "ware !", 6001));
  batch.push_back(seg(6, "ware ?", 6002));
  router->push_batch_to("from", std::move(batch));
  EXPECT_EQ(verdicts(), (std::vector<bool>{true, true, false, false}));
  auto* ids = router->find_as<IDSMatcher>("ids");
  EXPECT_EQ(ids->matches(), 2u);
  EXPECT_EQ(ids->stream_evasions(), 2u);
}

// ---- Lane layer: reshard migration and determinism -----------------------

struct StreamShardHarness {
  struct Rig {
    elements::ElementContext context;
    click::ElementRegistry registry;
    std::vector<std::pair<std::uint32_t, bool>> results;  // (tag, accepted)
    Rig() : registry(elements::make_endbox_registry(context)) {}
  };

  tls::SessionKeyStore store;
  std::vector<idps::SnortRule> rules;
  std::vector<std::unique_ptr<Rig>> rigs;
  std::unique_ptr<click::ShardedRouter> router;

  StreamShardHarness(const std::string& config, std::size_t shards) {
    rules = *idps::parse_snort_ruleset(
        "drop ip any any -> any any (content:\"malware\"; sid:1;)\n");
    auto built = click::ShardedRouter::create(config, shards, factory());
    if (!built.ok()) throw std::runtime_error(built.error());
    router = std::move(*built);
  }

  click::ShardedRouter::RouterFactory factory() {
    return [this](std::size_t i, const std::string& cfg) {
      while (rigs.size() <= i) {
        auto rig = std::make_unique<Rig>();
        rig->context.key_store = &store;
        rig->context.rulesets["strict"] = rules;
        rig->context.trusted_time = [] { return sim::Time{0}; };
        rig->context.untrusted_time = [] { return sim::Time{0}; };
        Rig* raw = rig.get();
        rig->context.to_device = [raw](net::Packet&& packet, bool accepted) {
          raw->results.emplace_back(packet.burst_tag, accepted);
        };
        rigs.push_back(std::move(rig));
      }
      return click::Router::from_config(cfg, rigs[i]->registry);
    };
  }

  std::vector<bool> run_burst(PacketBatch&& batch) {
    std::uint32_t tag = 0;
    for (net::Packet& packet : batch) packet.burst_tag = tag++;
    for (auto& rig : rigs) rig->results.clear();
    if (!router->push_batch_to("from_device", std::move(batch)))
      throw std::runtime_error("push_batch_to failed");
    std::vector<std::pair<std::uint32_t, bool>> merged;
    for (auto& rig : rigs)
      for (auto& r : rig->results) merged.push_back(r);
    std::sort(merged.begin(), merged.end());
    std::vector<bool> verdicts;
    for (auto& [t, accepted] : merged) verdicts.push_back(accepted);
    return verdicts;
  }

  template <typename T, typename Fn>
  std::uint64_t sum(const std::string& name, Fn&& fn) {
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < router->shard_count(); ++s) {
      auto* element = router->shard(s).find_as<T>(name);
      if (element) total += fn(*element);
    }
    return total;
  }
};

std::string sharded_stream_config() {
  return "from_device :: FromDevice; ctx :: CTXManager; tin :: TCPIn;"
         " ids :: IDSMatcher(RULESET strict, DROP); tout :: TCPOut;"
         " to_device :: ToDevice;"
         " from_device -> ctx -> tin -> ids -> tout -> to_device;"
         " tin[1] -> [1]to_device; ids[1] -> [1]to_device;";
}

TEST(StreamSharding, ReshardMigratesLiveStreamContexts) {
  StreamShardHarness harness(sharded_stream_config(), 2);
  constexpr std::uint16_t kFlows = 24;

  // First halves: every flow has "mal" pending mid-stream.
  PacketBatch first;
  for (std::uint16_t f = 0; f < kFlows; ++f)
    first.push_back(seg(0, "xx mal", static_cast<std::uint16_t>(6000 + f)));
  auto v1 = harness.run_burst(std::move(first));
  EXPECT_TRUE(std::all_of(v1.begin(), v1.end(), [](bool a) { return a; }));

  // Reshard mid-stream: contexts must follow their flows to the lanes
  // they hash to under the new count.
  ASSERT_TRUE(harness.router->reshard(3).ok());
  EXPECT_GE(harness.sum<CTXManager>("ctx", [](const CTXManager& c) {
    return c.stream_stats().flows_migrated_in;
  }), 1u);

  // Second halves: the straddled pattern completes on the new lanes.
  PacketBatch second;
  for (std::uint16_t f = 0; f < kFlows; ++f)
    second.push_back(seg(6, "ware yy", static_cast<std::uint16_t>(6000 + f)));
  auto v2 = harness.run_burst(std::move(second));
  EXPECT_TRUE(std::none_of(v2.begin(), v2.end(), [](bool a) { return a; }));

  EXPECT_EQ(harness.sum<IDSMatcher>("ids", [](const IDSMatcher& m) {
    return m.matches();
  }), kFlows);
  EXPECT_EQ(harness.sum<IDSMatcher>("ids", [](const IDSMatcher& m) {
    return m.stream_evasions();
  }), kFlows);
}

TEST(StreamSharding, VerdictsDeterministicAcrossLaneCounts) {
  // The same segment sequence must produce the same per-packet
  // verdict sequence at 1, 2, 4 and 8 lanes (per-flow order is the
  // contract; merged tag order exposes any divergence).
  auto make_bursts = [] {
    std::vector<PacketBatch> bursts;
    Rng rng{5};
    for (int b = 0; b < 4; ++b) {
      PacketBatch batch;
      for (int i = 0; i < 48; ++i) {
        std::uint16_t flow = static_cast<std::uint16_t>(6000 + rng.uniform(0, 11));
        std::uint32_t off = static_cast<std::uint32_t>(rng.uniform(0, 1));
        // Each flow repeatedly streams "malware!" split in two; only
        // in-sequence halves advance the stream.
        batch.push_back(seg(off * 4, off == 0 ? "malw" : "are!", flow));
      }
      bursts.push_back(std::move(batch));
    }
    return bursts;
  };

  std::vector<std::vector<bool>> per_count;
  for (std::size_t shards : {1u, 2u, 4u, 8u}) {
    StreamShardHarness harness(sharded_stream_config(), shards);
    std::vector<bool> all;
    for (auto& burst : make_bursts()) {
      auto v = harness.run_burst(std::move(burst));
      all.insert(all.end(), v.begin(), v.end());
    }
    per_count.push_back(std::move(all));
  }
  for (std::size_t i = 1; i < per_count.size(); ++i)
    EXPECT_EQ(per_count[i], per_count[0]) << "lane count index " << i;
}

// ---- Enclave end-to-end --------------------------------------------------

TEST(StreamEnclave, StreamIdpsUseCaseCatchesSplitPayloadEgress) {
  testing::World world;
  auto bundle = world.publish(UseCase::StreamIdps);
  auto& client = world.add_client(bundle);
  auto& enclave = client.enclave();

  // Rule 2 of the generated community set is single-content with no
  // header constraints (endbox_test relies on the same fact). Split
  // its content across two in-order segments.
  const Bytes& content = world.community_rules[2].contents[0].bytes;
  ASSERT_GE(content.size(), 2u);
  std::string head(content.begin(), content.begin() + content.size() / 2);
  std::string tail(content.begin() + content.size() / 2, content.end());

  auto first = enclave.ecall_process_egress(seg(0, "xx " + head));
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->accepted);
  auto second = enclave.ecall_process_egress(
      seg(static_cast<std::uint32_t>(3 + head.size()), tail + " yy"));
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->accepted);

  auto stats = enclave.stream_stats();
  EXPECT_EQ(stats.flows_tracked, 1u);
  EXPECT_EQ(stats.flows_classified, 1u);
  EXPECT_EQ(stats.evasions_caught, 1u);
  EXPECT_EQ(stats.flows_killed, 1u);
  EXPECT_EQ(stats.stream_chunks, 2u);
}

TEST(StreamEnclave, ShardedStreamStatsAggregateAcrossLanes) {
  testing::World world;
  auto bundle = world.publish(UseCase::StreamIdps);
  EndBoxClientOptions options;
  options.shards = 4;
  auto& client = world.add_client(bundle, options);
  auto& enclave = client.enclave();

  PacketBatch batch;
  for (std::uint16_t f = 0; f < 16; ++f)
    batch.push_back(seg(0, "benign stream data", static_cast<std::uint16_t>(6000 + f)));
  EgressBatch out;
  ASSERT_TRUE(enclave.ecall_process_egress_batch(std::move(batch), out).ok());
  EXPECT_EQ(out.accepted, 16u);

  auto stats = enclave.stream_stats();
  EXPECT_EQ(stats.flows_tracked, 16u);
  EXPECT_EQ(stats.flows_classified, 16u);
  EXPECT_EQ(stats.stream_chunks, 16u);
  EXPECT_EQ(stats.evasions_caught, 0u);
}

}  // namespace
}  // namespace endbox
