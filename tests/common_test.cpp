// Unit tests for src/common: byte utilities, Result, RNG determinism.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"

namespace endbox {
namespace {

TEST(Bytes, HexRoundTrip) {
  Bytes data = {0x00, 0x01, 0xde, 0xad, 0xbe, 0xef, 0xff};
  EXPECT_EQ(to_hex(data), "0001deadbeefff");
  auto back = from_hex("0001deadbeefff");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

TEST(Bytes, HexUppercaseAccepted) {
  auto v = from_hex("DEADBEEF");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(to_hex(*v), "deadbeef");
}

TEST(Bytes, HexRejectsOddLength) {
  EXPECT_FALSE(from_hex("abc").has_value());
}

TEST(Bytes, HexRejectsNonHexChars) {
  EXPECT_FALSE(from_hex("zz").has_value());
  EXPECT_FALSE(from_hex("0g").has_value());
}

TEST(Bytes, StringRoundTrip) {
  Bytes b = to_bytes("hello");
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(to_string(b), "hello");
}

TEST(Bytes, CtEqual) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2, 3};
  Bytes c = {1, 2, 4};
  Bytes d = {1, 2};
  EXPECT_TRUE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, c));
  EXPECT_FALSE(ct_equal(a, d));
  EXPECT_TRUE(ct_equal({}, {}));
}

TEST(Bytes, BigEndianRoundTrip) {
  Bytes out;
  put_u16(out, 0x1234);
  put_u32(out, 0xdeadbeef);
  put_u64(out, 0x0123456789abcdefULL);
  ASSERT_EQ(out.size(), 14u);
  EXPECT_EQ(get_u16(out.data()), 0x1234);
  EXPECT_EQ(get_u32(out.data() + 2), 0xdeadbeefu);
  EXPECT_EQ(get_u64(out.data() + 6), 0x0123456789abcdefULL);
}

TEST(ByteReader, ReadsSequentially) {
  Bytes data;
  put_u16(data, 7);
  put_u32(data, 42);
  append(data, to_bytes("xyz"));
  ByteReader r(data);
  EXPECT_EQ(r.u16(), 7);
  EXPECT_EQ(r.u32(), 42u);
  EXPECT_EQ(to_string(r.rest()), "xyz");
  EXPECT_TRUE(r.empty());
}

TEST(ByteReader, ThrowsOnShortBuffer) {
  Bytes data = {1, 2};
  ByteReader r(data);
  EXPECT_THROW(r.u32(), std::out_of_range);
}

TEST(ByteReader, ViewDoesNotCopy) {
  Bytes data = {1, 2, 3, 4};
  ByteReader r(data);
  ByteView v = r.view(2);
  EXPECT_EQ(v.data(), data.data());
  EXPECT_EQ(r.remaining(), 2u);
}

TEST(Result, ValueAndError) {
  Result<int> good(42);
  EXPECT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);

  Result<int> bad(err("boom"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), "boom");
}

TEST(Result, StatusDefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  Status f = err("nope");
  EXPECT_FALSE(f.ok());
  EXPECT_EQ(f.error(), "nope");
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= a.next_u64() != b.next_u64();
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, Uniform01WithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ExponentialMeanRoughlyCorrect) {
  Rng rng(99);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / kN, 5.0, 0.2);
}

TEST(Rng, BytesLength) {
  Rng rng(3);
  EXPECT_EQ(rng.bytes(33).size(), 33u);
  EXPECT_TRUE(rng.bytes(0).empty());
}

TEST(Rng, ForkIsDeterministicAndLabelled) {
  Rng a(42);
  Rng b(42);
  // Same seed + same label => identical child stream.
  EXPECT_EQ(a.fork(3).next_u64(), b.fork(3).next_u64());
  // Different labels => decorrelated children, even adjacent ones.
  EXPECT_NE(a.fork(0).next_u64(), a.fork(1).next_u64());
  // Different parent seeds => different children under the same label.
  EXPECT_NE(Rng(1).fork(0).next_u64(), Rng(2).fork(0).next_u64());
}

TEST(Rng, ForkDoesNotAdvanceTheParent) {
  Rng with_fork(7);
  Rng without(7);
  (void)with_fork.fork(0);
  (void)with_fork.fork(1);
  // Forking is a pure function of (seed, label): the parent's own
  // stream is untouched, so experiment setup order cannot leak into
  // later random choices.
  EXPECT_EQ(with_fork.next_u64(), without.next_u64());
}

TEST(Rng, ForkedChildDiffersFromParentStream) {
  Rng parent(7);
  Rng child = parent.fork(0);
  EXPECT_NE(parent.next_u64(), child.next_u64());
}

}  // namespace
}  // namespace endbox
