// ShardedRouter tests: RSS dispatch invariants, the property that a
// sharded router is byte- and per-flow-order-identical to the
// single-shard router for random configs and bursts, reshard state
// migration (Counter totals, Queue contents, IDPS statistics across a
// 1 -> 4 -> 2 transition with no packet loss), worker-pool behaviour,
// and the enclave-level sharded batch ecalls. This suite (and
// enclave_test) also runs under ThreadSanitizer in CI — the worker
// threads here are real.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "click/sharded_router.hpp"
#include "click/standard_elements.hpp"
#include "elements/context.hpp"
#include "elements/device.hpp"
#include "elements/ids_matcher.hpp"
#include "elements/tls_decrypt.hpp"
#include "endbox_world.hpp"
#include "idps/snort_rules.hpp"
#include "net/packet.hpp"
#include "tls/session.hpp"

namespace endbox {
namespace {

using click::PacketBatch;
using click::ShardedRouter;

// One delivered packet, as observed at ToDevice.
struct Delivered {
  std::uint32_t tag = 0;
  bool accepted = false;
  Bytes wire;              ///< serialised bytes (header mutations visible)
  std::uint32_t flow_hint = 0;  ///< Paint annotation (not serialised)
  net::FlowKey flow;
};

// A sharded router with per-shard contexts and result sinks, the same
// shape the enclave wires up.
struct ShardHarness {
  struct Rig {
    elements::ElementContext context;
    click::ElementRegistry registry;
    std::vector<Delivered> results;
    Rig() : registry(elements::make_endbox_registry(context)) {}
  };

  tls::SessionKeyStore store;
  std::vector<idps::SnortRule> rules;
  std::vector<std::unique_ptr<Rig>> rigs;
  std::unique_ptr<ShardedRouter> router;

  explicit ShardHarness(const std::string& config, std::size_t shards) {
    Rng rules_rng(7);
    rules = idps::generate_community_ruleset(40, rules_rng);
    auto built = ShardedRouter::create(config, shards, factory());
    if (!built.ok()) throw std::runtime_error(built.error());
    router = std::move(*built);
  }

  ShardedRouter::RouterFactory factory() {
    return [this](std::size_t i, const std::string& cfg) {
      while (rigs.size() <= i) {
        auto rig = std::make_unique<Rig>();
        rig->context.key_store = &store;
        rig->context.rulesets["community"] = rules;
        rig->context.trusted_time = [] { return sim::Time{0}; };
        rig->context.untrusted_time = [] { return sim::Time{0}; };
        Rig* raw = rig.get();
        rig->context.to_device = [raw](net::Packet&& packet, bool accepted) {
          Delivered d;
          d.tag = packet.burst_tag;
          d.accepted = accepted;
          d.wire = packet.serialize();
          d.flow_hint = packet.flow_hint;
          d.flow = net::FlowKey::of(packet);
          raw->results.push_back(std::move(d));
        };
        rigs.push_back(std::move(rig));
      }
      return click::Router::from_config(cfg, rigs[i]->registry);
    };
  }

  /// Pushes a burst (stamping arrival tags) and returns everything the
  /// shards delivered, merged back into tag order.
  std::vector<Delivered> run_burst(PacketBatch&& batch) {
    std::uint32_t tag = 0;
    for (net::Packet& packet : batch) packet.burst_tag = tag++;
    for (auto& rig : rigs) rig->results.clear();
    if (!router->push_batch_to("from_device", std::move(batch)))
      throw std::runtime_error("push_batch_to failed");
    std::vector<Delivered> merged;
    for (auto& rig : rigs)
      for (Delivered& d : rig->results) merged.push_back(std::move(d));
    std::stable_sort(merged.begin(), merged.end(),
                     [](const Delivered& a, const Delivered& b) {
                       return a.tag < b.tag;
                     });
    for (auto& rig : rigs) rig->results.clear();
    return merged;
  }

  /// Sums a per-element counter across shards.
  template <typename T, typename Fn>
  std::uint64_t sum(const std::string& name, Fn&& fn) {
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < router->shard_count(); ++s) {
      auto* element = router->shard(s).find_as<T>(name);
      if (element) total += fn(*element);
    }
    return total;
  }
};

net::Packet random_packet(Rng& rng) {
  net::Packet packet = net::Packet::udp(
      net::Ipv4(10, 8, 0, static_cast<std::uint8_t>(1 + rng.uniform(1, 6))),
      net::Ipv4(10, 0, 0, 1), static_cast<std::uint16_t>(40000 + rng.uniform(0, 31)),
      static_cast<std::uint16_t>(rng.uniform(1, 12)), rng.bytes(rng.uniform(0, 200)));
  if (rng.uniform(0, 9) == 0) packet.ttl = 0;  // CheckIPHeader reject
  return packet;
}

// A random element chain drawn from the order-stable element pool, with
// every reject port wired so each packet reaches a verdict.
std::string random_config(Rng& rng) {
  struct Candidate {
    const char* decl;
    const char* name;
    bool has_reject;
  };
  const Candidate pool[] = {
      {"cnt :: Counter", "cnt", false},
      {"tos :: SetTos(0x20)", "tos", false},
      {"paint :: Paint(5)", "paint", false},
      {"check :: CheckIPHeader", "check", true},
      {"fw :: IPFilter(drop dst port %, allow all)", "fw", true},
      {"ids :: IDSMatcher(RULESET community)", "ids", true},
      {"cnt2 :: Counter", "cnt2", false},
  };
  std::string decls = "from_device :: FromDevice; to_device :: ToDevice;";
  std::string chain = "from_device";
  std::string rejects;
  for (const Candidate& c : pool) {
    if (rng.uniform(0, 1) == 0) continue;
    std::string decl = c.decl;
    if (auto pos = decl.find('%'); pos != std::string::npos)
      decl.replace(pos, 1, std::to_string(rng.uniform(1, 12)));
    decls += decl + ";";
    chain += std::string(" -> ") + c.name;
    if (c.has_reject) rejects += std::string(c.name) + "[1] -> [1]to_device;";
  }
  chain += " -> to_device;";
  return decls + chain + rejects;
}

PacketBatch random_burst(Rng& rng, std::size_t n) {
  PacketBatch batch;
  for (std::size_t i = 0; i < n; ++i) batch.push_back(random_packet(rng));
  return batch;
}

// ---- Dispatch invariants ---------------------------------------------------

TEST(ShardDispatch, StableAndInRange) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    net::Packet packet = random_packet(rng);
    auto key = net::FlowKey::of(packet);
    for (std::size_t shards : {1u, 2u, 4u, 7u}) {
      std::size_t shard = click::shard_of(key, shards);
      EXPECT_LT(shard, shards);
      EXPECT_EQ(shard, click::shard_of(key, shards)) << "dispatch not stable";
    }
  }
}

TEST(ShardDispatch, SpreadsFlowsAcrossShards) {
  // 32 source ports from the world's traffic shape must not all land
  // in one shard (the splitmix64 finaliser spreads adjacent ports).
  std::map<std::size_t, int> histogram;
  for (std::uint16_t port = 0; port < 32; ++port) {
    net::FlowKey key{net::Ipv4(10, 8, 0, 2), net::Ipv4(10, 0, 0, 1),
                     static_cast<std::uint16_t>(40000 + port), 5001,
                     net::IpProto::Udp};
    ++histogram[click::shard_of(key, 4)];
  }
  EXPECT_EQ(histogram.size(), 4u);
  for (const auto& [shard, count] : histogram) EXPECT_GE(count, 2) << shard;
}

// ---- Equivalence property --------------------------------------------------

TEST(ShardedEquivalence, RandomConfigsAndBurstsMatchSingleShard) {
  Rng rng(0xeb0c);
  for (int round = 0; round < 12; ++round) {
    std::string config = random_config(rng);
    ShardHarness single(config, 1);
    ShardHarness sharded(config, 1 + static_cast<std::size_t>(rng.uniform(1, 4)));

    std::uint64_t seed = rng.uniform(1, 1u << 30);
    Rng traffic_a(seed), traffic_b(seed);
    for (int burst = 0; burst < 6; ++burst) {
      std::size_t n = static_cast<std::size_t>(traffic_a.uniform(1, 64));
      auto single_out = single.run_burst(random_burst(traffic_a, n));
      auto sharded_out =
          sharded.run_burst(random_burst(traffic_b, traffic_b.uniform(1, 64)));
      ASSERT_EQ(single_out.size(), sharded_out.size())
          << "round " << round << " config: " << config;

      // Byte identity as a multiset: same packets, same verdicts, same
      // header mutations and annotations.
      auto key = [](const Delivered& d) {
        return std::make_tuple(d.wire, d.accepted, d.flow_hint);
      };
      std::vector<std::tuple<Bytes, bool, std::uint32_t>> a, b;
      for (const auto& d : single_out) a.push_back(key(d));
      for (const auto& d : sharded_out) b.push_back(key(d));
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      ASSERT_EQ(a, b) << "round " << round << " config: " << config;

      // Per-flow order identity: each flow's delivery sequence matches
      // exactly (flows never cross shards, so sharding cannot reorder
      // within a flow).
      auto by_flow = [](const std::vector<Delivered>& all) {
        std::map<std::size_t, std::vector<std::pair<Bytes, bool>>> flows;
        std::hash<net::FlowKey> h;
        for (const auto& d : all)
          flows[h(d.flow)].emplace_back(d.wire, d.accepted);
        return flows;
      };
      ASSERT_EQ(by_flow(single_out), by_flow(sharded_out))
          << "round " << round << " config: " << config;
    }

    // Aggregate element state matches the single-shard totals.
    EXPECT_EQ(single.sum<click::Counter>(
                  "cnt", [](const click::Counter& c) { return c.packets(); }),
              sharded.sum<click::Counter>(
                  "cnt", [](const click::Counter& c) { return c.packets(); }));
    EXPECT_EQ(single.sum<elements::IDSMatcher>(
                  "ids",
                  [](const elements::IDSMatcher& m) { return m.bytes_scanned(); }),
              sharded.sum<elements::IDSMatcher>(
                  "ids",
                  [](const elements::IDSMatcher& m) { return m.bytes_scanned(); }));
  }
}

TEST(ShardedEquivalence, PerPacketPushMatchesSingleShardToo) {
  const std::string config =
      "from_device :: FromDevice; cnt :: Counter;"
      "check :: CheckIPHeader; to_device :: ToDevice;"
      "from_device -> cnt -> check -> to_device;"
      "check[1] -> [1]to_device;";
  ShardHarness single(config, 1);
  ShardHarness sharded(config, 4);
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    net::Packet packet = random_packet(rng);
    net::Packet copy = packet;
    ASSERT_TRUE(single.router->push_to("from_device", std::move(packet)));
    ASSERT_TRUE(sharded.router->push_to("from_device", std::move(copy)));
  }
  EXPECT_EQ(single.sum<click::Counter>(
                "cnt", [](const click::Counter& c) { return c.packets(); }),
            100u);
  EXPECT_EQ(sharded.sum<click::Counter>(
                "cnt", [](const click::Counter& c) { return c.packets(); }),
            100u);
}

TEST(ShardedEquivalence, ConcurrentTlsDecryptKeyLookupsAreSafe) {
  // All shards share the enclave's one SessionKeyStore; TLSDecrypt
  // consults it per TLS record on the worker threads, so its lookup
  // statistics must be race-free (this test runs under TSan in CI).
  const std::string config =
      "from_device :: FromDevice; tlsd :: TLSDecrypt;"
      "to_device :: ToDevice; from_device -> tlsd -> to_device;";
  ShardHarness harness(config, 4);
  tls::TlsRecord record;  // application data, no key forwarded -> miss path
  record.ciphertext = to_bytes("opaque-application-bytes");
  record.mac = Bytes(16, 0xab);
  Bytes payload = record.serialize();

  constexpr std::uint64_t kRounds = 50;
  for (std::uint64_t round = 0; round < kRounds; ++round) {
    PacketBatch batch;
    for (std::uint16_t k = 0; k < 64; ++k) {
      net::Packet packet =
          net::Packet::udp(net::Ipv4(10, 8, 0, 2), net::Ipv4(10, 0, 0, 1),
                           static_cast<std::uint16_t>(40000 + k % 32), 443,
                           payload);
      packet.flow_hint = 1 + k % 7;  // TLS session id annotation
      batch.push_back(std::move(packet));
    }
    harness.run_burst(std::move(batch));
  }
  EXPECT_EQ(harness.store.lookups(), kRounds * 64);
  EXPECT_EQ(harness.store.misses(), kRounds * 64);
  EXPECT_EQ(harness.sum<elements::TLSDecrypt>(
                "tlsd",
                [](const elements::TLSDecrypt& t) { return t.key_misses(); }),
            kRounds * 64);
}

// ---- Reshard state migration ----------------------------------------------

TEST(Reshard, CounterQueueIdpsStateSurvives1To4To2WithNoLoss) {
  const std::string config =
      "from_device :: FromDevice; cnt :: Counter;"
      "ids :: IDSMatcher(RULESET community); q :: Queue(500);"
      "to_device :: ToDevice;"
      "from_device -> cnt -> ids -> q; ids[1] -> [1]to_device;";
  ShardHarness harness(config, 1);
  Rng rng(23);

  auto offered_bytes = [&] {
    return harness.sum<click::Counter>(
        "cnt", [](const click::Counter& c) { return c.bytes(); });
  };
  auto counted = [&] {
    return harness.sum<click::Counter>(
        "cnt", [](const click::Counter& c) { return c.packets(); });
  };
  auto queued = [&] {
    return harness.sum<click::Queue>(
        "q", [](const click::Queue& q) { return q.size(); });
  };
  auto scanned = [&] {
    return harness.sum<elements::IDSMatcher>(
        "ids", [](const elements::IDSMatcher& m) { return m.bytes_scanned(); });
  };

  for (int i = 0; i < 3; ++i) harness.run_burst(random_burst(rng, 50));
  std::uint64_t counted_1 = counted();
  std::uint64_t bytes_1 = offered_bytes();
  std::uint64_t queued_1 = queued();
  std::uint64_t scanned_1 = scanned();
  ASSERT_EQ(counted_1, 150u);
  ASSERT_GT(queued_1, 0u);

  // 1 -> 4: totals preserved, queued packets land in their flow's shard.
  ASSERT_TRUE(harness.router->reshard(4).ok());
  EXPECT_EQ(harness.router->shard_count(), 4u);
  EXPECT_EQ(counted(), counted_1);
  EXPECT_EQ(offered_bytes(), bytes_1);
  EXPECT_EQ(queued(), queued_1);
  EXPECT_EQ(scanned(), scanned_1);
  for (std::size_t s = 0; s < 4; ++s) {
    auto* q = harness.router->shard(s).find_as<click::Queue>("q");
    ASSERT_NE(q, nullptr);
    std::vector<net::Packet> drained;
    while (auto packet = q->pop()) drained.push_back(std::move(*packet));
    for (net::Packet& packet : drained) {
      EXPECT_EQ(click::shard_of(net::FlowKey::of(packet), 4), s)
          << "queued packet migrated to the wrong shard";
      q->push(0, std::move(packet));  // keep for the next transition
    }
  }

  // Traffic keeps flowing after the transition.
  for (int i = 0; i < 2; ++i) harness.run_burst(random_burst(rng, 50));
  std::uint64_t counted_4 = counted();
  EXPECT_EQ(counted_4, counted_1 + 100);

  // 4 -> 2: still lossless.
  std::uint64_t queued_4 = queued();
  std::uint64_t scanned_4 = scanned();
  ASSERT_TRUE(harness.router->reshard(2).ok());
  EXPECT_EQ(harness.router->shard_count(), 2u);
  EXPECT_EQ(counted(), counted_4);
  EXPECT_EQ(queued(), queued_4);
  EXPECT_EQ(scanned(), scanned_4);
  EXPECT_EQ(harness.router->reshard_count(), 2u);

  for (int i = 0; i < 2; ++i) harness.run_burst(random_burst(rng, 50));
  EXPECT_EQ(counted(), counted_4 + 100);
}

TEST(Reshard, ShrinkReusesTheWorkerPool) {
  // Satellite regression: reshard used to tear down and respawn the
  // worker threads on every transition. Shrinking must keep the pool
  // (surplus workers park — the hand-off protocol documented in
  // sharded_router.hpp); only growing past its size rebuilds it.
  const std::string config =
      "from_device :: FromDevice; cnt :: Counter; to_device :: ToDevice;"
      "from_device -> cnt -> to_device;";
  ShardHarness harness(config, 4);
  Rng rng(91);
  EXPECT_EQ(harness.router->worker_threads(), 4u);

  ASSERT_TRUE(harness.router->reshard(2).ok());
  EXPECT_EQ(harness.router->worker_threads(), 4u) << "shrink rebuilt the pool";
  harness.run_burst(random_burst(rng, 40));

  ASSERT_TRUE(harness.router->reshard(3).ok());
  EXPECT_EQ(harness.router->worker_threads(), 4u) << "regrow within the pool";
  harness.run_burst(random_burst(rng, 40));

  ASSERT_TRUE(harness.router->reshard(6).ok());
  EXPECT_EQ(harness.router->worker_threads(), 6u);
  harness.run_burst(random_burst(rng, 40));

  ASSERT_TRUE(harness.router->reshard(1).ok());
  EXPECT_EQ(harness.router->worker_threads(), 0u) << "single shard runs inline";
  harness.run_burst(random_burst(rng, 40));

  std::uint64_t total = harness.sum<click::Counter>(
      "cnt", [](const click::Counter& c) { return c.packets(); });
  EXPECT_EQ(total, 160u);
}

TEST(Reshard, HotSwapTransfersStatePerShard) {
  const std::string config_a =
      "from_device :: FromDevice; cnt :: Counter; to_device :: ToDevice;"
      "from_device -> cnt -> to_device;";
  const std::string config_b =
      "from_device :: FromDevice; cnt :: Counter; tos :: SetTos(9);"
      "to_device :: ToDevice; from_device -> cnt -> tos -> to_device;";
  ShardHarness harness(config_a, 3);
  Rng rng(29);
  harness.run_burst(random_burst(rng, 60));
  std::uint64_t before = harness.sum<click::Counter>(
      "cnt", [](const click::Counter& c) { return c.packets(); });
  ASSERT_TRUE(harness.router->hot_swap(config_b).ok());
  EXPECT_EQ(harness.sum<click::Counter>(
                "cnt", [](const click::Counter& c) { return c.packets(); }),
            before);
  // The swapped-in graph processes traffic with the new element.
  auto delivered = harness.run_burst(random_burst(rng, 10));
  for (const auto& d : delivered)
    if (d.accepted) {
      auto parsed = net::Packet::parse(d.wire);
      ASSERT_TRUE(parsed.ok());
      EXPECT_EQ(parsed->tos, 9);
    }
}

TEST(Reshard, RejectsZeroShards) {
  ShardHarness harness(
      "from_device :: FromDevice; to_device :: ToDevice;"
      "from_device -> to_device;",
      2);
  EXPECT_FALSE(harness.router->reshard(0).ok());
  EXPECT_EQ(harness.router->shard_count(), 2u);
}

// ---- Worker pool ----------------------------------------------------------

TEST(ShardWorkerPool, RunsEveryJobExactlyOnceAcrossManyRounds) {
  click::ShardWorkerPool pool(4);
  std::vector<std::uint64_t> counts(8, 0);
  for (int round = 0; round < 500; ++round) {
    pool.run(counts.size(), [&](std::size_t i) { ++counts[i]; });
  }
  for (std::uint64_t c : counts) EXPECT_EQ(c, 500u);
}

TEST(ShardWorkerPool, SingleJobRunsInline) {
  click::ShardWorkerPool pool(2);
  int runs = 0;
  pool.run(1, [&](std::size_t) { ++runs; });
  EXPECT_EQ(runs, 1);
}

// ---- Enclave integration ---------------------------------------------------

struct ShardedWorldFixture : ::testing::Test {
  static testing::WorldOptions options(std::size_t shards) {
    testing::WorldOptions opts;
    opts.clients = 1;
    opts.use_case = UseCase::Idps;
    opts.client_options.shards = shards;
    return opts;
  }
};

TEST_F(ShardedWorldFixture, ShardedEnclaveDeliversIdenticalTraffic) {
  testing::World single(options(1));
  testing::World sharded(options(4));
  auto report_1 = single.run_uniform_traffic_batched(192, 32, 600, /*flows=*/8);
  auto report_4 = sharded.run_uniform_traffic_batched(192, 32, 600, /*flows=*/8);
  EXPECT_EQ(report_1.offered, report_4.offered);
  EXPECT_EQ(report_1.delivered, report_4.delivered);
  EXPECT_EQ(report_4.delivered, report_4.offered);
  EXPECT_EQ(sharded.rigs[0]->client.enclave().shard_count(), 4u);
}

TEST_F(ShardedWorldFixture, EnclaveReshardMigratesLiveState) {
  // Custom chain with a Counter so migrated totals are observable.
  testing::WorldOptions opts;
  testing::World world(opts);
  auto bundle = world.server.publish_config(
      2,
      "from_device :: FromDevice; cnt :: Counter;"
      "ids :: IDSMatcher(RULESET community); to_device :: ToDevice;"
      "from_device -> cnt -> ids -> to_device; ids[1] -> [1]to_device;",
      true, 0, 0);
  ASSERT_TRUE(bundle.ok()) << bundle.error();
  world.add_client(*bundle);
  auto& enclave = world.rigs[0]->client.enclave();
  auto report = world.run_uniform_traffic_batched(96, 32, 600, /*flows=*/8);
  ASSERT_EQ(report.delivered, report.offered);

  auto counter_sum = [&]() -> std::uint64_t {
    const auto* sharded = enclave.sharded_router();
    if (!sharded) {
      auto* counter =
          const_cast<click::Router*>(enclave.router())->find_as<click::Counter>("cnt");
      return counter ? counter->packets() : 0;
    }
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < sharded->shard_count(); ++s) {
      auto* counter = const_cast<click::Router&>(sharded->shard(s))
                          .find_as<click::Counter>("cnt");
      if (counter) total += counter->packets();
    }
    return total;
  };
  std::uint64_t before = counter_sum();
  ASSERT_EQ(before, report.offered);

  ASSERT_TRUE(enclave.ecall_reshard(4).ok());
  EXPECT_EQ(enclave.shard_count(), 4u);
  EXPECT_EQ(counter_sum(), before) << "reshard lost Counter state";

  auto report_2 = world.run_uniform_traffic_batched(96, 32, 600, /*flows=*/8);
  EXPECT_EQ(report_2.delivered, report_2.offered);
  EXPECT_EQ(counter_sum(), before + report_2.offered);

  ASSERT_TRUE(enclave.ecall_reshard(2).ok());
  EXPECT_EQ(enclave.shard_count(), 2u);
  EXPECT_EQ(counter_sum(), before + report_2.offered);
}

TEST_F(ShardedWorldFixture, ShardedRejectionsDoNotStarveTheMainPool) {
  // Rejected packets recycle into the shard-local pools on the worker
  // threads; those buffers must flow back into the main pool between
  // bursts, or a workload with a nonzero drop rate slowly drains the
  // ecall-boundary circulation and every acquire becomes a heap miss.
  testing::WorldOptions opts;
  testing::World world(opts);
  auto bundle = world.server.publish_config(
      2,
      "from_device :: FromDevice;"
      "fw :: IPFilter(allow src 10.8.0.0/16, drop all);"
      "to_device :: ToDevice; from_device -> fw -> to_device;"
      "fw[1] -> [1]to_device;",
      true, 0, 0);
  ASSERT_TRUE(bundle.ok()) << bundle.error();
  EndBoxClientOptions sharded_opts;
  sharded_opts.shards = 4;
  auto& client = world.add_client(*bundle, sharded_opts);
  auto& enclave = client.enclave();
  net::PacketPool& pool = enclave.packet_pool();

  click::PacketBatch batch;
  EgressBatch out;
  auto run_burst = [&] {
    for (std::size_t k = 0; k < 32; ++k) {
      net::Packet packet = pool.acquire();
      // Every third flow comes from outside 10.8/16 -> firewall reject.
      packet.src = k % 3 == 0 ? net::Ipv4(203, 0, 113, 7) : net::Ipv4(10, 8, 0, 2);
      packet.dst = net::Ipv4(10, 0, 0, 1);
      packet.proto = net::IpProto::Udp;
      packet.src_port = static_cast<std::uint16_t>(40000 + k % 16);
      packet.dst_port = 5001;
      packet.payload.assign(400, 'x');
      batch.push_back(std::move(packet));
    }
    ASSERT_TRUE(enclave.ecall_process_egress_batch(std::move(batch), out).ok());
    batch.clear();
    ASSERT_GT(out.rejected, 0u);
    ASSERT_GT(out.accepted, 0u);
  };

  for (int warm = 0; warm < 6; ++warm) run_burst();
  std::uint64_t misses_before = pool.misses();
  for (int iter = 0; iter < 40; ++iter) run_burst();
  EXPECT_EQ(pool.misses(), misses_before)
      << "rejected packets' buffers did not return to the main pool";
}

TEST_F(ShardedWorldFixture, ShardedEgressBatchMatchesPerPacketVerdicts) {
  // The firewall use case rejects a deterministic subset; sharded batch
  // verdict counts must match the per-packet ecall path exactly.
  testing::WorldOptions opts;
  opts.clients = 0;
  opts.use_case = UseCase::Fw;
  testing::World world(opts);
  auto bundle = world.publish(UseCase::Fw);
  EndBoxClientOptions sharded_opts;
  sharded_opts.shards = 3;
  auto& client = world.add_client(bundle, sharded_opts);
  auto& enclave = client.enclave();

  Rng rng(31);
  auto make_packet = [&](std::size_t k) {
    net::Packet packet = world.benign_packet(64 + 8 * (k % 5));
    packet.src_port = static_cast<std::uint16_t>(40000 + k % 16);
    return packet;
  };
  std::uint32_t single_accepted = 0;
  for (std::size_t k = 0; k < 40; ++k) {
    auto egress = enclave.ecall_process_egress(make_packet(k));
    ASSERT_TRUE(egress.ok()) << egress.error();
    single_accepted += egress->accepted;
  }
  click::PacketBatch batch;
  EgressBatch out;
  std::uint32_t batch_accepted = 0;
  for (std::size_t k = 0; k < 40; ++k) {
    batch.push_back(make_packet(k));
    if (batch.full() || k == 39) {
      ASSERT_TRUE(enclave.ecall_process_egress_batch(std::move(batch), out).ok());
      batch.clear();
      batch_accepted += out.accepted;
    }
  }
  EXPECT_EQ(batch_accepted, single_accepted);
}

}  // namespace
}  // namespace endbox
