// Tests for the EndBox custom Click elements: device glue, IDSMatcher,
// splitters, TLSDecrypt — including their use via config files.
#include <gtest/gtest.h>

#include <algorithm>

#include "click/router.hpp"
#include "click/standard_elements.hpp"
#include "elements/context.hpp"
#include "elements/device.hpp"
#include "elements/ids_matcher.hpp"
#include "elements/splitters.hpp"
#include "elements/tls_decrypt.hpp"

namespace endbox::elements {
namespace {

using net::Ipv4;
using net::Packet;

struct Fixture : ::testing::Test {
  Rng rng{11};
  sim::Time fake_trusted_time = 0;
  sim::Time fake_untrusted_time = 0;
  tls::SessionKeyStore key_store;
  ElementContext context;
  std::vector<std::pair<Packet, bool>> delivered;

  Fixture() {
    context.key_store = &key_store;
    context.trusted_time = [this] { return fake_trusted_time; };
    context.untrusted_time = [this] { return fake_untrusted_time; };
    context.to_device = [this](Packet&& p, bool accepted) {
      delivered.emplace_back(std::move(p), accepted);
    };
    context.rulesets["community"] = idps::generate_community_ruleset(377, rng);
    context.rulesets["strict"] = *idps::parse_snort_ruleset(
        "drop ip any any -> any any (content:\"malware\"; sid:1;)\n"
        "alert ip any any -> any any (content:\"suspicious\"; sid:2;)\n");
  }

  Packet benign(std::size_t size = 100) {
    return Packet::udp(Ipv4(10, 8, 0, 2), Ipv4(10, 0, 0, 1), 5555, 80,
                       Bytes(size, 'x'));
  }
};

// ---- Device glue ---------------------------------------------------------

TEST_F(Fixture, FromDeviceToDevicePipeline) {
  auto registry = make_endbox_registry(context);
  auto router = click::Router::from_config(
      "from :: FromDevice; to :: ToDevice; from -> to;", registry);
  ASSERT_TRUE(router.ok()) << router.error();
  (*router)->push_to("from", benign());
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_TRUE(delivered[0].second);  // accepted
  auto* to = (*router)->find_as<ToDevice>("to");
  EXPECT_EQ(to->accepted(), 1u);
  EXPECT_EQ(to->rejected(), 0u);
}

TEST_F(Fixture, ToDeviceSignalsRejection) {
  auto registry = make_endbox_registry(context);
  auto router = click::Router::from_config(
      "from :: FromDevice; fw :: IPFilter(drop all); to :: ToDevice;"
      "from -> fw -> to; fw[1] -> [1]to;", registry);
  ASSERT_TRUE(router.ok()) << router.error();
  (*router)->push_to("from", benign());
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_FALSE(delivered[0].second);  // rejected
  EXPECT_EQ((*router)->find_as<ToDevice>("to")->rejected(), 1u);
}

// ---- IDSMatcher -----------------------------------------------------------

TEST_F(Fixture, IdsMatcherPassesBenignTraffic) {
  IDSMatcher matcher(context);
  ASSERT_TRUE(matcher.configure({"RULESET community"}).ok());
  click::Counter pass;
  matcher.connect_output(0, &pass, 0);
  for (int i = 0; i < 10; ++i) matcher.push(0, benign(1400));
  EXPECT_EQ(pass.packets(), 10u);
  EXPECT_EQ(matcher.matches(), 0u);
  EXPECT_EQ(matcher.bytes_scanned(), 14000u);
}

TEST_F(Fixture, IdsMatcherDropRule) {
  IDSMatcher matcher(context);
  ASSERT_TRUE(matcher.configure({"RULESET strict"}).ok());
  click::Counter pass, drop;
  matcher.connect_output(0, &pass, 0);
  matcher.connect_output(1, &drop, 0);

  Packet evil = benign();
  evil.payload = to_bytes("xx malware yy");
  matcher.push(0, std::move(evil));
  Packet sus = benign();
  sus.payload = to_bytes("suspicious but allowed");
  matcher.push(0, std::move(sus));
  matcher.push(0, benign());

  EXPECT_EQ(drop.packets(), 1u);   // drop rule fired
  EXPECT_EQ(pass.packets(), 2u);   // alert-only + clean
  EXPECT_EQ(matcher.matches(), 2u);
}

TEST_F(Fixture, IdsMatcherDropModeDropsOnAlert) {
  IDSMatcher matcher(context);
  ASSERT_TRUE(matcher.configure({"RULESET strict", "DROP"}).ok());
  click::Counter pass, drop;
  matcher.connect_output(0, &pass, 0);
  matcher.connect_output(1, &drop, 0);
  Packet sus = benign();
  sus.payload = to_bytes("suspicious content");
  matcher.push(0, std::move(sus));
  EXPECT_EQ(drop.packets(), 1u);  // alert rule escalated to drop
}

TEST_F(Fixture, IdsMatcherConfigErrors) {
  IDSMatcher matcher(context);
  EXPECT_FALSE(matcher.configure({}).ok());
  EXPECT_FALSE(matcher.configure({"RULESET nonexistent"}).ok());
  EXPECT_FALSE(matcher.configure({"BOGUS x"}).ok());
}

TEST_F(Fixture, IdsMatcherScansDecryptedPayload) {
  IDSMatcher matcher(context);
  ASSERT_TRUE(matcher.configure({"RULESET strict"}).ok());
  click::Counter pass, drop;
  matcher.connect_output(0, &pass, 0);
  matcher.connect_output(1, &drop, 0);
  Packet p = benign();
  p.payload = to_bytes("ciphertext-gibberish");        // wire bytes
  p.decrypted_payload = to_bytes("hidden malware !");  // what TLSDecrypt saw
  matcher.push(0, std::move(p));
  EXPECT_EQ(drop.packets(), 1u);
}

// ---- Splitters -------------------------------------------------------------

TEST_F(Fixture, TrustedSplitterShapesToRate) {
  TrustedSplitter splitter(context);
  // 1 Mbps, tiny burst, sample every packet for deterministic behaviour.
  ASSERT_TRUE(splitter.configure({"RATE 1000000", "SAMPLE 1", "BURST 16000"}).ok());
  click::Counter ok_out, over;
  splitter.connect_output(0, &ok_out, 0);
  splitter.connect_output(1, &over, 0);

  // At t=0, burst allows 16 kbit = ~15 packets of 128 bytes (+28 hdr).
  for (int i = 0; i < 50; ++i) splitter.push(0, benign(128));
  EXPECT_GT(over.packets(), 0u);
  std::uint64_t over_before = over.packets();

  // Advance trusted time by 1 s: tokens refill (capped at the 16 kbit
  // burst), so the next ~10 small packets conform again.
  fake_trusted_time += sim::kSecond;
  for (int i = 0; i < 10; ++i) splitter.push(0, benign(128));
  EXPECT_EQ(over.packets(), over_before);  // all 10 conforming
}

TEST_F(Fixture, TrustedSplitterSamplesTime) {
  TrustedSplitter splitter(context);
  ASSERT_TRUE(splitter.configure({"RATE 1e9", "SAMPLE 10"}).ok());
  for (int i = 0; i < 100; ++i) splitter.push(0, benign());
  // One initial read + one per 10 packets thereafter.
  EXPECT_LE(splitter.time_calls(), 11u);
  EXPECT_EQ(context.trusted_time_calls, splitter.time_calls());
}

TEST_F(Fixture, UntrustedSplitterReadsTimePerPacket) {
  UntrustedSplitter splitter(context);
  ASSERT_TRUE(splitter.configure({"RATE 1e9"}).ok());
  for (int i = 0; i < 25; ++i) splitter.push(0, benign());
  EXPECT_EQ(context.untrusted_time_calls, 25u);
}

TEST_F(Fixture, SplitterConfigErrors) {
  TrustedSplitter splitter(context);
  EXPECT_FALSE(splitter.configure({}).ok());                  // RATE required
  EXPECT_FALSE(splitter.configure({"RATE -5"}).ok());
  EXPECT_FALSE(splitter.configure({"RATE abc"}).ok());
  EXPECT_FALSE(splitter.configure({"RATE 1e6", "SAMPLE 0"}).ok());
  EXPECT_FALSE(splitter.configure({"RATE 1e6", "WHAT 3"}).ok());
}

TEST_F(Fixture, SplitterStateSurvivesHotSwap) {
  auto registry = make_endbox_registry(context);
  click::RouterManager manager(registry);
  ASSERT_TRUE(manager.install(
      "s :: TrustedSplitter(RATE 1e6, SAMPLE 1, BURST 16000); d :: Discard; "
      "over :: Discard; s -> d; s[1] -> over;").ok());
  auto* s = manager.current()->find_as<TrustedSplitter>("s");
  for (int i = 0; i < 50; ++i) s->push(0, benign(128));
  auto over_before = s->over_rate();
  ASSERT_GT(over_before, 0u);
  // Hot-swap to the same config: bucket state carries over, so the
  // limiter keeps rejecting (no fresh burst allowance).
  ASSERT_TRUE(manager.hot_swap(
      "s :: TrustedSplitter(RATE 1e6, SAMPLE 1, BURST 16000); d :: Discard; "
      "over :: Discard; s -> d; s[1] -> over;").ok());
  auto* s2 = manager.current()->find_as<TrustedSplitter>("s");
  EXPECT_EQ(s2->over_rate(), over_before);
  s2->push(0, benign(128));
  EXPECT_EQ(s2->over_rate(), over_before + 1);  // still over rate
}

// ---- TLSDecrypt -------------------------------------------------------------

struct TlsFixture : Fixture {
  tls::TlsClient tls_client{rng};
  tls::TlsServer tls_server{rng};

  void handshake_with_export() {
    tls_client.set_key_export_hook(
        [this](const tls::SessionKeys& k) { key_store.put(k); });
    auto ch = tls_client.start_handshake();
    auto sh = tls_server.accept(ch, to_bytes("pm"));
    ASSERT_TRUE(sh.ok());
    ASSERT_TRUE(tls_client.finish_handshake(*sh, to_bytes("pm")).ok());
  }

  Packet tls_packet(const std::string& plaintext) {
    auto record = tls_client.send(to_bytes(plaintext));
    Packet p = Packet::tcp(Ipv4(10, 8, 0, 2), Ipv4(93, 184, 216, 34), 40000, 443,
                           0, 0, 0x18, record.serialize());
    p.flow_hint = static_cast<std::uint32_t>(tls_client.keys().session_id);
    return p;
  }
};

TEST_F(TlsFixture, DecryptsWithForwardedKeys) {
  handshake_with_export();
  TLSDecrypt decrypt(context);
  ASSERT_TRUE(decrypt.configure({}).ok());
  click::Counter sink;
  decrypt.connect_output(0, &sink, 0);

  Packet p = tls_packet("GET /secret HTTP/1.1");
  Bytes wire_before = p.payload;
  decrypt.push(0, std::move(p));

  EXPECT_EQ(decrypt.decrypted(), 1u);
  EXPECT_EQ(sink.packets(), 1u);
}

TEST_F(TlsFixture, LeavesWirePayloadIntact) {
  handshake_with_export();
  TLSDecrypt decrypt(context);
  ASSERT_TRUE(decrypt.configure({}).ok());
  struct Capture : click::Element {
    std::string_view class_name() const override { return "Capture"; }
    void push(int, Packet&& p) override { got = std::move(p); }
    Packet got;
  } capture;
  decrypt.connect_output(0, &capture, 0);

  Packet p = tls_packet("end-to-end secret");
  Bytes wire_before = p.payload;
  decrypt.push(0, std::move(p));
  EXPECT_EQ(capture.got.payload, wire_before);  // ciphertext untouched
  EXPECT_EQ(to_string(capture.got.decrypted_payload), "end-to-end secret");
}

TEST_F(TlsFixture, WithoutKeysCountsMiss) {
  // No key export: vanilla client. Decryption impossible.
  auto ch = tls_client.start_handshake();
  auto sh = tls_server.accept(ch, to_bytes("pm"));
  ASSERT_TRUE(sh.ok());
  ASSERT_TRUE(tls_client.finish_handshake(*sh, to_bytes("pm")).ok());

  TLSDecrypt decrypt(context);
  ASSERT_TRUE(decrypt.configure({}).ok());
  click::Counter sink;
  decrypt.connect_output(0, &sink, 0);
  decrypt.push(0, tls_packet("opaque"));
  EXPECT_EQ(decrypt.decrypted(), 0u);
  EXPECT_EQ(decrypt.key_misses(), 1u);
  EXPECT_EQ(sink.packets(), 1u);  // still forwarded
}

TEST_F(TlsFixture, NonTlsTrafficPassesThrough) {
  TLSDecrypt decrypt(context);
  ASSERT_TRUE(decrypt.configure({}).ok());
  click::Counter sink;
  decrypt.connect_output(0, &sink, 0);
  decrypt.push(0, benign());
  EXPECT_EQ(decrypt.passthrough(), 1u);
  EXPECT_EQ(sink.packets(), 1u);
}

TEST_F(TlsFixture, EncryptedIdpsPipeline) {
  // The full section III-D pipeline: TLSDecrypt -> IDSMatcher finds
  // malware hidden inside a TLS record.
  handshake_with_export();
  auto registry = make_endbox_registry(context);
  auto router = click::Router::from_config(
      "from :: FromDevice; dec :: TLSDecrypt; ids :: IDSMatcher(RULESET strict);"
      "to :: ToDevice; from -> dec -> ids -> to; ids[1] -> [1]to;", registry);
  ASSERT_TRUE(router.ok()) << router.error();

  (*router)->push_to("from", tls_packet("totally innocent malware payload"));
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_FALSE(delivered[0].second);  // dropped despite encryption

  (*router)->push_to("from", tls_packet("regular page content"));
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_TRUE(delivered[1].second);
}

// ---- Batch semantics: push_batch must be byte- and order-identical -------
//
// Property: pushing a packet stream per-packet through one element
// instance and the same stream as mixed-size bursts through a second
// instance yields identical per-port output sequences (wire bytes and
// metadata annotations) and identical element statistics.

namespace batch_property {

struct Capture {
  int port;
  Bytes wire;
  bool dropped;
  std::uint32_t flow_hint;
  Bytes decrypted;

  bool operator==(const Capture&) const = default;
};

/// Terminal sink recording packets per input port. Inherits the default
/// push_batch (which unrolls to push), so per-port arrival order is
/// captured faithfully for both paths.
class CaptureSink : public click::Element {
 public:
  std::string_view class_name() const override { return "CaptureSink"; }
  int n_inputs() const override { return 256; }
  void push(int port, Packet&& p) override {
    rows.push_back(Capture{port, p.serialize(), p.dropped, p.flow_hint,
                           p.decrypted_payload});
  }
  std::vector<Capture> on_port(int port) const {
    std::vector<Capture> out;
    for (const Capture& row : rows)
      if (row.port == port) out.push_back(row);
    return out;
  }
  std::vector<Capture> rows;
};

/// Deterministic mixed traffic exercising every path: benign packets of
/// varied sizes/flows, implausible headers, and IDS-matching payloads.
std::vector<Packet> mixed_traffic(std::size_t count) {
  std::vector<Packet> packets;
  Rng rng(0xba7c4);
  for (std::size_t k = 0; k < count; ++k) {
    std::size_t size = 40 + (k * 97) % 1200;
    Packet p = Packet::udp(Ipv4(10, 8, 0, static_cast<std::uint8_t>(2 + k % 5)),
                           Ipv4(10, 0, 0, 1),
                           static_cast<std::uint16_t>(40000 + k % 7),
                           static_cast<std::uint16_t>(k % 3 ? 80 : 5001),
                           rng.bytes(size));
    if (k % 11 == 3) p.ttl = 0;                      // CheckIPHeader reject
    if (k % 13 == 5) p.src = Ipv4();                 // zero address
    if (k % 7 == 2) {
      Bytes evil = to_bytes("malware");
      std::copy(evil.begin(), evil.end(), p.payload.begin() + 8);
    }
    packets.push_back(std::move(p));
  }
  return packets;
}

/// Feeds `packets` per-packet into `single` and as mixed-size bursts
/// into `batched`; expects identical per-port capture sequences.
void expect_equivalent(click::Element& single, click::Element& batched,
                       const std::vector<Packet>& packets) {
  CaptureSink a, b;
  for (int port = 0; port < single.n_outputs(); ++port) {
    single.connect_output(port, &a, port);
    batched.connect_output(port, &b, port);
  }
  for (const Packet& p : packets) {
    Packet copy = p;
    single.push(0, std::move(copy));
  }
  // Burst sizes cycle through 1, 5, and a full kMaxBurst so partial and
  // full batches (and their boundaries) are all exercised.
  static constexpr std::size_t kSizes[] = {1, 5, click::PacketBatch::kMaxBurst};
  std::size_t i = 0, cycle = 0;
  while (i < packets.size()) {
    click::PacketBatch batch;
    std::size_t n = std::min(kSizes[cycle++ % 3], packets.size() - i);
    for (std::size_t k = 0; k < n; ++k) {
      Packet copy = packets[i++];
      batch.push_back(std::move(copy));
    }
    batched.push_batch(0, std::move(batch));
  }
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (int port = 0; port < single.n_outputs(); ++port) {
    auto rows_a = a.on_port(port);
    auto rows_b = b.on_port(port);
    ASSERT_EQ(rows_a.size(), rows_b.size()) << "port " << port;
    for (std::size_t k = 0; k < rows_a.size(); ++k)
      EXPECT_TRUE(rows_a[k] == rows_b[k])
          << "port " << port << " packet " << k << " differs";
  }
}

}  // namespace batch_property

using batch_property::expect_equivalent;
using batch_property::mixed_traffic;

TEST_F(Fixture, CounterBatchMatchesPerPacket) {
  click::Counter a, c;
  expect_equivalent(a, c, mixed_traffic(200));
  EXPECT_EQ(a.packets(), c.packets());
  EXPECT_EQ(a.bytes(), c.bytes());
}

TEST_F(Fixture, DiscardBatchMatchesPerPacket) {
  click::Discard a, c;
  expect_equivalent(a, c, mixed_traffic(100));
  EXPECT_EQ(a.discarded(), 100u);
  EXPECT_EQ(c.discarded(), 100u);
}

TEST_F(Fixture, SetTosAndPaintBatchMatchesPerPacket) {
  click::SetTos a, c;
  ASSERT_TRUE(a.configure({"0x12"}).ok());
  ASSERT_TRUE(c.configure({"0x12"}).ok());
  expect_equivalent(a, c, mixed_traffic(100));

  click::Paint pa, pc;
  ASSERT_TRUE(pa.configure({"7"}).ok());
  ASSERT_TRUE(pc.configure({"7"}).ok());
  expect_equivalent(pa, pc, mixed_traffic(100));
}

TEST_F(Fixture, TeeBatchMatchesPerPacket) {
  click::Tee a, c;
  ASSERT_TRUE(a.configure({"3"}).ok());
  ASSERT_TRUE(c.configure({"3"}).ok());
  expect_equivalent(a, c, mixed_traffic(150));
}

TEST_F(Fixture, CheckIPHeaderBatchMatchesPerPacket) {
  click::CheckIPHeader a, c;
  expect_equivalent(a, c, mixed_traffic(300));
  EXPECT_GT(a.bad_packets(), 0u);  // the stream contains rejects
  EXPECT_EQ(a.bad_packets(), c.bad_packets());
}

TEST_F(Fixture, IPFilterBatchMatchesPerPacket) {
  std::vector<std::string> rules = {"drop dst port 80", "allow src 10.8.0.0/16",
                                    "drop all"};
  click::IPFilter a, c;
  ASSERT_TRUE(a.configure(rules).ok());
  ASSERT_TRUE(c.configure(rules).ok());
  expect_equivalent(a, c, mixed_traffic(300));
  EXPECT_GT(a.dropped(), 0u);
  EXPECT_EQ(a.dropped(), c.dropped());
  EXPECT_EQ(a.rules_evaluated(), c.rules_evaluated());
}

TEST_F(Fixture, RoundRobinSwitchBatchMatchesPerPacket) {
  // Splitters must re-batch per output port: both modes, several ports.
  for (const char* mode : {"PACKET", "FLOW"}) {
    click::RoundRobinSwitch a, c;
    ASSERT_TRUE(a.configure({"4", mode}).ok());
    ASSERT_TRUE(c.configure({"4", mode}).ok());
    expect_equivalent(a, c, mixed_traffic(257));
    EXPECT_EQ(a.tracked_flows(), c.tracked_flows());
  }
}

TEST_F(Fixture, QueueBatchMatchesPerPacket) {
  click::Queue a, c;
  ASSERT_TRUE(a.configure({"50"}).ok());
  ASSERT_TRUE(c.configure({"50"}).ok());
  auto packets = mixed_traffic(80);
  for (const Packet& p : packets) {
    Packet copy = p;
    a.push(0, std::move(copy));
  }
  click::PacketBatch batch;
  std::size_t i = 0;
  while (i < packets.size()) {
    std::size_t n = std::min<std::size_t>(click::PacketBatch::kMaxBurst,
                                          packets.size() - i);
    for (std::size_t k = 0; k < n; ++k) {
      Packet copy = packets[i++];
      batch.push_back(std::move(copy));
    }
    c.push_batch(0, std::move(batch));
    batch.clear();
  }
  EXPECT_EQ(a.size(), c.size());
  EXPECT_EQ(a.drops(), c.drops());
  EXPECT_GT(a.drops(), 0u);  // capacity 50 < 80
  while (auto pa = a.pop()) {
    auto pc = c.pop();
    ASSERT_TRUE(pc.has_value());
    EXPECT_EQ(pa->serialize(), pc->serialize());
  }
  EXPECT_FALSE(c.pop().has_value());
}

TEST_F(Fixture, IDSMatcherBatchMatchesPerPacket) {
  IDSMatcher a(context), c(context);
  ASSERT_TRUE(a.configure({"RULESET strict", "DROP"}).ok());
  ASSERT_TRUE(c.configure({"RULESET strict", "DROP"}).ok());
  expect_equivalent(a, c, mixed_traffic(250));
  EXPECT_GT(a.matches(), 0u);  // the stream embeds "malware" payloads
  EXPECT_EQ(a.matches(), c.matches());
  EXPECT_EQ(a.bytes_scanned(), c.bytes_scanned());
}

TEST_F(Fixture, IDSMatcherBatchMatchesPerPacketOnCommunityRuleset) {
  IDSMatcher a(context), c(context);
  ASSERT_TRUE(a.configure({"RULESET community"}).ok());
  ASSERT_TRUE(c.configure({"RULESET community"}).ok());
  expect_equivalent(a, c, mixed_traffic(150));
  EXPECT_EQ(a.matches(), c.matches());
  EXPECT_EQ(a.bytes_scanned(), c.bytes_scanned());
}

TEST_F(Fixture, RateSplitterBatchMatchesPerPacket) {
  // Constant clock: the bucket never refills, so a 100 kbit burst
  // admits a prefix of the stream and rate-limits the rest — the
  // partition point must land identically on both paths.
  TrustedSplitter a(context), c(context);
  ASSERT_TRUE(a.configure({"RATE 1000000", "BURST 100000"}).ok());
  ASSERT_TRUE(c.configure({"RATE 1000000", "BURST 100000"}).ok());
  expect_equivalent(a, c, mixed_traffic(300));
  EXPECT_GT(a.over_rate(), 0u);
  EXPECT_EQ(a.conforming(), c.conforming());
  EXPECT_EQ(a.over_rate(), c.over_rate());
  EXPECT_EQ(a.time_calls(), c.time_calls());
}

TEST_F(Fixture, DeviceGlueBatchMatchesPerPacket) {
  FromDevice a, c;
  expect_equivalent(a, c, mixed_traffic(100));
  EXPECT_EQ(a.packets(), c.packets());
}

TEST_F(Fixture, ToDeviceBatchDeliversIdenticalVerdicts) {
  auto packets = mixed_traffic(120);
  ToDevice single(context);
  for (const Packet& p : packets) {
    Packet copy = p;
    single.push(copy.dropped ? 1 : 0, std::move(copy));
  }
  auto single_delivered = std::move(delivered);
  delivered.clear();

  ToDevice batched(context);
  std::size_t i = 0;
  while (i < packets.size()) {
    click::PacketBatch batch;
    std::size_t n = std::min<std::size_t>(17, packets.size() - i);
    for (std::size_t k = 0; k < n; ++k) {
      Packet copy = packets[i++];
      batch.push_back(std::move(copy));
    }
    batched.push_batch(0, std::move(batch));
  }
  ASSERT_EQ(delivered.size(), single_delivered.size());
  for (std::size_t k = 0; k < delivered.size(); ++k) {
    EXPECT_EQ(delivered[k].first.serialize(), single_delivered[k].first.serialize());
    EXPECT_EQ(delivered[k].second, single_delivered[k].second);
  }
  EXPECT_EQ(batched.accepted(), single.accepted());
  EXPECT_EQ(batched.rejected(), single.rejected());
}

TEST_F(Fixture, RouterChainBatchMatchesPerPacket) {
  // Whole-graph property over the representative enclave chain: the
  // batched traversal must produce the same ToDevice verdict sequence
  // as packet-at-a-time pushes.
  const char* config =
      "from :: FromDevice; check :: CheckIPHeader;"
      "fw :: IPFilter(allow src 10.8.0.0/16, drop all);"
      "ids :: IDSMatcher(RULESET strict, DROP); to :: ToDevice;"
      "from -> check -> fw -> ids -> to;"
      "check[1] -> [1]to; fw[1] -> [1]to; ids[1] -> [1]to;";
  auto registry = make_endbox_registry(context);
  auto single = click::Router::from_config(config, registry);
  auto batched = click::Router::from_config(config, registry);
  ASSERT_TRUE(single.ok()) << single.error();
  ASSERT_TRUE(batched.ok()) << batched.error();

  auto packets = mixed_traffic(200);
  for (const Packet& p : packets) {
    Packet copy = p;
    (*single)->push_to("from", std::move(copy));
  }
  auto single_delivered = std::move(delivered);
  delivered.clear();

  std::size_t i = 0;
  while (i < packets.size()) {
    click::PacketBatch batch;
    std::size_t n = std::min<std::size_t>(click::PacketBatch::kMaxBurst,
                                          packets.size() - i);
    for (std::size_t k = 0; k < n; ++k) {
      Packet copy = packets[i++];
      batch.push_back(std::move(copy));
    }
    (*batched)->push_batch_to("from", std::move(batch));
  }
  ASSERT_EQ(delivered.size(), single_delivered.size());
  // Accepted packets traverse the whole port-0 chain, so their order is
  // preserved exactly. Rejects re-batch per rejecting element (all of
  // CheckIPHeader's rejects, then IPFilter's, then IDSMatcher's), so
  // the reject verdicts compare as a multiset.
  auto split = [](const std::vector<std::pair<Packet, bool>>& rows, bool accepted) {
    std::vector<Bytes> out;
    for (const auto& [packet, verdict] : rows)
      if (verdict == accepted) out.push_back(packet.serialize());
    return out;
  };
  EXPECT_EQ(split(delivered, true), split(single_delivered, true));
  auto rejected_batched = split(delivered, false);
  auto rejected_single = split(single_delivered, false);
  // Explicit comparator: GCC 12's range analysis miscomputes the memcmp
  // bound for vector<Bytes>'s synthesized operator< under -Werror.
  auto by_bytes = [](const Bytes& a, const Bytes& b) {
    return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
  };
  std::sort(rejected_batched.begin(), rejected_batched.end(), by_bytes);
  std::sort(rejected_single.begin(), rejected_single.end(), by_bytes);
  EXPECT_GT(rejected_single.size(), 0u);
  EXPECT_EQ(rejected_batched, rejected_single);
}

}  // namespace
}  // namespace endbox::elements
