// Tests for the EndBox custom Click elements: device glue, IDSMatcher,
// splitters, TLSDecrypt — including their use via config files.
#include <gtest/gtest.h>

#include "click/router.hpp"
#include "click/standard_elements.hpp"
#include "elements/context.hpp"
#include "elements/device.hpp"
#include "elements/ids_matcher.hpp"
#include "elements/splitters.hpp"
#include "elements/tls_decrypt.hpp"

namespace endbox::elements {
namespace {

using net::Ipv4;
using net::Packet;

struct Fixture : ::testing::Test {
  Rng rng{11};
  sim::Time fake_trusted_time = 0;
  sim::Time fake_untrusted_time = 0;
  tls::SessionKeyStore key_store;
  ElementContext context;
  std::vector<std::pair<Packet, bool>> delivered;

  Fixture() {
    context.key_store = &key_store;
    context.trusted_time = [this] { return fake_trusted_time; };
    context.untrusted_time = [this] { return fake_untrusted_time; };
    context.to_device = [this](Packet&& p, bool accepted) {
      delivered.emplace_back(std::move(p), accepted);
    };
    context.rulesets["community"] = idps::generate_community_ruleset(377, rng);
    context.rulesets["strict"] = *idps::parse_snort_ruleset(
        "drop ip any any -> any any (content:\"malware\"; sid:1;)\n"
        "alert ip any any -> any any (content:\"suspicious\"; sid:2;)\n");
  }

  Packet benign(std::size_t size = 100) {
    return Packet::udp(Ipv4(10, 8, 0, 2), Ipv4(10, 0, 0, 1), 5555, 80,
                       Bytes(size, 'x'));
  }
};

// ---- Device glue ---------------------------------------------------------

TEST_F(Fixture, FromDeviceToDevicePipeline) {
  auto registry = make_endbox_registry(context);
  auto router = click::Router::from_config(
      "from :: FromDevice; to :: ToDevice; from -> to;", registry);
  ASSERT_TRUE(router.ok()) << router.error();
  (*router)->push_to("from", benign());
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_TRUE(delivered[0].second);  // accepted
  auto* to = (*router)->find_as<ToDevice>("to");
  EXPECT_EQ(to->accepted(), 1u);
  EXPECT_EQ(to->rejected(), 0u);
}

TEST_F(Fixture, ToDeviceSignalsRejection) {
  auto registry = make_endbox_registry(context);
  auto router = click::Router::from_config(
      "from :: FromDevice; fw :: IPFilter(drop all); to :: ToDevice;"
      "from -> fw -> to; fw[1] -> [1]to;", registry);
  ASSERT_TRUE(router.ok()) << router.error();
  (*router)->push_to("from", benign());
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_FALSE(delivered[0].second);  // rejected
  EXPECT_EQ((*router)->find_as<ToDevice>("to")->rejected(), 1u);
}

// ---- IDSMatcher -----------------------------------------------------------

TEST_F(Fixture, IdsMatcherPassesBenignTraffic) {
  IDSMatcher matcher(context);
  ASSERT_TRUE(matcher.configure({"RULESET community"}).ok());
  click::Counter pass;
  matcher.connect_output(0, &pass, 0);
  for (int i = 0; i < 10; ++i) matcher.push(0, benign(1400));
  EXPECT_EQ(pass.packets(), 10u);
  EXPECT_EQ(matcher.matches(), 0u);
  EXPECT_EQ(matcher.bytes_scanned(), 14000u);
}

TEST_F(Fixture, IdsMatcherDropRule) {
  IDSMatcher matcher(context);
  ASSERT_TRUE(matcher.configure({"RULESET strict"}).ok());
  click::Counter pass, drop;
  matcher.connect_output(0, &pass, 0);
  matcher.connect_output(1, &drop, 0);

  Packet evil = benign();
  evil.payload = to_bytes("xx malware yy");
  matcher.push(0, std::move(evil));
  Packet sus = benign();
  sus.payload = to_bytes("suspicious but allowed");
  matcher.push(0, std::move(sus));
  matcher.push(0, benign());

  EXPECT_EQ(drop.packets(), 1u);   // drop rule fired
  EXPECT_EQ(pass.packets(), 2u);   // alert-only + clean
  EXPECT_EQ(matcher.matches(), 2u);
}

TEST_F(Fixture, IdsMatcherDropModeDropsOnAlert) {
  IDSMatcher matcher(context);
  ASSERT_TRUE(matcher.configure({"RULESET strict", "DROP"}).ok());
  click::Counter pass, drop;
  matcher.connect_output(0, &pass, 0);
  matcher.connect_output(1, &drop, 0);
  Packet sus = benign();
  sus.payload = to_bytes("suspicious content");
  matcher.push(0, std::move(sus));
  EXPECT_EQ(drop.packets(), 1u);  // alert rule escalated to drop
}

TEST_F(Fixture, IdsMatcherConfigErrors) {
  IDSMatcher matcher(context);
  EXPECT_FALSE(matcher.configure({}).ok());
  EXPECT_FALSE(matcher.configure({"RULESET nonexistent"}).ok());
  EXPECT_FALSE(matcher.configure({"BOGUS x"}).ok());
}

TEST_F(Fixture, IdsMatcherScansDecryptedPayload) {
  IDSMatcher matcher(context);
  ASSERT_TRUE(matcher.configure({"RULESET strict"}).ok());
  click::Counter pass, drop;
  matcher.connect_output(0, &pass, 0);
  matcher.connect_output(1, &drop, 0);
  Packet p = benign();
  p.payload = to_bytes("ciphertext-gibberish");        // wire bytes
  p.decrypted_payload = to_bytes("hidden malware !");  // what TLSDecrypt saw
  matcher.push(0, std::move(p));
  EXPECT_EQ(drop.packets(), 1u);
}

// ---- Splitters -------------------------------------------------------------

TEST_F(Fixture, TrustedSplitterShapesToRate) {
  TrustedSplitter splitter(context);
  // 1 Mbps, tiny burst, sample every packet for deterministic behaviour.
  ASSERT_TRUE(splitter.configure({"RATE 1000000", "SAMPLE 1", "BURST 16000"}).ok());
  click::Counter ok_out, over;
  splitter.connect_output(0, &ok_out, 0);
  splitter.connect_output(1, &over, 0);

  // At t=0, burst allows 16 kbit = ~15 packets of 128 bytes (+28 hdr).
  for (int i = 0; i < 50; ++i) splitter.push(0, benign(128));
  EXPECT_GT(over.packets(), 0u);
  std::uint64_t over_before = over.packets();

  // Advance trusted time by 1 s: tokens refill (capped at the 16 kbit
  // burst), so the next ~10 small packets conform again.
  fake_trusted_time += sim::kSecond;
  for (int i = 0; i < 10; ++i) splitter.push(0, benign(128));
  EXPECT_EQ(over.packets(), over_before);  // all 10 conforming
}

TEST_F(Fixture, TrustedSplitterSamplesTime) {
  TrustedSplitter splitter(context);
  ASSERT_TRUE(splitter.configure({"RATE 1e9", "SAMPLE 10"}).ok());
  for (int i = 0; i < 100; ++i) splitter.push(0, benign());
  // One initial read + one per 10 packets thereafter.
  EXPECT_LE(splitter.time_calls(), 11u);
  EXPECT_EQ(context.trusted_time_calls, splitter.time_calls());
}

TEST_F(Fixture, UntrustedSplitterReadsTimePerPacket) {
  UntrustedSplitter splitter(context);
  ASSERT_TRUE(splitter.configure({"RATE 1e9"}).ok());
  for (int i = 0; i < 25; ++i) splitter.push(0, benign());
  EXPECT_EQ(context.untrusted_time_calls, 25u);
}

TEST_F(Fixture, SplitterConfigErrors) {
  TrustedSplitter splitter(context);
  EXPECT_FALSE(splitter.configure({}).ok());                  // RATE required
  EXPECT_FALSE(splitter.configure({"RATE -5"}).ok());
  EXPECT_FALSE(splitter.configure({"RATE abc"}).ok());
  EXPECT_FALSE(splitter.configure({"RATE 1e6", "SAMPLE 0"}).ok());
  EXPECT_FALSE(splitter.configure({"RATE 1e6", "WHAT 3"}).ok());
}

TEST_F(Fixture, SplitterStateSurvivesHotSwap) {
  auto registry = make_endbox_registry(context);
  click::RouterManager manager(registry);
  ASSERT_TRUE(manager.install(
      "s :: TrustedSplitter(RATE 1e6, SAMPLE 1, BURST 16000); d :: Discard; "
      "over :: Discard; s -> d; s[1] -> over;").ok());
  auto* s = manager.current()->find_as<TrustedSplitter>("s");
  for (int i = 0; i < 50; ++i) s->push(0, benign(128));
  auto over_before = s->over_rate();
  ASSERT_GT(over_before, 0u);
  // Hot-swap to the same config: bucket state carries over, so the
  // limiter keeps rejecting (no fresh burst allowance).
  ASSERT_TRUE(manager.hot_swap(
      "s :: TrustedSplitter(RATE 1e6, SAMPLE 1, BURST 16000); d :: Discard; "
      "over :: Discard; s -> d; s[1] -> over;").ok());
  auto* s2 = manager.current()->find_as<TrustedSplitter>("s");
  EXPECT_EQ(s2->over_rate(), over_before);
  s2->push(0, benign(128));
  EXPECT_EQ(s2->over_rate(), over_before + 1);  // still over rate
}

// ---- TLSDecrypt -------------------------------------------------------------

struct TlsFixture : Fixture {
  tls::TlsClient tls_client{rng};
  tls::TlsServer tls_server{rng};

  void handshake_with_export() {
    tls_client.set_key_export_hook(
        [this](const tls::SessionKeys& k) { key_store.put(k); });
    auto ch = tls_client.start_handshake();
    auto sh = tls_server.accept(ch, to_bytes("pm"));
    ASSERT_TRUE(sh.ok());
    ASSERT_TRUE(tls_client.finish_handshake(*sh, to_bytes("pm")).ok());
  }

  Packet tls_packet(const std::string& plaintext) {
    auto record = tls_client.send(to_bytes(plaintext));
    Packet p = Packet::tcp(Ipv4(10, 8, 0, 2), Ipv4(93, 184, 216, 34), 40000, 443,
                           0, 0, 0x18, record.serialize());
    p.flow_hint = static_cast<std::uint32_t>(tls_client.keys().session_id);
    return p;
  }
};

TEST_F(TlsFixture, DecryptsWithForwardedKeys) {
  handshake_with_export();
  TLSDecrypt decrypt(context);
  ASSERT_TRUE(decrypt.configure({}).ok());
  click::Counter sink;
  decrypt.connect_output(0, &sink, 0);

  Packet p = tls_packet("GET /secret HTTP/1.1");
  Bytes wire_before = p.payload;
  decrypt.push(0, std::move(p));

  EXPECT_EQ(decrypt.decrypted(), 1u);
  EXPECT_EQ(sink.packets(), 1u);
}

TEST_F(TlsFixture, LeavesWirePayloadIntact) {
  handshake_with_export();
  TLSDecrypt decrypt(context);
  ASSERT_TRUE(decrypt.configure({}).ok());
  struct Capture : click::Element {
    std::string_view class_name() const override { return "Capture"; }
    void push(int, Packet&& p) override { got = std::move(p); }
    Packet got;
  } capture;
  decrypt.connect_output(0, &capture, 0);

  Packet p = tls_packet("end-to-end secret");
  Bytes wire_before = p.payload;
  decrypt.push(0, std::move(p));
  EXPECT_EQ(capture.got.payload, wire_before);  // ciphertext untouched
  EXPECT_EQ(to_string(capture.got.decrypted_payload), "end-to-end secret");
}

TEST_F(TlsFixture, WithoutKeysCountsMiss) {
  // No key export: vanilla client. Decryption impossible.
  auto ch = tls_client.start_handshake();
  auto sh = tls_server.accept(ch, to_bytes("pm"));
  ASSERT_TRUE(sh.ok());
  ASSERT_TRUE(tls_client.finish_handshake(*sh, to_bytes("pm")).ok());

  TLSDecrypt decrypt(context);
  ASSERT_TRUE(decrypt.configure({}).ok());
  click::Counter sink;
  decrypt.connect_output(0, &sink, 0);
  decrypt.push(0, tls_packet("opaque"));
  EXPECT_EQ(decrypt.decrypted(), 0u);
  EXPECT_EQ(decrypt.key_misses(), 1u);
  EXPECT_EQ(sink.packets(), 1u);  // still forwarded
}

TEST_F(TlsFixture, NonTlsTrafficPassesThrough) {
  TLSDecrypt decrypt(context);
  ASSERT_TRUE(decrypt.configure({}).ok());
  click::Counter sink;
  decrypt.connect_output(0, &sink, 0);
  decrypt.push(0, benign());
  EXPECT_EQ(decrypt.passthrough(), 1u);
  EXPECT_EQ(sink.packets(), 1u);
}

TEST_F(TlsFixture, EncryptedIdpsPipeline) {
  // The full section III-D pipeline: TLSDecrypt -> IDSMatcher finds
  // malware hidden inside a TLS record.
  handshake_with_export();
  auto registry = make_endbox_registry(context);
  auto router = click::Router::from_config(
      "from :: FromDevice; dec :: TLSDecrypt; ids :: IDSMatcher(RULESET strict);"
      "to :: ToDevice; from -> dec -> ids -> to; ids[1] -> [1]to;", registry);
  ASSERT_TRUE(router.ok()) << router.error();

  (*router)->push_to("from", tls_packet("totally innocent malware payload"));
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_FALSE(delivered[0].second);  // dropped despite encryption

  (*router)->push_to("from", tls_packet("regular page content"));
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_TRUE(delivered[1].second);
}

}  // namespace
}  // namespace endbox::elements
