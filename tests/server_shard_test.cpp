// Server data-plane sharding suite: twin-server equivalence properties
// (N-shard open_batch / seal_jobs byte- and order-identical to 1-shard
// and to the pre-sharding reference loop), lossless reshard under load
// (replay windows and pending fragment groups migrate intact), worker
// pool reuse across reshards, the EndBoxServer ledger rule, and the
// AdaptiveReshardController's hysteresis behaviour.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "ca/authority.hpp"
#include "common/rng.hpp"
#include "endbox/reshard_controller.hpp"
#include "sgx/enclave.hpp"
#include "sgx/platform.hpp"
#include "vpn/client.hpp"
#include "vpn/server.hpp"

namespace endbox::vpn {
namespace {

Bytes to_bytes(std::string_view s);
Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

// Shared PKI: one CA and one enclave certificate every twin reuses, so
// the only randomness distinguishing two servers is their own Rng.
struct Pki {
  Rng rng{0x5eed5a};
  sim::Clock clock;
  sgx::AttestationService ias{rng};
  ca::CertificateAuthority authority{rng, ias};
  sgx::SgxPlatform platform{"client-1", rng, clock};
  sgx::Enclave enclave{platform, "endbox-v1", sgx::SgxMode::Hardware};
  crypto::RsaKeyPair enclave_key = crypto::rsa_generate(rng);
  ca::Certificate certificate;

  Pki() {
    ias.register_platform("client-1", platform.attestation_key().pub);
    authority.allow_measurement(enclave.measurement());
    sgx::QuotingEnclave qe(platform);
    auto quote = qe.quote(enclave.create_report(
        sgx::bind_report_data(enclave_key.pub.serialize())));
    auto response = authority.provision(quote->serialize(), enclave_key.pub);
    certificate = response->certificate;
  }
};

// One server plus its fleet of client sessions, all built from fixed
// seeds: two rigs constructed with the same seeds and session count are
// byte-for-byte twins (same server key, same session keys, same IV
// streams), differing only in how the server shards its sessions.
struct ServerRig {
  Rng server_rng;
  VpnServer server;
  std::vector<std::unique_ptr<Rng>> client_rngs;
  std::vector<VpnClientSession> clients;

  ServerRig(Pki& pki, std::size_t shards, std::size_t sessions,
            std::uint64_t seed = 0xfeed01, VpnServerConfig config = {})
      : server_rng(seed),
        server(server_rng, pki.authority.public_key(),
               [&] {
                 config.session_shards = shards;
                 return config;
               }()) {
    clients.reserve(sessions);
    for (std::size_t i = 0; i < sessions; ++i) {
      client_rngs.push_back(std::make_unique<Rng>(seed ^ (0x1000 + i)));
      VpnClientConfig client_config;
      client_config.mtu = config.mtu;
      clients.emplace_back(*client_rngs.back(), pki.certificate,
                           pki.enclave_key, server.public_key(), client_config);
      auto init = clients.back().create_handshake_init();
      auto event = server.handle(init.serialize(), 0);
      EXPECT_TRUE(event.ok()) << event.error();
      auto& done = std::get<VpnServer::HandshakeDone>(*event);
      auto reply = WireMessage::parse(done.reply_wire);
      EXPECT_TRUE(reply.ok());
      auto status = clients.back().process_handshake_reply(*reply);
      EXPECT_TRUE(status.ok()) << status.error();
    }
  }
};

void expect_batches_equal(const VpnServer::OpenBatch& a,
                          const VpnServer::OpenBatch& b, const char* what) {
  EXPECT_EQ(a.complete, b.complete) << what;
  EXPECT_EQ(a.pending, b.pending) << what;
  EXPECT_EQ(a.rejected, b.rejected) << what;
  // opened_sessions is a membership multiset (per-shard concatenation
  // order, documented as unordered): compare sorted.
  std::vector<std::uint32_t> opened_a = a.opened_sessions;
  std::vector<std::uint32_t> opened_b = b.opened_sessions;
  std::sort(opened_a.begin(), opened_a.end());
  std::sort(opened_b.begin(), opened_b.end());
  EXPECT_EQ(opened_a, opened_b) << what;
  ASSERT_EQ(a.packet_count, b.packet_count) << what;
  for (std::size_t i = 0; i < a.packet_count; ++i) {
    EXPECT_EQ(a.packets[i].session_id, b.packets[i].session_id) << what << " #" << i;
    EXPECT_EQ(a.packets[i].burst_tag, b.packets[i].burst_tag) << what << " #" << i;
    EXPECT_EQ(a.packets[i].was_encrypted, b.packets[i].was_encrypted);
    EXPECT_EQ(a.packets[i].ip_packet, b.packets[i].ip_packet) << what << " #" << i;
  }
}

/// Asserts the per-session burst_tag sequence is strictly increasing —
/// the run-to-completion lane pipeline's ordering contract: within one
/// flow/session arrival order is preserved, globally packets surface in
/// lane-concatenation order.
void expect_per_session_order(const VpnServer::OpenBatch& batch,
                              const char* what) {
  std::map<std::uint32_t, std::uint32_t> last_tag;
  for (std::size_t i = 0; i < batch.packet_count; ++i) {
    const auto& packet = batch.packets[i];
    auto it = last_tag.find(packet.session_id);
    if (it != last_tag.end()) {
      EXPECT_LT(it->second, packet.burst_tag)
          << what << ": session " << packet.session_id << " reordered at #" << i;
    }
    last_tag[packet.session_id] = packet.burst_tag;
  }
}

/// Lane-pipeline equivalence: same counters and the same packets (keyed
/// by burst_tag — the arrival index, unique per burst), but packets may
/// surface in a different global order when the lane counts differ.
/// Per-session order must hold in both batches.
void expect_batches_equivalent(const VpnServer::OpenBatch& a,
                               const VpnServer::OpenBatch& b,
                               const char* what) {
  EXPECT_EQ(a.complete, b.complete) << what;
  EXPECT_EQ(a.pending, b.pending) << what;
  EXPECT_EQ(a.rejected, b.rejected) << what;
  std::vector<std::uint32_t> opened_a = a.opened_sessions;
  std::vector<std::uint32_t> opened_b = b.opened_sessions;
  std::sort(opened_a.begin(), opened_a.end());
  std::sort(opened_b.begin(), opened_b.end());
  EXPECT_EQ(opened_a, opened_b) << what;
  ASSERT_EQ(a.packet_count, b.packet_count) << what;
  auto by_tag = [](const VpnServer::OpenBatch& batch) {
    std::vector<std::size_t> order(batch.packet_count);
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
      return batch.packets[x].burst_tag < batch.packets[y].burst_tag;
    });
    return order;
  };
  std::vector<std::size_t> order_a = by_tag(a), order_b = by_tag(b);
  for (std::size_t i = 0; i < a.packet_count; ++i) {
    const auto& pa = a.packets[order_a[i]];
    const auto& pb = b.packets[order_b[i]];
    EXPECT_EQ(pa.burst_tag, pb.burst_tag) << what << " #" << i;
    EXPECT_EQ(pa.session_id, pb.session_id) << what << " #" << i;
    EXPECT_EQ(pa.was_encrypted, pb.was_encrypted) << what << " #" << i;
    EXPECT_EQ(pa.ip_packet, pb.ip_packet) << what << " #" << i;
  }
  expect_per_session_order(a, what);
  expect_per_session_order(b, what);
}

TEST(ServerShard, SessionsPinToShardsAndBalance) {
  Pki pki;
  ServerRig rig(pki, 4, 32);
  EXPECT_EQ(rig.server.session_shard_count(), 4u);
  EXPECT_EQ(rig.server.session_count(), 32u);
  std::size_t total = 0;
  for (std::size_t s = 0; s < 4; ++s) {
    std::size_t n = rig.server.shard_session_count(s);
    total += n;
    // splitmix64 spread: no shard owns more than half of a 32-session
    // fleet (a sequential-id pin like id % N would be exactly 8 each;
    // the hash keeps it in the same ballpark without that structure).
    EXPECT_GT(n, 0u);
    EXPECT_LE(n, 16u);
  }
  EXPECT_EQ(total, 32u);
  for (const auto& client : rig.clients) {
    std::size_t s = rig.server.shard_of_session(client.session_id());
    EXPECT_LT(s, 4u);
  }
}

// The tentpole property: a mixed-session burst (in-order data, MTU
// fragmentation, corrupt frames, replays, garbage, unknown sessions)
// opens byte-identically at 1 lane, at 4 lanes, through the staged
// reference path, and through the pre-sharding reference loop. One
// lane and the staged path preserve exact arrival order; four lanes
// surface the same packets in lane-concatenation order with per-session
// order intact (the run-to-completion contract).
TEST(ServerShard, OpenBatchEquivalentAcrossShardCountsProperty) {
  Pki pki;
  VpnServerConfig config;
  config.mtu = 200;  // small tunnel MTU so payloads fragment
  constexpr std::size_t kSessions = 12;
  ServerRig one(pki, 1, kSessions, 0xabc123, config);
  ServerRig four(pki, 4, kSessions, 0xabc123, config);
  ServerRig staged(pki, 4, kSessions, 0xabc123, config);
  ServerRig ref(pki, 1, kSessions, 0xabc123, config);

  Rng gen(0x900df00d);
  VpnServer::OpenBatch out_one, out_four, out_staged, out_ref;
  std::vector<Bytes> frames_one, frames_four, frames_staged, frames_ref;
  Bytes replay_frame_one, replay_frame_four, replay_frame_staged,
      replay_frame_ref;

  for (int round = 0; round < 12; ++round) {
    frames_one.clear();
    frames_four.clear();
    frames_staged.clear();
    frames_ref.clear();
    std::size_t packets = 3 + gen.uniform(0, 8);
    for (std::size_t p = 0; p < packets; ++p) {
      std::size_t k = gen.uniform(0, kSessions - 1);
      Bytes payload = gen.bytes(gen.uniform(10, 450));  // up to 3 fragments
      std::size_t n1 = one.clients[k].seal_packet_wire_at(
          payload, frames_one, frames_one.size());
      std::size_t n4 = four.clients[k].seal_packet_wire_at(
          payload, frames_four, frames_four.size());
      std::size_t ns = staged.clients[k].seal_packet_wire_at(
          payload, frames_staged, frames_staged.size());
      std::size_t nr = ref.clients[k].seal_packet_wire_at(
          payload, frames_ref, frames_ref.size());
      ASSERT_EQ(n1, n4);
      ASSERT_EQ(n1, ns);
      ASSERT_EQ(n1, nr);
      // Twin clients must produce byte-identical wire frames — the
      // precondition for comparing the servers at all.
      ASSERT_EQ(frames_one.back(), frames_four.back());
      ASSERT_EQ(frames_one.back(), frames_staged.back());
      ASSERT_EQ(frames_one.back(), frames_ref.back());
    }
    // Adversarial frames: corrupt a MAC, replay an old frame, inject
    // garbage and an unknown session id at random positions.
    if (round > 0) {
      std::size_t corrupt = gen.uniform(0, frames_one.size() - 1);
      frames_one[corrupt].back() ^= 0x01;
      frames_four[corrupt].back() ^= 0x01;
      frames_staged[corrupt].back() ^= 0x01;
      frames_ref[corrupt].back() ^= 0x01;
      frames_one.push_back(replay_frame_one);
      frames_four.push_back(replay_frame_four);
      frames_staged.push_back(replay_frame_staged);
      frames_ref.push_back(replay_frame_ref);
      Bytes junk = gen.bytes(gen.uniform(0, 40));
      frames_one.push_back(junk);
      frames_four.push_back(junk);
      frames_staged.push_back(junk);
      frames_ref.push_back(junk);
      Bytes unknown = frames_one[0];
      put_u32(unknown.data() + 1, 0xdeadbeef);
      frames_one.push_back(unknown);
      frames_four.push_back(unknown);
      frames_staged.push_back(unknown);
      frames_ref.push_back(unknown);
    }
    replay_frame_one = frames_one[0];
    replay_frame_four = frames_four[0];
    replay_frame_staged = frames_staged[0];
    replay_frame_ref = frames_ref[0];

    one.server.open_batch(frames_one, 0, out_one);
    four.server.open_batch(frames_four, 0, out_four);
    staged.server.open_batch_staged(frames_staged, 0, out_staged);
    ref.server.open_batch_reference(frames_ref, 0, out_ref);
    // One lane = one FIFO ring: exact arrival order, identical to the
    // pre-sharding reference loop.
    expect_batches_equal(out_one, out_ref, "1-lane vs reference");
    // The staged path still merges by burst_tag, so even at 4 shards it
    // reproduces exact arrival order.
    expect_batches_equal(out_staged, out_ref, "staged-4 vs reference");
    // Four lanes: same packets, lane-concatenation order, per-session
    // order intact.
    expect_batches_equivalent(out_one, out_four, "1-lane vs 4-lane");
    EXPECT_EQ(one.server.auth_failures(), four.server.auth_failures());
    EXPECT_EQ(one.server.replays_rejected(), four.server.replays_rejected());
    EXPECT_EQ(one.server.auth_failures(), ref.server.auth_failures());
    EXPECT_EQ(one.server.auth_failures(), staged.server.auth_failures());
  }
  EXPECT_GT(one.server.replays_rejected(), 0u);
  EXPECT_GT(one.server.auth_failures(), 0u);
}

TEST(ServerShard, SealJobsEquivalentAcrossShardCountsAndSequentialSeal) {
  Pki pki;
  VpnServerConfig config;
  config.mtu = 150;
  constexpr std::size_t kSessions = 9;
  ServerRig one(pki, 1, kSessions, 0x5ea15eed, config);
  ServerRig four(pki, 4, kSessions, 0x5ea15eed, config);
  ServerRig seq(pki, 1, kSessions, 0x5ea15eed, config);

  Rng gen(0xc0ffee);
  std::vector<Bytes> payloads;
  std::vector<VpnServer::SealJob> jobs;
  for (int p = 0; p < 24; ++p) {
    payloads.push_back(gen.bytes(gen.uniform(1, 400)));
    std::uint32_t sid = one.clients[gen.uniform(0, kSessions - 1)].session_id();
    jobs.push_back({sid, payloads.back()});
  }

  std::vector<Bytes> frames_one, frames_four, frames_seq;
  std::size_t n1 = one.server.seal_jobs(jobs, frames_one);
  std::size_t n4 = four.server.seal_jobs(jobs, frames_four);
  std::size_t ns = 0;
  for (const auto& job : jobs)
    ns = seq.server.seal_packet_wire_at(job.session_id, job.ip_packet,
                                        frames_seq, ns);
  ASSERT_EQ(n1, n4);
  ASSERT_EQ(n1, ns);
  for (std::size_t f = 0; f < n1; ++f) {
    EXPECT_EQ(frames_one[f], frames_four[f]) << "frame " << f;
    EXPECT_EQ(frames_one[f], frames_seq[f]) << "frame " << f;
  }
  // And the downlink actually opens at the clients, in order.
  for (std::size_t f = 0; f < n1; ++f) {
    auto msg = WireMessage::parse(frames_four[f]);
    ASSERT_TRUE(msg.ok());
    std::size_t k = 0;
    for (; k < kSessions; ++k)
      if (four.clients[k].session_id() == msg->session_id) break;
    ASSERT_LT(k, kSessions);
    auto opened = four.clients[k].open_data(*msg);
    ASSERT_TRUE(opened.ok()) << opened.error();
  }
  std::vector<VpnServer::SealJob> bad_jobs{{0xdeadbeefu, payloads[0]}};
  EXPECT_THROW((void)four.server.seal_jobs(bad_jobs, frames_four),
               std::logic_error);
}

TEST(ServerShard, ReshardUnderLoadKeepsReplayWindowsAndFragments) {
  Pki pki;
  VpnServerConfig config;
  config.mtu = 100;
  constexpr std::size_t kSessions = 6;
  ServerRig rig(pki, 1, kSessions, 0xfeedbee, config);
  VpnServer& server = rig.server;

  // Warm every session and keep one frame around for a later replay.
  std::vector<Bytes> frames;
  for (std::size_t k = 0; k < kSessions; ++k)
    rig.clients[k].seal_packet_wire_at(to_bytes("warm-up"), frames, frames.size());
  VpnServer::OpenBatch out;
  server.open_batch(frames, 0, out);
  ASSERT_EQ(out.complete, kSessions);
  Bytes replayed = frames[0];

  // Leave session 0 with a fragment group mid-flight: 3 fragments, send 2.
  Rng gen(31);
  Bytes big = gen.bytes(250);
  std::vector<Bytes> frag_frames;
  ASSERT_EQ(rig.clients[0].seal_packet_wire_at(big, frag_frames, 0), 3u);
  std::vector<Bytes> first_two{frag_frames[0], frag_frames[1]};
  server.open_batch(first_two, 0, out);
  EXPECT_EQ(out.pending, 2u);

  // Grow 1 -> 4 mid-stream.
  ASSERT_TRUE(server.reshard_sessions(4).ok());
  EXPECT_EQ(server.session_shard_count(), 4u);
  EXPECT_EQ(server.session_count(), kSessions);
  EXPECT_EQ(server.reshard_count(), 1u);

  // The pending fragment group survived the migration: the last
  // fragment completes the packet.
  std::vector<Bytes> last{frag_frames[2]};
  server.open_batch(last, 0, out);
  EXPECT_EQ(out.complete, 1u);
  ASSERT_EQ(out.packet_count, 1u);
  EXPECT_EQ(out.packets[0].ip_packet, big);

  // Replay windows survived too: the warm-up frame is still a replay.
  std::uint64_t replays_before = server.replays_rejected();
  std::vector<Bytes> replay_burst{replayed};
  server.open_batch(replay_burst, 0, out);
  EXPECT_EQ(out.rejected, 1u);
  EXPECT_EQ(server.replays_rejected(), replays_before + 1);

  // Fresh traffic still flows for every session after the reshard, and
  // per-session packet ids keep advancing where they left off.
  frames.clear();
  for (std::size_t k = 0; k < kSessions; ++k)
    rig.clients[k].seal_packet_wire_at(to_bytes("post-reshard"), frames,
                                       frames.size());
  server.open_batch(frames, 0, out);
  EXPECT_EQ(out.complete, kSessions);
  EXPECT_EQ(out.rejected, 0u);

  // Shrink 4 -> 2: the worker pool is reused (satellite: no thread
  // teardown on a shrink), and statistics fold without double counting.
  std::uint64_t replays_total = server.replays_rejected();
  EXPECT_EQ(server.worker_threads(), 4u);
  ASSERT_TRUE(server.reshard_sessions(2).ok());
  EXPECT_EQ(server.worker_threads(), 4u) << "shrink must reuse the pool";
  EXPECT_EQ(server.replays_rejected(), replays_total);
  EXPECT_EQ(server.session_count(), kSessions);

  frames.clear();
  for (std::size_t k = 0; k < kSessions; ++k)
    rig.clients[k].seal_packet_wire_at(to_bytes("after-shrink"), frames,
                                       frames.size());
  server.open_batch(frames, 0, out);
  EXPECT_EQ(out.complete, kSessions);

  // Growing past the pool's size rebuilds it.
  ASSERT_TRUE(server.reshard_sessions(6).ok());
  EXPECT_EQ(server.worker_threads(), 6u);
  ASSERT_TRUE(server.reshard_sessions(0).ok() == false);
}

TEST(ServerShard, ReshardMigratesExpiryDeadlinesExactly) {
  // Property: reshard_sessions(n) must migrate idle-expiry state
  // losslessly — every surviving session keeps its exact last-activity
  // stamp (no early expiry, no immortalised sessions) and the expiry
  // statistics fold o -> o%n without double counting.
  Pki pki;
  VpnServerConfig config;
  config.session_idle_timeout = 30 * sim::kSecond;
  constexpr std::size_t kSessions = 12;
  ServerRig rig(pki, 1, kSessions, 0xfeedf00d, config);
  VpnServer& server = rig.server;

  // Distinct stamps: session k last talks at t = k seconds (session 0
  // keeps its handshake-time stamp of 0).
  for (std::size_t k = 1; k < kSessions; ++k) {
    auto wire = rig.clients[k].seal_packet(to_bytes("stamp"))[0].serialize();
    ASSERT_TRUE(server.handle(wire, k * sim::kSecond).ok());
  }
  // Session 0 expires on the old sharding; its count must fold through.
  EXPECT_EQ(server.expire_idle_sessions(30 * sim::kSecond - sim::kMillisecond),
            0u);
  EXPECT_EQ(server.expire_idle_sessions(30 * sim::kSecond), 1u);
  EXPECT_EQ(server.sessions_expired(), 1u);

  ASSERT_TRUE(server.reshard_sessions(4).ok());
  EXPECT_EQ(server.session_count(), kSessions - 1);
  EXPECT_EQ(server.sessions_expired(), 1u) << "stats must fold, not reset";

  // Activity stamps migrated exactly.
  for (std::size_t k = 1; k < kSessions; ++k)
    EXPECT_EQ(server.session_last_activity(rig.clients[k].session_id()),
              k * sim::kSecond)
        << "session " << k;

  std::vector<std::uint32_t> closed;
  server.set_session_close_hook([&](std::uint32_t id) { closed.push_back(id); });

  // No early expiry: one wheel tick before the earliest migrated
  // deadline (session 1 at t=31 s) nothing fires...
  EXPECT_EQ(server.expire_idle_sessions(31 * sim::kSecond - sim::kMillisecond),
            0u);
  // ...and no immortalised sessions: each deadline fires exactly on
  // time, one session per second, in order.
  for (std::size_t k = 1; k < kSessions; ++k) {
    EXPECT_EQ(server.expire_idle_sessions((30 + k) * sim::kSecond), 1u)
        << "session " << k;
    ASSERT_EQ(closed.size(), k);
    EXPECT_EQ(closed.back(), rig.clients[k].session_id());
  }
  EXPECT_EQ(server.session_count(), 0u);
  EXPECT_EQ(server.sessions_expired(), kSessions);
}

TEST(ServerShard, OpenBatchShardHookCoversTheWholeBurst) {
  Pki pki;
  constexpr std::size_t kSessions = 8;
  ServerRig rig(pki, 4, kSessions, 0x7007);
  ServerRig twin(pki, 4, kSessions, 0x7007);

  std::vector<Bytes> frames;
  for (int p = 0; p < 24; ++p)
    rig.clients[static_cast<std::size_t>(p) % kSessions].seal_packet_wire_at(
        to_bytes("hook-2"), frames, frames.size());

  // Opening shard by shard through the bench hook covers every frame
  // exactly once, and the union of per-shard results equals one
  // open_batch on the twin.
  VpnServer::OpenBatch shard_out, twin_out;
  std::size_t complete = 0;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> tagged;  // tag, session
  for (std::size_t s = 0; s < rig.server.session_shard_count(); ++s) {
    rig.server.open_batch_shard(s, frames, 0, shard_out);
    complete += shard_out.complete;
    for (std::size_t i = 0; i < shard_out.packet_count; ++i)
      tagged.emplace_back(shard_out.packets[i].burst_tag,
                          shard_out.packets[i].session_id);
  }
  EXPECT_EQ(complete, 24u);
  std::sort(tagged.begin(), tagged.end());
  std::vector<Bytes> twin_frames;
  for (int p = 0; p < 24; ++p)
    twin.clients[static_cast<std::size_t>(p) % kSessions].seal_packet_wire_at(
        to_bytes("hook-2"), twin_frames, twin_frames.size());
  twin.server.open_batch(twin_frames, 0, twin_out);
  ASSERT_EQ(twin_out.packet_count, tagged.size());
  // The lane pipeline surfaces packets in lane-concatenation order, so
  // the union compares as a sorted (tag, session) multiset; within each
  // session arrival order must hold.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> twin_tagged;
  for (std::size_t i = 0; i < twin_out.packet_count; ++i)
    twin_tagged.emplace_back(twin_out.packets[i].burst_tag,
                             twin_out.packets[i].session_id);
  std::sort(twin_tagged.begin(), twin_tagged.end());
  EXPECT_EQ(tagged, twin_tagged);
  expect_per_session_order(twin_out, "shard-hook twin");

  // reset_replay_windows makes the identical burst fresh again — the
  // contract the bench relies on for repeatable timing.
  rig.server.reset_replay_windows();
  VpnServer::OpenBatch again;
  rig.server.open_batch(frames, 0, again);
  EXPECT_EQ(again.complete, 24u);
  EXPECT_EQ(again.rejected, 0u);
}

// ---- AdaptiveReshardController ------------------------------------------

ReshardPolicy test_policy() {
  ReshardPolicy policy;
  policy.min_shards = 1;
  policy.max_shards = 8;
  policy.shard_capacity = 100;  // load units per interval per shard
  policy.ewma_alpha = 0.5;
  policy.grow_above = 0.85;
  policy.shrink_below = 0.35;
  policy.cooldown_intervals = 2;
  return policy;
}

TEST(ReshardController, SteadyLoadNeverOscillates) {
  // Any steady offered load settles on one shard count and stays
  // there: the hysteresis band plus the projection guards make the
  // decision a fixed point.
  for (double load : {10.0, 60.0, 90.0, 150.0, 340.0, 700.0, 2000.0}) {
    AdaptiveReshardController ctl(test_policy(), 1);
    for (int i = 0; i < 30; ++i) ctl.observe(load);
    std::size_t settled = ctl.shards();
    std::uint64_t decisions = ctl.grow_decisions() + ctl.shrink_decisions();
    for (int i = 0; i < 50; ++i) EXPECT_EQ(ctl.observe(load), settled) << load;
    EXPECT_EQ(ctl.grow_decisions() + ctl.shrink_decisions(), decisions)
        << "controller kept resharding under steady load " << load;
  }
}

TEST(ReshardController, GrowsUnderRisingLoadAndShrinksBack) {
  AdaptiveReshardController ctl(test_policy(), 1);
  for (int i = 0; i < 10; ++i) ctl.observe(40);
  EXPECT_EQ(ctl.shards(), 1u);
  for (int i = 0; i < 20; ++i) ctl.observe(300);
  EXPECT_EQ(ctl.shards(), 4u);  // 300/100: 4 shards sit inside the band
  for (int i = 0; i < 20; ++i) ctl.observe(40);
  EXPECT_EQ(ctl.shards(), 1u);
  EXPECT_GE(ctl.grow_decisions(), 2u);
  EXPECT_GE(ctl.shrink_decisions(), 2u);
}

TEST(ReshardController, CooldownSpacesDecisions) {
  ReshardPolicy policy = test_policy();
  policy.cooldown_intervals = 3;
  AdaptiveReshardController ctl(policy, 1);
  // A huge step of load: the controller may only double every
  // cooldown+1 observations, not race straight to max_shards.
  EXPECT_EQ(ctl.observe(5000), 2u);
  EXPECT_EQ(ctl.observe(5000), 2u);  // cooldown
  EXPECT_EQ(ctl.observe(5000), 2u);  // cooldown
  EXPECT_EQ(ctl.observe(5000), 2u);  // cooldown
  EXPECT_EQ(ctl.observe(5000), 4u);
}

TEST(ReshardController, RespectsBoundsAndValidatesPolicy) {
  ReshardPolicy policy = test_policy();
  policy.max_shards = 4;
  AdaptiveReshardController ctl(policy, 1);
  for (int i = 0; i < 40; ++i) ctl.observe(100000);
  EXPECT_EQ(ctl.shards(), 4u);
  for (int i = 0; i < 40; ++i) ctl.observe(0);
  EXPECT_EQ(ctl.shards(), 1u);

  ctl.note_applied(3);
  EXPECT_EQ(ctl.shards(), 3u);

  ReshardPolicy bad = test_policy();
  bad.shard_capacity = 0;
  EXPECT_THROW(AdaptiveReshardController{bad}, std::invalid_argument);
  bad = test_policy();
  bad.shrink_below = bad.grow_above;
  EXPECT_THROW(AdaptiveReshardController{bad}, std::invalid_argument);
  // A narrow band (shrink_below > grow_above / 2) would let the grow
  // projection guard veto growth forever under sustained overload.
  bad = test_policy();
  bad.grow_above = 0.6;
  bad.shrink_below = 0.5;
  EXPECT_THROW(AdaptiveReshardController{bad}, std::invalid_argument);
  bad = test_policy();
  bad.ewma_alpha = 1.5;
  EXPECT_THROW(AdaptiveReshardController{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace endbox::vpn
