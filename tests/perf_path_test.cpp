// Fast-path performance-contract tests: the zero-allocation guarantees
// of the WireBuffer seal/open path and of the pooled, batched enclave
// ingress -> Click -> egress loop, WireBuffer/PacketPool semantics, the
// seal_packet_wire frame format, and the FlowKey hash's collision
// behaviour. The allocation assertions use replaced global operator
// new/delete, so this suite owns its own binary.
#include <gtest/gtest.h>

#include <cstdlib>
#include <new>
#include <unordered_set>

#include "ca/authority.hpp"
#include "common/wire_buffer.hpp"
#include "endbox_world.hpp"
#include "net/packet.hpp"
#include "net/packet_pool.hpp"
#include "sgx/enclave.hpp"
#include "sgx/platform.hpp"
#include "sgx/quote.hpp"
#include "vpn/client.hpp"
#include "vpn/server.hpp"
#include "vpn/session_crypto.hpp"

// Every operator new in this binary routes through std::malloc below,
// so new/delete pairing is globally consistent; GCC's heuristic cannot
// see that once inlining crosses the replacement boundary and reports
// false mismatched-new-delete warnings.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace {
// Global allocation counter; bumped by every operator new in the
// binary. Tests snapshot it around a steady-state loop.
std::uint64_t g_allocations = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace endbox {
namespace {

vpn::SessionKeys test_keys() {
  Rng rng(77);
  return vpn::derive_vpn_keys(0xfeedface, rng.bytes(16), rng.bytes(16));
}

// ---- Zero-allocation guarantees -------------------------------------------

TEST(ZeroAlloc, SteadyStateSealOf1500BytePacketDoesNotAllocate) {
  auto keys = test_keys();
  Rng rng(5);
  Bytes payload = rng.bytes(1500);
  vpn::FragmentHeader frag{1, 1, 0, 1};
  WireBuffer out;

  // Warm-up sizes the buffer; afterwards reuse must be allocation-free.
  for (int i = 0; i < 4; ++i) {
    vpn::seal_data_body(keys, frag, payload, rng, out);
    ++frag.packet_id;
  }
  std::uint64_t before = g_allocations;
  for (int i = 0; i < 200; ++i) {
    vpn::seal_data_body(keys, frag, payload, rng, out);
    ++frag.packet_id;
  }
  EXPECT_EQ(g_allocations - before, 0u);
}

TEST(ZeroAlloc, SteadyStateOpenOf1500BytePacketDoesNotAllocate) {
  auto keys = test_keys();
  Rng rng(6);
  Bytes payload = rng.bytes(1500);
  vpn::FragmentHeader frag{9, 2, 0, 1};
  WireBuffer sealed;
  vpn::seal_data_body(keys, frag, payload, rng, sealed);
  Bytes sealed_template(sealed.view().begin(), sealed.view().end());

  // The body buffer cycles: assign from the template, move into open,
  // recover the (shrunk) payload buffer, repeat.
  Bytes body;
  int ok = 0;
  for (int i = 0; i < 4; ++i) {
    body.assign(sealed_template.begin(), sealed_template.end());
    auto opened = vpn::open_data_body(keys, std::move(body));
    ok += opened.ok();
    body = std::move(opened->payload);
  }
  std::uint64_t before = g_allocations;
  for (int i = 0; i < 200; ++i) {
    body.assign(sealed_template.begin(), sealed_template.end());
    auto opened = vpn::open_data_body(keys, std::move(body));
    ok += opened.ok();
    body = std::move(opened->payload);
  }
  EXPECT_EQ(g_allocations - before, 0u);
  EXPECT_EQ(ok, 204);
  EXPECT_EQ(body, payload);
}

TEST(ZeroAlloc, SteadyStateIntegrityOnlySealDoesNotAllocate) {
  auto keys = test_keys();
  Rng rng(7);
  Bytes payload = rng.bytes(1500);
  vpn::FragmentHeader frag{1, 1, 0, 1};
  WireBuffer out;
  for (int i = 0; i < 4; ++i) {
    vpn::seal_integrity_body(keys, frag, payload, out);
    ++frag.packet_id;
  }
  std::uint64_t before = g_allocations;
  for (int i = 0; i < 200; ++i) {
    vpn::seal_integrity_body(keys, frag, payload, out);
    ++frag.packet_id;
  }
  EXPECT_EQ(g_allocations - before, 0u);
}

// ---- WireBuffer semantics ---------------------------------------------------

TEST(WireBufferTest, AppendPrependViewTake) {
  WireBuffer buf(8);
  buf.append(to_bytes("payload"));
  buf.prepend(to_bytes("hdr:"));
  EXPECT_EQ(buf.size(), 11u);
  EXPECT_EQ(buf.take(), to_bytes("hdr:payload"));
}

TEST(WireBufferTest, PrependBeyondHeadroomThrows) {
  WireBuffer buf(4);
  EXPECT_THROW(buf.prepend(5), std::logic_error);
}

TEST(WireBufferTest, ResetRetainsCapacityAcrossReuse) {
  WireBuffer buf(16);
  buf.reset(16);
  buf.append(512);
  const std::uint8_t* stable = buf.data();
  for (int i = 0; i < 10; ++i) {
    buf.reset(16);
    buf.append(512);
    EXPECT_EQ(buf.data(), stable) << "reuse reallocated on iteration " << i;
  }
}

TEST(WireBufferTest, AppendReturnsWritableRegionAtTail) {
  WireBuffer buf(2);
  std::uint8_t* a = buf.append(3);
  a[0] = 'a'; a[1] = 'b'; a[2] = 'c';
  buf.append_u8('d');
  EXPECT_EQ(buf.view().size(), 4u);
  EXPECT_EQ(buf.view()[3], 'd');
}

// ---- FlowKey hash collision spread ------------------------------------------

TEST(FlowKeyHash, SpreadsAdversarialPortGrid) {
  // 64x64 grid of (src_port, dst_port): the old h*31 combine compressed
  // this into ~2k consecutive values, guaranteeing mass collisions in
  // any power-of-two table. The splitmix64 combine should fill buckets
  // like a random function (~63% distinct at load factor 1).
  std::hash<net::FlowKey> h;
  std::unordered_set<std::size_t> buckets;
  net::FlowKey key;
  key.src = net::Ipv4(10, 8, 0, 2);
  key.dst = net::Ipv4(10, 0, 0, 1);
  key.proto = net::IpProto::Udp;
  for (std::uint16_t s = 0; s < 64; ++s) {
    for (std::uint16_t d = 0; d < 64; ++d) {
      key.src_port = static_cast<std::uint16_t>(40000 + s);
      key.dst_port = static_cast<std::uint16_t>(5000 + d);
      buckets.insert(h(key) & 4095);
    }
  }
  EXPECT_GT(buckets.size(), 2300u);  // random expectation ~2589 of 4096
}

TEST(FlowKeyHash, EqualKeysHashEqualDistinctKeysMostlyDiffer) {
  std::hash<net::FlowKey> h;
  net::Packet p = net::Packet::udp(net::Ipv4(1, 2, 3, 4), net::Ipv4(5, 6, 7, 8),
                                   1234, 80, {});
  EXPECT_EQ(h(net::FlowKey::of(p)), h(net::FlowKey::of(p)));
  // Flipping one bit of one field must change the hash (with
  // overwhelming probability for a 64-bit mix; fixed inputs here, so
  // deterministic).
  net::FlowKey a = net::FlowKey::of(p);
  net::FlowKey b = a;
  b.dst_port ^= 1;
  EXPECT_NE(h(a), h(b));
}

// ---- seal_packet_wire frame format ------------------------------------------

struct WireFixture : ::testing::Test {
  Rng rng{31};
  sim::Clock clock;
  sgx::AttestationService ias{rng};
  ca::CertificateAuthority authority{rng, ias};
  sgx::SgxPlatform platform{"client-1", rng, clock};
  sgx::Enclave enclave{platform, "endbox-v1", sgx::SgxMode::Hardware};
  crypto::RsaKeyPair enclave_key = crypto::rsa_generate(rng);
  bool registrations_done = [this] {
    ias.register_platform("client-1", platform.attestation_key().pub);
    authority.allow_measurement(enclave.measurement());
    return true;
  }();
  vpn::VpnServer server{rng, authority.public_key(), vpn::VpnServerConfig{}};
  ca::Certificate certificate;

  WireFixture() {
    sgx::QuotingEnclave qe(platform);
    auto quote = qe.quote(enclave.create_report(
        sgx::bind_report_data(enclave_key.pub.serialize())));
    auto response = authority.provision(quote->serialize(), enclave_key.pub);
    certificate = response->certificate;
  }

  vpn::VpnClientSession connect(vpn::VpnClientConfig config = {}) {
    vpn::VpnClientSession client(rng, certificate, enclave_key,
                                 server.public_key(), config);
    auto init = client.create_handshake_init();
    auto event = server.handle(init.serialize(), clock.now());
    EXPECT_TRUE(event.ok()) << event.error();
    auto& done = std::get<vpn::VpnServer::HandshakeDone>(*event);
    auto reply = vpn::WireMessage::parse(done.reply_wire);
    EXPECT_TRUE(reply.ok());
    auto status = client.process_handshake_reply(*reply);
    EXPECT_TRUE(status.ok()) << status.error();
    return client;
  }
};

TEST_F(WireFixture, ClientSealPacketWireFramesReachTheServer) {
  auto client = connect();
  Rng payload_rng(9);
  Bytes ip_packet = payload_rng.bytes(1400);
  std::vector<Bytes> frames;
  client.seal_packet_wire(ip_packet, frames);
  ASSERT_EQ(frames.size(), 1u);

  auto event = server.handle(frames[0], clock.now());
  ASSERT_TRUE(event.ok()) << event.error();
  auto* in = std::get_if<vpn::VpnServer::PacketIn>(&*event);
  ASSERT_NE(in, nullptr);
  EXPECT_EQ(in->ip_packet, ip_packet);
  EXPECT_TRUE(in->was_encrypted);
}

TEST_F(WireFixture, SealPacketWireFragmentsAtTheMtuAndReassembles) {
  vpn::VpnClientConfig config;
  config.mtu = 1000;
  auto client = connect(config);
  Rng payload_rng(10);
  Bytes ip_packet = payload_rng.bytes(2500);
  std::vector<Bytes> frames;
  client.seal_packet_wire(ip_packet, frames);
  ASSERT_EQ(frames.size(), 3u);

  Bytes delivered;
  for (const auto& frame : frames) {
    auto event = server.handle(frame, clock.now());
    ASSERT_TRUE(event.ok()) << event.error();
    if (auto* in = std::get_if<vpn::VpnServer::PacketIn>(&*event))
      delivered = in->ip_packet;
  }
  EXPECT_EQ(delivered, ip_packet);
}

TEST_F(WireFixture, DegenerateZeroMtuStillDeliversEveryByte) {
  vpn::VpnClientConfig config;
  config.mtu = 0;  // clamped to 1 byte per fragment, as fragment_payload does
  auto client = connect(config);
  Bytes ip_packet = to_bytes("abc");
  std::vector<Bytes> frames;
  client.seal_packet_wire(ip_packet, frames);
  ASSERT_EQ(frames.size(), 3u);
  Bytes delivered;
  for (const auto& frame : frames) {
    auto event = server.handle(frame, clock.now());
    ASSERT_TRUE(event.ok()) << event.error();
    if (auto* in = std::get_if<vpn::VpnServer::PacketIn>(&*event))
      delivered = in->ip_packet;
  }
  EXPECT_EQ(delivered, ip_packet);
}

TEST_F(WireFixture, SealPacketWireFrameParsesAsAWireMessage) {
  auto client = connect();
  Bytes ip_packet = to_bytes("ip-bytes");
  std::vector<Bytes> frames;
  client.seal_packet_wire(ip_packet, frames);
  ASSERT_EQ(frames.size(), 1u);
  auto msg = vpn::WireMessage::parse(frames[0]);
  ASSERT_TRUE(msg.ok()) << msg.error();
  EXPECT_EQ(msg->type, vpn::MsgType::Data);
  EXPECT_EQ(msg->session_id, client.session_id());
}

TEST_F(WireFixture, SealPacketWireReusesFrameCapacityAcrossCalls) {
  auto client = connect();
  Rng payload_rng(11);
  Bytes ip_packet = payload_rng.bytes(1500);
  std::vector<Bytes> frames;
  for (int i = 0; i < 4; ++i) client.seal_packet_wire(ip_packet, frames);
  std::uint64_t before = g_allocations;
  for (int i = 0; i < 100; ++i) client.seal_packet_wire(ip_packet, frames);
  EXPECT_EQ(g_allocations - before, 0u);
}

TEST_F(WireFixture, ServerSealPacketWireOpensAtTheClient) {
  auto client = connect();
  Rng payload_rng(12);
  Bytes ip_packet = payload_rng.bytes(800);
  std::vector<Bytes> frames;
  server.seal_packet_wire(client.session_id(), ip_packet, frames);
  ASSERT_EQ(frames.size(), 1u);
  auto msg = vpn::WireMessage::parse(frames[0]);
  ASSERT_TRUE(msg.ok()) << msg.error();
  auto opened = client.open_data(*msg);
  ASSERT_TRUE(opened.ok()) << opened.error();
  ASSERT_TRUE(opened->has_value());
  EXPECT_EQ(**opened, ip_packet);
}

TEST_F(WireFixture, IntegrityOnlySealPacketWireUsesTheIntegrityType) {
  vpn::VpnClientConfig config;
  config.encrypt_data = false;
  auto client = connect(config);
  Bytes ip_packet = to_bytes("plaintext-ip");
  std::vector<Bytes> frames;
  client.seal_packet_wire(ip_packet, frames);
  ASSERT_EQ(frames.size(), 1u);
  auto msg = vpn::WireMessage::parse(frames[0]);
  ASSERT_TRUE(msg.ok()) << msg.error();
  EXPECT_EQ(msg->type, vpn::MsgType::DataIntegrityOnly);
}

// ---- PacketPool -------------------------------------------------------------

TEST(PacketPoolTest, RecyclesPayloadCapacity) {
  net::PacketPool pool(8);
  net::Packet p = pool.acquire();
  EXPECT_EQ(pool.misses(), 1u);  // cold pool
  p.payload.assign(1400, 'x');
  const std::uint8_t* buffer = p.payload.data();
  pool.release(std::move(p));
  ASSERT_EQ(pool.pooled(), 1u);

  net::Packet q = pool.acquire();
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_TRUE(q.payload.empty());
  EXPECT_GE(q.payload.capacity(), 1400u);
  q.payload.assign(1400, 'y');
  EXPECT_EQ(q.payload.data(), buffer) << "capacity was not recycled";
}

TEST(PacketPoolTest, BoundsTheFreeList) {
  net::PacketPool pool(2);
  for (int i = 0; i < 5; ++i) {
    Bytes b(64, 'x');
    pool.release_bytes(std::move(b));
  }
  EXPECT_EQ(pool.pooled(), 2u);
  // Empty buffers are not worth pooling.
  pool.acquire_bytes();
  pool.acquire_bytes();
  pool.release_bytes(Bytes{});
  EXPECT_EQ(pool.pooled(), 0u);
}

TEST(PacketPoolTest, ParseIntoReusesPooledBuffer) {
  net::PacketPool pool;
  Rng rng(21);
  net::Packet original = net::Packet::udp(net::Ipv4(1, 2, 3, 4), net::Ipv4(5, 6, 7, 8),
                                          1234, 80, rng.bytes(900));
  original.ip_id = 7;
  Bytes wire = original.serialize();

  net::Packet scratch = pool.acquire();
  scratch.payload.reserve(1000);
  scratch.dropped = true;  // stale metadata must be reset
  scratch.flow_hint = 99;
  scratch.decrypted_payload = to_bytes("stale");
  const std::uint8_t* buffer = scratch.payload.data();

  ASSERT_TRUE(net::Packet::parse_into(wire, scratch).ok());
  EXPECT_EQ(scratch.payload, original.payload);
  EXPECT_EQ(scratch.payload.data(), buffer);
  EXPECT_EQ(scratch.ip_id, 7);
  EXPECT_FALSE(scratch.dropped);
  EXPECT_EQ(scratch.flow_hint, 0u);
  EXPECT_TRUE(scratch.decrypted_payload.empty());
  EXPECT_EQ(scratch.serialize(), wire);
}

// ---- Zero-allocation enclave loop (ingress -> Click -> egress) -------------

// The representative middlebox chain of the acceptance criteria:
// CheckIPHeader -> IPFilter -> IDSMatcher -> ToDevice, with reject
// ports wired so every packet reaches a verdict.
constexpr const char* kChainConfig =
    "from_device :: FromDevice;"
    "check :: CheckIPHeader;"
    "fw :: IPFilter(allow src 10.8.0.0/16, drop all);"
    "ids :: IDSMatcher(RULESET community);"
    "to_device :: ToDevice;"
    "from_device -> check -> fw -> ids -> to_device;"
    "check[1] -> [1]to_device; fw[1] -> [1]to_device; ids[1] -> [1]to_device;";

struct EnclaveLoopFixture : ::testing::Test {
  testing::World world;
  EndBoxClient* client = nullptr;

  EnclaveLoopFixture() {
    auto bundle = world.server.publish_config(2, kChainConfig, true, 0, 0);
    if (!bundle.ok()) throw std::runtime_error(bundle.error());
    client = &world.add_client(*bundle);
  }

  /// Fills `batch` with `n` benign packets drawn from the enclave pool.
  void fill_batch(click::PacketBatch& batch, std::size_t n, std::size_t payload) {
    net::PacketPool& pool = client->enclave().packet_pool();
    for (std::size_t k = 0; k < n; ++k) {
      net::Packet packet = pool.acquire();
      packet.src = net::Ipv4(10, 8, 0, 2);
      packet.dst = net::Ipv4(10, 0, 0, 1);
      packet.proto = net::IpProto::Udp;
      packet.src_port = 40000;
      packet.dst_port = 5001;
      packet.ttl = 64;
      packet.payload.assign(payload, 'x');
      batch.push_back(std::move(packet));
    }
  }
};

TEST_F(EnclaveLoopFixture, SteadyStateEgressBatchLoopDoesNotAllocate) {
  auto& enclave = client->enclave();
  click::PacketBatch batch;
  EgressBatch out;

  constexpr std::size_t kBurst = 32;
  for (int warm = 0; warm < 6; ++warm) {
    fill_batch(batch, kBurst, 1400);
    ASSERT_TRUE(enclave.ecall_process_egress_batch(std::move(batch), out).ok());
    batch.clear();
    ASSERT_EQ(out.accepted, kBurst);
  }

  std::uint64_t before = g_allocations;
  for (int iter = 0; iter < 50; ++iter) {
    fill_batch(batch, kBurst, 1400);
    ASSERT_TRUE(enclave.ecall_process_egress_batch(std::move(batch), out).ok());
    batch.clear();
    ASSERT_EQ(out.accepted, kBurst);
    ASSERT_EQ(out.frame_count, kBurst);  // 1428B packets fit one frame
  }
  EXPECT_EQ(g_allocations - before, 0u)
      << "the pooled egress burst (acquire -> Click chain -> seal) allocated";
}

TEST_F(EnclaveLoopFixture, SteadyStateIngressBatchLoopDoesNotAllocate) {
  auto& enclave = client->enclave();
  std::uint32_t session = enclave.session()->session_id();
  Rng payload_rng(77);
  Bytes ip_packet =
      net::Packet::udp(net::Ipv4(10, 8, 0, 9), net::Ipv4(10, 0, 0, 1), 4000, 5001,
                       payload_rng.bytes(1400))
          .serialize();

  constexpr std::size_t kBurst = 32;
  std::vector<Bytes> wires;
  IngressBatch in;
  auto run_burst = [&] {
    // Fresh frames each round (replay protection forbids resending),
    // written through the server session's scratch into reused slots.
    std::size_t n = 0;
    for (std::size_t k = 0; k < kBurst; ++k)
      n = world.server.vpn().seal_packet_wire_at(session, ip_packet, wires, n);
    ASSERT_EQ(n, kBurst);
    ASSERT_TRUE(enclave
                    .ecall_process_ingress_batch(
                        std::span<const Bytes>(wires.data(), n), in)
                    .ok());
    ASSERT_EQ(in.accepted, kBurst);
    // Hand the delivered packets back to the pool, closing the loop.
    for (net::Packet& packet : in.packets)
      enclave.packet_pool().release(std::move(packet));
    in.packets.clear();
  };

  for (int warm = 0; warm < 6; ++warm) run_burst();
  std::uint64_t before = g_allocations;
  for (int iter = 0; iter < 50; ++iter) run_burst();
  EXPECT_EQ(g_allocations - before, 0u)
      << "the pooled ingress burst (open -> parse -> Click chain) allocated";
}

struct FragmentedLoopFixture : ::testing::Test {
  // MTU 512 on both tunnel directions: a 1400-byte payload fragments
  // into 3 wire frames each way, exercising the Reassembler (pooled
  // part buffers, node cache, intrusive FIFO) on every packet.
  testing::World world = [] {
    testing::WorldOptions opts;
    opts.vpn_config.mtu = 512;
    opts.client_options.mtu = 512;
    return testing::World(opts);
  }();
  EndBoxClient* client = nullptr;

  FragmentedLoopFixture() {
    auto bundle = world.server.publish_config(2, kChainConfig, true, 0, 0);
    if (!bundle.ok()) throw std::runtime_error(bundle.error());
    EndBoxClientOptions options;
    options.mtu = 512;
    client = &world.add_client(*bundle, options);
  }
};

TEST_F(FragmentedLoopFixture, SteadyStateFragmentedEgressBurstDoesNotAllocate) {
  auto& enclave = client->enclave();
  click::PacketBatch batch;
  EgressBatch out;
  constexpr std::size_t kBurst = 10;

  auto fill = [&] {
    net::PacketPool& pool = enclave.packet_pool();
    for (std::size_t k = 0; k < kBurst; ++k) {
      net::Packet packet = pool.acquire();
      packet.src = net::Ipv4(10, 8, 0, 2);
      packet.dst = net::Ipv4(10, 0, 0, 1);
      packet.proto = net::IpProto::Udp;
      packet.src_port = 40000;
      packet.dst_port = 5001;
      packet.payload.assign(1400, 'x');
      batch.push_back(std::move(packet));
    }
  };
  for (int warm = 0; warm < 6; ++warm) {
    fill();
    ASSERT_TRUE(enclave.ecall_process_egress_batch(std::move(batch), out).ok());
    batch.clear();
    ASSERT_EQ(out.accepted, kBurst);
    ASSERT_EQ(out.frame_count, kBurst * 3);  // 1428B packets, MTU 512
  }
  std::uint64_t before = g_allocations;
  for (int iter = 0; iter < 50; ++iter) {
    fill();
    ASSERT_TRUE(enclave.ecall_process_egress_batch(std::move(batch), out).ok());
    batch.clear();
    ASSERT_EQ(out.frame_count, kBurst * 3);
  }
  EXPECT_EQ(g_allocations - before, 0u)
      << "the fragmented egress burst (Click -> 3-frame seal) allocated";
}

TEST_F(FragmentedLoopFixture, SteadyStateFragmentedIngressRoundTripDoesNotAllocate) {
  auto& enclave = client->enclave();
  std::uint32_t session = enclave.session()->session_id();
  Rng payload_rng(78);
  Bytes ip_packet =
      net::Packet::udp(net::Ipv4(10, 8, 0, 9), net::Ipv4(10, 0, 0, 1), 4000, 5001,
                       payload_rng.bytes(1400))
          .serialize();

  constexpr std::size_t kPackets = 10;
  std::vector<Bytes> wires;
  IngressBatch in;
  auto run_burst = [&] {
    std::size_t n = 0;
    for (std::size_t k = 0; k < kPackets; ++k)
      n = world.server.vpn().seal_packet_wire_at(session, ip_packet, wires, n);
    ASSERT_EQ(n, kPackets * 3);  // server MTU 512 -> 3 frames per packet
    ASSERT_TRUE(enclave
                    .ecall_process_ingress_batch(
                        std::span<const Bytes>(wires.data(), n), in)
                    .ok());
    ASSERT_EQ(in.complete, kPackets);
    ASSERT_EQ(in.accepted, kPackets);
    for (net::Packet& packet : in.packets)
      enclave.packet_pool().release(std::move(packet));
    in.packets.clear();
  };

  for (int warm = 0; warm < 6; ++warm) run_burst();
  std::uint64_t before = g_allocations;
  for (int iter = 0; iter < 50; ++iter) run_burst();
  EXPECT_EQ(g_allocations - before, 0u)
      << "the fragmented ingress burst (open x3 -> reassemble -> Click) allocated";
}

TEST_F(EnclaveLoopFixture, SteadyStatePingPathDoesNotAllocate) {
  auto& enclave = client->enclave();
  Bytes frame;
  for (int warm = 0; warm < 4; ++warm)
    ASSERT_TRUE(enclave.ecall_create_ping_wire(frame).ok());
  std::uint64_t before = g_allocations;
  for (int iter = 0; iter < 100; ++iter)
    ASSERT_TRUE(enclave.ecall_create_ping_wire(frame).ok());
  EXPECT_EQ(g_allocations - before, 0u) << "the control path allocated";
  // The scratch-built frame is a well-formed authenticated ping.
  auto msg = vpn::WireMessage::parse(frame);
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(msg->type, vpn::MsgType::Ping);
  auto handled = world.server.handle_wire(frame, world.clock.now());
  ASSERT_TRUE(handled.ok()) << handled.error();
  EXPECT_TRUE(std::holds_alternative<vpn::VpnServer::PingIn>(handled->event));
}

TEST_F(EnclaveLoopFixture, BatchVerdictsMatchPerPacketPath) {
  // Same traffic mix through ecall_process_egress and the batch ecall:
  // identical accept/reject counts and identical sealed frame count.
  auto& enclave = client->enclave();
  auto make_packet = [&](std::size_t k) {
    net::Packet packet = world.benign_packet(64 + 16 * k);
    if (k % 3 == 1) packet.src = net::Ipv4(203, 0, 113, 7);  // outside 10.8/16
    return packet;
  };
  std::uint32_t single_accepted = 0, single_rejected = 0;
  std::size_t single_frames = 0;
  for (std::size_t k = 0; k < 30; ++k) {
    auto egress = enclave.ecall_process_egress(make_packet(k));
    ASSERT_TRUE(egress.ok()) << egress.error();
    if (egress->accepted) {
      ++single_accepted;
      single_frames += egress->wire.size();
    } else {
      ++single_rejected;
    }
  }

  click::PacketBatch batch;
  for (std::size_t k = 0; k < 30; ++k) batch.push_back(make_packet(k));
  EgressBatch out;
  ASSERT_TRUE(enclave.ecall_process_egress_batch(std::move(batch), out).ok());
  EXPECT_EQ(out.accepted, single_accepted);
  EXPECT_EQ(out.rejected, single_rejected);
  EXPECT_EQ(out.frame_count, single_frames);
  EXPECT_GT(out.rejected, 0u);
}

// ---- Packet::serialize_into -------------------------------------------------

TEST(SerializeInto, MatchesSerializeAndReusesCapacity) {
  Rng rng(13);
  net::Packet udp = net::Packet::udp(net::Ipv4(1, 2, 3, 4), net::Ipv4(5, 6, 7, 8),
                                     1234, 80, rng.bytes(512));
  net::Packet tcp = net::Packet::tcp(net::Ipv4(9, 9, 9, 9), net::Ipv4(8, 8, 8, 8),
                                     4321, 443, 7, 9, 0x12, rng.bytes(77));
  net::Packet icmp =
      net::Packet::icmp_echo_request(net::Ipv4(1, 1, 1, 1), net::Ipv4(2, 2, 2, 2),
                                     5, 6, rng.bytes(32));
  Bytes scratch;
  for (const auto* p : {&udp, &tcp, &icmp}) {
    p->serialize_into(scratch);
    EXPECT_EQ(scratch, p->serialize());
    EXPECT_EQ(scratch.size(), p->wire_size());
    auto parsed = net::Packet::parse(scratch);
    ASSERT_TRUE(parsed.ok()) << parsed.error();
    EXPECT_EQ(parsed->payload, p->payload);
  }

  // Steady-state reuse at a fixed size never reallocates.
  for (int i = 0; i < 2; ++i) udp.serialize_into(scratch);
  std::uint64_t before = g_allocations;
  for (int i = 0; i < 100; ++i) udp.serialize_into(scratch);
  EXPECT_EQ(g_allocations - before, 0u);
}

}  // namespace
}  // namespace endbox
