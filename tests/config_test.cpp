// Tests for config bundles (signing, encryption, replay protection)
// and the config file server.
#include <gtest/gtest.h>

#include "config/bundle.hpp"
#include "config/file_server.hpp"

namespace endbox::config {
namespace {

struct Fixture : ::testing::Test {
  Rng rng{41};
  crypto::RsaKeyPair ca_key = crypto::rsa_generate(rng);
  std::uint64_t config_key = 0x1234567890ULL;
  std::string click_text = "from_device :: FromDevice; to_device :: ToDevice;"
                           "from_device -> to_device;";
};

TEST_F(Fixture, SignedPlaintextRoundTrip) {
  auto bundle = make_bundle(3, click_text, ca_key, config_key, /*encrypt=*/false);
  EXPECT_FALSE(bundle.encrypted);
  auto text = open_bundle(bundle, ca_key.pub, config_key);
  ASSERT_TRUE(text.ok()) << text.error();
  EXPECT_EQ(*text, click_text);
}

TEST_F(Fixture, EncryptedRoundTrip) {
  auto bundle = make_bundle(3, click_text, ca_key, config_key, /*encrypt=*/true);
  EXPECT_TRUE(bundle.encrypted);
  // Ciphertext must not contain the plaintext.
  std::string payload_str(bundle.payload.begin(), bundle.payload.end());
  EXPECT_EQ(payload_str.find("FromDevice"), std::string::npos);
  auto text = open_bundle(bundle, ca_key.pub, config_key);
  ASSERT_TRUE(text.ok()) << text.error();
  EXPECT_EQ(*text, click_text);
}

TEST_F(Fixture, WrongConfigKeyFails) {
  auto bundle = make_bundle(3, click_text, ca_key, config_key, true);
  auto text = open_bundle(bundle, ca_key.pub, config_key + 1);
  // Decryption with the wrong key garbles the embedded version, which
  // the version check catches.
  EXPECT_FALSE(text.ok());
}

TEST_F(Fixture, TamperedPayloadFailsSignature) {
  auto bundle = make_bundle(3, click_text, ca_key, config_key, false);
  bundle.payload[10] ^= 1;
  EXPECT_FALSE(open_bundle(bundle, ca_key.pub, config_key).ok());
}

TEST_F(Fixture, WrongCaKeyFails) {
  auto bundle = make_bundle(3, click_text, ca_key, config_key, false);
  auto other = crypto::rsa_generate(rng);
  EXPECT_FALSE(open_bundle(bundle, other.pub, config_key).ok());
}

TEST_F(Fixture, VersionRelabelDetected) {
  // Replay attack: take the v3 bundle, relabel it v5 and re-present.
  // The outer version is signed, so the signature breaks; even with a
  // forged outer structure the inner version would mismatch.
  auto bundle = make_bundle(3, click_text, ca_key, config_key, true);
  bundle.version = 5;
  EXPECT_FALSE(open_bundle(bundle, ca_key.pub, config_key).ok());
}

TEST_F(Fixture, SerializationRoundTrip) {
  auto bundle = make_bundle(7, click_text, ca_key, config_key, true);
  auto back = ConfigBundle::deserialize(bundle.serialize());
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_EQ(back->version, 7u);
  EXPECT_EQ(back->payload, bundle.payload);
  auto text = open_bundle(*back, ca_key.pub, config_key);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, click_text);
}

TEST_F(Fixture, DeserializeRejectsGarbage) {
  EXPECT_FALSE(ConfigBundle::deserialize(Bytes{1, 2, 3}).ok());
  auto bundle = make_bundle(1, click_text, ca_key, config_key, false);
  auto wire = bundle.serialize();
  wire.push_back(0);
  EXPECT_FALSE(ConfigBundle::deserialize(wire).ok());
}

TEST_F(Fixture, MinimalConfigSizesMatchPaper) {
  // Table II uses minimal config files of 42 and 59 bytes — check our
  // bundle machinery handles tiny configs.
  std::string minimal = "a :: Counter; b :: Discard; a -> b;";  // < 42 bytes
  auto bundle = make_bundle(1, minimal, ca_key, config_key, true);
  auto text = open_bundle(bundle, ca_key.pub, config_key);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, minimal);
}

TEST_F(Fixture, FileServerPublishFetch) {
  ConfigFileServer server;
  EXPECT_EQ(server.latest_version(), 0u);
  ASSERT_TRUE(server.publish(make_bundle(1, click_text, ca_key, config_key, false)).ok());
  ASSERT_TRUE(server.publish(make_bundle(2, click_text, ca_key, config_key, false)).ok());
  EXPECT_EQ(server.latest_version(), 2u);
  EXPECT_EQ(server.stored(), 2u);
  auto v1 = server.fetch(1);
  ASSERT_TRUE(v1.has_value());
  EXPECT_EQ(v1->version, 1u);
  EXPECT_FALSE(server.fetch(9).has_value());
  EXPECT_EQ(server.fetches(), 2u);
}

TEST_F(Fixture, FileServerEnforcesMonotonicVersions) {
  ConfigFileServer server;
  ASSERT_TRUE(server.publish(make_bundle(5, click_text, ca_key, config_key, false)).ok());
  EXPECT_FALSE(server.publish(make_bundle(5, click_text, ca_key, config_key, false)).ok());
  EXPECT_FALSE(server.publish(make_bundle(4, click_text, ca_key, config_key, false)).ok());
  EXPECT_TRUE(server.publish(make_bundle(6, click_text, ca_key, config_key, false)).ok());
}

}  // namespace
}  // namespace endbox::config
