// Unit tests for the discrete-event core: clock, event queue, CPU
// model, timer wheel.
#include <gtest/gtest.h>

#include <array>
#include <map>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "sim/clock.hpp"
#include "sim/cpu.hpp"
#include "sim/event_queue.hpp"
#include "sim/perf_model.hpp"
#include "sim/timer_wheel.hpp"

namespace endbox::sim {
namespace {

TEST(Clock, StartsAtZeroAndAdvances) {
  Clock c;
  EXPECT_EQ(c.now(), 0u);
  c.advance_to(5 * kSecond);
  EXPECT_EQ(c.now(), 5 * kSecond);
}

TEST(Clock, RejectsBackwardsTime) {
  Clock c;
  c.advance_to(10);
  EXPECT_THROW(c.advance_to(5), std::logic_error);
}

TEST(TimeUnits, Conversions) {
  EXPECT_EQ(from_millis(1.5), 1500 * kMicrosecond);
  EXPECT_DOUBLE_EQ(to_seconds(2 * kSecond), 2.0);
  EXPECT_DOUBLE_EQ(to_millis(kSecond), 1000.0);
}

TEST(EventQueue, RunsInTimeOrder) {
  Clock clock;
  EventQueue q(clock);
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  q.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(clock.now(), 100u);
}

TEST(EventQueue, EqualTimesRunInScheduleOrder) {
  Clock clock;
  EventQueue q(clock);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) q.schedule_at(42, [&order, i] { order.push_back(i); });
  q.run_until(42);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduleAfterUsesNow) {
  Clock clock;
  EventQueue q(clock);
  Time fired_at = 0;
  q.schedule_at(100, [&] {
    q.schedule_after(50, [&] { fired_at = clock.now(); });
  });
  q.run_until(1000);
  EXPECT_EQ(fired_at, 150u);
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  Clock clock;
  EventQueue q(clock);
  bool late_ran = false;
  q.schedule_at(10, [] {});
  q.schedule_at(200, [&] { late_ran = true; });
  std::size_t n = q.run_until(100);
  EXPECT_EQ(n, 1u);
  EXPECT_FALSE(late_ran);
  EXPECT_EQ(clock.now(), 100u);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, CancelPreventsExecution) {
  Clock clock;
  EventQueue q(clock);
  bool ran = false;
  auto id = q.schedule_at(10, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // second cancel is a no-op
  q.run_until(100);
  EXPECT_FALSE(ran);
}

TEST(EventQueue, EventsScheduledInPastRunNow) {
  Clock clock;
  EventQueue q(clock);
  clock.advance_to(500);
  Time fired = 0;
  q.schedule_at(100, [&] { fired = clock.now(); });
  q.run_until(1000);
  EXPECT_EQ(fired, 500u);
}

TEST(EventQueue, NestedSchedulingDrains) {
  Clock clock;
  EventQueue q(clock);
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 10) q.schedule_after(10, chain);
  };
  q.schedule_at(0, chain);
  q.run_until(kSecond);
  EXPECT_EQ(count, 10);
  EXPECT_TRUE(q.empty());
}

// ---- CPU model -----------------------------------------------------------

TEST(Cpu, SingleCoreSerialisesWork) {
  CpuAccount cpu(1, 1e9);  // 1 GHz: 1 cycle = 1 ns
  Time done1 = cpu.charge(0, 1000);
  Time done2 = cpu.charge(0, 1000);
  EXPECT_EQ(done1, 1000u);
  EXPECT_EQ(done2, 2000u);  // queued behind the first
}

TEST(Cpu, MultiCoreRunsInParallel) {
  CpuAccount cpu(4, 1e9);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(cpu.charge(0, 1000), 1000u);
  // Fifth item must queue behind one of the four busy cores.
  EXPECT_EQ(cpu.charge(0, 1000), 2000u);
}

TEST(Cpu, IdleCpuStartsWorkAtNow) {
  CpuAccount cpu(2, 2e9);  // 2 GHz: 1000 cycles = 500 ns
  EXPECT_EQ(cpu.charge(10'000, 1000), 10'500u);
}

TEST(Cpu, PeekDoesNotMutate) {
  CpuAccount cpu(1, 1e9);
  EXPECT_EQ(cpu.peek_completion(0, 500), 500u);
  EXPECT_EQ(cpu.peek_completion(0, 500), 500u);
  EXPECT_EQ(cpu.charge(0, 500), 500u);
}

TEST(Cpu, UtilisationTracksBusyTime) {
  CpuAccount cpu(2, 1e9);
  cpu.charge(0, 1000);  // 1000 ns on one of two cores
  // Over a 1000 ns window with 2 cores: 50% utilisation.
  EXPECT_NEAR(cpu.utilisation(0, 1000), 0.5, 1e-9);
}

TEST(Cpu, UtilisationCapsAtOne) {
  CpuAccount cpu(1, 1e9);
  cpu.charge(0, 10'000);
  EXPECT_DOUBLE_EQ(cpu.utilisation(0, 1000), 1.0);
}

TEST(Cpu, ResetClearsState) {
  CpuAccount cpu(1, 1e9);
  cpu.charge(0, 1000);
  cpu.reset();
  EXPECT_EQ(cpu.busy_core_ns(), 0.0);
  EXPECT_EQ(cpu.charge(0, 100), 100u);
}

TEST(Cpu, RejectsBadParameters) {
  EXPECT_THROW(CpuAccount(0, 1e9), std::invalid_argument);
  EXPECT_THROW(CpuAccount(1, 0), std::invalid_argument);
}

TEST(Cpu, ChargeParallelCompletesAtTheCriticalPath) {
  MultiCoreAccount cpu(4, 1e9);
  // Staging (1000) serialises first; the three shard jobs then run
  // concurrently, so the burst completes at staging + the slowest job.
  std::array<double, 3> jobs{500, 2000, 1000};
  std::array<sim::Time, 3> done{};
  sim::Time finished = cpu.charge_parallel(0, 1000, jobs, done);
  EXPECT_EQ(finished, 3000u);
  EXPECT_EQ(done[0], 1500u);
  EXPECT_EQ(done[1], 3000u);
  EXPECT_EQ(done[2], 2000u);
  // Every shard's cycles count as busy time — the honest part.
  EXPECT_NEAR(cpu.busy_core_ns(), 1000 + 500 + 2000 + 1000, 1e-9);
}

TEST(Cpu, ChargeParallelDegeneratesToSerialAtOneShard) {
  MultiCoreAccount a(4, 1e9), b(4, 1e9);
  std::array<double, 1> job{700};
  sim::Time parallel = a.charge_parallel(10, 300, job);
  sim::Time serial = b.charge(10, 1000);
  EXPECT_EQ(parallel, serial);
  EXPECT_NEAR(a.busy_core_ns(), b.busy_core_ns(), 1e-9);
}

TEST(Cpu, ChargeParallelHonoursPerJobEarliestStarts) {
  // A shard whose sessions are still busy from a previous burst holds
  // back only its own job; idle shards start right after staging.
  MultiCoreAccount cpu(4, 1e9);
  std::array<double, 2> jobs{1000, 1000};
  std::array<sim::Time, 2> earliest{0, 5000};
  std::array<sim::Time, 2> done{};
  sim::Time finished = cpu.charge_parallel(0, 500, jobs, done, earliest);
  EXPECT_EQ(done[0], 1500u);  // staging 500 then the job
  EXPECT_EQ(done[1], 6000u);  // held to its own earliest start
  EXPECT_EQ(finished, 6000u);
}

TEST(Cpu, ChargeParallelQueuesExcessJobsOnBusyCores) {
  // 2 cores, 4 equal shard jobs: two rounds, so the burst takes
  // staging + 2x the job length — the staging-thread/worker contention
  // the model must show when shards exceed cores.
  MultiCoreAccount cpu(2, 1e9);
  std::array<double, 4> jobs{1000, 1000, 1000, 1000};
  sim::Time finished = cpu.charge_parallel(0, 500, jobs);
  EXPECT_EQ(finished, 2500u);
  EXPECT_NEAR(cpu.busy_core_ns(), 4500.0, 1e-9);
}

TEST(Cpu, PerCoreBusyTimeSumsToTotal) {
  MultiCoreAccount cpu(3, 1e9);
  std::array<double, 3> jobs{300, 600, 900};
  cpu.charge_parallel(0, 100, jobs);
  cpu.charge(0, 250);
  double sum = 0;
  for (unsigned i = 0; i < cpu.cores(); ++i) sum += cpu.core_busy_ns(i);
  EXPECT_NEAR(sum, cpu.busy_core_ns(), 1e-9);
  EXPECT_GE(cpu.max_core_busy_ns(), cpu.busy_core_ns() / 3.0);
  cpu.reset();
  EXPECT_EQ(cpu.max_core_busy_ns(), 0.0);
}

TEST(Cpu, CountsChargedWorkItems) {
  CpuAccount cpu(2, 1e9);
  EXPECT_EQ(cpu.charges(), 0u);
  cpu.charge(0, 1000);
  cpu.charge(0, 1000);
  cpu.charge(0, 1000);
  EXPECT_EQ(cpu.charges(), 3u);
  // peek must not count.
  cpu.peek_completion(0, 1000);
  EXPECT_EQ(cpu.charges(), 3u);
  // Mean service time = busy core-ns / charges.
  EXPECT_NEAR(cpu.busy_core_ns() / static_cast<double>(cpu.charges()), 1000.0, 1e-9);
  cpu.reset();
  EXPECT_EQ(cpu.charges(), 0u);
}

// ---- Timer wheel ----------------------------------------------------------

TEST(TimerWheel, FiresAtExactDeadlineTick) {
  TimerWheel wheel(TimerWheel::Options{1});
  std::vector<std::uint64_t> fired;
  wheel.schedule(7, 100);
  EXPECT_EQ(wheel.size(), 1u);
  wheel.advance(99, [&](std::uint64_t c, Time) { fired.push_back(c); });
  EXPECT_TRUE(fired.empty());  // one tick early: must not fire
  wheel.advance(100, [&](std::uint64_t c, Time) { fired.push_back(c); });
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{7}));
  EXPECT_EQ(wheel.size(), 0u);
}

TEST(TimerWheel, DeadlineRoundsDownToTickResolution) {
  TimerWheel wheel(TimerWheel::Options{10});
  std::vector<std::uint64_t> fired;
  wheel.schedule(1, 95);  // tick 9
  wheel.advance(89, [&](std::uint64_t c, Time) { fired.push_back(c); });
  EXPECT_TRUE(fired.empty());
  wheel.advance(90, [&](std::uint64_t c, Time) { fired.push_back(c); });
  EXPECT_EQ(fired.size(), 1u);
}

TEST(TimerWheel, PastDeadlineFiresOnNextAdvance) {
  TimerWheel wheel(TimerWheel::Options{1});
  wheel.advance(50, [](std::uint64_t, Time) {});
  std::vector<std::uint64_t> fired;
  wheel.schedule(3, 10);  // already past the horizon
  wheel.advance(51, [&](std::uint64_t c, Time) { fired.push_back(c); });
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{3}));
}

TEST(TimerWheel, SameTickFiresInScheduleOrder) {
  TimerWheel wheel(TimerWheel::Options{1});
  std::vector<std::uint64_t> fired;
  for (std::uint64_t c = 0; c < 8; ++c) wheel.schedule(c, 42);
  wheel.advance(42, [&](std::uint64_t c, Time) { fired.push_back(c); });
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(TimerWheel, CallbackMayScheduleNewTimers) {
  TimerWheel wheel(TimerWheel::Options{1});
  std::vector<Time> fired_at;
  // A self-rescheduling heartbeat: each firing arms the next.
  std::function<void(std::uint64_t, Time)> fire =
      [&](std::uint64_t, Time deadline) {
        fired_at.push_back(deadline);
        if (fired_at.size() < 5) wheel.schedule(1, deadline + 10);
      };
  wheel.schedule(1, 10);
  wheel.advance(100, fire);
  EXPECT_EQ(fired_at, (std::vector<Time>{10, 20, 30, 40, 50}));
}

TEST(TimerWheel, DrainReturnsEveryPendingTimer) {
  TimerWheel wheel(TimerWheel::Options{1});
  std::set<std::uint64_t> expect;
  Rng rng(0xd5a1);
  for (std::uint64_t c = 0; c < 200; ++c) {
    wheel.schedule(c, 1 + rng.uniform(0, 5'000'000));
    expect.insert(c);
  }
  std::set<std::uint64_t> drained;
  wheel.drain([&](std::uint64_t c, Time) { drained.insert(c); });
  EXPECT_EQ(drained, expect);
  EXPECT_EQ(wheel.size(), 0u);
  wheel.advance(10'000'000, [](std::uint64_t, Time) { FAIL(); });
}

TEST(TimerWheel, LargeJumpRebuildFiresInDeadlineOrder) {
  TimerWheel wheel(TimerWheel::Options{1});
  Rng rng(0xbead);
  std::vector<std::pair<Time, std::uint64_t>> expect;
  for (std::uint64_t c = 0; c < 500; ++c) {
    Time deadline = 1 + rng.uniform(0, 2'000'000);
    wheel.schedule(c, deadline);
    if (deadline <= 1'000'000) expect.push_back({deadline, c});
  }
  std::sort(expect.begin(), expect.end());
  // A jump far past the rebuild threshold (4 * 256 ticks).
  std::vector<std::pair<Time, std::uint64_t>> fired;
  wheel.advance(1'000'000,
                [&](std::uint64_t c, Time d) { fired.push_back({d, c}); });
  EXPECT_EQ(fired, expect);
  // The survivors still fire at their own deadlines afterwards.
  std::size_t late = wheel.size();
  EXPECT_EQ(late, 500 - expect.size());
  std::size_t n = wheel.advance(2'000'001, [](std::uint64_t, Time) {});
  EXPECT_EQ(n, late);
  EXPECT_EQ(wheel.size(), 0u);
}

TEST(TimerWheel, MatchesReferenceModelOverRandomSchedule) {
  // Property: against a multimap reference, arbitrary interleavings of
  // schedule() and advance() (small steps, slot-boundary steps, and
  // rebuild-sized jumps) fire exactly the same (deadline, cookie) sets.
  TimerWheel wheel(TimerWheel::Options{3});
  std::multimap<Time, std::uint64_t> reference;  // deadline tick -> cookie
  Rng rng(0xfeed);
  Time now = 0;
  std::uint64_t next_cookie = 1;
  for (int step = 0; step < 3000; ++step) {
    if (rng.uniform(0, 2) != 0) {
      Time deadline = now + rng.uniform(0, 10'000);
      std::uint64_t tick = deadline / 3;
      if (tick <= now / 3) tick = now / 3 + 1;  // past: next advance
      wheel.schedule(next_cookie, deadline);
      reference.emplace(tick, next_cookie);
      ++next_cookie;
    } else {
      switch (rng.uniform(0, 3)) {
        case 0: now += rng.uniform(1, 8); break;
        case 1: now = (now / (3 * 256) + 1) * (3 * 256); break;  // slot edge
        default: now += 3 * rng.uniform(1100, 5000); break;      // rebuild
      }
      std::multiset<std::uint64_t> fired;
      wheel.advance(now, [&](std::uint64_t c, Time) { fired.insert(c); });
      std::multiset<std::uint64_t> expect;
      auto end = reference.upper_bound(now / 3);
      for (auto it = reference.begin(); it != end; ++it) expect.insert(it->second);
      reference.erase(reference.begin(), end);
      ASSERT_EQ(fired, expect) << "advance to " << now << " step " << step;
      ASSERT_EQ(wheel.size(), reference.size());
    }
  }
}

// ---- Perf model sanity ----------------------------------------------------

TEST(PerfModel, VpnDataCostScalesWithBytesAndMode) {
  const auto& m = default_perf_model();
  double small = m.vpn_data_cycles(256, /*encrypt=*/true);
  double large = m.vpn_data_cycles(1500, /*encrypt=*/true);
  double integ = m.vpn_data_cycles(1500, /*encrypt=*/false);
  EXPECT_GT(large, small);
  EXPECT_LT(integ, large);  // ISP integrity-only mode is cheaper
}

TEST(PerfModel, CalibrationImpliesPaperScaleThroughput) {
  // Sanity-check the calibration: a single 3.5 GHz core running the
  // modelled vanilla-OpenVPN data path at 1500-byte packets should land
  // in the several-hundred-Mbps range the paper measures (Fig 8).
  const auto& m = default_perf_model();
  double cycles = m.vpn_data_cycles(1500, true);
  double pkts_per_sec = m.client_hz / cycles;
  double mbps = pkts_per_sec * 1500 * 8 / 1e6;
  EXPECT_GT(mbps, 400.0);
  EXPECT_LT(mbps, 1500.0);
}

}  // namespace
}  // namespace endbox::sim
