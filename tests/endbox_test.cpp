// Integration tests for the EndBox core: attestation-to-traffic flow,
// middlebox use cases end to end, config updates, optimisations.
#include <gtest/gtest.h>

#include "endbox/testbed.hpp"
#include "endbox_world.hpp"

namespace endbox {
namespace {

using testing::World;

TEST(EndBox, FullFlowAttestConnectSend) {
  World world;
  auto bundle = world.publish(UseCase::Nop);
  auto& client = world.add_client(bundle);
  EXPECT_TRUE(client.connected());
  EXPECT_EQ(client.enclave().config_version(), 2u);

  auto in = world.send_through(client, world.benign_packet());
  ASSERT_TRUE(in.ok()) << in.error();
  auto packet = net::Packet::parse(in->ip_packet);
  ASSERT_TRUE(packet.ok());
  EXPECT_EQ(packet->dst, net::Ipv4(10, 0, 0, 1));
  EXPECT_EQ(packet->payload.size(), 1400u);
}

TEST(EndBox, UnattestedClientCannotConnect) {
  World world;
  world.publish(UseCase::Nop);
  sgx::SgxPlatform platform("rogue", world.rng, world.clock);
  sim::CpuAccount cpu(1, world.model.client_hz);
  EndBoxClient client("rogue", platform, world.rng, cpu, world.model,
                      world.authority.public_key(), {});
  // Without attest(): no certificate, handshake cannot even start.
  auto init = client.start_connect(world.server.public_key());
  EXPECT_FALSE(init.ok());
  EXPECT_NE(init.error().find("attestation"), std::string::npos);
}

TEST(EndBox, ConnectRequiresInstalledConfig) {
  World world;
  auto bundle = world.publish(UseCase::Nop);
  sgx::SgxPlatform platform("c9", world.rng, world.clock);
  sim::CpuAccount cpu(1, world.model.client_hz);
  EndBoxClient client("c9", platform, world.rng, cpu, world.model,
                      world.authority.public_key(), {});
  world.ias.register_platform("c9", platform.attestation_key().pub);
  ASSERT_TRUE(client.attest(world.authority).ok());
  auto init = client.start_connect(world.server.public_key());
  EXPECT_FALSE(init.ok());  // no middlebox config installed yet
}

TEST(EndBox, SealedCredentialsRestoreIntoFreshEnclave) {
  World world;
  auto bundle = world.publish(UseCase::Nop);
  auto& client = world.add_client(bundle);
  Bytes sealed = client.sealed_credentials();
  ASSERT_FALSE(sealed.empty());

  // A fresh enclave instance on the same platform restores without
  // re-attesting (section III-C: attest once).
  auto& rig = *world.rigs.back();
  EndBoxEnclave fresh(rig.platform, sgx::SgxMode::Hardware,
                      world.authority.public_key(), world.rng);
  ASSERT_TRUE(fresh.ecall_restore_credentials(sealed).ok());
  EXPECT_TRUE(fresh.provisioned());
}

TEST(EndBox, FirewallDropsMatchingEgress) {
  World world;
  std::string config =
      "from_device :: FromDevice; to_device :: ToDevice;"
      "fw :: IPFilter(drop dst port 23, allow all);"
      "from_device -> fw -> to_device; fw[1] -> [1]to_device;";
  auto bundle = world.server.publish_config(2, config, true, 0, 0);
  ASSERT_TRUE(bundle.ok());
  auto& client = world.add_client(*bundle);

  auto blocked = world.send_through(client, world.benign_packet(100, 23));
  EXPECT_FALSE(blocked.ok());  // telnet blocked at the client
  auto allowed = world.send_through(client, world.benign_packet(100, 80));
  EXPECT_TRUE(allowed.ok()) << allowed.error();
  EXPECT_EQ(client.enclave().packets_rejected_by_click(), 1u);
}

TEST(EndBox, IdpsDropsMalwareBeforeItLeavesTheClient) {
  World world;
  std::string config =
      "from_device :: FromDevice; to_device :: ToDevice;"
      "ids :: IDSMatcher(RULESET community, DROP);"
      "from_device -> ids -> to_device; ids[1] -> [1]to_device;";
  auto bundle = world.server.publish_config(2, config, true, 0, 0);
  ASSERT_TRUE(bundle.ok());
  auto& client = world.add_client(*bundle);

  // Plant a community-rule pattern in the payload.
  net::Packet evil = world.benign_packet(0);
  evil.payload = to_bytes("prefix ");
  append(evil.payload, world.community_rules[2].contents[0].bytes);
  if (world.community_rules[2].proto) evil.proto = *world.community_rules[2].proto;
  if (!world.community_rules[2].dst_port.any)
    evil.dst_port = world.community_rules[2].dst_port.port;
  EXPECT_FALSE(world.send_through(client, std::move(evil)).ok());
  EXPECT_TRUE(world.send_through(client, world.benign_packet()).ok());
}

TEST(EndBox, AllUseCasesCarryBenignTraffic) {
  for (UseCase use_case : {UseCase::Nop, UseCase::Lb, UseCase::Fw, UseCase::Idps,
                           UseCase::Ddos}) {
    World world;
    auto bundle = world.publish(use_case);
    auto& client = world.add_client(bundle);
    for (int i = 0; i < 5; ++i) {
      auto in = world.send_through(client, world.benign_packet());
      ASSERT_TRUE(in.ok()) << use_case_name(use_case) << ": " << in.error();
    }
  }
}

TEST(EndBox, LargePacketsFragmentThroughTunnel) {
  World world;
  auto bundle = world.publish(UseCase::Nop);
  auto& client = world.add_client(bundle);
  auto sent = client.send_packet(world.benign_packet(60000), world.clock.now());
  ASSERT_TRUE(sent.ok()) << sent.error();
  EXPECT_GT(sent->wire.size(), 1u);
  int complete = 0;
  for (const auto& wire : sent->wire) {
    auto handled = world.server.handle_wire(wire, world.clock.now());
    ASSERT_TRUE(handled.ok()) << handled.error();
    if (std::holds_alternative<vpn::VpnServer::PacketIn>(handled->event)) ++complete;
  }
  EXPECT_EQ(complete, 1);
}

TEST(EndBox, ServerToClientDelivery) {
  World world;
  auto bundle = world.publish(UseCase::Nop);
  auto& client = world.add_client(bundle);
  std::uint32_t session = 1;

  net::Packet reply = net::Packet::udp(net::Ipv4(10, 0, 0, 1), net::Ipv4(10, 8, 0, 2),
                                       5001, 40000, to_bytes("response"));
  auto sealed = world.server.seal_packet(session, reply.serialize(), world.clock.now());
  ASSERT_EQ(sealed.wire.size(), 1u);
  auto received = client.receive_wire(sealed.wire[0], world.clock.now());
  ASSERT_TRUE(received.ok()) << received.error();
  EXPECT_TRUE(received->complete);
  EXPECT_TRUE(received->accepted);
  EXPECT_EQ(to_string(received->packet.payload), "response");
}

TEST(EndBox, ConfigUpdateViaPingFlow) {
  World world;
  auto v2 = world.publish(UseCase::Nop);
  auto& client = world.add_client(v2);
  EXPECT_EQ(client.enclave().config_version(), 2u);

  // Admin publishes v3 (FW) with a 30 s grace period.
  auto v3 = world.server.publish_config(3, use_case_config(UseCase::Fw), true, 30,
                                        world.clock.now());
  ASSERT_TRUE(v3.ok());
  // Server ping announces v3; client fetches + installs in background.
  Bytes ping = world.server.create_ping(1);
  auto outcome = client.handle_server_ping(ping, &world.server.file_server(),
                                           world.clock.now());
  ASSERT_TRUE(outcome.ok()) << outcome.error();
  EXPECT_TRUE(outcome->update_started);
  EXPECT_EQ(outcome->info.config_version, 3u);
  EXPECT_EQ(client.enclave().config_version(), 3u);
  // The new FW graph is live (hot-swapped).
  EXPECT_NE(client.enclave().router()->find("fw"), nullptr);

  // Client proves the update with its next ping.
  auto client_ping = client.create_ping(world.clock.now());
  ASSERT_TRUE(client_ping.ok());
  ASSERT_TRUE(world.server.handle_wire(*client_ping, world.clock.now()).ok());
  EXPECT_EQ(world.server.vpn().session_config_version(1), 3u);
}

TEST(EndBox, StaleClientBlockedAfterGraceThenRecovers) {
  World world;
  auto v2 = world.publish(UseCase::Nop);
  auto& client = world.add_client(v2);
  ASSERT_TRUE(world.send_through(client, world.benign_packet()).ok());

  auto v3 = world.server.publish_config(3, use_case_config(UseCase::Nop), true, 10,
                                        world.clock.now());
  ASSERT_TRUE(v3.ok());

  // Within grace: still accepted.
  world.clock.advance_to(5 * sim::kSecond);
  ASSERT_TRUE(world.send_through(client, world.benign_packet()).ok());

  // Past grace without updating: blocked.
  world.clock.advance_to(20 * sim::kSecond);
  auto blocked = world.send_through(client, world.benign_packet());
  ASSERT_FALSE(blocked.ok());
  EXPECT_NE(blocked.error().find("stale"), std::string::npos);

  // Update via ping: flows again.
  Bytes ping = world.server.create_ping(1);
  ASSERT_TRUE(client.handle_server_ping(ping, &world.server.file_server(),
                                        world.clock.now()).ok());
  auto client_ping = client.create_ping(world.clock.now());
  ASSERT_TRUE(world.server.handle_wire(*client_ping, world.clock.now()).ok());
  EXPECT_TRUE(world.send_through(client, world.benign_packet()).ok());
}

TEST(EndBox, ConfigRollbackRejectedInsideEnclave) {
  World world;
  auto v2 = world.publish(UseCase::Nop);
  auto v3 = world.server.publish_config(3, use_case_config(UseCase::Fw), true, 0, 0);
  ASSERT_TRUE(v3.ok());
  auto& client = world.add_client(v2);
  ASSERT_TRUE(client.install_config(*v3, 0).ok());
  // Replaying the old v2 bundle must fail (monotonic versions).
  auto rollback = client.install_config(v2, 0);
  ASSERT_FALSE(rollback.ok());
  EXPECT_NE(rollback.error().find("not newer"), std::string::npos);
  EXPECT_EQ(client.enclave().config_version(), 3u);
}

TEST(EndBox, ClientToClientFlaggingBypassesSecondClick) {
  World world;
  auto bundle = world.publish(UseCase::Idps);
  auto& alice = world.add_client(bundle);
  auto& bob = world.add_client(bundle);

  // Alice -> server: packet gets the 0xeb flag after her Click run.
  auto sent = alice.send_packet(world.benign_packet(), world.clock.now());
  ASSERT_TRUE(sent.ok());
  auto handled = world.server.handle_wire(sent->wire[0], world.clock.now());
  ASSERT_TRUE(handled.ok());
  auto& in = std::get<vpn::VpnServer::PacketIn>(handled->event);
  auto packet = net::Packet::parse(in.ip_packet);
  ASSERT_TRUE(packet.ok());
  EXPECT_TRUE(packet->processed_flag());

  // Server forwards to Bob (intra-network: flag preserved).
  auto sealed = world.server.seal_packet(2, in.ip_packet, world.clock.now());
  auto received = bob.receive_wire(sealed.wire[0], world.clock.now());
  ASSERT_TRUE(received.ok()) << received.error();
  EXPECT_TRUE(received->accepted);
  EXPECT_EQ(bob.enclave().click_bypassed_ingress(), 1u);
  EXPECT_FALSE(received->packet.processed_flag());  // cleared on delivery
}

TEST(EndBox, ExternalQosFlagStrippedAtGateway) {
  net::Packet forged = net::Packet::udp(net::Ipv4(8, 8, 8, 8), net::Ipv4(10, 8, 0, 2),
                                        53, 4000, to_bytes("external"));
  forged.set_processed_flag();
  EndBoxServer::strip_external_qos(forged);
  EXPECT_FALSE(forged.processed_flag());
}

TEST(EndBox, WithoutC2cFlagIngressRunsClick) {
  World world;
  auto bundle = world.publish(UseCase::Idps);
  EndBoxClientOptions options;
  options.c2c_flagging = false;
  auto& alice = world.add_client(bundle, options);
  auto& bob = world.add_client(bundle, options);

  auto sent = alice.send_packet(world.benign_packet(), world.clock.now());
  ASSERT_TRUE(sent.ok());
  auto handled = world.server.handle_wire(sent->wire[0], world.clock.now());
  auto& in = std::get<vpn::VpnServer::PacketIn>(handled->event);
  auto parsed = net::Packet::parse(in.ip_packet);
  EXPECT_FALSE(parsed->processed_flag());  // flag never set

  auto sealed = world.server.seal_packet(2, in.ip_packet, world.clock.now());
  auto received = bob.receive_wire(sealed.wire[0], world.clock.now());
  ASSERT_TRUE(received.ok());
  EXPECT_TRUE(received->accepted);
  EXPECT_EQ(bob.enclave().click_bypassed_ingress(), 0u);  // Click ran
}

TEST(EndBox, SingleEcallPerPacketWhenBatched) {
  World world;
  auto bundle = world.publish(UseCase::Nop);
  auto& client = world.add_client(bundle);
  client.enclave().reset_transition_stats();
  for (int i = 0; i < 10; ++i)
    ASSERT_TRUE(client.send_packet(world.benign_packet(), world.clock.now()).ok());
  // The batched data path: exactly one ecall per sent packet (IV-B).
  EXPECT_EQ(client.enclave().transitions().ecalls, 10u);
}

TEST(EndBox, TlsKeyForwardingEnablesInspection) {
  World world;
  std::string config = use_case_config(UseCase::TlsIdps);
  auto bundle = world.server.publish_config(2, config, true, 0, 0);
  ASSERT_TRUE(bundle.ok());
  auto& client = world.add_client(*bundle);

  // Application handshake with key export into the enclave.
  tls::TlsClient app(world.rng);
  tls::TlsServer web(world.rng);
  app.set_key_export_hook([&](const tls::SessionKeys& keys) {
    ASSERT_TRUE(client.forward_tls_key(keys).ok());
  });
  auto sh = web.accept(app.start_handshake(), to_bytes("pm"));
  ASSERT_TRUE(sh.ok());
  ASSERT_TRUE(app.finish_handshake(*sh, to_bytes("pm")).ok());

  // Encrypted malware: caught despite TLS.
  Bytes evil_plain = to_bytes("encapsulated ");
  append(evil_plain, world.community_rules[2].contents[0].bytes);
  auto record = app.send(evil_plain);
  net::Packet packet = net::Packet::tcp(net::Ipv4(10, 8, 0, 2),
                                        net::Ipv4(93, 184, 216, 34), 40000, 443, 0, 0,
                                        0x18, record.serialize());
  packet.flow_hint = static_cast<std::uint32_t>(app.keys().session_id);
  // Rule 2 of the generated set is single-content, any-protocol,
  // any-port: it applies to this TCP packet unconditionally.
  ASSERT_EQ(world.community_rules[2].contents.size(), 1u);
  ASSERT_FALSE(world.community_rules[2].proto.has_value());
  ASSERT_TRUE(world.community_rules[2].dst_port.any);
  auto blocked = world.send_through(client, std::move(packet));
  EXPECT_FALSE(blocked.ok());

  // Encrypted benign traffic flows.
  auto ok_record = app.send(to_bytes("just a normal page"));
  net::Packet fine = net::Packet::tcp(net::Ipv4(10, 8, 0, 2),
                                      net::Ipv4(93, 184, 216, 34), 40000, 443, 1, 0,
                                      0x18, ok_record.serialize());
  fine.flow_hint = static_cast<std::uint32_t>(app.keys().session_id);
  EXPECT_TRUE(world.send_through(client, std::move(fine)).ok());
}

TEST(EndBox, IspModeIntegrityOnly) {
  vpn::VpnServerConfig vpn_config;
  vpn_config.allow_integrity_only = true;
  World world(0xeb0c5eed, ServerMode::Plain, vpn_config);
  auto bundle = world.publish(UseCase::Idps);
  EndBoxClientOptions options;
  options.encrypt_data = false;  // ISP scenario optimisation
  auto& client = world.add_client(bundle, options);
  auto in = world.send_through(client, world.benign_packet());
  ASSERT_TRUE(in.ok()) << in.error();
  EXPECT_FALSE(in->was_encrypted);
}

TEST(EndBox, CostModelChargesCpu) {
  World world;
  auto bundle = world.publish(UseCase::Idps);
  auto& client = world.add_client(bundle);
  auto& cpu = world.rigs.back()->cpu;
  double busy_before = cpu.busy_core_ns();
  ASSERT_TRUE(client.send_packet(world.benign_packet(), world.clock.now()).ok());
  EXPECT_GT(cpu.busy_core_ns(), busy_before);
}

TEST(EndBox, SgxModeCostsMoreThanSimMode) {
  World sim_world, hw_world;
  auto sim_bundle = sim_world.publish(UseCase::Nop);
  auto hw_bundle = hw_world.publish(UseCase::Nop);
  EndBoxClientOptions sim_options;
  sim_options.sgx_mode = sgx::SgxMode::Simulation;
  auto& sim_client = sim_world.add_client(sim_bundle, sim_options);
  auto& hw_client = hw_world.add_client(hw_bundle);

  auto t_sim = sim_client.send_packet(sim_world.benign_packet(), 0);
  auto t_hw = hw_client.send_packet(hw_world.benign_packet(), 0);
  ASSERT_TRUE(t_sim.ok());
  ASSERT_TRUE(t_hw.ok());
  EXPECT_GT(t_hw->done, t_sim->done);  // transitions + EPC penalty
}

TEST(EndBox, ServerWithClickChargesMore) {
  World plain(1, ServerMode::Plain);
  World clicked(1, ServerMode::WithClick);
  ASSERT_TRUE(clicked.server.set_click_config(use_case_config(UseCase::Nop)).ok());

  auto pb = plain.publish(UseCase::Nop);
  auto cb = clicked.publish(UseCase::Nop);
  auto& pc = plain.add_client(pb);
  auto& cc = clicked.add_client(cb);

  auto ps = pc.send_packet(plain.benign_packet(), 0);
  auto cs = cc.send_packet(clicked.benign_packet(), 0);
  ASSERT_TRUE(ps.ok());
  ASSERT_TRUE(cs.ok());
  auto ph = plain.server.handle_wire(ps->wire[0], 0);
  auto ch = clicked.server.handle_wire(cs->wire[0], 0);
  ASSERT_TRUE(ph.ok());
  ASSERT_TRUE(ch.ok());
  EXPECT_GT(clicked.server_cpu.busy_core_ns(), plain.server_cpu.busy_core_ns());
}

TEST(EndBox, UseCaseConfigsAllParse) {
  elements::ElementContext context;
  tls::SessionKeyStore store;
  context.key_store = &store;
  Rng rng(7);
  context.rulesets["community"] = idps::generate_community_ruleset(377, rng);
  auto registry = elements::make_endbox_registry(context);
  for (UseCase use_case : {UseCase::Nop, UseCase::Lb, UseCase::Fw, UseCase::Idps,
                           UseCase::Ddos, UseCase::TlsIdps}) {
    for (bool trusted : {true, false}) {
      auto router = click::Router::from_config(use_case_config(use_case, trusted),
                                               registry);
      ASSERT_TRUE(router.ok()) << use_case_name(use_case) << ": " << router.error();
      EXPECT_NE((*router)->find("from_device"), nullptr);
      EXPECT_NE((*router)->find("to_device"), nullptr);
    }
  }
}

TEST(EndBox, PipelineCostOrdering) {
  // Heavier use cases must cost more cycles (drives Figs 9/10 shapes).
  elements::ElementContext context;
  tls::SessionKeyStore store;
  context.key_store = &store;
  Rng rng(7);
  context.rulesets["community"] = idps::generate_community_ruleset(377, rng);
  auto registry = elements::make_endbox_registry(context);
  sim::PerfModel model;
  auto cost = [&](UseCase use_case) {
    auto router = click::Router::from_config(use_case_config(use_case), registry);
    return pipeline_cycles(**router, 1500, model);
  };
  double nop = cost(UseCase::Nop);
  double lb = cost(UseCase::Lb);
  double fw = cost(UseCase::Fw);
  double idps = cost(UseCase::Idps);
  double ddos = cost(UseCase::Ddos);
  EXPECT_LT(nop, lb);
  EXPECT_LT(nop, fw);
  EXPECT_LT(fw, idps);
  EXPECT_LT(idps, ddos);
}

TEST(EndBox, TestbedBurstIperfDeliversAtLeastPerPacketGoodput) {
  // The batched source (PacketBatch + batch ecall + pooled buffers)
  // must not lose traffic, and amortising the per-packet enclave
  // transition can only help goodput.
  Testbed per_packet(Setup::EndBoxSgx, UseCase::Fw);
  per_packet.add_client();
  auto single = per_packet.run_iperf(1500, 0, sim::from_seconds(0.05));

  Testbed batched(Setup::EndBoxSgx, UseCase::Fw);
  batched.add_client();
  auto burst = batched.run_iperf(1500, 0, sim::from_seconds(0.05), /*burst=*/32);

  ASSERT_GT(single.writes_delivered, 0u);
  ASSERT_GT(burst.writes_delivered, 0u);
  EXPECT_GE(burst.throughput_mbps, single.throughput_mbps);
  // Every write still arrives as its own tunnel frame.
  EXPECT_EQ(burst.wire_messages, burst.writes_sent);
}

TEST(EndBox, DisconnectStormLeavesNoPerSessionState) {
  // Regression: the server keeps three maps keyed by session id
  // (per-session Click routers, the per-process CPU ledger, per-session
  // packet counts). Every one of them must empty out when sessions
  // close, across repeated connect/disconnect storms — before the VPN
  // close hook they leaked for the life of the process.
  testing::WorldOptions opts;
  opts.clients = 6;
  opts.use_case = UseCase::Fw;
  opts.server_mode = ServerMode::WithClick;
  World world(opts);
  ASSERT_TRUE(world.server.set_click_config(use_case_config(UseCase::Fw)).ok());
  std::size_t n = world.rigs.size();
  for (std::uint32_t wave = 0; wave < 3; ++wave) {
    if (wave > 0)
      for (auto& rig : world.rigs) world.connect(rig->client);  // re-key
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_TRUE(world.send_from(i, world.benign_packet_from(i)).ok());
    EXPECT_EQ(world.server.vpn().session_count(), n);
    EXPECT_EQ(world.server.sessions_with_traffic(), n);
    EXPECT_EQ(world.server.session_router_count(), n);
    EXPECT_GE(world.server.session_process_entries(), n);

    // The storm: every session disconnects at once. Session ids are
    // assigned sequentially, so sweep every id issued so far.
    std::size_t closed = 0;
    for (std::uint32_t id = 1; id <= (wave + 1) * n; ++id)
      if (world.server.vpn().close_session(id)) ++closed;
    EXPECT_EQ(closed, n);
    EXPECT_EQ(world.server.vpn().session_count(), 0u);
    EXPECT_EQ(world.server.sessions_with_traffic(), 0u);
    EXPECT_EQ(world.server.session_router_count(), 0u);
    EXPECT_EQ(world.server.session_process_entries(), 0u);
  }
}

TEST(EndBox, IdleExpiryTearsDownPerSessionServerState) {
  vpn::VpnServerConfig vpn_config;
  vpn_config.session_idle_timeout = 30 * sim::kSecond;
  testing::WorldOptions opts;
  opts.clients = 4;
  opts.use_case = UseCase::Fw;
  opts.server_mode = ServerMode::WithClick;
  opts.vpn_config = vpn_config;
  World world(opts);
  ASSERT_TRUE(world.server.set_click_config(use_case_config(UseCase::Fw)).ok());
  for (std::size_t i = 0; i < 4; ++i)
    ASSERT_TRUE(world.send_from(i, world.benign_packet_from(i)).ok());
  EXPECT_EQ(world.server.session_router_count(), 4u);

  // Client 0 keeps talking; the rest go silent.
  world.clock.advance_to(20 * sim::kSecond);
  ASSERT_TRUE(world.send_from(0, world.benign_packet_from(0)).ok());
  world.clock.advance_to(31 * sim::kSecond);
  ASSERT_TRUE(world.send_from(0, world.benign_packet_from(0)).ok());

  // The sweep at 31 s expired sessions idle since t=0 — and their
  // per-session server state went with them via the close hook.
  EXPECT_EQ(world.server.vpn().session_count(), 1u);
  EXPECT_EQ(world.server.vpn().sessions_expired(), 3u);
  EXPECT_EQ(world.server.sessions_with_traffic(), 1u);
  EXPECT_EQ(world.server.session_router_count(), 1u);
  EXPECT_EQ(world.server.session_process_entries(), 1u);
}

}  // namespace
}  // namespace endbox
