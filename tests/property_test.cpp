// Parameterized property tests: invariants that must hold across whole
// input ranges — packet sizes, use cases, SGX modes, key material.
#include <gtest/gtest.h>

#include "crypto/aes.hpp"
#include "crypto/hmac.hpp"
#include "elements/device.hpp"
#include "endbox_world.hpp"
#include "idps/aho_corasick.hpp"
#include "vpn/session_crypto.hpp"
#include "vpn/session_crypto_reference.hpp"

namespace endbox {
namespace {

using testing::World;

// ---- Tunnel round-trip invariant across payload sizes -----------------------

class TunnelSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TunnelSizeSweep, PacketsSurviveTheTunnelByteExact) {
  std::size_t size = GetParam();
  World world;
  auto& client = world.add_client(world.publish(UseCase::Nop));
  net::Packet packet = world.benign_packet(size);
  Bytes original_payload = packet.payload;

  auto sent = client.send_packet(std::move(packet), 0);
  ASSERT_TRUE(sent.ok()) << sent.error();
  ASSERT_TRUE(sent->accepted);
  Bytes delivered;
  for (const auto& wire : sent->wire) {
    auto handled = world.server.handle_wire(wire, 0);
    ASSERT_TRUE(handled.ok()) << handled.error();
    if (auto* in = std::get_if<vpn::VpnServer::PacketIn>(&handled->event))
      delivered = in->ip_packet;
  }
  ASSERT_FALSE(delivered.empty()) << "no PacketIn for size " << size;
  auto parsed = net::Packet::parse(delivered);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed->payload, original_payload);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TunnelSizeSweep,
                         ::testing::Values(0, 1, 15, 16, 100, 1400, 8000, 8973,
                                           9000, 20000, 65000));

// ---- Use-case graph invariants ------------------------------------------------

class UseCaseSweep : public ::testing::TestWithParam<UseCase> {};

TEST_P(UseCaseSweep, BenignTrafficFlowsAndIsCounted) {
  World world;
  auto& client = world.add_client(world.publish(GetParam()));
  for (int i = 0; i < 20; ++i) {
    auto in = world.send_through(client, world.benign_packet(1000 + i * 20));
    ASSERT_TRUE(in.ok()) << use_case_name(GetParam()) << ": " << in.error();
  }
  EXPECT_EQ(client.enclave().packets_rejected_by_click(), 0u);
  // FromDevice saw exactly the packets we pushed.
  auto* from = client.enclave().router()->find("from_device");
  ASSERT_NE(from, nullptr);
  auto* fd = dynamic_cast<const elements::FromDevice*>(from);
  ASSERT_NE(fd, nullptr);
  EXPECT_EQ(fd->packets(), 20u);
}

TEST_P(UseCaseSweep, HotSwapToEveryOtherUseCaseWorks) {
  World world;
  auto& client = world.add_client(world.publish(GetParam()));
  std::uint32_t version = 3;
  for (UseCase next : {UseCase::Nop, UseCase::Lb, UseCase::Fw, UseCase::Idps,
                       UseCase::Ddos}) {
    auto bundle = world.server.publish_config(version, use_case_config(next), true,
                                              0, world.clock.now());
    ASSERT_TRUE(bundle.ok()) << bundle.error();
    ASSERT_TRUE(client.install_config(*bundle, world.clock.now()).ok());
    EXPECT_EQ(client.enclave().config_version(), version);
    // Traffic still flows right after the swap, but first prove the
    // update to the server via a ping (grace period is zero).
    auto ping = client.create_ping(world.clock.now());
    ASSERT_TRUE(ping.ok());
    ASSERT_TRUE(world.server.handle_wire(*ping, world.clock.now()).ok());
    auto in = world.send_through(client, world.benign_packet());
    ASSERT_TRUE(in.ok()) << in.error();
    ++version;
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, UseCaseSweep,
                         ::testing::Values(UseCase::Nop, UseCase::Lb, UseCase::Fw,
                                           UseCase::Idps, UseCase::Ddos),
                         [](const auto& info) {
                           return std::string(use_case_name(info.param)) == "DDoS"
                                      ? "DDoS"
                                      : use_case_name(info.param);
                         });

// ---- VPN body crypto invariants -----------------------------------------------

struct BodyParam {
  std::size_t payload;
  bool encrypted;
};

class VpnBodySweep : public ::testing::TestWithParam<BodyParam> {};

TEST_P(VpnBodySweep, SealOpenRoundTripAndTamperDetection) {
  auto [size, encrypted] = GetParam();
  Rng rng(size + encrypted);
  auto keys = vpn::derive_vpn_keys(rng.next_u64(), rng.bytes(16), rng.bytes(16));
  Bytes payload = rng.bytes(size);
  vpn::FragmentHeader frag{7, 3, 0, 1};

  Bytes body = encrypted ? vpn::seal_data_body(keys, frag, payload, rng)
                         : vpn::seal_integrity_body(keys, frag, payload);
  auto opened = encrypted ? vpn::open_data_body(keys, body)
                          : vpn::open_integrity_body(keys, body);
  ASSERT_TRUE(opened.ok()) << opened.error();
  EXPECT_EQ(opened->payload, payload);
  EXPECT_EQ(opened->frag.packet_id, 7u);

  // Any single-bit flip anywhere must be detected.
  for (std::size_t pos : {std::size_t{0}, body.size() / 2, body.size() - 1}) {
    Bytes bad = body;
    bad[pos] ^= 0x01;
    auto r = encrypted ? vpn::open_data_body(keys, bad)
                       : vpn::open_integrity_body(keys, bad);
    EXPECT_FALSE(r.ok()) << "flip at " << pos;
  }
}

INSTANTIATE_TEST_SUITE_P(Bodies, VpnBodySweep,
                         ::testing::Values(BodyParam{0, true}, BodyParam{1, true},
                                           BodyParam{1500, true},
                                           BodyParam{9000, true},
                                           BodyParam{0, false}, BodyParam{1, false},
                                           BodyParam{1500, false},
                                           BodyParam{9000, false}));

// ---- AES mode properties across many keys ---------------------------------------

class AesKeySweep : public ::testing::TestWithParam<int> {};

TEST_P(AesKeySweep, ModesRoundTripUnderRandomKeys) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  auto key = crypto::make_aes_key(rng.bytes(16));
  Bytes iv = rng.bytes(16);
  Bytes nonce = rng.bytes(16);
  Bytes plaintext = rng.bytes(rng.uniform(0, 4096));

  Bytes cbc = crypto::aes128_cbc_encrypt(key, iv, plaintext);
  auto cbc_back = crypto::aes128_cbc_decrypt(key, iv, cbc);
  ASSERT_TRUE(cbc_back.ok());
  EXPECT_EQ(*cbc_back, plaintext);

  Bytes ctr = crypto::aes128_ctr(key, nonce, plaintext);
  EXPECT_EQ(crypto::aes128_ctr(key, nonce, ctr), plaintext);

  // Encrypt-then-MAC composition detects ciphertext truncation.
  Bytes mac = crypto::hmac_sha256(rng.bytes(32), cbc);
  EXPECT_EQ(mac.size(), 32u);
}

INSTANTIATE_TEST_SUITE_P(Keys, AesKeySweep, ::testing::Range(0, 12));

// ---- Crypto round-trip properties ----------------------------------------------

class CtrSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CtrSizeSweep, AesCtrRoundTripsAndIsItsOwnInverse) {
  std::size_t size = GetParam();
  Rng rng(size * 31 + 5);
  auto key = crypto::make_aes_key(rng.bytes(16));
  Bytes nonce = rng.bytes(16);
  Bytes plaintext = rng.bytes(size);

  Bytes ciphertext = crypto::aes128_ctr(key, nonce, plaintext);
  ASSERT_EQ(ciphertext.size(), plaintext.size());
  // CTR is a stream cipher: applying it twice restores the plaintext.
  EXPECT_EQ(crypto::aes128_ctr(key, nonce, ciphertext), plaintext);
  if (size > 0) {
    // A different nonce must produce a different keystream.
    Bytes other_nonce = rng.bytes(16);
    EXPECT_NE(crypto::aes128_ctr(key, other_nonce, plaintext), ciphertext);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CtrSizeSweep,
                         ::testing::Values(0, 1, 15, 16, 17, 64, 1000, 4096,
                                           65536));

class HmacKeySweep : public ::testing::TestWithParam<int> {};

TEST_P(HmacKeySweep, VerifyAcceptsGenuineRejectsTampered) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  Bytes key = rng.bytes(rng.uniform(1, 128));  // short, block-sized and long keys
  Bytes data = rng.bytes(rng.uniform(0, 2048));
  Bytes mac = crypto::hmac_sha256(key, data);

  EXPECT_TRUE(crypto::hmac_verify(key, data, mac));
  // Any single-bit flip in the MAC must be rejected.
  for (std::size_t pos : {std::size_t{0}, mac.size() / 2, mac.size() - 1}) {
    Bytes bad = mac;
    bad[pos] ^= 0x01;
    EXPECT_FALSE(crypto::hmac_verify(key, data, bad));
  }
  // Tampered data and wrong key must be rejected too.
  Bytes bad_data = data;
  bad_data.push_back(0x00);
  EXPECT_FALSE(crypto::hmac_verify(key, bad_data, mac));
  Bytes bad_key = key;
  bad_key[0] ^= 0xff;
  EXPECT_FALSE(crypto::hmac_verify(bad_key, data, mac));
  // Truncated MACs never verify.
  Bytes truncated(mac.begin(), mac.begin() + 16);
  EXPECT_FALSE(crypto::hmac_verify(key, data, truncated));
}

INSTANTIATE_TEST_SUITE_P(Keys, HmacKeySweep, ::testing::Range(0, 8));

// HMAC-SHA-256 known answer (RFC 4231 test case 2: short key, short data).
TEST(CryptoKat, HmacRfc4231Case2) {
  Bytes key = to_bytes("Jefe");
  Bytes data = to_bytes("what do ya want for nothing?");
  EXPECT_EQ(to_hex(crypto::hmac_sha256(key, data)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
  EXPECT_TRUE(crypto::hmac_verify(key, data, crypto::hmac_sha256(key, data)));
}

// SHA-256 known answers beyond the unit suite's: one-byte 0xbd (NIST
// example) and the million-'a' extreme-length vector (FIPS 180-4).
TEST(CryptoKat, Sha256SingleByte) {
  EXPECT_EQ(to_hex(crypto::sha256(Bytes{0xbd})),
            "68325720aabd7c82f30f554b313d0570c95accbb7dc4b5aae11204c08ffe732b");
}

TEST(CryptoKat, Sha256MillionA) {
  Bytes msg(1'000'000, 'a');
  EXPECT_EQ(to_hex(crypto::sha256(msg)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

// ---- SGX mode sweep ----------------------------------------------------------------

class ModeSweep : public ::testing::TestWithParam<sgx::SgxMode> {};

TEST_P(ModeSweep, FunctionalBehaviourIdenticalAcrossModes) {
  World world;
  EndBoxClientOptions options;
  options.sgx_mode = GetParam();
  auto& client = world.add_client(world.publish(UseCase::Fw), options);
  // Filtering semantics must not depend on the SGX mode.
  auto ok = world.send_through(client, world.benign_packet(100, 80));
  EXPECT_TRUE(ok.ok()) << ok.error();
  net::Packet blocked = world.benign_packet(100, 80);
  blocked.src = net::Ipv4(203, 0, 113, 8);  // matches a FW drop rule
  auto rejected = world.send_through(client, std::move(blocked));
  EXPECT_FALSE(rejected.ok());
}

INSTANTIATE_TEST_SUITE_P(Modes, ModeSweep,
                         ::testing::Values(sgx::SgxMode::Hardware,
                                           sgx::SgxMode::Simulation),
                         [](const auto& info) {
                           return info.param == sgx::SgxMode::Hardware ? "Hardware"
                                                                       : "Simulation";
                         });

// ---- Flattened Aho-Corasick vs node-chasing reference -----------------------

class AcSeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(AcSeedSweep, FlatAutomatonReportsByteIdenticalMatches) {
  Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
  idps::AhoCorasick automaton;
  // Small alphabet + short patterns force shared prefixes, failure
  // transitions and nested-suffix outputs (the hard cases for the
  // flattened output lists). Duplicate patterns are allowed.
  std::size_t n_patterns = 1 + rng.uniform(0, 30);
  for (std::size_t p = 0; p < n_patterns; ++p) {
    std::size_t len = 1 + rng.uniform(0, 7);
    Bytes pattern(len);
    for (auto& b : pattern)
      b = static_cast<std::uint8_t>('a' + rng.uniform(0, 3));
    automaton.add_pattern(pattern, static_cast<int>(p));
  }
  automaton.build();

  for (int round = 0; round < 8; ++round) {
    std::size_t text_len = rng.uniform(0, 600);
    Bytes text(text_len);
    for (auto& b : text) {
      // Mostly in-alphabet bytes (matches), some arbitrary (resets).
      b = rng.uniform(0, 9) == 0
              ? static_cast<std::uint8_t>(rng.uniform(0, 255))
              : static_cast<std::uint8_t>('a' + rng.uniform(0, 3));
    }
    auto flat = automaton.match(text);
    auto ref = automaton.match_reference(text);
    ASSERT_EQ(flat.size(), ref.size()) << "round " << round;
    for (std::size_t i = 0; i < flat.size(); ++i) {
      EXPECT_EQ(flat[i].pattern_id, ref[i].pattern_id) << "match " << i;
      EXPECT_EQ(flat[i].end_offset, ref[i].end_offset) << "match " << i;
    }
    EXPECT_EQ(automaton.contains_any(text), !ref.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AcSeedSweep, ::testing::Range(0, 12));

// ---- Incremental HMAC vs one-shot -------------------------------------------

TEST(HmacIncremental, EqualsOneShotForAllChunkings) {
  Rng rng(42);
  Bytes key = rng.bytes(32);
  Bytes msg = rng.bytes(96);
  crypto::HmacKey hk(key);
  Bytes oneshot = crypto::hmac_sha256(key, msg);
  auto digest_bytes = [](const crypto::Sha256Digest& d) {
    return Bytes(d.begin(), d.end());
  };
  ASSERT_EQ(digest_bytes(hk.mac(msg)), oneshot);

  // Every two-part split of the message...
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    auto mac = hk.begin();
    mac.update(ByteView(msg).subspan(0, split));
    mac.update(ByteView(msg).subspan(split));
    EXPECT_EQ(digest_bytes(mac.finish()), oneshot) << "split " << split;
  }
  // ...and every fixed chunk size (exercises all buffer fill offsets).
  for (std::size_t chunk = 1; chunk <= msg.size(); ++chunk) {
    auto mac = hk.begin();
    for (std::size_t off = 0; off < msg.size(); off += chunk)
      mac.update(ByteView(msg).subspan(off, std::min(chunk, msg.size() - off)));
    EXPECT_EQ(digest_bytes(mac.finish()), oneshot) << "chunk " << chunk;
  }
}

TEST(HmacIncremental, PrecomputedKeyAgreesWithFreeFunctionAcrossKeySizes) {
  Rng rng(43);
  Bytes msg = rng.bytes(200);
  // Below, at, and above the SHA-256 block size (the >64B case takes
  // the hash-the-key path).
  for (std::size_t key_len : {1u, 16u, 32u, 63u, 64u, 65u, 128u}) {
    Bytes key = rng.bytes(key_len);
    crypto::HmacKey hk(key);
    Bytes expected = crypto::hmac_sha256(key, msg);
    crypto::Sha256Digest digest = hk.mac(msg);
    EXPECT_EQ(Bytes(digest.begin(), digest.end()), expected)
        << "key length " << key_len;
    EXPECT_TRUE(hk.verify(msg, expected));
    Bytes tampered = expected;
    tampered[0] ^= 1;
    EXPECT_FALSE(hk.verify(msg, tampered));
  }
}

// ---- Optimised seal vs pre-PR reference -------------------------------------

class SealEquivalenceSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SealEquivalenceSweep, WireBufferSealIsByteIdenticalToReference) {
  std::size_t size = GetParam();
  Rng key_rng(77);
  auto keys = vpn::derive_vpn_keys(0xfeedface, key_rng.bytes(16), key_rng.bytes(16));
  Bytes payload = key_rng.bytes(size);
  vpn::FragmentHeader frag{42, 7, 1, 3};

  // Identically-seeded RNGs draw identical IVs, so the two seals must
  // produce the same bytes end to end.
  Rng rng_new(555), rng_ref(555);
  WireBuffer out;
  vpn::seal_data_body(keys, frag, payload, rng_new, out);
  Bytes ref = vpn::reference::seal_data_body(keys, frag, payload, rng_ref);
  EXPECT_EQ(Bytes(out.view().begin(), out.view().end()), ref);

  // Cross-open: each implementation opens the other's output.
  auto ref_opened = vpn::reference::open_data_body(keys, out.view());
  ASSERT_TRUE(ref_opened.ok()) << ref_opened.error();
  EXPECT_EQ(ref_opened->payload, payload);
  EXPECT_EQ(ref_opened->frag.packet_id, frag.packet_id);
  auto new_opened = vpn::open_data_body(keys, ByteView(ref));
  ASSERT_TRUE(new_opened.ok()) << new_opened.error();
  EXPECT_EQ(new_opened->payload, payload);
  EXPECT_EQ(new_opened->frag.frag_id, frag.frag_id);

  // Integrity-only mode has no RNG input; byte identity is direct.
  WireBuffer integ;
  vpn::seal_integrity_body(keys, frag, payload, integ);
  Bytes integ_ref = vpn::reference::seal_integrity_body(keys, frag, payload);
  EXPECT_EQ(Bytes(integ.view().begin(), integ.view().end()), integ_ref);
  auto integ_opened = vpn::open_integrity_body(keys, ByteView(integ_ref));
  ASSERT_TRUE(integ_opened.ok()) << integ_opened.error();
  EXPECT_EQ(integ_opened->payload, payload);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SealEquivalenceSweep,
                         ::testing::Values(0, 1, 15, 16, 17, 100, 1499, 1500));

}  // namespace
}  // namespace endbox
