// Unit tests for IPv4 addressing and packet serialisation/parsing.
#include <gtest/gtest.h>

#include "net/checksum.hpp"
#include "net/packet.hpp"

namespace endbox::net {
namespace {

TEST(Ipv4, FormatAndParse) {
  Ipv4 a(10, 8, 0, 3);
  EXPECT_EQ(a.str(), "10.8.0.3");
  auto parsed = Ipv4::parse("10.8.0.3");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, a);
}

TEST(Ipv4, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4::parse("10.8.0").has_value());
  EXPECT_FALSE(Ipv4::parse("256.1.1.1").has_value());
  EXPECT_FALSE(Ipv4::parse("1.2.3.4x").has_value());
  EXPECT_FALSE(Ipv4::parse("banana").has_value());
}

TEST(Ipv4, SubnetMembership) {
  Ipv4 net(10, 8, 0, 0);
  EXPECT_TRUE(Ipv4(10, 8, 0, 55).in_subnet(net, 24));
  EXPECT_FALSE(Ipv4(10, 9, 0, 55).in_subnet(net, 24));
  EXPECT_TRUE(Ipv4(10, 9, 0, 55).in_subnet(net, 8));
  EXPECT_TRUE(Ipv4(1, 2, 3, 4).in_subnet(net, 0));   // /0 matches all
  EXPECT_TRUE(net.in_subnet(net, 32));
  EXPECT_FALSE(Ipv4(10, 8, 0, 1).in_subnet(net, 32));
}

TEST(Checksum, KnownVector) {
  // Classic RFC 1071 example header bytes.
  auto data = *from_hex("45000073000040004011b861c0a80001c0a800c7");
  // Checksum over a header with its checksum field included must be 0.
  EXPECT_EQ(internet_checksum(data), 0);
}

TEST(Checksum, OddLengthHandled) {
  Bytes data = {0x01, 0x02, 0x03};
  // Manually: 0x0102 + 0x0300 = 0x0402 -> ~ = 0xfbfd
  EXPECT_EQ(internet_checksum(data), 0xfbfd);
}

TEST(Packet, UdpRoundTrip) {
  Packet p = Packet::udp(Ipv4(10, 8, 0, 2), Ipv4(10, 0, 0, 1), 5555, 80,
                         to_bytes("GET / HTTP/1.1"));
  Bytes wire = p.serialize();
  EXPECT_EQ(wire.size(), p.wire_size());
  auto back = Packet::parse(wire);
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_EQ(back->src, p.src);
  EXPECT_EQ(back->dst, p.dst);
  EXPECT_EQ(back->src_port, 5555);
  EXPECT_EQ(back->dst_port, 80);
  EXPECT_EQ(back->proto, IpProto::Udp);
  EXPECT_EQ(to_string(back->payload), "GET / HTTP/1.1");
}

TEST(Packet, TcpRoundTrip) {
  Packet p = Packet::tcp(Ipv4(192, 168, 1, 2), Ipv4(93, 184, 216, 34), 40000, 443,
                         1000, 2000, 0x18 /*PSH|ACK*/, to_bytes("data"));
  auto back = Packet::parse(p.serialize());
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_EQ(back->proto, IpProto::Tcp);
  EXPECT_EQ(back->seq, 1000u);
  EXPECT_EQ(back->ack, 2000u);
  EXPECT_EQ(back->tcp_flags, 0x18);
  EXPECT_EQ(to_string(back->payload), "data");
}

TEST(Packet, IcmpEchoRoundTripAndReply) {
  Packet req = Packet::icmp_echo_request(Ipv4(10, 8, 0, 2), Ipv4(10, 0, 0, 1), 77, 3,
                                         to_bytes("pingdata"));
  auto parsed = Packet::parse(req.serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed->icmp_type, 8);
  EXPECT_EQ(parsed->icmp_id, 77);
  EXPECT_EQ(parsed->icmp_seq, 3);
  EXPECT_EQ(to_string(parsed->payload), "pingdata");

  Packet rep = Packet::icmp_echo_reply(*parsed);
  EXPECT_EQ(rep.icmp_type, 0);
  EXPECT_EQ(rep.src, req.dst);
  EXPECT_EQ(rep.dst, req.src);
  EXPECT_EQ(rep.icmp_id, req.icmp_id);
}

TEST(Packet, QosFlagAccessors) {
  Packet p = Packet::udp(Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 1, 2, {});
  EXPECT_FALSE(p.processed_flag());
  p.set_processed_flag();
  EXPECT_TRUE(p.processed_flag());
  EXPECT_EQ(p.tos, kProcessedQosFlag);
  // Flag survives serialisation.
  auto back = Packet::parse(p.serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->processed_flag());
  back->clear_processed_flag();
  EXPECT_FALSE(back->processed_flag());
}

TEST(Packet, ParseRejectsCorruptHeader) {
  Packet p = Packet::udp(Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 1, 2, to_bytes("x"));
  Bytes wire = p.serialize();
  wire[12] ^= 0xff;  // corrupt source IP -> checksum mismatch
  EXPECT_FALSE(Packet::parse(wire).ok());
}

TEST(Packet, ParseRejectsTruncated) {
  Packet p = Packet::udp(Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 1, 2, to_bytes("hello"));
  Bytes wire = p.serialize();
  EXPECT_FALSE(Packet::parse(ByteView(wire.data(), 10)).ok());
  EXPECT_FALSE(Packet::parse({}).ok());
}

TEST(Packet, ParseRejectsNonIpv4) {
  Bytes wire(20, 0);
  wire[0] = 0x65;  // version 6
  EXPECT_FALSE(Packet::parse(wire).ok());
}

TEST(Packet, WireSizeMatchesProto) {
  Packet u = Packet::udp(Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 1, 2, Bytes(100));
  EXPECT_EQ(u.wire_size(), 20u + 8u + 100u);
  Packet t = Packet::tcp(Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 1, 2, 0, 0, 0, Bytes(100));
  EXPECT_EQ(t.wire_size(), 20u + 20u + 100u);
  Packet i = Packet::icmp_echo_request(Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 1, 1, Bytes(100));
  EXPECT_EQ(i.wire_size(), 20u + 8u + 100u);
}

TEST(FlowKey, EqualityAndHash) {
  Packet a = Packet::udp(Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 10, 20, {});
  Packet b = Packet::udp(Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 10, 20, to_bytes("x"));
  Packet c = Packet::udp(Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 10, 21, {});
  EXPECT_EQ(FlowKey::of(a), FlowKey::of(b));  // payload irrelevant
  EXPECT_NE(FlowKey::of(a), FlowKey::of(c));
  std::hash<FlowKey> h;
  EXPECT_EQ(h(FlowKey::of(a)), h(FlowKey::of(b)));
}

TEST(Packet, SummaryMentionsEndpoints) {
  Packet p = Packet::udp(Ipv4(10, 8, 0, 2), Ipv4(10, 0, 0, 1), 5555, 80, {});
  auto s = p.summary();
  EXPECT_NE(s.find("10.8.0.2"), std::string::npos);
  EXPECT_NE(s.find("10.0.0.1"), std::string::npos);
}

}  // namespace
}  // namespace endbox::net
