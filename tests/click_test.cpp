// Tests for the Click substrate: config parser, element semantics,
// router wiring, hot-swap with state transfer.
#include <gtest/gtest.h>

#include "click/parser.hpp"
#include "click/router.hpp"
#include "click/standard_elements.hpp"

namespace endbox::click {
namespace {

using net::Ipv4;
using net::Packet;

Packet make_udp(std::uint16_t dport = 80, std::size_t payload = 100) {
  return Packet::udp(Ipv4(10, 8, 0, 2), Ipv4(10, 0, 0, 1), 5555, dport,
                     Bytes(payload, 'x'));
}

/// Sink that records everything pushed into it.
struct CaptureSink : Element {
  std::string_view class_name() const override { return "CaptureSink"; }
  void push(int port, Packet&& p) override {
    ports.push_back(port);
    packets.push_back(std::move(p));
  }
  int n_inputs() const override { return 16; }
  std::vector<Packet> packets;
  std::vector<int> ports;
};

ElementRegistry registry_with_sink() {
  auto registry = ElementRegistry::with_standard_elements();
  registry.register_class("CaptureSink", [] { return std::make_unique<CaptureSink>(); });
  return registry;
}

// ---- Parser ---------------------------------------------------------

TEST(Parser, DeclarationAndConnection) {
  auto cfg = parse_config("cnt :: Counter; src :: Queue(10);\nsrc -> cnt;");
  ASSERT_TRUE(cfg.ok()) << cfg.error();
  ASSERT_EQ(cfg->declarations.size(), 2u);
  EXPECT_EQ(cfg->declarations[0].name, "cnt");
  EXPECT_EQ(cfg->declarations[0].class_name, "Counter");
  EXPECT_EQ(cfg->declarations[1].args, std::vector<std::string>{"10"});
  ASSERT_EQ(cfg->connections.size(), 1u);
  EXPECT_EQ(cfg->connections[0].from, "src");
  EXPECT_EQ(cfg->connections[0].to, "cnt");
}

TEST(Parser, ChainWithPorts) {
  auto cfg = parse_config("a :: Tee(2); b :: Counter; c :: Counter;\n"
                          "a[1] -> b; a -> [0]c;");
  ASSERT_TRUE(cfg.ok()) << cfg.error();
  ASSERT_EQ(cfg->connections.size(), 2u);
  EXPECT_EQ(cfg->connections[0].from_port, 1);
  EXPECT_EQ(cfg->connections[0].to_port, 0);
  EXPECT_EQ(cfg->connections[1].from_port, 0);
}

TEST(Parser, AnonymousElements) {
  auto cfg = parse_config("Queue(5) -> Counter -> Discard;");
  ASSERT_TRUE(cfg.ok()) << cfg.error();
  EXPECT_EQ(cfg->declarations.size(), 3u);
  EXPECT_EQ(cfg->connections.size(), 2u);
  EXPECT_EQ(cfg->declarations[0].class_name, "Queue");
}

TEST(Parser, InlineDeclarationInChain) {
  auto cfg = parse_config("q :: Queue(5) -> cnt :: Counter;");
  ASSERT_TRUE(cfg.ok()) << cfg.error();
  ASSERT_EQ(cfg->connections.size(), 1u);
  EXPECT_EQ(cfg->connections[0].from, "q");
  EXPECT_EQ(cfg->connections[0].to, "cnt");
}

TEST(Parser, CommentsIgnored) {
  auto cfg = parse_config(
      "// line comment\n"
      "cnt :: Counter; /* block\n comment */ d :: Discard;\n"
      "cnt -> d; // trailing");
  ASSERT_TRUE(cfg.ok()) << cfg.error();
  EXPECT_EQ(cfg->declarations.size(), 2u);
}

TEST(Parser, ArgsWithNestedCommasAndQuotes) {
  auto cfg = parse_config(R"(f :: IPFilter(drop src 1.2.3.4, allow all);
      m :: Tee(2);)");
  ASSERT_TRUE(cfg.ok()) << cfg.error();
  EXPECT_EQ(cfg->declarations[0].args.size(), 2u);
  EXPECT_EQ(cfg->declarations[0].args[0], "drop src 1.2.3.4");
}

TEST(Parser, Errors) {
  EXPECT_FALSE(parse_config("x ::;").ok());
  EXPECT_FALSE(parse_config("a -> ;").ok());
  EXPECT_FALSE(parse_config("a :: lowercase;").ok());
  EXPECT_FALSE(parse_config("a :: Counter( ;").ok());     // unterminated (
  EXPECT_FALSE(parse_config("/* unterminated").ok());
  EXPECT_FALSE(parse_config("a :: Counter b :: Queue;").ok());  // missing ';'
  EXPECT_FALSE(parse_config("a[x] -> b;").ok());          // bad port
}

TEST(Parser, UnterminatedElementIsGraceful) {
  // Every truncation of a declaration must yield a Result error (never
  // a crash), and the unterminated-args error must name the problem.
  auto r = parse_config("c :: Counter(");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("unterminated"), std::string::npos);
  EXPECT_FALSE(parse_config("c :: Counter(\"still open").ok());
  EXPECT_FALSE(parse_config("c :: Counter(nested(deep(").ok());
  EXPECT_FALSE(parse_config("c ::").ok());
  EXPECT_FALSE(parse_config("c").ok());
  EXPECT_FALSE(parse_config("c :: Counter -> ").ok());
}

TEST(Parser, DanglingPortIsGraceful) {
  EXPECT_FALSE(parse_config("a :: Counter; a [1] ->").ok());   // chain ends at arrow
  EXPECT_FALSE(parse_config("a :: Counter -> [0]").ok());      // port, no element
  EXPECT_FALSE(parse_config("a :: Counter; a [").ok());        // bracket at EOF
  EXPECT_FALSE(parse_config("a :: Counter; a [1").ok());       // missing ']'
  EXPECT_FALSE(parse_config("a :: Counter; a [] -> a;").ok()); // empty port
  EXPECT_FALSE(parse_config("[2] a;").ok());                   // port without chain
}

TEST(Parser, HugePortNumberIsRangeErrorNotCrash) {
  // Used to escape as std::out_of_range from std::stoi.
  auto r = parse_config("a :: Counter; a [99999999999999999999] -> a;");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("out of range"), std::string::npos);
  EXPECT_FALSE(parse_config("a :: Counter; a [10000] -> a;").ok());
  // The largest in-range port still parses.
  EXPECT_TRUE(parse_config("a :: Counter; a [9999] -> a;").ok());
}

TEST(Parser, DuplicateElementNameIsGraceful) {
  auto r = parse_config("a :: Counter;\na :: Discard;");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("duplicate element name 'a'"), std::string::npos);
  EXPECT_NE(r.error().find("line 2"), std::string::npos);
  // Inline re-declaration inside a chain is a duplicate too.
  EXPECT_FALSE(parse_config("a :: Counter; b :: Queue -> a :: Discard;").ok());
  // Distinct names and plain re-references stay valid.
  EXPECT_TRUE(parse_config("a :: Counter; b :: Discard; a -> b;").ok());
}

TEST(Parser, EmptyConfigIsValid) {
  auto cfg = parse_config("  // nothing\n");
  ASSERT_TRUE(cfg.ok());
  EXPECT_TRUE(cfg->declarations.empty());
  EXPECT_TRUE(cfg->connections.empty());
}

// ---- Router construction ------------------------------------------------

TEST(Router, BuildsAndRoutes) {
  auto registry = registry_with_sink();
  auto router = Router::from_config(
      "in :: Counter; sink :: CaptureSink; in -> sink;", registry);
  ASSERT_TRUE(router.ok()) << router.error();
  EXPECT_EQ((*router)->element_count(), 2u);
  EXPECT_EQ((*router)->connection_count(), 1u);

  EXPECT_TRUE((*router)->push_to("in", make_udp()));
  auto* sink = (*router)->find_as<CaptureSink>("sink");
  ASSERT_NE(sink, nullptr);
  EXPECT_EQ(sink->packets.size(), 1u);
  EXPECT_EQ((*router)->find_as<Counter>("in")->packets(), 1u);
}

TEST(Router, RejectsUnknownClass) {
  auto registry = ElementRegistry::with_standard_elements();
  auto router = Router::from_config("x :: NoSuchElement;", registry);
  EXPECT_FALSE(router.ok());
}

TEST(Router, RejectsDuplicateNames) {
  auto registry = ElementRegistry::with_standard_elements();
  EXPECT_FALSE(Router::from_config("x :: Counter; x :: Discard;", registry).ok());
}

TEST(Router, RejectsUndeclaredReference) {
  auto registry = ElementRegistry::with_standard_elements();
  EXPECT_FALSE(Router::from_config("x :: Counter; x -> ghost;", registry).ok());
}

TEST(Router, RejectsBadElementConfig) {
  auto registry = ElementRegistry::with_standard_elements();
  EXPECT_FALSE(Router::from_config("q :: Queue(0);", registry).ok());
  EXPECT_FALSE(Router::from_config("f :: IPFilter;", registry).ok());
}

TEST(Router, RejectsOutOfRangePorts) {
  auto registry = ElementRegistry::with_standard_elements();
  // Counter has one output port (port 5 invalid).
  EXPECT_FALSE(
      Router::from_config("a :: Counter; b :: Discard; a[5] -> b;", registry).ok());
}

TEST(Router, PushToUnknownElementReturnsFalse) {
  auto registry = ElementRegistry::with_standard_elements();
  auto router = Router::from_config("x :: Counter;", registry);
  ASSERT_TRUE(router.ok());
  EXPECT_FALSE((*router)->push_to("nope", make_udp()));
}

// ---- Standard element semantics -------------------------------------------

TEST(Elements, CounterCountsPacketsAndBytes) {
  Counter counter;
  CaptureSink sink;
  counter.connect_output(0, &sink, 0);
  counter.push(0, make_udp(80, 100));
  counter.push(0, make_udp(80, 50));
  EXPECT_EQ(counter.packets(), 2u);
  EXPECT_EQ(counter.bytes(), (20u + 8 + 100) + (20 + 8 + 50));
  EXPECT_EQ(sink.packets.size(), 2u);
}

TEST(Elements, DiscardDropsEverything) {
  Discard discard;
  CaptureSink sink;
  discard.connect_output(0, &sink, 0);  // even if wired, nothing flows
  discard.push(0, make_udp());
  EXPECT_EQ(discard.discarded(), 1u);
  EXPECT_TRUE(sink.packets.empty());
}

TEST(Elements, TeeDuplicates) {
  Tee tee;
  ASSERT_TRUE(tee.configure({"3"}).ok());
  CaptureSink s0, s1, s2;
  tee.connect_output(0, &s0, 0);
  tee.connect_output(1, &s1, 0);
  tee.connect_output(2, &s2, 0);
  tee.push(0, make_udp(80, 10));
  EXPECT_EQ(s0.packets.size(), 1u);
  EXPECT_EQ(s1.packets.size(), 1u);
  EXPECT_EQ(s2.packets.size(), 1u);
  EXPECT_EQ(s1.packets[0].payload, s0.packets[0].payload);
}

TEST(Elements, QueueBoundsAndFifo) {
  Queue queue;
  ASSERT_TRUE(queue.configure({"2"}).ok());
  queue.push(0, make_udp(1));
  queue.push(0, make_udp(2));
  queue.push(0, make_udp(3));  // over capacity -> dropped
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.drops(), 1u);
  auto first = queue.pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->dst_port, 1);
  EXPECT_EQ(queue.pop()->dst_port, 2);
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(Elements, SetTosAndPaint) {
  SetTos set_tos;
  ASSERT_TRUE(set_tos.configure({"0xeb"}).ok());
  Paint paint;
  ASSERT_TRUE(paint.configure({"7"}).ok());
  CaptureSink sink;
  set_tos.connect_output(0, &paint, 0);
  paint.connect_output(0, &sink, 0);
  set_tos.push(0, make_udp());
  ASSERT_EQ(sink.packets.size(), 1u);
  EXPECT_TRUE(sink.packets[0].processed_flag());
  EXPECT_EQ(sink.packets[0].flow_hint, 7u);
}

TEST(Elements, RoundRobinPacketMode) {
  RoundRobinSwitch rr;
  ASSERT_TRUE(rr.configure({"3"}).ok());
  CaptureSink s0, s1, s2;
  rr.connect_output(0, &s0, 0);
  rr.connect_output(1, &s1, 0);
  rr.connect_output(2, &s2, 0);
  for (int i = 0; i < 9; ++i) rr.push(0, make_udp());
  EXPECT_EQ(s0.packets.size(), 3u);
  EXPECT_EQ(s1.packets.size(), 3u);
  EXPECT_EQ(s2.packets.size(), 3u);
}

TEST(Elements, RoundRobinFlowModeIsSticky) {
  RoundRobinSwitch rr;
  ASSERT_TRUE(rr.configure({"2", "FLOW"}).ok());
  CaptureSink s0, s1;
  rr.connect_output(0, &s0, 0);
  rr.connect_output(1, &s1, 0);
  // Two flows, interleaved packets: each flow must stay on one output.
  for (int i = 0; i < 4; ++i) {
    rr.push(0, Packet::udp(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 9), 1000, 80, {}));
    rr.push(0, Packet::udp(Ipv4(10, 0, 0, 2), Ipv4(10, 0, 0, 9), 2000, 80, {}));
  }
  EXPECT_EQ(rr.tracked_flows(), 2u);
  EXPECT_EQ(s0.packets.size(), 4u);
  EXPECT_EQ(s1.packets.size(), 4u);
  for (const auto& p : s0.packets) EXPECT_EQ(p.src_port, 1000);
  for (const auto& p : s1.packets) EXPECT_EQ(p.src_port, 2000);
}

TEST(Elements, RoundRobinRejectsBadMode) {
  RoundRobinSwitch rr;
  EXPECT_FALSE(rr.configure({"2", "BANANA"}).ok());
  EXPECT_FALSE(rr.configure({}).ok());
}

TEST(Elements, RoundRobinFlowTableIsBounded) {
  // MAX_FLOWS caps the pin table: overflow traffic still balances but
  // loses stickiness, and the loss is counted instead of growing state.
  RoundRobinSwitch rr;
  ASSERT_TRUE(rr.configure({"2", "FLOW", "2"}).ok());
  EXPECT_EQ(rr.max_flows(), 2u);
  CaptureSink s0, s1;
  rr.connect_output(0, &s0, 0);
  rr.connect_output(1, &s1, 0);
  auto flow = [](std::uint16_t sport) {
    return Packet::udp(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 9), sport, 80, {});
  };
  for (int i = 0; i < 3; ++i) {
    rr.push(0, flow(1000));
    rr.push(0, flow(2000));
    rr.push(0, flow(3000));  // table full: routed, never pinned
  }
  EXPECT_EQ(rr.tracked_flows(), 2u);
  EXPECT_EQ(rr.unpinned_flows(), 3u);
  // The two pinned flows kept perfect stickiness through the overflow:
  // flow 1000 pinned to output 0, flow 2000 to output 1.
  std::size_t sticky = 0;
  for (const auto& p : s0.packets) {
    if (p.src_port == 3000) continue;
    EXPECT_EQ(p.src_port, 1000);
    ++sticky;
  }
  for (const auto& p : s1.packets) {
    if (p.src_port == 3000) continue;
    EXPECT_EQ(p.src_port, 2000);
    ++sticky;
  }
  EXPECT_EQ(sticky, 6u);
}

TEST(Elements, RoundRobinIdlePinsExpireByPacketCount) {
  // IDLE_PKTS expires a pin after that many packets of element time
  // without traffic on the flow — the packet-count timer wheel at work.
  RoundRobinSwitch rr;
  ASSERT_TRUE(rr.configure({"2", "FLOW", "64", "4"}).ok());
  CaptureSink s0, s1;
  rr.connect_output(0, &s0, 0);
  rr.connect_output(1, &s1, 0);
  auto flow = [](std::uint16_t sport) {
    return Packet::udp(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 9), sport, 80, {});
  };
  rr.push(0, flow(1000));  // t=1: pin A, deadline t=5
  for (int i = 0; i < 3; ++i) rr.push(0, flow(2000));  // t=2..4: B touched
  EXPECT_EQ(rr.tracked_flows(), 2u);
  EXPECT_EQ(rr.expired_flows(), 0u);
  rr.push(0, flow(2000));  // t=5: A idle for 4 packets, pin reclaimed
  EXPECT_EQ(rr.tracked_flows(), 1u);
  EXPECT_EQ(rr.expired_flows(), 1u);
  // The returning flow simply re-pins; nothing is lost but stickiness.
  rr.push(0, flow(1000));
  EXPECT_EQ(rr.tracked_flows(), 2u);
  EXPECT_EQ(rr.unpinned_flows(), 0u);
}

TEST(Elements, RoundRobinAdoptionHonoursTheBound) {
  // Hot-swap adoption: surviving pins migrate, but never past the new
  // element's MAX_FLOWS — the excess is shed as unpinned, not leaked.
  RoundRobinSwitch old_rr;
  ASSERT_TRUE(old_rr.configure({"2", "FLOW"}).ok());
  CaptureSink s0, s1;
  old_rr.connect_output(0, &s0, 0);
  old_rr.connect_output(1, &s1, 0);
  auto flow = [](std::uint16_t sport) {
    return Packet::udp(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 9), sport, 80, {});
  };
  for (std::uint16_t sport : {1000, 2000, 3000}) old_rr.push(0, flow(sport));
  ASSERT_EQ(old_rr.tracked_flows(), 3u);

  RoundRobinSwitch new_rr;
  ASSERT_TRUE(new_rr.configure({"2", "FLOW", "2"}).ok());
  new_rr.take_state(old_rr);
  EXPECT_EQ(new_rr.tracked_flows(), 2u);
  EXPECT_EQ(new_rr.unpinned_flows(), 1u);
}

TEST(Elements, CheckIPHeaderSplitsBadPackets) {
  CheckIPHeader check;
  CaptureSink good, bad;
  check.connect_output(0, &good, 0);
  check.connect_output(1, &bad, 0);
  check.push(0, make_udp());
  Packet zero_ttl = make_udp();
  zero_ttl.ttl = 0;
  check.push(0, std::move(zero_ttl));
  EXPECT_EQ(good.packets.size(), 1u);
  EXPECT_EQ(bad.packets.size(), 1u);
  EXPECT_TRUE(bad.packets[0].dropped);
  EXPECT_EQ(check.bad_packets(), 1u);
}

// ---- IPFilter ----------------------------------------------------------

TEST(IpFilter, RuleParsing) {
  auto r1 = IPFilter::parse_rule("drop src 10.0.0.0/8 dst port 22 proto tcp");
  ASSERT_TRUE(r1.ok()) << r1.error();
  EXPECT_FALSE(r1->allow);
  EXPECT_EQ(r1->src_prefix, 8u);
  EXPECT_EQ(*r1->dst_port, 22);
  EXPECT_EQ(*r1->proto, net::IpProto::Tcp);

  auto r2 = IPFilter::parse_rule("allow all");
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->allow);
  EXPECT_TRUE(r2->match_all);

  EXPECT_FALSE(IPFilter::parse_rule("frobnicate all").ok());
  EXPECT_FALSE(IPFilter::parse_rule("drop src").ok());
  EXPECT_FALSE(IPFilter::parse_rule("drop src port 99999").ok());
  EXPECT_FALSE(IPFilter::parse_rule("drop").ok());
  EXPECT_FALSE(IPFilter::parse_rule("drop src 1.2.3.4/40").ok());
}

TEST(IpFilter, FirstMatchWins) {
  IPFilter filter;
  ASSERT_TRUE(filter
                  .configure({"allow src 10.8.0.2", "drop src 10.8.0.0/24",
                              "allow all"})
                  .ok());
  CaptureSink pass, drop;
  filter.connect_output(0, &pass, 0);
  filter.connect_output(1, &drop, 0);

  filter.push(0, Packet::udp(Ipv4(10, 8, 0, 2), Ipv4(1, 1, 1, 1), 1, 2, {}));
  filter.push(0, Packet::udp(Ipv4(10, 8, 0, 3), Ipv4(1, 1, 1, 1), 1, 2, {}));
  filter.push(0, Packet::udp(Ipv4(9, 9, 9, 9), Ipv4(1, 1, 1, 1), 1, 2, {}));
  EXPECT_EQ(pass.packets.size(), 2u);
  EXPECT_EQ(drop.packets.size(), 1u);
  EXPECT_TRUE(drop.packets[0].dropped);
  EXPECT_EQ(filter.dropped(), 1u);
}

TEST(IpFilter, UnmatchedPacketsPass) {
  IPFilter filter;
  // The paper's FW set-up: 16 rules that match nothing.
  std::vector<std::string> rules;
  for (int i = 0; i < 16; ++i)
    rules.push_back("drop src 203.0.113." + std::to_string(i));
  ASSERT_TRUE(filter.configure(rules).ok());
  EXPECT_EQ(filter.rule_count(), 16u);
  CaptureSink pass;
  filter.connect_output(0, &pass, 0);
  filter.push(0, make_udp());
  EXPECT_EQ(pass.packets.size(), 1u);
  EXPECT_EQ(filter.rules_evaluated(), 16u);  // all rules were evaluated
}

TEST(IpFilter, PortAndProtoConditions) {
  IPFilter filter;
  ASSERT_TRUE(filter.configure({"drop proto udp dst port 53"}).ok());
  CaptureSink pass, drop;
  filter.connect_output(0, &pass, 0);
  filter.connect_output(1, &drop, 0);
  filter.push(0, make_udp(53));
  filter.push(0, make_udp(80));
  Packet tcp53 = Packet::tcp(Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 1, 53, 0, 0, 0, {});
  filter.push(0, std::move(tcp53));
  EXPECT_EQ(drop.packets.size(), 1u);
  EXPECT_EQ(pass.packets.size(), 2u);
}

// ---- Hot swap -------------------------------------------------------------

TEST(HotSwap, SwapsAtomicallyAndKeepsState) {
  auto registry = registry_with_sink();
  RouterManager manager(registry);
  ASSERT_TRUE(manager.install("in :: Counter; sink :: CaptureSink; in -> sink;").ok());
  manager.current()->push_to("in", make_udp());
  EXPECT_EQ(manager.current()->find_as<Counter>("in")->packets(), 1u);

  // New config keeps element 'in' (Counter): its count must survive.
  ASSERT_TRUE(manager
                  .hot_swap("in :: Counter; mid :: Queue(10); sink :: CaptureSink;"
                            "in -> mid; ")
                  .ok());
  EXPECT_EQ(manager.swap_count(), 1u);
  EXPECT_EQ(manager.current()->find_as<Counter>("in")->packets(), 1u);
  EXPECT_NE(manager.current()->find("mid"), nullptr);
}

TEST(HotSwap, FailedSwapKeepsOldRouter) {
  auto registry = ElementRegistry::with_standard_elements();
  RouterManager manager(registry);
  ASSERT_TRUE(manager.install("a :: Counter;").ok());
  Router* before = manager.current();
  EXPECT_FALSE(manager.hot_swap("broken :: NoSuchClass;").ok());
  EXPECT_EQ(manager.current(), before);
  EXPECT_EQ(manager.swap_count(), 0u);
}

TEST(HotSwap, StateNotTransferredAcrossDifferentClasses) {
  auto registry = ElementRegistry::with_standard_elements();
  RouterManager manager(registry);
  ASSERT_TRUE(manager.install("x :: Counter;").ok());
  manager.current()->push_to("x", make_udp());
  // 'x' changes class: no state transfer, fresh Queue.
  ASSERT_TRUE(manager.hot_swap("x :: Queue(5);").ok());
  EXPECT_NE(manager.current()->find_as<Queue>("x"), nullptr);
}

TEST(HotSwap, FlowTableSurvivesSwap) {
  auto registry = ElementRegistry::with_standard_elements();
  RouterManager manager(registry);
  ASSERT_TRUE(manager.install("lb :: RoundRobinSwitch(2, FLOW); c0 :: Counter; "
                              "c1 :: Counter; lb -> c0; lb[1] -> c1;").ok());
  auto* lb = manager.current()->find_as<RoundRobinSwitch>("lb");
  lb->push(0, make_udp());
  EXPECT_EQ(lb->tracked_flows(), 1u);
  ASSERT_TRUE(manager.hot_swap("lb :: RoundRobinSwitch(2, FLOW); c0 :: Counter; "
                               "c1 :: Counter; lb -> c0; lb[1] -> c1;").ok());
  EXPECT_EQ(manager.current()->find_as<RoundRobinSwitch>("lb")->tracked_flows(), 1u);
}

}  // namespace
}  // namespace endbox::click
