// End-to-end chaos suite (the robustness tentpole): a fleet of VPN
// clients drives the resilient control plane through a star topology
// whose every link drops, duplicates, reorders and corrupts frames,
// with a scripted mid-run blackout + server restart. The suite asserts
// the properties the reliability layer exists for:
//
//   - every legitimate client reconverges within its capped retries,
//   - after recovery, with faults cleared, not a single packet is lost
//     in either direction,
//   - an admission storm stays inside the per-shard capacity bound
//     (LRU eviction recycles stale sessions; nothing is rejected) and
//     the eviction counters drive the adaptive reshard controller,
//   - the whole run is deterministic for a fixed seed at 1/2/4 shards.
//
// ENDBOX_CHAOS_ITERS shrinks the storm size for sanitizer CI jobs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <queue>
#include <sstream>
#include <string>
#include <vector>

#include "ca/authority.hpp"
#include "common/rng.hpp"
#include "endbox/reshard_controller.hpp"
#include "netsim/topology.hpp"
#include "sgx/enclave.hpp"
#include "sgx/platform.hpp"
#include "vpn/client.hpp"
#include "vpn/control.hpp"
#include "vpn/server.hpp"

namespace endbox::vpn {
namespace {

std::size_t chaos_iters(std::size_t fallback) {
  if (const char* env = std::getenv("ENDBOX_CHAOS_ITERS")) {
    long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

// One frame in flight through the simulated network.
struct Flight {
  sim::Time at = 0;
  std::uint64_t seq = 0;  ///< FIFO tiebreak for equal arrivals
  bool to_server = false;
  std::size_t client = 0;  ///< sender (uplink) or receiver (downlink)
  Bytes wire;
};

struct FlightLater {
  bool operator()(const Flight& a, const Flight& b) const {
    return a.at != b.at ? a.at > b.at : a.seq > b.seq;
  }
};

// The chaos harness: CA + attested certificate (shared by the fleet,
// as in the tunnel tests), a VpnServer, N clients each owning a
// VpnClientSession + ClientControlPlane, and a star topology whose
// faulty links decide the fate of every frame. A priority queue of
// in-flight frames plays arrivals back in time order, so reordered
// copies genuinely overtake and the run is fully deterministic.
struct ChaosWorld {
  struct Client {
    explicit Client(VpnClientSession s) : session(std::move(s)) {}
    VpnClientSession session;
    std::unique_ptr<ClientControlPlane> cp;
    std::uint64_t data_sent = 0;       ///< IP packets offered uplink
    std::uint64_t data_received = 0;   ///< IP packets opened downlink
    std::uint64_t server_received = 0; ///< this client's packets seen by server
  };

  Rng rng;
  sim::Clock clock;
  sgx::AttestationService ias{rng};
  ca::CertificateAuthority authority{rng, ias};
  sgx::SgxPlatform platform{"chaos-host", rng, clock};
  sgx::Enclave enclave{platform, "endbox-v1", sgx::SgxMode::Hardware};
  crypto::RsaKeyPair enclave_key = crypto::rsa_generate(rng);
  bool registrations_done = [this] {
    ias.register_platform("chaos-host", platform.attestation_key().pub);
    authority.allow_measurement(enclave.measurement());
    return true;
  }();
  VpnServer server;
  ca::Certificate certificate;
  sim::PerfModel model;
  netsim::StarTopology topo{model};

  std::vector<std::unique_ptr<Client>> fleet;
  std::priority_queue<Flight, std::vector<Flight>, FlightLater> flights;
  std::uint64_t next_seq = 0;
  std::map<std::uint32_t, std::size_t> session_owner;
  sim::Time now = 0;
  bool echo_packets = true;  ///< server bounces every PacketIn back

  ChaosWorld(std::uint64_t seed, VpnServerConfig server_config)
      : rng(seed), server(rng, authority.public_key(), server_config) {
    sgx::QuotingEnclave qe(platform);
    auto quote = qe.quote(enclave.create_report(
        sgx::bind_report_data(enclave_key.pub.serialize())));
    auto response = authority.provision(quote->serialize(), enclave_key.pub);
    certificate = response->certificate;
  }

  std::size_t add_client(ControlPlaneConfig cp_config) {
    std::size_t i = fleet.size();
    topo.add_client("chaos-" + std::to_string(i));
    fleet.push_back(std::make_unique<Client>(VpnClientSession(
        rng, certificate, enclave_key, server.public_key(), {})));
    Client* c = fleet.back().get();
    cp_config.seed ^= 0x9e3779b97f4a7c15ull * (i + 1);  // decorrelate jitter
    ClientControlPlane::Hooks hooks;
    hooks.make_init = [c]() -> Result<Bytes> {
      return c->session.create_handshake_init().serialize();
    };
    hooks.on_reply = [c](ByteView wire) -> Status {
      auto parsed = WireMessage::parse(wire);
      if (!parsed.ok()) return err(parsed.error());
      return c->session.process_handshake_reply(*parsed);
    };
    hooks.make_ping = [c](Bytes& frame) -> Status {
      if (!c->session.established()) return err("not established");
      c->session.create_ping_wire(frame);
      return {};
    };
    hooks.on_ping = [c](ByteView wire, sim::Time) -> Status {
      auto parsed = WireMessage::parse(wire);
      if (!parsed.ok()) return err(parsed.error());
      auto info = c->session.process_ping(*parsed);
      if (!info.ok()) return err(info.error());
      return {};
    };
    hooks.send = [this, i](ByteView wire, sim::Time t) {
      send_to_server(i, wire, t);
    };
    c->cp = std::make_unique<ClientControlPlane>(cp_config, std::move(hooks));
    return i;
  }

  void send_to_server(std::size_t i, ByteView wire, sim::Time t) {
    auto outcome = topo.deliver_to_server_faulty(i, t, wire.size());
    for (const auto& d : outcome) {
      Bytes copy(wire.begin(), wire.end());
      d.apply(copy);
      flights.push({d.at, next_seq++, true, i, std::move(copy)});
    }
  }

  void send_to_client(std::size_t i, ByteView wire, sim::Time t) {
    auto outcome = topo.deliver_to_client_faulty(i, t, wire.size());
    for (const auto& d : outcome) {
      Bytes copy(wire.begin(), wire.end());
      d.apply(copy);
      flights.push({d.at, next_seq++, false, i, std::move(copy)});
    }
  }

  void server_receive(std::size_t from, const Bytes& wire, sim::Time t) {
    auto event = server.handle(wire, t);
    if (!event.ok()) return;  // a lossy network sends plenty of garbage
    if (auto* done = std::get_if<VpnServer::HandshakeDone>(&*event)) {
      session_owner[done->session_id] = from;
      send_to_client(from, done->reply_wire, t);
    } else if (auto* packet = std::get_if<VpnServer::PacketIn>(&*event)) {
      auto owner = session_owner.find(packet->session_id);
      if (owner == session_owner.end()) return;
      fleet[owner->second]->server_received++;
      if (echo_packets) {
        for (const auto& frame :
             server.seal_packet(packet->session_id, packet->ip_packet))
          send_to_client(owner->second, frame.serialize(), t);
      }
    } else if (auto* ping = std::get_if<VpnServer::PingIn>(&*event)) {
      auto owner = session_owner.find(ping->session_id);
      if (owner == session_owner.end()) return;
      send_to_client(owner->second,
                     server.create_ping(ping->session_id).serialize(), t);
    }
  }

  void client_receive(std::size_t i, const Bytes& wire, sim::Time t) {
    Client& c = *fleet[i];
    if (wire.empty()) return;
    MsgType type = static_cast<MsgType>(wire[0]);
    if (type == MsgType::Data || type == MsgType::DataIntegrityOnly) {
      auto parsed = WireMessage::parse(wire);
      if (!parsed.ok()) {
        c.cp->note_auth_failure(t);
        return;
      }
      auto opened = c.session.open_data(*parsed);
      if (!opened.ok()) {
        c.cp->note_auth_failure(t);
        return;
      }
      c.cp->note_peer_activity(t);
      if (opened->has_value()) c.data_received++;
      return;
    }
    // Control frames (HandshakeReply / Ping) — and corrupted garbage,
    // which deliver() rejects without touching any schedule.
    (void)c.cp->deliver(wire, t);
  }

  /// Advances virtual time to `until`, playing back arrivals in time
  /// order and driving every control plane's timers each tick.
  void pump_until(sim::Time until, sim::Time tick = 10 * sim::kMillisecond) {
    while (now < until) {
      now = std::min(now + tick, until);
      while (!flights.empty() && flights.top().at <= now) {
        Flight f = flights.top();
        flights.pop();
        if (f.to_server)
          server_receive(f.client, f.wire, f.at);
        else
          client_receive(f.client, f.wire, f.at);
      }
      for (auto& c : fleet) c->cp->advance(now);
    }
  }

  /// Sends one small data packet from every fully-established client.
  void broadcast_data() {
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      Client& c = *fleet[i];
      if (!c.session.established() || !c.cp->established()) continue;
      Bytes payload = {0xda, static_cast<std::uint8_t>(i),
                       static_cast<std::uint8_t>(c.data_sent),
                       static_cast<std::uint8_t>(c.data_sent >> 8)};
      for (const auto& frame : c.session.seal_packet(payload))
        send_to_server(i, frame.serialize(), now);
      c.data_sent++;
    }
  }

  bool all_established() const {
    for (const auto& c : fleet)
      if (!c->cp->established() || !c->session.established() ||
          !server.has_session(c->session.session_id()))
        return false;
    return true;
  }
};

ControlPlaneConfig chaos_cp_config() {
  ControlPlaneConfig config;
  config.retry_initial = 100 * sim::kMillisecond;
  config.retry_backoff = 2.0;
  config.retry_max = sim::kSecond;
  config.retry_jitter = 0.1;
  config.max_attempts = 12;
  config.keepalive_interval = 200 * sim::kMillisecond;
  config.dead_after_intervals = 3;
  config.rehandshake_auth_failures = 4;
  return config;
}

struct FleetResult {
  std::string digest;
  std::uint64_t rehandshakes_min = ~0ull;
  std::uint64_t retransmits_total = 0;
  bool converged = false;
  std::uint64_t clean_uplink_lost = 0;
  std::uint64_t clean_downlink_lost = 0;
};

constexpr std::uint64_t kChaosSeed = 0xc4a05;
constexpr std::size_t kFleetSize = 6;
constexpr std::uint64_t kCleanPackets = 20;

/// The full chaos scenario at a given shard count: connect under a 5%
/// drop / 2% duplicate / 10% reorder / 1% corrupt mix, blackout +
/// server restart at t=2s (links down until 2.5s), reconverge, then a
/// fault-free verification phase that must lose nothing.
FleetResult run_fleet(std::size_t shards, std::uint64_t seed) {
  VpnServerConfig server_config;
  server_config.session_shards = shards;
  server_config.session_capacity_per_shard = 64;
  ChaosWorld world(seed, server_config);

  netsim::FaultPlan plan;
  plan.seed = seed;
  plan.drop = 0.05;
  plan.duplicate = 0.02;
  plan.reorder = 0.10;
  plan.corrupt = 0.01;
  plan.reorder_delay = sim::from_millis(4.0);
  plan.down.push_back({2 * sim::kSecond, 2 * sim::kSecond + 500 * sim::kMillisecond});
  world.topo.set_fault_plan_all(plan);

  for (std::size_t i = 0; i < kFleetSize; ++i)
    world.add_client(chaos_cp_config());
  for (auto& c : world.fleet) (void)c->cp->start(0);

  // Phase A: chaotic steady state — everyone connects and chats.
  while (world.now < 2 * sim::kSecond) {
    world.pump_until(world.now + 50 * sim::kMillisecond);
    world.broadcast_data();
  }

  // Blackout: the server crashes and restarts (sessions gone, dedupe
  // cache gone, signing key kept) while the links flap down for 500ms.
  world.server.restart();

  // Phase B: reconvergence. Keepalive silence flags the dead peer,
  // re-keys ride the retry/backoff schedule through the tail of the
  // blackout, and the fleet re-establishes.
  while (world.now < 7 * sim::kSecond && !world.all_established()) {
    world.pump_until(world.now + 50 * sim::kMillisecond);
    world.broadcast_data();
  }

  FleetResult result;
  result.converged = world.all_established();
  if (!result.converged) return result;

  // Phase C: faults off, in-flight chaos stragglers drained, ledgers
  // zeroed — now nothing may be lost.
  world.topo.set_fault_plan_all(netsim::FaultPlan{});
  world.pump_until(world.now + sim::kSecond);
  std::vector<std::uint64_t> base_up, base_down;
  for (auto& c : world.fleet) {
    base_up.push_back(c->server_received);
    base_down.push_back(c->data_received);
  }
  for (std::uint64_t k = 0; k < kCleanPackets; ++k) {
    world.pump_until(world.now + 20 * sim::kMillisecond);
    world.broadcast_data();
  }
  world.pump_until(world.now + sim::kSecond);

  for (std::size_t i = 0; i < world.fleet.size(); ++i) {
    const auto& c = *world.fleet[i];
    result.clean_uplink_lost += kCleanPackets - (c.server_received - base_up[i]);
    result.clean_downlink_lost += kCleanPackets - (c.data_received - base_down[i]);
    result.rehandshakes_min = std::min(result.rehandshakes_min, c.cp->rehandshakes());
    result.retransmits_total += c.cp->handshake_retransmits();
  }

  std::ostringstream digest;
  digest << "uplink=" << world.topo.aggregate_frames() << ':'
         << world.topo.aggregate_bytes()
         << " updrop=" << world.topo.uplink().fault_stats().frames_dropped
         << " updup=" << world.topo.uplink().fault_stats().frames_duplicated
         << " upcorrupt=" << world.topo.uplink().fault_stats().frames_corrupted
         << " upreorder=" << world.topo.uplink().fault_stats().frames_reordered
         << " server=" << world.server.session_count() << ':'
         << world.server.auth_failures() << ':'
         << world.server.replays_rejected() << ':'
         << world.server.handshakes_deduped();
  for (const auto& c : world.fleet)
    digest << " c" << c->session.session_id() << '='
           << c->data_sent << ':' << c->data_received << ':'
           << c->server_received << ':' << c->cp->rehandshakes() << ':'
           << c->cp->handshake_retransmits() << ':' << c->cp->pings_sent();
  result.digest = digest.str();
  return result;
}

TEST(ChaosNet, FleetReconvergesThroughLossReorderCorruptionAndBlackout) {
  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    FleetResult result = run_fleet(shards, kChaosSeed);
    // Every legitimate client reconverged within its capped retries.
    EXPECT_TRUE(result.converged);
    // Every client detected the blackout and re-keyed at least once.
    EXPECT_GE(result.rehandshakes_min, 1u);
    // The lossy links made the retransmission layer do real work.
    EXPECT_GT(result.retransmits_total, 0u);
    // Post-recovery, with clean links, not one packet went missing in
    // either direction.
    EXPECT_EQ(result.clean_uplink_lost, 0u);
    EXPECT_EQ(result.clean_downlink_lost, 0u);
  }
}

TEST(ChaosNet, SameSeedSameShardCountReproducesTheRunExactly) {
  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    FleetResult a = run_fleet(shards, kChaosSeed);
    FleetResult b = run_fleet(shards, kChaosSeed);
    ASSERT_TRUE(a.converged);
    EXPECT_EQ(a.digest, b.digest);
  }
}

TEST(ChaosNet, DifferentSeedsDiverge) {
  FleetResult a = run_fleet(1, kChaosSeed);
  FleetResult b = run_fleet(1, kChaosSeed + 1);
  ASSERT_TRUE(a.converged);
  ASSERT_TRUE(b.converged);
  EXPECT_NE(a.digest, b.digest);
}

// An admission storm (every attacker holds a valid certificate — the
// worst case) must neither exhaust memory nor lock the tables: LRU
// eviction recycles the idle-longest session for every arrival beyond
// capacity, the per-shard occupancy ceiling never moves, and the
// eviction counters feed the adaptive reshard controller, which grows
// the shard count under the pressure.
TEST(ChaosNet, AdmissionStormStaysBoundedAndDrivesTheReshardController) {
  const std::size_t storm = std::max<std::size_t>(chaos_iters(4096), 512);
  constexpr std::size_t kCapacity = 64;

  VpnServerConfig server_config;
  server_config.session_shards = 1;
  server_config.session_capacity_per_shard = kCapacity;
  server_config.lru_eviction = true;
  server_config.handshake_pin = 0;  // storm sessions never speak: evictable
  ChaosWorld world(kChaosSeed, server_config);

  ReshardPolicy policy;
  policy.max_shards = 4;
  policy.shard_capacity = 200.0;   // evictions/interval one shard absorbs
  policy.eviction_pressure = 1.0;  // one eviction = one load unit
  AdaptiveReshardController controller(policy, 1);

  std::uint64_t evictions_seen = 0;
  sim::Time t = 0;
  for (std::size_t i = 0; i < storm; ++i) {
    t += sim::kMillisecond;
    VpnClientSession attacker(world.rng, world.certificate, world.enclave_key,
                              world.server.public_key(), {});
    auto event = world.server.handle(attacker.create_handshake_init().serialize(), t);
    ASSERT_TRUE(event.ok()) << event.error();
    // Per-shard occupancy never exceeds the configured bound.
    for (std::size_t s = 0; s < world.server.session_shard_count(); ++s)
      ASSERT_LE(world.server.shard_peak_sessions(s), kCapacity);
    if ((i + 1) % 256 == 0) {
      std::uint64_t delta = world.server.sessions_evicted_lru() - evictions_seen;
      evictions_seen = world.server.sessions_evicted_lru();
      std::size_t target = controller.observe(0.0, delta);
      if (target != world.server.session_shard_count()) {
        ASSERT_TRUE(world.server.reshard_sessions(target).ok());
      }
    }
  }

  // Bounded memory: live sessions fit the (grown) shard set; every
  // admission beyond capacity recycled a victim instead of rejecting.
  EXPECT_LE(world.server.session_count(),
            kCapacity * world.server.session_shard_count());
  EXPECT_EQ(world.server.sessions_rejected_full(), 0u);
  EXPECT_EQ(world.server.session_count() + world.server.sessions_evicted_lru(),
            storm);
  // The eviction signal reached the controller and it scaled out.
  EXPECT_GE(controller.grow_decisions(), 1u);
  EXPECT_GT(world.server.session_shard_count(), 1u);
  EXPECT_EQ(world.server.session_shard_count(), controller.shards());
}

// A storm with the handshake pin active must not evict mid-handshake
// sessions — established clients keep their slots (pins released by
// authenticated traffic), and the overflow is rejected, not leaked.
TEST(ChaosNet, StormNeverEvictsAnEstablishedChattyClient) {
  constexpr std::size_t kCapacity = 8;
  VpnServerConfig server_config;
  server_config.session_capacity_per_shard = kCapacity;
  server_config.lru_eviction = true;
  // Short pin: storm sessions become evictable before the next storm
  // arrival, so the LRU always has a staler victim than the residents.
  server_config.handshake_pin = 5 * sim::kMillisecond;
  ChaosWorld world(kChaosSeed, server_config);

  // Four legitimate clients connect and immediately speak (unpinning
  // themselves but staying recently-active).
  sim::Time t = 0;
  std::vector<VpnClientSession> residents;
  for (int i = 0; i < 4; ++i) {
    residents.emplace_back(world.rng, world.certificate, world.enclave_key,
                           world.server.public_key(), VpnClientConfig{});
    auto event = world.server.handle(
        residents.back().create_handshake_init().serialize(), t += sim::kMillisecond);
    ASSERT_TRUE(event.ok()) << event.error();
    auto reply = WireMessage::parse(
        std::get<VpnServer::HandshakeDone>(*event).reply_wire);
    ASSERT_TRUE(reply.ok());
    ASSERT_TRUE(residents.back().process_handshake_reply(*reply).ok());
  }
  const Bytes chatter = {0xaa, 0xbb};
  auto chat = [&](VpnClientSession& c) {
    for (const auto& frame : c.seal_packet(chatter))
      ASSERT_TRUE(world.server.handle(frame.serialize(), t).ok());
  };
  for (auto& c : residents) chat(c);

  // The storm arrives: stale storm sessions are fair game for the LRU,
  // but the residents keep chatting and are never the idle-longest.
  for (int i = 0; i < 64; ++i) {
    t += 10 * sim::kMillisecond;
    VpnClientSession attacker(world.rng, world.certificate, world.enclave_key,
                              world.server.public_key(), {});
    (void)world.server.handle(attacker.create_handshake_init().serialize(), t);
    for (auto& c : residents) chat(c);
  }
  for (auto& c : residents)
    EXPECT_TRUE(world.server.has_session(c.session_id()));
  for (std::size_t s = 0; s < world.server.session_shard_count(); ++s)
    EXPECT_LE(world.server.shard_peak_sessions(s), kCapacity);
}

}  // namespace
}  // namespace endbox::vpn
