// Adversarial property suite for the two-tier scanning engine: the
// Teddy-style literal prefilter's kernels (scalar SWAR vs SSSE3 vs
// AVX2) must agree bit-for-bit, candidate windows must cover every
// planted occurrence (soundness — false negatives are correctness
// bugs, false positives only cost confirm cycles), and the prefiltered
// inspect / inspect_batch / inspect_stream{,_batch} paths must be
// verdict-identical (match set, offsets, MASK bytes, once-per-flow
// firing) to the full-walk inspect*_reference family over randomized
// payloads, rule subsets and segmentations — including literals
// straddling chunk boundaries, nocase literals in raw (unlowered)
// text, the ENDBOX_FORCE_SCALAR dispatch override both ways, and the
// 1-byte-content fallback that disables the prefilter entirely.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/cpu_features.hpp"
#include "common/rng.hpp"
#include "idps/aho_corasick.hpp"
#include "idps/engine.hpp"
#include "idps/literal_prefilter.hpp"
#include "idps/snort_rules.hpp"

namespace endbox::idps {
namespace {

using net::Ipv4;
using net::Packet;

std::vector<ByteView> views_of(const std::vector<Bytes>& patterns) {
  return {patterns.begin(), patterns.end()};
}

/// Every kernel the machine can actually run (scalar always).
std::vector<LiteralPrefilter::Kernel> available_kernels() {
  std::vector<LiteralPrefilter::Kernel> kernels{
      common::SimdLevel::Scalar};
  common::SimdLevel hw = common::hardware_simd_level();
  if (hw >= common::SimdLevel::Ssse3)
    kernels.push_back(common::SimdLevel::Ssse3);
  if (hw >= common::SimdLevel::Avx2)
    kernels.push_back(common::SimdLevel::Avx2);
  return kernels;
}

/// RAII override of ENDBOX_FORCE_SCALAR for dispatch tests. Restores
/// the prior value so the CI leg that runs the whole binary under
/// ENDBOX_FORCE_SCALAR=1 stays forced for later tests.
struct ScopedForceScalar {
  ScopedForceScalar() {
    const char* prev = ::getenv("ENDBOX_FORCE_SCALAR");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    ::setenv("ENDBOX_FORCE_SCALAR", "1", 1);
  }
  ~ScopedForceScalar() {
    if (had_prev_)
      ::setenv("ENDBOX_FORCE_SCALAR", prev_.c_str(), 1);
    else
      ::unsetenv("ENDBOX_FORCE_SCALAR");
  }
  bool had_prev_ = false;
  std::string prev_;
};

Packet probe_packet() {
  return Packet::udp(Ipv4(10, 8, 0, 2), Ipv4(10, 0, 0, 1), 4242, 80, {});
}

/// Plants the full content list of a few random rules into `payload`
/// at random positions (possibly adjacent/overlapping planted runs).
void plant_rules(const std::vector<SnortRule>& rules, Bytes& payload,
                 Rng& rng) {
  for (std::size_t p = 0; p < 1 + rng.uniform(0, 2); ++p) {
    const SnortRule& rule = rules[rng.uniform(0, rules.size() - 1)];
    std::size_t at =
        payload.empty() ? 0 : rng.uniform(0, payload.size() - 1);
    for (const auto& content : rule.contents) {
      payload.insert(payload.begin() + static_cast<std::ptrdiff_t>(at),
                     content.bytes.begin(), content.bytes.end());
      at += content.bytes.size() + rng.uniform(0, 16);
      at = std::min(at, payload.size());
    }
  }
}

void expect_verdict_eq(const IdpsVerdict& got, const IdpsVerdict& want,
                       const std::string& where) {
  EXPECT_EQ(got.matched, want.matched) << where;
  EXPECT_EQ(got.drop, want.drop) << where;
  EXPECT_EQ(got.sid, want.sid) << where;
}

// ---- LiteralPrefilter ---------------------------------------------------

TEST(LiteralPrefilter, KernelsAgreeBitForBit) {
  // The SWAR fallback, SSSE3 and AVX2 kernels implement one candidate
  // predicate; over random texts seeded with fragments (including ones
  // straddling the 16B/32B block seams the SIMD kernels carry state
  // across) they must produce identical runs and candidate counts.
  Rng rng(42);
  std::vector<Bytes> patterns = {
      to_bytes("malware"), to_bytes("/etc/passwd"), to_bytes("evil"),
      to_bytes("xx"),      to_bytes("powershell -enc")};
  LiteralPrefilter filter;
  filter.build(views_of(patterns), false);
  ASSERT_TRUE(filter.usable());
  ASSERT_EQ(filter.fragment_width(), 2u);

  auto kernels = available_kernels();
  for (int round = 0; round < 200; ++round) {
    Bytes text = rng.bytes(rng.uniform(0, 200));
    if (round % 2 == 0 && !text.empty()) {
      const Bytes& p = patterns[rng.uniform(0, patterns.size() - 1)];
      std::size_t at = rng.uniform(0, text.size() - 1);
      // Truncate at the text end so partial fragments at the boundary
      // are exercised too.
      for (std::size_t j = 0; j < p.size() && at + j < text.size(); ++j)
        text[at + j] = p[j];
    }
    std::vector<CandidateRun> expected;
    std::size_t expected_count = 0;
    for (std::size_t k = 0; k < kernels.size(); ++k) {
      filter.force_kernel(kernels[k]);
      std::vector<CandidateRun> runs;
      std::size_t count = filter.find_runs(text, runs);
      if (k == 0) {
        expected = runs;
        expected_count = count;
      } else {
        EXPECT_EQ(runs, expected)
            << "round " << round << " kernel "
            << common::simd_level_name(kernels[k]);
        EXPECT_EQ(count, expected_count) << "round " << round;
      }
    }
  }
}

TEST(LiteralPrefilter, RunsCoverEveryPlantedOccurrence) {
  // Soundness: every occurrence of every pattern must lie wholly
  // inside one candidate run — including occurrences at offset 0, at
  // the very end, and back-to-back overlapping plants.
  Rng rng(7);
  std::vector<Bytes> patterns = {to_bytes("needle"), to_bytes("pin"),
                                 to_bytes("ab")};
  LiteralPrefilter filter;
  filter.build(views_of(patterns), false);
  ASSERT_TRUE(filter.usable());

  auto kernels = available_kernels();
  for (int round = 0; round < 200; ++round) {
    Bytes text = rng.bytes(20 + rng.uniform(0, 180));
    std::vector<std::pair<std::size_t, const Bytes*>> spans;
    for (int plant = 0; plant < 3; ++plant) {
      const Bytes& p = patterns[rng.uniform(0, patterns.size() - 1)];
      std::size_t at = round % 3 == 0 ? (plant == 0 ? 0 : text.size() - p.size())
                                      : rng.uniform(0, text.size() - p.size());
      std::copy(p.begin(), p.end(),
                text.begin() + static_cast<std::ptrdiff_t>(at));
      spans.emplace_back(at, &p);
    }
    for (auto kernel : kernels) {
      filter.force_kernel(kernel);
      std::vector<CandidateRun> runs;
      filter.find_runs(text, runs);
      for (auto [at, p] : spans) {
        // A later plant may have clobbered this one — only intact
        // occurrences must be covered.
        if (!std::equal(p->begin(), p->end(),
                        text.begin() + static_cast<std::ptrdiff_t>(at)))
          continue;
        std::size_t end = at + p->size();
        bool covered = false;
        for (const CandidateRun& run : runs)
          covered |= run.begin <= at && end <= run.end;
        EXPECT_TRUE(covered)
            << "round " << round << " span [" << at << "," << end
            << ") kernel " << common::simd_level_name(kernel);
      }
    }
  }
}

TEST(LiteralPrefilter, OneBytePatternIsUnusable) {
  std::vector<Bytes> patterns = {to_bytes("longpattern"), to_bytes("X")};
  LiteralPrefilter filter;
  filter.build(views_of(patterns), false);
  EXPECT_FALSE(filter.usable());
}

TEST(LiteralPrefilter, EmptyPatternSetIsUsableAndClean) {
  LiteralPrefilter filter;
  filter.build({}, false);
  EXPECT_TRUE(filter.usable());
  std::vector<CandidateRun> runs;
  Bytes text = to_bytes("anything at all");
  EXPECT_EQ(filter.find_runs(text, runs), 0u);
  EXPECT_TRUE(runs.empty());
}

TEST(LiteralPrefilter, CaseInsensitiveMasksAdmitRawUppercase) {
  // The nocase filter scans RAW text: masks built from the lower-cased
  // pattern must fire on any case mixture of the literal.
  std::vector<Bytes> patterns = {to_bytes("malware")};
  LiteralPrefilter filter;
  filter.build(views_of(patterns), true);
  ASSERT_TRUE(filter.usable());
  for (auto kernel : available_kernels()) {
    filter.force_kernel(kernel);
    for (const char* text : {"xx MALWARE yy", "xx MaLwArE yy", "malware"}) {
      Bytes raw = to_bytes(text);
      std::size_t at = std::string(text).find_first_of("mM");
      std::vector<CandidateRun> runs;
      filter.find_runs(raw, runs);
      bool covered = false;
      for (const CandidateRun& run : runs)
        covered |= run.begin <= at && at + 7 <= run.end;
      EXPECT_TRUE(covered) << text << " kernel "
                           << common::simd_level_name(kernel);
    }
  }
}

TEST(LiteralPrefilter, TextShorterThanFragmentHasNoCandidates) {
  std::vector<Bytes> patterns = {to_bytes("abcd")};
  LiteralPrefilter filter;
  filter.build(views_of(patterns), false);
  ASSERT_EQ(filter.fragment_width(), 4u);
  std::vector<CandidateRun> runs;
  Bytes text = to_bytes("abc");
  EXPECT_EQ(filter.find_runs(text, runs), 0u);
  EXPECT_TRUE(runs.empty());
}

// ---- Engine equivalence -------------------------------------------------

TEST(PrefilterEngine, InspectEqualsReferenceOnCommunityFuzz) {
  Rng rng(11);
  auto rules = generate_community_ruleset(150, rng);
  IdpsEngine engine(rules);
  IdpsEngine reference(rules);
  ASSERT_TRUE(engine.prefilter_enabled());
  IdpsEngine::InspectScratch scratch, ref_scratch;
  Packet probe = probe_packet();
  for (int round = 0; round < 150; ++round) {
    Bytes payload = rng.bytes(rng.uniform(0, 1600));
    if (round % 2 == 0) plant_rules(rules, payload, rng);
    auto got = engine.inspect(probe, payload, scratch);
    auto want = reference.inspect_reference(probe, payload, ref_scratch);
    expect_verdict_eq(got, want, "round " + std::to_string(round));
  }
  EXPECT_EQ(engine.alerts(), reference.alerts());
  EXPECT_EQ(engine.drops(), reference.drops());
  // Clean rounds never entered the automaton, so the prefilter did
  // real screening work.
  EXPECT_GT(engine.prefilter_stats().prefiltered_bytes, 0u);
  EXPECT_EQ(engine.prefilter_stats().fallback_scans, 0u);
}

TEST(PrefilterEngine, OneByteContentForcesFullWalkFallback) {
  // Regression for the sub-fragment-width literal: a 1-byte content
  // has no fragment, so a bucket miss would silently skip it — the
  // whole engine must fall back to the full walk and still match.
  auto rules = parse_snort_ruleset(
      "alert ip any any -> any any (content:\"Z\"; sid:1;)\n"
      "alert ip any any -> any any (content:\"longenough\"; sid:2;)\n");
  ASSERT_TRUE(rules.ok());
  IdpsEngine engine(*rules);
  EXPECT_FALSE(engine.prefilter_enabled());
  IdpsEngine::InspectScratch scratch;
  Packet probe = probe_packet();

  Bytes single = to_bytes("xx Z yy");
  auto verdict = engine.inspect(probe, single, scratch);
  EXPECT_TRUE(verdict.matched);
  EXPECT_EQ(verdict.sid, 1u);
  EXPECT_GT(engine.prefilter_stats().fallback_scans, 0u);
  EXPECT_EQ(engine.prefilter_stats().prefiltered_bytes, 0u);

  Bytes both = to_bytes("a longenough payload");
  verdict = engine.inspect(probe, both, scratch);
  EXPECT_TRUE(verdict.matched);

  // Stream path falls back too (and must still catch straddles via
  // the resumable walk).
  StreamMatchState state;
  auto v1 = engine.inspect_stream(probe, to_bytes("tail is longe"), state,
                                  scratch);
  EXPECT_FALSE(v1.matched);
  auto v2 = engine.inspect_stream(probe, to_bytes("nough yes"), state, scratch);
  EXPECT_TRUE(v2.matched);
  EXPECT_EQ(v2.sid, 2u);
  EXPECT_EQ(state.cross_segment_matches, 1u);
}

TEST(PrefilterEngine, BatchEqualsPerPacketAndReference) {
  Rng rng(23);
  auto rules = generate_community_ruleset(120, rng);
  IdpsEngine batch_engine(rules);
  IdpsEngine single_engine(rules);
  IdpsEngine ref_engine(rules);
  IdpsEngine::BatchScratch batch_scratch, ref_scratch;
  IdpsEngine::InspectScratch single_scratch;
  Packet probe = probe_packet();

  for (int round = 0; round < 20; ++round) {
    std::size_t n = 1 + rng.uniform(0, 31);
    std::vector<Bytes> storage(n);
    std::vector<ByteView> payloads(n);
    std::vector<const Packet*> packets(n, &probe);
    for (std::size_t i = 0; i < n; ++i) {
      storage[i] = rng.bytes(rng.uniform(0, 600));
      if (i % 3 == 0) plant_rules(rules, storage[i], rng);
      payloads[i] = storage[i];
    }
    std::vector<IdpsVerdict> got(n), ref(n);
    batch_engine.inspect_batch({packets.data(), n}, {payloads.data(), n},
                               batch_scratch, got.data());
    ref_engine.inspect_batch_reference({packets.data(), n},
                                       {payloads.data(), n}, ref_scratch,
                                       ref.data());
    for (std::size_t i = 0; i < n; ++i) {
      auto want = single_engine.inspect(probe, payloads[i], single_scratch);
      expect_verdict_eq(got[i], want, "round " + std::to_string(round) +
                                          " packet " + std::to_string(i));
      expect_verdict_eq(got[i], ref[i], "vs reference, round " +
                                            std::to_string(round) + " packet " +
                                            std::to_string(i));
    }
  }
  EXPECT_EQ(batch_engine.alerts(), single_engine.alerts());
  EXPECT_EQ(batch_engine.drops(), ref_engine.drops());
}

TEST(PrefilterEngine, StreamEqualsReferenceOverRandomSegmentations) {
  // The tail-carry stream path vs the resumable-state reference path,
  // over random payloads with planted contents and random chunk
  // boundaries — cuts deliberately land mid-pattern so the carried
  // tail is what catches the straddle. Verdicts, cross-segment
  // counts, MASK bytes and once-per-flow firing must all agree.
  Rng rng(31);
  auto rules = generate_community_ruleset(100, rng);
  IdpsEngine engine(rules);
  IdpsEngine reference(rules);
  ASSERT_TRUE(engine.prefilter_enabled());
  IdpsEngine::InspectScratch scratch, ref_scratch;
  Packet probe = probe_packet();

  for (int round = 0; round < 60; ++round) {
    Bytes stream = rng.bytes(100 + rng.uniform(0, 700));
    plant_rules(rules, stream, rng);
    Bytes masked = stream;      // prefiltered path masks this copy
    Bytes ref_masked = stream;  // reference path masks this one

    StreamMatchState state, ref_state;
    std::size_t pos = 0;
    while (pos < stream.size()) {
      std::size_t len = std::min<std::size_t>(stream.size() - pos,
                                              1 + rng.uniform(0, 48));
      // As in production, each mask aliases the scanned chunk — the
      // carried tail must hold the unmasked original bytes or a
      // straddling literal masked mid-way would be lost.
      auto got = engine.inspect_stream(
          probe, ByteView(masked.data() + pos, len), state, scratch,
          {masked.data() + pos, len});
      auto want = reference.inspect_stream_reference(
          probe, ByteView(ref_masked.data() + pos, len), ref_state, ref_scratch,
          {ref_masked.data() + pos, len});
      expect_verdict_eq(got, want, "round " + std::to_string(round) +
                                       " pos " + std::to_string(pos));
      pos += len;
    }
    EXPECT_EQ(state.cross_segment_matches, ref_state.cross_segment_matches)
        << "round " << round;
    EXPECT_EQ(state.bytes_masked, ref_state.bytes_masked) << "round " << round;
    EXPECT_EQ(state.bytes_scanned, ref_state.bytes_scanned);
    EXPECT_EQ(masked, ref_masked) << "round " << round;
    // Once-per-flow firing: the completed rule sets must coincide.
    auto completed = state.completed;
    auto ref_completed = ref_state.completed;
    std::sort(completed.begin(), completed.end());
    std::sort(ref_completed.begin(), ref_completed.end());
    EXPECT_EQ(completed, ref_completed) << "round " << round;
  }
  EXPECT_EQ(engine.alerts(), reference.alerts());
  EXPECT_EQ(engine.drops(), reference.drops());
}

TEST(PrefilterEngine, StreamBatchMatchesSequentialAtManyFlowCounts) {
  // inspect_stream_batch must equal per-chunk inspect_stream_reference
  // in burst order for 1/2/4/8 interleaved flows, including several
  // chunks of one flow inside one burst.
  Rng rng(47);
  auto rules = generate_community_ruleset(80, rng);
  Packet probe = probe_packet();
  for (std::size_t flows : {1u, 2u, 4u, 8u}) {
    IdpsEngine batched(rules);
    IdpsEngine sequential(rules);
    IdpsEngine::BatchScratch batch_scratch;
    IdpsEngine::InspectScratch seq_scratch;
    std::vector<StreamMatchState> batch_states(flows), seq_states(flows);

    // Each flow is one payload with planted contents, cut into chunks;
    // bursts interleave the flows' next chunks round-robin-ish.
    std::vector<Bytes> streams(flows);
    std::vector<std::vector<ByteView>> flow_chunks(flows);
    for (std::size_t f = 0; f < flows; ++f) {
      streams[f] = rng.bytes(150 + rng.uniform(0, 300));
      plant_rules(rules, streams[f], rng);
      std::size_t pos = 0;
      while (pos < streams[f].size()) {
        std::size_t len = std::min<std::size_t>(streams[f].size() - pos,
                                                1 + rng.uniform(0, 40));
        flow_chunks[f].emplace_back(streams[f].data() + pos, len);
        pos += len;
      }
    }
    std::vector<std::size_t> next(flows, 0);
    std::vector<std::pair<std::size_t, ByteView>> order;
    bool remaining = true;
    while (remaining) {
      remaining = false;
      for (std::size_t f = 0; f < flows; ++f) {
        // Sometimes two chunks of one flow in a row -> same burst.
        std::size_t take = 1 + rng.uniform(0, 1);
        for (std::size_t t = 0; t < take && next[f] < flow_chunks[f].size();
             ++t)
          order.emplace_back(f, flow_chunks[f][next[f]++]);
        remaining |= next[f] < flow_chunks[f].size();
      }
    }

    std::vector<IdpsVerdict> expected;
    for (const auto& [f, chunk] : order)
      expected.push_back(sequential.inspect_stream_reference(
          probe, chunk, seq_states[f], seq_scratch));

    // Deliver in bursts of up to 16.
    std::size_t done = 0;
    std::vector<IdpsVerdict> got(order.size());
    while (done < order.size()) {
      std::size_t n = std::min<std::size_t>(16, order.size() - done);
      std::vector<const Packet*> packets(n, &probe);
      std::vector<ByteView> chunks(n);
      std::vector<StreamMatchState*> states(n);
      for (std::size_t i = 0; i < n; ++i) {
        chunks[i] = order[done + i].second;
        states[i] = &batch_states[order[done + i].first];
      }
      batched.inspect_stream_batch({packets.data(), n}, {chunks.data(), n},
                                   {states.data(), n}, batch_scratch,
                                   got.data() + done);
      done += n;
    }
    for (std::size_t i = 0; i < order.size(); ++i)
      expect_verdict_eq(got[i], expected[i],
                        std::to_string(flows) + " flows, chunk " +
                            std::to_string(i));
    EXPECT_EQ(batched.alerts(), sequential.alerts()) << flows << " flows";
    EXPECT_EQ(batched.drops(), sequential.drops()) << flows << " flows";
    for (std::size_t f = 0; f < flows; ++f) {
      EXPECT_EQ(batch_states[f].cross_segment_matches,
                seq_states[f].cross_segment_matches)
          << flows << " flows, flow " << f;
      EXPECT_EQ(batch_states[f].bytes_scanned, seq_states[f].bytes_scanned);
    }
  }
}

TEST(PrefilterEngine, ForcedScalarDispatchMatchesSimd) {
  // The ENDBOX_FORCE_SCALAR override must pin the portable kernel at
  // engine construction — and the pinned engine must produce the same
  // verdicts as the hardware-dispatched one.
  Rng rng(59);
  auto rules = generate_community_ruleset(60, rng);
  IdpsEngine simd_engine(rules);
  EXPECT_EQ(simd_engine.cs_automaton().prefilter().kernel(),
            common::current_simd_level());

  ScopedForceScalar force;
  IdpsEngine scalar_engine(rules);
  EXPECT_EQ(scalar_engine.cs_automaton().prefilter().kernel(),
            common::SimdLevel::Scalar);
  EXPECT_EQ(scalar_engine.ci_automaton().prefilter().kernel(),
            common::SimdLevel::Scalar);

  IdpsEngine::InspectScratch a, b;
  Packet probe = probe_packet();
  for (int round = 0; round < 80; ++round) {
    Bytes payload = rng.bytes(rng.uniform(0, 1000));
    if (round % 2 == 0) plant_rules(rules, payload, rng);
    expect_verdict_eq(scalar_engine.inspect(probe, payload, a),
                      simd_engine.inspect(probe, payload, b),
                      "round " + std::to_string(round));
  }
  EXPECT_EQ(scalar_engine.alerts(), simd_engine.alerts());
}

TEST(PrefilterEngine, NocaseLiteralMatchesUppercaseRawPayload) {
  // Nocase contents are lowered into the masks; the raw (unlowered)
  // uppercase delivery must still be caught by the prefiltered path.
  auto rules = parse_snort_ruleset(
      "alert ip any any -> any any (content:\"malware\"; nocase; sid:9;)\n");
  ASSERT_TRUE(rules.ok());
  IdpsEngine engine(*rules);
  ASSERT_TRUE(engine.prefilter_enabled());
  IdpsEngine::InspectScratch scratch;
  Packet probe = probe_packet();
  for (const char* text : {"xx MALWARE yy", "xx MaLwArE yy", "malware!"}) {
    Bytes payload = to_bytes(text);
    auto verdict = engine.inspect(probe, payload, scratch);
    EXPECT_TRUE(verdict.matched) << text;
    EXPECT_EQ(verdict.sid, 9u) << text;
  }
  Bytes clean = to_bytes("nothing interesting here");
  EXPECT_FALSE(engine.inspect(probe, clean, scratch).matched);
}

TEST(PrefilterEngine, StreamStraddleAcrossTinyChunksIsCaught) {
  // 2-byte chunk delivery of a pattern: every chunk boundary lands
  // inside the literal, so only the carried tail can complete it.
  auto rules = parse_snort_ruleset(
      "drop ip any any -> any any (content:\"malware\"; sid:5;)\n");
  ASSERT_TRUE(rules.ok());
  IdpsEngine engine(*rules);
  ASSERT_TRUE(engine.prefilter_enabled());
  IdpsEngine::InspectScratch scratch;
  Packet probe = probe_packet();
  StreamMatchState state;
  std::string stream = "xxmalwareyy";
  bool matched = false;
  for (std::size_t pos = 0; pos < stream.size(); pos += 2) {
    std::string chunk = stream.substr(pos, 2);
    auto verdict = engine.inspect_stream(probe, to_bytes(chunk), state, scratch);
    matched |= verdict.matched;
  }
  EXPECT_TRUE(matched);
  EXPECT_EQ(state.cross_segment_matches, 1u);
  EXPECT_EQ(engine.drops(), 1u);
}

}  // namespace
}  // namespace endbox::idps
