// Tests for the SGX substrate: measurement, sealing, local/remote
// attestation, lifecycle/DoS semantics, EPC accounting.
#include <gtest/gtest.h>

#include "sgx/enclave.hpp"
#include "sgx/ias.hpp"
#include "sgx/platform.hpp"
#include "sgx/quote.hpp"

namespace endbox::sgx {
namespace {

struct TestEnclave : Enclave {
  using Enclave::Enclave;

  // A trivial ecall for transition/lifecycle tests.
  int ecall_add(int a, int b) {
    EcallGuard guard(*this);
    return a + b;
  }
  void ecall_with_ocall() {
    EcallGuard guard(*this);
    count_ocall();
  }
  void grab_epc(std::size_t n) { allocate_epc(n); }
  void drop_epc(std::size_t n) { free_epc(n); }
};

struct Fixture : ::testing::Test {
  Rng rng{42};
  sim::Clock clock;
  SgxPlatform platform{"machine-A", rng, clock};
  TestEnclave enclave{platform, "endbox-enclave-v1", SgxMode::Hardware};
};

TEST_F(Fixture, MeasurementIsDeterministicAndCodeBound) {
  EXPECT_EQ(enclave.measurement(), measure("endbox-enclave-v1"));
  EXPECT_NE(enclave.measurement(), measure("endbox-enclave-v2"));
}

TEST_F(Fixture, EcallsAreCountedAndWork) {
  EXPECT_EQ(enclave.ecall_add(2, 3), 5);
  EXPECT_EQ(enclave.ecall_add(1, 1), 2);
  EXPECT_EQ(enclave.transitions().ecalls, 2u);
  EXPECT_EQ(enclave.transitions().ocalls, 0u);
}

TEST_F(Fixture, OcallsAreCounted) {
  enclave.ecall_with_ocall();
  EXPECT_EQ(enclave.transitions().ecalls, 1u);
  EXPECT_EQ(enclave.transitions().ocalls, 1u);
}

TEST_F(Fixture, DestroyedEnclaveRejectsEntry) {
  enclave.destroy();
  EXPECT_THROW(enclave.ecall_add(1, 2), std::runtime_error);
  EXPECT_EQ(enclave.transitions().rejected_entries, 1u);
  enclave.start();
  EXPECT_EQ(enclave.ecall_add(1, 2), 3);
}

TEST_F(Fixture, TransitionStatsReset) {
  enclave.ecall_add(1, 2);
  enclave.reset_transition_stats();
  EXPECT_EQ(enclave.transitions().ecalls, 0u);
}

TEST_F(Fixture, EpcAccounting) {
  EXPECT_EQ(enclave.epc_used(), 0u);
  enclave.grab_epc(1024);
  EXPECT_EQ(enclave.epc_used(), 1024u);
  EXPECT_FALSE(enclave.epc_over_limit());
  enclave.grab_epc(kEpcBytes);
  EXPECT_TRUE(enclave.epc_over_limit());
  enclave.drop_epc(kEpcBytes + 2048);  // over-free clamps to zero
  EXPECT_EQ(enclave.epc_used(), 0u);
}

// ---- Sealing ---------------------------------------------------------

TEST_F(Fixture, SealUnsealRoundTrip) {
  Bytes secret = to_bytes("vpn-private-key-material");
  Bytes sealed = enclave.seal(secret);
  EXPECT_NE(sealed, secret);
  auto back = enclave.unseal(sealed);
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_EQ(*back, secret);
}

TEST_F(Fixture, SealedBlobsAreFreshPerCall) {
  Bytes secret = to_bytes("same data");
  EXPECT_NE(enclave.seal(secret), enclave.seal(secret));  // unique nonces
}

TEST_F(Fixture, UnsealRejectsTampering) {
  Bytes sealed = enclave.seal(to_bytes("secret"));
  for (std::size_t i : {std::size_t{0}, std::size_t{8}, sealed.size() - 1}) {
    Bytes bad = sealed;
    bad[i] ^= 1;
    EXPECT_FALSE(enclave.unseal(bad).ok()) << "flip at " << i;
  }
  EXPECT_FALSE(enclave.unseal(Bytes{}).ok());
}

TEST_F(Fixture, UnsealRejectsOtherEnclave) {
  // Different measurement on the same platform derives a different key.
  TestEnclave other(platform, "different-code", SgxMode::Hardware);
  Bytes sealed = enclave.seal(to_bytes("secret"));
  EXPECT_FALSE(other.unseal(sealed).ok());
}

TEST_F(Fixture, UnsealRejectsOtherPlatform) {
  Rng rng2(77);
  sim::Clock clock2;
  SgxPlatform other_machine("machine-B", rng2, clock2);
  TestEnclave same_code(other_machine, "endbox-enclave-v1", SgxMode::Hardware);
  Bytes sealed = enclave.seal(to_bytes("secret"));
  EXPECT_FALSE(same_code.unseal(sealed).ok());
}

// ---- Attestation ------------------------------------------------------

TEST_F(Fixture, LocalAttestationViaQuotingEnclave) {
  QuotingEnclave qe(platform);
  auto report = enclave.create_report(bind_report_data(to_bytes("pubkey")));
  auto quote = qe.quote(report);
  ASSERT_TRUE(quote.ok()) << quote.error();
  EXPECT_EQ(quote->mrenclave, enclave.measurement());
  EXPECT_EQ(quote->platform_id, "machine-A");
}

TEST_F(Fixture, QuotingEnclaveRejectsForgedReport) {
  QuotingEnclave qe(platform);
  auto report = enclave.create_report(bind_report_data(to_bytes("pubkey")));
  report.report_data[0] ^= 1;  // tamper after MAC
  EXPECT_FALSE(qe.quote(report).ok());
}

TEST_F(Fixture, QuotingEnclaveRejectsSimulationMode) {
  TestEnclave sim_enclave(platform, "endbox-enclave-v1", SgxMode::Simulation);
  QuotingEnclave qe(platform);
  auto report = sim_enclave.create_report(bind_report_data(to_bytes("k")));
  EXPECT_FALSE(qe.quote(report).ok());
}

TEST_F(Fixture, QuoteSerializationRoundTrip) {
  QuotingEnclave qe(platform);
  auto quote = qe.quote(enclave.create_report(bind_report_data(to_bytes("x"))));
  ASSERT_TRUE(quote.ok());
  auto back = Quote::deserialize(quote->serialize());
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_EQ(back->platform_id, quote->platform_id);
  EXPECT_EQ(back->mrenclave, quote->mrenclave);
  EXPECT_EQ(back->signature, quote->signature);
}

TEST_F(Fixture, QuoteDeserializeRejectsGarbage) {
  EXPECT_FALSE(Quote::deserialize(Bytes{1, 2, 3}).ok());
  QuotingEnclave qe(platform);
  auto quote = qe.quote(enclave.create_report(bind_report_data(to_bytes("x"))));
  Bytes wire = quote->serialize();
  wire.push_back(0);  // trailing byte
  EXPECT_FALSE(Quote::deserialize(wire).ok());
}

struct IasFixture : Fixture {
  AttestationService ias{rng};
  QuotingEnclave qe{platform};

  IasFixture() { ias.register_platform("machine-A", platform.attestation_key().pub); }
};

TEST_F(IasFixture, EndToEndRemoteAttestation) {
  auto report = enclave.create_report(bind_report_data(to_bytes("enclave-pubkey")));
  auto quote = qe.quote(report);
  ASSERT_TRUE(quote.ok());
  auto avr = ias.verify(quote->serialize());
  ASSERT_TRUE(avr.ok()) << avr.error();
  EXPECT_TRUE(avr->is_valid);
  EXPECT_EQ(avr->mrenclave, enclave.measurement());
  EXPECT_TRUE(AttestationService::verify_avr(*avr, ias.report_signing_public_key()));
}

TEST_F(IasFixture, UnknownPlatformIsInvalid) {
  Rng rng2(123);
  sim::Clock clock2;
  SgxPlatform rogue("machine-EVIL", rng2, clock2);
  TestEnclave rogue_enclave(rogue, "endbox-enclave-v1", SgxMode::Hardware);
  QuotingEnclave rogue_qe(rogue);
  auto quote = rogue_qe.quote(rogue_enclave.create_report(bind_report_data(to_bytes("k"))));
  ASSERT_TRUE(quote.ok());
  auto avr = ias.verify(quote->serialize());
  ASSERT_TRUE(avr.ok());
  EXPECT_FALSE(avr->is_valid);  // signed AVR saying "not genuine"
  EXPECT_TRUE(AttestationService::verify_avr(*avr, ias.report_signing_public_key()));
}

TEST_F(IasFixture, TamperedQuoteSignatureIsInvalid) {
  auto quote = qe.quote(enclave.create_report(bind_report_data(to_bytes("k"))));
  ASSERT_TRUE(quote.ok());
  quote->signature[0] ^= 1;
  auto avr = ias.verify(quote->serialize());
  ASSERT_TRUE(avr.ok());
  EXPECT_FALSE(avr->is_valid);
}

TEST_F(IasFixture, AvrForgeryDetected) {
  auto quote = qe.quote(enclave.create_report(bind_report_data(to_bytes("k"))));
  auto avr = ias.verify(quote->serialize());
  ASSERT_TRUE(avr.ok());
  auto forged = *avr;
  forged.is_valid = !forged.is_valid;
  EXPECT_FALSE(AttestationService::verify_avr(forged, ias.report_signing_public_key()));
}

// ---- Platform services --------------------------------------------------

TEST_F(Fixture, MonotonicCounters) {
  EXPECT_EQ(platform.read_counter("cfg"), 0u);
  EXPECT_EQ(platform.increment_counter("cfg"), 1u);
  EXPECT_EQ(platform.increment_counter("cfg"), 2u);
  EXPECT_EQ(platform.read_counter("cfg"), 2u);
  EXPECT_EQ(platform.read_counter("other"), 0u);
}

TEST_F(Fixture, TrustedTimeTracksClock) {
  EXPECT_EQ(enclave.trusted_time(), 0u);
  clock.advance_to(5 * sim::kSecond);
  EXPECT_EQ(enclave.trusted_time(), 5 * sim::kSecond);
}

TEST(ReportData, BindIsDeterministicHash) {
  auto a = bind_report_data(to_bytes("key1"));
  auto b = bind_report_data(to_bytes("key1"));
  auto c = bind_report_data(to_bytes("key2"));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // Last 32 bytes are zero by construction.
  for (std::size_t i = 32; i < kReportDataSize; ++i) EXPECT_EQ(a[i], 0);
}

}  // namespace
}  // namespace endbox::sgx
