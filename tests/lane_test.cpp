// Run-to-completion lane pipeline suite: SpscRing edge cases (full,
// empty, wraparound, slot-generation reuse, live-entry growth) and a
// two-thread producer/consumer stress run under TSan in CI; the
// AdaptiveReshardController's imbalance feed (observe_lanes splits a
// hot lane while the mean holds, refuses to shrink while a merge would
// overload the hot lane, and reduces to the scalar observe() on
// balanced lanes); the VpnServer lane pipeline end to end (per-session
// ordering at 1/2/4/8 lanes, lossless 1→8→2 reshard, starved-lane
// pool adoption, and a controller split driven by the server's own
// lane stats).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "ca/authority.hpp"
#include "click/spsc_ring.hpp"
#include "common/rng.hpp"
#include "endbox/reshard_controller.hpp"
#include "sgx/enclave.hpp"
#include "sgx/platform.hpp"
#include "vpn/client.hpp"
#include "vpn/server.hpp"

namespace endbox {
namespace {

// ---- SpscRing -------------------------------------------------------

TEST(SpscRing, FullAndEmptyEdges) {
  click::SpscRing<int> ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_TRUE(ring.empty());
  int out = 0;
  EXPECT_FALSE(ring.try_pop(out));  // empty pop fails, out untouched

  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(int(i)));
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_FALSE(ring.try_push(99));  // full push fails...
  EXPECT_EQ(ring.size(), 4u);       // ...and changes nothing

  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);  // FIFO
  }
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(click::SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(click::SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(click::SpscRing<int>(64).capacity(), 64u);
  EXPECT_EQ(click::SpscRing<int>(65).capacity(), 128u);
}

TEST(SpscRing, WraparoundAndSlotGenerationReuse) {
  // Positions are monotonic 64-bit counters masked into 4 slots, so
  // every slot is reused once per 4 operations; interleaved push/pop
  // at partial fill crosses the wrap boundary repeatedly and each
  // generation must read back its own values, not a neighbour's.
  click::SpscRing<std::uint64_t> ring(4);
  std::uint64_t next_push = 0, next_pop = 0, out = 0;
  for (int round = 0; round < 1000; ++round) {
    std::size_t burst = 1 + round % 3;
    for (std::size_t i = 0; i < burst; ++i)
      ASSERT_TRUE(ring.try_push(std::uint64_t(next_push++)));
    for (std::size_t i = 0; i < burst; ++i) {
      ASSERT_TRUE(ring.try_pop(out));
      ASSERT_EQ(out, next_pop++);
    }
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, PeakTracksProducerHighWater) {
  click::SpscRing<int> ring(8);
  EXPECT_EQ(ring.peak(), 0u);
  for (int i = 0; i < 3; ++i) ring.try_push(int(i));
  int out = 0;
  while (ring.try_pop(out)) {
  }
  ring.try_push(1);
  EXPECT_EQ(ring.peak(), 3u);  // high-water, not current depth
  ring.reset_peak();
  EXPECT_EQ(ring.peak(), 0u);
  ring.try_push(2);
  EXPECT_EQ(ring.peak(), 2u);  // depth after the reset: 2 queued
}

TEST(SpscRing, ReserveCarriesLiveEntries) {
  click::SpscRing<int> ring(4);
  // Advance past one wrap so the live run straddles the mask boundary,
  // then grow: the entries must land at their positions' new slots.
  int out = 0;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(ring.try_push(int(i)));
    if (i < 3) {
      ASSERT_TRUE(ring.try_pop(out));
    }
  }
  ASSERT_EQ(ring.size(), 3u);
  ring.reserve(16);
  EXPECT_EQ(ring.capacity(), 16u);
  for (int expected = 3; expected < 6; ++expected) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, expected);
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, ClearDropsQueuedEntries) {
  click::SpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) ring.try_push(int(i));
  ring.clear();
  EXPECT_TRUE(ring.empty());
  ring.try_push(42);
  int out = 0;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 42);
}

TEST(SpscRing, TwoThreadStress) {
  // One producer, one consumer, a ring much smaller than the stream:
  // both sides spin through full/empty backoffs, so the release/acquire
  // pairs publish every slot across real thread hand-offs (this suite
  // runs under TSan in CI). FIFO is asserted by value: the consumer
  // must see exactly 0..N-1 in order.
  // Both sides yield on a full/empty miss — on a single-core runner a
  // bare spin burns whole scheduler quanta per hand-off.
  constexpr std::uint64_t kItems = 100000;
  click::SpscRing<std::uint64_t> ring(16);
  std::uint64_t mismatches = 0;
  std::thread consumer([&] {
    std::uint64_t expected = 0, out = 0;
    while (expected < kItems) {
      if (ring.try_pop(out)) {
        if (out != expected) ++mismatches;
        ++expected;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (std::uint64_t i = 0; i < kItems; ++i)
    while (!ring.try_push(std::uint64_t(i))) std::this_thread::yield();
  consumer.join();
  EXPECT_EQ(mismatches, 0u);
  EXPECT_TRUE(ring.empty());
  EXPECT_GT(ring.peak(), 0u);
  EXPECT_LE(ring.peak(), 16u);
}

// ---- AdaptiveReshardController imbalance feed -----------------------

ReshardPolicy lane_policy() {
  ReshardPolicy policy;
  policy.min_shards = 1;
  policy.max_shards = 8;
  policy.shard_capacity = 100.0;
  policy.ewma_alpha = 0.5;
  policy.grow_above = 0.85;
  policy.shrink_below = 0.35;
  policy.cooldown_intervals = 0;
  return policy;
}

TEST(LaneController, SplitsHotLaneWhileMeanHolds) {
  // One lane near saturation, three lukewarm: the mean sits in the
  // hold band (0.35 <= 0.375 < 0.85), but the hot-lane EWMA crosses
  // grow_above, so the controller doubles — the imbalance-driven split
  // a scalar feed can never trigger.
  AdaptiveReshardController controller(lane_policy(), 4);
  std::vector<double> loads = {90.0, 20.0, 20.0, 20.0};
  EXPECT_LT((90.0 + 60.0) / (4 * 100.0), 0.85);  // mean under grow
  EXPECT_GE((90.0 + 60.0) / (4 * 100.0), 0.35);  // and over shrink
  std::size_t target = controller.observe_lanes(loads);
  EXPECT_EQ(target, 8u);
  EXPECT_EQ(controller.grow_decisions(), 1u);
  EXPECT_GT(controller.hot_lane_utilisation(), 0.85);
}

TEST(LaneController, BalancedLanesNeverSplitInHoldBand) {
  // A comparable total load spread evenly stays put (mean 0.5, hot
  // 0.5, both inside the hold band): the split above was driven by
  // imbalance, not by the aggregate.
  AdaptiveReshardController controller(lane_policy(), 4);
  std::vector<double> loads = {50.0, 50.0, 50.0, 50.0};
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(controller.observe_lanes(loads), 4u);
  EXPECT_EQ(controller.grow_decisions(), 0u);
  EXPECT_EQ(controller.shrink_decisions(), 0u);
}

TEST(LaneController, ShrinkHeldWhileMergeWouldOverloadHotLane) {
  // Mean utilisation is deep in the shrink band, but one lane carries
  // half a shard's capacity: merging would double that lane's load
  // past grow_above, so the shrink is vetoed until the hot lane cools.
  AdaptiveReshardController controller(lane_policy(), 4);
  std::vector<double> hot = {50.0, 1.0, 1.0, 1.0};
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(controller.observe_lanes(hot), 4u)
        << "shrink must hold while 2*hot_u > grow_above";
  }
  EXPECT_EQ(controller.shrink_decisions(), 0u);

  // Once the hot lane drains, the same mean machinery shrinks as ever.
  std::vector<double> cool = {10.0, 10.0, 10.0, 10.0};
  std::size_t shards = 4;
  for (int i = 0; i < 20 && shards > 2; ++i)
    shards = controller.observe_lanes(cool);
  EXPECT_EQ(shards, 2u);
  EXPECT_GE(controller.shrink_decisions(), 1u);
}

TEST(LaneController, ScalarObserveMatchesBalancedLaneFeed) {
  // observe(load) assumes balance (hot = load / shards): feeding the
  // same totals as exactly balanced lane vectors must reproduce every
  // decision, so the two entry points stay interchangeable for
  // balanced workloads.
  AdaptiveReshardController scalar(lane_policy(), 1);
  AdaptiveReshardController lanes(lane_policy(), 1);
  std::vector<double> ramp = {40, 90, 180, 360, 700, 700, 300,
                              120, 60,  30,  15,  15,  15};
  for (double total : ramp) {
    std::size_t from_scalar = scalar.observe(total);
    std::vector<double> even(lanes.shards(), total / lanes.shards());
    std::size_t from_lanes = lanes.observe_lanes(even);
    ASSERT_EQ(from_scalar, from_lanes) << "diverged at total " << total;
    ASSERT_DOUBLE_EQ(scalar.load_ewma(), lanes.load_ewma());
  }
}

// ---- VpnServer lane pipeline ---------------------------------------

Bytes to_bytes(std::string_view s) { return Bytes(s.begin(), s.end()); }

// Same twin-rig pattern as server_shard_test: shared PKI, fixed seeds.
struct Pki {
  Rng rng{0x5eed5a};
  sim::Clock clock;
  sgx::AttestationService ias{rng};
  ca::CertificateAuthority authority{rng, ias};
  sgx::SgxPlatform platform{"client-1", rng, clock};
  sgx::Enclave enclave{platform, "endbox-v1", sgx::SgxMode::Hardware};
  crypto::RsaKeyPair enclave_key = crypto::rsa_generate(rng);
  ca::Certificate certificate;

  Pki() {
    ias.register_platform("client-1", platform.attestation_key().pub);
    authority.allow_measurement(enclave.measurement());
    sgx::QuotingEnclave qe(platform);
    auto quote = qe.quote(enclave.create_report(
        sgx::bind_report_data(enclave_key.pub.serialize())));
    auto response = authority.provision(quote->serialize(), enclave_key.pub);
    certificate = response->certificate;
  }
};

struct LaneRig {
  Rng server_rng;
  vpn::VpnServer server;
  std::vector<std::unique_ptr<Rng>> client_rngs;
  std::vector<vpn::VpnClientSession> clients;

  LaneRig(Pki& pki, std::size_t lanes, std::size_t sessions,
          std::uint64_t seed = 0xfeed01)
      : server_rng(seed),
        server(server_rng, pki.authority.public_key(), [&] {
          vpn::VpnServerConfig config;
          config.session_shards = lanes;
          return config;
        }()) {
    clients.reserve(sessions);
    for (std::size_t i = 0; i < sessions; ++i) {
      client_rngs.push_back(std::make_unique<Rng>(seed ^ (0x1000 + i)));
      clients.emplace_back(*client_rngs.back(), pki.certificate,
                           pki.enclave_key, server.public_key(),
                           vpn::VpnClientConfig{});
      auto init = clients.back().create_handshake_init();
      auto event = server.handle(init.serialize(), 0);
      EXPECT_TRUE(event.ok()) << event.error();
      auto& done = std::get<vpn::VpnServer::HandshakeDone>(*event);
      auto reply = vpn::WireMessage::parse(done.reply_wire);
      EXPECT_TRUE(reply.ok());
      auto status = clients.back().process_handshake_reply(*reply);
      EXPECT_TRUE(status.ok()) << status.error();
    }
  }

  /// Seals `per_session` payloads per client, session-interleaved
  /// (s0 f0, s1 f0, ..., s0 f1, ...), so lanes interleave at dispatch.
  std::vector<Bytes> interleaved_burst(std::size_t per_session,
                                       int round = 0) {
    std::vector<Bytes> frames;
    for (std::size_t f = 0; f < per_session; ++f)
      for (std::size_t i = 0; i < clients.size(); ++i)
        clients[i].seal_packet_wire_at(
            to_bytes("lane payload r" + std::to_string(round) + " f" +
                     std::to_string(f) + " s" + std::to_string(i)),
            frames, frames.size());
    return frames;
  }
};

void expect_per_session_order(const vpn::VpnServer::OpenBatch& batch,
                              const char* what) {
  std::map<std::uint32_t, std::uint32_t> last_tag;
  for (std::size_t i = 0; i < batch.packet_count; ++i) {
    const auto& packet = batch.packets[i];
    auto it = last_tag.find(packet.session_id);
    if (it != last_tag.end()) {
      EXPECT_LT(it->second, packet.burst_tag)
          << what << ": session " << packet.session_id << " reordered at #"
          << i;
    }
    last_tag[packet.session_id] = packet.burst_tag;
  }
}

TEST(LanePipeline, PerSessionOrderHoldsAtEveryLaneCount) {
  Pki pki;
  for (std::size_t lanes : {1u, 2u, 4u, 8u}) {
    LaneRig rig(pki, lanes, 12, 0xabc000 + lanes);
    auto frames = rig.interleaved_burst(5);
    vpn::VpnServer::OpenBatch out;
    rig.server.open_batch(frames, 0, out);
    EXPECT_EQ(out.complete, frames.size()) << lanes << " lanes";
    EXPECT_EQ(out.rejected, 0u) << lanes << " lanes";
    EXPECT_EQ(out.packet_count, frames.size()) << lanes << " lanes";
    expect_per_session_order(out, "lane pipeline");
  }
}

TEST(LanePipeline, Reshard1To8To2LlosslessUnderTraffic) {
  Pki pki;
  LaneRig rig(pki, 1, 10);
  std::map<std::uint32_t, std::uint32_t> last_tag;
  int round = 0;
  for (std::size_t lanes : {1u, 8u, 2u}) {
    ASSERT_TRUE(rig.server.reshard_sessions(lanes).ok());
    EXPECT_EQ(rig.server.session_shard_count(), lanes);
    // Replay windows, session keys and per-session ordering must all
    // survive the migration: the next burst opens completely.
    auto frames = rig.interleaved_burst(4, round++);
    vpn::VpnServer::OpenBatch out;
    rig.server.open_batch(frames, 0, out);
    EXPECT_EQ(out.complete, frames.size()) << "at " << lanes << " lanes";
    EXPECT_EQ(out.rejected, 0u) << "at " << lanes << " lanes";
    expect_per_session_order(out, "resharded lane pipeline");
  }
  EXPECT_EQ(rig.server.session_count(), 10u);
}

TEST(LanePipeline, StarvedLaneAdoptsBuffersFromRichestSibling) {
  Pki pki;
  LaneRig rig(pki, 4, 12, 0xfeed22);
  // Find one lane with sessions and at least one populated sibling.
  std::vector<std::vector<std::size_t>> by_lane(4);
  for (std::size_t i = 0; i < rig.clients.size(); ++i)
    by_lane[rig.server.shard_of_session(rig.clients[i].session_id())]
        .push_back(i);
  std::size_t hot = 4;
  for (std::size_t l = 0; l < 4; ++l) {
    if (!by_lane[l].empty() && hot == 4) hot = l;
  }
  ASSERT_LT(hot, 4u);

  // Warm the sibling lanes' pools with fragmenting payloads: a
  // 3-fragment packet acquires three bodies but completes into one,
  // and the reassembler returns the surplus to the lane-local pool —
  // the only net pool growth in steady state. The hot lane's pool
  // stays cold because its sessions stay silent.
  vpn::VpnServer::OpenBatch out;
  for (int warm = 0; warm < 3; ++warm) {
    std::vector<Bytes> frames;
    for (std::size_t l = 0; l < 4; ++l) {
      if (l == hot) continue;
      for (std::size_t i : by_lane[l])
        for (int f = 0; f < 2; ++f)
          rig.clients[i].seal_packet_wire_at(
              Bytes(20000, static_cast<unsigned char>('a' + warm * 2 + f)),
              frames, frames.size());
    }
    rig.server.open_batch(frames, 0, out);
    ASSERT_EQ(out.rejected, 0u);
  }
  std::size_t richest = 0;
  for (std::size_t l = 0; l < 4; ++l) {
    if (l == hot) continue;
    richest = std::max(richest, rig.server.lane_pool_buffers(l));
  }
  ASSERT_GT(richest, 1u) << "warm-up must leave a donor with spare buffers";

  // Now flood the cold lane only: its first frames miss the empty pool
  // (pool_starved counts each heap fallback), and the end-of-burst
  // rebalance makes it adopt half the richest sibling's buffers
  // instead of staying on the heap forever.
  std::uint64_t refills_before = rig.server.pool_refills(hot);
  std::vector<Bytes> flood;
  for (std::size_t i : by_lane[hot])
    for (int f = 0; f < 8; ++f)
      rig.clients[i].seal_packet_wire_at(
          to_bytes("flood " + std::to_string(f)), flood, flood.size());
  rig.server.open_batch(flood, 0, out);
  EXPECT_EQ(out.rejected, 0u);
  EXPECT_GT(rig.server.pool_starved(hot), 0u);
  EXPECT_GT(rig.server.pool_refills(hot), refills_before)
      << "a starved lane must adopt buffers, not heap-allocate forever";
  EXPECT_GT(rig.server.lane_pool_buffers(hot), 0u);
}

TEST(LanePipeline, ServerLaneStatsDriveHotLaneSplit) {
  // End to end: a skewed burst leaves one lane's ring peak and frame
  // count far above its siblings'; feeding exactly those per-lane
  // stats into observe_lanes splits the lane while the mean sits in
  // the hold band — ring depth and busy share are the controller's
  // imbalance signal, not a synthetic vector.
  Pki pki;
  LaneRig rig(pki, 4, 12, 0xfeed33);
  std::vector<std::vector<std::size_t>> by_lane(4);
  for (std::size_t i = 0; i < rig.clients.size(); ++i)
    by_lane[rig.server.shard_of_session(rig.clients[i].session_id())]
        .push_back(i);
  std::size_t hot = 0;
  for (std::size_t l = 1; l < 4; ++l)
    if (by_lane[l].size() > by_lane[hot].size()) hot = l;
  ASSERT_FALSE(by_lane[hot].empty());

  // 40 frames to the hot lane, ≤2 to each other lane.
  rig.server.reset_lane_stats();
  std::vector<Bytes> frames;
  for (int f = 0; f < 40; ++f)
    rig.clients[by_lane[hot][static_cast<std::size_t>(f) %
                            by_lane[hot].size()]]
        .seal_packet_wire_at(to_bytes("hot " + std::to_string(f)), frames,
                             frames.size());
  for (std::size_t l = 0; l < 4; ++l) {
    if (l == hot || by_lane[l].empty()) continue;
    for (int f = 0; f < 2; ++f)
      rig.clients[by_lane[l][0]].seal_packet_wire_at(
          to_bytes("cold " + std::to_string(f)), frames, frames.size());
  }
  vpn::VpnServer::OpenBatch out;
  rig.server.open_batch(frames, 0, out);
  ASSERT_EQ(out.rejected, 0u);

  std::vector<double> lane_load;
  for (std::size_t l = 0; l < 4; ++l) {
    EXPECT_EQ(rig.server.lane_frames(l),
              rig.server.lane_ring_peak(l));  // drained run-to-completion
    lane_load.push_back(static_cast<double>(rig.server.lane_frames(l)));
  }
  EXPECT_EQ(rig.server.lane_frames(hot), 40u);

  ReshardPolicy policy = lane_policy();
  policy.shard_capacity = 44.0;  // hot lane ~0.9, mean ~0.26: hold band
  AdaptiveReshardController controller(policy, 4);
  std::size_t target = controller.observe_lanes(lane_load);
  EXPECT_EQ(target, 8u) << "ring/busy imbalance must split the hot lane";
  EXPECT_EQ(controller.grow_decisions(), 1u);
  ASSERT_TRUE(rig.server.reshard_sessions(target).ok());
  EXPECT_EQ(rig.server.session_shard_count(), 8u);
}

}  // namespace
}  // namespace endbox
