// Unit tests for src/crypto against published test vectors (SHA-256,
// HMAC-SHA-256, AES-128) plus property tests for modes and toy-RSA.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/aes.hpp"
#include "crypto/hmac.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"

namespace endbox::crypto {
namespace {

using endbox::Rng;

// ---- SHA-256 (FIPS 180-4 / NIST vectors) -------------------------------

TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(sha256({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(sha256(to_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(to_hex(sha256(to_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  auto d = h.finish();
  EXPECT_EQ(to_hex(ByteView(d.data(), d.size())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Rng rng(42);
  Bytes data = rng.bytes(10000);
  // Split at awkward boundaries relative to the 64-byte block size.
  for (std::size_t split : {1u, 63u, 64u, 65u, 127u, 5000u}) {
    Sha256 h;
    h.update(ByteView(data.data(), split));
    h.update(ByteView(data.data() + split, data.size() - split));
    auto inc = h.finish();
    auto oneshot = Sha256::hash(data);
    EXPECT_EQ(inc, oneshot) << "split=" << split;
  }
}

// ---- HMAC-SHA-256 (RFC 4231) -------------------------------------------

TEST(Hmac, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac_sha256(key, to_bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(
      to_hex(hmac_sha256(to_bytes("Jefe"), to_bytes("what do ya want for nothing?"))),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes data(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  // RFC 4231 case 6: 131-byte key.
  Bytes key(131, 0xaa);
  EXPECT_EQ(to_hex(hmac_sha256(
                key, to_bytes("Test Using Larger Than Block-Size Key - Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, VerifyAcceptsAndRejects) {
  Bytes key = to_bytes("secret");
  Bytes msg = to_bytes("payload");
  Bytes mac = hmac_sha256(key, msg);
  EXPECT_TRUE(hmac_verify(key, msg, mac));
  mac[0] ^= 1;
  EXPECT_FALSE(hmac_verify(key, msg, mac));
  EXPECT_FALSE(hmac_verify(key, to_bytes("other"), hmac_sha256(key, msg)));
}

TEST(Hmac, DeriveKeyLengthsAndDomainSeparation) {
  Bytes master = to_bytes("master-secret");
  auto k16 = derive_key(master, "enc", 16);
  auto k64 = derive_key(master, "enc", 64);
  auto other = derive_key(master, "mac", 16);
  EXPECT_EQ(k16.size(), 16u);
  EXPECT_EQ(k64.size(), 64u);
  // Same label: prefix property; different label: unrelated.
  EXPECT_TRUE(std::equal(k16.begin(), k16.end(), k64.begin()));
  EXPECT_NE(k16, other);
}

// ---- AES-128 (FIPS 197 appendix + NIST SP 800-38A vectors) ---------------

TEST(Aes, Fips197Block) {
  auto key = make_aes_key(*from_hex("000102030405060708090a0b0c0d0e0f"));
  auto pt = *from_hex("00112233445566778899aabbccddeeff");
  Aes128 aes(key);
  std::uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(to_hex(ByteView(ct, 16)), "69c4e0d86a7b0430d8cdb78070b4c55a");
  std::uint8_t back[16];
  aes.decrypt_block(ct, back);
  EXPECT_EQ(to_hex(ByteView(back, 16)), to_hex(pt));
}

TEST(Aes, Sp80038aEcbVector) {
  auto key = make_aes_key(*from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  auto pt = *from_hex("6bc1bee22e409f96e93d7e117393172a");
  Aes128 aes(key);
  std::uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(to_hex(ByteView(ct, 16)), "3ad77bb40d7a3660a89ecaf32466ef97");
}

TEST(Aes, Sp80038aCbcVector) {
  auto key = make_aes_key(*from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  auto iv = *from_hex("000102030405060708090a0b0c0d0e0f");
  auto pt = *from_hex("6bc1bee22e409f96e93d7e117393172a");
  Bytes ct = aes128_cbc_encrypt(key, iv, pt);
  // First block matches the NIST vector; the rest is PKCS#7 padding block.
  ASSERT_GE(ct.size(), 16u);
  EXPECT_EQ(to_hex(ByteView(ct.data(), 16)), "7649abac8119b246cee98e9b12e9197d");
}

TEST(Aes, CbcRoundTripVariousSizes) {
  Rng rng(1);
  auto key = make_aes_key(rng.bytes(16));
  for (std::size_t size : {0u, 1u, 15u, 16u, 17u, 31u, 32u, 1000u, 1500u}) {
    Bytes pt = rng.bytes(size);
    Bytes iv = rng.bytes(16);
    Bytes ct = aes128_cbc_encrypt(key, iv, pt);
    EXPECT_EQ(ct.size() % 16, 0u);
    EXPECT_GT(ct.size(), pt.size());  // always padded
    auto back = aes128_cbc_decrypt(key, iv, ct);
    ASSERT_TRUE(back.ok()) << back.error();
    EXPECT_EQ(*back, pt) << "size=" << size;
  }
}

TEST(Aes, CbcDecryptRejectsGarbage) {
  Rng rng(2);
  auto key = make_aes_key(rng.bytes(16));
  Bytes iv = rng.bytes(16);
  EXPECT_FALSE(aes128_cbc_decrypt(key, iv, Bytes{}).ok());
  EXPECT_FALSE(aes128_cbc_decrypt(key, iv, rng.bytes(15)).ok());
  // Wrong key produces invalid padding with overwhelming probability.
  Bytes ct = aes128_cbc_encrypt(key, iv, to_bytes("attack at dawn"));
  auto wrong = make_aes_key(rng.bytes(16));
  auto r = aes128_cbc_decrypt(wrong, iv, ct);
  if (r.ok()) { EXPECT_NE(to_string(*r), "attack at dawn"); }
}

TEST(Aes, CtrRoundTripAndSymmetry) {
  Rng rng(3);
  auto key = make_aes_key(rng.bytes(16));
  Bytes nonce = rng.bytes(16);
  for (std::size_t size : {0u, 1u, 16u, 17u, 100u, 4096u}) {
    Bytes pt = rng.bytes(size);
    Bytes ct = aes128_ctr(key, nonce, pt);
    EXPECT_EQ(ct.size(), pt.size());
    EXPECT_EQ(aes128_ctr(key, nonce, ct), pt);
    if (size > 0) { EXPECT_NE(ct, pt); }
  }
}

TEST(Aes, CtrCounterAdvancesAcrossBlocks) {
  Rng rng(4);
  auto key = make_aes_key(rng.bytes(16));
  Bytes nonce(16, 0xff);  // forces carry propagation on increment
  Bytes pt(64, 0);
  Bytes ks = aes128_ctr(key, nonce, pt);
  // keystream blocks must all differ
  for (int i = 0; i < 4; ++i)
    for (int j = i + 1; j < 4; ++j)
      EXPECT_FALSE(std::equal(ks.begin() + i * 16, ks.begin() + (i + 1) * 16,
                              ks.begin() + j * 16));
}

// ---- toy RSA -------------------------------------------------------------

TEST(Rsa, ModexpKnownValues) {
  EXPECT_EQ(modexp(2, 10, 1000000007), 1024u);
  EXPECT_EQ(modexp(7, 0, 13), 1u);
  EXPECT_EQ(modexp(5, 117, 19), 1u);  // 117 = 18*6+9 and 5^9 = 1 (mod 19)
  // Fermat: a^(p-1) = 1 mod p
  EXPECT_EQ(modexp(123456789, 1000000006, 1000000007), 1u);
}

TEST(Rsa, IsPrimeBasics) {
  EXPECT_FALSE(is_prime(0));
  EXPECT_FALSE(is_prime(1));
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_FALSE(is_prime(4));
  EXPECT_TRUE(is_prime(2147483647));        // 2^31 - 1, Mersenne prime
  EXPECT_FALSE(is_prime(2147483647ull * 3));
  EXPECT_FALSE(is_prime(3215031751ull));    // strong pseudoprime to bases 2,3,5,7
}

TEST(Rsa, SignVerifyRoundTrip) {
  Rng rng(5);
  auto key = rsa_generate(rng);
  Bytes msg = to_bytes("attest me");
  Bytes sig = rsa_sign(key, msg);
  EXPECT_TRUE(rsa_verify(key.pub, msg, sig));
}

TEST(Rsa, VerifyRejectsTamperedMessageAndSignature) {
  Rng rng(6);
  auto key = rsa_generate(rng);
  Bytes msg = to_bytes("attest me");
  Bytes sig = rsa_sign(key, msg);
  EXPECT_FALSE(rsa_verify(key.pub, to_bytes("attest ME"), sig));
  Bytes bad = sig;
  bad[7] ^= 1;
  EXPECT_FALSE(rsa_verify(key.pub, msg, bad));
  EXPECT_FALSE(rsa_verify(key.pub, msg, Bytes{}));
}

TEST(Rsa, VerifyRejectsWrongKey) {
  Rng rng(7);
  auto k1 = rsa_generate(rng);
  auto k2 = rsa_generate(rng);
  Bytes msg = to_bytes("hello");
  EXPECT_FALSE(rsa_verify(k2.pub, msg, rsa_sign(k1, msg)));
}

TEST(Rsa, EncryptDecryptRoundTrip) {
  Rng rng(8);
  auto key = rsa_generate(rng);
  std::uint64_t secret = 0xdead1234;
  Bytes ct = rsa_encrypt(key.pub, secret);
  EXPECT_EQ(rsa_decrypt(key, ct), secret);
}

TEST(Rsa, PublicKeySerializeRoundTrip) {
  Rng rng(9);
  auto key = rsa_generate(rng);
  auto bytes = key.pub.serialize();
  EXPECT_EQ(RsaPublicKey::deserialize(bytes), key.pub);
}

TEST(Rsa, DistinctKeysFromDistinctSeeds) {
  Rng a(10), b(11);
  EXPECT_NE(rsa_generate(a).pub, rsa_generate(b).pub);
}

}  // namespace
}  // namespace endbox::crypto
