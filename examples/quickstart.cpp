// Quickstart: the complete EndBox lifecycle in one program.
//
//   1. The network owner sets up a CA (with IAS access) and the EndBox
//      server, and publishes a firewall configuration.
//   2. A client machine attests its enclave, receives a certificate and
//      the config key, installs the configuration and connects.
//   3. Traffic flows through the in-enclave middlebox: allowed packets
//      reach the network, disallowed ones never leave the client.
//   4. The administrator pushes a config update; the client picks it up
//      through the in-band ping protocol.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "endbox/client.hpp"
#include "endbox/configs.hpp"
#include "endbox/server.hpp"

using namespace endbox;

int main() {
  Rng rng(42);
  sim::Clock clock;
  sim::PerfModel model;

  // --- Network owner infrastructure -----------------------------------
  sgx::AttestationService ias(rng);           // stands in for Intel IAS
  ca::CertificateAuthority authority(rng, ias);
  authority.allow_measurement(sgx::measure(std::string(kEndBoxEnclaveIdentity)));

  sim::CpuAccount server_cpu(model.server_cores, model.server_hz);
  EndBoxServer server(rng, authority, server_cpu, model);

  // Publish v2: a firewall blocking telnet, everything else allowed.
  auto bundle = server.publish_config(
      2,
      "from_device :: FromDevice; to_device :: ToDevice;"
      "fw :: IPFilter(drop dst port 23, allow all);"
      "from_device -> fw -> to_device; fw[1] -> [1]to_device;",
      /*encrypt=*/true, /*grace_secs=*/0, clock.now());
  if (!bundle.ok()) return std::fprintf(stderr, "%s\n", bundle.error().c_str()), 1;
  std::printf("[admin]  published config v2 (signed + encrypted)\n");

  // --- Client machine ----------------------------------------------------
  sgx::SgxPlatform platform("alice-laptop", rng, clock);
  ias.register_platform("alice-laptop", platform.attestation_key().pub);
  sim::CpuAccount client_cpu(1, model.client_hz);
  EndBoxClient client("alice", platform, rng, client_cpu, model,
                      authority.public_key(), {});

  if (auto s = client.attest(authority); !s.ok())
    return std::fprintf(stderr, "attest: %s\n", s.error().c_str()), 1;
  std::printf("[client] attested: enclave measurement verified by CA via IAS\n");

  if (auto t = client.install_config(*bundle, clock.now()); !t.ok())
    return std::fprintf(stderr, "install: %s\n", t.error().c_str()), 1;
  std::printf("[client] installed config v2 inside the enclave\n");

  auto init = client.start_connect(server.public_key());
  auto handshake = server.handle_wire(*init, clock.now());
  auto& done = std::get<vpn::VpnServer::HandshakeDone>(handshake->event);
  client.finish_connect(done.reply_wire);
  std::printf("[client] VPN tunnel established (session %u)\n", done.session_id);

  // --- Traffic --------------------------------------------------------------
  auto send = [&](std::uint16_t port, const char* label) {
    net::Packet packet = net::Packet::udp(net::Ipv4(10, 8, 0, 2),
                                          net::Ipv4(10, 0, 0, 1), 40000, port,
                                          to_bytes("hello"));
    auto sent = client.send_packet(std::move(packet), clock.now());
    if (!sent.ok() || !sent->accepted) {
      std::printf("[client] %s -> BLOCKED by in-enclave firewall\n", label);
      return;
    }
    for (const auto& wire : sent->wire) {
      auto handled = server.handle_wire(wire, clock.now());
      if (handled.ok() &&
          std::holds_alternative<vpn::VpnServer::PacketIn>(handled->event))
        std::printf("[server] %s -> delivered into the managed network\n", label);
    }
  };
  send(80, "HTTP  packet");
  send(23, "telnet packet");

  // --- Configuration update ---------------------------------------------------
  auto v3 = server.publish_config(
      3,
      "from_device :: FromDevice; to_device :: ToDevice;"
      "fw :: IPFilter(drop dst port 23, drop dst port 21, allow all);"
      "from_device -> fw -> to_device; fw[1] -> [1]to_device;",
      true, 30, clock.now());
  std::printf("[admin]  published config v3 (tightened firewall), 30 s grace\n");
  (void)v3;
  Bytes ping = server.create_ping(done.session_id);
  auto outcome = client.handle_server_ping(ping, &server.file_server(), clock.now());
  if (!outcome.ok())
    return std::fprintf(stderr, "update: %s\n", outcome.error().c_str()), 1;
  if (outcome->update_started)
    std::printf("[client] ping announced v3: fetched, decrypted and hot-swapped "
                "in %.2f ms\n", sim::to_millis(outcome->done - clock.now()));
  auto confirm = client.create_ping(clock.now());
  server.handle_wire(*confirm, clock.now());
  std::printf("[server] client now attests config v%u\n",
              server.vpn().session_config_version(done.session_id));
  return 0;
}
