// Configuration roll-out across a fleet (paper section III-E / Fig 5):
// the administrator publishes an update with a grace period; clients
// learn about it via in-band pings, fetch + hot-swap in the background,
// and the server blocks laggards once grace expires.
//
// Build & run:  ./build/examples/config_rollout
#include <cstdio>

#include "endbox/testbed.hpp"

using namespace endbox;

int main() {
  Testbed bed(Setup::EndBoxSgx, UseCase::Nop);
  constexpr int kFleet = 5;
  for (int i = 0; i < kFleet; ++i) bed.add_client();
  std::printf("[setup]  fleet of %d clients connected on config v2\n", kFleet);

  // Admin publishes v3 with a 10 second grace period.
  auto v3 = bed.server().publish_config(3, use_case_config(UseCase::Fw), true, 10,
                                        bed.clock().now());
  if (!v3.ok()) return 1;
  std::printf("[admin]  v3 published; grace period 10 s\n");

  auto offer_traffic = [&](int i) {
    auto sent = bed.endbox_client(static_cast<std::size_t>(i))
                    .send_packet(net::Packet::udp(net::Ipv4(10, 8, 0, 2),
                                                  net::Ipv4(10, 0, 0, 1), 1, 80,
                                                  Bytes(100, 'x')),
                                 bed.clock().now());
    if (!sent.ok() || !sent->accepted) return std::string("client rejected");
    auto handled = bed.server().handle_wire(sent->wire[0], bed.clock().now());
    return handled.ok() ? std::string("delivered") : handled.error();
  };

  // Three diligent clients update immediately (ping -> fetch -> swap);
  // two laggards ignore the announcement.
  for (int i = 0; i < 3; ++i) {
    Bytes ping = bed.server().create_ping(static_cast<std::uint32_t>(i + 1));
    auto outcome = bed.endbox_client(static_cast<std::size_t>(i))
                       .handle_server_ping(ping, &bed.server().file_server(),
                                           bed.clock().now());
    auto confirm =
        bed.endbox_client(static_cast<std::size_t>(i)).create_ping(bed.clock().now());
    bed.server().handle_wire(*confirm, bed.clock().now());
    std::printf("[c%d]     updated to v3 (%.2f ms incl. fetch+decrypt+swap)\n", i + 1,
                sim::to_millis(outcome->done - bed.clock().now()));
  }

  // During grace everyone still communicates.
  bed.clock().advance_to(5 * sim::kSecond);
  std::printf("[t=5s]   within grace: c1 %s, c5 %s\n", offer_traffic(0).c_str(),
              offer_traffic(4).c_str());

  // After grace the laggards are blocked.
  bed.clock().advance_to(15 * sim::kSecond);
  std::printf("[t=15s]  after grace: c1 %s; c5 %s\n", offer_traffic(0).c_str(),
              offer_traffic(4).c_str());

  // A laggard finally updates and recovers.
  Bytes ping = bed.server().create_ping(5);
  bed.endbox_client(4).handle_server_ping(ping, &bed.server().file_server(),
                                          bed.clock().now());
  auto confirm = bed.endbox_client(4).create_ping(bed.clock().now());
  bed.server().handle_wire(*confirm, bed.clock().now());
  std::printf("[t=15s]  c5 updates late -> %s\n", offer_traffic(4).c_str());
  return 0;
}
