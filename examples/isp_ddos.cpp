// ISP scenario (paper section II-A, scenario 2): a provider deploys
// EndBox on customer machines to rate-limit DDoS traffic at its source.
//
// Demonstrates:
//   - plaintext (inspectable) configuration: customers may read rules
//   - ISP-mode integrity-only traffic protection (optimisation IV-A)
//   - TrustedSplitter shaping a flood down to the configured rate using
//     sampled SGX trusted time
//
// Build & run:  ./build/examples/isp_ddos
#include <cstdio>

#include "elements/splitters.hpp"
#include "endbox/testbed.hpp"

using namespace endbox;

int main() {
  Testbed bed(Setup::EndBoxSgx, UseCase::Ddos);
  std::size_t customer = bed.add_client();
  auto& client = bed.endbox_client(customer);

  // The ISP ships a DDoS config tuned for residential uplinks: 20 Mbps
  // shaping rate with a 2 Mbit burst allowance.
  auto v3 = bed.server().publish_config(
      3,
      "from_device :: FromDevice; to_device :: ToDevice;"
      "ids :: IDSMatcher(RULESET community);"
      "limiter :: TrustedSplitter(RATE 20e6, SAMPLE 500000, BURST 2e6);"
      "from_device -> ids -> limiter -> to_device;"
      "ids[1] -> [1]to_device; limiter[1] -> [1]to_device;",
      /*encrypt=*/false, 0, bed.clock().now());
  if (!v3.ok() || !client.install_config(*v3, bed.clock().now()).ok()) {
    std::fprintf(stderr, "config roll-out failed\n");
    return 1;
  }

  std::printf("[isp]    customer attested; DDoS config distributed in plaintext\n");
  std::printf("         (customers can inspect: %s...)\n",
              use_case_config(UseCase::Ddos).substr(0, 52).c_str());

  // --- Flood: a bot on the customer machine fires identical packets ------
  const auto* limiter = dynamic_cast<const elements::TrustedSplitter*>(
      client.enclave().router()->find("limiter"));
  std::uint64_t forwarded = 0, shaped = 0;
  for (int i = 0; i < 3000; ++i) {
    net::Packet packet = net::Packet::udp(net::Ipv4(10, 8, 0, 2),
                                          net::Ipv4(10, 0, 0, 9), 4444, 80,
                                          Bytes(1400, 0x41));
    auto sent = client.send_packet(std::move(packet), bed.clock().now());
    if (sent.ok() && sent->accepted) ++forwarded;
    else ++shaped;
  }
  std::printf("[client] flood of 3000 packets: %llu forwarded, %llu shaped off\n",
              static_cast<unsigned long long>(forwarded),
              static_cast<unsigned long long>(shaped));
  std::printf("         trusted-time reads: %llu (sampled 1 per %llu packets)\n",
              static_cast<unsigned long long>(limiter->time_calls()),
              static_cast<unsigned long long>(limiter->sample_interval()));
  if (shaped == 0) {
    std::fprintf(stderr, "expected the splitter to shape the flood\n");
    return 1;
  }
  std::printf("[isp]    the flood never reached the ISP backbone: it was\n");
  std::printf("         rate-limited on the customer's own CPU.\n");
  return 0;
}
