// Enterprise scenario (paper section II-A, scenario 1): a company runs
// client-side IDPS + TLS inspection on employee machines.
//
// Demonstrates:
//   - encrypted (hidden) IDPS rules: employees cannot read the rule set
//   - TLS session-key forwarding: malware inside HTTPS is caught at the
//     client without any MITM proxy or custom root certificate
//   - client-to-client QoS flagging: intra-company traffic is scanned
//     exactly once
//
// Build & run:  ./build/examples/enterprise_idps
#include <cstdio>

#include "endbox/testbed.hpp"
#include "tls/session.hpp"

using namespace endbox;

int main() {
  Testbed bed(Setup::EndBoxSgx, UseCase::TlsIdps);
  std::size_t alice = bed.add_client();
  std::size_t bob = bed.add_client();
  std::printf("[setup]  two employees attested and connected; IDPS rules are\n");
  std::printf("         distributed encrypted (%zu bytes of ciphertext)\n",
               bed.bundle().payload.size());

  // --- HTTPS inspection on Alice's machine ------------------------------
  auto& client = bed.endbox_client(alice);
  tls::TlsClient browser(bed.rng());
  tls::TlsServer website(bed.rng());
  browser.set_key_export_hook([&](const tls::SessionKeys& keys) {
    client.forward_tls_key(keys);  // the one-line OpenSSL change
  });
  auto sh = website.accept(browser.start_handshake(), to_bytes("pm"));
  browser.finish_handshake(*sh, to_bytes("pm"));
  std::printf("[alice]  browser negotiated %s; keys forwarded to the enclave\n",
              tls::version_name(browser.negotiated_version()).c_str());

  auto send_https = [&](const std::string& content, const char* label) {
    auto record = browser.send(to_bytes(content));
    net::Packet packet =
        net::Packet::tcp(net::Ipv4(10, 8, 0, 2), net::Ipv4(93, 184, 216, 34),
                         40000, 443, 0, 0, 0x18, record.serialize());
    packet.flow_hint = static_cast<std::uint32_t>(browser.keys().session_id);
    auto sent = client.send_packet(std::move(packet), bed.clock().now());
    bool accepted = sent.ok() && sent->accepted;
    std::printf("[alice]  HTTPS upload (%s): %s\n", label,
                accepted ? "allowed" : "BLOCKED inside the enclave");
  };
  send_https("quarterly report attached", "benign");
  // Plant a real community-rule pattern inside the TLS payload.
  std::string evil = "download ";
  const auto& rule = bed.community_rules()[2];
  evil.append(rule.contents[0].bytes.begin(), rule.contents[0].bytes.end());
  send_https(evil, "exfiltration attempt");

  // --- Client-to-client: scanned once, not twice -------------------------
  auto sent = client.send_packet(
      net::Packet::udp(net::Ipv4(10, 8, 0, 2), net::Ipv4(10, 8, 0, 3), 4000, 4000,
                       Bytes(800, 'd')),
      bed.clock().now());
  auto handled = bed.server().handle_wire(sent->wire[0], bed.clock().now());
  auto& in = std::get<vpn::VpnServer::PacketIn>(handled->event);
  auto sealed = bed.server().seal_packet(static_cast<std::uint32_t>(bob + 1),
                                         in.ip_packet, bed.clock().now());
  auto received = bed.endbox_client(bob).receive_wire(sealed.wire[0], bed.clock().now());
  std::printf("[bob]    intra-company packet delivered; Click bypassed via QoS "
              "flag: %s\n",
              bed.endbox_client(bob).enclave().click_bypassed_ingress() > 0 ? "yes"
                                                                            : "no");
  (void)received;
  return 0;
}
