# Empty dependencies file for gmock.
# This may be replaced when dependencies are built.
