file(REMOVE_RECURSE
  "../../../bin/libgmock.pdb"
  "../../../lib/libgmock.a"
  "CMakeFiles/gmock.dir/src/gmock-all.cc.o"
  "CMakeFiles/gmock.dir/src/gmock-all.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
