file(REMOVE_RECURSE
  "../../../lib/libgmock.a"
)
