file(REMOVE_RECURSE
  "../../../bin/libgmock_main.pdb"
  "../../../lib/libgmock_main.a"
  "CMakeFiles/gmock_main.dir/src/gmock_main.cc.o"
  "CMakeFiles/gmock_main.dir/src/gmock_main.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmock_main.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
