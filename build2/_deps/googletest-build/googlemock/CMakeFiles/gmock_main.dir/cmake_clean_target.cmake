file(REMOVE_RECURSE
  "../../../lib/libgmock_main.a"
)
