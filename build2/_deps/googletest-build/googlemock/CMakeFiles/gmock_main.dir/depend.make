# Empty dependencies file for gmock_main.
# This may be replaced when dependencies are built.
