# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build2
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build2/ca_test[1]_include.cmake")
include("/root/repo/build2/click_test[1]_include.cmake")
include("/root/repo/build2/common_test[1]_include.cmake")
include("/root/repo/build2/config_test[1]_include.cmake")
include("/root/repo/build2/crypto_test[1]_include.cmake")
include("/root/repo/build2/elements_test[1]_include.cmake")
include("/root/repo/build2/enclave_test[1]_include.cmake")
include("/root/repo/build2/endbox_test[1]_include.cmake")
include("/root/repo/build2/idps_test[1]_include.cmake")
include("/root/repo/build2/net_test[1]_include.cmake")
include("/root/repo/build2/netsim_test[1]_include.cmake")
include("/root/repo/build2/perf_path_test[1]_include.cmake")
include("/root/repo/build2/property_test[1]_include.cmake")
include("/root/repo/build2/scalability_test[1]_include.cmake")
include("/root/repo/build2/security_eval_test[1]_include.cmake")
include("/root/repo/build2/sgx_test[1]_include.cmake")
include("/root/repo/build2/sim_test[1]_include.cmake")
include("/root/repo/build2/tls_test[1]_include.cmake")
include("/root/repo/build2/vpn_test[1]_include.cmake")
include("/root/repo/build2/workload_test[1]_include.cmake")
subdirs("_deps/googletest-build")
