# Empty dependencies file for bench_fig10a_scalability.
# This may be replaced when dependencies are built.
