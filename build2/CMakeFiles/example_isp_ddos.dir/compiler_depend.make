# Empty compiler generated dependencies file for example_isp_ddos.
# This may be replaced when dependencies are built.
