file(REMOVE_RECURSE
  "CMakeFiles/example_isp_ddos.dir/examples/isp_ddos.cpp.o"
  "CMakeFiles/example_isp_ddos.dir/examples/isp_ddos.cpp.o.d"
  "example_isp_ddos"
  "example_isp_ddos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_isp_ddos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
