file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_reconfig.dir/bench/bench_table2_reconfig.cpp.o"
  "CMakeFiles/bench_table2_reconfig.dir/bench/bench_table2_reconfig.cpp.o.d"
  "bench_table2_reconfig"
  "bench_table2_reconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
