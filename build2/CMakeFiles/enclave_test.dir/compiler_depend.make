# Empty compiler generated dependencies file for enclave_test.
# This may be replaced when dependencies are built.
