file(REMOVE_RECURSE
  "CMakeFiles/enclave_test.dir/tests/enclave_test.cpp.o"
  "CMakeFiles/enclave_test.dir/tests/enclave_test.cpp.o.d"
  "enclave_test"
  "enclave_test.pdb"
  "enclave_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enclave_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
