file(REMOVE_RECURSE
  "CMakeFiles/scalability_test.dir/tests/scalability_test.cpp.o"
  "CMakeFiles/scalability_test.dir/tests/scalability_test.cpp.o.d"
  "scalability_test"
  "scalability_test.pdb"
  "scalability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
