# Empty dependencies file for scalability_test.
# This may be replaced when dependencies are built.
