# Empty dependencies file for perf_path_test.
# This may be replaced when dependencies are built.
