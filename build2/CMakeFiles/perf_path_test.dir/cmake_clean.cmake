file(REMOVE_RECURSE
  "CMakeFiles/perf_path_test.dir/tests/perf_path_test.cpp.o"
  "CMakeFiles/perf_path_test.dir/tests/perf_path_test.cpp.o.d"
  "perf_path_test"
  "perf_path_test.pdb"
  "perf_path_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
