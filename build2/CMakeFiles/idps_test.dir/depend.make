# Empty dependencies file for idps_test.
# This may be replaced when dependencies are built.
