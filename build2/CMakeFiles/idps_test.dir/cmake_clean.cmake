file(REMOVE_RECURSE
  "CMakeFiles/idps_test.dir/tests/idps_test.cpp.o"
  "CMakeFiles/idps_test.dir/tests/idps_test.cpp.o.d"
  "idps_test"
  "idps_test.pdb"
  "idps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
