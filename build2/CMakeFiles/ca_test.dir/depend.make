# Empty dependencies file for ca_test.
# This may be replaced when dependencies are built.
