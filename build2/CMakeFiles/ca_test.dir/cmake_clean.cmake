file(REMOVE_RECURSE
  "CMakeFiles/ca_test.dir/tests/ca_test.cpp.o"
  "CMakeFiles/ca_test.dir/tests/ca_test.cpp.o.d"
  "ca_test"
  "ca_test.pdb"
  "ca_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
