file(REMOVE_RECURSE
  "CMakeFiles/endbox_test.dir/tests/endbox_test.cpp.o"
  "CMakeFiles/endbox_test.dir/tests/endbox_test.cpp.o.d"
  "endbox_test"
  "endbox_test.pdb"
  "endbox_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/endbox_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
