# Empty dependencies file for endbox_test.
# This may be replaced when dependencies are built.
