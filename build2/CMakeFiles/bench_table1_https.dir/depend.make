# Empty dependencies file for bench_table1_https.
# This may be replaced when dependencies are built.
