file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_https.dir/bench/bench_table1_https.cpp.o"
  "CMakeFiles/bench_table1_https.dir/bench/bench_table1_https.cpp.o.d"
  "bench_table1_https"
  "bench_table1_https.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_https.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
