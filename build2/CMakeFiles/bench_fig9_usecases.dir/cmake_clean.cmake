file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_usecases.dir/bench/bench_fig9_usecases.cpp.o"
  "CMakeFiles/bench_fig9_usecases.dir/bench/bench_fig9_usecases.cpp.o.d"
  "bench_fig9_usecases"
  "bench_fig9_usecases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_usecases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
