# Empty compiler generated dependencies file for bench_fig9_usecases.
# This may be replaced when dependencies are built.
