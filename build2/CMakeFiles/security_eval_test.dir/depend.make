# Empty dependencies file for security_eval_test.
# This may be replaced when dependencies are built.
