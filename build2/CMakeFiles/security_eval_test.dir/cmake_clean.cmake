file(REMOVE_RECURSE
  "CMakeFiles/security_eval_test.dir/tests/security_eval_test.cpp.o"
  "CMakeFiles/security_eval_test.dir/tests/security_eval_test.cpp.o.d"
  "security_eval_test"
  "security_eval_test.pdb"
  "security_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/security_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
