file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_pageload.dir/bench/bench_fig6_pageload.cpp.o"
  "CMakeFiles/bench_fig6_pageload.dir/bench/bench_fig6_pageload.cpp.o.d"
  "bench_fig6_pageload"
  "bench_fig6_pageload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_pageload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
