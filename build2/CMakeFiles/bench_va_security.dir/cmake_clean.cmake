file(REMOVE_RECURSE
  "CMakeFiles/bench_va_security.dir/bench/bench_va_security.cpp.o"
  "CMakeFiles/bench_va_security.dir/bench/bench_va_security.cpp.o.d"
  "bench_va_security"
  "bench_va_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_va_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
