# Empty dependencies file for bench_va_security.
# This may be replaced when dependencies are built.
