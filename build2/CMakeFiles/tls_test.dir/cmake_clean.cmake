file(REMOVE_RECURSE
  "CMakeFiles/tls_test.dir/tests/tls_test.cpp.o"
  "CMakeFiles/tls_test.dir/tests/tls_test.cpp.o.d"
  "tls_test"
  "tls_test.pdb"
  "tls_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tls_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
