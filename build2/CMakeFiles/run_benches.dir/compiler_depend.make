# Empty custom commands generated dependencies file for run_benches.
# This may be replaced when dependencies are built.
