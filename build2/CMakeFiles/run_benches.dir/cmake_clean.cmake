file(REMOVE_RECURSE
  "CMakeFiles/run_benches"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/run_benches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
