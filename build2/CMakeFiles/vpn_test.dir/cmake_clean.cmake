file(REMOVE_RECURSE
  "CMakeFiles/vpn_test.dir/tests/vpn_test.cpp.o"
  "CMakeFiles/vpn_test.dir/tests/vpn_test.cpp.o.d"
  "vpn_test"
  "vpn_test.pdb"
  "vpn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
