# Empty dependencies file for vpn_test.
# This may be replaced when dependencies are built.
