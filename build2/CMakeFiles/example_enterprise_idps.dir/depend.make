# Empty dependencies file for example_enterprise_idps.
# This may be replaced when dependencies are built.
