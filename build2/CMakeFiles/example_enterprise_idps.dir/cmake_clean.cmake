file(REMOVE_RECURSE
  "CMakeFiles/example_enterprise_idps.dir/examples/enterprise_idps.cpp.o"
  "CMakeFiles/example_enterprise_idps.dir/examples/enterprise_idps.cpp.o.d"
  "example_enterprise_idps"
  "example_enterprise_idps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_enterprise_idps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
