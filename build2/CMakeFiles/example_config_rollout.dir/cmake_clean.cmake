file(REMOVE_RECURSE
  "CMakeFiles/example_config_rollout.dir/examples/config_rollout.cpp.o"
  "CMakeFiles/example_config_rollout.dir/examples/config_rollout.cpp.o.d"
  "example_config_rollout"
  "example_config_rollout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_config_rollout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
