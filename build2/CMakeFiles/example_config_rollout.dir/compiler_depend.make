# Empty compiler generated dependencies file for example_config_rollout.
# This may be replaced when dependencies are built.
