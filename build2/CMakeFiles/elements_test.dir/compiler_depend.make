# Empty compiler generated dependencies file for elements_test.
# This may be replaced when dependencies are built.
