file(REMOVE_RECURSE
  "CMakeFiles/elements_test.dir/tests/elements_test.cpp.o"
  "CMakeFiles/elements_test.dir/tests/elements_test.cpp.o.d"
  "elements_test"
  "elements_test.pdb"
  "elements_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elements_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
