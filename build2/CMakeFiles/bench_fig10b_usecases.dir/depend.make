# Empty dependencies file for bench_fig10b_usecases.
# This may be replaced when dependencies are built.
