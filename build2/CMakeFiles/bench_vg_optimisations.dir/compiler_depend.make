# Empty compiler generated dependencies file for bench_vg_optimisations.
# This may be replaced when dependencies are built.
