file(REMOVE_RECURSE
  "CMakeFiles/bench_vg_optimisations.dir/bench/bench_vg_optimisations.cpp.o"
  "CMakeFiles/bench_vg_optimisations.dir/bench/bench_vg_optimisations.cpp.o.d"
  "bench_vg_optimisations"
  "bench_vg_optimisations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vg_optimisations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
