# Empty dependencies file for endbox_core.
# This may be replaced when dependencies are built.
