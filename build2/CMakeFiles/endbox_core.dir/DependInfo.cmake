
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ca/authority.cpp" "CMakeFiles/endbox_core.dir/src/ca/authority.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/ca/authority.cpp.o.d"
  "/root/repo/src/ca/certificate.cpp" "CMakeFiles/endbox_core.dir/src/ca/certificate.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/ca/certificate.cpp.o.d"
  "/root/repo/src/click/element.cpp" "CMakeFiles/endbox_core.dir/src/click/element.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/click/element.cpp.o.d"
  "/root/repo/src/click/parser.cpp" "CMakeFiles/endbox_core.dir/src/click/parser.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/click/parser.cpp.o.d"
  "/root/repo/src/click/registry.cpp" "CMakeFiles/endbox_core.dir/src/click/registry.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/click/registry.cpp.o.d"
  "/root/repo/src/click/router.cpp" "CMakeFiles/endbox_core.dir/src/click/router.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/click/router.cpp.o.d"
  "/root/repo/src/click/standard_elements.cpp" "CMakeFiles/endbox_core.dir/src/click/standard_elements.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/click/standard_elements.cpp.o.d"
  "/root/repo/src/common/bytes.cpp" "CMakeFiles/endbox_core.dir/src/common/bytes.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/common/bytes.cpp.o.d"
  "/root/repo/src/common/log.cpp" "CMakeFiles/endbox_core.dir/src/common/log.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/common/log.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "CMakeFiles/endbox_core.dir/src/common/rng.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/common/rng.cpp.o.d"
  "/root/repo/src/config/bundle.cpp" "CMakeFiles/endbox_core.dir/src/config/bundle.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/config/bundle.cpp.o.d"
  "/root/repo/src/config/file_server.cpp" "CMakeFiles/endbox_core.dir/src/config/file_server.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/config/file_server.cpp.o.d"
  "/root/repo/src/crypto/aes.cpp" "CMakeFiles/endbox_core.dir/src/crypto/aes.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/crypto/aes.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "CMakeFiles/endbox_core.dir/src/crypto/hmac.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/crypto/hmac.cpp.o.d"
  "/root/repo/src/crypto/rsa.cpp" "CMakeFiles/endbox_core.dir/src/crypto/rsa.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/crypto/rsa.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "CMakeFiles/endbox_core.dir/src/crypto/sha256.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/crypto/sha256.cpp.o.d"
  "/root/repo/src/elements/context.cpp" "CMakeFiles/endbox_core.dir/src/elements/context.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/elements/context.cpp.o.d"
  "/root/repo/src/elements/device.cpp" "CMakeFiles/endbox_core.dir/src/elements/device.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/elements/device.cpp.o.d"
  "/root/repo/src/elements/ids_matcher.cpp" "CMakeFiles/endbox_core.dir/src/elements/ids_matcher.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/elements/ids_matcher.cpp.o.d"
  "/root/repo/src/elements/splitters.cpp" "CMakeFiles/endbox_core.dir/src/elements/splitters.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/elements/splitters.cpp.o.d"
  "/root/repo/src/elements/tls_decrypt.cpp" "CMakeFiles/endbox_core.dir/src/elements/tls_decrypt.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/elements/tls_decrypt.cpp.o.d"
  "/root/repo/src/endbox/client.cpp" "CMakeFiles/endbox_core.dir/src/endbox/client.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/endbox/client.cpp.o.d"
  "/root/repo/src/endbox/configs.cpp" "CMakeFiles/endbox_core.dir/src/endbox/configs.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/endbox/configs.cpp.o.d"
  "/root/repo/src/endbox/enclave.cpp" "CMakeFiles/endbox_core.dir/src/endbox/enclave.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/endbox/enclave.cpp.o.d"
  "/root/repo/src/endbox/pipeline_cost.cpp" "CMakeFiles/endbox_core.dir/src/endbox/pipeline_cost.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/endbox/pipeline_cost.cpp.o.d"
  "/root/repo/src/endbox/server.cpp" "CMakeFiles/endbox_core.dir/src/endbox/server.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/endbox/server.cpp.o.d"
  "/root/repo/src/endbox/testbed.cpp" "CMakeFiles/endbox_core.dir/src/endbox/testbed.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/endbox/testbed.cpp.o.d"
  "/root/repo/src/endbox/vanilla_client.cpp" "CMakeFiles/endbox_core.dir/src/endbox/vanilla_client.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/endbox/vanilla_client.cpp.o.d"
  "/root/repo/src/idps/aho_corasick.cpp" "CMakeFiles/endbox_core.dir/src/idps/aho_corasick.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/idps/aho_corasick.cpp.o.d"
  "/root/repo/src/idps/engine.cpp" "CMakeFiles/endbox_core.dir/src/idps/engine.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/idps/engine.cpp.o.d"
  "/root/repo/src/idps/snort_rules.cpp" "CMakeFiles/endbox_core.dir/src/idps/snort_rules.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/idps/snort_rules.cpp.o.d"
  "/root/repo/src/net/checksum.cpp" "CMakeFiles/endbox_core.dir/src/net/checksum.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/net/checksum.cpp.o.d"
  "/root/repo/src/net/ip.cpp" "CMakeFiles/endbox_core.dir/src/net/ip.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/net/ip.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "CMakeFiles/endbox_core.dir/src/net/packet.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/net/packet.cpp.o.d"
  "/root/repo/src/netsim/host.cpp" "CMakeFiles/endbox_core.dir/src/netsim/host.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/netsim/host.cpp.o.d"
  "/root/repo/src/netsim/link.cpp" "CMakeFiles/endbox_core.dir/src/netsim/link.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/netsim/link.cpp.o.d"
  "/root/repo/src/netsim/topology.cpp" "CMakeFiles/endbox_core.dir/src/netsim/topology.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/netsim/topology.cpp.o.d"
  "/root/repo/src/sgx/enclave.cpp" "CMakeFiles/endbox_core.dir/src/sgx/enclave.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/sgx/enclave.cpp.o.d"
  "/root/repo/src/sgx/ias.cpp" "CMakeFiles/endbox_core.dir/src/sgx/ias.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/sgx/ias.cpp.o.d"
  "/root/repo/src/sgx/platform.cpp" "CMakeFiles/endbox_core.dir/src/sgx/platform.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/sgx/platform.cpp.o.d"
  "/root/repo/src/sgx/quote.cpp" "CMakeFiles/endbox_core.dir/src/sgx/quote.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/sgx/quote.cpp.o.d"
  "/root/repo/src/sim/clock.cpp" "CMakeFiles/endbox_core.dir/src/sim/clock.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/sim/clock.cpp.o.d"
  "/root/repo/src/sim/cpu.cpp" "CMakeFiles/endbox_core.dir/src/sim/cpu.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/sim/cpu.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "CMakeFiles/endbox_core.dir/src/sim/event_queue.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/perf_model.cpp" "CMakeFiles/endbox_core.dir/src/sim/perf_model.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/sim/perf_model.cpp.o.d"
  "/root/repo/src/tls/keystore.cpp" "CMakeFiles/endbox_core.dir/src/tls/keystore.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/tls/keystore.cpp.o.d"
  "/root/repo/src/tls/session.cpp" "CMakeFiles/endbox_core.dir/src/tls/session.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/tls/session.cpp.o.d"
  "/root/repo/src/vpn/client.cpp" "CMakeFiles/endbox_core.dir/src/vpn/client.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/vpn/client.cpp.o.d"
  "/root/repo/src/vpn/fragment.cpp" "CMakeFiles/endbox_core.dir/src/vpn/fragment.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/vpn/fragment.cpp.o.d"
  "/root/repo/src/vpn/replay.cpp" "CMakeFiles/endbox_core.dir/src/vpn/replay.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/vpn/replay.cpp.o.d"
  "/root/repo/src/vpn/server.cpp" "CMakeFiles/endbox_core.dir/src/vpn/server.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/vpn/server.cpp.o.d"
  "/root/repo/src/vpn/session_crypto.cpp" "CMakeFiles/endbox_core.dir/src/vpn/session_crypto.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/vpn/session_crypto.cpp.o.d"
  "/root/repo/src/vpn/session_crypto_reference.cpp" "CMakeFiles/endbox_core.dir/src/vpn/session_crypto_reference.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/vpn/session_crypto_reference.cpp.o.d"
  "/root/repo/src/vpn/wire.cpp" "CMakeFiles/endbox_core.dir/src/vpn/wire.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/vpn/wire.cpp.o.d"
  "/root/repo/src/workload/iperf.cpp" "CMakeFiles/endbox_core.dir/src/workload/iperf.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/workload/iperf.cpp.o.d"
  "/root/repo/src/workload/pageload.cpp" "CMakeFiles/endbox_core.dir/src/workload/pageload.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/workload/pageload.cpp.o.d"
  "/root/repo/src/workload/ping.cpp" "CMakeFiles/endbox_core.dir/src/workload/ping.cpp.o" "gcc" "CMakeFiles/endbox_core.dir/src/workload/ping.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
