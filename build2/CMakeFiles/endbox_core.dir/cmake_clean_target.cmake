file(REMOVE_RECURSE
  "libendbox_core.a"
)
