# Empty compiler generated dependencies file for bench_fig7_redirection.
# This may be replaced when dependencies are built.
