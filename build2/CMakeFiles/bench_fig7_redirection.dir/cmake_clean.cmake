file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_redirection.dir/bench/bench_fig7_redirection.cpp.o"
  "CMakeFiles/bench_fig7_redirection.dir/bench/bench_fig7_redirection.cpp.o.d"
  "bench_fig7_redirection"
  "bench_fig7_redirection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_redirection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
