// Signed (and optionally encrypted) middlebox configuration bundles.
//
// Per section III-E: administrators sign configuration files with the
// CA key and optionally encrypt them with the pre-shared config key —
// encrypted in the enterprise scenario (hide IDPS rules from
// employees), plaintext in the ISP scenario (customers may inspect
// rules). The version number is embedded *inside* the authenticated
// payload so clients cannot be replayed onto old configurations.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "crypto/rsa.hpp"

namespace endbox::config {

struct ConfigBundle {
  std::uint32_t version = 0;  ///< also bound inside the signed payload
  bool encrypted = false;
  Bytes payload;              ///< ciphertext when encrypted, else plaintext
  Bytes signature;            ///< CA signature over (version || flags || payload)

  Bytes signed_portion() const;
  Bytes serialize() const;
  static Result<ConfigBundle> deserialize(ByteView wire);
};

/// Administrator side: builds a bundle from Click config text.
/// `config_key` is the pre-shared symmetric key (0 = do not encrypt).
ConfigBundle make_bundle(std::uint32_t version, const std::string& click_config,
                         const crypto::RsaKeyPair& ca_key,
                         std::uint64_t config_key, bool encrypt);

/// Client (enclave) side: verifies the CA signature, decrypts when
/// necessary, and checks the embedded version matches `bundle.version`
/// (rollback/replay resistance). Returns the Click config text.
Result<std::string> open_bundle(const ConfigBundle& bundle,
                                const crypto::RsaPublicKey& ca_key,
                                std::uint64_t config_key);

}  // namespace endbox::config
