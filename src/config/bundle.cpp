#include "config/bundle.hpp"

#include "crypto/aes.hpp"
#include "crypto/hmac.hpp"

namespace endbox::config {

namespace {

/// Derives the AES key for config encryption from the 64-bit pre-shared
/// config key.
crypto::AesKey config_aes_key(std::uint64_t config_key) {
  Bytes material;
  put_u64(material, config_key);
  return crypto::make_aes_key(crypto::derive_key(material, "config-enc", 16));
}

/// Inner plaintext: [version:4][click config text]. The version inside
/// the (signed, possibly encrypted) payload must match the outer one.
Bytes inner_plaintext(std::uint32_t version, const std::string& text) {
  Bytes out;
  put_u32(out, version);
  append(out, to_bytes(text));
  return out;
}

}  // namespace

Bytes ConfigBundle::signed_portion() const {
  Bytes out;
  put_u32(out, version);
  out.push_back(encrypted ? 1 : 0);
  append(out, payload);
  return out;
}

Bytes ConfigBundle::serialize() const {
  Bytes out;
  put_u32(out, version);
  out.push_back(encrypted ? 1 : 0);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  append(out, payload);
  put_u16(out, static_cast<std::uint16_t>(signature.size()));
  append(out, signature);
  return out;
}

Result<ConfigBundle> ConfigBundle::deserialize(ByteView wire) {
  try {
    ByteReader r(wire);
    ConfigBundle bundle;
    bundle.version = r.u32();
    bundle.encrypted = r.u8() != 0;
    bundle.payload = r.take(r.u32());
    bundle.signature = r.take(r.u16());
    if (!r.empty()) return err("ConfigBundle: trailing bytes");
    return bundle;
  } catch (const std::out_of_range&) {
    return err("ConfigBundle: truncated");
  }
}

ConfigBundle make_bundle(std::uint32_t version, const std::string& click_config,
                         const crypto::RsaKeyPair& ca_key,
                         std::uint64_t config_key, bool encrypt) {
  ConfigBundle bundle;
  bundle.version = version;
  bundle.encrypted = encrypt;
  Bytes inner = inner_plaintext(version, click_config);
  if (encrypt) {
    // Deterministic per-version nonce is safe: each (key, version) pair
    // encrypts exactly one payload.
    Bytes nonce(16, 0);
    put_u32(nonce, version);
    nonce.resize(16, 0x5a);
    bundle.payload = crypto::aes128_ctr(config_aes_key(config_key), nonce, inner);
  } else {
    bundle.payload = inner;
  }
  bundle.signature = crypto::rsa_sign(ca_key, bundle.signed_portion());
  return bundle;
}

Result<std::string> open_bundle(const ConfigBundle& bundle,
                                const crypto::RsaPublicKey& ca_key,
                                std::uint64_t config_key) {
  if (!crypto::rsa_verify(ca_key, bundle.signed_portion(), bundle.signature))
    return err("config bundle: signature verification failed");

  Bytes inner;
  if (bundle.encrypted) {
    Bytes nonce(16, 0);
    put_u32(nonce, bundle.version);
    nonce.resize(16, 0x5a);
    inner = crypto::aes128_ctr(config_aes_key(config_key), nonce, bundle.payload);
  } else {
    inner = bundle.payload;
  }
  if (inner.size() < 4) return err("config bundle: inner payload too short");
  std::uint32_t inner_version = get_u32(inner.data());
  if (inner_version != bundle.version)
    return err("config bundle: version mismatch (replay attempt?)");
  return std::string(inner.begin() + 4, inner.end());
}

}  // namespace endbox::config
