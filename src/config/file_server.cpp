#include "config/file_server.hpp"

namespace endbox::config {

Status ConfigFileServer::publish(const ConfigBundle& bundle) {
  if (!bundles_.empty() && bundle.version <= bundles_.rbegin()->first)
    return err("config versions must increase monotonically");
  bundles_.emplace(bundle.version, bundle);
  return {};
}

std::optional<ConfigBundle> ConfigFileServer::fetch(std::uint32_t version) const {
  ++fetches_;
  auto it = bundles_.find(version);
  if (it == bundles_.end()) return std::nullopt;
  return it->second;
}

std::optional<ConfigBundle> ConfigFileServer::latest() const {
  if (bundles_.empty()) return std::nullopt;
  return bundles_.rbegin()->second;
}

std::uint32_t ConfigFileServer::latest_version() const {
  return bundles_.empty() ? 0 : bundles_.rbegin()->first;
}

}  // namespace endbox::config
