// The publicly reachable configuration file server (section III-E):
// stores every published bundle by version so clients can always fetch
// the configuration announced in a ping — including while reconnecting.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "config/bundle.hpp"

namespace endbox::config {

class ConfigFileServer {
 public:
  /// Publishes a bundle; versions must increase monotonically.
  Status publish(const ConfigBundle& bundle);

  std::optional<ConfigBundle> fetch(std::uint32_t version) const;
  std::optional<ConfigBundle> latest() const;
  std::uint32_t latest_version() const;
  std::size_t stored() const { return bundles_.size(); }
  std::uint64_t fetches() const { return fetches_; }

 private:
  std::map<std::uint32_t, ConfigBundle> bundles_;
  mutable std::uint64_t fetches_ = 0;
};

}  // namespace endbox::config
