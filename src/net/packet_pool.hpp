// PacketPool: a free-list of payload buffers so the enclave data path
// recycles packet memory instead of allocating per packet.
//
// acquire() hands out packets whose payload buffer carries capacity
// from a previously released packet; release() returns the payload (and
// any decrypted-payload annotation) to the free list. Raw Bytes scratch
// (wire bodies, reassembly buffers) cycles through acquire_bytes /
// release_bytes. In steady state — pool warmed up, stable packet sizes
// — the loop decrypt -> parse -> Click -> serialize -> seal touches the
// heap zero times.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.hpp"

namespace endbox::net {

class PacketPool {
 public:
  /// `max_buffers` bounds the free list (buffers released beyond it are
  /// simply freed); the backing vector is reserved up front so pool
  /// bookkeeping itself never allocates on the hot path.
  explicit PacketPool(std::size_t max_buffers = 256) : max_buffers_(max_buffers) {
    free_.reserve(max_buffers);
  }

  /// A fresh packet whose payload buffer reuses pooled capacity.
  Packet acquire() {
    Packet packet;
    packet.payload = acquire_bytes();
    return packet;
  }

  /// Recycles the packet's buffers into the free list.
  void release(Packet&& packet) {
    release_bytes(std::move(packet.payload));
    release_bytes(std::move(packet.decrypted_payload));
  }

  /// An empty buffer carrying recycled capacity when available.
  Bytes acquire_bytes() {
    if (free_.empty()) {
      ++misses_;
      return {};
    }
    Bytes buffer = std::move(free_.back());
    free_.pop_back();
    buffer.clear();
    ++hits_;
    return buffer;
  }

  void release_bytes(Bytes&& buffer) {
    if (buffer.capacity() == 0 || free_.size() >= max_buffers_) return;
    free_.push_back(std::move(buffer));
  }

  /// Moves pooled buffers out of `other` into this free list (until it
  /// is full). Shard-local pools collect buffers on their worker
  /// threads contention-free; the owner adopts them back into the main
  /// pool between bursts so the circulation never starves. Adopted
  /// buffers count in refills() — the visible trace of a starved lane
  /// being topped up instead of allocating silently.
  void adopt_from(PacketPool& other) {
    adopt_from(other, other.free_.size());
  }
  /// Bounded variant: takes at most `max_take` buffers, so a pool
  /// rebalance can split a donor instead of draining it.
  void adopt_from(PacketPool& other, std::size_t max_take) {
    while (max_take > 0 && !other.free_.empty() && free_.size() < max_buffers_) {
      free_.push_back(std::move(other.free_.back()));
      other.free_.pop_back();
      ++refills_;
      --max_take;
    }
  }

  std::size_t pooled() const { return free_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  /// Acquires that found the free list empty and fell back to a heap
  /// allocation — the lane-starvation signal (same events as misses()).
  std::uint64_t starved() const { return misses_; }
  /// Buffers this pool adopted from sibling pools (adopt_from).
  std::uint64_t refills() const { return refills_; }

 private:
  std::vector<Bytes> free_;
  std::size_t max_buffers_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t refills_ = 0;
};

}  // namespace endbox::net
