// IP packet representation used everywhere inside EndBox.
//
// Packets flow application -> tun device -> Click graph -> VPN data
// channel, so the same object must support header inspection and
// mutation (firewall, QoS flagging), payload access (IDPS, TLS
// decryption) and serialisation to wire bytes (VPN encryption).
//
// The representation keeps parsed header fields plus the L4 payload; it
// serialises to a real IPv4 header (+ TCP/UDP/ICMP header) with valid
// checksums, and parses back. No options support — the paper's
// middlebox functions never use IP options.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "common/hash.hpp"
#include "common/result.hpp"
#include "net/ip.hpp"

namespace endbox::elements {
struct FlowContext;  // per-flow stream state (elements/flow_context.hpp)
}

namespace endbox::net {

inline constexpr std::size_t kIpv4HeaderSize = 20;
inline constexpr std::size_t kTcpHeaderSize = 20;
inline constexpr std::size_t kUdpHeaderSize = 8;
inline constexpr std::size_t kIcmpHeaderSize = 8;

/// QoS/DSCP value EndBox clients set on packets that already traversed
/// a Click graph, so the receiving client can skip reprocessing
/// (section IV-A, client-to-client optimisation).
inline constexpr std::uint8_t kProcessedQosFlag = 0xeb;

struct Packet {
  // --- IP header ---
  Ipv4 src;
  Ipv4 dst;
  IpProto proto = IpProto::Udp;
  std::uint8_t tos = 0;    ///< type-of-service / QoS byte
  std::uint8_t ttl = 64;
  std::uint16_t ip_id = 0;

  // --- L4 header (interpretation depends on proto) ---
  std::uint16_t src_port = 0;   ///< TCP/UDP source port
  std::uint16_t dst_port = 0;   ///< TCP/UDP destination port
  std::uint32_t seq = 0;        ///< TCP sequence number
  std::uint32_t ack = 0;        ///< TCP ack number
  std::uint8_t tcp_flags = 0;   ///< TCP flags (SYN=0x02, ACK=0x10, ...)
  std::uint8_t icmp_type = 0;   ///< ICMP type (8=echo request, 0=reply)
  std::uint8_t icmp_code = 0;
  std::uint16_t icmp_id = 0;
  std::uint16_t icmp_seq = 0;

  // --- Payload ---
  Bytes payload;

  // --- Metadata (not serialised; used by elements and the simulator) ---
  bool dropped = false;             ///< marked for discard by an element
  std::uint32_t flow_hint = 0;      ///< LB flow assignment annotation
  std::uint32_t burst_tag = 0;      ///< arrival index within a burst; the
                                    ///< sharded router merges per-shard
                                    ///< results back into arrival order by it
  Bytes decrypted_payload;          ///< plaintext attached by TLSDecrypt for
                                    ///< downstream inspection (never sent)
  /// Per-flow stream context, set by CTXManager for classified TCP
  /// flows and cleared by TCPOut before the packet leaves the graph.
  /// Valid only within one burst (contexts are lane-local and can
  /// idle-expire between bursts); never dereferenced outside it.
  elements::FlowContext* flow_ctx = nullptr;
  /// Stream window annotation, set by TCPIn: payload[stream_off,
  /// stream_off+stream_len) is the run of *new in-order stream bytes*
  /// this packet contributes (retransmitted/overlapping prefixes
  /// excluded). stream_scan marks that TCPIn processed the packet, so
  /// a zero-length window means "nothing new to scan" rather than "no
  /// stream path present".
  std::uint32_t stream_off = 0;
  std::uint32_t stream_len = 0;
  bool stream_scan = false;

  std::size_t l4_header_size() const;
  /// Total serialised length (IP header + L4 header + payload).
  std::size_t wire_size() const { return kIpv4HeaderSize + l4_header_size() + payload.size(); }

  bool processed_flag() const { return tos == kProcessedQosFlag; }
  void set_processed_flag() { tos = kProcessedQosFlag; }
  void clear_processed_flag() { tos = 0; }

  /// Serialises to wire bytes with correct IP/L4 checksums.
  Bytes serialize() const;
  /// Serialises into `out` (cleared, reserved to the exact wire size);
  /// reusing one Bytes across packets of similar size never reallocates.
  void serialize_into(Bytes& out) const;
  /// Parses wire bytes; verifies lengths and the IP header checksum.
  static Result<Packet> parse(ByteView wire);
  /// Parses into an existing packet, reusing its payload capacity (the
  /// pooled ingress path parses without allocating). All fields are
  /// overwritten; on error `out` is left in an unspecified state.
  static Status parse_into(ByteView wire, Packet& out);

  std::string summary() const;

  // Convenience constructors -------------------------------------------
  static Packet udp(Ipv4 src, Ipv4 dst, std::uint16_t sport, std::uint16_t dport,
                    Bytes payload);
  static Packet tcp(Ipv4 src, Ipv4 dst, std::uint16_t sport, std::uint16_t dport,
                    std::uint32_t seq, std::uint32_t ack, std::uint8_t flags,
                    Bytes payload);
  static Packet icmp_echo_request(Ipv4 src, Ipv4 dst, std::uint16_t id,
                                  std::uint16_t seq, Bytes payload = {});
  static Packet icmp_echo_reply(const Packet& request);
};

/// 5-tuple flow identity used by stateful elements (LB, DDoS limiter).
struct FlowKey {
  Ipv4 src, dst;
  std::uint16_t src_port = 0, dst_port = 0;
  IpProto proto = IpProto::Udp;

  bool operator==(const FlowKey&) const = default;
  static FlowKey of(const Packet& p) {
    return FlowKey{p.src, p.dst, p.src_port, p.dst_port, p.proto};
  }
};

}  // namespace endbox::net

template <>
struct std::hash<endbox::net::FlowKey> {
  std::size_t operator()(const endbox::net::FlowKey& k) const noexcept {
    // splitmix64 finaliser over the packed 5-tuple. A multiplicative
    // h*31 combine leaves the low bits dominated by the ports, so flow
    // tables degrade under adversarial (sequential or strided) port
    // patterns; the finaliser diffuses every input bit into every
    // output bit.
    std::uint64_t addrs = (static_cast<std::uint64_t>(k.src.value()) << 32) |
                          k.dst.value();
    std::uint64_t rest = (static_cast<std::uint64_t>(k.src_port) << 24) |
                         (static_cast<std::uint64_t>(k.dst_port) << 8) |
                         static_cast<std::uint64_t>(k.proto);
    return static_cast<std::size_t>(
        endbox::splitmix64(addrs ^ endbox::splitmix64(rest)));
  }
};
