// IPv4 address and protocol constants.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

namespace endbox::net {

/// IPv4 address stored in host order for arithmetic convenience;
/// serialisation converts to network order.
class Ipv4 {
 public:
  constexpr Ipv4() = default;
  constexpr explicit Ipv4(std::uint32_t host_order) : addr_(host_order) {}
  constexpr Ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : addr_(static_cast<std::uint32_t>(a) << 24 | static_cast<std::uint32_t>(b) << 16 |
              static_cast<std::uint32_t>(c) << 8 | d) {}

  constexpr std::uint32_t value() const { return addr_; }
  std::string str() const;

  /// Parses dotted-quad notation; nullopt on malformed input.
  static std::optional<Ipv4> parse(const std::string& text);

  constexpr bool operator==(const Ipv4&) const = default;
  constexpr auto operator<=>(const Ipv4&) const = default;

  /// True when this address is inside `prefix`/`prefix_len`.
  constexpr bool in_subnet(Ipv4 prefix, unsigned prefix_len) const {
    if (prefix_len == 0) return true;
    std::uint32_t mask = prefix_len >= 32 ? 0xffffffffu : ~((1u << (32 - prefix_len)) - 1);
    return (addr_ & mask) == (prefix.addr_ & mask);
  }

 private:
  std::uint32_t addr_ = 0;
};

enum class IpProto : std::uint8_t {
  Icmp = 1,
  Tcp = 6,
  Udp = 17,
};

}  // namespace endbox::net

template <>
struct std::hash<endbox::net::Ipv4> {
  std::size_t operator()(const endbox::net::Ipv4& ip) const noexcept {
    return std::hash<std::uint32_t>{}(ip.value());
  }
};
