#include "net/ip.hpp"

#include <cstdio>

namespace endbox::net {

std::string Ipv4::str() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", addr_ >> 24 & 0xff,
                addr_ >> 16 & 0xff, addr_ >> 8 & 0xff, addr_ & 0xff);
  return buf;
}

std::optional<Ipv4> Ipv4::parse(const std::string& text) {
  unsigned a, b, c, d;
  char tail;
  if (std::sscanf(text.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &tail) != 4)
    return std::nullopt;
  if (a > 255 || b > 255 || c > 255 || d > 255) return std::nullopt;
  return Ipv4(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
              static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d));
}

}  // namespace endbox::net
