// Internet checksum (RFC 1071) for IP/ICMP headers.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace endbox::net {

/// One's-complement sum over 16-bit words, as used by IPv4 and ICMP.
std::uint16_t internet_checksum(ByteView data);

}  // namespace endbox::net
