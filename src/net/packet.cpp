#include "net/packet.hpp"

#include <sstream>

#include "net/checksum.hpp"

namespace endbox::net {

std::size_t Packet::l4_header_size() const {
  switch (proto) {
    case IpProto::Tcp: return kTcpHeaderSize;
    case IpProto::Udp: return kUdpHeaderSize;
    case IpProto::Icmp: return kIcmpHeaderSize;
  }
  return 0;
}

Bytes Packet::serialize() const {
  Bytes out;
  serialize_into(out);
  return out;
}

void Packet::serialize_into(Bytes& out) const {
  out.clear();
  out.reserve(wire_size());

  // IPv4 header (no options, IHL = 5).
  out.push_back(0x45);
  out.push_back(tos);
  put_u16(out, static_cast<std::uint16_t>(wire_size()));
  put_u16(out, ip_id);
  put_u16(out, 0);  // flags + fragment offset (fragmentation happens at VPN layer)
  out.push_back(ttl);
  out.push_back(static_cast<std::uint8_t>(proto));
  put_u16(out, 0);  // checksum placeholder
  put_u32(out, src.value());
  put_u32(out, dst.value());
  std::uint16_t ip_csum = internet_checksum(ByteView(out.data(), kIpv4HeaderSize));
  out[10] = static_cast<std::uint8_t>(ip_csum >> 8);
  out[11] = static_cast<std::uint8_t>(ip_csum);

  switch (proto) {
    case IpProto::Tcp: {
      put_u16(out, src_port);
      put_u16(out, dst_port);
      put_u32(out, seq);
      put_u32(out, ack);
      out.push_back(0x50);  // data offset = 5 words
      out.push_back(tcp_flags);
      put_u16(out, 0xffff);  // window
      put_u16(out, 0);       // checksum (not computed; tunnel MAC covers it)
      put_u16(out, 0);       // urgent pointer
      break;
    }
    case IpProto::Udp: {
      put_u16(out, src_port);
      put_u16(out, dst_port);
      put_u16(out, static_cast<std::uint16_t>(kUdpHeaderSize + payload.size()));
      put_u16(out, 0);  // checksum optional in IPv4
      break;
    }
    case IpProto::Icmp: {
      std::size_t icmp_start = out.size();
      out.push_back(icmp_type);
      out.push_back(icmp_code);
      put_u16(out, 0);  // checksum placeholder
      put_u16(out, icmp_id);
      put_u16(out, icmp_seq);
      // ICMP checksum covers header + payload; both end up contiguous
      // in `out`, so append first and checksum in place (no copy).
      append(out, payload);
      std::uint16_t csum = internet_checksum(
          ByteView(out.data() + icmp_start, out.size() - icmp_start));
      out[icmp_start + 2] = static_cast<std::uint8_t>(csum >> 8);
      out[icmp_start + 3] = static_cast<std::uint8_t>(csum);
      return;
    }
  }
  append(out, payload);
}

Result<Packet> Packet::parse(ByteView wire) {
  Packet p;
  auto status = parse_into(wire, p);
  if (!status.ok()) return err(status.error());
  return p;
}

Status Packet::parse_into(ByteView wire, Packet& p) {
  if (wire.size() < kIpv4HeaderSize) return err("packet shorter than IPv4 header");
  if ((wire[0] >> 4) != 4) return err("not an IPv4 packet");
  std::size_t ihl = static_cast<std::size_t>(wire[0] & 0xf) * 4;
  if (ihl != kIpv4HeaderSize) return err("IP options unsupported");
  if (internet_checksum(wire.subspan(0, kIpv4HeaderSize)) != 0)
    return err("bad IPv4 header checksum");

  // Reset every field a reused packet may carry (payload/annotations
  // keep their buffer capacity, only the contents are replaced).
  p.src_port = p.dst_port = 0;
  p.seq = p.ack = 0;
  p.tcp_flags = p.icmp_type = p.icmp_code = 0;
  p.icmp_id = p.icmp_seq = 0;
  p.dropped = false;
  p.flow_hint = 0;
  p.burst_tag = 0;
  p.decrypted_payload.clear();
  p.flow_ctx = nullptr;
  p.stream_off = p.stream_len = 0;
  p.stream_scan = false;

  p.tos = wire[1];
  std::uint16_t total_len = get_u16(wire.data() + 2);
  if (total_len > wire.size() || total_len < kIpv4HeaderSize)
    return err("bad IPv4 total length");
  p.ip_id = get_u16(wire.data() + 4);
  p.ttl = wire[8];
  std::uint8_t proto_num = wire[9];
  p.src = Ipv4(get_u32(wire.data() + 12));
  p.dst = Ipv4(get_u32(wire.data() + 16));

  ByteReader r(wire.subspan(kIpv4HeaderSize, total_len - kIpv4HeaderSize));
  try {
    switch (proto_num) {
      case 6: {
        p.proto = IpProto::Tcp;
        p.src_port = r.u16();
        p.dst_port = r.u16();
        p.seq = r.u32();
        p.ack = r.u32();
        std::uint8_t offset_words = static_cast<std::uint8_t>(r.u8() >> 4);
        if (offset_words != 5) return err("TCP options unsupported");
        p.tcp_flags = r.u8();
        r.u16();  // window
        r.u16();  // checksum
        r.u16();  // urgent
        break;
      }
      case 17: {
        p.proto = IpProto::Udp;
        p.src_port = r.u16();
        p.dst_port = r.u16();
        std::uint16_t udp_len = r.u16();
        // After reading sport/dport/len, the reader still holds the
        // 2-byte checksum plus the payload.
        if (udp_len != kUdpHeaderSize + (r.remaining() - 2))
          return err("bad UDP length");
        r.u16();  // checksum
        break;
      }
      case 1: {
        p.proto = IpProto::Icmp;
        p.icmp_type = r.u8();
        p.icmp_code = r.u8();
        r.u16();  // checksum
        p.icmp_id = r.u16();
        p.icmp_seq = r.u16();
        break;
      }
      default:
        return err("unsupported IP protocol " + std::to_string(proto_num));
    }
    ByteView payload = r.rest_view();
    p.payload.assign(payload.begin(), payload.end());
  } catch (const std::out_of_range&) {
    return err("truncated L4 header");
  }
  return {};
}

std::string Packet::summary() const {
  std::ostringstream os;
  switch (proto) {
    case IpProto::Tcp:
      os << "TCP " << src.str() << ":" << src_port << " > " << dst.str() << ":" << dst_port
         << " seq=" << seq << " len=" << payload.size();
      break;
    case IpProto::Udp:
      os << "UDP " << src.str() << ":" << src_port << " > " << dst.str() << ":" << dst_port
         << " len=" << payload.size();
      break;
    case IpProto::Icmp:
      os << "ICMP type=" << int{icmp_type} << " " << src.str() << " > " << dst.str()
         << " id=" << icmp_id << " seq=" << icmp_seq;
      break;
  }
  if (dropped) os << " [dropped]";
  return os.str();
}

Packet Packet::udp(Ipv4 src, Ipv4 dst, std::uint16_t sport, std::uint16_t dport,
                   Bytes payload) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.proto = IpProto::Udp;
  p.src_port = sport;
  p.dst_port = dport;
  p.payload = std::move(payload);
  return p;
}

Packet Packet::tcp(Ipv4 src, Ipv4 dst, std::uint16_t sport, std::uint16_t dport,
                   std::uint32_t seq, std::uint32_t ack, std::uint8_t flags,
                   Bytes payload) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.proto = IpProto::Tcp;
  p.src_port = sport;
  p.dst_port = dport;
  p.seq = seq;
  p.ack = ack;
  p.tcp_flags = flags;
  p.payload = std::move(payload);
  return p;
}

Packet Packet::icmp_echo_request(Ipv4 src, Ipv4 dst, std::uint16_t id,
                                 std::uint16_t seq, Bytes payload) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.proto = IpProto::Icmp;
  p.icmp_type = 8;
  p.icmp_id = id;
  p.icmp_seq = seq;
  p.payload = std::move(payload);
  return p;
}

Packet Packet::icmp_echo_reply(const Packet& request) {
  Packet p = request;
  p.src = request.dst;
  p.dst = request.src;
  p.icmp_type = 0;
  p.dropped = false;
  return p;
}

}  // namespace endbox::net
