// Discrete-event scheduler driving the whole network simulation.
//
// Events are closures ordered by (time, sequence-number); equal-time
// events run in scheduling order, which keeps runs deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/clock.hpp"

namespace endbox::sim {

class EventQueue {
 public:
  using Handler = std::function<void()>;
  using EventId = std::uint64_t;

  explicit EventQueue(Clock& clock) : clock_(clock) {}

  /// Schedules `fn` to run at absolute virtual time `t` (clamped to now).
  EventId schedule_at(Time t, Handler fn);
  /// Schedules `fn` to run `delay` from now.
  EventId schedule_after(Duration delay, Handler fn);
  /// Cancels a pending event; returns false if already run or unknown.
  bool cancel(EventId id);

  /// Runs events until the queue is empty or `deadline` is passed.
  /// Returns the number of events executed.
  std::size_t run_until(Time deadline);
  /// Runs a single event if one is pending; returns false when idle.
  bool step();

  bool empty() const { return live_events_ == 0; }
  std::size_t pending() const { return live_events_; }
  Time now() const { return clock_.now(); }
  Clock& clock() { return clock_; }

 private:
  struct Entry {
    Time time;
    EventId id;
    bool operator>(const Entry& other) const {
      return time != other.time ? time > other.time : id > other.id;
    }
  };

  Clock& clock_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  // id -> handler; cancelled events are erased here and skipped on pop.
  std::unordered_map<EventId, Handler> handlers_;
  EventId next_id_ = 1;
  std::size_t live_events_ = 0;
};

}  // namespace endbox::sim
