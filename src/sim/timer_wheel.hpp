// Hierarchical timer wheel over virtual time (the expiry engine behind
// LifecycleTable, cf. NFOS's EXP_TIME incremental packet-set expiry).
//
// Four levels of 256 slots each: level 0 resolves single ticks, every
// higher level covers 256x the span below it, so one wheel spans
// 2^32 ticks (~49 days at the default 1 ms tick) before entries merely
// re-cascade. schedule() and each fired/cascaded entry cost O(1);
// advance() is amortised O(1) per tick, with an O(entries + slots)
// rebuild path for large jumps so idle periods cost less than ticking
// through them. There is no cancel(): owners stamp entries with a
// cookie (index + generation) and discard stale firings — lazy
// cancellation keeps the hot path free of bookkeeping.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/clock.hpp"

namespace endbox::sim {

class TimerWheel {
 public:
  struct Options {
    /// Wheel resolution: deadlines round down to a tick and fire on the
    /// first advance() whose target tick reaches them.
    Time tick = kMillisecond;
  };

  static constexpr std::size_t kLevels = 4;
  static constexpr std::size_t kSlotBits = 8;
  static constexpr std::size_t kSlots = std::size_t{1} << kSlotBits;

  TimerWheel() : TimerWheel(Options{}) {}
  explicit TimerWheel(Options options)
      : tick_(options.tick == 0 ? 1 : options.tick) {
    for (auto& level : heads_) level.fill(kNil);
  }

  std::size_t size() const { return size_; }
  Time tick() const { return tick_; }
  /// Virtual time the wheel has advanced to (start of current tick).
  Time horizon() const { return current_tick_ * tick_; }

  /// Arms a timer. `cookie` is opaque to the wheel and handed back on
  /// fire; deadlines at or before the horizon fire on the next advance.
  void schedule(std::uint64_t cookie, Time deadline) {
    std::uint64_t target = deadline / tick_;
    if (target <= current_tick_) target = current_tick_ + 1;
    std::uint32_t idx = acquire();
    entries_[idx].cookie = cookie;
    entries_[idx].deadline = deadline;
    place(idx, target);
    ++size_;
  }

  /// Advances the wheel to `now`, invoking `fire(cookie, deadline)` for
  /// every timer whose deadline tick has been reached. The callback may
  /// schedule() new timers (future deadlines land correctly, past ones
  /// fire on the next advance). Returns the number fired.
  template <typename Fn>
  std::size_t advance(Time now, Fn&& fire) {
    std::uint64_t target = now / tick_;
    if (target <= current_tick_) return 0;
    if (size_ == 0) {
      current_tick_ = target;
      return 0;
    }
    if (target - current_tick_ > kRebuildThresholdTicks)
      return rebuild_advance(target, fire);
    std::size_t fired = 0;
    while (current_tick_ < target) {
      ++current_tick_;
      cascade(current_tick_);
      fired += fire_slot(current_tick_ & kMask, fire);
      if (size_ == 0) {  // nothing left: snap to the target
        current_tick_ = target;
        break;
      }
    }
    return fired;
  }

  /// Removes every pending timer, invoking `fn(cookie, deadline)` for
  /// each (migration/teardown; order is unspecified).
  template <typename Fn>
  void drain(Fn&& fn) {
    for (auto& level : heads_) {
      for (auto& head : level) {
        std::uint32_t idx = head;
        head = kNil;
        while (idx != kNil) {
          std::uint32_t next = entries_[idx].next;
          std::uint64_t cookie = entries_[idx].cookie;
          Time deadline = entries_[idx].deadline;
          release(idx);
          fn(cookie, deadline);
          idx = next;
        }
      }
    }
    size_ = 0;
  }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;
  static constexpr std::size_t kMask = kSlots - 1;
  // Past this many ticks, rebuilding every entry beats ticking through
  // the gap (1024 slot heads + size_ entries vs one cascade per tick).
  static constexpr std::uint64_t kRebuildThresholdTicks = 4 * kSlots;

  struct Entry {
    std::uint64_t cookie = 0;
    Time deadline = 0;
    std::uint32_t next = kNil;
  };

  std::uint32_t acquire() {
    if (free_ != kNil) {
      std::uint32_t idx = free_;
      free_ = entries_[idx].next;
      return idx;
    }
    entries_.emplace_back();
    return static_cast<std::uint32_t>(entries_.size() - 1);
  }

  void release(std::uint32_t idx) {
    entries_[idx].next = free_;
    free_ = idx;
  }

  /// Files `idx` under the level whose span covers target_tick -
  /// current_tick_. Level-0 slots hold exactly one tick's entries
  /// (delta < 256 and absolute slot addressing make collisions between
  /// different ticks impossible), which is what lets fire_slot() fire a
  /// slot wholesale without per-entry deadline checks.
  void place(std::uint32_t idx, std::uint64_t target_tick) {
    std::uint64_t delta = target_tick - current_tick_;
    std::size_t level = 0;
    while (level + 1 < kLevels &&
           delta >= (std::uint64_t{1} << (kSlotBits * (level + 1))))
      ++level;
    std::size_t slot = (target_tick >> (kSlotBits * level)) & kMask;
    entries_[idx].next = heads_[level][slot];
    heads_[level][slot] = idx;
  }

  /// Re-files entries of every higher-level slot that opens at tick
  /// `t`, outermost level first so re-placed entries can land in inner
  /// slots that drain later in this same call.
  void cascade(std::uint64_t t) {
    for (int level = kLevels - 1; level >= 1; --level) {
      std::uint64_t span_mask =
          (std::uint64_t{1} << (kSlotBits * static_cast<std::size_t>(level))) - 1;
      if ((t & span_mask) != 0) continue;
      std::size_t slot = (t >> (kSlotBits * static_cast<std::size_t>(level))) & kMask;
      std::uint32_t idx = heads_[static_cast<std::size_t>(level)][slot];
      heads_[static_cast<std::size_t>(level)][slot] = kNil;
      while (idx != kNil) {
        std::uint32_t next = entries_[idx].next;
        std::uint64_t target = entries_[idx].deadline / tick_;
        place(idx, std::max(target, t));
        idx = next;
      }
    }
  }

  template <typename Fn>
  std::size_t fire_slot(std::size_t slot, Fn&& fire) {
    // Detach, restore insertion order (push-front built the list LIFO),
    // then release each entry *before* its callback runs: the callback
    // may schedule(), which reuses the free list and may grow entries_.
    std::uint32_t idx = heads_[0][slot];
    heads_[0][slot] = kNil;
    std::uint32_t ordered = kNil;
    while (idx != kNil) {
      std::uint32_t next = entries_[idx].next;
      entries_[idx].next = ordered;
      ordered = idx;
      idx = next;
    }
    std::size_t fired = 0;
    while (ordered != kNil) {
      std::uint32_t next = entries_[ordered].next;
      std::uint64_t cookie = entries_[ordered].cookie;
      Time deadline = entries_[ordered].deadline;
      release(ordered);
      --size_;
      ++fired;
      fire(cookie, deadline);
      ordered = next;
    }
    return fired;
  }

  /// Large-jump path: pull every entry out once, fire the expired set
  /// in deterministic (deadline, cookie) order, re-file the rest at the
  /// new horizon. O(entries + slots) regardless of the jump size.
  template <typename Fn>
  std::size_t rebuild_advance(std::uint64_t target, Fn&& fire) {
    scratch_.clear();
    expired_scratch_.clear();
    for (auto& level : heads_) {
      for (auto& head : level) {
        std::uint32_t idx = head;
        head = kNil;
        while (idx != kNil) {
          std::uint32_t next = entries_[idx].next;
          scratch_.push_back(idx);
          idx = next;
        }
      }
    }
    current_tick_ = target;
    for (std::uint32_t idx : scratch_) {
      if (entries_[idx].deadline / tick_ <= target) {
        expired_scratch_.push_back({entries_[idx].deadline, entries_[idx].cookie});
        release(idx);
        --size_;
      } else {
        place(idx, entries_[idx].deadline / tick_);
      }
    }
    std::sort(expired_scratch_.begin(), expired_scratch_.end());
    for (const auto& [deadline, cookie] : expired_scratch_) fire(cookie, deadline);
    return expired_scratch_.size();
  }

  Time tick_;
  std::uint64_t current_tick_ = 0;
  std::size_t size_ = 0;
  std::array<std::array<std::uint32_t, kSlots>, kLevels> heads_;
  std::vector<Entry> entries_;
  std::uint32_t free_ = kNil;
  std::vector<std::uint32_t> scratch_;
  std::vector<std::pair<Time, std::uint64_t>> expired_scratch_;
};

}  // namespace endbox::sim
