#include "sim/cpu.hpp"

#include <stdexcept>

namespace endbox::sim {

CpuAccount::CpuAccount(unsigned cores, double hz) : hz_(hz) {
  if (cores == 0 || hz <= 0) throw std::invalid_argument("CpuAccount: bad parameters");
  core_free_at_.assign(cores, 0);
}

Duration CpuAccount::cycles_to_ns(double cycles) const {
  return static_cast<Duration>(cycles / hz_ * 1e9);
}

Time CpuAccount::charge(Time now, double cycles) {
  auto it = std::min_element(core_free_at_.begin(), core_free_at_.end());
  Time start = std::max(now, *it);
  Time service = static_cast<Time>(cycles_to_ns(cycles));
  Time done = start + service;
  *it = done;
  busy_core_ns_ += static_cast<double>(service);
  ++charges_;
  return done;
}

Time CpuAccount::peek_completion(Time now, double cycles) const {
  Time earliest = *std::min_element(core_free_at_.begin(), core_free_at_.end());
  Time start = std::max(now, earliest);
  return start + static_cast<Time>(cycles_to_ns(cycles));
}

double CpuAccount::utilisation(Time start, Time end) const {
  if (end <= start) return 0.0;
  double window_core_ns =
      static_cast<double>(end - start) * static_cast<double>(core_free_at_.size());
  return std::min(1.0, busy_core_ns_ / window_core_ns);
}

void CpuAccount::reset() {
  std::fill(core_free_at_.begin(), core_free_at_.end(), 0);
  busy_core_ns_ = 0;
  charges_ = 0;
}

}  // namespace endbox::sim
