#include "sim/cpu.hpp"

#include <stdexcept>

namespace endbox::sim {

MultiCoreAccount::MultiCoreAccount(unsigned cores, double hz) : hz_(hz) {
  if (cores == 0 || hz <= 0)
    throw std::invalid_argument("MultiCoreAccount: bad parameters");
  core_free_at_.assign(cores, 0);
  core_busy_ns_.assign(cores, 0.0);
}

Duration MultiCoreAccount::cycles_to_ns(double cycles) const {
  return static_cast<Duration>(cycles / hz_ * 1e9);
}

Time MultiCoreAccount::place(Time earliest, double cycles) {
  auto it = std::min_element(core_free_at_.begin(), core_free_at_.end());
  Time start = std::max(earliest, *it);
  Time service = static_cast<Time>(cycles_to_ns(cycles));
  Time done = start + service;
  *it = done;
  core_busy_ns_[static_cast<std::size_t>(it - core_free_at_.begin())] +=
      static_cast<double>(service);
  busy_core_ns_ += static_cast<double>(service);
  ++charges_;
  return done;
}

Time MultiCoreAccount::charge(Time now, double cycles) {
  return place(now, cycles);
}

Time MultiCoreAccount::charge_parallel(Time now, double staging_cycles,
                                       std::span<const double> shard_cycles,
                                       std::span<Time> shard_done,
                                       std::span<const Time> shard_earliest) {
  // Staging serialises in front of every shard job: the partition pass
  // must finish before any worker can start, and the staging thread's
  // core only becomes available to workers afterwards.
  Time staged = place(now, staging_cycles);
  Time done = staged;
  for (std::size_t i = 0; i < shard_cycles.size(); ++i) {
    Time earliest = staged;
    if (!shard_earliest.empty()) earliest = std::max(earliest, shard_earliest[i]);
    Time job_done = place(earliest, shard_cycles[i]);
    if (!shard_done.empty()) shard_done[i] = job_done;
    done = std::max(done, job_done);
  }
  return done;
}

Time MultiCoreAccount::peek_completion(Time now, double cycles) const {
  Time earliest = *std::min_element(core_free_at_.begin(), core_free_at_.end());
  Time start = std::max(now, earliest);
  return start + static_cast<Time>(cycles_to_ns(cycles));
}

double MultiCoreAccount::utilisation(Time start, Time end) const {
  if (end <= start) return 0.0;
  double window_core_ns =
      static_cast<double>(end - start) * static_cast<double>(core_free_at_.size());
  return std::min(1.0, busy_core_ns_ / window_core_ns);
}

void MultiCoreAccount::reset() {
  std::fill(core_free_at_.begin(), core_free_at_.end(), 0);
  std::fill(core_busy_ns_.begin(), core_busy_ns_.end(), 0.0);
  busy_core_ns_ = 0;
  charges_ = 0;
}

}  // namespace endbox::sim
