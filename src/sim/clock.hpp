// Virtual time. All of the evaluation runs on simulated time so that
// experiments are deterministic and complete in milliseconds of wall
// time while modelling seconds of network time.
#pragma once

#include <cstdint>

namespace endbox::sim {

/// Nanoseconds of virtual time since simulation start.
using Time = std::uint64_t;
/// Signed durations (deltas) in nanoseconds.
using Duration = std::int64_t;

inline constexpr Time kNanosecond = 1;
inline constexpr Time kMicrosecond = 1000 * kNanosecond;
inline constexpr Time kMillisecond = 1000 * kMicrosecond;
inline constexpr Time kSecond = 1000 * kMillisecond;

inline constexpr double to_seconds(Time t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}
inline constexpr double to_millis(Time t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}
inline constexpr Time from_seconds(double s) {
  return static_cast<Time>(s * static_cast<double>(kSecond));
}
inline constexpr Time from_millis(double ms) {
  return static_cast<Time>(ms * static_cast<double>(kMillisecond));
}

/// Monotonic virtual clock advanced only by the event loop.
class Clock {
 public:
  Time now() const { return now_; }
  void advance_to(Time t);

 private:
  Time now_ = 0;
};

}  // namespace endbox::sim
