#include "sim/clock.hpp"

#include <stdexcept>

namespace endbox::sim {

void Clock::advance_to(Time t) {
  if (t < now_) throw std::logic_error("Clock: time went backwards");
  now_ = t;
}

}  // namespace endbox::sim
