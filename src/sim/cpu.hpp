// CPU model: a host owns a CpuAccount with N logical cores running at a
// fixed clock rate. Packet-processing work consumes cycles; the account
// converts cycles to virtual service time and tracks utilisation so the
// scalability experiments (Fig 10) can report server CPU usage.
//
// The model is a simple processor-sharing approximation: work items are
// charged sequentially onto the least-loaded core, which reproduces the
// saturation behaviour that drives the paper's scalability results
// without simulating an OS scheduler.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/clock.hpp"

namespace endbox::sim {

class CpuAccount {
 public:
  /// `cores` logical cores at `hz` cycles per second.
  CpuAccount(unsigned cores, double hz);

  /// Charges `cycles` of work arriving at time `now`. Returns the time
  /// at which the work completes (>= now; later when the CPU is busy).
  Time charge(Time now, double cycles);

  /// Completion time if charged, without mutating state.
  Time peek_completion(Time now, double cycles) const;

  /// Utilisation in [0,1] over the window [start, end): fraction of
  /// total core-time spent busy.
  double utilisation(Time start, Time end) const;

  /// Busy core-nanoseconds accumulated so far.
  double busy_core_ns() const { return busy_core_ns_; }

  /// Work items charged so far (per-client accounting in scalability
  /// experiments: busy_core_ns / charges = mean service time).
  std::uint64_t charges() const { return charges_; }

  unsigned cores() const { return static_cast<unsigned>(core_free_at_.size()); }
  double hz() const { return hz_; }

  /// Converts cycles to nanoseconds of single-core service time.
  Duration cycles_to_ns(double cycles) const;

  void reset();

 private:
  double hz_;
  std::vector<Time> core_free_at_;
  double busy_core_ns_ = 0;
  std::uint64_t charges_ = 0;
};

}  // namespace endbox::sim
