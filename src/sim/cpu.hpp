// CPU model: a host owns a MultiCoreAccount with N logical cores
// running at a fixed clock rate. Packet-processing work consumes
// cycles; the account converts cycles to virtual service time and
// tracks per-core utilisation so the scalability experiments (Fig 10)
// can report server CPU usage.
//
// Two charging shapes:
//
//  - charge(): one serial work item lands on the least-loaded core — a
//    processor-sharing approximation that reproduces saturation
//    behaviour without simulating an OS scheduler.
//  - charge_parallel(): one staging phase (the single-threaded part of
//    a sharded burst: header parse, partition, merge) followed by
//    per-shard work items that run concurrently on distinct cores. The
//    burst completes at the critical path — the slowest shard — while
//    *every* shard's cycles count as busy core time, so sweeping shard
//    counts never under-reports the work actually done. When there are
//    more shards than cores the greedy per-core placement queues the
//    excess, which is exactly the contention between the staging
//    thread and the shard workers the honest model needs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/clock.hpp"

namespace endbox::sim {

class MultiCoreAccount {
 public:
  /// `cores` logical cores at `hz` cycles per second.
  MultiCoreAccount(unsigned cores, double hz);

  /// Charges `cycles` of work arriving at time `now`. Returns the time
  /// at which the work completes (>= now; later when the CPU is busy).
  Time charge(Time now, double cycles);

  /// Charges a sharded burst: `staging_cycles` run first on one core
  /// (the thread that parses/partitions the burst and later merges the
  /// results), then each entry of `shard_cycles` runs as its own job,
  /// greedily placed on the least-loaded core no earlier than staging
  /// completion. `shard_earliest`, when non-empty (same size as
  /// shard_cycles), additionally holds job i back until its own
  /// earliest start — e.g. a shard whose sessions are still busy from
  /// a previous burst — without delaying the other shards. Returns the
  /// completion time of the whole burst (the critical path);
  /// `shard_done`, when non-empty, receives each shard job's own
  /// completion time (must match shard_cycles' size). With one shard
  /// and an idle account this degenerates to
  /// charge(now, staging_cycles + shard_cycles[0]).
  Time charge_parallel(Time now, double staging_cycles,
                       std::span<const double> shard_cycles,
                       std::span<Time> shard_done = {},
                       std::span<const Time> shard_earliest = {});

  /// Completion time if charged, without mutating state.
  Time peek_completion(Time now, double cycles) const;

  /// Utilisation in [0,1] over the window [start, end): fraction of
  /// total core-time spent busy.
  double utilisation(Time start, Time end) const;

  /// Busy core-nanoseconds accumulated so far, across all cores.
  double busy_core_ns() const { return busy_core_ns_; }
  /// Busy nanoseconds accumulated by core `i` — the per-core view that
  /// tells a balanced sharded burst from one hot core.
  double core_busy_ns(unsigned i) const { return core_busy_ns_.at(i); }
  /// The busiest core's accumulated nanoseconds (load-imbalance probe).
  double max_core_busy_ns() const {
    return *std::max_element(core_busy_ns_.begin(), core_busy_ns_.end());
  }

  /// Work items charged so far (per-client accounting in scalability
  /// experiments: busy_core_ns / charges = mean service time). Each
  /// charge_parallel counts 1 + shard_cycles.size() items.
  std::uint64_t charges() const { return charges_; }

  unsigned cores() const { return static_cast<unsigned>(core_free_at_.size()); }
  double hz() const { return hz_; }

  /// Converts cycles to nanoseconds of single-core service time.
  Duration cycles_to_ns(double cycles) const;

  void reset();

 private:
  /// Places one work item on the least-loaded core, starting no
  /// earlier than `earliest`; returns its completion time.
  Time place(Time earliest, double cycles);

  double hz_;
  std::vector<Time> core_free_at_;
  std::vector<double> core_busy_ns_;
  double busy_core_ns_ = 0;
  std::uint64_t charges_ = 0;
};

/// The single-counter account every host used before the multi-core
/// refactor; all call sites now share the richer model.
using CpuAccount = MultiCoreAccount;

}  // namespace endbox::sim
