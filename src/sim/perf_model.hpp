// Calibrated cost model.
//
// Functional behaviour in this repo is real (real AES, real pattern
// matching, real parsing); *time* is virtual. This file is the single
// place where virtual-time costs live, expressed in CPU cycles so they
// scale with the modelled core clock. Constants are calibrated against
// the paper's measured numbers:
//
//  - vanilla OpenVPN ~813 Mbps at 1500-byte packets and ~3.1 Gbps at
//    64 KB writes (Fig 8) implies ~13 us fixed per-packet cost plus
//    ~1 ns/byte crypto on a ~3.5 GHz core;
//  - EndBox-SGX overhead of 39 % (small packets) shrinking to 16 %
//    (64 KB) implies a ~8 us enclave-transition cost amortised over
//    larger reads plus a small per-byte EPC penalty;
//  - the +342 % throughput gain from the single-ecall optimisation
//    (section V-G) implies ~14 transitions per packet before batching;
//  - server-side Click costs ~2 us per packet (Fig 8 gap), and a
//    single-threaded Click process saturates at 5.5 Gbps (Fig 10a);
//  - IDPS (377 Snort rules) and DDoS matching add per-byte costs that
//    produce the 39 % EndBox / 13 % server-side use-case overheads of
//    Fig 9 and the 1.7 Gbps plateau of Fig 10b.
#pragma once

#include <cstddef>

#include "sim/clock.hpp"

namespace endbox::sim {

struct PerfModel {
  // ---- Hardware (paper section V-B) --------------------------------
  // Class A: SGX-capable 4-core Xeon v5, hyper-threaded => 8 logical.
  unsigned client_cores = 8;
  double client_hz = 3.5e9;
  // Class B: 4-core Xeon v2, hyper-threaded => 8 logical, older/slower.
  unsigned server_cores = 8;
  double server_hz = 3.5e9;

  // ---- VPN data path (per packet / per byte, cycles) ---------------
  // Full userspace traversal: tun read/write, encap, syscalls, copies.
  double vpn_packet_cycles = 46'000;
  // AES-128-CBC + HMAC-SHA-256, AES-NI-class per-byte cost.
  double vpn_crypto_cycles_per_byte = 3.6;
  // ISP-mode integrity-only protection (HMAC, no encryption).
  double vpn_integrity_cycles_per_byte = 1.3;
  // Control-channel message handling (ping parse + MAC).
  double vpn_control_msg_cycles = 12'000;

  // ---- Partitioned client (EndBox SIM mode) -------------------------
  // Extra boundary copies introduced by splitting OpenVPN.
  double partition_packet_cycles = 1'700;
  double partition_cycles_per_byte = 1.0;

  // ---- SGX (EndBox hardware mode) -----------------------------------
  // One enclave transition (ecall or ocall) including argument copies.
  double enclave_transition_cycles = 20'000;
  // Per byte touched inside the EPC (memory-encryption engine).
  double epc_cycles_per_byte = 0.85;
  // Multiplier on memory-heavy compute (pattern matching) inside EPC.
  double enclave_compute_multiplier = 2.5;
  // Transitions per processed packet, before/after the batching
  // optimisation of section IV-A / V-G.
  unsigned ecalls_per_packet_optimised = 1;
  unsigned ecalls_per_packet_unoptimised = 14;
  // SGX trusted-time ocall (sgx_get_trusted_time).
  double trusted_time_cycles = 40'000;

  // ---- Click ---------------------------------------------------------
  // Per-packet graph entry for a standalone Click *process* (packet
  // fetch + scheduling); in-enclave Click is a function call and pays
  // the much smaller enclave_click_packet_cycles instead.
  double click_packet_cycles = 6'000;
  double enclave_click_packet_cycles = 1'200;
  // Raw receive cost (tun read) for a standalone Click process.
  double standalone_click_rx_cycles = 1'500;
  // Per element hop in the graph.
  double click_element_cycles = 150;
  // Hot-swap: file-descriptor set-up cost vanilla Click pays for
  // ToDevice/FromDevice (Table II: 2.4 ms vs 0.74 ms in EndBox).
  Duration click_hotswap_base_ns = 740 * kMicrosecond;          // 0.74 ms
  Duration click_hotswap_fd_setup_ns = 1660 * kMicrosecond;     // +1.66 ms

  // ---- Middlebox functions (per unit, cycles) ------------------------
  double lb_packet_cycles = 900;            // RoundRobinSwitch bookkeeping
  double fw_rule_cycles = 85;               // per IPFilter rule evaluated
  double idps_cycles_per_byte = 4.1;        // Aho-Corasick scan
  double ddos_cycles_per_byte = 6.0;        // matching + rate accounting

  // ---- Sharded data planes (client enclave and VPN server) ------------
  // Single-threaded staging a sharded burst pays per frame before the
  // shard workers start: wire-header parse, shard lookup, partition
  // append, and the k-way merge's share afterwards. Reference
  // (stage-and-barrier) path only.
  double shard_staging_cycles_per_frame = 120;
  // Run-to-completion lane dispatch: the only serial work per frame is
  // the RSS hash and an SPSC ring push — no partition append, no merge
  // share. Everything else charges on the lane that runs the frame.
  double lane_dispatch_cycles_per_frame = 40;

  // ---- Server-side chaining (OpenVPN+Click set-up) --------------------
  // Handing packets from per-client OpenVPN processes to Click instances
  // costs a second tun traversal plus scheduling.
  double server_chain_packet_cycles = 2'500;
  // Multi-process contention: extra cycles per packet per active client
  // beyond the core count (scheduler/cache pressure), saturating at
  // `server_contention_max_excess` processes.
  double server_contention_cycles_per_client = 2'500;
  double server_contention_max_excess = 24;
  // Cache pressure additionally inflates per-packet pipeline work by
  // this factor per excess process (pattern-matching state thrashes).
  double server_contention_pipeline_factor = 0.15;

  // ---- Config update path (Table II) ----------------------------------
  Duration config_fetch_ns = 860 * kMicrosecond;  // 0.86 ms network fetch
  double config_decrypt_cycles_per_byte = 18;             // in-enclave AES + verify
  Duration config_decrypt_base_ns = 65 * kMicrosecond;  // ~0.07 ms

  // ---- Derived helpers -------------------------------------------------
  double vpn_data_cycles(std::size_t payload_bytes, bool encrypt) const {
    double per_byte = encrypt ? vpn_crypto_cycles_per_byte : vpn_integrity_cycles_per_byte;
    return vpn_packet_cycles + per_byte * static_cast<double>(payload_bytes);
  }
};

/// The process-wide default model used by benches/tests unless an
/// experiment overrides specific constants.
const PerfModel& default_perf_model();

}  // namespace endbox::sim
