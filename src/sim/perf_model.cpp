#include "sim/perf_model.hpp"

namespace endbox::sim {

const PerfModel& default_perf_model() {
  static const PerfModel model{};
  return model;
}

}  // namespace endbox::sim
