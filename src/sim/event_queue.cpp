#include "sim/event_queue.hpp"

namespace endbox::sim {

EventQueue::EventId EventQueue::schedule_at(Time t, Handler fn) {
  if (t < clock_.now()) t = clock_.now();
  EventId id = next_id_++;
  queue_.push(Entry{t, id});
  handlers_.emplace(id, std::move(fn));
  ++live_events_;
  return id;
}

EventQueue::EventId EventQueue::schedule_after(Duration delay, Handler fn) {
  Time target = delay <= 0 ? clock_.now()
                           : clock_.now() + static_cast<Time>(delay);
  return schedule_at(target, std::move(fn));
}

bool EventQueue::cancel(EventId id) {
  auto it = handlers_.find(id);
  if (it == handlers_.end()) return false;
  handlers_.erase(it);
  --live_events_;
  return true;
}

bool EventQueue::step() {
  while (!queue_.empty()) {
    Entry entry = queue_.top();
    queue_.pop();
    auto it = handlers_.find(entry.id);
    if (it == handlers_.end()) continue;  // cancelled
    Handler fn = std::move(it->second);
    handlers_.erase(it);
    --live_events_;
    clock_.advance_to(entry.time);
    fn();
    return true;
  }
  return false;
}

std::size_t EventQueue::run_until(Time deadline) {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    Entry entry = queue_.top();
    if (entry.time > deadline) break;
    if (!step()) break;
    ++executed;
  }
  // Even if no event fired exactly at the deadline, time has passed.
  if (clock_.now() < deadline) clock_.advance_to(deadline);
  return executed;
}

}  // namespace endbox::sim
