#include "idps/aho_corasick.hpp"

#include <queue>
#include <stdexcept>

namespace endbox::idps {

void AhoCorasick::add_pattern(ByteView pattern, int pattern_id) {
  if (built_) throw std::logic_error("AhoCorasick: add_pattern after build");
  if (pattern.empty()) return;
  std::int32_t state = 0;
  for (std::uint8_t byte : pattern) {
    std::int32_t next = nodes_[static_cast<std::size_t>(state)].next[byte];
    if (next < 0) {
      next = static_cast<std::int32_t>(nodes_.size());
      nodes_[static_cast<std::size_t>(state)].next[byte] = next;
      nodes_.emplace_back();
    }
    state = next;
  }
  std::int32_t index = static_cast<std::int32_t>(pattern_ids_.size());
  pattern_ids_.push_back(pattern_id);
  pattern_lengths_.push_back(pattern.size());
  pattern_bytes_.emplace_back(pattern.begin(), pattern.end());
  max_pattern_length_ = std::max(max_pattern_length_, pattern.size());
  nodes_[static_cast<std::size_t>(state)].outputs.push_back(index);
}

void AhoCorasick::build(bool prefilter_case_insensitive) {
  if (built_) return;
  // BFS order (root first): output links point at strictly shallower
  // states, so a single pass in this order can resolve the CSR output
  // lists below.
  std::vector<std::int32_t> bfs_order;
  bfs_order.reserve(nodes_.size());
  bfs_order.push_back(0);
  std::queue<std::int32_t> bfs;
  // Depth-1 nodes fail to the root; missing root edges loop to root.
  for (int byte = 0; byte < 256; ++byte) {
    std::int32_t child = nodes_[0].next[byte];
    if (child < 0) {
      nodes_[0].next[byte] = 0;
    } else {
      nodes_[static_cast<std::size_t>(child)].fail = 0;
      bfs.push(child);
    }
  }
  while (!bfs.empty()) {
    std::int32_t state = bfs.front();
    bfs.pop();
    bfs_order.push_back(state);
    Node& node = nodes_[static_cast<std::size_t>(state)];
    // Output link: nearest proper-suffix state that has outputs.
    const Node& fail_node = nodes_[static_cast<std::size_t>(node.fail)];
    node.output_link = fail_node.outputs.empty() ? fail_node.output_link : node.fail;

    for (int byte = 0; byte < 256; ++byte) {
      std::int32_t child = node.next[byte];
      std::int32_t fail_next = nodes_[static_cast<std::size_t>(node.fail)].next[byte];
      if (child < 0) {
        node.next[byte] = fail_next;  // goto-function completion
      } else {
        nodes_[static_cast<std::size_t>(child)].fail = fail_next;
        bfs.push(child);
      }
    }
  }

  // Flatten: one state-major transition table plus CSR output lists.
  // Each state's list is its own outputs followed by the outputs
  // inherited through its output link — the output link's list is
  // already complete when we get here because BFS order visits
  // shallower states first.
  transitions_.resize(nodes_.size() * 256);
  for (std::size_t s = 0; s < nodes_.size(); ++s)
    std::copy(nodes_[s].next.begin(), nodes_[s].next.end(),
              transitions_.begin() + static_cast<std::ptrdiff_t>(s * 256));

  out_start_.assign(nodes_.size() + 1, 0);
  out_patterns_.clear();
  std::vector<std::uint32_t> list_begin(nodes_.size(), 0);
  std::vector<std::uint32_t> list_len(nodes_.size(), 0);
  for (std::int32_t s : bfs_order) {
    const Node& node = nodes_[static_cast<std::size_t>(s)];
    std::uint32_t begin = static_cast<std::uint32_t>(out_patterns_.size());
    out_patterns_.insert(out_patterns_.end(), node.outputs.begin(),
                         node.outputs.end());
    if (node.output_link >= 0) {
      std::size_t link = static_cast<std::size_t>(node.output_link);
      // Self-insert from out_patterns_ would invalidate iterators on
      // growth; indices are stable.
      for (std::uint32_t i = 0; i < list_len[link]; ++i)
        out_patterns_.push_back(out_patterns_[list_begin[link] + i]);
    }
    list_begin[static_cast<std::size_t>(s)] = begin;
    list_len[static_cast<std::size_t>(s)] =
        static_cast<std::uint32_t>(out_patterns_.size()) - begin;
  }
  // The lists were emitted in BFS order; CSR offsets must be state
  // order. Rebuild the concatenation state-major.
  std::vector<std::int32_t> ordered;
  ordered.reserve(out_patterns_.size());
  for (std::size_t s = 0; s < nodes_.size(); ++s) {
    out_start_[s] = static_cast<std::uint32_t>(ordered.size());
    for (std::uint32_t i = 0; i < list_len[s]; ++i)
      ordered.push_back(out_patterns_[list_begin[s] + i]);
  }
  out_start_[nodes_.size()] = static_cast<std::uint32_t>(ordered.size());
  out_patterns_ = std::move(ordered);

  // First tier: the literal prefilter, compiled from the same pattern
  // set. The retained pattern bytes exist only for this step.
  std::vector<ByteView> views(pattern_bytes_.begin(), pattern_bytes_.end());
  prefilter_.build(views, prefilter_case_insensitive);
  pattern_bytes_.clear();
  pattern_bytes_.shrink_to_fit();
  built_ = true;
}

std::int32_t AhoCorasick::step(std::int32_t state, std::uint8_t byte) const {
  return nodes_[static_cast<std::size_t>(state)].next[byte];
}

std::size_t AhoCorasick::match(
    ByteView text, const std::function<bool(const AcMatch&)>& on_match) const {
  if (!built_) throw std::logic_error("AhoCorasick: match before build");
  std::size_t count = 0;
  std::size_t state = 0;
  const std::int32_t* transitions = transitions_.data();
  const std::uint32_t* out_start = out_start_.data();
  for (std::size_t i = 0; i < text.size(); ++i) {
    state = static_cast<std::size_t>(transitions[(state << 8) | text[i]]);
    std::uint32_t begin = out_start[state];
    std::uint32_t end = out_start[state + 1];
    for (; begin != end; ++begin) {
      ++count;
      if (!on_match({pattern_ids_[static_cast<std::size_t>(
                         out_patterns_[begin])],
                     i + 1}))
        return count;
    }
  }
  return count;
}

std::size_t AhoCorasick::match_multi(
    std::span<const ByteView> texts,
    const std::function<bool(std::size_t, const AcMatch&)>& on_match) const {
  if (!built_) throw std::logic_error("AhoCorasick: match before build");
  // 16 interleaved walks keep the load buffers busy without spilling
  // the lane state out of registers/L1.
  constexpr std::size_t kLanes = 16;
  std::size_t count = 0;
  const std::int32_t* transitions = transitions_.data();
  const std::uint32_t* out_start = out_start_.data();
  for (std::size_t base = 0; base < texts.size(); base += kLanes) {
    std::size_t lanes = std::min(kLanes, texts.size() - base);
    std::uint32_t state[kLanes] = {};
    const std::uint8_t* data[kLanes];
    std::size_t len[kLanes];
    std::size_t max_len = 0;
    for (std::size_t l = 0; l < lanes; ++l) {
      data[l] = texts[base + l].data();
      len[l] = texts[base + l].size();
      max_len = std::max(max_len, len[l]);
    }
    for (std::size_t i = 0; i < max_len; ++i) {
      for (std::size_t l = 0; l < lanes; ++l) {
        if (i >= len[l]) continue;
        std::uint32_t next = static_cast<std::uint32_t>(
            transitions[(static_cast<std::size_t>(state[l]) << 8) | data[l][i]]);
        state[l] = next;
        std::uint32_t begin = out_start[next];
        std::uint32_t end = out_start[next + 1];
        for (; begin != end; ++begin) {
          ++count;
          if (!on_match(base + l,
                        {pattern_ids_[static_cast<std::size_t>(
                             out_patterns_[begin])],
                         i + 1}))
            return count;
        }
      }
    }
  }
  return count;
}

std::size_t AhoCorasick::match_resume(
    ByteView text, std::uint32_t* state,
    const std::function<bool(const AcMatch&)>& on_match) const {
  if (!built_) throw std::logic_error("AhoCorasick: match before build");
  std::size_t count = 0;
  std::size_t s = *state;
  const std::int32_t* transitions = transitions_.data();
  const std::uint32_t* out_start = out_start_.data();
  for (std::size_t i = 0; i < text.size(); ++i) {
    s = static_cast<std::size_t>(transitions[(s << 8) | text[i]]);
    std::uint32_t begin = out_start[s];
    std::uint32_t end = out_start[s + 1];
    for (; begin != end; ++begin) {
      ++count;
      if (!on_match({pattern_ids_[static_cast<std::size_t>(
                         out_patterns_[begin])],
                     i + 1})) {
        *state = static_cast<std::uint32_t>(s);
        return count;
      }
    }
  }
  *state = static_cast<std::uint32_t>(s);
  return count;
}

std::size_t AhoCorasick::match_multi_resume(
    std::span<const ByteView> texts, std::uint32_t* states,
    const std::function<bool(std::size_t, const AcMatch&)>& on_match) const {
  if (!built_) throw std::logic_error("AhoCorasick: match before build");
  constexpr std::size_t kLanes = 16;
  std::size_t count = 0;
  const std::int32_t* transitions = transitions_.data();
  const std::uint32_t* out_start = out_start_.data();
  for (std::size_t base = 0; base < texts.size(); base += kLanes) {
    std::size_t lanes = std::min(kLanes, texts.size() - base);
    std::uint32_t state[kLanes];
    const std::uint8_t* data[kLanes];
    std::size_t len[kLanes];
    std::size_t max_len = 0;
    for (std::size_t l = 0; l < lanes; ++l) {
      state[l] = states[base + l];
      data[l] = texts[base + l].data();
      len[l] = texts[base + l].size();
      max_len = std::max(max_len, len[l]);
    }
    for (std::size_t i = 0; i < max_len; ++i) {
      for (std::size_t l = 0; l < lanes; ++l) {
        if (i >= len[l]) continue;
        std::uint32_t next = static_cast<std::uint32_t>(
            transitions[(static_cast<std::size_t>(state[l]) << 8) | data[l][i]]);
        state[l] = next;
        std::uint32_t begin = out_start[next];
        std::uint32_t end = out_start[next + 1];
        for (; begin != end; ++begin) {
          ++count;
          if (!on_match(base + l,
                        {pattern_ids_[static_cast<std::size_t>(
                             out_patterns_[begin])],
                         i + 1})) {
            for (std::size_t k = 0; k < lanes; ++k) states[base + k] = state[k];
            return count;
          }
        }
      }
    }
    for (std::size_t l = 0; l < lanes; ++l) states[base + l] = state[l];
  }
  return count;
}

std::vector<AcMatch> AhoCorasick::match(ByteView text) const {
  if (!built_) throw std::logic_error("AhoCorasick: match before build");
  std::vector<AcMatch> matches;
  std::size_t state = 0;
  const std::int32_t* transitions = transitions_.data();
  const std::uint32_t* out_start = out_start_.data();
  for (std::size_t i = 0; i < text.size(); ++i) {
    state = static_cast<std::size_t>(transitions[(state << 8) | text[i]]);
    for (std::uint32_t o = out_start[state]; o != out_start[state + 1]; ++o)
      matches.push_back(
          {pattern_ids_[static_cast<std::size_t>(out_patterns_[o])], i + 1});
  }
  return matches;
}

bool AhoCorasick::contains_any(ByteView text) const {
  if (!built_) throw std::logic_error("AhoCorasick: match before build");
  std::size_t state = 0;
  const std::int32_t* transitions = transitions_.data();
  const std::uint32_t* out_start = out_start_.data();
  for (std::size_t i = 0; i < text.size(); ++i) {
    state = static_cast<std::size_t>(transitions[(state << 8) | text[i]]);
    if (out_start[state] != out_start[state + 1]) return true;
  }
  return false;
}

std::size_t AhoCorasick::match_reference(
    ByteView text, const std::function<bool(const AcMatch&)>& on_match) const {
  if (!built_) throw std::logic_error("AhoCorasick: match before build");
  std::size_t count = 0;
  std::int32_t state = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    state = step(state, text[i]);
    for (std::int32_t s = state; s >= 0;
         s = nodes_[static_cast<std::size_t>(s)].output_link) {
      for (std::int32_t index : nodes_[static_cast<std::size_t>(s)].outputs) {
        ++count;
        if (!on_match(
                {pattern_ids_[static_cast<std::size_t>(index)], i + 1}))
          return count;
      }
      if (nodes_[static_cast<std::size_t>(s)].outputs.empty() &&
          nodes_[static_cast<std::size_t>(s)].output_link < 0)
        break;
    }
  }
  return count;
}

std::vector<AcMatch> AhoCorasick::match_reference(ByteView text) const {
  std::vector<AcMatch> matches;
  match_reference(text, [&](const AcMatch& m) {
    matches.push_back(m);
    return true;
  });
  return matches;
}

}  // namespace endbox::idps
