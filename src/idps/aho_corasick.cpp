#include "idps/aho_corasick.hpp"

#include <queue>
#include <stdexcept>

namespace endbox::idps {

void AhoCorasick::add_pattern(ByteView pattern, int pattern_id) {
  if (built_) throw std::logic_error("AhoCorasick: add_pattern after build");
  if (pattern.empty()) return;
  std::int32_t state = 0;
  for (std::uint8_t byte : pattern) {
    std::int32_t next = nodes_[static_cast<std::size_t>(state)].next[byte];
    if (next < 0) {
      next = static_cast<std::int32_t>(nodes_.size());
      nodes_[static_cast<std::size_t>(state)].next[byte] = next;
      nodes_.emplace_back();
    }
    state = next;
  }
  std::int32_t index = static_cast<std::int32_t>(pattern_ids_.size());
  pattern_ids_.push_back(pattern_id);
  pattern_lengths_.push_back(pattern.size());
  nodes_[static_cast<std::size_t>(state)].outputs.push_back(index);
}

void AhoCorasick::build() {
  if (built_) return;
  std::queue<std::int32_t> bfs;
  // Depth-1 nodes fail to the root; missing root edges loop to root.
  for (int byte = 0; byte < 256; ++byte) {
    std::int32_t child = nodes_[0].next[byte];
    if (child < 0) {
      nodes_[0].next[byte] = 0;
    } else {
      nodes_[static_cast<std::size_t>(child)].fail = 0;
      bfs.push(child);
    }
  }
  while (!bfs.empty()) {
    std::int32_t state = bfs.front();
    bfs.pop();
    Node& node = nodes_[static_cast<std::size_t>(state)];
    // Output link: nearest proper-suffix state that has outputs.
    const Node& fail_node = nodes_[static_cast<std::size_t>(node.fail)];
    node.output_link = fail_node.outputs.empty() ? fail_node.output_link : node.fail;

    for (int byte = 0; byte < 256; ++byte) {
      std::int32_t child = node.next[byte];
      std::int32_t fail_next = nodes_[static_cast<std::size_t>(node.fail)].next[byte];
      if (child < 0) {
        node.next[byte] = fail_next;  // goto-function completion
      } else {
        nodes_[static_cast<std::size_t>(child)].fail = fail_next;
        bfs.push(child);
      }
    }
  }
  built_ = true;
}

std::int32_t AhoCorasick::step(std::int32_t state, std::uint8_t byte) const {
  return nodes_[static_cast<std::size_t>(state)].next[byte];
}

std::size_t AhoCorasick::match(
    ByteView text, const std::function<bool(const AcMatch&)>& on_match) const {
  if (!built_) throw std::logic_error("AhoCorasick: match before build");
  std::size_t count = 0;
  std::int32_t state = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    state = step(state, text[i]);
    for (std::int32_t s = state; s >= 0;
         s = nodes_[static_cast<std::size_t>(s)].output_link) {
      for (std::int32_t index : nodes_[static_cast<std::size_t>(s)].outputs) {
        ++count;
        if (!on_match(
                {pattern_ids_[static_cast<std::size_t>(index)], i + 1}))
          return count;
      }
      if (nodes_[static_cast<std::size_t>(s)].outputs.empty() &&
          nodes_[static_cast<std::size_t>(s)].output_link < 0)
        break;
    }
  }
  return count;
}

std::vector<AcMatch> AhoCorasick::match(ByteView text) const {
  std::vector<AcMatch> matches;
  match(text, [&](const AcMatch& m) {
    matches.push_back(m);
    return true;
  });
  return matches;
}

bool AhoCorasick::contains_any(ByteView text) const {
  bool found = false;
  match(text, [&](const AcMatch&) {
    found = true;
    return false;
  });
  return found;
}

}  // namespace endbox::idps
