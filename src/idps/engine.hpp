// IDPS matching engine: compiles a Snort rule set into Aho-Corasick
// automatons (one case-sensitive, one case-insensitive) and evaluates
// packets. A rule fires when its header constraints match AND all of
// its content patterns occur in the payload. Drop rules mark the
// packet; alert rules record an event.
#pragma once

#include <cstdint>
#include <vector>

#include "idps/aho_corasick.hpp"
#include "idps/snort_rules.hpp"
#include "net/packet.hpp"

namespace endbox::idps {

struct IdpsVerdict {
  bool matched = false;   ///< some rule fired
  bool drop = false;      ///< a drop rule fired
  std::uint32_t sid = 0;  ///< first firing rule's sid
};

class IdpsEngine {
 public:
  explicit IdpsEngine(std::vector<SnortRule> rules);

  /// Evaluates one packet; also tallies alert/drop statistics.
  IdpsVerdict inspect(const net::Packet& packet);

  std::size_t rule_count() const { return rules_.size(); }
  std::uint64_t packets_inspected() const { return packets_inspected_; }
  std::uint64_t alerts() const { return alerts_; }
  std::uint64_t drops() const { return drops_; }
  std::size_t automaton_nodes() const {
    return cs_automaton_.node_count() + ci_automaton_.node_count();
  }

 private:
  bool header_matches(const SnortRule& rule, const net::Packet& packet) const;

  std::vector<SnortRule> rules_;
  // Pattern ids encode (rule index << 8 | content index within rule).
  AhoCorasick cs_automaton_;  ///< case-sensitive patterns
  AhoCorasick ci_automaton_;  ///< nocase patterns, stored lower-cased
  std::uint64_t packets_inspected_ = 0;
  std::uint64_t alerts_ = 0;
  std::uint64_t drops_ = 0;
};

}  // namespace endbox::idps
