// IDPS matching engine: compiles a Snort rule set into Aho-Corasick
// automatons (one case-sensitive, one case-insensitive) and evaluates
// packets. A rule fires when its header constraints match AND all of
// its content patterns occur in the payload. Drop rules mark the
// packet; alert rules record an event.
//
// Scanning is two-tier: each automaton's Teddy-style literal
// prefilter (built at AhoCorasick::build() time) reports candidate
// windows — positions where some pattern's rarest fragment may start,
// rewound by maxlen-W and extended by maxlen so any real match lies
// wholly inside — and the flat automaton walks only those merged
// slices from its root. Clean payloads (the common case) never enter
// the automaton. The prefilter is sound (no false negatives), so
// verdicts, offsets, MASK bytes and once-per-flow firing are
// bit-identical to the full walk, which stays callable as the
// inspect*_reference family. Rule sets containing a content literal
// shorter than the fragment width (1-byte contents) disable the
// prefilter engine-wide and every scan takes the full walk.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "idps/aho_corasick.hpp"
#include "idps/snort_rules.hpp"
#include "net/packet.hpp"

namespace endbox::idps {

struct IdpsVerdict {
  bool matched = false;   ///< some rule fired
  bool drop = false;      ///< a drop rule fired
  std::uint32_t sid = 0;  ///< first firing rule's sid
};

/// Persistent per-flow stream inspection state (lives in the flow's
/// CTX context, lane-local): the resume states of both Aho-Corasick
/// automatons, the content-hit bits accumulated over the life of the
/// flow (sparse — hits are rare), and the rules that already fired so
/// a completed rule alerts once per flow, not once per subsequent
/// segment. Cheap when idle: two ints and two empty vectors.
struct StreamMatchState {
  std::uint32_t cs_state = 0;  ///< case-sensitive automaton resume state
  std::uint32_t ci_state = 0;  ///< nocase automaton resume state
  /// Prefilter tail carry: the last maxlen-1 stream bytes, prepended
  /// to the next chunk so a literal straddling the chunk boundary
  /// still lands inside one scanned buffer. Only the prefilter path
  /// maintains it (the reference path resumes cs_state/ci_state
  /// instead); matches ending inside the tail were already reported by
  /// the chunk that delivered them and are suppressed.
  Bytes prefilter_tail;
  bool drop_flow = false;      ///< a drop verdict fired; rest of flow dies
  std::uint64_t bytes_scanned = 0;
  /// Matches whose pattern began in an earlier segment — each one is a
  /// split-payload delivery the per-packet matcher would have missed.
  std::uint64_t cross_segment_matches = 0;
  std::uint64_t bytes_masked = 0;
  /// rule index -> content-hit bitmask, only rules with at least one hit.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> hits;
  /// Rules that already completed (fired or were header-rejected once).
  std::vector<std::uint32_t> completed;
};

/// Two-tier scanning statistics: how much traffic the prefilter
/// cleared without automaton work, how many candidate windows needed
/// confirming, and how many scans fell back to the full walk (rule
/// sets with sub-fragment-width literals).
struct PrefilterStats {
  std::uint64_t prefiltered_bytes = 0;   ///< bytes screened by tier 1
  std::uint64_t confirmed_windows = 0;   ///< candidate runs walked by tier 2
  std::uint64_t fallback_scans = 0;      ///< full walks (prefilter unusable)
};

class IdpsEngine {
 public:
  explicit IdpsEngine(std::vector<SnortRule> rules);

  /// Reusable working memory for inspect(): the per-rule content-hit
  /// bitmasks and the lower-cased payload copy. One scratch reused
  /// across a burst turns the per-packet heap traffic of inspection
  /// into capacity reuse, and the hit table resets sparsely — only the
  /// rules the previous packet touched are cleared, not all N — which
  /// is the batch path's main win for small packets.
  struct InspectScratch {
    std::vector<std::uint64_t> content_hits;
    std::vector<std::uint32_t> touched;  ///< rules with non-zero bits
    Bytes lowered;
    std::vector<CandidateRun> runs;  ///< prefilter candidate windows
    Bytes combined;                  ///< stream path: tail + chunk
  };

  /// Working memory for inspect_batch: per-stream match lists and
  /// lowered copies on top of the shared rule-evaluation scratch.
  struct BatchScratch {
    std::vector<std::vector<AcMatch>> matches;  ///< per stream
    std::vector<Bytes> lowered;                 ///< per stream (nocase scan)
    std::vector<ByteView> views;                ///< span storage for lowered
    std::vector<std::uint32_t> owner;  ///< prefilter: slice -> packet index
    InspectScratch rules;
    // inspect_stream_batch round scheduling (two chunks of one flow
    // must walk sequentially, not in the same interleave round).
    std::vector<std::uint32_t> rounds;     ///< per packet: interleave round
    std::vector<std::uint32_t> order;      ///< packet ids of the current round
    std::vector<std::uint32_t> ac_states;  ///< gathered resume states
  };

  /// Evaluates one packet; also tallies alert/drop statistics.
  IdpsVerdict inspect(const net::Packet& packet);

  /// Scratch-reusing variant: headers come from `packet`, content is
  /// scanned from `payload` (the decrypted payload when TLSDecrypt ran
  /// upstream), so callers need neither a probe copy nor fresh buffers.
  /// Two-tier: the prefilter screens the payload and only candidate
  /// windows reach the automaton; verdict-identical to
  /// inspect_reference.
  IdpsVerdict inspect(const net::Packet& packet, ByteView payload,
                      InspectScratch& scratch);

  /// The full-walk path (both automatons over every byte), kept
  /// callable as the equivalence baseline for the prefiltered inspect
  /// and for benches pricing the tier-1 skip rate.
  IdpsVerdict inspect_reference(const net::Packet& packet, ByteView payload,
                                InspectScratch& scratch);

  /// Burst variant: scans all payloads with the interleaved multi-
  /// stream Aho-Corasick walk (independent transition chains overlap in
  /// the memory system, hiding the table-walk latency a single scan is
  /// bound by), then evaluates each packet's rules exactly as
  /// inspect(). `verdicts[i]` corresponds to `packets[i]`; verdicts and
  /// statistics are identical to per-packet inspection.
  void inspect_batch(std::span<const net::Packet* const> packets,
                     std::span<const ByteView> payloads, BatchScratch& scratch,
                     IdpsVerdict* verdicts);

  /// Full-walk burst baseline (pre-prefilter inspect_batch).
  void inspect_batch_reference(std::span<const net::Packet* const> packets,
                               std::span<const ByteView> payloads,
                               BatchScratch& scratch, IdpsVerdict* verdicts);

  /// Stream-resume inspection: scans `chunk` (the flow's next run of
  /// in-order stream bytes) continuing from `state`, so content split
  /// across TCP segments matches exactly as if delivered in one
  /// segment. Multi-content rules complete across segments (hit bits
  /// persist in `state`); a rule fires once per flow, on the packet
  /// whose chunk completes it, with the same verdict/sid the
  /// single-segment per-packet path produces. When `mask` is non-empty
  /// it must alias the chunk's bytes in the packet payload: every
  /// content occurrence is overwritten with 'X' (best effort — the
  /// part of a straddling match already forwarded in an earlier
  /// segment cannot be rewritten).
  /// Two-tier stream path: the prefilter scans the flow's carried tail
  /// (last maxlen-1 stream bytes) + chunk so boundary-straddling
  /// literals are caught without resuming automaton state; matches
  /// ending inside the tail were reported by an earlier chunk and are
  /// suppressed. Verdicts, cross-segment counts and MASK bytes are
  /// identical to inspect_stream_reference.
  IdpsVerdict inspect_stream(const net::Packet& packet, ByteView chunk,
                             StreamMatchState& state, InspectScratch& scratch,
                             std::span<std::uint8_t> mask = {});

  /// Full-walk stream baseline: resumes cs_state/ci_state across
  /// chunks (the pre-prefilter inspect_stream). A flow must stay on
  /// one path for its lifetime — the two paths persist different
  /// resume state.
  IdpsVerdict inspect_stream_reference(const net::Packet& packet,
                                       ByteView chunk, StreamMatchState& state,
                                       InspectScratch& scratch,
                                       std::span<std::uint8_t> mask = {});

  /// Burst variant of inspect_stream: verdict-identical to calling
  /// inspect_stream per packet in burst order. In prefilter mode the
  /// burst runs sequentially — each chunk's scan needs the tail its
  /// same-flow predecessor produces, and clean chunks have no
  /// automaton walk left to interleave; the fallback path keeps the
  /// interleaved round-scheduled resumable walk. `masks` is either
  /// empty or one (possibly empty) span per packet.
  void inspect_stream_batch(std::span<const net::Packet* const> packets,
                            std::span<const ByteView> chunks,
                            std::span<StreamMatchState* const> states,
                            BatchScratch& scratch, IdpsVerdict* verdicts,
                            std::span<const std::span<std::uint8_t>> masks = {});

  /// Full-walk burst stream baseline (round-scheduled interleaved
  /// resumable walk; the pre-prefilter inspect_stream_batch).
  void inspect_stream_batch_reference(
      std::span<const net::Packet* const> packets,
      std::span<const ByteView> chunks,
      std::span<StreamMatchState* const> states, BatchScratch& scratch,
      IdpsVerdict* verdicts,
      std::span<const std::span<std::uint8_t>> masks = {});

  std::size_t rule_count() const { return rules_.size(); }
  std::uint64_t packets_inspected() const { return packets_inspected_; }
  std::uint64_t alerts() const { return alerts_; }
  std::uint64_t drops() const { return drops_; }
  std::size_t automaton_nodes() const {
    return cs_automaton_.node_count() + ci_automaton_.node_count();
  }
  /// True when both automatons compiled usable prefilters (every
  /// content literal is at least fragment-width bytes).
  bool prefilter_enabled() const { return prefilter_enabled_; }
  const PrefilterStats& prefilter_stats() const { return prefilter_stats_; }
  const AhoCorasick& cs_automaton() const { return cs_automaton_; }
  const AhoCorasick& ci_automaton() const { return ci_automaton_; }

 private:
  bool header_matches(const SnortRule& rule, const net::Packet& packet) const;
  /// Sparse hit-table reset: zero only the rules touched last time.
  void reset_hits(InspectScratch& scratch) const;
  /// Sets the content bit for one pattern hit (tracks touched rules).
  static void record_hit(InspectScratch& scratch, int pattern_id);
  /// First-match rule evaluation over a populated hit table; tallies
  /// alert/drop statistics.
  IdpsVerdict evaluate_hits(const net::Packet& packet,
                            const InspectScratch& scratch, bool any_hit);
  /// Stream variant: evaluates only the touched rules (sorted to keep
  /// the per-packet path's first-sid rule-index order), fires each rule
  /// at most once per flow, and records completions in `state`.
  IdpsVerdict evaluate_stream(const net::Packet& packet,
                              StreamMatchState& state, InspectScratch& scratch,
                              bool new_hit);
  /// Seeds the sparse hit table from the flow's persisted hits (call
  /// right after reset_hits).
  void load_stream_hits(const StreamMatchState& state,
                        InspectScratch& scratch) const;
  /// Writes the combined hit table back into the flow state.
  void persist_stream_hits(StreamMatchState& state,
                           const InspectScratch& scratch) const;
  std::size_t content_length(int pattern_id) const {
    return rules_[static_cast<std::size_t>(pattern_id) >> 8]
        .contents[static_cast<std::size_t>(pattern_id) & 0xff]
        .bytes.size();
  }

  std::vector<SnortRule> rules_;
  // Pattern ids encode (rule index << 8 | content index within rule).
  AhoCorasick cs_automaton_;  ///< case-sensitive patterns
  AhoCorasick ci_automaton_;  ///< nocase patterns, stored lower-cased
  bool prefilter_enabled_ = false;
  /// Stream tail carry length: max pattern length over both automatons
  /// minus one — the longest prefix of a match that can live in
  /// earlier chunks.
  std::size_t stream_tail_len_ = 0;
  PrefilterStats prefilter_stats_;
  std::uint64_t packets_inspected_ = 0;
  std::uint64_t alerts_ = 0;
  std::uint64_t drops_ = 0;
};

}  // namespace endbox::idps
