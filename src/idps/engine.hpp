// IDPS matching engine: compiles a Snort rule set into Aho-Corasick
// automatons (one case-sensitive, one case-insensitive) and evaluates
// packets. A rule fires when its header constraints match AND all of
// its content patterns occur in the payload. Drop rules mark the
// packet; alert rules record an event.
#pragma once

#include <cstdint>
#include <vector>

#include "idps/aho_corasick.hpp"
#include "idps/snort_rules.hpp"
#include "net/packet.hpp"

namespace endbox::idps {

struct IdpsVerdict {
  bool matched = false;   ///< some rule fired
  bool drop = false;      ///< a drop rule fired
  std::uint32_t sid = 0;  ///< first firing rule's sid
};

class IdpsEngine {
 public:
  explicit IdpsEngine(std::vector<SnortRule> rules);

  /// Reusable working memory for inspect(): the per-rule content-hit
  /// bitmasks and the lower-cased payload copy. One scratch reused
  /// across a burst turns the per-packet heap traffic of inspection
  /// into capacity reuse, and the hit table resets sparsely — only the
  /// rules the previous packet touched are cleared, not all N — which
  /// is the batch path's main win for small packets.
  struct InspectScratch {
    std::vector<std::uint64_t> content_hits;
    std::vector<std::uint32_t> touched;  ///< rules with non-zero bits
    Bytes lowered;
  };

  /// Working memory for inspect_batch: per-stream match lists and
  /// lowered copies on top of the shared rule-evaluation scratch.
  struct BatchScratch {
    std::vector<std::vector<AcMatch>> matches;  ///< per stream
    std::vector<Bytes> lowered;                 ///< per stream (nocase scan)
    std::vector<ByteView> views;                ///< span storage for lowered
    InspectScratch rules;
  };

  /// Evaluates one packet; also tallies alert/drop statistics.
  IdpsVerdict inspect(const net::Packet& packet);

  /// Scratch-reusing variant: headers come from `packet`, content is
  /// scanned from `payload` (the decrypted payload when TLSDecrypt ran
  /// upstream), so callers need neither a probe copy nor fresh buffers.
  IdpsVerdict inspect(const net::Packet& packet, ByteView payload,
                      InspectScratch& scratch);

  /// Burst variant: scans all payloads with the interleaved multi-
  /// stream Aho-Corasick walk (independent transition chains overlap in
  /// the memory system, hiding the table-walk latency a single scan is
  /// bound by), then evaluates each packet's rules exactly as
  /// inspect(). `verdicts[i]` corresponds to `packets[i]`; verdicts and
  /// statistics are identical to per-packet inspection.
  void inspect_batch(std::span<const net::Packet* const> packets,
                     std::span<const ByteView> payloads, BatchScratch& scratch,
                     IdpsVerdict* verdicts);

  std::size_t rule_count() const { return rules_.size(); }
  std::uint64_t packets_inspected() const { return packets_inspected_; }
  std::uint64_t alerts() const { return alerts_; }
  std::uint64_t drops() const { return drops_; }
  std::size_t automaton_nodes() const {
    return cs_automaton_.node_count() + ci_automaton_.node_count();
  }

 private:
  bool header_matches(const SnortRule& rule, const net::Packet& packet) const;
  /// Sparse hit-table reset: zero only the rules touched last time.
  void reset_hits(InspectScratch& scratch) const;
  /// Sets the content bit for one pattern hit (tracks touched rules).
  static void record_hit(InspectScratch& scratch, int pattern_id);
  /// First-match rule evaluation over a populated hit table; tallies
  /// alert/drop statistics.
  IdpsVerdict evaluate_hits(const net::Packet& packet,
                            const InspectScratch& scratch, bool any_hit);

  std::vector<SnortRule> rules_;
  // Pattern ids encode (rule index << 8 | content index within rule).
  AhoCorasick cs_automaton_;  ///< case-sensitive patterns
  AhoCorasick ci_automaton_;  ///< nocase patterns, stored lower-cased
  std::uint64_t packets_inspected_ = 0;
  std::uint64_t alerts_ = 0;
  std::uint64_t drops_ = 0;
};

}  // namespace endbox::idps
