// IDPS matching engine: compiles a Snort rule set into Aho-Corasick
// automatons (one case-sensitive, one case-insensitive) and evaluates
// packets. A rule fires when its header constraints match AND all of
// its content patterns occur in the payload. Drop rules mark the
// packet; alert rules record an event.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "idps/aho_corasick.hpp"
#include "idps/snort_rules.hpp"
#include "net/packet.hpp"

namespace endbox::idps {

struct IdpsVerdict {
  bool matched = false;   ///< some rule fired
  bool drop = false;      ///< a drop rule fired
  std::uint32_t sid = 0;  ///< first firing rule's sid
};

/// Persistent per-flow stream inspection state (lives in the flow's
/// CTX context, lane-local): the resume states of both Aho-Corasick
/// automatons, the content-hit bits accumulated over the life of the
/// flow (sparse — hits are rare), and the rules that already fired so
/// a completed rule alerts once per flow, not once per subsequent
/// segment. Cheap when idle: two ints and two empty vectors.
struct StreamMatchState {
  std::uint32_t cs_state = 0;  ///< case-sensitive automaton resume state
  std::uint32_t ci_state = 0;  ///< nocase automaton resume state
  bool drop_flow = false;      ///< a drop verdict fired; rest of flow dies
  std::uint64_t bytes_scanned = 0;
  /// Matches whose pattern began in an earlier segment — each one is a
  /// split-payload delivery the per-packet matcher would have missed.
  std::uint64_t cross_segment_matches = 0;
  std::uint64_t bytes_masked = 0;
  /// rule index -> content-hit bitmask, only rules with at least one hit.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> hits;
  /// Rules that already completed (fired or were header-rejected once).
  std::vector<std::uint32_t> completed;
};

class IdpsEngine {
 public:
  explicit IdpsEngine(std::vector<SnortRule> rules);

  /// Reusable working memory for inspect(): the per-rule content-hit
  /// bitmasks and the lower-cased payload copy. One scratch reused
  /// across a burst turns the per-packet heap traffic of inspection
  /// into capacity reuse, and the hit table resets sparsely — only the
  /// rules the previous packet touched are cleared, not all N — which
  /// is the batch path's main win for small packets.
  struct InspectScratch {
    std::vector<std::uint64_t> content_hits;
    std::vector<std::uint32_t> touched;  ///< rules with non-zero bits
    Bytes lowered;
  };

  /// Working memory for inspect_batch: per-stream match lists and
  /// lowered copies on top of the shared rule-evaluation scratch.
  struct BatchScratch {
    std::vector<std::vector<AcMatch>> matches;  ///< per stream
    std::vector<Bytes> lowered;                 ///< per stream (nocase scan)
    std::vector<ByteView> views;                ///< span storage for lowered
    InspectScratch rules;
    // inspect_stream_batch round scheduling (two chunks of one flow
    // must walk sequentially, not in the same interleave round).
    std::vector<std::uint32_t> rounds;     ///< per packet: interleave round
    std::vector<std::uint32_t> order;      ///< packet ids of the current round
    std::vector<std::uint32_t> ac_states;  ///< gathered resume states
  };

  /// Evaluates one packet; also tallies alert/drop statistics.
  IdpsVerdict inspect(const net::Packet& packet);

  /// Scratch-reusing variant: headers come from `packet`, content is
  /// scanned from `payload` (the decrypted payload when TLSDecrypt ran
  /// upstream), so callers need neither a probe copy nor fresh buffers.
  IdpsVerdict inspect(const net::Packet& packet, ByteView payload,
                      InspectScratch& scratch);

  /// Burst variant: scans all payloads with the interleaved multi-
  /// stream Aho-Corasick walk (independent transition chains overlap in
  /// the memory system, hiding the table-walk latency a single scan is
  /// bound by), then evaluates each packet's rules exactly as
  /// inspect(). `verdicts[i]` corresponds to `packets[i]`; verdicts and
  /// statistics are identical to per-packet inspection.
  void inspect_batch(std::span<const net::Packet* const> packets,
                     std::span<const ByteView> payloads, BatchScratch& scratch,
                     IdpsVerdict* verdicts);

  /// Stream-resume inspection: scans `chunk` (the flow's next run of
  /// in-order stream bytes) continuing from `state`, so content split
  /// across TCP segments matches exactly as if delivered in one
  /// segment. Multi-content rules complete across segments (hit bits
  /// persist in `state`); a rule fires once per flow, on the packet
  /// whose chunk completes it, with the same verdict/sid the
  /// single-segment per-packet path produces. When `mask` is non-empty
  /// it must alias the chunk's bytes in the packet payload: every
  /// content occurrence is overwritten with 'X' (best effort — the
  /// part of a straddling match already forwarded in an earlier
  /// segment cannot be rewritten).
  IdpsVerdict inspect_stream(const net::Packet& packet, ByteView chunk,
                             StreamMatchState& state, InspectScratch& scratch,
                             std::span<std::uint8_t> mask = {});

  /// Burst variant of inspect_stream: walks many flows' pending chunks
  /// with the interleaved resumable multi-stream walk. Chunks of the
  /// same flow within one burst (states[i] pointers equal) are chained
  /// in arrival order across interleave rounds, so verdicts are
  /// identical to calling inspect_stream per packet in burst order.
  /// `masks` is either empty or one (possibly empty) span per packet.
  void inspect_stream_batch(std::span<const net::Packet* const> packets,
                            std::span<const ByteView> chunks,
                            std::span<StreamMatchState* const> states,
                            BatchScratch& scratch, IdpsVerdict* verdicts,
                            std::span<const std::span<std::uint8_t>> masks = {});

  std::size_t rule_count() const { return rules_.size(); }
  std::uint64_t packets_inspected() const { return packets_inspected_; }
  std::uint64_t alerts() const { return alerts_; }
  std::uint64_t drops() const { return drops_; }
  std::size_t automaton_nodes() const {
    return cs_automaton_.node_count() + ci_automaton_.node_count();
  }

 private:
  bool header_matches(const SnortRule& rule, const net::Packet& packet) const;
  /// Sparse hit-table reset: zero only the rules touched last time.
  void reset_hits(InspectScratch& scratch) const;
  /// Sets the content bit for one pattern hit (tracks touched rules).
  static void record_hit(InspectScratch& scratch, int pattern_id);
  /// First-match rule evaluation over a populated hit table; tallies
  /// alert/drop statistics.
  IdpsVerdict evaluate_hits(const net::Packet& packet,
                            const InspectScratch& scratch, bool any_hit);
  /// Stream variant: evaluates only the touched rules (sorted to keep
  /// the per-packet path's first-sid rule-index order), fires each rule
  /// at most once per flow, and records completions in `state`.
  IdpsVerdict evaluate_stream(const net::Packet& packet,
                              StreamMatchState& state, InspectScratch& scratch,
                              bool new_hit);
  /// Seeds the sparse hit table from the flow's persisted hits (call
  /// right after reset_hits).
  void load_stream_hits(const StreamMatchState& state,
                        InspectScratch& scratch) const;
  /// Writes the combined hit table back into the flow state.
  void persist_stream_hits(StreamMatchState& state,
                           const InspectScratch& scratch) const;
  std::size_t content_length(int pattern_id) const {
    return rules_[static_cast<std::size_t>(pattern_id) >> 8]
        .contents[static_cast<std::size_t>(pattern_id) & 0xff]
        .bytes.size();
  }

  std::vector<SnortRule> rules_;
  // Pattern ids encode (rule index << 8 | content index within rule).
  AhoCorasick cs_automaton_;  ///< case-sensitive patterns
  AhoCorasick ci_automaton_;  ///< nocase patterns, stored lower-cased
  std::uint64_t packets_inspected_ = 0;
  std::uint64_t alerts_ = 0;
  std::uint64_t drops_ = 0;
};

}  // namespace endbox::idps
