#include "idps/engine.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace endbox::idps {

namespace {
void to_lower_into(ByteView data, Bytes& out) {
  out.assign(data.begin(), data.end());
  for (auto& b : out) b = static_cast<std::uint8_t>(std::tolower(b));
}

Bytes to_lower(ByteView data) {
  Bytes out;
  to_lower_into(data, out);
  return out;
}
}  // namespace

IdpsEngine::IdpsEngine(std::vector<SnortRule> rules) : rules_(std::move(rules)) {
  if (rules_.size() > (1u << 23))
    throw std::invalid_argument("IdpsEngine: too many rules");
  for (std::size_t r = 0; r < rules_.size(); ++r) {
    const auto& contents = rules_[r].contents;
    if (contents.size() > 255)
      throw std::invalid_argument("IdpsEngine: too many contents in rule");
    for (std::size_t c = 0; c < contents.size(); ++c) {
      int id = static_cast<int>(r << 8 | c);
      if (contents[c].nocase) {
        ci_automaton_.add_pattern(to_lower(contents[c].bytes), id);
      } else {
        cs_automaton_.add_pattern(contents[c].bytes, id);
      }
    }
  }
  cs_automaton_.build();
  // The nocase automaton's prefilter admits both cases of every
  // fragment byte so tier 1 scans the raw text; only confirm slices
  // pay for lowering.
  ci_automaton_.build(/*prefilter_case_insensitive=*/true);
  // One literal shorter than the fragment width anywhere in the rule
  // set disables the prefilter for the whole engine: a 1-byte content
  // has no fragment, and a bucket miss would silently skip it.
  prefilter_enabled_ = cs_automaton_.prefilter().usable() &&
                       ci_automaton_.prefilter().usable();
  std::size_t max_len = std::max(cs_automaton_.max_pattern_length(),
                                 ci_automaton_.max_pattern_length());
  stream_tail_len_ = max_len > 0 ? max_len - 1 : 0;
}

bool IdpsEngine::header_matches(const SnortRule& rule,
                                const net::Packet& packet) const {
  if (rule.proto && packet.proto != *rule.proto) return false;
  if (!rule.src.matches(packet.src)) return false;
  if (!rule.dst.matches(packet.dst)) return false;
  if (packet.proto != net::IpProto::Icmp) {
    if (!rule.src_port.matches(packet.src_port)) return false;
    if (!rule.dst_port.matches(packet.dst_port)) return false;
  }
  return true;
}

void IdpsEngine::reset_hits(InspectScratch& scratch) const {
  // The table is zeroed wholesale only when (re)sized; afterwards just
  // the rules the previous packet hit are cleared — content hits are
  // rare, so a warm scratch skips the O(rules) wipe entirely.
  if (scratch.content_hits.size() != rules_.size()) {
    scratch.content_hits.assign(rules_.size(), 0);
  } else {
    for (std::uint32_t rule : scratch.touched) scratch.content_hits[rule] = 0;
  }
  scratch.touched.clear();
}

void IdpsEngine::record_hit(InspectScratch& scratch, int pattern_id) {
  std::size_t rule_index = static_cast<std::size_t>(pattern_id) >> 8;
  std::size_t content_index = static_cast<std::size_t>(pattern_id) & 0xff;
  if (content_index >= 64) return;
  std::uint64_t& bits = scratch.content_hits[rule_index];
  if (bits == 0)
    scratch.touched.push_back(static_cast<std::uint32_t>(rule_index));
  bits |= 1ull << content_index;
}

IdpsVerdict IdpsEngine::evaluate_hits(const net::Packet& packet,
                                      const InspectScratch& scratch,
                                      bool any_hit) {
  IdpsVerdict verdict;
  if (!any_hit) return verdict;
  const std::vector<std::uint64_t>& content_hits = scratch.content_hits;
  for (std::size_t r = 0; r < rules_.size(); ++r) {
    const SnortRule& rule = rules_[r];
    if (rule.contents.empty()) continue;
    std::uint64_t want =
        rule.contents.size() >= 64 ? ~0ull : (1ull << rule.contents.size()) - 1;
    if ((content_hits[r] & want) != want) continue;
    if (!header_matches(rule, packet)) continue;
    if (!verdict.matched) {
      verdict.matched = true;
      verdict.sid = rule.sid;
    }
    if (rule.action == RuleAction::Drop) verdict.drop = true;
    if (rule.action == RuleAction::Alert) ++alerts_;
  }
  if (verdict.drop) ++drops_;
  return verdict;
}

IdpsVerdict IdpsEngine::inspect(const net::Packet& packet) {
  InspectScratch scratch;
  return inspect(packet, packet.payload, scratch);
}

IdpsVerdict IdpsEngine::inspect(const net::Packet& packet, ByteView payload,
                                InspectScratch& scratch) {
  if (!prefilter_enabled_) {
    ++prefilter_stats_.fallback_scans;
    return inspect_reference(packet, payload, scratch);
  }
  ++packets_inspected_;
  prefilter_stats_.prefiltered_bytes += payload.size();
  reset_hits(scratch);
  // Single-pointer capture keeps the callback inside std::function's
  // small-object buffer — no allocation per scan.
  struct RecordCtx {
    InspectScratch* scratch;
    bool any_hit = false;
  } ctx{&scratch};
  auto record = [&ctx](const AcMatch& m) {
    record_hit(*ctx.scratch, m.pattern_id);
    ctx.any_hit = true;
    return true;
  };
  // Tier 1 screens the payload; tier 2 confirms only candidate runs,
  // each walked from the root (a run contains every match it
  // witnesses whole, so no cross-run automaton state is needed). Rule
  // evaluation only consumes the hit set, so slice-relative offsets
  // need no rebasing here.
  scratch.runs.clear();
  cs_automaton_.prefilter().find_runs(payload, scratch.runs);
  prefilter_stats_.confirmed_windows += scratch.runs.size();
  for (const CandidateRun& run : scratch.runs)
    cs_automaton_.match(payload.subspan(run.begin, run.end - run.begin),
                        record);
  if (ci_automaton_.pattern_count() > 0) {
    scratch.runs.clear();
    ci_automaton_.prefilter().find_runs(payload, scratch.runs);
    prefilter_stats_.confirmed_windows += scratch.runs.size();
    for (const CandidateRun& run : scratch.runs) {
      to_lower_into(payload.subspan(run.begin, run.end - run.begin),
                    scratch.lowered);
      ci_automaton_.match(scratch.lowered, record);
    }
  }
  return evaluate_hits(packet, scratch, ctx.any_hit);
}

IdpsVerdict IdpsEngine::inspect_reference(const net::Packet& packet,
                                          ByteView payload,
                                          InspectScratch& scratch) {
  ++packets_inspected_;
  reset_hits(scratch);
  struct RecordCtx {
    InspectScratch* scratch;
    bool any_hit = false;
  } ctx{&scratch};
  auto record = [&ctx](const AcMatch& m) {
    record_hit(*ctx.scratch, m.pattern_id);
    ctx.any_hit = true;
    return true;
  };
  cs_automaton_.match(payload, record);
  if (ci_automaton_.pattern_count() > 0) {
    to_lower_into(payload, scratch.lowered);
    ci_automaton_.match(scratch.lowered, record);
  }
  return evaluate_hits(packet, scratch, ctx.any_hit);
}

void IdpsEngine::inspect_batch(std::span<const net::Packet* const> packets,
                               std::span<const ByteView> payloads,
                               BatchScratch& scratch, IdpsVerdict* verdicts) {
  std::size_t n = packets.size();
  if (!prefilter_enabled_) {
    prefilter_stats_.fallback_scans += n;
    inspect_batch_reference(packets, payloads, scratch, verdicts);
    return;
  }
  packets_inspected_ += n;
  if (scratch.matches.size() < n) scratch.matches.resize(n);
  for (std::size_t i = 0; i < n; ++i) scratch.matches[i].clear();

  // Tier 1 screens each payload sequentially (the prefilter kernel is
  // data-parallel within one buffer, not latency-bound like the
  // automaton walk); the surviving candidate slices of the whole burst
  // are then confirmed with one interleaved multi-stream walk, each
  // slice attributed back to its packet.
  struct RecordCtx {
    BatchScratch* scratch;
  } ctx{&scratch};
  auto record = [&ctx](std::size_t stream, const AcMatch& m) {
    ctx.scratch->matches[ctx.scratch->owner[stream]].push_back(m);
    return true;
  };
  scratch.views.clear();
  scratch.owner.clear();
  for (std::size_t i = 0; i < n; ++i) {
    prefilter_stats_.prefiltered_bytes += payloads[i].size();
    scratch.rules.runs.clear();
    cs_automaton_.prefilter().find_runs(payloads[i], scratch.rules.runs);
    prefilter_stats_.confirmed_windows += scratch.rules.runs.size();
    for (const CandidateRun& run : scratch.rules.runs) {
      scratch.views.push_back(
          payloads[i].subspan(run.begin, run.end - run.begin));
      scratch.owner.push_back(static_cast<std::uint32_t>(i));
    }
  }
  cs_automaton_.match_multi({scratch.views.data(), scratch.views.size()},
                            record);

  if (ci_automaton_.pattern_count() > 0) {
    scratch.views.clear();
    scratch.owner.clear();
    std::size_t slice = 0;
    for (std::size_t i = 0; i < n; ++i) {
      scratch.rules.runs.clear();
      ci_automaton_.prefilter().find_runs(payloads[i], scratch.rules.runs);
      prefilter_stats_.confirmed_windows += scratch.rules.runs.size();
      for (const CandidateRun& run : scratch.rules.runs) {
        if (scratch.lowered.size() <= slice) scratch.lowered.resize(slice + 1);
        to_lower_into(payloads[i].subspan(run.begin, run.end - run.begin),
                      scratch.lowered[slice]);
        scratch.views.push_back(scratch.lowered[slice]);
        scratch.owner.push_back(static_cast<std::uint32_t>(i));
        ++slice;
      }
    }
    ci_automaton_.match_multi({scratch.views.data(), scratch.views.size()},
                              record);
  }

  for (std::size_t i = 0; i < n; ++i) {
    reset_hits(scratch.rules);
    for (const AcMatch& m : scratch.matches[i])
      record_hit(scratch.rules, m.pattern_id);
    verdicts[i] =
        evaluate_hits(*packets[i], scratch.rules, !scratch.matches[i].empty());
  }
}

void IdpsEngine::inspect_batch_reference(
    std::span<const net::Packet* const> packets,
    std::span<const ByteView> payloads, BatchScratch& scratch,
    IdpsVerdict* verdicts) {
  std::size_t n = packets.size();
  packets_inspected_ += n;
  if (scratch.matches.size() < n) scratch.matches.resize(n);
  for (std::size_t i = 0; i < n; ++i) scratch.matches[i].clear();

  struct RecordCtx {
    BatchScratch* scratch;
  } ctx{&scratch};
  auto record = [&ctx](std::size_t stream, const AcMatch& m) {
    ctx.scratch->matches[stream].push_back(m);
    return true;
  };
  cs_automaton_.match_multi(payloads, record);
  if (ci_automaton_.pattern_count() > 0) {
    if (scratch.lowered.size() < n) scratch.lowered.resize(n);
    if (scratch.views.size() < n) scratch.views.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      to_lower_into(payloads[i], scratch.lowered[i]);
      scratch.views[i] = scratch.lowered[i];
    }
    ci_automaton_.match_multi({scratch.views.data(), n}, record);
  }

  // Rule evaluation is per packet and cheap (content hits are rare);
  // replaying the recorded matches into the sparse hit table makes the
  // verdicts bit-identical to per-packet inspection.
  for (std::size_t i = 0; i < n; ++i) {
    reset_hits(scratch.rules);
    for (const AcMatch& m : scratch.matches[i])
      record_hit(scratch.rules, m.pattern_id);
    verdicts[i] =
        evaluate_hits(*packets[i], scratch.rules, !scratch.matches[i].empty());
  }
}

void IdpsEngine::load_stream_hits(const StreamMatchState& state,
                                  InspectScratch& scratch) const {
  for (const auto& [rule, bits] : state.hits) {
    scratch.content_hits[rule] = bits;
    scratch.touched.push_back(rule);
  }
}

void IdpsEngine::persist_stream_hits(StreamMatchState& state,
                                     const InspectScratch& scratch) const {
  state.hits.clear();
  for (std::uint32_t rule : scratch.touched) {
    if (std::uint64_t bits = scratch.content_hits[rule]; bits != 0)
      state.hits.emplace_back(rule, bits);
  }
}

IdpsVerdict IdpsEngine::evaluate_stream(const net::Packet& packet,
                                        StreamMatchState& state,
                                        InspectScratch& scratch, bool new_hit) {
  IdpsVerdict verdict;
  // A rule can only newly complete when this chunk produced a hit.
  if (!new_hit) return verdict;
  // Ascending rule-index order preserves the per-packet path's
  // first-sid determinism (evaluate_hits walks all rules in order;
  // untouched rules cannot match, so sorted-touched is equivalent).
  std::sort(scratch.touched.begin(), scratch.touched.end());
  for (std::uint32_t r : scratch.touched) {
    const SnortRule& rule = rules_[r];
    if (rule.contents.empty()) continue;
    std::uint64_t want =
        rule.contents.size() >= 64 ? ~0ull : (1ull << rule.contents.size()) - 1;
    if ((scratch.content_hits[r] & want) != want) continue;
    if (std::find(state.completed.begin(), state.completed.end(), r) !=
        state.completed.end())
      continue;
    // Record completion even when the header check fails: header
    // constraints are flow-constant, so the rule can never fire later
    // in this flow and need not be re-evaluated per segment.
    state.completed.push_back(r);
    if (!header_matches(rule, packet)) continue;
    if (!verdict.matched) {
      verdict.matched = true;
      verdict.sid = rule.sid;
    }
    if (rule.action == RuleAction::Drop) verdict.drop = true;
    if (rule.action == RuleAction::Alert) ++alerts_;
  }
  if (verdict.drop) ++drops_;
  // Flow-kill policy (state.drop_flow) belongs to the caller: the
  // element also kills flows on DROP-mode alert matches, and owns the
  // once-per-flow kill accounting.
  return verdict;
}

IdpsVerdict IdpsEngine::inspect_stream(const net::Packet& packet, ByteView chunk,
                                       StreamMatchState& state,
                                       InspectScratch& scratch,
                                       std::span<std::uint8_t> mask) {
  if (!prefilter_enabled_) {
    ++prefilter_stats_.fallback_scans;
    return inspect_stream_reference(packet, chunk, state, scratch, mask);
  }
  ++packets_inspected_;
  prefilter_stats_.prefiltered_bytes += chunk.size();
  reset_hits(scratch);
  load_stream_hits(state, scratch);

  // Tail carry: scanning tail+chunk guarantees any match ending in
  // this chunk — its length is at most maxlen, so it starts no more
  // than maxlen-1 bytes before the chunk — lies wholly inside the
  // combined buffer, boundary-straddling literals included. Matches
  // ending inside the tail (combined end <= tail_len) were reported by
  // the chunk that delivered those bytes and are suppressed.
  const std::size_t tail_len = state.prefilter_tail.size();
  scratch.combined.assign(state.prefilter_tail.begin(),
                          state.prefilter_tail.end());
  scratch.combined.insert(scratch.combined.end(), chunk.begin(), chunk.end());
  ByteView combined = scratch.combined;

  struct RecordCtx {
    IdpsEngine* self;
    InspectScratch* scratch;
    StreamMatchState* state;
    std::uint8_t* mask_data;
    std::size_t mask_size;
    std::size_t tail_len;
    std::size_t bias = 0;  ///< current run's offset within `combined`
    bool new_hit = false;
  } ctx{this, &scratch, &state, mask.data(), mask.size(), tail_len};
  auto record = [&ctx](const AcMatch& m) {
    std::size_t combined_end = m.end_offset + ctx.bias;
    if (combined_end <= ctx.tail_len) return true;  // earlier chunk's match
    std::size_t end = combined_end - ctx.tail_len;  // chunk-relative
    record_hit(*ctx.scratch, m.pattern_id);
    ctx.new_hit = true;
    std::size_t plen = ctx.self->content_length(m.pattern_id);
    // An end offset inside the pattern means the match began in an
    // earlier segment — the split delivery per-packet scanning misses.
    if (end < plen) ++ctx.state->cross_segment_matches;
    if (ctx.mask_size != 0) {
      std::size_t start = end > plen ? end - plen : 0;
      for (std::size_t j = start; j < end; ++j) ctx.mask_data[j] = 'X';
      ctx.state->bytes_masked += end - start;
    }
    return true;
  };
  scratch.runs.clear();
  cs_automaton_.prefilter().find_runs(combined, scratch.runs);
  prefilter_stats_.confirmed_windows += scratch.runs.size();
  for (const CandidateRun& run : scratch.runs) {
    ctx.bias = run.begin;
    cs_automaton_.match(combined.subspan(run.begin, run.end - run.begin),
                        record);
  }
  if (ci_automaton_.pattern_count() > 0) {
    scratch.runs.clear();
    ci_automaton_.prefilter().find_runs(combined, scratch.runs);
    prefilter_stats_.confirmed_windows += scratch.runs.size();
    for (const CandidateRun& run : scratch.runs) {
      ctx.bias = run.begin;
      to_lower_into(combined.subspan(run.begin, run.end - run.begin),
                    scratch.lowered);
      ci_automaton_.match(scratch.lowered, record);
    }
  }
  state.bytes_scanned += chunk.size();
  std::size_t keep = std::min(scratch.combined.size(), stream_tail_len_);
  state.prefilter_tail.assign(scratch.combined.end() -
                                  static_cast<std::ptrdiff_t>(keep),
                              scratch.combined.end());

  IdpsVerdict verdict = evaluate_stream(packet, state, scratch, ctx.new_hit);
  persist_stream_hits(state, scratch);
  return verdict;
}

IdpsVerdict IdpsEngine::inspect_stream_reference(const net::Packet& packet,
                                                 ByteView chunk,
                                                 StreamMatchState& state,
                                                 InspectScratch& scratch,
                                                 std::span<std::uint8_t> mask) {
  ++packets_inspected_;
  reset_hits(scratch);
  load_stream_hits(state, scratch);

  bool run_ci = ci_automaton_.pattern_count() > 0;
  // Lower before any masking mutates the payload, so the nocase scan
  // sees the same bytes the case-sensitive scan saw (the per-packet
  // path scans both automatons over one unmodified input).
  if (run_ci) to_lower_into(chunk, scratch.lowered);

  // Single-pointer capture keeps the callback inside std::function's
  // small-object buffer — no allocation per scan.
  struct RecordCtx {
    IdpsEngine* self;
    InspectScratch* scratch;
    StreamMatchState* state;
    std::uint8_t* mask_data;
    std::size_t mask_size;
    bool new_hit = false;
  } ctx{this, &scratch, &state, mask.data(), mask.size()};
  auto record = [&ctx](const AcMatch& m) {
    record_hit(*ctx.scratch, m.pattern_id);
    ctx.new_hit = true;
    std::size_t plen = ctx.self->content_length(m.pattern_id);
    // An end offset inside the pattern means the match began in an
    // earlier segment — the split delivery per-packet scanning misses.
    if (m.end_offset < plen) ++ctx.state->cross_segment_matches;
    if (ctx.mask_size != 0) {
      std::size_t end = m.end_offset;
      std::size_t start = end > plen ? end - plen : 0;
      for (std::size_t j = start; j < end; ++j) ctx.mask_data[j] = 'X';
      ctx.state->bytes_masked += end - start;
    }
    return true;
  };
  cs_automaton_.match_resume(chunk, &state.cs_state, record);
  if (run_ci) ci_automaton_.match_resume(scratch.lowered, &state.ci_state, record);
  state.bytes_scanned += chunk.size();

  IdpsVerdict verdict = evaluate_stream(packet, state, scratch, ctx.new_hit);
  persist_stream_hits(state, scratch);
  return verdict;
}

void IdpsEngine::inspect_stream_batch(
    std::span<const net::Packet* const> packets, std::span<const ByteView> chunks,
    std::span<StreamMatchState* const> states, BatchScratch& scratch,
    IdpsVerdict* verdicts, std::span<const std::span<std::uint8_t>> masks) {
  if (!prefilter_enabled_) {
    prefilter_stats_.fallback_scans += packets.size();
    inspect_stream_batch_reference(packets, chunks, states, scratch, verdicts,
                                   masks);
    return;
  }
  // Prefilter mode runs the burst sequentially in arrival order: each
  // chunk's combined buffer needs the tail its same-flow predecessor
  // leaves behind, and clean chunks (the common case) do no automaton
  // work, so there is no transition-load latency left for the
  // interleaved walk to hide. Verdicts trivially equal per-packet
  // inspect_stream in burst order.
  for (std::size_t i = 0; i < packets.size(); ++i)
    verdicts[i] = inspect_stream(*packets[i], chunks[i], *states[i],
                                 scratch.rules,
                                 masks.empty() ? std::span<std::uint8_t>{}
                                               : masks[i]);
}

void IdpsEngine::inspect_stream_batch_reference(
    std::span<const net::Packet* const> packets, std::span<const ByteView> chunks,
    std::span<StreamMatchState* const> states, BatchScratch& scratch,
    IdpsVerdict* verdicts, std::span<const std::span<std::uint8_t>> masks) {
  std::size_t n = packets.size();
  packets_inspected_ += n;
  if (scratch.matches.size() < n) scratch.matches.resize(n);
  for (std::size_t i = 0; i < n; ++i) scratch.matches[i].clear();

  bool run_ci = ci_automaton_.pattern_count() > 0;
  if (run_ci) {
    // All lowered copies up front, before masking mutates any payload.
    if (scratch.lowered.size() < n) scratch.lowered.resize(n);
    for (std::size_t i = 0; i < n; ++i)
      to_lower_into(chunks[i], scratch.lowered[i]);
  }

  // Two chunks of the same flow must not walk in the same interleave
  // round — the second continues from the state the first produces. So
  // packets are grouped into rounds: round k holds every flow's
  // (k+1)-th chunk of the burst; within a round all streams are
  // distinct and the 16-lane resumable walk applies. Bursts are small
  // (<= 64), so the quadratic grouping scan is noise.
  if (scratch.rounds.size() < n) scratch.rounds.resize(n);
  std::uint32_t max_round = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t r = 0;
    for (std::size_t j = 0; j < i; ++j)
      if (states[j] == states[i]) ++r;
    scratch.rounds[i] = r;
    max_round = std::max(max_round, r);
  }

  struct RecordCtx {
    IdpsEngine* self;
    BatchScratch* scratch;
    StreamMatchState* const* states;
    const std::span<std::uint8_t>* masks;
  } ctx{this, &scratch, states.data(), masks.empty() ? nullptr : masks.data()};
  auto record = [&ctx](std::size_t stream, const AcMatch& m) {
    std::size_t i = ctx.scratch->order[stream];
    ctx.scratch->matches[i].push_back(m);
    std::size_t plen = ctx.self->content_length(m.pattern_id);
    StreamMatchState& st = *ctx.states[i];
    if (m.end_offset < plen) ++st.cross_segment_matches;
    if (ctx.masks != nullptr && !ctx.masks[i].empty()) {
      std::span<std::uint8_t> mask = ctx.masks[i];
      std::size_t end = m.end_offset;
      std::size_t start = end > plen ? end - plen : 0;
      for (std::size_t j = start; j < end; ++j) mask[j] = 'X';
      st.bytes_masked += end - start;
    }
    return true;
  };

  for (std::uint32_t round = 0; round <= max_round; ++round) {
    scratch.order.clear();
    for (std::size_t i = 0; i < n; ++i)
      if (scratch.rounds[i] == round)
        scratch.order.push_back(static_cast<std::uint32_t>(i));
    std::size_t m = scratch.order.size();
    if (scratch.views.size() < m) scratch.views.resize(m);
    if (scratch.ac_states.size() < m) scratch.ac_states.resize(m);

    for (std::size_t k = 0; k < m; ++k) {
      scratch.views[k] = chunks[scratch.order[k]];
      scratch.ac_states[k] = states[scratch.order[k]]->cs_state;
    }
    cs_automaton_.match_multi_resume({scratch.views.data(), m},
                                     scratch.ac_states.data(), record);
    for (std::size_t k = 0; k < m; ++k)
      states[scratch.order[k]]->cs_state = scratch.ac_states[k];

    if (run_ci) {
      for (std::size_t k = 0; k < m; ++k) {
        scratch.views[k] = scratch.lowered[scratch.order[k]];
        scratch.ac_states[k] = states[scratch.order[k]]->ci_state;
      }
      ci_automaton_.match_multi_resume({scratch.views.data(), m},
                                       scratch.ac_states.data(), record);
      for (std::size_t k = 0; k < m; ++k)
        states[scratch.order[k]]->ci_state = scratch.ac_states[k];
    }
  }

  // Evaluation replays per packet in burst order, so persisted hits
  // from an earlier same-flow packet are visible to the later one —
  // verdicts equal sequential inspect_stream calls.
  for (std::size_t i = 0; i < n; ++i) {
    StreamMatchState& st = *states[i];
    st.bytes_scanned += chunks[i].size();
    reset_hits(scratch.rules);
    load_stream_hits(st, scratch.rules);
    for (const AcMatch& m : scratch.matches[i])
      record_hit(scratch.rules, m.pattern_id);
    verdicts[i] = evaluate_stream(*packets[i], st, scratch.rules,
                                  !scratch.matches[i].empty());
    persist_stream_hits(st, scratch.rules);
  }
}

}  // namespace endbox::idps
