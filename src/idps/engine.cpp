#include "idps/engine.hpp"

#include <cctype>
#include <stdexcept>

namespace endbox::idps {

namespace {
Bytes to_lower(ByteView data) {
  Bytes out(data.begin(), data.end());
  for (auto& b : out) b = static_cast<std::uint8_t>(std::tolower(b));
  return out;
}
}  // namespace

IdpsEngine::IdpsEngine(std::vector<SnortRule> rules) : rules_(std::move(rules)) {
  if (rules_.size() > (1u << 23))
    throw std::invalid_argument("IdpsEngine: too many rules");
  for (std::size_t r = 0; r < rules_.size(); ++r) {
    const auto& contents = rules_[r].contents;
    if (contents.size() > 255)
      throw std::invalid_argument("IdpsEngine: too many contents in rule");
    for (std::size_t c = 0; c < contents.size(); ++c) {
      int id = static_cast<int>(r << 8 | c);
      if (contents[c].nocase) {
        ci_automaton_.add_pattern(to_lower(contents[c].bytes), id);
      } else {
        cs_automaton_.add_pattern(contents[c].bytes, id);
      }
    }
  }
  cs_automaton_.build();
  ci_automaton_.build();
}

bool IdpsEngine::header_matches(const SnortRule& rule,
                                const net::Packet& packet) const {
  if (rule.proto && packet.proto != *rule.proto) return false;
  if (!rule.src.matches(packet.src)) return false;
  if (!rule.dst.matches(packet.dst)) return false;
  if (packet.proto != net::IpProto::Icmp) {
    if (!rule.src_port.matches(packet.src_port)) return false;
    if (!rule.dst_port.matches(packet.dst_port)) return false;
  }
  return true;
}

IdpsVerdict IdpsEngine::inspect(const net::Packet& packet) {
  ++packets_inspected_;

  // Per-rule bitmask of matched content indices; sized lazily to the
  // rules that actually had content hits.
  std::vector<std::uint64_t> content_hits(rules_.size(), 0);
  bool any_hit = false;
  auto record = [&](const AcMatch& m) {
    std::size_t rule_index = static_cast<std::size_t>(m.pattern_id) >> 8;
    std::size_t content_index = static_cast<std::size_t>(m.pattern_id) & 0xff;
    if (content_index < 64) content_hits[rule_index] |= 1ull << content_index;
    any_hit = true;
    return true;
  };
  cs_automaton_.match(packet.payload, record);
  if (ci_automaton_.pattern_count() > 0)
    ci_automaton_.match(to_lower(packet.payload), record);

  IdpsVerdict verdict;
  if (!any_hit) return verdict;

  for (std::size_t r = 0; r < rules_.size(); ++r) {
    const SnortRule& rule = rules_[r];
    if (rule.contents.empty()) continue;
    std::uint64_t want =
        rule.contents.size() >= 64 ? ~0ull : (1ull << rule.contents.size()) - 1;
    if ((content_hits[r] & want) != want) continue;
    if (!header_matches(rule, packet)) continue;
    if (!verdict.matched) {
      verdict.matched = true;
      verdict.sid = rule.sid;
    }
    if (rule.action == RuleAction::Drop) verdict.drop = true;
    if (rule.action == RuleAction::Alert) ++alerts_;
  }
  if (verdict.drop) ++drops_;
  return verdict;
}

}  // namespace endbox::idps
