#include "idps/engine.hpp"

#include <cctype>
#include <stdexcept>

namespace endbox::idps {

namespace {
void to_lower_into(ByteView data, Bytes& out) {
  out.assign(data.begin(), data.end());
  for (auto& b : out) b = static_cast<std::uint8_t>(std::tolower(b));
}

Bytes to_lower(ByteView data) {
  Bytes out;
  to_lower_into(data, out);
  return out;
}
}  // namespace

IdpsEngine::IdpsEngine(std::vector<SnortRule> rules) : rules_(std::move(rules)) {
  if (rules_.size() > (1u << 23))
    throw std::invalid_argument("IdpsEngine: too many rules");
  for (std::size_t r = 0; r < rules_.size(); ++r) {
    const auto& contents = rules_[r].contents;
    if (contents.size() > 255)
      throw std::invalid_argument("IdpsEngine: too many contents in rule");
    for (std::size_t c = 0; c < contents.size(); ++c) {
      int id = static_cast<int>(r << 8 | c);
      if (contents[c].nocase) {
        ci_automaton_.add_pattern(to_lower(contents[c].bytes), id);
      } else {
        cs_automaton_.add_pattern(contents[c].bytes, id);
      }
    }
  }
  cs_automaton_.build();
  ci_automaton_.build();
}

bool IdpsEngine::header_matches(const SnortRule& rule,
                                const net::Packet& packet) const {
  if (rule.proto && packet.proto != *rule.proto) return false;
  if (!rule.src.matches(packet.src)) return false;
  if (!rule.dst.matches(packet.dst)) return false;
  if (packet.proto != net::IpProto::Icmp) {
    if (!rule.src_port.matches(packet.src_port)) return false;
    if (!rule.dst_port.matches(packet.dst_port)) return false;
  }
  return true;
}

void IdpsEngine::reset_hits(InspectScratch& scratch) const {
  // The table is zeroed wholesale only when (re)sized; afterwards just
  // the rules the previous packet hit are cleared — content hits are
  // rare, so a warm scratch skips the O(rules) wipe entirely.
  if (scratch.content_hits.size() != rules_.size()) {
    scratch.content_hits.assign(rules_.size(), 0);
  } else {
    for (std::uint32_t rule : scratch.touched) scratch.content_hits[rule] = 0;
  }
  scratch.touched.clear();
}

void IdpsEngine::record_hit(InspectScratch& scratch, int pattern_id) {
  std::size_t rule_index = static_cast<std::size_t>(pattern_id) >> 8;
  std::size_t content_index = static_cast<std::size_t>(pattern_id) & 0xff;
  if (content_index >= 64) return;
  std::uint64_t& bits = scratch.content_hits[rule_index];
  if (bits == 0)
    scratch.touched.push_back(static_cast<std::uint32_t>(rule_index));
  bits |= 1ull << content_index;
}

IdpsVerdict IdpsEngine::evaluate_hits(const net::Packet& packet,
                                      const InspectScratch& scratch,
                                      bool any_hit) {
  IdpsVerdict verdict;
  if (!any_hit) return verdict;
  const std::vector<std::uint64_t>& content_hits = scratch.content_hits;
  for (std::size_t r = 0; r < rules_.size(); ++r) {
    const SnortRule& rule = rules_[r];
    if (rule.contents.empty()) continue;
    std::uint64_t want =
        rule.contents.size() >= 64 ? ~0ull : (1ull << rule.contents.size()) - 1;
    if ((content_hits[r] & want) != want) continue;
    if (!header_matches(rule, packet)) continue;
    if (!verdict.matched) {
      verdict.matched = true;
      verdict.sid = rule.sid;
    }
    if (rule.action == RuleAction::Drop) verdict.drop = true;
    if (rule.action == RuleAction::Alert) ++alerts_;
  }
  if (verdict.drop) ++drops_;
  return verdict;
}

IdpsVerdict IdpsEngine::inspect(const net::Packet& packet) {
  InspectScratch scratch;
  return inspect(packet, packet.payload, scratch);
}

IdpsVerdict IdpsEngine::inspect(const net::Packet& packet, ByteView payload,
                                InspectScratch& scratch) {
  ++packets_inspected_;
  reset_hits(scratch);
  // Single-pointer capture keeps the callback inside std::function's
  // small-object buffer — no allocation per scan.
  struct RecordCtx {
    InspectScratch* scratch;
    bool any_hit = false;
  } ctx{&scratch};
  auto record = [&ctx](const AcMatch& m) {
    record_hit(*ctx.scratch, m.pattern_id);
    ctx.any_hit = true;
    return true;
  };
  cs_automaton_.match(payload, record);
  if (ci_automaton_.pattern_count() > 0) {
    to_lower_into(payload, scratch.lowered);
    ci_automaton_.match(scratch.lowered, record);
  }
  return evaluate_hits(packet, scratch, ctx.any_hit);
}

void IdpsEngine::inspect_batch(std::span<const net::Packet* const> packets,
                               std::span<const ByteView> payloads,
                               BatchScratch& scratch, IdpsVerdict* verdicts) {
  std::size_t n = packets.size();
  packets_inspected_ += n;
  if (scratch.matches.size() < n) scratch.matches.resize(n);
  for (std::size_t i = 0; i < n; ++i) scratch.matches[i].clear();

  struct RecordCtx {
    BatchScratch* scratch;
  } ctx{&scratch};
  auto record = [&ctx](std::size_t stream, const AcMatch& m) {
    ctx.scratch->matches[stream].push_back(m);
    return true;
  };
  cs_automaton_.match_multi(payloads, record);
  if (ci_automaton_.pattern_count() > 0) {
    if (scratch.lowered.size() < n) scratch.lowered.resize(n);
    if (scratch.views.size() < n) scratch.views.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      to_lower_into(payloads[i], scratch.lowered[i]);
      scratch.views[i] = scratch.lowered[i];
    }
    ci_automaton_.match_multi({scratch.views.data(), n}, record);
  }

  // Rule evaluation is per packet and cheap (content hits are rare);
  // replaying the recorded matches into the sparse hit table makes the
  // verdicts bit-identical to per-packet inspection.
  for (std::size_t i = 0; i < n; ++i) {
    reset_hits(scratch.rules);
    for (const AcMatch& m : scratch.matches[i])
      record_hit(scratch.rules, m.pattern_id);
    verdicts[i] =
        evaluate_hits(*packets[i], scratch.rules, !scratch.matches[i].empty());
  }
}

}  // namespace endbox::idps
