// Parser for the Snort rule subset EndBox's IDSMatcher supports.
//
// Supported rule shape (a practical subset of Snort 2.x syntax):
//
//   <action> <proto> <src_ip> <src_port> -> <dst_ip> <dst_port>
//       (msg:"..."; content:"..."; [nocase;] [content:"...";] sid:N;)
//
//   action  := alert | drop | pass
//   proto   := tcp | udp | icmp | ip
//   ip      := any | A.B.C.D[/LEN] | $HOME_NET | $EXTERNAL_NET
//   port    := any | N | $HTTP_PORTS
//
// Content strings support Snort's |AA BB| hex-byte escapes. Variables
// resolve against a small built-in table ($HOME_NET -> 10.0.0.0/8 etc.)
// matching the evaluation set-up. A synthetic generator stands in for
// the Snort community rule set (377-rule subset, section V-B).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "net/ip.hpp"

namespace endbox::idps {

enum class RuleAction { Alert, Drop, Pass };

struct ContentPattern {
  Bytes bytes;
  bool nocase = false;
};

struct AddressSpec {
  bool any = true;
  net::Ipv4 addr;
  unsigned prefix = 32;
  bool negated = false;

  bool matches(net::Ipv4 ip) const {
    if (any) return true;
    bool in = ip.in_subnet(addr, prefix);
    return negated ? !in : in;
  }
};

struct PortSpec {
  bool any = true;
  std::uint16_t port = 0;

  bool matches(std::uint16_t p) const { return any || p == port; }
};

struct SnortRule {
  RuleAction action = RuleAction::Alert;
  std::optional<net::IpProto> proto;  ///< nullopt = "ip" (any protocol)
  AddressSpec src, dst;
  PortSpec src_port, dst_port;
  std::string msg;
  std::vector<ContentPattern> contents;
  std::uint32_t sid = 0;
};

/// Parses a single rule line.
Result<SnortRule> parse_snort_rule(const std::string& line);

/// Parses a rule file: one rule per line; '#' comments and blank lines
/// are skipped. Fails on the first malformed rule, reporting its line.
Result<std::vector<SnortRule>> parse_snort_ruleset(const std::string& text);

/// Deterministically generates a community-ruleset-like set of `count`
/// rules whose content strings are drawn from realistic exploit tokens;
/// none of them match benign random payloads (the evaluation uses a
/// 377-rule subset that matches no generated traffic).
std::vector<SnortRule> generate_community_ruleset(std::size_t count, Rng& rng);

/// Renders a rule back to Snort syntax (for config files and tests).
std::string format_snort_rule(const SnortRule& rule);

}  // namespace endbox::idps
