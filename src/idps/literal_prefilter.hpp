// Teddy-style shuffled-literal pre-filter (Hyperscan's "Teddy", also
// the rust aho-corasick packed searcher): the first tier of the
// two-tier scanning engine. Each pattern contributes its rarest
// W-byte fragment (W = min(4, shortest pattern length)); fragments are
// grouped into 8 buckets and compiled into per-position nibble tables,
// so one pshufb pair per position turns 16 (SSSE3) or 32 (AVX2) input
// bytes into per-byte bucket bitmaps whose W-way AND is non-zero
// exactly where some bucket's fragment may start. Candidate positions
// are widened into confirmation windows — rewound by maxlen-W and
// extended by maxlen so any full match whose fragment starts there
// lies wholly inside — and overlapping windows merge into runs the
// confirming automaton walks from its root. Clean payloads (no
// candidates) skip the automaton entirely.
//
// The nibble test over-approximates (a byte matches position j when
// its low nibble appears in some bucket fragment's j-th byte AND its
// high nibble does — possibly from different fragments), so candidates
// are a superset of true fragment occurrences: false positives cost a
// short confirm walk, false negatives cannot happen. A portable SWAR
// kernel (per-byte 32-bit table holding all W position masks, one
// shift/or/and per byte) is selected at runtime via cpuid — or pinned
// with ENDBOX_FORCE_SCALAR — so tests and sanitizer CI are
// deterministic without AVX2.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bytes.hpp"
#include "common/cpu_features.hpp"

namespace endbox::idps {

/// Half-open byte range of a scanned text that may contain a match;
/// the confirming automaton walks only these slices.
struct CandidateRun {
  std::uint32_t begin;
  std::uint32_t end;

  bool operator==(const CandidateRun&) const = default;
};

class LiteralPrefilter {
 public:
  using Kernel = common::SimdLevel;

  /// Compiles the prefilter from the complete pattern set of one
  /// automaton. When `case_insensitive` is set the patterns must
  /// already be lower-cased (the nocase automaton stores them that
  /// way) and the masks additionally admit the upper-case form of
  /// every alphabetic fragment byte, so the filter scans the RAW text
  /// — only confirm slices pay for lowering. Any pattern shorter than
  /// 2 bytes makes the filter unusable (a 1-byte literal has no
  /// fragment; the engine must fall back to the full walk). An empty
  /// pattern set is usable and reports no candidates.
  void build(std::span<const ByteView> patterns, bool case_insensitive);

  /// False when some pattern is too short for a fragment; the caller
  /// must then scan everything with the full automaton walk.
  bool usable() const { return usable_; }
  /// Fragment width W in [2, 4]; 0 for an empty pattern set.
  std::size_t fragment_width() const { return width_; }
  std::size_t max_pattern_length() const { return max_len_; }

  Kernel kernel() const { return kernel_; }
  /// Pins the scan kernel (tests/benches); caller must not force a
  /// level the hardware lacks.
  void force_kernel(Kernel kernel) { kernel_ = kernel; }

  /// Scans `text` and appends the merged candidate runs (ascending,
  /// disjoint, clamped to the text). Returns the raw candidate count
  /// before widening/merging. Every occurrence of every pattern lies
  /// wholly inside exactly one appended run.
  std::size_t find_runs(ByteView text, std::vector<CandidateRun>& runs) const;

 private:
  /// Widens a candidate fragment-start into a window and merges it
  /// into `runs` (candidates arrive in ascending order).
  void emit(std::size_t start, std::size_t text_len,
            std::vector<CandidateRun>& runs) const;
  /// Registers byte `b` of fragment position `j` for `bucket`.
  void admit_byte(std::size_t j, std::uint8_t b, unsigned bucket);

  std::size_t scan_scalar(const std::uint8_t* data, std::size_t len,
                          std::size_t from, std::size_t emit_from,
                          std::vector<CandidateRun>& runs) const;
#if defined(__x86_64__) || defined(__i386__)
  std::size_t scan_ssse3(const std::uint8_t* data, std::size_t len,
                         std::vector<CandidateRun>& runs) const;
  std::size_t scan_avx2(const std::uint8_t* data, std::size_t len,
                        std::vector<CandidateRun>& runs) const;
#endif

  bool usable_ = false;
  bool empty_ = true;
  std::size_t width_ = 0;    ///< W: fragment bytes per pattern
  std::size_t max_len_ = 0;  ///< longest pattern (window extent)
  Kernel kernel_ = Kernel::Scalar;
  // Per-position nibble tables: lo_[j][n] (hi_[j][n]) is the bitmap of
  // buckets owning a fragment whose j-th byte has low (high) nibble n.
  alignas(16) std::uint8_t lo_[4][16] = {};
  alignas(16) std::uint8_t hi_[4][16] = {};
  // SWAR fallback: byte j of tbl32_[b] is lo_[j][b&15] & hi_[j][b>>4]
  // (zero for j >= W), so the W-position AND pipelines through one
  // 32-bit shift/or/and per input byte.
  std::uint32_t tbl32_[256] = {};
};

}  // namespace endbox::idps
