#include "idps/snort_rules.hpp"

#include <cctype>
#include <sstream>

namespace endbox::idps {

namespace {

/// Built-in variable table mirroring the evaluation network layout.
struct Variable {
  std::string_view name;
  std::string_view value;
};
constexpr Variable kVariables[] = {
    {"$HOME_NET", "10.0.0.0/8"},
    {"$EXTERNAL_NET", "any"},
    {"$HTTP_PORTS", "80"},
    {"$SSH_PORTS", "22"},
};

std::string resolve_variable(const std::string& token) {
  for (const auto& v : kVariables)
    if (token == v.name) return std::string(v.value);
  return token;
}

Result<AddressSpec> parse_address(std::string token) {
  AddressSpec spec;
  if (!token.empty() && token[0] == '!') {
    spec.negated = true;
    token = token.substr(1);
  }
  token = resolve_variable(token);
  if (token == "any") {
    spec.any = true;
    if (spec.negated) return err("'!any' matches nothing");
    return spec;
  }
  spec.any = false;
  std::string addr_text = token;
  if (auto slash = token.find('/'); slash != std::string::npos) {
    addr_text = token.substr(0, slash);
    try {
      int prefix = std::stoi(token.substr(slash + 1));
      if (prefix < 0 || prefix > 32) return err("bad prefix in '" + token + "'");
      spec.prefix = static_cast<unsigned>(prefix);
    } catch (...) {
      return err("bad prefix in '" + token + "'");
    }
  }
  auto addr = net::Ipv4::parse(addr_text);
  if (!addr) return err("bad address '" + addr_text + "'");
  spec.addr = *addr;
  return spec;
}

Result<PortSpec> parse_port(std::string token) {
  PortSpec spec;
  token = resolve_variable(token);
  if (token == "any") return spec;
  try {
    int port = std::stoi(token);
    if (port < 0 || port > 65535) return err("port out of range '" + token + "'");
    spec.any = false;
    spec.port = static_cast<std::uint16_t>(port);
  } catch (...) {
    return err("bad port '" + token + "'");
  }
  return spec;
}

/// Decodes a Snort content string: plain characters plus |AA BB| hex runs.
Result<Bytes> decode_content(const std::string& text) {
  Bytes out;
  bool in_hex = false;
  std::string hex_run;
  for (char c : text) {
    if (c == '|') {
      if (in_hex) {
        std::string compact;
        for (char h : hex_run)
          if (!std::isspace(static_cast<unsigned char>(h))) compact.push_back(h);
        auto bytes = from_hex(compact);
        if (!bytes) return err("bad hex escape |" + hex_run + "|");
        append(out, *bytes);
        hex_run.clear();
      }
      in_hex = !in_hex;
    } else if (in_hex) {
      hex_run.push_back(c);
    } else {
      out.push_back(static_cast<std::uint8_t>(c));
    }
  }
  if (in_hex) return err("unterminated hex escape in content");
  if (out.empty()) return err("empty content pattern");
  return out;
}

/// Splits the option block on ';' at top level (quotes protected).
std::vector<std::string> split_options(const std::string& block) {
  std::vector<std::string> options;
  std::string current;
  bool in_quote = false;
  for (char c : block) {
    if (c == '"') in_quote = !in_quote;
    if (c == ';' && !in_quote) {
      options.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) options.push_back(current);
  return options;
}

std::string trim(const std::string& s) {
  std::size_t a = s.find_first_not_of(" \t\r\n");
  if (a == std::string::npos) return "";
  std::size_t b = s.find_last_not_of(" \t\r\n");
  return s.substr(a, b - a + 1);
}

/// Extracts the value of `key:value`; quotes around value are stripped.
std::optional<std::string> option_value(const std::string& option,
                                        std::string_view key) {
  auto colon = option.find(':');
  if (colon == std::string::npos) return std::nullopt;
  if (trim(option.substr(0, colon)) != key) return std::nullopt;
  std::string value = trim(option.substr(colon + 1));
  if (value.size() >= 2 && value.front() == '"' && value.back() == '"')
    value = value.substr(1, value.size() - 2);
  return value;
}

}  // namespace

Result<SnortRule> parse_snort_rule(const std::string& line) {
  auto paren = line.find('(');
  if (paren == std::string::npos || line.back() != ')')
    return err("rule missing (options) block");
  std::string header = trim(line.substr(0, paren));
  std::string options_block = line.substr(paren + 1, line.size() - paren - 2);

  std::istringstream in(header);
  std::string action_text, proto_text, src_text, sport_text, arrow, dst_text, dport_text;
  if (!(in >> action_text >> proto_text >> src_text >> sport_text >> arrow >>
        dst_text >> dport_text))
    return err("malformed rule header: '" + header + "'");
  std::string extra;
  if (in >> extra) return err("trailing token '" + extra + "' in rule header");
  if (arrow != "->") return err("expected '->' in rule header");

  SnortRule rule;
  if (action_text == "alert") rule.action = RuleAction::Alert;
  else if (action_text == "drop") rule.action = RuleAction::Drop;
  else if (action_text == "pass") rule.action = RuleAction::Pass;
  else return err("unknown action '" + action_text + "'");

  if (proto_text == "tcp") rule.proto = net::IpProto::Tcp;
  else if (proto_text == "udp") rule.proto = net::IpProto::Udp;
  else if (proto_text == "icmp") rule.proto = net::IpProto::Icmp;
  else if (proto_text == "ip") rule.proto = std::nullopt;
  else return err("unknown protocol '" + proto_text + "'");

  auto src = parse_address(src_text);
  if (!src.ok()) return err(src.error());
  rule.src = *src;
  auto dst = parse_address(dst_text);
  if (!dst.ok()) return err(dst.error());
  rule.dst = *dst;
  auto sport = parse_port(sport_text);
  if (!sport.ok()) return err(sport.error());
  rule.src_port = *sport;
  auto dport = parse_port(dport_text);
  if (!dport.ok()) return err(dport.error());
  rule.dst_port = *dport;

  for (const auto& raw_option : split_options(options_block)) {
    std::string option = trim(raw_option);
    if (option.empty()) continue;
    if (auto msg = option_value(option, "msg")) {
      rule.msg = *msg;
    } else if (auto content = option_value(option, "content")) {
      auto bytes = decode_content(*content);
      if (!bytes.ok()) return err(bytes.error());
      rule.contents.push_back({*bytes, false});
    } else if (option == "nocase") {
      if (rule.contents.empty()) return err("nocase before any content");
      rule.contents.back().nocase = true;
    } else if (auto sid = option_value(option, "sid")) {
      try {
        rule.sid = static_cast<std::uint32_t>(std::stoul(*sid));
      } catch (...) {
        return err("bad sid '" + *sid + "'");
      }
    } else {
      // Unknown options (rev, classtype, metadata...) are tolerated and
      // ignored, as Snort deployments carry many rule annotations.
      if (option.find(':') == std::string::npos && option.find('"') != std::string::npos)
        return err("malformed option '" + option + "'");
    }
  }
  if (rule.sid == 0) return err("rule missing sid");
  return rule;
}

Result<std::vector<SnortRule>> parse_snort_ruleset(const std::string& text) {
  std::vector<SnortRule> rules;
  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::string trimmed = trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    auto rule = parse_snort_rule(trimmed);
    if (!rule.ok())
      return err("line " + std::to_string(line_number) + ": " + rule.error());
    rules.push_back(std::move(*rule));
  }
  return rules;
}

std::vector<SnortRule> generate_community_ruleset(std::size_t count, Rng& rng) {
  // Token pools modelled on community-rule content strings. Generated
  // payloads in the evaluation are random alphanumerics, which these
  // multi-character tokens never match (mirroring section V-B: "the
  // rules do not match packets generated for our evaluation").
  static const char* kPrefixes[] = {"/bin/", "cmd.exe /c ", "SELECT * FROM ",
                                    "<script>", "\\x90\\x90", "GET /admin/",
                                    "POST /cgi-bin/", "%u9090", "../../etc/",
                                    "powershell -enc "};
  static const char* kSuffixes[] = {"shadow", "passwd", "exploit", "payload",
                                    "shellcode", "backdoor", "meterpreter",
                                    "trojan", "miner", "botnet"};
  std::vector<SnortRule> rules;
  rules.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    SnortRule rule;
    rule.action = (i % 7 == 0) ? RuleAction::Drop : RuleAction::Alert;
    switch (i % 3) {
      case 0: rule.proto = net::IpProto::Tcp; break;
      case 1: rule.proto = net::IpProto::Udp; break;
      default: rule.proto = std::nullopt; break;
    }
    rule.src.any = true;
    rule.dst.any = true;
    if (i % 5 == 0) {
      rule.dst_port.any = false;
      rule.dst_port.port = static_cast<std::uint16_t>(rng.uniform(1, 1024));
    }
    std::string content = std::string(kPrefixes[rng.uniform(0, 9)]) +
                          kSuffixes[rng.uniform(0, 9)] + "_" + std::to_string(i);
    rule.contents.push_back({to_bytes(content), i % 4 == 0});
    if (i % 11 == 0)
      rule.contents.push_back({to_bytes("X-Evil-Header-" + std::to_string(i)), false});
    rule.msg = "COMMUNITY rule " + std::to_string(i);
    rule.sid = static_cast<std::uint32_t>(2000000 + i);
    rules.push_back(std::move(rule));
  }
  return rules;
}

std::string format_snort_rule(const SnortRule& rule) {
  std::ostringstream os;
  switch (rule.action) {
    case RuleAction::Alert: os << "alert"; break;
    case RuleAction::Drop: os << "drop"; break;
    case RuleAction::Pass: os << "pass"; break;
  }
  if (!rule.proto) os << " ip";
  else if (*rule.proto == net::IpProto::Tcp) os << " tcp";
  else if (*rule.proto == net::IpProto::Udp) os << " udp";
  else os << " icmp";

  auto addr = [&](const AddressSpec& a) {
    if (a.any) return std::string("any");
    // Built with appends (not `"!" + str()`): GCC 12's -O3 restrict
    // checker falsely flags the temporary-concatenation form.
    std::string s;
    if (a.negated) s += '!';
    s += a.addr.str();
    if (a.prefix != 32) {
      s += '/';
      s += std::to_string(a.prefix);
    }
    return s;
  };
  auto port = [&](const PortSpec& p) {
    return p.any ? std::string("any") : std::to_string(p.port);
  };
  os << " " << addr(rule.src) << " " << port(rule.src_port) << " -> "
     << addr(rule.dst) << " " << port(rule.dst_port) << " (";
  if (!rule.msg.empty()) os << "msg:\"" << rule.msg << "\"; ";
  for (const auto& content : rule.contents) {
    os << "content:\"";
    for (std::uint8_t b : content.bytes) {
      if (b >= 0x20 && b < 0x7f && b != '"' && b != '|' && b != ';') {
        os << static_cast<char>(b);
      } else {
        char hex[8];
        std::snprintf(hex, sizeof hex, "|%02X|", b);
        os << hex;
      }
    }
    os << "\"; ";
    if (content.nocase) os << "nocase; ";
  }
  os << "sid:" << rule.sid << ";)";
  return os.str();
}

}  // namespace endbox::idps
