// Aho-Corasick multi-pattern string matching (the paper's IDPS executes
// Snort rule sets with this algorithm, citing Aho & Corasick 1975).
// Built from scratch: trie + BFS failure links + output links.
//
// build() additionally compiles the node list into a single flat,
// state-major transition table (goto links already resolved through
// failure links) with pattern outputs in a parallel CSR array, so the
// scan loop is one contiguous table lookup plus one CSR-range check per
// byte instead of chasing a vector<Node> of ~1KB nodes. The original
// node-chasing matcher stays callable as match_reference() so benches
// and property tests can compare against the pre-flattening behaviour.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/bytes.hpp"
#include "idps/literal_prefilter.hpp"

namespace endbox::idps {

struct AcMatch {
  int pattern_id;
  std::size_t end_offset;  ///< offset one past the last matched byte
};

class AhoCorasick {
 public:
  /// Adds a pattern with a caller-chosen id. Must be called before
  /// build(); empty patterns are ignored.
  void add_pattern(ByteView pattern, int pattern_id);

  /// Computes failure/output links, compiles the flat transition
  /// table, and builds the Teddy-style literal prefilter from the
  /// pattern set (pattern bytes are retained only until this point).
  /// `prefilter_case_insensitive` marks the pattern set as lower-cased
  /// nocase literals whose prefilter must admit both cases (it then
  /// scans raw text; only confirm slices are lowered). Idempotent.
  void build(bool prefilter_case_insensitive = false);

  /// Finds all pattern occurrences in `text` (overlaps included).
  std::vector<AcMatch> match(ByteView text) const;

  /// Streaming variant: invokes `on_match` per occurrence; returns the
  /// number of matches. Stops early if `on_match` returns false.
  std::size_t match(ByteView text,
                    const std::function<bool(const AcMatch&)>& on_match) const;

  /// Batched scan: walks up to 16 texts in lockstep so the dependent
  /// transition loads of different streams overlap in the memory
  /// system. A single walk is latency-bound (each step's table load
  /// depends on the previous one); interleaving independent chains is
  /// where burst processing beats per-packet scanning. Per-stream
  /// matches and their order are identical to match() on each text;
  /// `on_match(stream, match)` receives the stream index. Returns the
  /// total match count.
  std::size_t match_multi(
      std::span<const ByteView> texts,
      const std::function<bool(std::size_t, const AcMatch&)>& on_match) const;

  /// Resumable walk for stream scanning: starts from `*state` (0 = the
  /// root, i.e. the start of a fresh stream) and leaves the final
  /// automaton state in `*state`, so the next chunk of the same stream
  /// continues exactly where this one stopped — a pattern straddling
  /// the chunk boundary is reported as if the chunks were one buffer.
  /// Match end_offsets are relative to this chunk's start (an offset
  /// smaller than the pattern length means the match began in an
  /// earlier chunk). Matches and their order over the concatenation of
  /// all chunks are identical to one match() over the whole stream.
  std::size_t match_resume(
      ByteView text, std::uint32_t* state,
      const std::function<bool(const AcMatch&)>& on_match) const;

  /// Interleaved resumable walks: the stream-scan analogue of
  /// match_multi. Walks up to 16 *distinct* streams' pending chunks in
  /// lockstep (states[i] is stream i's in/out resume state), so the
  /// dependent transition loads of many flows overlap in the memory
  /// system. Per-stream matches equal match_resume on each chunk.
  std::size_t match_multi_resume(
      std::span<const ByteView> texts, std::uint32_t* states,
      const std::function<bool(std::size_t, const AcMatch&)>& on_match) const;

  /// True when any pattern occurs (early exit on first hit).
  bool contains_any(ByteView text) const;

  /// Pre-flattening matcher over the retained node list (identical
  /// output order to match()); baseline for benches/equivalence tests.
  std::vector<AcMatch> match_reference(ByteView text) const;
  std::size_t match_reference(
      ByteView text, const std::function<bool(const AcMatch&)>& on_match) const;

  std::size_t pattern_count() const { return pattern_lengths_.size(); }
  std::size_t node_count() const { return nodes_.size(); }
  bool built() const { return built_; }
  std::size_t max_pattern_length() const { return max_pattern_length_; }
  /// The literal prefilter compiled by build(). usable() is false when
  /// some pattern is too short for a fragment — the caller must then
  /// run the full walk over every byte.
  const LiteralPrefilter& prefilter() const { return prefilter_; }
  LiteralPrefilter& prefilter() { return prefilter_; }

 private:
  struct Node {
    std::array<std::int32_t, 256> next;
    std::int32_t fail = 0;
    std::int32_t output_link = -1;       ///< nearest suffix node with output
    std::vector<std::int32_t> outputs;   ///< pattern indices ending here

    Node() { next.fill(-1); }
  };

  std::int32_t step(std::int32_t state, std::uint8_t byte) const;

  std::vector<Node> nodes_{1};
  std::vector<int> pattern_ids_;
  std::vector<std::size_t> pattern_lengths_;
  /// Pattern bytes, retained only between add_pattern and build() so
  /// build() can select prefilter fragments; cleared after compiling.
  std::vector<Bytes> pattern_bytes_;
  std::size_t max_pattern_length_ = 0;
  LiteralPrefilter prefilter_;
  bool built_ = false;

  // Flat automaton (filled by build()): transitions_[state*256 + byte]
  // is the next state; out_start_[s]..out_start_[s+1] indexes the
  // pattern indices reported at state s (own outputs first, then those
  // inherited through the output-link chain, matching the emission
  // order of the node-chasing matcher).
  std::vector<std::int32_t> transitions_;
  std::vector<std::uint32_t> out_start_;
  std::vector<std::int32_t> out_patterns_;
};

}  // namespace endbox::idps
