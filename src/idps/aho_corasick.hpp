// Aho-Corasick multi-pattern string matching (the paper's IDPS executes
// Snort rule sets with this algorithm, citing Aho & Corasick 1975).
// Built from scratch: trie + BFS failure links + output links.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/bytes.hpp"

namespace endbox::idps {

struct AcMatch {
  int pattern_id;
  std::size_t end_offset;  ///< offset one past the last matched byte
};

class AhoCorasick {
 public:
  /// Adds a pattern with a caller-chosen id. Must be called before
  /// build(); empty patterns are ignored.
  void add_pattern(ByteView pattern, int pattern_id);

  /// Computes failure/output links. Idempotent; called automatically by
  /// match() if needed.
  void build();

  /// Finds all pattern occurrences in `text` (overlaps included).
  std::vector<AcMatch> match(ByteView text) const;

  /// Streaming variant: invokes `on_match` per occurrence; returns the
  /// number of matches. Stops early if `on_match` returns false.
  std::size_t match(ByteView text,
                    const std::function<bool(const AcMatch&)>& on_match) const;

  /// True when any pattern occurs (early exit on first hit).
  bool contains_any(ByteView text) const;

  std::size_t pattern_count() const { return pattern_lengths_.size(); }
  std::size_t node_count() const { return nodes_.size(); }
  bool built() const { return built_; }

 private:
  struct Node {
    std::array<std::int32_t, 256> next;
    std::int32_t fail = 0;
    std::int32_t output_link = -1;       ///< nearest suffix node with output
    std::vector<std::int32_t> outputs;   ///< pattern indices ending here

    Node() { next.fill(-1); }
  };

  std::int32_t step(std::int32_t state, std::uint8_t byte) const;

  std::vector<Node> nodes_{1};
  std::vector<int> pattern_ids_;
  std::vector<std::size_t> pattern_lengths_;
  bool built_ = false;
};

}  // namespace endbox::idps
