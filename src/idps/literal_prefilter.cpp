#include "idps/literal_prefilter.hpp"

#include <algorithm>
#include <array>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace endbox::idps {

namespace {

// Commonness weight for fragment selection: the rarest window of a
// pattern makes the cheapest filter, so frequent payload bytes (ASCII
// letters, digits, space, common punctuation) score high and binary /
// unusual bytes score zero. The exact ranking only affects the false-
// positive rate, never correctness.
std::uint8_t byte_commonness(std::uint8_t b) {
  switch (b) {
    case ' ':
    case 'e':
    case 't':
    case 'a':
    case 'o':
    case 'i':
    case 'n':
    case 's':
    case 'r':
    case 'h':
      return 4;
    default:
      break;
  }
  if (b >= 'a' && b <= 'z') return 3;
  if ((b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9')) return 2;
  if (b == '.' || b == ',' || b == '-' || b == '_' || b == '/') return 2;
  if (b >= 0x20 && b < 0x7f) return 1;
  return 0;
}

}  // namespace

void LiteralPrefilter::admit_byte(std::size_t j, std::uint8_t b,
                                  unsigned bucket) {
  lo_[j][b & 0x0f] |= static_cast<std::uint8_t>(1u << bucket);
  hi_[j][b >> 4] |= static_cast<std::uint8_t>(1u << bucket);
}

void LiteralPrefilter::build(std::span<const ByteView> patterns,
                             bool case_insensitive) {
  usable_ = false;
  empty_ = true;
  width_ = 0;
  max_len_ = 0;
  std::memset(lo_, 0, sizeof(lo_));
  std::memset(hi_, 0, sizeof(hi_));
  std::memset(tbl32_, 0, sizeof(tbl32_));
  kernel_ = common::current_simd_level();

  if (patterns.empty()) {
    usable_ = true;  // nothing can match: every payload is clean
    return;
  }
  std::size_t min_len = patterns[0].size();
  for (ByteView p : patterns) {
    min_len = std::min(min_len, p.size());
    max_len_ = std::max(max_len_, p.size());
  }
  if (min_len < 2) return;  // 1-byte literal: no fragment, stay unusable
  empty_ = false;
  width_ = std::min<std::size_t>(4, min_len);

  // Rarest W-byte window of each pattern becomes its fragment.
  std::vector<std::array<std::uint8_t, 4>> fragments;
  fragments.reserve(patterns.size());
  for (ByteView p : patterns) {
    std::size_t best_off = 0;
    unsigned best_score = ~0u;
    for (std::size_t off = 0; off + width_ <= p.size(); ++off) {
      unsigned score = 0;
      for (std::size_t j = 0; j < width_; ++j)
        score += byte_commonness(p[off + j]);
      if (score < best_score) {
        best_score = score;
        best_off = off;
      }
    }
    std::array<std::uint8_t, 4> frag{};
    for (std::size_t j = 0; j < width_; ++j) frag[j] = p[best_off + j];
    fragments.push_back(frag);
  }

  // Lexicographic sort + contiguous split keeps shared prefixes inside
  // one bucket, which keeps each bucket's per-position nibble sets —
  // and with them the cross-product false positives — small.
  std::sort(fragments.begin(), fragments.end());
  fragments.erase(std::unique(fragments.begin(), fragments.end()),
                  fragments.end());
  std::size_t buckets = std::min<std::size_t>(8, fragments.size());
  for (std::size_t f = 0; f < fragments.size(); ++f) {
    unsigned bucket = static_cast<unsigned>(f * buckets / fragments.size());
    for (std::size_t j = 0; j < width_; ++j) {
      std::uint8_t b = fragments[f][j];
      admit_byte(j, b, bucket);
      // Nocase patterns are stored lower-cased; admitting the upper
      // form too lets the filter scan the raw (unlowered) text.
      if (case_insensitive && b >= 'a' && b <= 'z')
        admit_byte(j, static_cast<std::uint8_t>(b - 'a' + 'A'), bucket);
    }
  }

  for (unsigned b = 0; b < 256; ++b) {
    std::uint32_t v = 0;
    for (std::size_t j = 0; j < width_; ++j)
      v |= static_cast<std::uint32_t>(lo_[j][b & 0x0f] & hi_[j][b >> 4])
           << (8 * j);
    tbl32_[b] = v;
  }
  usable_ = true;
}

void LiteralPrefilter::emit(std::size_t start, std::size_t text_len,
                            std::vector<CandidateRun>& runs) const {
  // A fragment at `start` belonging to a pattern of length L at offset
  // `off` implies a match span [start-off, start-off+L) with
  // off <= L-W <= maxlen-W and end <= start+maxlen, so this window
  // contains every match the candidate can witness.
  std::size_t rewind = max_len_ - width_;
  std::uint32_t begin =
      static_cast<std::uint32_t>(start > rewind ? start - rewind : 0);
  std::uint32_t end =
      static_cast<std::uint32_t>(std::min(text_len, start + max_len_));
  if (!runs.empty() && begin <= runs.back().end) {
    runs.back().end = std::max(runs.back().end, end);
  } else {
    runs.push_back({begin, end});
  }
}

std::size_t LiteralPrefilter::scan_scalar(
    const std::uint8_t* data, std::size_t len, std::size_t from,
    std::size_t emit_from, std::vector<CandidateRun>& runs) const {
  // Zero-initialised history: byte j of `acc` becomes valid only after
  // j+1 input bytes, so fragment ends before position W-1 (candidates
  // starting before the text) can never fire.
  std::uint32_t acc = 0;
  const std::size_t r = width_ - 1;
  const unsigned shift = static_cast<unsigned>(8 * r);
  std::size_t count = 0;
  for (std::size_t i = from; i < len; ++i) {
    acc = ((acc << 8) | 0xffu) & tbl32_[data[i]];
    if (((acc >> shift) & 0xffu) != 0 && i >= emit_from) {
      ++count;
      emit(i - r, len, runs);
    }
  }
  return count;
}

#if defined(__x86_64__) || defined(__i386__)

__attribute__((target("ssse3"))) std::size_t LiteralPrefilter::scan_ssse3(
    const std::uint8_t* data, std::size_t len,
    std::vector<CandidateRun>& runs) const {
  const std::size_t w = width_;
  const std::size_t r = w - 1;
  __m128i lo_tbl[4], hi_tbl[4], prev[4];
  for (std::size_t j = 0; j < w; ++j) {
    lo_tbl[j] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(lo_[j]));
    hi_tbl[j] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(hi_[j]));
    prev[j] = _mm_setzero_si128();  // no fragments start before the text
  }
  const __m128i nibble = _mm_set1_epi8(0x0f);
  const __m128i zero = _mm_setzero_si128();
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    __m128i chunk =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    __m128i lo_n = _mm_and_si128(chunk, nibble);
    __m128i hi_n = _mm_and_si128(_mm_srli_epi16(chunk, 4), nibble);
    __m128i bucket_bits[4] = {zero, zero, zero, zero};
    for (std::size_t j = 0; j < w; ++j)
      bucket_bits[j] = _mm_and_si128(_mm_shuffle_epi8(lo_tbl[j], lo_n),
                                     _mm_shuffle_epi8(hi_tbl[j], hi_n));
    // Result byte p: AND over positions j of the bucket bitmap seen
    // r-j bytes earlier — fragment position j aligned to its end.
    __m128i res = bucket_bits[r];
    for (std::size_t j = 0; j < r; ++j) {
      __m128i shifted;
      switch (r - j) {
        case 1:
          shifted = _mm_alignr_epi8(bucket_bits[j], prev[j], 15);
          break;
        case 2:
          shifted = _mm_alignr_epi8(bucket_bits[j], prev[j], 14);
          break;
        default:
          shifted = _mm_alignr_epi8(bucket_bits[j], prev[j], 13);
          break;
      }
      res = _mm_and_si128(res, shifted);
    }
    for (std::size_t j = 0; j < w; ++j) prev[j] = bucket_bits[j];
    unsigned mask =
        static_cast<unsigned>(_mm_movemask_epi8(_mm_cmpeq_epi8(res, zero))) ^
        0xffffu;
    while (mask != 0) {
      unsigned p = static_cast<unsigned>(__builtin_ctz(mask));
      mask &= mask - 1;
      ++count;
      emit(i + p - r, len, runs);
    }
  }
  // Tail: re-run the SWAR recurrence from r bytes before the SIMD
  // frontier (to rebuild the AND history) but emit only new positions.
  count += scan_scalar(data, len, i >= r ? i - r : 0, i, runs);
  return count;
}

__attribute__((target("avx2"))) std::size_t LiteralPrefilter::scan_avx2(
    const std::uint8_t* data, std::size_t len,
    std::vector<CandidateRun>& runs) const {
  const std::size_t w = width_;
  const std::size_t r = w - 1;
  __m256i lo_tbl[4], hi_tbl[4], prev[4];
  for (std::size_t j = 0; j < w; ++j) {
    __m128i lo128 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(lo_[j]));
    __m128i hi128 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(hi_[j]));
    lo_tbl[j] = _mm256_broadcastsi128_si256(lo128);
    hi_tbl[j] = _mm256_broadcastsi128_si256(hi128);
    prev[j] = _mm256_setzero_si256();
  }
  const __m256i nibble = _mm256_set1_epi8(0x0f);
  const __m256i zero = _mm256_setzero_si256();
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    __m256i chunk =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    __m256i lo_n = _mm256_and_si256(chunk, nibble);
    __m256i hi_n = _mm256_and_si256(_mm256_srli_epi16(chunk, 4), nibble);
    __m256i bucket_bits[4] = {zero, zero, zero, zero};
    for (std::size_t j = 0; j < w; ++j)
      bucket_bits[j] =
          _mm256_and_si256(_mm256_shuffle_epi8(lo_tbl[j], lo_n),
                           _mm256_shuffle_epi8(hi_tbl[j], hi_n));
    __m256i res = bucket_bits[r];
    for (std::size_t j = 0; j < r; ++j) {
      // alignr works per 128-bit lane; splicing [prev.hi, cur.lo] as
      // the carry register makes the byte shift cross the lane seam.
      __m256i carry =
          _mm256_permute2x128_si256(prev[j], bucket_bits[j], 0x21);
      __m256i shifted;
      switch (r - j) {
        case 1:
          shifted = _mm256_alignr_epi8(bucket_bits[j], carry, 15);
          break;
        case 2:
          shifted = _mm256_alignr_epi8(bucket_bits[j], carry, 14);
          break;
        default:
          shifted = _mm256_alignr_epi8(bucket_bits[j], carry, 13);
          break;
      }
      res = _mm256_and_si256(res, shifted);
    }
    for (std::size_t j = 0; j < w; ++j) prev[j] = bucket_bits[j];
    std::uint32_t mask = static_cast<std::uint32_t>(_mm256_movemask_epi8(
                             _mm256_cmpeq_epi8(res, zero))) ^
                         0xffffffffu;
    while (mask != 0) {
      unsigned p = static_cast<unsigned>(__builtin_ctz(mask));
      mask &= mask - 1;
      ++count;
      emit(i + p - r, len, runs);
    }
  }
  count += scan_scalar(data, len, i >= r ? i - r : 0, i, runs);
  return count;
}

#endif  // x86

std::size_t LiteralPrefilter::find_runs(ByteView text,
                                        std::vector<CandidateRun>& runs) const {
  if (empty_ || text.size() < width_) return 0;
#if defined(__x86_64__) || defined(__i386__)
  if (kernel_ == Kernel::Avx2)
    return scan_avx2(text.data(), text.size(), runs);
  if (kernel_ == Kernel::Ssse3)
    return scan_ssse3(text.data(), text.size(), runs);
#endif
  return scan_scalar(text.data(), text.size(), 0, 0, runs);
}

}  // namespace endbox::idps
