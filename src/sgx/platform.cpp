#include "sgx/platform.hpp"

namespace endbox::sgx {

SgxPlatform::SgxPlatform(std::string platform_id, Rng& rng,
                         const sim::Clock& clock)
    : platform_id_(std::move(platform_id)),
      clock_(clock),
      sealing_root_key_(rng.bytes(32)),
      report_key_(rng.bytes(32)),
      attestation_key_(crypto::rsa_generate(rng)) {}

std::uint64_t SgxPlatform::increment_counter(const std::string& name) {
  return ++counters_[name];
}

std::uint64_t SgxPlatform::read_counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

}  // namespace endbox::sgx
