// Simulated Intel Attestation Service (IAS).
//
// Real IAS is a web service that verifies EPID signatures on quotes and
// returns a signed Attestation Verification Report (AVR). Here the
// service holds the registered attestation public keys of all genuine
// platforms (modelling Intel's provisioning database) and signs AVRs
// with its own report-signing key, whose public half relying parties
// (the EndBox CA) pin.
//
// Simulation-mode enclaves are rejected, mirroring real SGX: SIM-mode
// quotes cannot be verified by IAS.
#pragma once

#include <string>
#include <unordered_map>

#include "common/result.hpp"
#include "common/rng.hpp"
#include "crypto/rsa.hpp"
#include "sgx/quote.hpp"

namespace endbox::sgx {

struct AttestationVerificationReport {
  bool is_valid = false;
  std::string platform_id;
  Measurement mrenclave{};
  ReportData report_data{};
  Bytes signature;  ///< IAS report-signing key signature

  Bytes signed_portion() const;
};

class AttestationService {
 public:
  explicit AttestationService(Rng& rng)
      : signing_key_(crypto::rsa_generate(rng)) {}

  /// Relying parties pin this key to verify AVRs.
  const crypto::RsaPublicKey& report_signing_public_key() const {
    return signing_key_.pub;
  }

  /// Intel provisioning: registers a genuine platform's attestation key.
  void register_platform(const std::string& platform_id,
                         const crypto::RsaPublicKey& attestation_public_key);

  /// Verifies a serialised quote and returns a signed AVR. The AVR is
  /// returned (with is_valid=false) rather than an error for known
  /// failure modes, matching IAS behaviour of reporting quote status.
  Result<AttestationVerificationReport> verify(ByteView serialized_quote) const;

  /// Verifies an AVR signature against a pinned IAS key (client side).
  static bool verify_avr(const AttestationVerificationReport& avr,
                         const crypto::RsaPublicKey& ias_key);

 private:
  crypto::RsaKeyPair signing_key_;
  std::unordered_map<std::string, crypto::RsaPublicKey> platforms_;
};

}  // namespace endbox::sgx
