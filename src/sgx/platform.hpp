// Software model of an SGX-capable machine.
//
// A platform owns the per-CPU secrets real SGX fuses at manufacturing
// time: the sealing root key and the attestation key the Quoting
// Enclave signs quotes with. It also provides the trusted time source
// (SGX SDK `sgx_get_trusted_time`) and monotonic counters, both of
// which EndBox's TrustedSplitter element relies on.
//
// Security caveat by construction: this is a *simulation* of the SGX
// trust model for protocol/evaluation purposes, not a TEE.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/rsa.hpp"
#include "sim/clock.hpp"

namespace endbox::sgx {

/// Execution mode of enclaves on this platform. Simulation mode runs
/// the same code without hardware protection (and cannot be remotely
/// attested), exactly like the SGX SDK's SIM mode that the paper uses
/// for its "EndBox SIM" measurements.
enum class SgxMode { Simulation, Hardware };

class SgxPlatform {
 public:
  /// `platform_id` identifies the machine (EPID group in real SGX).
  /// The attestation key pair is registered with the AttestationService
  /// out of band (modelling Intel's provisioning).
  SgxPlatform(std::string platform_id, Rng& rng, const sim::Clock& clock);

  const std::string& platform_id() const { return platform_id_; }
  const sim::Clock& clock() const { return clock_; }

  /// Root sealing secret; only the enclave sealing logic reads this.
  ByteView sealing_root_key() const { return sealing_root_key_; }

  /// Attestation signing key used by the Quoting Enclave.
  const crypto::RsaKeyPair& attestation_key() const { return attestation_key_; }

  /// Local-attestation MAC key shared by enclaves on this platform
  /// (models the EREPORT key derivation).
  ByteView report_key() const { return report_key_; }

  /// SGX trusted time: reads the virtual clock. The *cost* of the
  /// underlying ocall is charged by the caller via the perf model.
  sim::Time trusted_time() const { return clock_.now(); }

  /// Monotonic counters (SGX PSE). Returns the post-increment value.
  std::uint64_t increment_counter(const std::string& name);
  std::uint64_t read_counter(const std::string& name) const;

 private:
  std::string platform_id_;
  const sim::Clock& clock_;
  Bytes sealing_root_key_;
  Bytes report_key_;
  crypto::RsaKeyPair attestation_key_;
  std::unordered_map<std::string, std::uint64_t> counters_;
};

}  // namespace endbox::sgx
