#include "sgx/enclave.hpp"

#include "crypto/aes.hpp"
#include "crypto/hmac.hpp"

namespace endbox::sgx {

namespace {
constexpr std::string_view kSealMagic = "EBSEAL1";
}

Enclave::Enclave(SgxPlatform& platform, std::string code_identity, SgxMode mode)
    : platform_(platform), measurement_(measure(code_identity)), mode_(mode) {}

Bytes Enclave::sealing_key() const {
  // KDF over the platform root key bound to MRENCLAVE: another enclave
  // (different measurement) derives a different key.
  Bytes context(measurement_.begin(), measurement_.end());
  Bytes root(platform_.sealing_root_key().begin(), platform_.sealing_root_key().end());
  append(root, context);
  return crypto::derive_key(root, "sgx-seal", 32);
}

Bytes Enclave::seal(ByteView data) const {
  Bytes key = sealing_key();
  auto enc_key = crypto::make_aes_key(ByteView(key.data(), 16));
  Bytes mac_key(key.begin() + 16, key.end());

  // Fresh nonce from the platform counter: sealing twice never reuses
  // a keystream.
  std::uint64_t nonce_ctr =
      const_cast<SgxPlatform&>(platform_).increment_counter("seal-nonce");
  Bytes nonce(16, 0);
  for (int i = 0; i < 8; ++i)
    nonce[15 - i] = static_cast<std::uint8_t>(nonce_ctr >> (8 * i));

  Bytes out = to_bytes(kSealMagic);
  append(out, nonce);
  append(out, crypto::aes128_ctr(enc_key, nonce, data));
  append(out, crypto::hmac_sha256(mac_key, out));
  return out;
}

Result<Bytes> Enclave::unseal(ByteView sealed) const {
  constexpr std::size_t kMacSize = 32;
  constexpr std::size_t kNonceSize = 16;
  if (sealed.size() < kSealMagic.size() + kNonceSize + kMacSize)
    return err("unseal: blob too short");
  if (to_string(sealed.subspan(0, kSealMagic.size())) != kSealMagic)
    return err("unseal: bad magic");

  Bytes key = sealing_key();
  auto enc_key = crypto::make_aes_key(ByteView(key.data(), 16));
  Bytes mac_key(key.begin() + 16, key.end());

  std::size_t body_len = sealed.size() - kMacSize;
  if (!crypto::hmac_verify(mac_key, sealed.subspan(0, body_len),
                           sealed.subspan(body_len))) {
    return err("unseal: MAC verification failed (wrong enclave or tampered)");
  }
  ByteView nonce = sealed.subspan(kSealMagic.size(), kNonceSize);
  ByteView ciphertext =
      sealed.subspan(kSealMagic.size() + kNonceSize,
                     body_len - kSealMagic.size() - kNonceSize);
  return crypto::aes128_ctr(enc_key, nonce, ciphertext);
}

Report Enclave::create_report(const ReportData& report_data) const {
  Report report;
  report.mrenclave = measurement_;
  report.report_data = report_data;
  if (mode_ == SgxMode::Hardware) {
    report.mac = crypto::hmac_sha256(platform_.report_key(), report.signed_portion());
  } else {
    // Simulation-mode enclaves cannot produce genuine reports — the MAC
    // key is not available outside hardware mode, so local attestation
    // (and hence remote attestation) fails, as on real SGX.
    report.mac = Bytes(32, 0);
  }
  return report;
}

}  // namespace endbox::sgx
