// Enclave runtime: lifecycle, transition accounting, EPC accounting,
// sealing and report creation.
//
// Concrete enclaves (the EndBox enclave in src/endbox) derive from
// `Enclave` and implement their ecalls as methods guarded by
// `EcallGuard`, which (i) refuses entry when the enclave is not
// initialised (the untrusted host controls the life cycle — the DoS
// attack of section V-A), and (ii) counts transitions so the perf model
// can charge them and tests can assert the "one ecall per packet"
// optimisation (section IV-A).
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "sgx/platform.hpp"
#include "sgx/quote.hpp"

namespace endbox::sgx {

/// EPC is 128 MB per machine in SGXv1; exceeding it forces paging with
/// a severe performance penalty (section II-C). The runtime tracks
/// usage so oversized configurations are observable.
inline constexpr std::size_t kEpcBytes = 128 * 1024 * 1024;

struct TransitionStats {
  std::uint64_t ecalls = 0;
  std::uint64_t ocalls = 0;
  std::uint64_t rejected_entries = 0;  ///< ecalls attempted while destroyed
};

class Enclave {
 public:
  /// Measures `code_identity` and initialises the enclave on `platform`.
  Enclave(SgxPlatform& platform, std::string code_identity, SgxMode mode);
  virtual ~Enclave() = default;

  Enclave(const Enclave&) = delete;
  Enclave& operator=(const Enclave&) = delete;

  const Measurement& measurement() const { return measurement_; }
  SgxMode mode() const { return mode_; }
  SgxPlatform& platform() { return platform_; }
  const SgxPlatform& platform() const { return platform_; }

  /// The untrusted host may destroy the enclave at any time (DoS in the
  /// threat model). Subsequent ecalls fail until start() is called.
  void destroy() { alive_ = false; }
  void start() { alive_ = true; }
  bool alive() const { return alive_; }

  const TransitionStats& transitions() const { return stats_; }
  void reset_transition_stats() { stats_ = {}; }

  /// EPC accounting: trusted heap currently allocated.
  std::size_t epc_used() const { return epc_used_; }
  bool epc_over_limit() const { return epc_used_ > kEpcBytes; }

  // ---- Trusted services (callable from enclave code) -----------------

  /// Seals data to this enclave's measurement (MRENCLAVE policy):
  /// AES-128-CTR with a derived key + HMAC, versioned with a platform
  /// monotonic counter to resist rollback of sealed state.
  Bytes seal(ByteView data) const;
  /// Unseals; fails on wrong platform, wrong measurement or tampering.
  Result<Bytes> unseal(ByteView sealed) const;

  /// EREPORT: creates a locally-attestable report with `report_data`.
  Report create_report(const ReportData& report_data) const;

  /// SGX trusted time (the *ocall cost* is charged by callers via the
  /// perf model; this returns the value).
  sim::Time trusted_time() const { return platform_.trusted_time(); }

 protected:
  /// RAII guard for ecall entry; throws EnclaveDead on a destroyed
  /// enclave so host code observes a failed entry.
  struct EnclaveDead : std::runtime_error {
    EnclaveDead() : std::runtime_error("enclave is not initialised") {}
  };

  class EcallGuard {
   public:
    explicit EcallGuard(Enclave& enclave) : enclave_(enclave) {
      if (!enclave_.alive_) {
        ++enclave_.stats_.rejected_entries;
        throw EnclaveDead();
      }
      ++enclave_.stats_.ecalls;
    }
    EcallGuard(const EcallGuard&) = delete;
    EcallGuard& operator=(const EcallGuard&) = delete;

   private:
    Enclave& enclave_;
  };

  void count_ocall() { ++stats_.ocalls; }
  void allocate_epc(std::size_t bytes) { epc_used_ += bytes; }
  void free_epc(std::size_t bytes) { epc_used_ -= std::min(bytes, epc_used_); }

 private:
  Bytes sealing_key() const;

  SgxPlatform& platform_;
  Measurement measurement_;
  SgxMode mode_;
  bool alive_ = true;
  TransitionStats stats_;
  std::size_t epc_used_ = 0;
};

}  // namespace endbox::sgx
