#include "sgx/ias.hpp"

namespace endbox::sgx {

Bytes AttestationVerificationReport::signed_portion() const {
  Bytes out;
  out.push_back(is_valid ? 1 : 0);
  append(out, to_bytes(platform_id));
  out.push_back(0);
  out.insert(out.end(), mrenclave.begin(), mrenclave.end());
  out.insert(out.end(), report_data.begin(), report_data.end());
  return out;
}

void AttestationService::register_platform(
    const std::string& platform_id,
    const crypto::RsaPublicKey& attestation_public_key) {
  platforms_[platform_id] = attestation_public_key;
}

Result<AttestationVerificationReport> AttestationService::verify(
    ByteView serialized_quote) const {
  auto quote = Quote::deserialize(serialized_quote);
  if (!quote.ok()) return err("IAS: malformed quote: " + quote.error());

  AttestationVerificationReport avr;
  avr.platform_id = quote->platform_id;
  avr.mrenclave = quote->mrenclave;
  avr.report_data = quote->report_data;

  auto platform = platforms_.find(quote->platform_id);
  if (platform == platforms_.end()) {
    avr.is_valid = false;  // unknown platform: not a genuine SGX CPU
  } else {
    avr.is_valid = crypto::rsa_verify(platform->second, quote->signed_portion(),
                                      quote->signature);
  }
  avr.signature = crypto::rsa_sign(signing_key_, avr.signed_portion());
  return avr;
}

bool AttestationService::verify_avr(const AttestationVerificationReport& avr,
                                    const crypto::RsaPublicKey& ias_key) {
  return crypto::rsa_verify(ias_key, avr.signed_portion(), avr.signature);
}

}  // namespace endbox::sgx
