#include "sgx/quote.hpp"

#include "crypto/hmac.hpp"
#include "crypto/rsa.hpp"
#include "sgx/platform.hpp"

namespace endbox::sgx {

Measurement measure(std::string_view code_identity) {
  return crypto::Sha256::hash(to_bytes(code_identity));
}

ReportData bind_report_data(ByteView bytes) {
  ReportData rd{};
  auto digest = crypto::Sha256::hash(bytes);
  std::copy(digest.begin(), digest.end(), rd.begin());
  return rd;
}

Bytes Report::signed_portion() const {
  Bytes out(mrenclave.begin(), mrenclave.end());
  out.insert(out.end(), report_data.begin(), report_data.end());
  return out;
}

Bytes Quote::signed_portion() const {
  Bytes out = to_bytes(platform_id);
  out.push_back(0);  // separator: platform ids never contain NUL
  out.insert(out.end(), mrenclave.begin(), mrenclave.end());
  out.insert(out.end(), report_data.begin(), report_data.end());
  return out;
}

Bytes Quote::serialize() const {
  Bytes out;
  put_u16(out, static_cast<std::uint16_t>(platform_id.size()));
  append(out, to_bytes(platform_id));
  out.insert(out.end(), mrenclave.begin(), mrenclave.end());
  out.insert(out.end(), report_data.begin(), report_data.end());
  put_u16(out, static_cast<std::uint16_t>(signature.size()));
  append(out, signature);
  return out;
}

Result<Quote> Quote::deserialize(ByteView data) {
  try {
    ByteReader r(data);
    Quote q;
    q.platform_id = to_string(r.take(r.u16()));
    auto mr = r.take(q.mrenclave.size());
    std::copy(mr.begin(), mr.end(), q.mrenclave.begin());
    auto rd = r.take(q.report_data.size());
    std::copy(rd.begin(), rd.end(), q.report_data.begin());
    q.signature = r.take(r.u16());
    if (!r.empty()) return err("Quote: trailing bytes");
    return q;
  } catch (const std::out_of_range&) {
    return err("Quote: truncated");
  }
}

Result<Quote> QuotingEnclave::quote(const Report& report) const {
  if (!crypto::hmac_verify(platform_.report_key(), report.signed_portion(),
                           report.mac)) {
    return err("QuotingEnclave: report MAC verification failed");
  }
  Quote q;
  q.platform_id = platform_.platform_id();
  q.mrenclave = report.mrenclave;
  q.report_data = report.report_data;
  q.signature = crypto::rsa_sign(platform_.attestation_key(), q.signed_portion());
  return q;
}

}  // namespace endbox::sgx
