// Local and remote attestation data structures.
//
// Report  — produced by an enclave (EREPORT): measurement + 64 bytes of
//           user data, MACed with the platform report key so another
//           enclave on the same machine can verify it (local attestation).
// Quote   — produced by the Quoting Enclave from a verified Report,
//           signed with the platform attestation key so a remote party
//           (via the IAS) can verify it (remote attestation).
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "crypto/sha256.hpp"

namespace endbox::sgx {

class SgxPlatform;

using Measurement = crypto::Sha256Digest;

/// Measurement of enclave code+data at initialisation (MRENCLAVE).
Measurement measure(std::string_view code_identity);

inline constexpr std::size_t kReportDataSize = 64;
using ReportData = std::array<std::uint8_t, kReportDataSize>;

/// Builds report data from arbitrary bytes: first 32 bytes are
/// SHA-256(bytes), rest zero (the common SGX idiom for binding a key).
ReportData bind_report_data(ByteView bytes);

struct Report {
  Measurement mrenclave{};
  ReportData report_data{};
  Bytes mac;  ///< HMAC over (mrenclave || report_data) with the report key

  Bytes signed_portion() const;
};

struct Quote {
  std::string platform_id;
  Measurement mrenclave{};
  ReportData report_data{};
  Bytes signature;  ///< attestation-key signature over the fields above

  Bytes signed_portion() const;
  Bytes serialize() const;
  static Result<Quote> deserialize(ByteView data);
};

/// The Quoting Enclave: verifies a locally-attested Report and converts
/// it into a remotely-verifiable Quote.
class QuotingEnclave {
 public:
  explicit QuotingEnclave(const SgxPlatform& platform) : platform_(platform) {}

  /// Returns an error when the report MAC does not verify (the report
  /// was not produced by an enclave on this platform).
  Result<Quote> quote(const Report& report) const;

 private:
  const SgxPlatform& platform_;
};

}  // namespace endbox::sgx
