// In-enclave session-key store.
//
// The client's instrumented TLS library forwards negotiated keys via
// the VPN management interface; the enclave keeps them here so the
// TLSDecrypt Click element can decrypt application records flowing
// through the tunnel. Keys are indexed by session id (carried in each
// record's sequence space by our miniature TLS; real EndBox indexes by
// connection 5-tuple).
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <unordered_map>

#include "tls/session.hpp"

namespace endbox::tls {

class SessionKeyStore {
 public:
  void put(const SessionKeys& keys);
  std::optional<SessionKeys> get(std::uint64_t session_id) const;
  bool erase(std::uint64_t session_id);
  std::size_t size() const { return keys_.size(); }
  std::uint64_t lookups() const { return lookups_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  std::unordered_map<std::uint64_t, SessionKeys> keys_;
  // The store is shared by every element-graph shard (keys arrive via
  // ecalls between bursts; shards only read the map during one), so the
  // lookup statistics must tolerate concurrent get() calls.
  mutable std::atomic<std::uint64_t> lookups_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
};

}  // namespace endbox::tls
