// In-enclave session-key store.
//
// The client's instrumented TLS library forwards negotiated keys via
// the VPN management interface; the enclave keeps them here so the
// TLSDecrypt Click element can decrypt application records flowing
// through the tunnel. Keys are indexed by session id (carried in each
// record's sequence space by our miniature TLS; real EndBox indexes by
// connection 5-tuple).
//
// The store is bounded lifecycle state (common/lifecycle_table.hpp):
// keys are pruned on session teardown (erase) or after sitting unused
// for the configured idle timeout (expire_idle, driven between bursts
// from the enclave), so a long-lived enclave cannot leak one entry per
// TLS session ever negotiated. Each successful get() refreshes the
// key's activity stamp with a relaxed store — safe under the shard
// model where writes (put/erase/expire) happen via ecalls between
// bursts and shards only read during one.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "common/lifecycle_table.hpp"
#include "tls/session.hpp"

namespace endbox::tls {

class SessionKeyStore {
 public:
  struct Options {
    std::size_t capacity = std::size_t{1} << 20;
    sim::Time idle_timeout = 0;  ///< 0: prune on teardown only
  };

  SessionKeyStore() = default;
  explicit SessionKeyStore(Options options)
      : keys_(KeyTable::Options{options.capacity, options.idle_timeout, {}}) {}

  /// Inserts or refreshes a key. Returns false (and counts the
  /// rejection) when a new session would exceed capacity.
  bool put(const SessionKeys& keys);
  std::optional<SessionKeys> get(std::uint64_t session_id) const;
  bool erase(std::uint64_t session_id);

  /// Advances the store's view of virtual time: get() stamps activity
  /// at this time, and expire_idle() evicts keys idle past the
  /// timeout. Call between bursts (single-threaded), like put/erase.
  void note_time(sim::Time now) {
    now_hint_.store(now, std::memory_order_relaxed);
  }
  /// Prunes keys idle past the timeout (no-op with idle_timeout 0).
  /// A pruned key looked up later counts as an honest miss.
  std::size_t expire_idle(sim::Time now);

  std::size_t size() const { return keys_.size(); }
  std::uint64_t lookups() const { return lookups_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  std::uint64_t expired() const { return keys_.stats().expired_idle; }
  std::uint64_t rejected_full() const { return keys_.stats().rejected_full; }

 private:
  using KeyTable = LifecycleTable<std::uint64_t, SessionKeys>;

  KeyTable keys_;
  std::atomic<sim::Time> now_hint_{0};
  // The store is shared by every element-graph shard (keys arrive via
  // ecalls between bursts; shards only read the map during one), so the
  // lookup statistics must tolerate concurrent get() calls.
  mutable std::atomic<std::uint64_t> lookups_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
};

}  // namespace endbox::tls
