#include "tls/keystore.hpp"

namespace endbox::tls {

void SessionKeyStore::put(const SessionKeys& keys) {
  keys_[keys.session_id] = keys;
}

std::optional<SessionKeys> SessionKeyStore::get(std::uint64_t session_id) const {
  ++lookups_;
  auto it = keys_.find(session_id);
  if (it == keys_.end()) {
    ++misses_;
    return std::nullopt;
  }
  return it->second;
}

bool SessionKeyStore::erase(std::uint64_t session_id) {
  return keys_.erase(session_id) > 0;
}

}  // namespace endbox::tls
