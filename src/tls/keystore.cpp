#include "tls/keystore.hpp"

namespace endbox::tls {

bool SessionKeyStore::put(const SessionKeys& keys) {
  SessionKeys copy = keys;
  return keys_.insert(keys.session_id, std::move(copy),
                      now_hint_.load(std::memory_order_relaxed)) != nullptr;
}

std::optional<SessionKeys> SessionKeyStore::get(std::uint64_t session_id) const {
  ++lookups_;
  const KeyTable::Entry* entry = keys_.find(session_id);
  if (!entry) {
    ++misses_;
    return std::nullopt;
  }
  // Activity stamp only — a relaxed store, safe from concurrent shard
  // readers; the wheel is re-armed lazily by the next expire_idle.
  keys_.touch(*entry, now_hint_.load(std::memory_order_relaxed));
  return entry->value;
}

bool SessionKeyStore::erase(std::uint64_t session_id) {
  return keys_.erase(session_id);
}

std::size_t SessionKeyStore::expire_idle(sim::Time now) {
  note_time(now);
  return keys_.expire_idle(now, [](std::uint64_t, SessionKeys&&) {});
}

}  // namespace endbox::tls
