#include "tls/session.hpp"

#include "crypto/aes.hpp"
#include "crypto/hmac.hpp"

namespace endbox::tls {

namespace {

Bytes record_nonce(std::uint64_t seq) {
  Bytes nonce(16, 0);
  for (int i = 0; i < 8; ++i)
    nonce[15 - i] = static_cast<std::uint8_t>(seq >> (8 * i));
  return nonce;
}

Bytes mac_input(const TlsRecord& record) {
  Bytes data;
  data.push_back(record.content_type);
  put_u16(data, static_cast<std::uint16_t>(record.version));
  put_u64(data, record.sequence);
  append(data, record.ciphertext);
  return data;
}

}  // namespace

std::string version_name(TlsVersion v) {
  switch (v) {
    case TlsVersion::Tls10: return "TLS 1.0";
    case TlsVersion::Tls11: return "TLS 1.1";
    case TlsVersion::Tls12: return "TLS 1.2";
    case TlsVersion::Tls13: return "TLS 1.3";
  }
  return "TLS ?";
}

SessionKeys derive_session_keys(ByteView pre_master, const ClientHello& ch,
                                const ServerHello& sh, std::uint64_t session_id) {
  Bytes seed(pre_master.begin(), pre_master.end());
  append(seed, ch.client_random);
  append(seed, sh.server_random);
  SessionKeys keys;
  keys.enc_key = crypto::derive_key(seed, "tls-enc", 16);
  keys.mac_key = crypto::derive_key(seed, "tls-mac", 32);
  keys.session_id = session_id;
  return keys;
}

Bytes TlsRecord::serialize() const {
  Bytes out;
  out.push_back(content_type);
  put_u16(out, static_cast<std::uint16_t>(version));
  put_u64(out, sequence);
  put_u16(out, static_cast<std::uint16_t>(ciphertext.size()));
  append(out, ciphertext);
  append(out, mac);
  return out;
}

Result<TlsRecord> TlsRecord::parse(ByteView wire) {
  try {
    ByteReader r(wire);
    TlsRecord record;
    record.content_type = r.u8();
    record.version = static_cast<TlsVersion>(r.u16());
    record.sequence = r.u64();
    record.ciphertext = r.take(r.u16());
    record.mac = r.take(16);
    if (!r.empty()) return err("TlsRecord: trailing bytes");
    return record;
  } catch (const std::out_of_range&) {
    return err("TlsRecord: truncated");
  }
}

TlsRecord seal_record(const SessionKeys& keys, std::uint64_t seq,
                      ByteView plaintext, TlsVersion version) {
  TlsRecord record;
  record.version = version;
  record.sequence = seq;
  record.ciphertext = crypto::aes128_ctr(crypto::make_aes_key(keys.enc_key),
                                         record_nonce(seq), plaintext);
  Bytes full_mac = crypto::hmac_sha256(keys.mac_key, mac_input(record));
  record.mac.assign(full_mac.begin(), full_mac.begin() + 16);
  return record;
}

Result<Bytes> open_record(const SessionKeys& keys, const TlsRecord& record) {
  Bytes full_mac = crypto::hmac_sha256(keys.mac_key, mac_input(record));
  Bytes expected(full_mac.begin(), full_mac.begin() + 16);
  if (!ct_equal(expected, record.mac)) return err("TLS record MAC mismatch");
  return crypto::aes128_ctr(crypto::make_aes_key(keys.enc_key),
                            record_nonce(record.sequence), record.ciphertext);
}

ClientHello TlsClient::start_handshake() {
  hello_ = ClientHello{rng_.bytes(32), max_version_};
  return *hello_;
}

Status TlsClient::finish_handshake(const ServerHello& server_hello,
                                   ByteView pre_master) {
  if (!hello_) return err("TlsClient: handshake not started");
  if (server_hello.chosen_version > hello_->max_version)
    return err("TlsClient: server chose unsupported version");
  negotiated_version_ = server_hello.chosen_version;
  keys_ = derive_session_keys(pre_master, *hello_, server_hello,
                              server_hello.session_id);
  // The paper's one-line OpenSSL change: forward negotiated keys.
  if (key_export_) key_export_(*keys_);
  return {};
}

TlsRecord TlsClient::send(ByteView plaintext) {
  if (!keys_) throw std::logic_error("TlsClient: not established");
  return seal_record(*keys_, send_seq_++, plaintext, negotiated_version_);
}

Result<Bytes> TlsClient::receive(const TlsRecord& record) {
  if (!keys_) return err("TlsClient: not established");
  return open_record(*keys_, record);
}

Result<ServerHello> TlsServer::accept(const ClientHello& client_hello,
                                      ByteView pre_master) {
  if (client_hello.max_version < min_version_)
    return err("TlsServer: client version below server minimum (" +
               version_name(client_hello.max_version) + " < " +
               version_name(min_version_) + ")");
  if (client_hello.client_random.size() != 32)
    return err("TlsServer: bad client random");

  ServerHello hello;
  hello.server_random = rng_.bytes(32);
  hello.chosen_version = client_hello.max_version;  // highest mutual
  hello.session_id = next_session_id_++;
  negotiated_version_ = hello.chosen_version;
  keys_ = derive_session_keys(pre_master, client_hello, hello, hello.session_id);
  return hello;
}

TlsRecord TlsServer::send(ByteView plaintext) {
  if (!keys_) throw std::logic_error("TlsServer: not established");
  return seal_record(*keys_, send_seq_++, plaintext, negotiated_version_);
}

Result<Bytes> TlsServer::receive(const TlsRecord& record) {
  if (!keys_) return err("TlsServer: not established");
  return open_record(*keys_, record);
}

}  // namespace endbox::tls
