// Simplified TLS: handshake + record layer.
//
// EndBox's encrypted-traffic analysis (section III-D) does not rely on
// TLS internals — it relies on the *session keys* being forwarded from
// the client's (untrusted) TLS library into the enclave, where a Click
// element decrypts application records transparently. This module
// provides a structurally-faithful miniature TLS:
//
//   ClientHello{client_random, max_version}
//   ServerHello{server_random, chosen_version}
//   key = HKDF(pre_master, client_random || server_random)
//   record := [type:1][version:2][seq:8][len:2][ciphertext][mac:16]
//
// with AES-128-CTR encryption and truncated HMAC-SHA-256 integrity.
// The "custom OpenSSL" hook of the paper maps to the key-export
// callback on TlsClient: one call that forwards the negotiated keys.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"

namespace endbox::tls {

enum class TlsVersion : std::uint16_t {
  Tls10 = 0x0301,
  Tls11 = 0x0302,
  Tls12 = 0x0303,
  Tls13 = 0x0304,
};

std::string version_name(TlsVersion v);

/// Keys for one direction-symmetric session (simplified: both
/// directions share keys but use disjoint sequence spaces).
struct SessionKeys {
  Bytes enc_key;   ///< 16 bytes (AES-128)
  Bytes mac_key;   ///< 32 bytes
  std::uint64_t session_id = 0;

  bool operator==(const SessionKeys&) const = default;
};

struct ClientHello {
  Bytes client_random;      ///< 32 bytes
  TlsVersion max_version = TlsVersion::Tls13;
};

struct ServerHello {
  Bytes server_random;      ///< 32 bytes
  TlsVersion chosen_version = TlsVersion::Tls13;
  std::uint64_t session_id = 0;
};

/// Derives session keys from the pre-master secret and both randoms.
SessionKeys derive_session_keys(ByteView pre_master, const ClientHello& ch,
                                const ServerHello& sh, std::uint64_t session_id);

/// One encrypted application-data record.
struct TlsRecord {
  std::uint8_t content_type = 23;  ///< 23 = application data
  TlsVersion version = TlsVersion::Tls13;
  std::uint64_t sequence = 0;
  Bytes ciphertext;
  Bytes mac;  ///< 16-byte truncated HMAC

  Bytes serialize() const;
  static Result<TlsRecord> parse(ByteView wire);
};

/// Encrypts one application record with `keys` at sequence `seq`.
TlsRecord seal_record(const SessionKeys& keys, std::uint64_t seq,
                      ByteView plaintext, TlsVersion version);

/// Verifies and decrypts; fails on MAC mismatch or truncation.
Result<Bytes> open_record(const SessionKeys& keys, const TlsRecord& record);

/// A TLS client endpoint with the paper's key-forwarding hook: when the
/// handshake completes, `key_export` (if set) receives the negotiated
/// session keys — this models the one-line OpenSSL modification that
/// forwards keys to the enclave via the management interface.
class TlsClient {
 public:
  using KeyExportHook = std::function<void(const SessionKeys&)>;

  explicit TlsClient(Rng& rng, TlsVersion max_version = TlsVersion::Tls13)
      : rng_(rng), max_version_(max_version) {}

  void set_key_export_hook(KeyExportHook hook) { key_export_ = std::move(hook); }

  ClientHello start_handshake();
  /// Completes the handshake given the server's reply; rejects a server
  /// that "chose" a version above what we offered.
  Status finish_handshake(const ServerHello& server_hello, ByteView pre_master);

  bool established() const { return keys_.has_value(); }
  const SessionKeys& keys() const { return *keys_; }
  TlsVersion negotiated_version() const { return negotiated_version_; }

  /// Encrypts application data as the next record.
  TlsRecord send(ByteView plaintext);
  /// Decrypts a record from the server.
  Result<Bytes> receive(const TlsRecord& record);

 private:
  Rng& rng_;
  TlsVersion max_version_;
  std::optional<ClientHello> hello_;
  std::optional<SessionKeys> keys_;
  TlsVersion negotiated_version_ = TlsVersion::Tls13;
  std::uint64_t send_seq_ = 0;
  KeyExportHook key_export_;
};

/// A TLS server endpoint (the web servers in the evaluation).
class TlsServer {
 public:
  /// `min_version` models server-side downgrade protection.
  explicit TlsServer(Rng& rng, TlsVersion min_version = TlsVersion::Tls12)
      : rng_(rng), min_version_(min_version) {}

  /// Responds to a ClientHello, negotiating the highest mutual version;
  /// fails when the client's maximum is below our minimum.
  Result<ServerHello> accept(const ClientHello& client_hello, ByteView pre_master);

  bool established() const { return keys_.has_value(); }
  const SessionKeys& keys() const { return *keys_; }

  TlsRecord send(ByteView plaintext);
  Result<Bytes> receive(const TlsRecord& record);

 private:
  Rng& rng_;
  TlsVersion min_version_;
  std::optional<SessionKeys> keys_;
  TlsVersion negotiated_version_ = TlsVersion::Tls13;
  std::uint64_t send_seq_ = 1'000'000'000;  ///< disjoint from client seqs
  std::uint64_t next_session_id_ = 1;
};

}  // namespace endbox::tls
