// Tunnel-level fragmentation (the untrusted "Fragmentation,
// Encapsulation" stage of Fig 3): application writes larger than the
// link MTU are split across multiple data messages and reassembled at
// the peer before re-entering the IP layer.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "vpn/wire.hpp"

namespace endbox::vpn {

/// Splits `payload` into chunks of at most `mtu` bytes (at least one).
std::vector<Bytes> fragment_payload(ByteView payload, std::size_t mtu);

/// Reassembles fragment groups; tolerates interleaving across groups
/// and duplicate fragments. Incomplete groups older than `max_groups`
/// generations are evicted (loss tolerance).
class Reassembler {
 public:
  explicit Reassembler(std::size_t max_groups = 64) : max_groups_(max_groups) {}

  /// Feeds one fragment; returns the whole payload when the group
  /// completes, nullopt otherwise.
  std::optional<Bytes> add(const FragmentHeader& frag, Bytes payload);

  std::size_t pending_groups() const { return groups_.size(); }
  std::uint64_t evicted() const { return evicted_; }

 private:
  struct Group {
    std::vector<std::optional<Bytes>> parts;
    std::size_t received = 0;
    std::uint64_t generation = 0;
  };
  void evict_if_needed();

  std::size_t max_groups_;
  std::map<std::uint32_t, Group> groups_;
  std::uint64_t generation_ = 0;
  std::uint64_t evicted_ = 0;
};

}  // namespace endbox::vpn
