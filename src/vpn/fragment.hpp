// Tunnel-level fragmentation (the untrusted "Fragmentation,
// Encapsulation" stage of Fig 3): application writes larger than the
// link MTU are split across multiple data messages and reassembled at
// the peer before re-entering the IP layer.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "net/packet_pool.hpp"
#include "sim/clock.hpp"
#include "vpn/wire.hpp"

namespace endbox::vpn {

/// Splits `payload` into chunks of at most `mtu` bytes (at least one).
std::vector<Bytes> fragment_payload(ByteView payload, std::size_t mtu);

/// Number of chunks fragment_payload would produce (allocation-free
/// callers slice the payload with subspans instead of materialising
/// the chunk vector).
inline std::size_t fragment_count(std::size_t payload_len, std::size_t mtu) {
  if (mtu == 0) mtu = 1;  // matches fragment_payload's degenerate-MTU guard
  return payload_len == 0 ? 1 : (payload_len + mtu - 1) / mtu;
}

/// Shared seal-loop core: slices `payload` exactly as fragment_payload
/// would (without materialising the chunks), numbers the fragment
/// headers from `next_packet_id`, and invokes `fn(frag, slice)` per
/// fragment. Returns the fragment count.
template <typename Fn>
std::size_t for_each_fragment(ByteView payload, std::size_t mtu,
                              std::uint64_t& next_packet_id,
                              std::uint32_t frag_id, Fn&& fn) {
  if (mtu == 0) mtu = 1;
  std::size_t count = fragment_count(payload.size(), mtu);
  for (std::size_t i = 0; i < count; ++i) {
    FragmentHeader frag;
    frag.packet_id = next_packet_id++;
    frag.frag_id = frag_id;
    frag.index = static_cast<std::uint16_t>(i);
    frag.count = static_cast<std::uint16_t>(count);
    fn(frag,
       payload.subspan(i * mtu, std::min(mtu, payload.size() - i * mtu)));
  }
  return count;
}

/// Reassembles fragment groups; tolerates interleaving across groups
/// and duplicate fragments. When more than `max_groups` groups are
/// pending, the *oldest* incomplete group is evicted in O(1): groups
/// are threaded onto an intrusive FIFO (doubly-linked by frag id, in
/// insertion order), so a fragment flood pays constant work per
/// eviction instead of the old full-scan's O(n²).
///
/// With a `net::PacketPool` attached, part buffers and the reassembled
/// whole cycle through the pool and erased map nodes are cached for
/// reuse, so steady-state multi-fragment traffic performs no heap
/// allocation (callers release the returned whole back into the same
/// pool once consumed).
///
/// Besides the count cap, groups can age out: with a horizon set,
/// add() first expires every group born more than `horizon` ago — the
/// FIFO is insertion-ordered, so age expiry is the same O(1) head pops
/// as capacity eviction, and a dead session's incomplete groups cannot
/// outlive the horizon just because the table stays under capacity.
class Reassembler {
 public:
  explicit Reassembler(std::size_t max_groups = 64,
                       net::PacketPool* pool = nullptr)
      : max_groups_(max_groups), pool_(pool) {}

  /// Attaches the buffer pool part/whole buffers recycle through.
  void set_pool(net::PacketPool* pool) { pool_ = pool; }

  /// Sets the age horizon for incomplete groups (0 disables).
  void set_horizon(sim::Time horizon) { horizon_ = horizon; }

  /// Feeds one fragment; returns the whole payload when the group
  /// completes, nullopt otherwise. `now` stamps new groups and drives
  /// the age horizon; callers without a clock may omit it (the count
  /// cap still applies).
  std::optional<Bytes> add(const FragmentHeader& frag, Bytes payload,
                           sim::Time now = 0);

  /// Expires every incomplete group older than the horizon at `now`.
  /// Returns the number dropped (also counted in expired()).
  std::size_t expire_stale(sim::Time now);

  /// Drops every pending group, recycling held buffers — a re-key must
  /// not let fragments of the old session complete under the new one.
  void clear();

  std::size_t pending_groups() const { return groups_.size(); }
  std::uint64_t evicted() const { return evicted_; }
  std::uint64_t expired() const { return expired_; }

 private:
  struct Group {
    std::vector<std::optional<Bytes>> parts;
    std::size_t received = 0;
    sim::Time born = 0;
    // Intrusive FIFO neighbours (frag ids), in insertion order.
    std::optional<std::uint32_t> prev;
    std::optional<std::uint32_t> next;
  };
  using GroupMap = std::unordered_map<std::uint32_t, Group>;

  GroupMap::iterator emplace_group(std::uint32_t frag_id);
  void fifo_push_back(std::uint32_t frag_id, Group& group);
  void fifo_unlink(const Group& group);
  /// Recycles part buffers, unlinks and erases the group, caching its
  /// map node (and parts capacity) for the next insertion.
  void release_group(GroupMap::iterator it);
  void evict_if_needed();
  void recycle(Bytes&& buffer) {
    if (pool_) pool_->release_bytes(std::move(buffer));
  }

  std::size_t max_groups_;
  sim::Time horizon_ = 0;
  net::PacketPool* pool_ = nullptr;
  GroupMap groups_;
  std::vector<GroupMap::node_type> node_cache_;
  std::optional<std::uint32_t> fifo_head_;
  std::optional<std::uint32_t> fifo_tail_;
  std::uint64_t evicted_ = 0;
  std::uint64_t expired_ = 0;
};

}  // namespace endbox::vpn
