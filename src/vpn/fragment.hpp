// Tunnel-level fragmentation (the untrusted "Fragmentation,
// Encapsulation" stage of Fig 3): application writes larger than the
// link MTU are split across multiple data messages and reassembled at
// the peer before re-entering the IP layer.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "vpn/wire.hpp"

namespace endbox::vpn {

/// Splits `payload` into chunks of at most `mtu` bytes (at least one).
std::vector<Bytes> fragment_payload(ByteView payload, std::size_t mtu);

/// Number of chunks fragment_payload would produce (allocation-free
/// callers slice the payload with subspans instead of materialising
/// the chunk vector).
inline std::size_t fragment_count(std::size_t payload_len, std::size_t mtu) {
  if (mtu == 0) mtu = 1;  // matches fragment_payload's degenerate-MTU guard
  return payload_len == 0 ? 1 : (payload_len + mtu - 1) / mtu;
}

/// Shared seal-loop core: slices `payload` exactly as fragment_payload
/// would (without materialising the chunks), numbers the fragment
/// headers from `next_packet_id`, and invokes `fn(frag, slice)` per
/// fragment. Returns the fragment count.
template <typename Fn>
std::size_t for_each_fragment(ByteView payload, std::size_t mtu,
                              std::uint64_t& next_packet_id,
                              std::uint32_t frag_id, Fn&& fn) {
  if (mtu == 0) mtu = 1;
  std::size_t count = fragment_count(payload.size(), mtu);
  for (std::size_t i = 0; i < count; ++i) {
    FragmentHeader frag;
    frag.packet_id = next_packet_id++;
    frag.frag_id = frag_id;
    frag.index = static_cast<std::uint16_t>(i);
    frag.count = static_cast<std::uint16_t>(count);
    fn(frag,
       payload.subspan(i * mtu, std::min(mtu, payload.size() - i * mtu)));
  }
  return count;
}

/// Reassembles fragment groups; tolerates interleaving across groups
/// and duplicate fragments. Incomplete groups older than `max_groups`
/// generations are evicted (loss tolerance).
class Reassembler {
 public:
  explicit Reassembler(std::size_t max_groups = 64) : max_groups_(max_groups) {}

  /// Feeds one fragment; returns the whole payload when the group
  /// completes, nullopt otherwise.
  std::optional<Bytes> add(const FragmentHeader& frag, Bytes payload);

  std::size_t pending_groups() const { return groups_.size(); }
  std::uint64_t evicted() const { return evicted_; }

 private:
  struct Group {
    std::vector<std::optional<Bytes>> parts;
    std::size_t received = 0;
    std::uint64_t generation = 0;
  };
  void evict_if_needed();

  std::size_t max_groups_;
  std::map<std::uint32_t, Group> groups_;
  std::uint64_t generation_ = 0;
  std::uint64_t evicted_ = 0;
};

}  // namespace endbox::vpn
