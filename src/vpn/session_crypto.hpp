// Session key derivation and data-channel seal/open.
//
// Both tunnel endpoints derive {enc, mac} keys from the handshake seed
// and nonces. Data bodies are encrypt-then-MAC (AES-128-CBC + HMAC) or,
// in the ISP scenario's integrity-only mode (section IV-A), plaintext +
// HMAC. Both modes authenticate the fragment header, so flagged QoS
// bytes and packet ids cannot be forged.
#pragma once

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "vpn/wire.hpp"

namespace endbox::vpn {

struct SessionKeys {
  Bytes enc_key;  ///< 16 bytes
  Bytes mac_key;  ///< 32 bytes
};

/// Derives direction-shared session keys from the handshake material.
SessionKeys derive_vpn_keys(std::uint64_t seed, ByteView client_nonce,
                            ByteView server_nonce);

/// Builds a Data (encrypted) body.
Bytes seal_data_body(const SessionKeys& keys, const FragmentHeader& frag,
                     ByteView payload, Rng& rng);
/// Builds a DataIntegrityOnly body.
Bytes seal_integrity_body(const SessionKeys& keys, const FragmentHeader& frag,
                          ByteView payload);

struct OpenedBody {
  FragmentHeader frag;
  Bytes payload;
};

/// Verifies and decrypts a Data body.
Result<OpenedBody> open_data_body(const SessionKeys& keys, ByteView body);
/// Verifies a DataIntegrityOnly body.
Result<OpenedBody> open_integrity_body(const SessionKeys& keys, ByteView body);

/// Ping bodies (control channel).
Bytes seal_ping_body(const SessionKeys& keys, const PingInfo& info);
Result<PingInfo> open_ping_body(const SessionKeys& keys, ByteView body);

}  // namespace endbox::vpn
