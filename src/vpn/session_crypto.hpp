// Session key derivation and data-channel seal/open.
//
// Both tunnel endpoints derive {enc, mac} keys from the handshake seed
// and nonces. Data bodies are encrypt-then-MAC (AES-128-CBC + HMAC) or,
// in the ISP scenario's integrity-only mode (section IV-A), plaintext +
// HMAC. Both modes authenticate the fragment header, so flagged QoS
// bytes and packet ids cannot be forged.
//
// The seal/open fast path is allocation-free in steady state: sealing
// writes into a caller-provided reusable WireBuffer (payload encrypted
// in place, headers prepended into headroom, MAC computed incrementally
// from the session's precomputed HMAC state), and opening by rvalue
// decrypts in place and hands the payload back inside the same buffer.
#pragma once

#include <optional>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/wire_buffer.hpp"
#include "crypto/aes.hpp"
#include "crypto/hmac.hpp"
#include "vpn/wire.hpp"

namespace endbox::vpn {

/// Fixed body geometry: [frag:16][iv:16][ct][mac:32] (encrypted) or
/// [frag:16][payload][mac:32] (integrity-only).
inline constexpr std::size_t kMacSize = 32;
inline constexpr std::size_t kFragHeaderSize = 16;  // 8 + 4 + 2 + 2
/// Headroom a WireBuffer needs for seal_*_body plus a prepended
/// 5-byte wire-message header.
inline constexpr std::size_t kSealHeadroom = 5 + kFragHeaderSize + 16;

struct SessionKeys {
  SessionKeys() = default;
  SessionKeys(Bytes enc, Bytes mac)
      : enc_key(std::move(enc)), mac_key(std::move(mac)) {}

  Bytes enc_key;  ///< 16 bytes
  Bytes mac_key;  ///< 32 bytes

  /// Per-session crypto state, derived from the key bytes on first use
  /// (eagerly by derive_vpn_keys): the AES key schedule and the HMAC
  /// ipad/opad block states are computed once instead of per packet.
  const crypto::Aes128& aes() const;
  const crypto::HmacKey& hmac() const;

  // Lazily-built caches for the accessors above; cleared copies are
  // rebuilt on demand, and tests that aggregate-initialise the key
  // bytes get them transparently.
  mutable std::optional<crypto::Aes128> aes_cache;
  mutable std::optional<crypto::HmacKey> hmac_cache;
};

/// Derives direction-shared session keys from the handshake material.
SessionKeys derive_vpn_keys(std::uint64_t seed, ByteView client_nonce,
                            ByteView server_nonce);

/// Seals a Data (encrypted) body into `out` (reset with kSealHeadroom;
/// steady-state reuse of the same buffer performs no heap allocation).
void seal_data_body(const SessionKeys& keys, const FragmentHeader& frag,
                    ByteView payload, Rng& rng, WireBuffer& out);
/// Seals a DataIntegrityOnly body into `out`.
void seal_integrity_body(const SessionKeys& keys, const FragmentHeader& frag,
                         ByteView payload, WireBuffer& out);

/// Convenience variants returning fresh Bytes (one allocation).
Bytes seal_data_body(const SessionKeys& keys, const FragmentHeader& frag,
                     ByteView payload, Rng& rng);
Bytes seal_integrity_body(const SessionKeys& keys, const FragmentHeader& frag,
                          ByteView payload);

struct OpenedBody {
  FragmentHeader frag;
  Bytes payload;
};

/// Verifies and decrypts a Data body, consuming `body`: decryption
/// happens in place and the payload is moved out of the authenticated
/// prefix, so the steady-state open performs no heap allocation.
Result<OpenedBody> open_data_body(const SessionKeys& keys, Bytes&& body);
/// Verifies a DataIntegrityOnly body, consuming `body` (payload moved
/// out of the authenticated prefix, no copy).
Result<OpenedBody> open_integrity_body(const SessionKeys& keys, Bytes&& body);

/// Copying variants for callers that only hold a view.
Result<OpenedBody> open_data_body(const SessionKeys& keys, ByteView body);
Result<OpenedBody> open_integrity_body(const SessionKeys& keys, ByteView body);

/// Ping bodies (control channel).
Bytes seal_ping_body(const SessionKeys& keys, const PingInfo& info);
/// Seals a ping body into `out` (reset with kSealHeadroom so a wire
/// header can be prepended); steady-state reuse allocates nothing.
void seal_ping_body(const SessionKeys& keys, const PingInfo& info,
                    WireBuffer& out);
Result<PingInfo> open_ping_body(const SessionKeys& keys, ByteView body);

}  // namespace endbox::vpn
