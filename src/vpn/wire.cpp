#include "vpn/wire.hpp"

namespace endbox::vpn {

Bytes WireMessage::serialize() const {
  Bytes out;
  serialize_into(out);
  return out;
}

void WireMessage::serialize_into(Bytes& out) const {
  out.clear();
  out.reserve(kWireHeaderSize + body.size());
  out.push_back(static_cast<std::uint8_t>(type));
  put_u32(out, session_id);
  append(out, body);
}

Result<WireMessage> WireMessage::parse(ByteView wire) {
  if (wire.size() < kWireHeaderSize) return err("VPN message: truncated header");
  WireMessage msg;
  std::uint8_t type = wire[0];
  if (type < 1 || type > 5) return err("VPN message: unknown type");
  msg.type = static_cast<MsgType>(type);
  msg.session_id = get_u32(wire.data() + 1);
  msg.body.assign(wire.begin() + kWireHeaderSize, wire.end());
  return msg;
}

}  // namespace endbox::vpn
