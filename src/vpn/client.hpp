// VPN client session (the tunnel endpoint that EndBox moves inside the
// enclave). Mechanism only: the EndBox client wraps every call here in
// an ecall and charges the perf model; this class implements the
// protocol state machine.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ca/certificate.hpp"
#include "common/rng.hpp"
#include "vpn/fragment.hpp"
#include "vpn/replay.hpp"
#include "vpn/session_crypto.hpp"
#include "vpn/wire.hpp"

namespace endbox::vpn {

struct VpnClientConfig {
  std::uint16_t min_version = kVersionTls12;  ///< enclave-side downgrade floor
  bool encrypt_data = true;   ///< false = ISP integrity-only mode (section IV-A)
  std::size_t mtu = 9000;     ///< tunnel MTU for fragmentation
  std::uint32_t config_version = 1;  ///< middlebox config currently applied
};

class VpnClientSession {
 public:
  /// `certificate` and `enclave_key` come from the provisioning flow
  /// (unattested clients have no certificate and cannot connect);
  /// `server_key` is the pinned VPN server public key.
  VpnClientSession(Rng& rng, ca::Certificate certificate,
                   crypto::RsaKeyPair enclave_key,
                   crypto::RsaPublicKey server_key, VpnClientConfig config = {});

  // ---- Handshake -----------------------------------------------------
  WireMessage create_handshake_init(std::uint16_t proposed_version = kVersionTls13);
  Status process_handshake_reply(const WireMessage& reply);
  bool established() const { return keys_.has_value(); }
  std::uint32_t session_id() const { return session_id_; }

  // ---- Data path -------------------------------------------------------
  /// Seals one IP packet into one or more wire messages (fragmenting at
  /// the MTU). Throws if not established.
  std::vector<WireMessage> seal_packet(ByteView ip_packet);
  /// Seals one IP packet directly into complete wire frames
  /// ([type][session_id][sealed body]), writing through the per-session
  /// scratch buffer. `frames` is resized to the fragment count and each
  /// element's capacity is reused, so steady-state calls with stable
  /// packet sizes perform no heap allocation.
  void seal_packet_wire(ByteView ip_packet, std::vector<Bytes>& frames);
  /// Batch-friendly variant: writes this packet's frames into
  /// `frames[at..]`, growing the vector only when the burst needs more
  /// slots and reusing existing slots' capacity. Returns the index one
  /// past the last frame written, so callers chain packets:
  /// `n = seal_packet_wire_at(p0, frames, 0); n = seal_packet_wire_at(p1, frames, n);`
  std::size_t seal_packet_wire_at(ByteView ip_packet, std::vector<Bytes>& frames,
                                  std::size_t at);
  /// Opens a data message from the server; returns the reassembled IP
  /// packet when a fragment group completes, nullopt while pending.
  Result<std::optional<Bytes>> open_data(const WireMessage& msg);
  /// Opens a complete data frame ([type][session_id][body]) without
  /// materialising a WireMessage: the body is copied into
  /// `body_scratch` (capacity reused) and decrypted in place, and the
  /// returned payload occupies that same buffer — recycle it through a
  /// pool and the steady-state open allocates nothing.
  Result<std::optional<Bytes>> open_data_frame(ByteView frame, Bytes&& body_scratch);

  // ---- Control channel --------------------------------------------------
  WireMessage create_ping();
  /// Seals a ping directly into a complete wire frame through the
  /// per-session scratch; reusing `frame` makes the control path
  /// allocation-free in steady state.
  void create_ping_wire(Bytes& frame);
  Result<PingInfo> process_ping(const WireMessage& msg);

  void set_config_version(std::uint32_t version) { config_.config_version = version; }
  std::uint32_t config_version() const { return config_.config_version; }
  bool encrypt_data() const { return config_.encrypt_data; }

  /// Attaches the buffer pool fragment reassembly recycles through
  /// (part buffers and reassembled wholes), making multi-fragment
  /// ingress allocation-free in steady state. The pool must outlive the
  /// session.
  void set_buffer_pool(net::PacketPool* pool) { reassembler_.set_pool(pool); }

  // ---- Stats ---------------------------------------------------------
  std::uint64_t packets_sealed() const { return packets_sealed_; }
  std::uint64_t packets_opened() const { return packets_opened_; }
  std::uint64_t auth_failures() const { return auth_failures_; }
  std::uint64_t replays_rejected() const { return replay_.replays_rejected(); }
  std::uint16_t negotiated_version() const { return negotiated_version_; }

 private:
  MsgType seal_fragment(const FragmentHeader& frag, ByteView slice,
                        WireBuffer& scratch);
  /// Shared open core: verify/decrypt `body` in place, replay-check,
  /// reassemble. `body` is consumed (its buffer becomes the payload).
  Result<std::optional<Bytes>> open_body(MsgType type, Bytes&& body);

  Rng& rng_;
  ca::Certificate certificate_;
  crypto::RsaKeyPair enclave_key_;
  crypto::RsaPublicKey server_key_;
  VpnClientConfig config_;

  std::optional<Bytes> client_nonce_;
  std::optional<SessionKeys> keys_;
  std::uint32_t session_id_ = 0;
  std::uint16_t proposed_version_ = kVersionTls13;
  std::uint16_t negotiated_version_ = 0;

  std::uint64_t next_packet_id_ = 1;
  std::uint32_t next_frag_id_ = 1;
  std::uint64_t next_ping_seq_ = 1;
  ReplayWindow replay_;
  Reassembler reassembler_;
  WireBuffer seal_scratch_;  ///< reused by the seal fast path

  std::uint64_t packets_sealed_ = 0;
  std::uint64_t packets_opened_ = 0;
  std::uint64_t auth_failures_ = 0;
};

}  // namespace endbox::vpn
