#include "vpn/client.hpp"

#include <array>
#include <cstring>
#include <stdexcept>

#include "crypto/hmac.hpp"

namespace endbox::vpn {

VpnClientSession::VpnClientSession(Rng& rng, ca::Certificate certificate,
                                   crypto::RsaKeyPair enclave_key,
                                   crypto::RsaPublicKey server_key,
                                   VpnClientConfig config)
    : rng_(rng),
      certificate_(std::move(certificate)),
      enclave_key_(enclave_key),
      server_key_(server_key),
      config_(config) {}

WireMessage VpnClientSession::create_handshake_init(std::uint16_t proposed_version) {
  proposed_version_ = proposed_version;
  client_nonce_ = rng_.bytes(16);
  // Starting (or restarting) a handshake invalidates the previous
  // session: keys go (so a stale duplicate of an old reply can no
  // longer complete anything), and the replay window and pending
  // fragments reset — the new session's packet ids restart from 1 and
  // old fragments must never mix into new packets.
  keys_.reset();
  session_id_ = 0;
  negotiated_version_ = 0;
  replay_ = ReplayWindow{};
  reassembler_.clear();

  WireMessage msg;
  msg.type = MsgType::HandshakeInit;
  msg.session_id = 0;  // not yet assigned
  Bytes cert = certificate_.serialize();
  msg.body.reserve(2 + 4 + 16 + 2 + cert.size());
  put_u16(msg.body, proposed_version);
  put_u32(msg.body, config_.config_version);
  append(msg.body, *client_nonce_);
  put_u16(msg.body, static_cast<std::uint16_t>(cert.size()));
  append(msg.body, cert);
  return msg;
}

Status VpnClientSession::process_handshake_reply(const WireMessage& reply) {
  if (reply.type != MsgType::HandshakeReply) return err("not a handshake reply");
  if (!client_nonce_) return err("handshake not started");
  // Idempotent completion: a duplicated delivery of the reply we
  // already accepted must not re-derive keys or reset the replay
  // window (the network duplicates frames; the reliability layer
  // retransmits). Success with no state change.
  if (keys_ && reply.session_id == session_id_) return {};
  try {
    ByteReader r(reply.body);
    std::uint16_t chosen_version = r.u16();
    Bytes server_nonce = r.take(16);
    Bytes encrypted_seed = r.take(8);
    Bytes signature = r.take(8);

    // Server authentication: signature over the transcript with the
    // pinned server key (prevents MITM replies). The transcript layout
    // is fixed-size ([version:2][session_id:4][client_nonce:16]
    // [server_nonce:16][encrypted_seed:8]), so it assembles on the
    // stack. The session id is covered, so a flipped wire header
    // cannot bind us to a different session.
    std::array<std::uint8_t, 2 + 4 + 16 + 16 + 8> transcript;
    put_u16(transcript.data(), chosen_version);
    put_u32(transcript.data() + 2, reply.session_id);
    std::memcpy(transcript.data() + 6, client_nonce_->data(), 16);
    std::memcpy(transcript.data() + 22, server_nonce.data(), 16);
    std::memcpy(transcript.data() + 38, encrypted_seed.data(), 8);
    if (!crypto::rsa_verify(server_key_, transcript, signature))
      return err("handshake reply signature invalid");

    // The paper's client-side downgrade check runs inside the enclave:
    // a malicious host cannot strip it.
    if (chosen_version < config_.min_version)
      return err("server negotiated version below enclave minimum");
    if (chosen_version > proposed_version_)
      return err("server chose version above our proposal");

    std::uint64_t seed = crypto::rsa_decrypt(enclave_key_, encrypted_seed);
    keys_ = derive_vpn_keys(seed, *client_nonce_, server_nonce);
    session_id_ = reply.session_id;
    negotiated_version_ = chosen_version;
    return {};
  } catch (const std::out_of_range&) {
    return err("handshake reply truncated");
  }
}

// Seals one fragment slice into `scratch`: [frag][iv][ct][mac] or the
// integrity-only layout, per the session config.
MsgType VpnClientSession::seal_fragment(const FragmentHeader& frag,
                                        ByteView slice, WireBuffer& scratch) {
  if (config_.encrypt_data) {
    seal_data_body(*keys_, frag, slice, rng_, scratch);
    return MsgType::Data;
  }
  seal_integrity_body(*keys_, frag, slice, scratch);
  return MsgType::DataIntegrityOnly;
}

std::vector<WireMessage> VpnClientSession::seal_packet(ByteView ip_packet) {
  if (!keys_) throw std::logic_error("VpnClientSession: not established");
  std::vector<WireMessage> messages;
  messages.reserve(fragment_count(ip_packet.size(), config_.mtu));
  for_each_fragment(
      ip_packet, config_.mtu, next_packet_id_, next_frag_id_++,
      [&](const FragmentHeader& frag, ByteView slice) {
        WireMessage msg;
        msg.session_id = session_id_;
        msg.type = seal_fragment(frag, slice, seal_scratch_);
        msg.body.assign(seal_scratch_.view().begin(), seal_scratch_.view().end());
        messages.push_back(std::move(msg));
      });
  ++packets_sealed_;
  return messages;
}

void VpnClientSession::seal_packet_wire(ByteView ip_packet,
                                        std::vector<Bytes>& frames) {
  frames.resize(fragment_count(ip_packet.size(), config_.mtu));
  seal_packet_wire_at(ip_packet, frames, 0);
}

std::size_t VpnClientSession::seal_packet_wire_at(ByteView ip_packet,
                                                  std::vector<Bytes>& frames,
                                                  std::size_t at) {
  if (!keys_) throw std::logic_error("VpnClientSession: not established");
  std::size_t count = for_each_fragment(
      ip_packet, config_.mtu, next_packet_id_, next_frag_id_++,
      [&](const FragmentHeader& frag, ByteView slice) {
        MsgType type = seal_fragment(frag, slice, seal_scratch_);
        // The wire header goes into the headroom the seal left
        // reserved, so the frame is contiguous without assembly copies.
        std::uint8_t* header = seal_scratch_.prepend(kWireHeaderSize);
        header[0] = static_cast<std::uint8_t>(type);
        put_u32(header + 1, session_id_);
        std::size_t slot = at + frag.index;
        if (frames.size() <= slot) frames.emplace_back();
        frames[slot].assign(seal_scratch_.view().begin(),
                            seal_scratch_.view().end());
      });
  ++packets_sealed_;
  return at + count;
}

Result<std::optional<Bytes>> VpnClientSession::open_body(MsgType type,
                                                         Bytes&& body) {
  if (!keys_) return err("not established");
  Result<OpenedBody> opened = type == MsgType::Data
                                  ? open_data_body(*keys_, std::move(body))
                                  : open_integrity_body(*keys_, std::move(body));
  if (!opened.ok()) {
    ++auth_failures_;
    return err(opened.error());
  }
  if (!replay_.accept(opened->frag.packet_id)) return err("replayed packet");
  auto whole = reassembler_.add(opened->frag, std::move(opened->payload));
  if (!whole) return std::optional<Bytes>{};
  ++packets_opened_;
  return std::optional<Bytes>{std::move(*whole)};
}

Result<std::optional<Bytes>> VpnClientSession::open_data(const WireMessage& msg) {
  Bytes body(msg.body.begin(), msg.body.end());
  return open_body(msg.type, std::move(body));
}

Result<std::optional<Bytes>> VpnClientSession::open_data_frame(
    ByteView frame, Bytes&& body_scratch) {
  if (frame.size() < kWireHeaderSize) return err("data frame: truncated header");
  auto type = static_cast<MsgType>(frame[0]);
  if (type != MsgType::Data && type != MsgType::DataIntegrityOnly)
    return err("data frame: not a data message");
  body_scratch.assign(frame.begin() + kWireHeaderSize, frame.end());
  return open_body(type, std::move(body_scratch));
}

WireMessage VpnClientSession::create_ping() {
  if (!keys_) throw std::logic_error("VpnClientSession: not established");
  PingInfo info;
  info.seq = next_ping_seq_++;
  info.config_version = config_.config_version;
  info.grace_period_secs = 0;  // clients don't announce grace periods
  WireMessage msg;
  msg.type = MsgType::Ping;
  msg.session_id = session_id_;
  msg.body = seal_ping_body(*keys_, info);
  return msg;
}

void VpnClientSession::create_ping_wire(Bytes& frame) {
  if (!keys_) throw std::logic_error("VpnClientSession: not established");
  PingInfo info;
  info.seq = next_ping_seq_++;
  info.config_version = config_.config_version;
  info.grace_period_secs = 0;
  // Same scratch discipline as the data path: body sealed into the
  // session buffer, wire header prepended into its headroom.
  seal_ping_body(*keys_, info, seal_scratch_);
  std::uint8_t* header = seal_scratch_.prepend(kWireHeaderSize);
  header[0] = static_cast<std::uint8_t>(MsgType::Ping);
  put_u32(header + 1, session_id_);
  frame.assign(seal_scratch_.view().begin(), seal_scratch_.view().end());
}

Result<PingInfo> VpnClientSession::process_ping(const WireMessage& msg) {
  if (!keys_) return err("not established");
  auto info = open_ping_body(*keys_, msg.body);
  if (!info.ok()) {
    ++auth_failures_;  // crafted ping from outside the enclave
    return err(info.error());
  }
  return info;
}

}  // namespace endbox::vpn
