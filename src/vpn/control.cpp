#include "vpn/control.hpp"

#include <algorithm>

namespace endbox::vpn {

ClientControlPlane::ClientControlPlane(ControlPlaneConfig config, Hooks hooks)
    : config_(config), hooks_(std::move(hooks)), jitter_rng_(config.seed) {}

sim::Time ClientControlPlane::retry_delay(unsigned attempt) {
  double delay = static_cast<double>(config_.retry_initial);
  for (unsigned i = 1; i < attempt; ++i) {
    delay *= config_.retry_backoff;
    if (delay >= static_cast<double>(config_.retry_max)) break;
  }
  delay = std::min(delay, static_cast<double>(config_.retry_max));
  if (config_.retry_jitter > 0) {
    double swing = config_.retry_jitter * (2.0 * jitter_rng_.uniform01() - 1.0);
    delay *= 1.0 + swing;
  }
  return std::max<sim::Time>(1, static_cast<sim::Time>(delay));
}

void ClientControlPlane::arm(TimerKind kind, sim::Time deadline) {
  std::uint64_t generation =
      kind == TimerKind::Retry ? retry_gen_ : keepalive_gen_;
  wheel_.schedule(cookie_of(kind, generation), deadline);
}

Status ClientControlPlane::begin_cycle(sim::Time now, bool rekey) {
  auto init = hooks_.make_init();
  if (!init.ok()) {
    fail(now, init.error());
    return err(init.error());
  }
  init_wire_ = std::move(*init);
  state_ = State::Connecting;
  attempt_ = 1;
  auth_failure_streak_ = 0;
  ++handshakes_started_;
  if (rekey) ++rehandshakes_;
  // Orphan whatever was pending; the new cycle owns the schedule.
  ++retry_gen_;
  ++keepalive_gen_;
  hooks_.send(init_wire_, now);
  arm(TimerKind::Retry, now + retry_delay(attempt_));
  return {};
}

Status ClientControlPlane::start(sim::Time now) {
  return begin_cycle(now, /*rekey=*/false);
}

void ClientControlPlane::fail(sim::Time now, const std::string& why) {
  state_ = State::Failed;
  last_error_ = why;
  ++connect_failures_;
  ++retry_gen_;
  ++keepalive_gen_;
  if (hooks_.on_failed) hooks_.on_failed(now, why);
}

void ClientControlPlane::advance(sim::Time now) {
  wheel_.advance(now,
                 [&](std::uint64_t cookie, sim::Time) { fire(cookie, now); });
}

void ClientControlPlane::fire(std::uint64_t cookie, sim::Time now) {
  auto kind = static_cast<TimerKind>(cookie >> 56);
  std::uint64_t generation = cookie & ((std::uint64_t{1} << 56) - 1);
  if (kind == TimerKind::Retry) {
    if (generation != retry_gen_ || state_ != State::Connecting) return;
    if (attempt_ >= config_.max_attempts) {
      fail(now, "handshake: retries exhausted");
      return;
    }
    // Retransmit the SAME init bytes: the server's dedupe cache then
    // answers every copy with the same session (no double admission).
    ++attempt_;
    ++handshake_retransmits_;
    hooks_.send(init_wire_, now);
    arm(TimerKind::Retry, now + retry_delay(attempt_));
    return;
  }
  if (kind == TimerKind::Keepalive) {
    if (generation != keepalive_gen_ || state_ != State::Established) return;
    if (now >= last_peer_activity_ &&
        now - last_peer_activity_ >= dead_interval()) {
      // Peer silent across the whole detection window: assume it
      // restarted or the path died, and re-key from scratch.
      ++dead_peer_events_;
      begin_cycle(now, /*rekey=*/true);
      return;
    }
    if (hooks_.make_ping) {
      if (hooks_.make_ping(ping_scratch_).ok()) {
        ++pings_sent_;
        hooks_.send(ping_scratch_, now);
      }
    }
    arm(TimerKind::Keepalive, now + config_.keepalive_interval);
  }
}

Status ClientControlPlane::deliver(ByteView wire, sim::Time now) {
  if (wire.empty()) return err("control: empty frame");
  auto type = static_cast<MsgType>(wire[0]);
  if (type == MsgType::HandshakeReply) {
    Status accepted = hooks_.on_reply(wire);
    if (!accepted.ok()) {
      // Corrupt or stale reply: no state change, the retry timer keeps
      // the cycle alive.
      ++replies_rejected_;
      return accepted;
    }
    if (state_ == State::Connecting) {
      state_ = State::Established;
      ++retry_gen_;  // the pending retransmit is now moot
      note_peer_activity(now);
      if (config_.keepalive_interval > 0) {
        ++keepalive_gen_;
        arm(TimerKind::Keepalive, now + config_.keepalive_interval);
      }
      if (hooks_.on_established) hooks_.on_established(now);
    }
    return {};
  }
  if (type == MsgType::Ping) {
    if (!hooks_.on_ping) return err("control: no ping handler");
    Status accepted = hooks_.on_ping(wire, now);
    if (accepted.ok()) note_peer_activity(now);
    return accepted;
  }
  return err("control: not a control frame");
}

void ClientControlPlane::note_peer_activity(sim::Time now) {
  last_peer_activity_ = std::max(last_peer_activity_, now);
  auth_failure_streak_ = 0;
}

void ClientControlPlane::note_auth_failure(sim::Time now) {
  if (state_ != State::Established || config_.rehandshake_auth_failures == 0)
    return;
  if (++auth_failure_streak_ >= config_.rehandshake_auth_failures) {
    // Epoch change: everything from the peer fails our MACs, so our
    // keys are for a session the server no longer has. Re-key now
    // rather than waiting out the keepalive window.
    ++dead_peer_events_;
    begin_cycle(now, /*rekey=*/true);
  }
}

}  // namespace endbox::vpn
