// VPN wire format.
//
//   message   := [type:1][session_id:4][body]
//   Data body := [packet_id:8][frag_id:4][index:2][count:2]
//                [iv:16][ciphertext][mac:32]            (encrypted mode)
//   Integ body:= [packet_id:8][frag_id:4][index:2][count:2]
//                [plaintext][mac:32]                    (ISP integrity-only)
//   Ping body := [seq:8][config_version:4][grace_secs:4][mac:32]
//
// MACs are HMAC-SHA-256 over the body prefix plus a direction label,
// keyed with the session MAC key — crafted pings from outside the
// enclave fail authentication (section III-E).
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace endbox::vpn {

/// Protocol version constants (mirroring the TLS versions OpenVPN's
/// control channel negotiates).
inline constexpr std::uint16_t kVersionTls12 = 0x0303;
inline constexpr std::uint16_t kVersionTls13 = 0x0304;

enum class MsgType : std::uint8_t {
  HandshakeInit = 1,
  HandshakeReply = 2,
  Data = 3,
  DataIntegrityOnly = 4,
  Ping = 5,
};

struct WireMessage {
  MsgType type = MsgType::Data;
  std::uint32_t session_id = 0;
  Bytes body;

  Bytes serialize() const;
  /// Serialises into `out` (cleared, reserved to the exact frame size);
  /// reuse of one Bytes never reallocates in steady state.
  void serialize_into(Bytes& out) const;
  static Result<WireMessage> parse(ByteView wire);
};

/// Size of the wire header in front of every message body.
inline constexpr std::size_t kWireHeaderSize = 5;

/// Parsed fields of a ping message (authenticated keep-alive carrying
/// the configuration version and grace period, section III-E).
struct PingInfo {
  std::uint64_t seq = 0;
  std::uint32_t config_version = 0;
  std::uint32_t grace_period_secs = 0;
};

/// Fragment header carried by every data message.
struct FragmentHeader {
  std::uint64_t packet_id = 0;
  std::uint32_t frag_id = 0;
  std::uint16_t index = 0;
  std::uint16_t count = 1;
};

}  // namespace endbox::vpn
