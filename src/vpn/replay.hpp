// Sliding-window replay protection, as OpenVPN implements for its data
// channel (the paper relies on it against traffic replay, section V-A).
#pragma once

#include <cstdint>

namespace endbox::vpn {

/// Accepts each packet id at most once within a 64-id sliding window.
/// Ids older than the window are rejected outright.
class ReplayWindow {
 public:
  /// Returns true iff `packet_id` is fresh; records it as seen.
  bool accept(std::uint64_t packet_id);

  std::uint64_t highest_seen() const { return highest_; }
  std::uint64_t replays_rejected() const { return rejected_; }

 private:
  static constexpr std::uint64_t kWindow = 64;
  std::uint64_t highest_ = 0;
  std::uint64_t bitmap_ = 0;  ///< bit i = (highest_ - i) seen
  bool any_ = false;
  std::uint64_t rejected_ = 0;
};

}  // namespace endbox::vpn
