// VPN server: the single entry point into the managed network (R2).
//
// Accepts handshakes only from clients presenting CA-signed enclave
// certificates, maintains per-session keys/replay windows, and enforces
// configuration-version freshness: after a configurable grace period,
// traffic from clients still running an old middlebox configuration is
// blocked (section III-E).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "ca/certificate.hpp"
#include "common/rng.hpp"
#include "sim/clock.hpp"
#include "vpn/fragment.hpp"
#include "vpn/replay.hpp"
#include "vpn/session_crypto.hpp"
#include "vpn/wire.hpp"

namespace endbox::vpn {

struct VpnServerConfig {
  std::uint16_t min_version = kVersionTls12;  ///< server-side downgrade floor
  bool allow_integrity_only = false;  ///< accept ISP-mode unencrypted data
  std::size_t mtu = 9000;
};

class VpnServer {
 public:
  // Events returned by handle():
  struct HandshakeDone {
    std::uint32_t session_id;
    Bytes reply_wire;  ///< send back to the client
  };
  struct PacketIn {
    std::uint32_t session_id;
    Bytes ip_packet;       ///< fully reassembled
    bool was_encrypted;    ///< false for integrity-only mode
  };
  struct FragmentPending {
    std::uint32_t session_id;
  };
  struct PingIn {
    std::uint32_t session_id;
    PingInfo info;
  };
  using Event = std::variant<HandshakeDone, PacketIn, FragmentPending, PingIn>;

  VpnServer(Rng& rng, crypto::RsaPublicKey ca_key, VpnServerConfig config = {});

  /// Pinned by clients (compiled into enclave binaries alongside the
  /// CA key in a real deployment).
  const crypto::RsaPublicKey& public_key() const { return key_.pub; }

  /// Processes one wire message arriving at time `now`. Errors cover
  /// every rejection: bad certificate, bad MAC, replay, unknown
  /// session, stale configuration after grace expiry, version floor.
  Result<Event> handle(ByteView wire, sim::Time now);

  /// Seals an IP packet towards a client session.
  std::vector<WireMessage> seal_packet(std::uint32_t session_id, ByteView ip_packet);
  /// Seals an IP packet directly into complete wire frames via the
  /// session's scratch buffer (steady-state allocation-free; see
  /// VpnClientSession::seal_packet_wire).
  void seal_packet_wire(std::uint32_t session_id, ByteView ip_packet,
                        std::vector<Bytes>& frames);
  /// Batch-append variant mirroring VpnClientSession::seal_packet_wire_at:
  /// writes this packet's frames at `frames[at..]`, reusing slot
  /// capacity, and returns the index one past the last frame written.
  std::size_t seal_packet_wire_at(std::uint32_t session_id, ByteView ip_packet,
                                  std::vector<Bytes>& frames, std::size_t at);

  // ---- Batched data path (the uplink drains bursts back to back) -----
  /// One opened data frame of a batch; `ip_packet` keeps its buffer
  /// capacity across calls (valid-prefix contract, like the enclave's
  /// EgressBatch::frames).
  struct BatchPacket {
    std::uint32_t session_id = 0;
    bool was_encrypted = true;
    Bytes ip_packet;
  };
  /// Result of open_batch. The caller owns it and passes it back every
  /// burst so the packet buffers are reused.
  struct OpenBatch {
    std::uint32_t complete = 0;    ///< fully reassembled packets
    std::uint32_t pending = 0;     ///< fragments still waiting
    std::uint32_t rejected = 0;    ///< malformed/auth/replay/stale/unknown
    std::size_t packet_count = 0;  ///< valid prefix of `packets`
    std::vector<BatchPacket> packets;
  };

  /// Opens a burst of data frames, mirroring the enclave's ingress
  /// batch: bodies are copied into pooled scratch and decrypted in
  /// place, replay windows advance in arrival order, and completed
  /// packets land in `out.packets[0..packet_count)`. Frames may belong
  /// to different sessions. Unlike the enclave's hardened single-client
  /// interface, a bad frame rejects that frame only — a shared server
  /// keeps serving its other clients. Non-data frames (ping/handshake)
  /// are rejected here; they belong on handle().
  void open_batch(std::span<const Bytes> wires, sim::Time now, OpenBatch& out);

  /// Seals a run of IP packets to one session, appending each packet's
  /// frames at `frames[at..]` with slot-capacity reuse (the batched
  /// counterpart of seal_packet_wire_at). Returns one past the last
  /// frame written.
  std::size_t seal_batch(std::uint32_t session_id,
                         std::span<const ByteView> ip_packets,
                         std::vector<Bytes>& frames, std::size_t at = 0);

  /// Builds the periodic server ping announcing the current config
  /// version and remaining grace (section III-E, step 4).
  WireMessage create_ping(std::uint32_t session_id);

  /// Administrator action (step 2-3): announce `version` with a grace
  /// period; after `now + grace` clients on older versions are blocked.
  void announce_config(std::uint32_t version, std::uint32_t grace_secs,
                       sim::Time now);

  std::uint32_t current_config_version() const { return config_version_; }
  std::size_t session_count() const { return sessions_.size(); }
  bool has_session(std::uint32_t session_id) const {
    return sessions_.count(session_id) > 0;
  }
  /// Last config version a session reported via ping/handshake.
  std::uint32_t session_config_version(std::uint32_t session_id) const;

  // ---- Stats -----------------------------------------------------------
  std::uint64_t auth_failures() const { return auth_failures_; }
  std::uint64_t replays_rejected() const { return replays_rejected_; }
  std::uint64_t stale_config_drops() const { return stale_config_drops_; }
  std::uint64_t handshakes_rejected() const { return handshakes_rejected_; }

 private:
  struct Session {
    SessionKeys keys;
    ReplayWindow replay;
    Reassembler reassembler;
    std::uint32_t config_version = 0;
    std::uint64_t next_packet_id = 1;
    std::uint32_t next_frag_id = 1;
    std::uint64_t next_ping_seq = 1;
    WireBuffer seal_scratch;  ///< reused by the seal fast path
  };

  Result<Event> handle_handshake(const WireMessage& msg);
  Result<Event> handle_data(const WireMessage& msg, sim::Time now);
  Result<Event> handle_ping(const WireMessage& msg);
  Session* find_session(std::uint32_t id);

  Rng& rng_;
  crypto::RsaPublicKey ca_key_;
  VpnServerConfig config_;
  crypto::RsaKeyPair key_;
  std::unordered_map<std::uint32_t, Session> sessions_;
  std::uint32_t next_session_id_ = 1;
  net::PacketPool buffer_pool_;  ///< open_batch scratch + reassembly buffers

  std::uint32_t config_version_ = 1;
  std::uint32_t grace_secs_ = 0;
  sim::Time grace_deadline_ = 0;
  bool grace_active_ = false;

  std::uint64_t auth_failures_ = 0;
  std::uint64_t replays_rejected_ = 0;
  std::uint64_t stale_config_drops_ = 0;
  std::uint64_t handshakes_rejected_ = 0;
};

}  // namespace endbox::vpn
