// VPN server: the single entry point into the managed network (R2).
//
// Accepts handshakes only from clients presenting CA-signed enclave
// certificates, maintains per-session keys/replay windows, and enforces
// configuration-version freshness: after a configurable grace period,
// traffic from clients still running an old middlebox configuration is
// blocked (section III-E).
//
// The data plane is session-sharded (NFOS-style state partitioning,
// mirroring the enclave's RSS flow sharding): sessions are pinned to
// one of N lanes by splitmix64(session_id) % N, and each lane owns its
// sessions, buffer pool, SPSC hand-off ring and data-path statistics.
// open_batch / seal_jobs run the lanes run-to-completion: the caller's
// only serial work is lane dispatch (size/type check, RSS hash, ring
// push); the lane itself looks the session up, decrypts, checks
// replay, reassembles and emits — and results concatenate in lane
// order with NO cross-lane merge. Ordering is therefore guaranteed
// per session only (each session lives on exactly one FIFO lane), not
// across the burst — the run-to-completion contract. The pre-PR
// staged path (caller-side staging loop + k-way arrival-order merge
// by burst_tag) stays callable as open_batch_staged, the reference
// baseline. No mutable state is shared between lanes, so per-session
// order needs no locks. reshard_sessions() changes the lane count at
// runtime without losing replay windows or pending fragment groups —
// the hook an adaptive load controller drives (fed per-lane ring
// depth and busy imbalance so it can split a hot lane).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "ca/certificate.hpp"
#include "click/sharded_router.hpp"
#include "click/spsc_ring.hpp"
#include "common/hash.hpp"
#include "common/lifecycle_table.hpp"
#include "common/rng.hpp"
#include "sim/clock.hpp"
#include "vpn/fragment.hpp"
#include "vpn/replay.hpp"
#include "vpn/session_crypto.hpp"
#include "vpn/wire.hpp"

namespace endbox::vpn {

struct VpnServerConfig {
  std::uint16_t min_version = kVersionTls12;  ///< server-side downgrade floor
  bool allow_integrity_only = false;  ///< accept ISP-mode unencrypted data
  std::size_t mtu = 9000;
  /// Session shards of the server data plane (one worker thread per
  /// shard beyond the first). 1 keeps the single-threaded baseline.
  std::size_t session_shards = 1;
  /// Session-table admission bound per shard: handshakes beyond it are
  /// rejected (counted in handshakes_rejected / sessions_rejected_full)
  /// so enclave memory stays bounded under a connect storm.
  std::size_t session_capacity_per_shard = std::size_t{1} << 20;
  /// Sessions with no authenticated traffic for this long expire from
  /// their shard's timer wheel (checked at the top of handle() and
  /// open_batch(), amortised O(1)). 0 keeps sessions forever.
  sim::Time session_idle_timeout = 0;
  /// Age horizon for incomplete fragment groups within a session —
  /// Reassembler::set_horizon for every session's reassembler. 0 keeps
  /// the count-based cap only.
  sim::Time fragment_horizon = 0;
  /// Admission policy at shard capacity: false keeps reject-at-capacity
  /// (the PR-6 behaviour); true evicts the idle-longest unpinned
  /// session to admit the new handshake, so an admission storm recycles
  /// stale state instead of locking out legitimate clients. Evictions
  /// count in sessions_evicted_lru() and fire the close hook.
  bool lru_eviction = false;
  /// Eviction shield for freshly-admitted sessions: never an LRU victim
  /// until this long after the handshake (or until the first
  /// authenticated frame unpins it, whichever comes first), so a storm
  /// cannot evict a session that is still mid-handshake.
  sim::Time handshake_pin = 3 * sim::kSecond;
  /// Duplicate-handshake suppression: an identical HandshakeInit seen
  /// again within this horizon returns the cached reply instead of
  /// minting a second session (the client reliability layer
  /// retransmits inits; the network duplicates frames). 0 disables.
  sim::Time handshake_dedupe_horizon = 10 * sim::kSecond;
  /// Bound on the dedupe cache (oldest entries recycle beyond it).
  std::size_t handshake_dedupe_capacity = 4096;
};

class VpnServer {
 public:
  // Events returned by handle():
  struct HandshakeDone {
    std::uint32_t session_id;
    Bytes reply_wire;  ///< send back to the client
  };
  struct PacketIn {
    std::uint32_t session_id;
    Bytes ip_packet;       ///< fully reassembled
    bool was_encrypted;    ///< false for integrity-only mode
  };
  struct FragmentPending {
    std::uint32_t session_id;
  };
  struct PingIn {
    std::uint32_t session_id;
    PingInfo info;
  };
  using Event = std::variant<HandshakeDone, PacketIn, FragmentPending, PingIn>;

  VpnServer(Rng& rng, crypto::RsaPublicKey ca_key, VpnServerConfig config = {});

  /// Pinned by clients (compiled into enclave binaries alongside the
  /// CA key in a real deployment).
  const crypto::RsaPublicKey& public_key() const { return key_.pub; }

  /// Processes one wire message arriving at time `now`. Errors cover
  /// every rejection: bad certificate, bad MAC, replay, unknown
  /// session, stale configuration after grace expiry, version floor.
  Result<Event> handle(ByteView wire, sim::Time now);

  /// Seals an IP packet towards a client session.
  std::vector<WireMessage> seal_packet(std::uint32_t session_id, ByteView ip_packet);
  /// Seals an IP packet directly into complete wire frames via the
  /// session's scratch buffer (steady-state allocation-free; see
  /// VpnClientSession::seal_packet_wire).
  void seal_packet_wire(std::uint32_t session_id, ByteView ip_packet,
                        std::vector<Bytes>& frames);
  /// Batch-append variant mirroring VpnClientSession::seal_packet_wire_at:
  /// writes this packet's frames at `frames[at..]`, reusing slot
  /// capacity, and returns the index one past the last frame written.
  std::size_t seal_packet_wire_at(std::uint32_t session_id, ByteView ip_packet,
                                  std::vector<Bytes>& frames, std::size_t at);

  // ---- Batched data path (the uplink drains bursts back to back) -----
  /// One opened data frame of a batch; `ip_packet` keeps its buffer
  /// capacity across calls (valid-prefix contract, like the enclave's
  /// EgressBatch::frames).
  struct BatchPacket {
    std::uint32_t session_id = 0;
    std::uint32_t burst_tag = 0;  ///< arrival index within the burst
    bool was_encrypted = true;
    Bytes ip_packet;
  };
  /// Result of open_batch. The caller owns it and passes it back every
  /// burst so the packet buffers are reused.
  struct OpenBatch {
    std::uint32_t complete = 0;    ///< fully reassembled packets
    std::uint32_t pending = 0;     ///< fragments still waiting
    std::uint32_t rejected = 0;    ///< malformed/auth/replay/stale/unknown
    std::size_t packet_count = 0;  ///< valid prefix of `packets`
    std::vector<BatchPacket> packets;
    /// One entry per frame that opened successfully this burst — MAC
    /// verified and replay-fresh, whether it completed a packet or
    /// left a fragment group pending (so session ids repeat). Unlike
    /// `packets`, the order is per-shard concatenation, NOT arrival
    /// order: this is a membership multiset for the cost layer (which
    /// sessions did real work vs pure garbage), not a sequence.
    std::vector<std::uint32_t> opened_sessions;
  };

  /// Opens a burst of data frames on the run-to-completion lane
  /// pipeline: the caller's serial pass is lane dispatch only
  /// (size/type check, RSS hash, SPSC ring push), then every frame
  /// runs entirely on its session's lane — session lookup, decrypt,
  /// replay check, reassembly — with lane-local pools, scratch and
  /// stats, and the lanes' results concatenate in lane order with no
  /// cross-lane merge. Completed packets land in
  /// `out.packets[0..packet_count)` in per-session arrival order
  /// (each session lives on one FIFO lane); the order ACROSS sessions
  /// depends on the lane count — that is the per-flow ordering
  /// contract. burst_tag still carries each packet's arrival index,
  /// so callers needing the global order can sort (or call
  /// open_batch_staged). Frames may belong to different sessions. A
  /// bad frame rejects that frame only — a shared server keeps
  /// serving its other clients. Non-data frames (ping/handshake) are
  /// rejected here; they belong on handle().
  void open_batch(std::span<const Bytes> wires, sim::Time now, OpenBatch& out);

  /// The pre-PR stage-and-barrier path, kept callable as the
  /// reference/baseline: the caller stages the burst (header parse,
  /// session-shard lookup, partition), the shards open their staged
  /// frames on the worker pool, and the per-shard results k-way merge
  /// back into global arrival order by burst_tag — exactly what
  /// open_batch did before the lane pipeline.
  void open_batch_staged(std::span<const Bytes> wires, sim::Time now,
                         OpenBatch& out);

  /// The pre-sharding open_batch loop, kept callable so benches and
  /// equivalence tests compare the staged/sharded path against the
  /// exact code it replaced (same contract as open_batch; always runs
  /// single-threaded on the caller, whatever the shard count).
  void open_batch_reference(std::span<const Bytes> wires, sim::Time now,
                            OpenBatch& out);

  /// Bench/test hook: stages `wires` and opens only the frames pinned
  /// to `shard`, inline on the calling thread — the exact per-shard
  /// body open_batch_staged runs on the worker pool, so per-shard
  /// serial timing measures the real work (results in arrival order).
  void open_batch_shard(std::size_t shard, std::span<const Bytes> wires,
                        sim::Time now, OpenBatch& out);

  /// Bench/test hook for the lane pipeline: runs the full lane
  /// dispatch over `wires` but pushes (and then drains,
  /// run-to-completion, inline on the caller) only the frames whose
  /// session is pinned to `lane` — so timing this per lane and taking
  /// the max measures the pipeline's real critical path, dispatch
  /// included. Unknown-session frames pinned to the lane reject (the
  /// lane semantics); frames of other lanes are skipped silently.
  void open_batch_lane(std::size_t lane, std::span<const Bytes> wires,
                       sim::Time now, OpenBatch& out);

  /// Bench/test hook: forgets all replay history so an identical
  /// pre-sealed burst can be opened repeatedly for timing.
  void reset_replay_windows();

  /// Seals a run of IP packets to one session, appending each packet's
  /// frames at `frames[at..]` with slot-capacity reuse (the batched
  /// counterpart of seal_packet_wire_at). Returns one past the last
  /// frame written.
  std::size_t seal_batch(std::uint32_t session_id,
                         std::span<const ByteView> ip_packets,
                         std::vector<Bytes>& frames, std::size_t at = 0);

  /// One downlink packet of a multi-session seal burst.
  struct SealJob {
    std::uint32_t session_id = 0;
    ByteView ip_packet;
  };
  /// Seals a burst of packets spanning any number of sessions: the
  /// caller computes every job's fragment count and output slot range
  /// up front (so `frames` is sized once and jobs never contend for
  /// slots), hands each job to its session's lane through the SPSC
  /// ring, and the lanes seal run-to-completion on the worker pool —
  /// each job's frames land at its precomputed `frames` range, so the
  /// output is byte-identical at any lane count and preserves input
  /// order. Returns the total frame count. Throws std::logic_error on
  /// unknown sessions (validated on the caller before any lane
  /// starts, as the disjoint-slot computation requires).
  std::size_t seal_jobs(std::span<const SealJob> jobs, std::vector<Bytes>& frames);

  /// Bench/test hook: seals only the jobs pinned to `shard`, inline on
  /// the caller, into their precomputed slots of `frames` (which is
  /// sized for the whole burst). Returns the total frame count of the
  /// burst, like seal_jobs.
  std::size_t seal_jobs_shard(std::size_t shard, std::span<const SealJob> jobs,
                              std::vector<Bytes>& frames);

  // ---- Session sharding ----------------------------------------------
  std::size_t session_shard_count() const { return shards_.size(); }
  /// The shard `session_id` is pinned to (splitmix64 spread, so
  /// sequentially assigned ids still balance).
  std::size_t shard_of_session(std::uint32_t session_id) const {
    return shard_of_id(session_id, shards_.size());
  }
  /// Sessions currently pinned to `shard`.
  std::size_t shard_session_count(std::size_t shard) const {
    return shards_.at(shard)->sessions.size();
  }
  std::uint64_t reshard_count() const { return reshard_count_; }
  /// Worker threads backing the shard pool (0 = single-shard inline).
  std::size_t worker_threads() const { return pool_ ? pool_->worker_count() : 0; }

  // ---- Lane introspection (the reshard controller's imbalance feed) --
  /// High-water mark of `lane`'s SPSC ring since the last
  /// reset_lane_stats(): the deepest backlog dispatch ever built on
  /// that lane. A hot lane shows a peak near the burst size while its
  /// siblings stay shallow.
  std::uint64_t lane_ring_peak(std::size_t lane) const {
    return shards_.at(lane)->ring.peak();
  }
  /// Frames this lane processed run-to-completion (open path) since
  /// the last reset_lane_stats() — the lane's busy proxy.
  std::uint64_t lane_frames(std::size_t lane) const {
    return shards_.at(lane)->lane_frames;
  }
  /// Lane-local PacketPool starvation count: acquires that found the
  /// pool empty and heap-allocated (cumulative; see PacketPool).
  std::uint64_t pool_starved(std::size_t lane) const {
    return shards_.at(lane)->pool.starved();
  }
  /// Buffers the lane's pool adopted from siblings (the
  /// starvation-rebalance trace; cumulative).
  std::uint64_t pool_refills(std::size_t lane) const {
    return shards_.at(lane)->pool.refills();
  }
  /// Buffers currently pooled on `lane`.
  std::size_t lane_pool_buffers(std::size_t lane) const {
    return shards_.at(lane)->pool.pooled();
  }
  /// Zeroes every lane's ring peak and frame counter (one controller
  /// observation interval ends, the next begins).
  void reset_lane_stats() {
    for (auto& shard : shards_) {
      shard->ring.reset_peak();
      shard->lane_frames = 0;
    }
  }

  /// Changes the session-shard count at runtime: every session moves
  /// wholesale to the shard its id now hashes to — keys, replay
  /// window, pending fragment groups and seal scratch intact — pooled
  /// buffers are adopted into the new shards, and per-shard statistics
  /// fold into the new shard set, so nothing is lost or double-counted
  /// across the transition. The worker pool is reused when shrinking
  /// (see ShardWorkerPool's hand-off protocol). This is the server
  /// half of what an adaptive reshard controller drives; the client
  /// half is EndBoxEnclave::ecall_reshard.
  Status reshard_sessions(std::size_t new_shards);

  /// Builds the periodic server ping announcing the current config
  /// version and remaining grace (section III-E, step 4).
  WireMessage create_ping(std::uint32_t session_id);

  /// Administrator action (step 2-3): announce `version` with a grace
  /// period; after `now + grace` clients on older versions are blocked.
  void announce_config(std::uint32_t version, std::uint32_t grace_secs,
                       sim::Time now);

  std::uint32_t current_config_version() const { return config_version_; }
  std::size_t session_count() const {
    std::size_t n = 0;
    for (const auto& shard : shards_) n += shard->sessions.size();
    return n;
  }
  bool has_session(std::uint32_t session_id) const {
    const SessionShard& shard = *shards_[shard_of_session(session_id)];
    return shard.sessions.contains(session_id);
  }
  /// Last config version a session reported via ping/handshake.
  std::uint32_t session_config_version(std::uint32_t session_id) const;

  // ---- Session lifecycle ----------------------------------------------
  /// Expires sessions idle past session_idle_timeout as of `now`
  /// (per-shard timer wheels, amortised O(1) per tick). Runs
  /// automatically at the top of handle(), open_batch() and
  /// open_batch_reference(); exposed for explicit sweeps. Only
  /// authenticated traffic (MAC-verified, replay-fresh) counts as
  /// activity — a garbage flood cannot keep a session alive. Returns
  /// the number expired (close hook fires per session).
  std::size_t expire_idle_sessions(sim::Time now);
  /// Drops one session explicitly (client disconnect / re-key): keys,
  /// replay window and pending fragments go at once, and the close
  /// hook fires. Returns false for unknown sessions.
  bool close_session(std::uint32_t session_id);
  /// Simulates a server crash + restart: every session closes (hooks
  /// fire, so dependent ledgers re-seed), the handshake dedupe cache
  /// empties, and the signing key and session-id counter survive (the
  /// operator restarts the same server). Clients notice through
  /// keepalive loss / rejected traffic and re-handshake. Returns the
  /// number of sessions closed.
  std::size_t restart();
  /// Invoked with the session id whenever a session ends — explicit
  /// close or idle expiry — so state keyed by session id elsewhere
  /// (EndBoxServer's per-session routers and ledgers) is torn down in
  /// the same step instead of leaking.
  void set_session_close_hook(std::function<void(std::uint32_t)> hook) {
    session_close_hook_ = std::move(hook);
  }
  /// Activity stamp driving a session's idle expiry (tests/migration).
  std::optional<sim::Time> session_last_activity(std::uint32_t session_id) const {
    return shards_[shard_of_session(session_id)]->sessions.last_activity(session_id);
  }

  // ---- Stats -----------------------------------------------------------
  // Data-path rejections tally on the shard that processed the frame;
  // the accessors sum across shards (plus handshake-time counts).
  std::uint64_t auth_failures() const;
  std::uint64_t replays_rejected() const;
  std::uint64_t stale_config_drops() const;
  std::uint64_t handshakes_rejected() const { return handshakes_rejected_; }
  /// Sessions evicted by the idle timer wheels (folds across reshards).
  std::uint64_t sessions_expired() const;
  /// Handshakes refused because the target shard was at capacity.
  std::uint64_t sessions_rejected_full() const;
  /// Sessions evicted by the LRU admission policy (capacity pressure —
  /// the AdaptiveReshardController reads this as an overload signal).
  std::uint64_t sessions_evicted_lru() const;
  /// Duplicate HandshakeInits answered from the dedupe cache.
  std::uint64_t handshakes_deduped() const { return handshakes_deduped_; }
  /// Fragment groups dropped by the per-session reassembly age horizon
  /// (live sessions only — a session's count goes with it when it ends).
  std::uint64_t fragments_expired() const;
  /// Peak concurrent sessions a shard has held (occupancy ceiling).
  std::size_t shard_peak_sessions(std::size_t shard) const {
    return shards_.at(shard)->sessions.stats().peak_size;
  }
  std::size_t session_capacity_per_shard() const {
    return config_.session_capacity_per_shard;
  }

 private:
  struct Session {
    SessionKeys keys;
    ReplayWindow replay;
    Reassembler reassembler;
    Rng iv_rng{0};  ///< per-session IV stream: seal paths never touch
                    ///< the shared server Rng, so shards seal without
                    ///< synchronisation and byte-identically at any
                    ///< shard count
    std::uint32_t config_version = 0;
    std::uint64_t next_packet_id = 1;
    std::uint32_t next_frag_id = 1;
    std::uint64_t next_ping_seq = 1;
    WireBuffer seal_scratch;  ///< reused by the seal fast path
  };
  /// Bounded per-shard session store: open addressing under the
  /// configured capacity, generation-stamped slots, idle expiry via
  /// the shard's timer wheel (common/lifecycle_table.hpp).
  using SessionTable = LifecycleTable<std::uint32_t, Session>;

  /// One session lane: sessions, buffer pool, SPSC hand-off ring,
  /// data-path statistics and per-burst scratch, owned exclusively by
  /// one worker during a burst (the dispatcher fills the ring before
  /// the pool runs; the pool's hand-off — or the ring's own
  /// release/acquire pair — orders everything else).
  struct SessionShard {
    explicit SessionShard(SessionTable::Options options)
        : sessions(options) {}
    SessionTable sessions;
    net::PacketPool pool;  ///< open scratch + reassembly buffers
    std::uint64_t auth_failures = 0;
    std::uint64_t replays_rejected = 0;
    std::uint64_t stale_config_drops = 0;
    std::vector<std::uint32_t> frame_idx;  ///< staged arrival indices
    click::SpscRing<std::uint32_t> ring{64};  ///< lane hand-off: frame/job indices
    std::uint64_t lane_frames = 0;  ///< frames opened run-to-completion
    std::uint64_t starved_mark = 0;  ///< pool.starved() at last rebalance
    OpenBatch scratch;                     ///< per-shard open results
  };

  static std::size_t shard_of_id(std::uint32_t session_id, std::size_t shards) {
    return shards <= 1 ? 0 : splitmix64(session_id) % shards;
  }

  Result<Event> handle_handshake(const WireMessage& msg, sim::Time now);
  Result<Event> handle_data(const WireMessage& msg, sim::Time now);
  Result<Event> handle_ping(const WireMessage& msg, sim::Time now);
  Session* find_session(std::uint32_t id);
  SessionTable::Entry* find_session_entry(std::uint32_t id);
  SessionShard& shard_of(std::uint32_t session_id) {
    return *shards_[shard_of_session(session_id)];
  }
  std::unique_ptr<SessionShard> make_shard() {
    SessionTable::Options options{
        config_.session_capacity_per_shard, config_.session_idle_timeout, {}};
    if (config_.lru_eviction) options.eviction = EvictionPolicy::EvictIdleLongest;
    auto shard = std::make_unique<SessionShard>(options);
    if (config_.lru_eviction)
      shard->sessions.set_evict_hook(
          [this](std::uint32_t id, Session&&) { fire_close_hook(id); });
    return shard;
  }
  void fire_close_hook(std::uint32_t session_id) {
    if (session_close_hook_) session_close_hook_(session_id);
  }
  /// (Re)creates the worker pool for the current shard count, reusing
  /// it when the count shrank (ShardWorkerPool hand-off protocol).
  void ensure_worker_pool();
  /// Opens wires[idx] on its lane, end to end: session lookup, policy,
  /// decrypt, replay, reassembly, emit. The run-to-completion body
  /// shared by the lane worker (unknown sessions reject here — lane
  /// dispatch no longer looks them up) and the staged worker (which
  /// staged only known sessions, so the reject arm never fires there).
  void open_frame_on_shard(SessionShard& shard, const Bytes& wire,
                           std::uint32_t idx, sim::Time now);
  /// Opens the staged frames of `shard` in arrival order (the worker
  /// body of open_batch_staged; also run inline for one-shard bursts).
  void open_shard_frames(SessionShard& shard, std::span<const Bytes> wires,
                         sim::Time now);
  /// Drains `shard`'s ring run-to-completion (the lane worker body of
  /// open_batch).
  void open_lane_frames(SessionShard& shard, std::span<const Bytes> wires,
                        sim::Time now);
  /// K-way merges the shards' opened packets into `out` by burst_tag
  /// (the staged path's global arrival-order barrier).
  void merge_opened(OpenBatch& out);
  /// Appends the lanes' opened packets to `out` in lane order — no
  /// merge, per-session order only (the lane path's collect step).
  void collect_lanes(OpenBatch& out);
  /// Tops up lanes that starved this burst from the richest sibling
  /// pool, so a hot lane adopts circulating buffers instead of
  /// allocating silently forever (runs single-threaded between bursts).
  void rebalance_lane_pools();
  /// Seals one packet's fragments for `session` into frames[at..]; when
  /// `may_grow` is false the caller pre-sized `frames` and slots are
  /// written without touching the vector itself (worker-safe).
  std::size_t seal_fragments(std::uint32_t session_id, Session& session,
                             ByteView ip_packet, std::vector<Bytes>& frames,
                             std::size_t at, bool may_grow);
  /// Stages `jobs` (validating sessions, computing slot ranges and the
  /// per-shard partition) and returns the total frame count; `bases`
  /// receives each job's first output slot.
  std::size_t stage_seal_jobs(std::span<const SealJob> jobs,
                              std::vector<Bytes>& frames);

  /// One cached handshake reply: answers retransmitted/duplicated
  /// inits idempotently. The nonce disambiguates hash collisions.
  struct CachedHandshake {
    Bytes nonce;
    Bytes reply_wire;
    std::uint32_t session_id = 0;
  };
  using HandshakeCache = LifecycleTable<std::uint64_t, CachedHandshake>;

  Rng& rng_;
  crypto::RsaPublicKey ca_key_;
  VpnServerConfig config_;
  crypto::RsaKeyPair key_;
  std::vector<std::unique_ptr<SessionShard>> shards_;
  std::optional<HandshakeCache> handshake_cache_;
  std::unique_ptr<click::ShardWorkerPool> pool_;  ///< absent for 1 shard
  std::vector<std::size_t> merge_heads_;          ///< merge scratch, reused
  std::vector<std::size_t> seal_bases_;           ///< seal_jobs slot bases
  std::uint32_t next_session_id_ = 1;
  std::uint64_t reshard_count_ = 0;

  std::uint32_t config_version_ = 1;
  std::uint32_t grace_secs_ = 0;
  sim::Time grace_deadline_ = 0;
  bool grace_active_ = false;

  std::uint64_t handshakes_rejected_ = 0;
  std::uint64_t handshakes_deduped_ = 0;
  std::function<void(std::uint32_t)> session_close_hook_;
};

}  // namespace endbox::vpn
