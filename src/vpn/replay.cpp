#include "vpn/replay.hpp"

namespace endbox::vpn {

bool ReplayWindow::accept(std::uint64_t packet_id) {
  if (!any_) {
    any_ = true;
    highest_ = packet_id;
    bitmap_ = 1;  // bit 0 = highest_
    return true;
  }
  if (packet_id > highest_) {
    std::uint64_t shift = packet_id - highest_;
    bitmap_ = shift >= kWindow ? 0 : bitmap_ << shift;
    bitmap_ |= 1;
    highest_ = packet_id;
    return true;
  }
  std::uint64_t age = highest_ - packet_id;
  if (age >= kWindow) {
    ++rejected_;  // too old to track: reject conservatively
    return false;
  }
  std::uint64_t bit = 1ULL << age;
  if (bitmap_ & bit) {
    ++rejected_;
    return false;
  }
  bitmap_ |= bit;
  return true;
}

}  // namespace endbox::vpn
