// Client-side control-channel reliability (the piece a one-shot
// handshake lacks on a real network): timer-wheel-scheduled handshake
// retransmission with exponential backoff + jitter and capped
// attempts, keepalive-based dead-peer detection, and automatic
// re-handshake (re-key) when the peer goes silent or an epoch change
// shows up as a burst of MAC failures (a restarted server shares no
// keys with us).
//
// The class is transport- and crypto-agnostic: it owns *when* control
// frames move, callbacks own *what* they contain. The EndBox client
// wires the hooks to its enclave ecalls; tests wire them to raw
// VpnClientSession calls. All scheduling runs on virtual time via a
// sim::TimerWheel, so chaos experiments stay deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/rng.hpp"
#include "sim/timer_wheel.hpp"
#include "vpn/wire.hpp"

namespace endbox::vpn {

struct ControlPlaneConfig {
  /// First retransmit fires this long after an unanswered init.
  sim::Time retry_initial = 200 * sim::kMillisecond;
  /// Delay multiplier per attempt (exponential backoff).
  double retry_backoff = 2.0;
  /// Backoff ceiling.
  sim::Time retry_max = 5 * sim::kSecond;
  /// Each delay is scaled by (1 ± retry_jitter), drawn from `seed`, so
  /// a fleet thundering in after a blackout decorrelates.
  double retry_jitter = 0.15;
  /// Attempts (first send included) before a connect cycle fails.
  unsigned max_attempts = 8;
  /// Keepalive ping period while established.
  sim::Time keepalive_interval = sim::kSecond;
  /// No authenticated peer activity for this many keepalive intervals
  /// declares the peer dead and starts a re-handshake.
  unsigned dead_after_intervals = 3;
  /// This many consecutive MAC failures with no authenticated frame in
  /// between re-keys immediately (epoch change: the server restarted
  /// and our keys are gone). 0 disables the trigger.
  unsigned rehandshake_auth_failures = 4;
  /// Jitter stream seed (forked per client by the owner).
  std::uint64_t seed = 0xc0117a75;
};

class ClientControlPlane {
 public:
  enum class State { Idle, Connecting, Established, Failed };

  /// All hooks with a Status/Result return feed errors back into the
  /// state machine; `send` hands a finished control frame to the
  /// transport (the owner decides which link it rides).
  struct Hooks {
    /// Builds a fresh HandshakeInit wire (new nonce — calling this IS
    /// the re-key). Required.
    std::function<Result<Bytes>()> make_init;
    /// Feeds a HandshakeReply wire to the session. Required.
    std::function<Status(ByteView)> on_reply;
    /// Seals a keepalive ping into `frame`. Required when
    /// keepalive_interval > 0.
    std::function<Status(Bytes&)> make_ping;
    /// Transmits a control frame. Required.
    std::function<void(ByteView, sim::Time)> send;
    /// Feeds a server ping wire to the session (config-version
    /// machinery). Optional; success counts as peer activity.
    std::function<Status(ByteView, sim::Time)> on_ping;
    std::function<void(sim::Time)> on_established;  ///< optional
    std::function<void(sim::Time, const std::string&)> on_failed;  ///< optional
  };

  ClientControlPlane(ControlPlaneConfig config, Hooks hooks);

  /// Begins (or restarts) a connect cycle: sends a fresh init and arms
  /// the retry timer. Callable from Idle, Failed, or to force a re-key.
  Status start(sim::Time now);

  /// Drives the timers (retransmits, keepalives, dead-peer checks).
  /// Call whenever virtual time moves — cost is amortised O(1).
  void advance(sim::Time now);

  /// Routes a server->client control frame (HandshakeReply or Ping).
  /// Corrupt frames return the session's error and change no state —
  /// the pending retry/keepalive schedule is untouched.
  Status deliver(ByteView wire, sim::Time now);

  /// Authenticated traffic from the peer (an opened data frame): feeds
  /// dead-peer detection and clears the MAC-failure streak.
  void note_peer_activity(sim::Time now);
  /// A frame from the peer failed authentication. A streak of these
  /// while established triggers the epoch-change re-key.
  void note_auth_failure(sim::Time now);

  State state() const { return state_; }
  bool established() const { return state_ == State::Established; }
  const std::string& last_error() const { return last_error_; }
  /// Attempt number of the current connect cycle (1 = first send).
  unsigned attempt() const { return attempt_; }

  std::uint64_t handshakes_started() const { return handshakes_started_; }
  std::uint64_t handshake_retransmits() const { return handshake_retransmits_; }
  std::uint64_t rehandshakes() const { return rehandshakes_; }
  std::uint64_t pings_sent() const { return pings_sent_; }
  std::uint64_t dead_peer_events() const { return dead_peer_events_; }
  std::uint64_t replies_rejected() const { return replies_rejected_; }
  std::uint64_t connect_failures() const { return connect_failures_; }

 private:
  enum class TimerKind : std::uint64_t { Retry = 1, Keepalive = 2 };

  static std::uint64_t cookie_of(TimerKind kind, std::uint64_t generation) {
    return (static_cast<std::uint64_t>(kind) << 56) | generation;
  }

  void arm(TimerKind kind, sim::Time deadline);
  void fire(std::uint64_t cookie, sim::Time now);
  sim::Time retry_delay(unsigned attempt);
  Status begin_cycle(sim::Time now, bool rekey);
  void fail(sim::Time now, const std::string& why);
  sim::Time dead_interval() const {
    return config_.keepalive_interval *
           static_cast<sim::Time>(config_.dead_after_intervals);
  }

  ControlPlaneConfig config_;
  Hooks hooks_;
  sim::TimerWheel wheel_;
  Rng jitter_rng_;

  State state_ = State::Idle;
  Bytes init_wire_;  ///< cached: retransmits resend the same bytes
  unsigned attempt_ = 0;
  sim::Time last_peer_activity_ = 0;
  unsigned auth_failure_streak_ = 0;
  std::string last_error_;
  // Lazy cancellation: bumping a generation orphans every timer of
  // that kind already in the wheel (same scheme as LifecycleTable).
  std::uint64_t retry_gen_ = 0;
  std::uint64_t keepalive_gen_ = 0;

  std::uint64_t handshakes_started_ = 0;
  std::uint64_t handshake_retransmits_ = 0;
  std::uint64_t rehandshakes_ = 0;
  std::uint64_t pings_sent_ = 0;
  std::uint64_t dead_peer_events_ = 0;
  std::uint64_t replies_rejected_ = 0;
  std::uint64_t connect_failures_ = 0;
  Bytes ping_scratch_;
};

}  // namespace endbox::vpn
