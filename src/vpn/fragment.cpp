#include "vpn/fragment.hpp"

namespace endbox::vpn {

std::vector<Bytes> fragment_payload(ByteView payload, std::size_t mtu) {
  std::vector<Bytes> fragments;
  if (mtu == 0) mtu = 1;
  if (payload.empty()) {
    fragments.emplace_back();
    return fragments;
  }
  for (std::size_t off = 0; off < payload.size(); off += mtu) {
    std::size_t n = std::min(mtu, payload.size() - off);
    fragments.emplace_back(payload.begin() + static_cast<std::ptrdiff_t>(off),
                           payload.begin() + static_cast<std::ptrdiff_t>(off + n));
  }
  return fragments;
}

std::optional<Bytes> Reassembler::add(const FragmentHeader& frag, Bytes payload) {
  if (frag.count == 0 || frag.index >= frag.count) return std::nullopt;
  if (frag.count == 1) return payload;  // fast path: unfragmented

  auto [it, inserted] = groups_.try_emplace(frag.frag_id);
  Group& group = it->second;
  if (inserted) {
    group.parts.resize(frag.count);
    group.generation = ++generation_;
    evict_if_needed();
  }
  if (group.parts.size() != frag.count) return std::nullopt;  // inconsistent
  if (group.parts[frag.index].has_value()) return std::nullopt;  // duplicate
  group.parts[frag.index] = std::move(payload);
  if (++group.received < frag.count) return std::nullopt;

  Bytes whole;
  for (auto& part : group.parts) append(whole, *part);
  groups_.erase(it);
  return whole;
}

void Reassembler::evict_if_needed() {
  while (groups_.size() > max_groups_) {
    auto oldest = groups_.begin();
    for (auto it = groups_.begin(); it != groups_.end(); ++it)
      if (it->second.generation < oldest->second.generation) oldest = it;
    groups_.erase(oldest);
    ++evicted_;
  }
}

}  // namespace endbox::vpn
