#include "vpn/fragment.hpp"

namespace endbox::vpn {

std::vector<Bytes> fragment_payload(ByteView payload, std::size_t mtu) {
  std::vector<Bytes> fragments;
  if (mtu == 0) mtu = 1;
  if (payload.empty()) {
    fragments.emplace_back();
    return fragments;
  }
  for (std::size_t off = 0; off < payload.size(); off += mtu) {
    std::size_t n = std::min(mtu, payload.size() - off);
    fragments.emplace_back(payload.begin() + static_cast<std::ptrdiff_t>(off),
                           payload.begin() + static_cast<std::ptrdiff_t>(off + n));
  }
  return fragments;
}

std::optional<Bytes> Reassembler::add(const FragmentHeader& frag, Bytes payload,
                                      sim::Time now) {
  expire_stale(now);
  if (frag.count == 0 || frag.index >= frag.count) return std::nullopt;
  if (frag.count == 1) return payload;  // fast path: unfragmented

  auto it = groups_.find(frag.frag_id);
  if (it == groups_.end()) {
    it = emplace_group(frag.frag_id);
    Group& fresh = it->second;
    fresh.parts.resize(frag.count);  // capacity survives node reuse
    fresh.received = 0;
    fresh.born = now;
    fifo_push_back(frag.frag_id, fresh);
    evict_if_needed();
  }
  Group& group = it->second;
  if (group.parts.size() != frag.count) return std::nullopt;  // inconsistent
  if (group.parts[frag.index].has_value()) return std::nullopt;  // duplicate
  group.parts[frag.index] = std::move(payload);
  if (++group.received < frag.count) return std::nullopt;

  Bytes whole = pool_ ? pool_->acquire_bytes() : Bytes{};
  std::size_t total = 0;
  for (const auto& part : group.parts) total += part->size();
  whole.reserve(total);
  for (auto& part : group.parts) {
    append(whole, *part);
    recycle(std::move(*part));
    part.reset();
  }
  release_group(it);
  return whole;
}

Reassembler::GroupMap::iterator Reassembler::emplace_group(std::uint32_t frag_id) {
  if (!node_cache_.empty()) {
    auto node = std::move(node_cache_.back());
    node_cache_.pop_back();
    node.key() = frag_id;
    return groups_.insert(std::move(node)).position;
  }
  return groups_.try_emplace(frag_id).first;
}

void Reassembler::fifo_push_back(std::uint32_t frag_id, Group& group) {
  group.prev = fifo_tail_;
  group.next.reset();
  if (fifo_tail_) groups_.find(*fifo_tail_)->second.next = frag_id;
  else fifo_head_ = frag_id;
  fifo_tail_ = frag_id;
}

void Reassembler::fifo_unlink(const Group& group) {
  if (group.prev) groups_.find(*group.prev)->second.next = group.next;
  else fifo_head_ = group.next;
  if (group.next) groups_.find(*group.next)->second.prev = group.prev;
  else fifo_tail_ = group.prev;
}

void Reassembler::release_group(GroupMap::iterator it) {
  fifo_unlink(it->second);
  // Any buffers still held (eviction path) go back to the pool; the
  // parts vector keeps its capacity inside the cached node.
  for (auto& part : it->second.parts)
    if (part.has_value()) recycle(std::move(*part));
  it->second.parts.clear();
  node_cache_.push_back(groups_.extract(it));
}

void Reassembler::evict_if_needed() {
  while (groups_.size() > max_groups_ && fifo_head_) {
    auto oldest = groups_.find(*fifo_head_);
    release_group(oldest);
    ++evicted_;
  }
}

void Reassembler::clear() {
  while (fifo_head_) release_group(groups_.find(*fifo_head_));
}

std::size_t Reassembler::expire_stale(sim::Time now) {
  if (horizon_ == 0 || now < horizon_) return 0;
  // The FIFO is insertion-ordered, so born times are monotone along it:
  // stop at the first group young enough to keep.
  std::size_t dropped = 0;
  while (fifo_head_) {
    auto oldest = groups_.find(*fifo_head_);
    if (oldest->second.born > now - horizon_) break;
    release_group(oldest);
    ++expired_;
    ++dropped;
  }
  return dropped;
}

}  // namespace endbox::vpn
