// The seal/open baseline below reproduces the PR-1 data path verbatim,
// including its cost model: one Bytes allocation per field, a full body
// copy inside the MAC, per-call HMAC key processing, and — crucially —
// the pre-T-table byte-wise AES (SubBytes/ShiftRows/MixColumns on a
// byte array, key schedule re-expanded every call). The optimised path
// replaced all of that; keeping the originals callable is what lets the
// benches report a truthful before/after ratio.
#include "vpn/session_crypto_reference.hpp"

#include <cstring>

#include "crypto/aes.hpp"
#include "crypto/hmac.hpp"

namespace endbox::vpn::reference {

namespace {

// ---- Pre-PR byte-wise AES-128 (copied from the PR-1 crypto layer) ----

constexpr std::array<std::uint8_t, 256> make_sbox() {
  std::array<std::uint8_t, 256> sbox{};
  std::array<std::uint8_t, 256> log{}, alog{};
  std::uint8_t x = 1;
  for (int i = 0; i < 255; ++i) {
    alog[i] = x;
    log[x] = static_cast<std::uint8_t>(i);
    std::uint8_t x2 = static_cast<std::uint8_t>((x << 1) ^ ((x & 0x80) ? 0x1b : 0));
    x = static_cast<std::uint8_t>(x ^ x2);
  }
  for (int i = 0; i < 256; ++i) {
    std::uint8_t inv =
        (i == 0) ? 0 : alog[(255 - log[static_cast<std::uint8_t>(i)]) % 255];
    std::uint8_t s = inv;
    std::uint8_t r = inv;
    for (int j = 0; j < 4; ++j) {
      r = static_cast<std::uint8_t>((r << 1) | (r >> 7));
      s ^= r;
    }
    sbox[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(s ^ 0x63);
  }
  return sbox;
}

constexpr std::array<std::uint8_t, 256> kSbox = make_sbox();

constexpr std::array<std::uint8_t, 256> make_inv_sbox() {
  std::array<std::uint8_t, 256> inv{};
  for (int i = 0; i < 256; ++i)
    inv[kSbox[static_cast<std::size_t>(i)]] = static_cast<std::uint8_t>(i);
  return inv;
}

constexpr std::array<std::uint8_t, 256> kInvSbox = make_inv_sbox();

inline std::uint8_t xtime(std::uint8_t a) {
  return static_cast<std::uint8_t>((a << 1) ^ ((a & 0x80) ? 0x1b : 0));
}

template <std::uint8_t C>
constexpr std::array<std::uint8_t, 256> make_gmul_table() {
  std::array<std::uint8_t, 256> table{};
  for (int i = 0; i < 256; ++i) {
    std::uint8_t a = static_cast<std::uint8_t>(i), b = C, r = 0;
    while (b) {
      if (b & 1) r ^= a;
      a = static_cast<std::uint8_t>((a << 1) ^ ((a & 0x80) ? 0x1b : 0));
      b >>= 1;
    }
    table[static_cast<std::size_t>(i)] = r;
  }
  return table;
}
constexpr auto kMul9 = make_gmul_table<9>();
constexpr auto kMul11 = make_gmul_table<11>();
constexpr auto kMul13 = make_gmul_table<13>();
constexpr auto kMul14 = make_gmul_table<14>();

class RefAes128 {
 public:
  explicit RefAes128(const crypto::AesKey& key) {
    std::memcpy(round_keys_.data(), key.data(), 16);
    std::uint8_t rcon = 1;
    for (int i = 16; i < 176; i += 4) {
      std::uint8_t temp[4];
      std::memcpy(temp, round_keys_.data() + i - 4, 4);
      if (i % 16 == 0) {
        std::uint8_t t = temp[0];
        temp[0] = static_cast<std::uint8_t>(kSbox[temp[1]] ^ rcon);
        temp[1] = kSbox[temp[2]];
        temp[2] = kSbox[temp[3]];
        temp[3] = kSbox[t];
        rcon = xtime(rcon);
      }
      for (int j = 0; j < 4; ++j) {
        round_keys_[static_cast<std::size_t>(i + j)] =
            round_keys_[static_cast<std::size_t>(i + j - 16)] ^ temp[j];
      }
    }
  }

  void encrypt_block(const std::uint8_t* in, std::uint8_t* out) const {
    std::uint8_t s[16];
    for (int i = 0; i < 16; ++i)
      s[i] = in[i] ^ round_keys_[static_cast<std::size_t>(i)];
    for (int round = 1; round <= 10; ++round) {
      for (auto& b : s) b = kSbox[b];
      std::uint8_t t[16];
      for (int col = 0; col < 4; ++col)
        for (int row = 0; row < 4; ++row)
          t[col * 4 + row] = s[((col + row) % 4) * 4 + row];
      std::memcpy(s, t, 16);
      if (round != 10) {
        for (int col = 0; col < 4; ++col) {
          std::uint8_t* c = s + col * 4;
          std::uint8_t a0 = c[0], a1 = c[1], a2 = c[2], a3 = c[3];
          c[0] = static_cast<std::uint8_t>(xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3);
          c[1] = static_cast<std::uint8_t>(a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3);
          c[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3));
          c[3] = static_cast<std::uint8_t>((xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3));
        }
      }
      for (int i = 0; i < 16; ++i)
        s[i] ^= round_keys_[static_cast<std::size_t>(round * 16 + i)];
    }
    std::memcpy(out, s, 16);
  }

  void decrypt_block(const std::uint8_t* in, std::uint8_t* out) const {
    std::uint8_t s[16];
    for (int i = 0; i < 16; ++i)
      s[i] = in[i] ^ round_keys_[static_cast<std::size_t>(160 + i)];
    for (int round = 9; round >= 0; --round) {
      std::uint8_t t[16];
      for (int col = 0; col < 4; ++col)
        for (int row = 0; row < 4; ++row)
          t[((col + row) % 4) * 4 + row] = s[col * 4 + row];
      std::memcpy(s, t, 16);
      for (auto& b : s) b = kInvSbox[b];
      for (int i = 0; i < 16; ++i)
        s[i] ^= round_keys_[static_cast<std::size_t>(round * 16 + i)];
      if (round != 0) {
        for (int col = 0; col < 4; ++col) {
          std::uint8_t* c = s + col * 4;
          std::uint8_t a0 = c[0], a1 = c[1], a2 = c[2], a3 = c[3];
          c[0] = static_cast<std::uint8_t>(kMul14[a0] ^ kMul11[a1] ^ kMul13[a2] ^ kMul9[a3]);
          c[1] = static_cast<std::uint8_t>(kMul9[a0] ^ kMul14[a1] ^ kMul11[a2] ^ kMul13[a3]);
          c[2] = static_cast<std::uint8_t>(kMul13[a0] ^ kMul9[a1] ^ kMul14[a2] ^ kMul11[a3]);
          c[3] = static_cast<std::uint8_t>(kMul11[a0] ^ kMul13[a1] ^ kMul9[a2] ^ kMul14[a3]);
        }
      }
    }
    std::memcpy(out, s, 16);
  }

 private:
  std::array<std::uint8_t, 176> round_keys_;
};

Bytes ref_cbc_encrypt(const crypto::AesKey& key, ByteView iv, ByteView plaintext) {
  RefAes128 aes(key);  // key schedule re-expanded per call, as in PR 1
  std::size_t pad = crypto::kAesBlockSize - plaintext.size() % crypto::kAesBlockSize;
  Bytes padded(plaintext.begin(), plaintext.end());
  padded.insert(padded.end(), pad, static_cast<std::uint8_t>(pad));

  Bytes out(padded.size());
  std::uint8_t prev[crypto::kAesBlockSize];
  std::memcpy(prev, iv.data(), crypto::kAesBlockSize);
  for (std::size_t off = 0; off < padded.size(); off += crypto::kAesBlockSize) {
    std::uint8_t block[crypto::kAesBlockSize];
    for (std::size_t i = 0; i < crypto::kAesBlockSize; ++i)
      block[i] = padded[off + i] ^ prev[i];
    aes.encrypt_block(block, out.data() + off);
    std::memcpy(prev, out.data() + off, crypto::kAesBlockSize);
  }
  return out;
}

Result<Bytes> ref_cbc_decrypt(const crypto::AesKey& key, ByteView iv,
                              ByteView ciphertext) {
  if (ciphertext.empty() || ciphertext.size() % crypto::kAesBlockSize != 0)
    return err("CBC ciphertext must be a positive multiple of 16 bytes");
  RefAes128 aes(key);
  Bytes out(ciphertext.size());
  std::uint8_t prev[crypto::kAesBlockSize];
  std::memcpy(prev, iv.data(), crypto::kAesBlockSize);
  for (std::size_t off = 0; off < ciphertext.size(); off += crypto::kAesBlockSize) {
    std::uint8_t block[crypto::kAesBlockSize];
    aes.decrypt_block(ciphertext.data() + off, block);
    for (std::size_t i = 0; i < crypto::kAesBlockSize; ++i)
      out[off + i] = block[i] ^ prev[i];
    std::memcpy(prev, ciphertext.data() + off, crypto::kAesBlockSize);
  }
  std::uint8_t pad = out.back();
  if (pad == 0 || pad > crypto::kAesBlockSize || pad > out.size())
    return err("bad CBC padding");
  for (std::size_t i = out.size() - pad; i < out.size(); ++i)
    if (out[i] != pad) return err("bad CBC padding");
  out.resize(out.size() - pad);
  return out;
}

// ---- Pre-PR seal/open wire logic ----

Bytes frag_bytes(const FragmentHeader& frag) {
  Bytes out;
  put_u64(out, frag.packet_id);
  put_u32(out, frag.frag_id);
  put_u16(out, frag.index);
  put_u16(out, frag.count);
  return out;
}

FragmentHeader read_frag(ByteReader& r) {
  FragmentHeader frag;
  frag.packet_id = r.u64();
  frag.frag_id = r.u32();
  frag.index = r.u16();
  frag.count = r.u16();
  return frag;
}

Bytes mac_over(const SessionKeys& keys, std::string_view label, ByteView data) {
  Bytes input = to_bytes(label);
  append(input, data);
  return crypto::hmac_sha256(keys.mac_key, input);
}

}  // namespace

Bytes seal_data_body(const SessionKeys& keys, const FragmentHeader& frag,
                     ByteView payload, Rng& rng) {
  Bytes body = frag_bytes(frag);
  Bytes iv = rng.bytes(16);
  append(body, iv);
  append(body, ref_cbc_encrypt(crypto::make_aes_key(keys.enc_key), iv, payload));
  append(body, mac_over(keys, "data", body));
  return body;
}

Bytes seal_integrity_body(const SessionKeys& keys, const FragmentHeader& frag,
                          ByteView payload) {
  Bytes body = frag_bytes(frag);
  append(body, payload);
  append(body, mac_over(keys, "integ", body));
  return body;
}

Result<OpenedBody> open_data_body(const SessionKeys& keys, ByteView body) {
  if (body.size() < kFragHeaderSize + 16 + kMacSize)
    return err("data body: too short");
  std::size_t authed_len = body.size() - kMacSize;
  if (!ct_equal(mac_over(keys, "data", body.subspan(0, authed_len)),
                body.subspan(authed_len)))
    return err("data body: MAC verification failed");

  ByteReader r(body.subspan(0, authed_len));
  OpenedBody opened;
  opened.frag = read_frag(r);
  Bytes iv = r.take(16);
  auto plaintext =
      ref_cbc_decrypt(crypto::make_aes_key(keys.enc_key), iv, r.rest());
  if (!plaintext.ok()) return err("data body: " + plaintext.error());
  opened.payload = std::move(*plaintext);
  return opened;
}

Result<OpenedBody> open_integrity_body(const SessionKeys& keys, ByteView body) {
  if (body.size() < kFragHeaderSize + kMacSize)
    return err("integrity body: too short");
  std::size_t authed_len = body.size() - kMacSize;
  if (!ct_equal(mac_over(keys, "integ", body.subspan(0, authed_len)),
                body.subspan(authed_len)))
    return err("integrity body: MAC verification failed");
  ByteReader r(body.subspan(0, authed_len));
  OpenedBody opened;
  opened.frag = read_frag(r);
  opened.payload = r.rest();
  return opened;
}

}  // namespace endbox::vpn::reference
