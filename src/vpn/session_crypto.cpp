#include "vpn/session_crypto.hpp"

namespace endbox::vpn {

namespace {

inline ByteView label_view(std::string_view label) {
  return ByteView(reinterpret_cast<const std::uint8_t*>(label.data()),
                  label.size());
}

// MAC over `label || data` from the session's precomputed HMAC state;
// everything stays on the stack.
crypto::Sha256Digest mac_over(const SessionKeys& keys, std::string_view label,
                              ByteView data) {
  auto mac = keys.hmac().begin();
  mac.update(label_view(label));
  mac.update(data);
  return mac.finish();
}

void write_frag(std::uint8_t* p, const FragmentHeader& frag) {
  put_u64(p, frag.packet_id);
  put_u32(p + 8, frag.frag_id);
  put_u16(p + 12, frag.index);
  put_u16(p + 14, frag.count);
}

FragmentHeader read_frag(const std::uint8_t* p) {
  FragmentHeader frag;
  frag.packet_id = get_u64(p);
  frag.frag_id = get_u32(p + 8);
  frag.index = get_u16(p + 12);
  frag.count = get_u16(p + 14);
  return frag;
}

void append_mac(const SessionKeys& keys, std::string_view label, WireBuffer& out) {
  crypto::Sha256Digest mac = mac_over(keys, label, out.view());
  std::memcpy(out.append(kMacSize), mac.data(), kMacSize);
}

bool check_mac(const SessionKeys& keys, std::string_view label, ByteView body) {
  std::size_t authed_len = body.size() - kMacSize;
  crypto::Sha256Digest mac =
      mac_over(keys, label, body.subspan(0, authed_len));
  return ct_equal(ByteView(mac.data(), mac.size()), body.subspan(authed_len));
}

// Shrinks `body` to its payload: moves `len` bytes starting at `offset`
// to the front and resizes, reusing the buffer's allocation.
Bytes move_out_payload(Bytes&& body, std::size_t offset, std::size_t len) {
  if (len > 0 && offset > 0) std::memmove(body.data(), body.data() + offset, len);
  body.resize(len);
  return std::move(body);
}

}  // namespace

const crypto::Aes128& SessionKeys::aes() const {
  if (!aes_cache) aes_cache.emplace(crypto::make_aes_key(enc_key));
  return *aes_cache;
}

const crypto::HmacKey& SessionKeys::hmac() const {
  if (!hmac_cache) hmac_cache.emplace(mac_key);
  return *hmac_cache;
}

SessionKeys derive_vpn_keys(std::uint64_t seed, ByteView client_nonce,
                            ByteView server_nonce) {
  Bytes material;
  material.reserve(8 + client_nonce.size() + server_nonce.size());
  put_u64(material, seed);
  append(material, client_nonce);
  append(material, server_nonce);
  SessionKeys keys;
  keys.enc_key = crypto::derive_key(material, "vpn-enc", 16);
  keys.mac_key = crypto::derive_key(material, "vpn-mac", 32);
  keys.aes();   // expand the key schedule once, at session setup
  keys.hmac();  // precompute the ipad/opad block states once
  return keys;
}

void seal_data_body(const SessionKeys& keys, const FragmentHeader& frag,
                    ByteView payload, Rng& rng, WireBuffer& out) {
  out.reset(kSealHeadroom);
  // Ciphertext first (payload padded and encrypted in place at the
  // buffer's data offset), then IV and fragment header prepended into
  // headroom, then the MAC appended — no intermediate buffers.
  std::size_t padded = crypto::cbc_padded_size(payload.size());
  out.reserve_tail(padded + kMacSize);
  std::uint8_t* ct = out.append(padded);
  if (!payload.empty()) std::memcpy(ct, payload.data(), payload.size());
  std::uint8_t* iv = out.prepend(16);
  rng.fill({iv, 16});
  crypto::aes128_cbc_encrypt_inplace(keys.aes(), iv, {ct, padded}, payload.size());
  write_frag(out.prepend(kFragHeaderSize), frag);
  append_mac(keys, "data", out);
}

void seal_integrity_body(const SessionKeys& keys, const FragmentHeader& frag,
                         ByteView payload, WireBuffer& out) {
  out.reset(kSealHeadroom);
  out.reserve_tail(payload.size() + kMacSize);
  out.append(payload);
  write_frag(out.prepend(kFragHeaderSize), frag);
  append_mac(keys, "integ", out);
}

Bytes seal_data_body(const SessionKeys& keys, const FragmentHeader& frag,
                     ByteView payload, Rng& rng) {
  WireBuffer out;
  seal_data_body(keys, frag, payload, rng, out);
  return out.take();
}

Bytes seal_integrity_body(const SessionKeys& keys, const FragmentHeader& frag,
                          ByteView payload) {
  WireBuffer out;
  seal_integrity_body(keys, frag, payload, out);
  return out.take();
}

Result<OpenedBody> open_data_body(const SessionKeys& keys, Bytes&& body) {
  if (body.size() < kFragHeaderSize + 16 + kMacSize)
    return err("data body: too short");
  if (!check_mac(keys, "data", body))
    return err("data body: MAC verification failed");

  OpenedBody opened;
  opened.frag = read_frag(body.data());
  const std::uint8_t* iv = body.data() + kFragHeaderSize;
  std::size_t ct_off = kFragHeaderSize + 16;
  std::size_t ct_len = body.size() - kMacSize - ct_off;
  auto plaintext_len = crypto::aes128_cbc_decrypt_inplace(
      keys.aes(), iv, {body.data() + ct_off, ct_len});
  if (!plaintext_len.ok()) return err("data body: " + plaintext_len.error());
  opened.payload = move_out_payload(std::move(body), ct_off, *plaintext_len);
  return opened;
}

Result<OpenedBody> open_integrity_body(const SessionKeys& keys, Bytes&& body) {
  if (body.size() < kFragHeaderSize + kMacSize)
    return err("integrity body: too short");
  if (!check_mac(keys, "integ", body))
    return err("integrity body: MAC verification failed");
  OpenedBody opened;
  opened.frag = read_frag(body.data());
  std::size_t payload_len = body.size() - kMacSize - kFragHeaderSize;
  opened.payload =
      move_out_payload(std::move(body), kFragHeaderSize, payload_len);
  return opened;
}

Result<OpenedBody> open_data_body(const SessionKeys& keys, ByteView body) {
  return open_data_body(keys, Bytes(body.begin(), body.end()));
}

Result<OpenedBody> open_integrity_body(const SessionKeys& keys, ByteView body) {
  return open_integrity_body(keys, Bytes(body.begin(), body.end()));
}

void seal_ping_body(const SessionKeys& keys, const PingInfo& info,
                    WireBuffer& out) {
  out.reset(kSealHeadroom);
  out.reserve_tail(16 + kMacSize);
  std::uint8_t* p = out.append(16);
  put_u64(p, info.seq);
  put_u32(p + 8, info.config_version);
  put_u32(p + 12, info.grace_period_secs);
  append_mac(keys, "ping", out);
}

Bytes seal_ping_body(const SessionKeys& keys, const PingInfo& info) {
  WireBuffer out;
  seal_ping_body(keys, info, out);
  return out.take();
}

Result<PingInfo> open_ping_body(const SessionKeys& keys, ByteView body) {
  if (body.size() != 16 + kMacSize) return err("ping body: bad size");
  if (!check_mac(keys, "ping", body))
    return err("ping body: MAC verification failed");
  PingInfo info;
  info.seq = get_u64(body.data());
  info.config_version = get_u32(body.data() + 8);
  info.grace_period_secs = get_u32(body.data() + 12);
  return info;
}

}  // namespace endbox::vpn
