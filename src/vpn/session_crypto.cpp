#include "vpn/session_crypto.hpp"

#include "crypto/aes.hpp"
#include "crypto/hmac.hpp"

namespace endbox::vpn {

namespace {

constexpr std::size_t kMacSize = 32;
constexpr std::size_t kFragHeaderSize = 16;  // 8 + 4 + 2 + 2

Bytes frag_bytes(const FragmentHeader& frag) {
  Bytes out;
  put_u64(out, frag.packet_id);
  put_u32(out, frag.frag_id);
  put_u16(out, frag.index);
  put_u16(out, frag.count);
  return out;
}

FragmentHeader read_frag(ByteReader& r) {
  FragmentHeader frag;
  frag.packet_id = r.u64();
  frag.frag_id = r.u32();
  frag.index = r.u16();
  frag.count = r.u16();
  return frag;
}

Bytes mac_over(const SessionKeys& keys, std::string_view label, ByteView data) {
  Bytes input = to_bytes(label);
  append(input, data);
  return crypto::hmac_sha256(keys.mac_key, input);
}

}  // namespace

SessionKeys derive_vpn_keys(std::uint64_t seed, ByteView client_nonce,
                            ByteView server_nonce) {
  Bytes material;
  put_u64(material, seed);
  append(material, client_nonce);
  append(material, server_nonce);
  SessionKeys keys;
  keys.enc_key = crypto::derive_key(material, "vpn-enc", 16);
  keys.mac_key = crypto::derive_key(material, "vpn-mac", 32);
  return keys;
}

Bytes seal_data_body(const SessionKeys& keys, const FragmentHeader& frag,
                     ByteView payload, Rng& rng) {
  Bytes body = frag_bytes(frag);
  Bytes iv = rng.bytes(16);
  append(body, iv);
  append(body, crypto::aes128_cbc_encrypt(crypto::make_aes_key(keys.enc_key), iv,
                                          payload));
  append(body, mac_over(keys, "data", body));
  return body;
}

Bytes seal_integrity_body(const SessionKeys& keys, const FragmentHeader& frag,
                          ByteView payload) {
  Bytes body = frag_bytes(frag);
  append(body, payload);
  append(body, mac_over(keys, "integ", body));
  return body;
}

Result<OpenedBody> open_data_body(const SessionKeys& keys, ByteView body) {
  if (body.size() < kFragHeaderSize + 16 + kMacSize)
    return err("data body: too short");
  std::size_t authed_len = body.size() - kMacSize;
  if (!ct_equal(mac_over(keys, "data", body.subspan(0, authed_len)),
                body.subspan(authed_len)))
    return err("data body: MAC verification failed");

  ByteReader r(body.subspan(0, authed_len));
  OpenedBody opened;
  opened.frag = read_frag(r);
  Bytes iv = r.take(16);
  auto plaintext = crypto::aes128_cbc_decrypt(crypto::make_aes_key(keys.enc_key),
                                              iv, r.rest());
  if (!plaintext.ok()) return err("data body: " + plaintext.error());
  opened.payload = std::move(*plaintext);
  return opened;
}

Result<OpenedBody> open_integrity_body(const SessionKeys& keys, ByteView body) {
  if (body.size() < kFragHeaderSize + kMacSize)
    return err("integrity body: too short");
  std::size_t authed_len = body.size() - kMacSize;
  if (!ct_equal(mac_over(keys, "integ", body.subspan(0, authed_len)),
                body.subspan(authed_len)))
    return err("integrity body: MAC verification failed");
  ByteReader r(body.subspan(0, authed_len));
  OpenedBody opened;
  opened.frag = read_frag(r);
  opened.payload = r.rest();
  return opened;
}

Bytes seal_ping_body(const SessionKeys& keys, const PingInfo& info) {
  Bytes body;
  put_u64(body, info.seq);
  put_u32(body, info.config_version);
  put_u32(body, info.grace_period_secs);
  append(body, mac_over(keys, "ping", body));
  return body;
}

Result<PingInfo> open_ping_body(const SessionKeys& keys, ByteView body) {
  if (body.size() != 16 + kMacSize) return err("ping body: bad size");
  if (!ct_equal(mac_over(keys, "ping", body.subspan(0, 16)), body.subspan(16)))
    return err("ping body: MAC verification failed");
  PingInfo info;
  info.seq = get_u64(body.data());
  info.config_version = get_u32(body.data() + 8);
  info.grace_period_secs = get_u32(body.data() + 12);
  return info;
}

}  // namespace endbox::vpn
