// Pre-optimisation reference implementations of the data-channel
// seal/open (the PR-1 code, verbatim): one Bytes allocation per field
// plus a full body copy inside the MAC, and per-call HMAC key
// processing. Kept so the micro-benchmarks can measure the optimised
// fast path against the exact baseline it replaced, and so property
// tests can assert wire-format equivalence. Not used on any data path.
#pragma once

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "vpn/session_crypto.hpp"

namespace endbox::vpn::reference {

Bytes seal_data_body(const SessionKeys& keys, const FragmentHeader& frag,
                     ByteView payload, Rng& rng);
Bytes seal_integrity_body(const SessionKeys& keys, const FragmentHeader& frag,
                          ByteView payload);
Result<OpenedBody> open_data_body(const SessionKeys& keys, ByteView body);
Result<OpenedBody> open_integrity_body(const SessionKeys& keys, ByteView body);

}  // namespace endbox::vpn::reference
