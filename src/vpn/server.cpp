#include "vpn/server.hpp"

#include <array>
#include <cstring>
#include <stdexcept>

#include "crypto/hmac.hpp"

namespace endbox::vpn {

VpnServer::VpnServer(Rng& rng, crypto::RsaPublicKey ca_key, VpnServerConfig config)
    : rng_(rng), ca_key_(ca_key), config_(config), key_(crypto::rsa_generate(rng)) {
  std::size_t shards = config_.session_shards == 0 ? 1 : config_.session_shards;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) shards_.push_back(make_shard());
  ensure_worker_pool();
  if (config_.handshake_dedupe_horizon > 0 &&
      config_.handshake_dedupe_capacity > 0) {
    HandshakeCache::Options options{config_.handshake_dedupe_capacity,
                                    config_.handshake_dedupe_horizon,
                                    {}};
    // A full cache recycles its oldest entry: a connect storm degrades
    // dedupe coverage, never admission.
    options.eviction = EvictionPolicy::EvictIdleLongest;
    handshake_cache_.emplace(options);
  }
}

void VpnServer::ensure_worker_pool() {
  click::ShardWorkerPool::ensure(pool_, shards_.size());
}

VpnServer::Session* VpnServer::find_session(std::uint32_t id) {
  SessionTable::Entry* entry = shard_of(id).sessions.find(id);
  return entry ? &entry->value : nullptr;
}

VpnServer::SessionTable::Entry* VpnServer::find_session_entry(std::uint32_t id) {
  return shard_of(id).sessions.find(id);
}

std::uint32_t VpnServer::session_config_version(std::uint32_t session_id) const {
  const auto& sessions = shards_[shard_of_session(session_id)]->sessions;
  const SessionTable::Entry* entry = sessions.find(session_id);
  return entry ? entry->value.config_version : 0;
}

std::uint64_t VpnServer::auth_failures() const {
  std::uint64_t n = 0;
  for (const auto& shard : shards_) n += shard->auth_failures;
  return n;
}

std::uint64_t VpnServer::replays_rejected() const {
  std::uint64_t n = 0;
  for (const auto& shard : shards_) n += shard->replays_rejected;
  return n;
}

std::uint64_t VpnServer::stale_config_drops() const {
  std::uint64_t n = 0;
  for (const auto& shard : shards_) n += shard->stale_config_drops;
  return n;
}

std::uint64_t VpnServer::sessions_expired() const {
  std::uint64_t n = 0;
  for (const auto& shard : shards_) n += shard->sessions.stats().expired_idle;
  return n;
}

std::uint64_t VpnServer::sessions_rejected_full() const {
  std::uint64_t n = 0;
  for (const auto& shard : shards_) n += shard->sessions.stats().rejected_full;
  return n;
}

std::uint64_t VpnServer::sessions_evicted_lru() const {
  std::uint64_t n = 0;
  for (const auto& shard : shards_) n += shard->sessions.stats().evicted_lru;
  return n;
}

std::uint64_t VpnServer::fragments_expired() const {
  std::uint64_t n = 0;
  for (const auto& shard : shards_)
    shard->sessions.for_each([&](std::uint32_t, const Session& session) {
      n += session.reassembler.expired();
    });
  return n;
}

std::size_t VpnServer::expire_idle_sessions(sim::Time now) {
  if (config_.session_idle_timeout == 0) return 0;
  std::size_t expired = 0;
  for (auto& shard : shards_)
    expired += shard->sessions.expire_idle(
        now, [&](std::uint32_t id, Session&&) { fire_close_hook(id); });
  return expired;
}

bool VpnServer::close_session(std::uint32_t session_id) {
  if (!shard_of(session_id).sessions.erase(session_id)) return false;
  fire_close_hook(session_id);
  return true;
}

std::size_t VpnServer::restart() {
  std::size_t closed = 0;
  for (auto& shard : shards_)
    shard->sessions.extract_all([&](std::uint32_t id, Session&&, sim::Time) {
      fire_close_hook(id);
      ++closed;
    });
  // The cached replies name sessions that no longer exist; drop them so
  // a retransmitted init gets a fresh handshake, not a dead session id.
  if (handshake_cache_)
    handshake_cache_->extract_all([](std::uint64_t, CachedHandshake&&, sim::Time) {});
  return closed;
}

Result<VpnServer::Event> VpnServer::handle(ByteView wire, sim::Time now) {
  expire_idle_sessions(now);
  if (handshake_cache_)
    handshake_cache_->expire_idle(now, [](std::uint64_t, CachedHandshake&&) {});
  auto msg = WireMessage::parse(wire);
  if (!msg.ok()) return err(msg.error());
  switch (msg->type) {
    case MsgType::HandshakeInit: return handle_handshake(*msg, now);
    case MsgType::HandshakeReply: return err("unexpected handshake reply at server");
    case MsgType::Data:
    case MsgType::DataIntegrityOnly: return handle_data(*msg, now);
    case MsgType::Ping: return handle_ping(*msg, now);
  }
  return err("unreachable");
}

Result<VpnServer::Event> VpnServer::handle_handshake(const WireMessage& msg,
                                                     sim::Time now) {
  try {
    ByteReader r(msg.body);
    std::uint16_t proposed_version = r.u16();
    std::uint32_t client_config_version = r.u32();
    Bytes client_nonce = r.take(16);
    auto cert = ca::Certificate::deserialize(r.take(r.u16()));
    if (!cert.ok()) {
      ++handshakes_rejected_;
      return err("handshake: " + cert.error());
    }
    // Only CA-certified (i.e. successfully attested) enclaves connect.
    if (!cert->verify(ca_key_)) {
      ++handshakes_rejected_;
      return err("handshake: certificate not signed by our CA");
    }
    // Server-side minimum version check (section V-A, downgrade).
    if (proposed_version < config_.min_version) {
      ++handshakes_rejected_;
      return err("handshake: client proposed version below server minimum");
    }
    std::uint16_t chosen_version = proposed_version;

    // Duplicate suppression: a retransmitted or network-duplicated
    // init (same bytes, same nonce) gets the same reply — no second
    // session, no ledger double-entry downstream. The content hash is
    // confirmed against the stored nonce so a collision falls through
    // to a fresh handshake instead of handing out someone else's reply.
    std::uint64_t dedupe_key = 0;
    if (handshake_cache_) {
      dedupe_key = hash_bytes(msg.body.data(), msg.body.size());
      if (HandshakeCache::Entry* hit = handshake_cache_->find(dedupe_key);
          hit && hit->value.nonce == client_nonce &&
          has_session(hit->value.session_id)) {
        ++handshakes_deduped_;
        return Event{HandshakeDone{hit->value.session_id, hit->value.reply_wire}};
      }
    }

    // Session secret, encrypted to the enclave public key: only the
    // attested enclave can derive the data-channel keys.
    std::uint64_t seed = rng_.uniform(1, (1ULL << 48) - 1);
    Bytes server_nonce = rng_.bytes(16);
    Bytes encrypted_seed = crypto::rsa_encrypt(cert->subject_key, seed);
    std::uint32_t session_id = next_session_id_++;

    // Fixed-size transcript ([version:2][session_id:4][client_nonce:16]
    // [server_nonce:16][encrypted_seed:8]) assembled on the stack —
    // mirrors the enclave side, no per-handshake heap traffic. The
    // session id is inside the signature, so flipping it in the wire
    // header cannot bind the client to a different session.
    std::array<std::uint8_t, 2 + 4 + 16 + 16 + 8> transcript;
    put_u16(transcript.data(), chosen_version);
    put_u32(transcript.data() + 2, session_id);
    std::memcpy(transcript.data() + 6, client_nonce.data(), 16);
    std::memcpy(transcript.data() + 22, server_nonce.data(), 16);
    std::memcpy(transcript.data() + 38, encrypted_seed.data(), 8);
    Bytes signature = crypto::rsa_sign(key_, transcript);

    SessionShard& shard = shard_of(session_id);
    Session session;
    session.keys = derive_vpn_keys(seed, client_nonce, server_nonce);
    session.config_version = client_config_version;
    // The IV stream is per session (seeded here, on the single-threaded
    // handshake path), so seal paths are shard-safe and the session's
    // ciphertext stream does not depend on the shard count.
    session.iv_rng = Rng(rng_.next_u64());
    session.reassembler.set_pool(&shard.pool);
    session.reassembler.set_horizon(config_.fragment_horizon);
    SessionTable::Entry* entry =
        shard.sessions.insert(session_id, std::move(session), now);
    if (!entry) {
      // Shard at capacity: bounded enclave memory beats a connect storm.
      // (With lru_eviction the table evicted an idle session instead and
      // this only fires when every candidate was pinned mid-handshake.)
      ++handshakes_rejected_;
      return err("handshake: session shard at capacity");
    }
    // Mid-handshake shield: not an LRU victim until the client's first
    // authenticated frame (which unpins) or the grace lapses.
    if (config_.lru_eviction && config_.handshake_pin > 0)
      shard.sessions.pin(*entry, now + config_.handshake_pin);

    WireMessage reply;
    reply.type = MsgType::HandshakeReply;
    reply.session_id = session_id;
    reply.body.reserve(2 + server_nonce.size() + encrypted_seed.size() +
                       signature.size());
    put_u16(reply.body, chosen_version);
    append(reply.body, server_nonce);
    append(reply.body, encrypted_seed);
    append(reply.body, signature);
    Bytes reply_wire = reply.serialize();
    if (handshake_cache_)
      handshake_cache_->insert(
          dedupe_key, CachedHandshake{client_nonce, reply_wire, session_id},
          now);
    return Event{HandshakeDone{session_id, std::move(reply_wire)}};
  } catch (const std::out_of_range&) {
    ++handshakes_rejected_;
    return err("handshake: truncated");
  }
}

Result<VpnServer::Event> VpnServer::handle_data(const WireMessage& msg,
                                                sim::Time now) {
  SessionTable::Entry* entry = find_session_entry(msg.session_id);
  if (!entry) return err("unknown session");
  Session* session = &entry->value;
  SessionShard& shard = shard_of(msg.session_id);

  bool encrypted = msg.type == MsgType::Data;
  if (!encrypted && !config_.allow_integrity_only) {
    ++shard.auth_failures;
    return err("integrity-only mode not allowed by server policy");
  }

  // Configuration freshness (section III-E): after the grace period,
  // only clients running the current configuration may send traffic.
  if (session->config_version < config_version_ && grace_active_ &&
      now >= grace_deadline_) {
    ++shard.stale_config_drops;
    return err("stale middlebox configuration (have v" +
               std::to_string(session->config_version) + ", need v" +
               std::to_string(config_version_) + ")");
  }

  auto opened = encrypted ? open_data_body(session->keys, msg.body)
                          : open_integrity_body(session->keys, msg.body);
  if (!opened.ok()) {
    ++shard.auth_failures;
    return err(opened.error());
  }
  if (!session->replay.accept(opened->frag.packet_id)) {
    ++shard.replays_rejected;
    return err("replayed packet");
  }
  // Only authenticated, replay-fresh traffic refreshes the idle timer
  // (and lifts the mid-handshake eviction shield).
  shard.sessions.touch(*entry, now);
  shard.sessions.unpin(*entry);
  auto whole =
      session->reassembler.add(opened->frag, std::move(opened->payload), now);
  if (!whole) return Event{FragmentPending{msg.session_id}};
  return Event{PacketIn{msg.session_id, std::move(*whole), encrypted}};
}

Result<VpnServer::Event> VpnServer::handle_ping(const WireMessage& msg,
                                                sim::Time now) {
  SessionTable::Entry* entry = find_session_entry(msg.session_id);
  if (!entry) return err("unknown session");
  Session* session = &entry->value;
  auto info = open_ping_body(session->keys, msg.body);
  if (!info.ok()) {
    ++shard_of(msg.session_id).auth_failures;
    return err(info.error());
  }
  shard_of(msg.session_id).sessions.touch(*entry, now);
  shard_of(msg.session_id).sessions.unpin(*entry);
  // Record the client's (authenticated) configuration version. A ping
  // cannot roll the version back: versions increase monotonically.
  if (info->config_version > session->config_version)
    session->config_version = info->config_version;
  return Event{PingIn{msg.session_id, *info}};
}

std::vector<WireMessage> VpnServer::seal_packet(std::uint32_t session_id,
                                                ByteView ip_packet) {
  Session* session = find_session(session_id);
  if (!session) throw std::logic_error("VpnServer: unknown session");
  std::vector<WireMessage> messages;
  messages.reserve(fragment_count(ip_packet.size(), config_.mtu));
  for_each_fragment(
      ip_packet, config_.mtu, session->next_packet_id, session->next_frag_id++,
      [&](const FragmentHeader& frag, ByteView slice) {
        WireMessage msg;
        msg.type = MsgType::Data;
        msg.session_id = session_id;
        seal_data_body(session->keys, frag, slice, session->iv_rng,
                       session->seal_scratch);
        msg.body.assign(session->seal_scratch.view().begin(),
                        session->seal_scratch.view().end());
        messages.push_back(std::move(msg));
      });
  return messages;
}

void VpnServer::seal_packet_wire(std::uint32_t session_id, ByteView ip_packet,
                                 std::vector<Bytes>& frames) {
  frames.resize(fragment_count(ip_packet.size(), config_.mtu));
  seal_packet_wire_at(session_id, ip_packet, frames, 0);
}

std::size_t VpnServer::seal_fragments(std::uint32_t session_id, Session& session,
                                      ByteView ip_packet,
                                      std::vector<Bytes>& frames, std::size_t at,
                                      bool may_grow) {
  std::size_t count = for_each_fragment(
      ip_packet, config_.mtu, session.next_packet_id, session.next_frag_id++,
      [&](const FragmentHeader& frag, ByteView slice) {
        seal_data_body(session.keys, frag, slice, session.iv_rng,
                       session.seal_scratch);
        std::uint8_t* header = session.seal_scratch.prepend(kWireHeaderSize);
        header[0] = static_cast<std::uint8_t>(MsgType::Data);
        put_u32(header + 1, session_id);
        std::size_t slot = at + frag.index;
        // Workers write into pre-sized disjoint slot ranges; only the
        // single-threaded callers may grow the vector.
        if (may_grow && frames.size() <= slot) frames.emplace_back();
        frames[slot].assign(session.seal_scratch.view().begin(),
                            session.seal_scratch.view().end());
      });
  return at + count;
}

std::size_t VpnServer::seal_packet_wire_at(std::uint32_t session_id,
                                           ByteView ip_packet,
                                           std::vector<Bytes>& frames,
                                           std::size_t at) {
  Session* session = find_session(session_id);
  if (!session) throw std::logic_error("VpnServer: unknown session");
  return seal_fragments(session_id, *session, ip_packet, frames, at,
                        /*may_grow=*/true);
}

void VpnServer::open_frame_on_shard(SessionShard& shard, const Bytes& wire,
                                    std::uint32_t idx, sim::Time now) {
  OpenBatch& out = shard.scratch;
  auto type = static_cast<MsgType>(wire[0]);
  std::uint32_t session_id = get_u32(wire.data() + 1);
  // On the lane path dispatch never looked the session up — the lane
  // owns the table, so the unknown-session reject lives here. (The
  // staged path stages known sessions only; sessions never leave
  // mid-burst because expiry runs on the caller before dispatch.)
  SessionTable::Entry* found = shard.sessions.find(session_id);
  if (!found) {
    ++out.rejected;
    return;
  }
  SessionTable::Entry& entry = *found;
  Session& session = entry.value;
  bool encrypted = type == MsgType::Data;
  if (!encrypted && !config_.allow_integrity_only) {
    ++shard.auth_failures;
    ++out.rejected;
    return;
  }
  if (session.config_version < config_version_ && grace_active_ &&
      now >= grace_deadline_) {
    ++shard.stale_config_drops;
    ++out.rejected;
    return;
  }
  Bytes body = shard.pool.acquire_bytes();
  body.assign(wire.begin() + kWireHeaderSize, wire.end());
  auto opened = encrypted ? open_data_body(session.keys, std::move(body))
                          : open_integrity_body(session.keys, std::move(body));
  if (!opened.ok()) {
    // Failed opens never consume the body (the move happens only on
    // success), so the pooled buffer survives a bad-frame flood.
    shard.pool.release_bytes(std::move(body));
    ++shard.auth_failures;
    ++out.rejected;
    return;
  }
  if (!session.replay.accept(opened->frag.packet_id)) {
    shard.pool.release_bytes(std::move(opened->payload));
    ++shard.replays_rejected;
    ++out.rejected;
    return;
  }
  // Touch = one relaxed timestamp store, so shard workers refresh
  // idle timers without ever taking the wheel (lazy reschedule).
  // Unpin is the same relaxed store: the first authenticated frame
  // lifts the mid-handshake eviction shield.
  shard.sessions.touch(entry, now);
  shard.sessions.unpin(entry);
  out.opened_sessions.push_back(session_id);
  auto whole =
      session.reassembler.add(opened->frag, std::move(opened->payload), now);
  if (!whole) {
    ++out.pending;
    return;
  }
  ++out.complete;
  if (out.packets.size() <= out.packet_count) out.packets.emplace_back();
  BatchPacket& slot = out.packets[out.packet_count++];
  slot.session_id = session_id;
  slot.burst_tag = idx;
  slot.was_encrypted = encrypted;
  // The slot's previous buffer cycles back into the shard's pool,
  // where the next frame's body scratch picks it up.
  shard.pool.release_bytes(std::move(slot.ip_packet));
  slot.ip_packet = std::move(*whole);
}

void VpnServer::open_shard_frames(SessionShard& shard,
                                  std::span<const Bytes> wires, sim::Time now) {
  for (std::uint32_t idx : shard.frame_idx)
    open_frame_on_shard(shard, wires[idx], idx, now);
}

void VpnServer::open_lane_frames(SessionShard& shard,
                                 std::span<const Bytes> wires, sim::Time now) {
  std::uint32_t idx = 0;
  while (shard.ring.try_pop(idx)) {
    ++shard.lane_frames;
    open_frame_on_shard(shard, wires[idx], idx, now);
  }
}

void VpnServer::merge_opened(OpenBatch& out) {
  std::size_t shards = shards_.size();
  merge_heads_.assign(shards, 0);
  while (true) {
    std::size_t best = shards;
    std::uint32_t best_tag = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      const OpenBatch& scratch = shards_[s]->scratch;
      if (merge_heads_[s] >= scratch.packet_count) continue;
      std::uint32_t tag = scratch.packets[merge_heads_[s]].burst_tag;
      if (best == shards || tag < best_tag) {
        best = s;
        best_tag = tag;
      }
    }
    if (best == shards) break;
    BatchPacket& src = shards_[best]->scratch.packets[merge_heads_[best]++];
    if (out.packets.size() <= out.packet_count) out.packets.emplace_back();
    BatchPacket& dst = out.packets[out.packet_count++];
    // Swap, not move: the caller slot's previous buffer parks in the
    // shard scratch slot, where the shard's next burst recycles it into
    // its pool — the whole circulation stays allocation-free.
    std::swap(dst.ip_packet, src.ip_packet);
    dst.session_id = src.session_id;
    dst.burst_tag = src.burst_tag;
    dst.was_encrypted = src.was_encrypted;
  }
}

void VpnServer::collect_lanes(OpenBatch& out) {
  for (const auto& shard : shards_) {
    out.complete += shard->scratch.complete;
    out.pending += shard->scratch.pending;
    out.rejected += shard->scratch.rejected;
    out.opened_sessions.insert(out.opened_sessions.end(),
                               shard->scratch.opened_sessions.begin(),
                               shard->scratch.opened_sessions.end());
    for (std::size_t k = 0; k < shard->scratch.packet_count; ++k) {
      BatchPacket& src = shard->scratch.packets[k];
      if (out.packets.size() <= out.packet_count) out.packets.emplace_back();
      BatchPacket& dst = out.packets[out.packet_count++];
      // Swap, not move: the caller slot's previous buffer parks in the
      // lane scratch slot, where the lane's next burst recycles it into
      // its pool — the whole circulation stays allocation-free.
      std::swap(dst.ip_packet, src.ip_packet);
      dst.session_id = src.session_id;
      dst.burst_tag = src.burst_tag;
      dst.was_encrypted = src.was_encrypted;
    }
  }
}

void VpnServer::rebalance_lane_pools() {
  if (shards_.size() <= 1) return;
  for (auto& shard : shards_) {
    std::uint64_t starved = shard->pool.starved();
    if (starved == shard->starved_mark) continue;  // no new starvation
    shard->starved_mark = starved;
    // Adopt half of the richest sibling's buffers: the hot lane's next
    // burst draws from the pool instead of the heap, and the donor —
    // by construction the least pressed — keeps circulating.
    SessionShard* donor = nullptr;
    for (auto& other : shards_) {
      if (other.get() == shard.get()) continue;
      if (!donor || other->pool.pooled() > donor->pool.pooled())
        donor = other.get();
    }
    if (donor && donor->pool.pooled() > 1)
      shard->pool.adopt_from(donor->pool, donor->pool.pooled() / 2);
  }
}

void VpnServer::open_batch(std::span<const Bytes> wires, sim::Time now,
                           OpenBatch& out) {
  expire_idle_sessions(now);  // on the caller, before dispatch pins lanes
  out.complete = out.pending = out.rejected = 0;
  out.packet_count = 0;
  out.opened_sessions.clear();
  for (auto& shard : shards_) {
    shard->ring.clear();
    shard->ring.reserve(wires.size());
    shard->scratch.complete = shard->scratch.pending = shard->scratch.rejected = 0;
    shard->scratch.packet_count = 0;
    shard->scratch.opened_sessions.clear();
  }

  // Lane dispatch — the pipeline's only serial section: size/type
  // check, RSS hash, ring push. No session lookup, no partition
  // vectors; everything else runs on the lane.
  std::size_t busy_lanes = 0;
  std::size_t last_busy = 0;
  for (std::size_t i = 0; i < wires.size(); ++i) {
    const Bytes& wire = wires[i];
    if (wire.size() < kWireHeaderSize) {
      ++out.rejected;
      continue;
    }
    auto type = static_cast<MsgType>(wire[0]);
    if (type != MsgType::Data && type != MsgType::DataIntegrityOnly) {
      ++out.rejected;
      continue;
    }
    std::size_t s = shard_of_session(get_u32(wire.data() + 1));
    if (shards_[s]->ring.empty()) {
      ++busy_lanes;
      last_busy = s;
    }
    shards_[s]->ring.try_push(static_cast<std::uint32_t>(i));  // reserved above
  }

  // Run the lanes: concurrently when more than one has work (caller
  // participates via the pool), inline otherwise — a single-lane
  // server never touches a lock, keeping the 1-lane path within noise
  // of the pre-sharding baseline.
  if (busy_lanes == 1) {
    open_lane_frames(*shards_[last_busy], wires, now);
  } else if (busy_lanes > 1) {
    pool_->run(shards_.size(), [&](std::size_t s) {
      if (!shards_[s]->ring.empty()) open_lane_frames(*shards_[s], wires, now);
    });
  }

  // Collect in lane order — no cross-lane merge barrier. Per-session
  // order is exact (one FIFO lane per session); global order is not
  // part of the contract.
  collect_lanes(out);
  rebalance_lane_pools();
}

void VpnServer::open_batch_staged(std::span<const Bytes> wires, sim::Time now,
                                  OpenBatch& out) {
  expire_idle_sessions(now);  // on the caller, before staging pins sessions
  out.complete = out.pending = out.rejected = 0;
  out.packet_count = 0;
  out.opened_sessions.clear();
  for (auto& shard : shards_) {
    shard->frame_idx.clear();
    shard->scratch.complete = shard->scratch.pending = shard->scratch.rejected = 0;
    shard->scratch.packet_count = 0;
    shard->scratch.opened_sessions.clear();
  }

  // Stage on the caller: header parse, session-shard lookup, partition.
  // Frames no shard could own — malformed, non-data, unknown session —
  // reject here, exactly as the pre-sharding loop did.
  std::size_t staged_shards = 0;
  std::size_t last_staged = 0;
  for (std::size_t i = 0; i < wires.size(); ++i) {
    const Bytes& wire = wires[i];
    if (wire.size() < kWireHeaderSize) {
      ++out.rejected;
      continue;
    }
    auto type = static_cast<MsgType>(wire[0]);
    if (type != MsgType::Data && type != MsgType::DataIntegrityOnly) {
      ++out.rejected;
      continue;
    }
    std::uint32_t session_id = get_u32(wire.data() + 1);
    std::size_t s = shard_of_session(session_id);
    if (!shards_[s]->sessions.contains(session_id)) {
      ++out.rejected;
      continue;
    }
    if (shards_[s]->frame_idx.empty()) {
      ++staged_shards;
      last_staged = s;
    }
    shards_[s]->frame_idx.push_back(static_cast<std::uint32_t>(i));
  }

  // Run the shards: concurrently when more than one has work (caller
  // participates via the pool), inline otherwise — a single-shard
  // server never touches a lock.
  if (staged_shards == 1) {
    open_shard_frames(*shards_[last_staged], wires, now);
  } else if (staged_shards > 1) {
    pool_->run(shards_.size(), [&](std::size_t s) {
      if (!shards_[s]->frame_idx.empty())
        open_shard_frames(*shards_[s], wires, now);
    });
  }

  for (const auto& shard : shards_) {
    out.complete += shard->scratch.complete;
    out.pending += shard->scratch.pending;
    out.rejected += shard->scratch.rejected;
    out.opened_sessions.insert(out.opened_sessions.end(),
                               shard->scratch.opened_sessions.begin(),
                               shard->scratch.opened_sessions.end());
  }
  merge_opened(out);
}

void VpnServer::open_batch_reference(std::span<const Bytes> wires, sim::Time now,
                                     OpenBatch& out) {
  // The pre-sharding single-threaded loop, byte for byte (modulo the
  // session table now living behind shard_of): the honest baseline the
  // staged path is benchmarked and property-tested against.
  expire_idle_sessions(now);
  out.complete = out.pending = out.rejected = 0;
  out.packet_count = 0;
  out.opened_sessions.clear();
  std::uint32_t tag = 0;
  for (const Bytes& wire : wires) {
    std::uint32_t idx = tag++;
    if (wire.size() < kWireHeaderSize) {
      ++out.rejected;
      continue;
    }
    auto type = static_cast<MsgType>(wire[0]);
    if (type != MsgType::Data && type != MsgType::DataIntegrityOnly) {
      ++out.rejected;
      continue;
    }
    std::uint32_t session_id = get_u32(wire.data() + 1);
    SessionTable::Entry* entry = find_session_entry(session_id);
    if (!entry) {
      ++out.rejected;
      continue;
    }
    Session* session = &entry->value;
    SessionShard& shard = shard_of(session_id);
    bool encrypted = type == MsgType::Data;
    if (!encrypted && !config_.allow_integrity_only) {
      ++shard.auth_failures;
      ++out.rejected;
      continue;
    }
    if (session->config_version < config_version_ && grace_active_ &&
        now >= grace_deadline_) {
      ++shard.stale_config_drops;
      ++out.rejected;
      continue;
    }
    Bytes body = shard.pool.acquire_bytes();
    body.assign(wire.begin() + kWireHeaderSize, wire.end());
    auto opened = encrypted ? open_data_body(session->keys, std::move(body))
                            : open_integrity_body(session->keys, std::move(body));
    if (!opened.ok()) {
      shard.pool.release_bytes(std::move(body));
      ++shard.auth_failures;
      ++out.rejected;
      continue;
    }
    if (!session->replay.accept(opened->frag.packet_id)) {
      shard.pool.release_bytes(std::move(opened->payload));
      ++shard.replays_rejected;
      ++out.rejected;
      continue;
    }
    shard.sessions.touch(*entry, now);
    shard.sessions.unpin(*entry);
    out.opened_sessions.push_back(session_id);
    auto whole =
        session->reassembler.add(opened->frag, std::move(opened->payload), now);
    if (!whole) {
      ++out.pending;
      continue;
    }
    ++out.complete;
    if (out.packets.size() <= out.packet_count) out.packets.emplace_back();
    BatchPacket& slot = out.packets[out.packet_count++];
    slot.session_id = session_id;
    slot.burst_tag = idx;
    slot.was_encrypted = encrypted;
    shard.pool.release_bytes(std::move(slot.ip_packet));
    slot.ip_packet = std::move(*whole);
  }
}

void VpnServer::open_batch_shard(std::size_t shard, std::span<const Bytes> wires,
                                 sim::Time now, OpenBatch& out) {
  out.complete = out.pending = out.rejected = 0;
  out.packet_count = 0;
  out.opened_sessions.clear();
  SessionShard& target = *shards_.at(shard);
  target.frame_idx.clear();
  target.scratch.complete = target.scratch.pending = target.scratch.rejected = 0;
  target.scratch.packet_count = 0;
  target.scratch.opened_sessions.clear();
  // Frames not pinned to `shard` — including frames no shard could own —
  // are skipped silently: this hook times one shard's slice of a burst.
  for (std::size_t i = 0; i < wires.size(); ++i) {
    const Bytes& wire = wires[i];
    if (wire.size() < kWireHeaderSize) continue;
    auto type = static_cast<MsgType>(wire[0]);
    if (type != MsgType::Data && type != MsgType::DataIntegrityOnly) continue;
    std::uint32_t session_id = get_u32(wire.data() + 1);
    if (shard_of_session(session_id) != shard) continue;
    if (!target.sessions.contains(session_id)) continue;
    target.frame_idx.push_back(static_cast<std::uint32_t>(i));
  }
  open_shard_frames(target, wires, now);
  out.complete = target.scratch.complete;
  out.pending = target.scratch.pending;
  out.rejected = target.scratch.rejected;
  out.opened_sessions = target.scratch.opened_sessions;
  for (std::size_t k = 0; k < target.scratch.packet_count; ++k) {
    BatchPacket& src = target.scratch.packets[k];
    if (out.packets.size() <= out.packet_count) out.packets.emplace_back();
    BatchPacket& dst = out.packets[out.packet_count++];
    std::swap(dst.ip_packet, src.ip_packet);
    dst.session_id = src.session_id;
    dst.burst_tag = src.burst_tag;
    dst.was_encrypted = src.was_encrypted;
  }
}

void VpnServer::open_batch_lane(std::size_t lane, std::span<const Bytes> wires,
                                sim::Time now, OpenBatch& out) {
  out.complete = out.pending = out.rejected = 0;
  out.packet_count = 0;
  out.opened_sessions.clear();
  SessionShard& target = *shards_.at(lane);
  target.ring.clear();
  target.ring.reserve(wires.size());
  target.scratch.complete = target.scratch.pending = target.scratch.rejected = 0;
  target.scratch.packet_count = 0;
  target.scratch.opened_sessions.clear();
  // The full lane dispatch runs (every frame is size-checked and
  // hashed — that cost is real and serial), but only this lane's
  // frames are pushed; timing this per lane and taking the max is the
  // pipeline's honest critical path.
  for (std::size_t i = 0; i < wires.size(); ++i) {
    const Bytes& wire = wires[i];
    if (wire.size() < kWireHeaderSize) continue;
    auto type = static_cast<MsgType>(wire[0]);
    if (type != MsgType::Data && type != MsgType::DataIntegrityOnly) continue;
    if (shard_of_session(get_u32(wire.data() + 1)) != lane) continue;
    target.ring.try_push(static_cast<std::uint32_t>(i));  // reserved above
  }
  open_lane_frames(target, wires, now);
  out.complete = target.scratch.complete;
  out.pending = target.scratch.pending;
  out.rejected = target.scratch.rejected;
  out.opened_sessions = target.scratch.opened_sessions;
  for (std::size_t k = 0; k < target.scratch.packet_count; ++k) {
    BatchPacket& src = target.scratch.packets[k];
    if (out.packets.size() <= out.packet_count) out.packets.emplace_back();
    BatchPacket& dst = out.packets[out.packet_count++];
    std::swap(dst.ip_packet, src.ip_packet);
    dst.session_id = src.session_id;
    dst.burst_tag = src.burst_tag;
    dst.was_encrypted = src.was_encrypted;
  }
}

void VpnServer::reset_replay_windows() {
  for (auto& shard : shards_)
    shard->sessions.for_each(
        [](std::uint32_t, Session& session) { session.replay = ReplayWindow{}; });
}

std::size_t VpnServer::seal_batch(std::uint32_t session_id,
                                  std::span<const ByteView> ip_packets,
                                  std::vector<Bytes>& frames, std::size_t at) {
  for (ByteView ip_packet : ip_packets)
    at = seal_packet_wire_at(session_id, ip_packet, frames, at);
  return at;
}

std::size_t VpnServer::stage_seal_jobs(std::span<const SealJob> jobs,
                                       std::vector<Bytes>& frames) {
  for (auto& shard : shards_) {
    shard->ring.clear();
    shard->ring.reserve(jobs.size());
  }
  seal_bases_.resize(jobs.size());
  std::size_t total = 0;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    if (!find_session(jobs[j].session_id))
      throw std::logic_error("VpnServer: unknown session");
    seal_bases_[j] = total;
    total += fragment_count(jobs[j].ip_packet.size(), config_.mtu);
    // Hand the job to its session's lane through the SPSC ring (the
    // lane pipeline's hand-off; never full — reserved above).
    shard_of(jobs[j].session_id).ring.try_push(static_cast<std::uint32_t>(j));
  }
  // Size the output once, up front: every job's slot range is disjoint,
  // so lane workers write without ever touching the vector itself.
  if (frames.size() < total) frames.resize(total);
  return total;
}

std::size_t VpnServer::seal_jobs(std::span<const SealJob> jobs,
                                 std::vector<Bytes>& frames) {
  std::size_t total = stage_seal_jobs(jobs, frames);
  // Each lane drains its ring run-to-completion; output slots are
  // disjoint and precomputed, so the frames are byte-identical at any
  // lane count.
  auto seal_lane = [&](SessionShard& shard) {
    std::uint32_t j = 0;
    while (shard.ring.try_pop(j)) {
      Session& session = shard.sessions.find(jobs[j].session_id)->value;
      seal_fragments(jobs[j].session_id, session, jobs[j].ip_packet, frames,
                     seal_bases_[j], /*may_grow=*/false);
    }
  };
  std::size_t busy_lanes = 0;
  std::size_t last_busy = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s]->ring.empty()) continue;
    ++busy_lanes;
    last_busy = s;
  }
  if (busy_lanes == 1) {
    seal_lane(*shards_[last_busy]);
  } else if (busy_lanes > 1) {
    pool_->run(shards_.size(), [&](std::size_t s) {
      if (!shards_[s]->ring.empty()) seal_lane(*shards_[s]);
    });
  }
  return total;
}

std::size_t VpnServer::seal_jobs_shard(std::size_t shard,
                                       std::span<const SealJob> jobs,
                                       std::vector<Bytes>& frames) {
  std::size_t total = stage_seal_jobs(jobs, frames);
  SessionShard& target = *shards_.at(shard);
  std::uint32_t j = 0;
  while (target.ring.try_pop(j)) {
    Session& session = target.sessions.find(jobs[j].session_id)->value;
    seal_fragments(jobs[j].session_id, session, jobs[j].ip_packet, frames,
                   seal_bases_[j], /*may_grow=*/false);
  }
  return total;
}

Status VpnServer::reshard_sessions(std::size_t new_shards) {
  if (new_shards == 0)
    return err("reshard: session-shard count must be positive");
  if (new_shards == shards_.size()) return {};

  std::vector<std::unique_ptr<SessionShard>> built;
  built.reserve(new_shards);
  for (std::size_t i = 0; i < new_shards; ++i) built.push_back(make_shard());

  for (std::size_t o = 0; o < shards_.size(); ++o) {
    SessionShard& old_shard = *shards_[o];
    // Sessions move wholesale to the shard their id now hashes to:
    // keys, replay window, pending fragment groups and seal scratch all
    // travel, so in-flight reassembly and anti-replay survive the
    // transition (the lossless property the adaptive controller needs).
    // Activity stamps travel too, and insert_migrated re-arms each
    // session's idle timer at last_activity + timeout on the new
    // shard's wheel — a reshard neither expires a session early nor
    // immortalises it. Migration bypasses the admission bound (moves
    // must be lossless); the bound re-applies to new handshakes.
    old_shard.sessions.extract_all(
        [&](std::uint32_t id, Session&& session, sim::Time last_activity) {
          SessionShard& target = *built[shard_of_id(id, new_shards)];
          session.reassembler.set_pool(&target.pool);
          target.sessions.insert_migrated(id, std::move(session), last_activity);
        });
    // Statistics fold like ShardedRouter::reshard: old shard o merges
    // into new shard o % n exactly once, preserving aggregate totals
    // (including the lifecycle counters: expiries, capacity rejects).
    SessionShard& fold = *built[o % new_shards];
    fold.auth_failures += old_shard.auth_failures;
    fold.replays_rejected += old_shard.replays_rejected;
    fold.stale_config_drops += old_shard.stale_config_drops;
    fold.sessions.absorb_stats(old_shard.sessions.stats());
    // Pooled buffers are capacity, not state: adopt them so the new
    // shard set starts warm instead of re-allocating its way up.
    fold.pool.adopt_from(old_shard.pool);
  }
  shards_ = std::move(built);
  ensure_worker_pool();
  ++reshard_count_;
  return {};
}

WireMessage VpnServer::create_ping(std::uint32_t session_id) {
  Session* session = find_session(session_id);
  if (!session) throw std::logic_error("VpnServer: unknown session");
  PingInfo info;
  info.seq = session->next_ping_seq++;
  info.config_version = config_version_;
  info.grace_period_secs = grace_secs_;
  WireMessage msg;
  msg.type = MsgType::Ping;
  msg.session_id = session_id;
  msg.body = seal_ping_body(session->keys, info);
  return msg;
}

void VpnServer::announce_config(std::uint32_t version, std::uint32_t grace_secs,
                                sim::Time now) {
  if (version <= config_version_) return;  // versions only move forward
  config_version_ = version;
  grace_secs_ = grace_secs;
  grace_deadline_ = now + static_cast<sim::Time>(grace_secs) * sim::kSecond;
  grace_active_ = true;
}

}  // namespace endbox::vpn
