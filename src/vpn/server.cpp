#include "vpn/server.hpp"

#include <array>
#include <cstring>

#include "crypto/hmac.hpp"

namespace endbox::vpn {

VpnServer::VpnServer(Rng& rng, crypto::RsaPublicKey ca_key, VpnServerConfig config)
    : rng_(rng), ca_key_(ca_key), config_(config), key_(crypto::rsa_generate(rng)) {}

VpnServer::Session* VpnServer::find_session(std::uint32_t id) {
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : &it->second;
}

std::uint32_t VpnServer::session_config_version(std::uint32_t session_id) const {
  auto it = sessions_.find(session_id);
  return it == sessions_.end() ? 0 : it->second.config_version;
}

Result<VpnServer::Event> VpnServer::handle(ByteView wire, sim::Time now) {
  auto msg = WireMessage::parse(wire);
  if (!msg.ok()) return err(msg.error());
  switch (msg->type) {
    case MsgType::HandshakeInit: return handle_handshake(*msg);
    case MsgType::HandshakeReply: return err("unexpected handshake reply at server");
    case MsgType::Data:
    case MsgType::DataIntegrityOnly: return handle_data(*msg, now);
    case MsgType::Ping: return handle_ping(*msg);
  }
  return err("unreachable");
}

Result<VpnServer::Event> VpnServer::handle_handshake(const WireMessage& msg) {
  try {
    ByteReader r(msg.body);
    std::uint16_t proposed_version = r.u16();
    std::uint32_t client_config_version = r.u32();
    Bytes client_nonce = r.take(16);
    auto cert = ca::Certificate::deserialize(r.take(r.u16()));
    if (!cert.ok()) {
      ++handshakes_rejected_;
      return err("handshake: " + cert.error());
    }
    // Only CA-certified (i.e. successfully attested) enclaves connect.
    if (!cert->verify(ca_key_)) {
      ++handshakes_rejected_;
      return err("handshake: certificate not signed by our CA");
    }
    // Server-side minimum version check (section V-A, downgrade).
    if (proposed_version < config_.min_version) {
      ++handshakes_rejected_;
      return err("handshake: client proposed version below server minimum");
    }
    std::uint16_t chosen_version = proposed_version;

    // Session secret, encrypted to the enclave public key: only the
    // attested enclave can derive the data-channel keys.
    std::uint64_t seed = rng_.uniform(1, (1ULL << 48) - 1);
    Bytes server_nonce = rng_.bytes(16);
    Bytes encrypted_seed = crypto::rsa_encrypt(cert->subject_key, seed);

    // Fixed-size transcript ([version:2][client_nonce:16]
    // [server_nonce:16][encrypted_seed:8]) assembled on the stack —
    // mirrors the enclave side, no per-handshake heap traffic.
    std::array<std::uint8_t, 2 + 16 + 16 + 8> transcript;
    put_u16(transcript.data(), chosen_version);
    std::memcpy(transcript.data() + 2, client_nonce.data(), 16);
    std::memcpy(transcript.data() + 18, server_nonce.data(), 16);
    std::memcpy(transcript.data() + 34, encrypted_seed.data(), 8);
    Bytes signature = crypto::rsa_sign(key_, transcript);

    std::uint32_t session_id = next_session_id_++;
    Session session;
    session.keys = derive_vpn_keys(seed, client_nonce, server_nonce);
    session.config_version = client_config_version;
    session.reassembler.set_pool(&buffer_pool_);
    sessions_.emplace(session_id, std::move(session));

    WireMessage reply;
    reply.type = MsgType::HandshakeReply;
    reply.session_id = session_id;
    reply.body.reserve(2 + server_nonce.size() + encrypted_seed.size() +
                       signature.size());
    put_u16(reply.body, chosen_version);
    append(reply.body, server_nonce);
    append(reply.body, encrypted_seed);
    append(reply.body, signature);
    return Event{HandshakeDone{session_id, reply.serialize()}};
  } catch (const std::out_of_range&) {
    ++handshakes_rejected_;
    return err("handshake: truncated");
  }
}

Result<VpnServer::Event> VpnServer::handle_data(const WireMessage& msg,
                                                sim::Time now) {
  Session* session = find_session(msg.session_id);
  if (!session) return err("unknown session");

  bool encrypted = msg.type == MsgType::Data;
  if (!encrypted && !config_.allow_integrity_only) {
    ++auth_failures_;
    return err("integrity-only mode not allowed by server policy");
  }

  // Configuration freshness (section III-E): after the grace period,
  // only clients running the current configuration may send traffic.
  if (session->config_version < config_version_ && grace_active_ &&
      now >= grace_deadline_) {
    ++stale_config_drops_;
    return err("stale middlebox configuration (have v" +
               std::to_string(session->config_version) + ", need v" +
               std::to_string(config_version_) + ")");
  }

  auto opened = encrypted ? open_data_body(session->keys, msg.body)
                          : open_integrity_body(session->keys, msg.body);
  if (!opened.ok()) {
    ++auth_failures_;
    return err(opened.error());
  }
  if (!session->replay.accept(opened->frag.packet_id)) {
    ++replays_rejected_;
    return err("replayed packet");
  }
  auto whole = session->reassembler.add(opened->frag, std::move(opened->payload));
  if (!whole) return Event{FragmentPending{msg.session_id}};
  return Event{PacketIn{msg.session_id, std::move(*whole), encrypted}};
}

Result<VpnServer::Event> VpnServer::handle_ping(const WireMessage& msg) {
  Session* session = find_session(msg.session_id);
  if (!session) return err("unknown session");
  auto info = open_ping_body(session->keys, msg.body);
  if (!info.ok()) {
    ++auth_failures_;
    return err(info.error());
  }
  // Record the client's (authenticated) configuration version. A ping
  // cannot roll the version back: versions increase monotonically.
  if (info->config_version > session->config_version)
    session->config_version = info->config_version;
  return Event{PingIn{msg.session_id, *info}};
}

std::vector<WireMessage> VpnServer::seal_packet(std::uint32_t session_id,
                                                ByteView ip_packet) {
  Session* session = find_session(session_id);
  if (!session) throw std::logic_error("VpnServer: unknown session");
  std::vector<WireMessage> messages;
  messages.reserve(fragment_count(ip_packet.size(), config_.mtu));
  for_each_fragment(
      ip_packet, config_.mtu, session->next_packet_id, session->next_frag_id++,
      [&](const FragmentHeader& frag, ByteView slice) {
        WireMessage msg;
        msg.type = MsgType::Data;
        msg.session_id = session_id;
        seal_data_body(session->keys, frag, slice, rng_, session->seal_scratch);
        msg.body.assign(session->seal_scratch.view().begin(),
                        session->seal_scratch.view().end());
        messages.push_back(std::move(msg));
      });
  return messages;
}

void VpnServer::seal_packet_wire(std::uint32_t session_id, ByteView ip_packet,
                                 std::vector<Bytes>& frames) {
  frames.resize(fragment_count(ip_packet.size(), config_.mtu));
  seal_packet_wire_at(session_id, ip_packet, frames, 0);
}

std::size_t VpnServer::seal_packet_wire_at(std::uint32_t session_id,
                                           ByteView ip_packet,
                                           std::vector<Bytes>& frames,
                                           std::size_t at) {
  Session* session = find_session(session_id);
  if (!session) throw std::logic_error("VpnServer: unknown session");
  std::size_t count = for_each_fragment(
      ip_packet, config_.mtu, session->next_packet_id, session->next_frag_id++,
      [&](const FragmentHeader& frag, ByteView slice) {
        seal_data_body(session->keys, frag, slice, rng_, session->seal_scratch);
        std::uint8_t* header = session->seal_scratch.prepend(kWireHeaderSize);
        header[0] = static_cast<std::uint8_t>(MsgType::Data);
        put_u32(header + 1, session_id);
        std::size_t slot = at + frag.index;
        if (frames.size() <= slot) frames.emplace_back();
        frames[slot].assign(session->seal_scratch.view().begin(),
                            session->seal_scratch.view().end());
      });
  return at + count;
}

void VpnServer::open_batch(std::span<const Bytes> wires, sim::Time now,
                           OpenBatch& out) {
  out.complete = out.pending = out.rejected = 0;
  out.packet_count = 0;
  for (const Bytes& wire : wires) {
    if (wire.size() < kWireHeaderSize) {
      ++out.rejected;
      continue;
    }
    auto type = static_cast<MsgType>(wire[0]);
    if (type != MsgType::Data && type != MsgType::DataIntegrityOnly) {
      ++out.rejected;
      continue;
    }
    std::uint32_t session_id = get_u32(wire.data() + 1);
    Session* session = find_session(session_id);
    if (!session) {
      ++out.rejected;
      continue;
    }
    bool encrypted = type == MsgType::Data;
    if (!encrypted && !config_.allow_integrity_only) {
      ++auth_failures_;
      ++out.rejected;
      continue;
    }
    if (session->config_version < config_version_ && grace_active_ &&
        now >= grace_deadline_) {
      ++stale_config_drops_;
      ++out.rejected;
      continue;
    }
    Bytes body = buffer_pool_.acquire_bytes();
    body.assign(wire.begin() + kWireHeaderSize, wire.end());
    auto opened = encrypted ? open_data_body(session->keys, std::move(body))
                            : open_integrity_body(session->keys, std::move(body));
    if (!opened.ok()) {
      // Failed opens never consume the body (the move happens only on
      // success), so the pooled buffer survives a bad-frame flood.
      buffer_pool_.release_bytes(std::move(body));
      ++auth_failures_;
      ++out.rejected;
      continue;
    }
    if (!session->replay.accept(opened->frag.packet_id)) {
      buffer_pool_.release_bytes(std::move(opened->payload));
      ++replays_rejected_;
      ++out.rejected;
      continue;
    }
    auto whole = session->reassembler.add(opened->frag, std::move(opened->payload));
    if (!whole) {
      ++out.pending;
      continue;
    }
    ++out.complete;
    if (out.packets.size() <= out.packet_count) out.packets.emplace_back();
    BatchPacket& slot = out.packets[out.packet_count++];
    slot.session_id = session_id;
    slot.was_encrypted = encrypted;
    // The slot's previous buffer cycles back into the pool, where the
    // next frame's body scratch picks it up.
    buffer_pool_.release_bytes(std::move(slot.ip_packet));
    slot.ip_packet = std::move(*whole);
  }
}

std::size_t VpnServer::seal_batch(std::uint32_t session_id,
                                  std::span<const ByteView> ip_packets,
                                  std::vector<Bytes>& frames, std::size_t at) {
  for (ByteView ip_packet : ip_packets)
    at = seal_packet_wire_at(session_id, ip_packet, frames, at);
  return at;
}

WireMessage VpnServer::create_ping(std::uint32_t session_id) {
  Session* session = find_session(session_id);
  if (!session) throw std::logic_error("VpnServer: unknown session");
  PingInfo info;
  info.seq = session->next_ping_seq++;
  info.config_version = config_version_;
  info.grace_period_secs = grace_secs_;
  WireMessage msg;
  msg.type = MsgType::Ping;
  msg.session_id = session_id;
  msg.body = seal_ping_body(session->keys, info);
  return msg;
}

void VpnServer::announce_config(std::uint32_t version, std::uint32_t grace_secs,
                                sim::Time now) {
  if (version <= config_version_) return;  // versions only move forward
  config_version_ = version;
  grace_secs_ = grace_secs;
  grace_deadline_ = now + static_cast<sim::Time>(grace_secs) * sim::kSecond;
  grace_active_ = true;
}

}  // namespace endbox::vpn
