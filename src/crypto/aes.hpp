// AES-128 block cipher (FIPS 197) with CBC and CTR modes.
//
// The VPN data channel uses AES-128-CBC + HMAC (encrypt-then-MAC), the
// TLS record layer uses AES-128-CTR, and the SGX sealing format uses
// AES-128-CTR with a sealing key derived from the measurement. This is a
// straightforward table-free implementation — correctness and clarity
// over speed; the simulator charges virtual time for crypto separately.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace endbox::crypto {

inline constexpr std::size_t kAesBlockSize = 16;
inline constexpr std::size_t kAesKeySize = 16;
using AesKey = std::array<std::uint8_t, kAesKeySize>;
using AesBlock = std::array<std::uint8_t, kAesBlockSize>;

/// AES-128 with expanded round keys. Encrypts/decrypts a single block.
class Aes128 {
 public:
  explicit Aes128(const AesKey& key);

  void encrypt_block(const std::uint8_t* in, std::uint8_t* out) const;
  void decrypt_block(const std::uint8_t* in, std::uint8_t* out) const;

 private:
  std::array<std::uint8_t, 176> round_keys_;
};

/// Converts a Bytes key (must be 16 bytes) to an AesKey.
AesKey make_aes_key(ByteView key);

/// CBC mode with PKCS#7 padding. `iv` must be 16 bytes.
Bytes aes128_cbc_encrypt(const AesKey& key, ByteView iv, ByteView plaintext);
/// Returns an error on bad IV size, non-block-multiple input, or invalid
/// padding (the caller should already have authenticated the ciphertext).
Result<Bytes> aes128_cbc_decrypt(const AesKey& key, ByteView iv,
                                 ByteView ciphertext);

/// CTR mode: encryption and decryption are the same operation. `nonce`
/// must be 16 bytes and unique per key.
Bytes aes128_ctr(const AesKey& key, ByteView nonce, ByteView data);

}  // namespace endbox::crypto
