// AES-128 block cipher (FIPS 197) with CBC and CTR modes.
//
// The VPN data channel uses AES-128-CBC + HMAC (encrypt-then-MAC), the
// TLS record layer uses AES-128-CTR, and the SGX sealing format uses
// AES-128-CTR with a sealing key derived from the measurement. The
// block cipher uses the classic 32-bit T-table formulation (four 1KB
// lookup tables per direction, generated at compile time from the
// spec), and every mode has an in-place span variant so the VPN fast
// path encrypts without allocating or copying.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace endbox::crypto {

inline constexpr std::size_t kAesBlockSize = 16;
inline constexpr std::size_t kAesKeySize = 16;
using AesKey = std::array<std::uint8_t, kAesKeySize>;
using AesBlock = std::array<std::uint8_t, kAesBlockSize>;

/// AES-128 with expanded round keys. Encrypts/decrypts a single block.
/// Construction expands the key schedule once; sessions keep the object
/// alive so per-packet calls pay only the block transforms.
class Aes128 {
 public:
  explicit Aes128(const AesKey& key);

  void encrypt_block(const std::uint8_t* in, std::uint8_t* out) const;
  void decrypt_block(const std::uint8_t* in, std::uint8_t* out) const;

 private:
  std::array<std::uint32_t, 44> ek_;  ///< encryption round keys
  std::array<std::uint32_t, 44> dk_;  ///< equivalent-inverse-cipher round keys
};

/// Converts a Bytes key (must be 16 bytes) to an AesKey.
AesKey make_aes_key(ByteView key);

/// Size of `n` bytes of plaintext after PKCS#7 padding (always grows by
/// 1..16 bytes).
inline constexpr std::size_t cbc_padded_size(std::size_t n) {
  return n + (kAesBlockSize - n % kAesBlockSize);
}

/// In-place CBC encrypt: `buf` must hold cbc_padded_size(plaintext_len)
/// bytes with the plaintext in the leading plaintext_len bytes; the
/// PKCS#7 padding is written and the whole buffer encrypted in place.
/// `iv` points at 16 bytes.
void aes128_cbc_encrypt_inplace(const Aes128& aes, const std::uint8_t* iv,
                                std::span<std::uint8_t> buf,
                                std::size_t plaintext_len);

/// In-place CBC decrypt + padding check; returns the plaintext length
/// (the plaintext occupies the leading bytes of `buf`).
Result<std::size_t> aes128_cbc_decrypt_inplace(const Aes128& aes,
                                               const std::uint8_t* iv,
                                               std::span<std::uint8_t> buf);

/// In-place CTR transform (encrypt == decrypt). `nonce` points at 16
/// bytes and must be unique per key.
void aes128_ctr_inplace(const Aes128& aes, const std::uint8_t* nonce,
                        std::span<std::uint8_t> data);

/// CBC mode with PKCS#7 padding. `iv` must be 16 bytes.
Bytes aes128_cbc_encrypt(const AesKey& key, ByteView iv, ByteView plaintext);
/// Returns an error on bad IV size, non-block-multiple input, or invalid
/// padding (the caller should already have authenticated the ciphertext).
Result<Bytes> aes128_cbc_decrypt(const AesKey& key, ByteView iv,
                                 ByteView ciphertext);

/// CTR mode: encryption and decryption are the same operation. `nonce`
/// must be 16 bytes and unique per key.
Bytes aes128_ctr(const AesKey& key, ByteView nonce, ByteView data);

}  // namespace endbox::crypto
