#include "crypto/rsa.hpp"

#include <numeric>
#include <stdexcept>
#include <utility>

#include "crypto/sha256.hpp"

namespace endbox::crypto {

namespace {

std::uint64_t mulmod(std::uint64_t a, std::uint64_t b, std::uint64_t mod) {
  return static_cast<std::uint64_t>(
      static_cast<unsigned __int128>(a) * b % mod);
}

/// Deterministic Miller-Rabin witnesses valid for all 64-bit integers.
constexpr std::uint64_t kWitnesses[] = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37};

std::uint64_t random_prime_31(Rng& rng) {
  for (;;) {
    std::uint64_t candidate = rng.uniform(1ULL << 30, (1ULL << 31) - 1) | 1ULL;
    if (is_prime(candidate)) return candidate;
  }
}

/// Extended Euclid: returns x with (a*x) % m == 1, or 0 if not invertible.
std::uint64_t modinv(std::uint64_t a, std::uint64_t m) {
  std::int64_t t = 0, new_t = 1;
  std::int64_t r = static_cast<std::int64_t>(m), new_r = static_cast<std::int64_t>(a);
  while (new_r != 0) {
    std::int64_t q = r / new_r;
    t = std::exchange(new_t, t - q * new_t);
    r = std::exchange(new_r, r - q * new_r);
  }
  if (r > 1) return 0;
  if (t < 0) t += static_cast<std::int64_t>(m);
  return static_cast<std::uint64_t>(t);
}

/// Hash a message to an integer in [1, n).
std::uint64_t hash_to_group(ByteView message, std::uint64_t n) {
  auto digest = Sha256::hash(message);
  std::uint64_t h = get_u64(digest.data());
  h %= n;
  return h == 0 ? 1 : h;
}

}  // namespace

std::uint64_t modexp(std::uint64_t base, std::uint64_t exp, std::uint64_t mod) {
  if (mod == 1) return 0;
  std::uint64_t result = 1;
  base %= mod;
  while (exp > 0) {
    if (exp & 1) result = mulmod(result, base, mod);
    base = mulmod(base, base, mod);
    exp >>= 1;
  }
  return result;
}

bool is_prime(std::uint64_t n) {
  if (n < 2) return false;
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL}) {
    if (n % p == 0) return n == p;
  }
  std::uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) { d >>= 1; ++r; }
  for (std::uint64_t a : kWitnesses) {
    if (a % n == 0) continue;
    std::uint64_t x = modexp(a, d, n);
    if (x == 1 || x == n - 1) continue;
    bool composite = true;
    for (int i = 0; i < r - 1; ++i) {
      x = mulmod(x, x, n);
      if (x == n - 1) { composite = false; break; }
    }
    if (composite) return false;
  }
  return true;
}

Bytes RsaPublicKey::serialize() const {
  Bytes out;
  put_u64(out, n);
  put_u64(out, e);
  return out;
}

RsaPublicKey RsaPublicKey::deserialize(ByteView data) {
  if (data.size() < 16) throw std::invalid_argument("RsaPublicKey: short buffer");
  return RsaPublicKey{get_u64(data.data()), get_u64(data.data() + 8)};
}

RsaKeyPair rsa_generate(Rng& rng) {
  for (;;) {
    std::uint64_t p = random_prime_31(rng);
    std::uint64_t q = random_prime_31(rng);
    if (p == q) continue;
    std::uint64_t n = p * q;
    std::uint64_t phi = (p - 1) * (q - 1);
    std::uint64_t e = 65537;
    if (std::gcd(e, phi) != 1) continue;
    std::uint64_t d = modinv(e, phi);
    if (d == 0) continue;
    return RsaKeyPair{RsaPublicKey{n, e}, d};
  }
}

Bytes rsa_sign(const RsaKeyPair& key, ByteView message) {
  std::uint64_t h = hash_to_group(message, key.pub.n);
  std::uint64_t sig = modexp(h, key.d, key.pub.n);
  Bytes out;
  put_u64(out, sig);
  return out;
}

bool rsa_verify(const RsaPublicKey& key, ByteView message, ByteView signature) {
  if (signature.size() != 8 || key.n == 0) return false;
  std::uint64_t sig = get_u64(signature.data());
  if (sig >= key.n) return false;
  return modexp(sig, key.e, key.n) == hash_to_group(message, key.n);
}

Bytes rsa_encrypt(const RsaPublicKey& key, std::uint64_t value) {
  if (value >= key.n) throw std::invalid_argument("rsa_encrypt: value too large");
  Bytes out;
  put_u64(out, modexp(value, key.e, key.n));
  return out;
}

std::uint64_t rsa_decrypt(const RsaKeyPair& key, ByteView ciphertext) {
  if (ciphertext.size() != 8) throw std::invalid_argument("rsa_decrypt: bad size");
  return modexp(get_u64(ciphertext.data()), key.d, key.pub.n);
}

}  // namespace endbox::crypto
