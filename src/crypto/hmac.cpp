#include "crypto/hmac.hpp"

namespace endbox::crypto {

namespace {
constexpr std::size_t kBlock = 64;
}  // namespace

HmacKey::HmacKey(ByteView key) {
  std::uint8_t k[kBlock] = {};
  if (key.size() > kBlock) {
    Sha256Digest d = Sha256::hash(key);
    std::memcpy(k, d.data(), d.size());
  } else if (!key.empty()) {
    std::memcpy(k, key.data(), key.size());
  }
  std::uint8_t pad[kBlock];
  for (std::size_t i = 0; i < kBlock; ++i) pad[i] = k[i] ^ 0x36;
  inner_.update(ByteView(pad, kBlock));
  for (std::size_t i = 0; i < kBlock; ++i) pad[i] = k[i] ^ 0x5c;
  outer_.update(ByteView(pad, kBlock));
}

Sha256Digest HmacKey::Mac::finish() {
  Sha256Digest inner_digest = inner_.finish();
  outer_.update(ByteView(inner_digest.data(), inner_digest.size()));
  return outer_.finish();
}

Sha256Digest HmacKey::mac(ByteView data) const {
  Mac m = begin();
  m.update(data);
  return m.finish();
}

bool HmacKey::verify(ByteView data, ByteView mac) const {
  Sha256Digest d = this->mac(data);
  return ct_equal(ByteView(d.data(), d.size()), mac);
}

Bytes hmac_sha256(ByteView key, ByteView data) {
  Sha256Digest d = HmacKey(key).mac(data);
  return Bytes(d.begin(), d.end());
}

bool hmac_verify(ByteView key, ByteView data, ByteView mac) {
  return HmacKey(key).verify(data, mac);
}

Bytes derive_key(ByteView key, std::string_view label, std::size_t length) {
  Bytes out;
  out.reserve(((length + kSha256DigestSize - 1) / kSha256DigestSize) *
              kSha256DigestSize);
  HmacKey hkey(key);
  std::uint8_t counter = 1;
  while (out.size() < length) {
    auto mac = hkey.begin();
    mac.update(ByteView(reinterpret_cast<const std::uint8_t*>(label.data()),
                        label.size()));
    mac.update(ByteView(&counter, 1));
    ++counter;
    Sha256Digest d = mac.finish();
    append(out, ByteView(d.data(), d.size()));
  }
  out.resize(length);
  return out;
}

}  // namespace endbox::crypto
