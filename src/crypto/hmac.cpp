#include "crypto/hmac.hpp"

namespace endbox::crypto {

Bytes hmac_sha256(ByteView key, ByteView data) {
  constexpr std::size_t kBlock = 64;
  Bytes k(key.begin(), key.end());
  if (k.size() > kBlock) k = sha256(k);
  k.resize(kBlock, 0);

  Bytes ipad(kBlock), opad(kBlock);
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(data);
  auto inner_digest = inner.finish();

  Sha256 outer;
  outer.update(opad);
  outer.update(ByteView(inner_digest.data(), inner_digest.size()));
  auto digest = outer.finish();
  return Bytes(digest.begin(), digest.end());
}

bool hmac_verify(ByteView key, ByteView data, ByteView mac) {
  return ct_equal(hmac_sha256(key, data), mac);
}

Bytes derive_key(ByteView key, std::string_view label, std::size_t length) {
  Bytes out;
  std::uint8_t counter = 1;
  while (out.size() < length) {
    Bytes block = to_bytes(label);
    block.push_back(counter++);
    append(out, hmac_sha256(key, block));
  }
  out.resize(length);
  return out;
}

}  // namespace endbox::crypto
