#include "crypto/aes.hpp"

#include <stdexcept>

namespace endbox::crypto {

namespace {

// S-box generated from the AES definition (multiplicative inverse in
// GF(2^8) followed by the affine transform).
constexpr std::array<std::uint8_t, 256> make_sbox() {
  std::array<std::uint8_t, 256> sbox{};
  // Build log/antilog tables over GF(2^8) with generator 3.
  std::array<std::uint8_t, 256> log{}, alog{};
  std::uint8_t x = 1;
  for (int i = 0; i < 255; ++i) {
    alog[i] = x;
    log[x] = static_cast<std::uint8_t>(i);
    // multiply x by generator 3 = x ^ (x*2)
    std::uint8_t x2 = static_cast<std::uint8_t>((x << 1) ^ ((x & 0x80) ? 0x1b : 0));
    x = static_cast<std::uint8_t>(x ^ x2);
  }
  for (int i = 0; i < 256; ++i) {
    // g^255 == g^0 == 1, so reduce the exponent mod 255 (alog has 255 entries).
    std::uint8_t inv =
        (i == 0) ? 0 : alog[(255 - log[static_cast<std::uint8_t>(i)]) % 255];
    std::uint8_t s = inv;
    // affine transform: s ^= rotl(inv,1..4) ^ 0x63
    std::uint8_t r = inv;
    for (int j = 0; j < 4; ++j) {
      r = static_cast<std::uint8_t>((r << 1) | (r >> 7));
      s ^= r;
    }
    sbox[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(s ^ 0x63);
  }
  return sbox;
}

constexpr std::array<std::uint8_t, 256> kSbox = make_sbox();

constexpr std::array<std::uint8_t, 256> make_inv_sbox() {
  std::array<std::uint8_t, 256> inv{};
  for (int i = 0; i < 256; ++i) inv[kSbox[static_cast<std::size_t>(i)]] = static_cast<std::uint8_t>(i);
  return inv;
}

constexpr std::array<std::uint8_t, 256> kInvSbox = make_inv_sbox();

inline std::uint8_t xtime(std::uint8_t a) {
  return static_cast<std::uint8_t>((a << 1) ^ ((a & 0x80) ? 0x1b : 0));
}

// Precomputed GF(2^8) multiplication tables for the InvMixColumns
// constants — decryption is on the VPN fast path, so per-byte loops
// would dominate simulation time.
template <std::uint8_t C>
constexpr std::array<std::uint8_t, 256> make_gmul_table() {
  std::array<std::uint8_t, 256> table{};
  for (int i = 0; i < 256; ++i) {
    std::uint8_t a = static_cast<std::uint8_t>(i), b = C, r = 0;
    while (b) {
      if (b & 1) r ^= a;
      a = static_cast<std::uint8_t>((a << 1) ^ ((a & 0x80) ? 0x1b : 0));
      b >>= 1;
    }
    table[static_cast<std::size_t>(i)] = r;
  }
  return table;
}
constexpr auto kMul9 = make_gmul_table<9>();
constexpr auto kMul11 = make_gmul_table<11>();
constexpr auto kMul13 = make_gmul_table<13>();
constexpr auto kMul14 = make_gmul_table<14>();

}  // namespace

Aes128::Aes128(const AesKey& key) {
  std::memcpy(round_keys_.data(), key.data(), 16);
  std::uint8_t rcon = 1;
  for (int i = 16; i < 176; i += 4) {
    std::uint8_t temp[4];
    std::memcpy(temp, round_keys_.data() + i - 4, 4);
    if (i % 16 == 0) {
      std::uint8_t t = temp[0];
      temp[0] = static_cast<std::uint8_t>(kSbox[temp[1]] ^ rcon);
      temp[1] = kSbox[temp[2]];
      temp[2] = kSbox[temp[3]];
      temp[3] = kSbox[t];
      rcon = xtime(rcon);
    }
    for (int j = 0; j < 4; ++j) {
      round_keys_[static_cast<std::size_t>(i + j)] =
          round_keys_[static_cast<std::size_t>(i + j - 16)] ^ temp[j];
    }
  }
}

void Aes128::encrypt_block(const std::uint8_t* in, std::uint8_t* out) const {
  std::uint8_t s[16];
  for (int i = 0; i < 16; ++i) s[i] = in[i] ^ round_keys_[static_cast<std::size_t>(i)];

  for (int round = 1; round <= 10; ++round) {
    // SubBytes
    for (auto& b : s) b = kSbox[b];
    // ShiftRows (state is column-major: s[col*4 + row])
    std::uint8_t t[16];
    for (int col = 0; col < 4; ++col)
      for (int row = 0; row < 4; ++row)
        t[col * 4 + row] = s[((col + row) % 4) * 4 + row];
    std::memcpy(s, t, 16);
    // MixColumns (skipped in the final round)
    if (round != 10) {
      for (int col = 0; col < 4; ++col) {
        std::uint8_t* c = s + col * 4;
        std::uint8_t a0 = c[0], a1 = c[1], a2 = c[2], a3 = c[3];
        c[0] = static_cast<std::uint8_t>(xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3);
        c[1] = static_cast<std::uint8_t>(a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3);
        c[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3));
        c[3] = static_cast<std::uint8_t>((xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3));
      }
    }
    // AddRoundKey
    for (int i = 0; i < 16; ++i) s[i] ^= round_keys_[static_cast<std::size_t>(round * 16 + i)];
  }
  std::memcpy(out, s, 16);
}

void Aes128::decrypt_block(const std::uint8_t* in, std::uint8_t* out) const {
  std::uint8_t s[16];
  for (int i = 0; i < 16; ++i) s[i] = in[i] ^ round_keys_[static_cast<std::size_t>(160 + i)];

  for (int round = 9; round >= 0; --round) {
    // InvShiftRows
    std::uint8_t t[16];
    for (int col = 0; col < 4; ++col)
      for (int row = 0; row < 4; ++row)
        t[((col + row) % 4) * 4 + row] = s[col * 4 + row];
    std::memcpy(s, t, 16);
    // InvSubBytes
    for (auto& b : s) b = kInvSbox[b];
    // AddRoundKey
    for (int i = 0; i < 16; ++i) s[i] ^= round_keys_[static_cast<std::size_t>(round * 16 + i)];
    // InvMixColumns (skipped before the first round's key add, i.e. round 0)
    if (round != 0) {
      for (int col = 0; col < 4; ++col) {
        std::uint8_t* c = s + col * 4;
        std::uint8_t a0 = c[0], a1 = c[1], a2 = c[2], a3 = c[3];
        c[0] = static_cast<std::uint8_t>(kMul14[a0] ^ kMul11[a1] ^ kMul13[a2] ^ kMul9[a3]);
        c[1] = static_cast<std::uint8_t>(kMul9[a0] ^ kMul14[a1] ^ kMul11[a2] ^ kMul13[a3]);
        c[2] = static_cast<std::uint8_t>(kMul13[a0] ^ kMul9[a1] ^ kMul14[a2] ^ kMul11[a3]);
        c[3] = static_cast<std::uint8_t>(kMul11[a0] ^ kMul13[a1] ^ kMul9[a2] ^ kMul14[a3]);
      }
    }
  }
  std::memcpy(out, s, 16);
}

AesKey make_aes_key(ByteView key) {
  if (key.size() != kAesKeySize) throw std::invalid_argument("AES key must be 16 bytes");
  AesKey k;
  std::memcpy(k.data(), key.data(), kAesKeySize);
  return k;
}

Bytes aes128_cbc_encrypt(const AesKey& key, ByteView iv, ByteView plaintext) {
  if (iv.size() != kAesBlockSize) throw std::invalid_argument("CBC IV must be 16 bytes");
  Aes128 aes(key);
  std::size_t pad = kAesBlockSize - plaintext.size() % kAesBlockSize;
  Bytes padded(plaintext.begin(), plaintext.end());
  padded.insert(padded.end(), pad, static_cast<std::uint8_t>(pad));

  Bytes out(padded.size());
  std::uint8_t prev[kAesBlockSize];
  std::memcpy(prev, iv.data(), kAesBlockSize);
  for (std::size_t off = 0; off < padded.size(); off += kAesBlockSize) {
    std::uint8_t block[kAesBlockSize];
    for (std::size_t i = 0; i < kAesBlockSize; ++i) block[i] = padded[off + i] ^ prev[i];
    aes.encrypt_block(block, out.data() + off);
    std::memcpy(prev, out.data() + off, kAesBlockSize);
  }
  return out;
}

Result<Bytes> aes128_cbc_decrypt(const AesKey& key, ByteView iv,
                                 ByteView ciphertext) {
  if (iv.size() != kAesBlockSize) return err("CBC IV must be 16 bytes");
  if (ciphertext.empty() || ciphertext.size() % kAesBlockSize != 0)
    return err("CBC ciphertext must be a positive multiple of 16 bytes");

  Aes128 aes(key);
  Bytes out(ciphertext.size());
  std::uint8_t prev[kAesBlockSize];
  std::memcpy(prev, iv.data(), kAesBlockSize);
  for (std::size_t off = 0; off < ciphertext.size(); off += kAesBlockSize) {
    std::uint8_t block[kAesBlockSize];
    aes.decrypt_block(ciphertext.data() + off, block);
    for (std::size_t i = 0; i < kAesBlockSize; ++i) out[off + i] = block[i] ^ prev[i];
    std::memcpy(prev, ciphertext.data() + off, kAesBlockSize);
  }
  std::uint8_t pad = out.back();
  if (pad == 0 || pad > kAesBlockSize || pad > out.size()) return err("bad CBC padding");
  for (std::size_t i = out.size() - pad; i < out.size(); ++i)
    if (out[i] != pad) return err("bad CBC padding");
  out.resize(out.size() - pad);
  return out;
}

Bytes aes128_ctr(const AesKey& key, ByteView nonce, ByteView data) {
  if (nonce.size() != kAesBlockSize) throw std::invalid_argument("CTR nonce must be 16 bytes");
  Aes128 aes(key);
  Bytes out(data.size());
  std::uint8_t counter[kAesBlockSize];
  std::memcpy(counter, nonce.data(), kAesBlockSize);
  std::uint8_t keystream[kAesBlockSize];
  for (std::size_t off = 0; off < data.size(); off += kAesBlockSize) {
    aes.encrypt_block(counter, keystream);
    std::size_t n = std::min(kAesBlockSize, data.size() - off);
    for (std::size_t i = 0; i < n; ++i) out[off + i] = data[off + i] ^ keystream[i];
    // increment big-endian counter
    for (int i = kAesBlockSize - 1; i >= 0; --i)
      if (++counter[i] != 0) break;
  }
  return out;
}

}  // namespace endbox::crypto
