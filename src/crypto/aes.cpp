#include "crypto/aes.hpp"

#include <bit>
#include <stdexcept>

namespace endbox::crypto {

namespace {

// S-box generated from the AES definition (multiplicative inverse in
// GF(2^8) followed by the affine transform).
constexpr std::array<std::uint8_t, 256> make_sbox() {
  std::array<std::uint8_t, 256> sbox{};
  // Build log/antilog tables over GF(2^8) with generator 3.
  std::array<std::uint8_t, 256> log{}, alog{};
  std::uint8_t x = 1;
  for (int i = 0; i < 255; ++i) {
    alog[i] = x;
    log[x] = static_cast<std::uint8_t>(i);
    // multiply x by generator 3 = x ^ (x*2)
    std::uint8_t x2 = static_cast<std::uint8_t>((x << 1) ^ ((x & 0x80) ? 0x1b : 0));
    x = static_cast<std::uint8_t>(x ^ x2);
  }
  for (int i = 0; i < 256; ++i) {
    // g^255 == g^0 == 1, so reduce the exponent mod 255 (alog has 255 entries).
    std::uint8_t inv =
        (i == 0) ? 0 : alog[(255 - log[static_cast<std::uint8_t>(i)]) % 255];
    std::uint8_t s = inv;
    // affine transform: s ^= rotl(inv,1..4) ^ 0x63
    std::uint8_t r = inv;
    for (int j = 0; j < 4; ++j) {
      r = static_cast<std::uint8_t>((r << 1) | (r >> 7));
      s ^= r;
    }
    sbox[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(s ^ 0x63);
  }
  return sbox;
}

constexpr std::array<std::uint8_t, 256> kSbox = make_sbox();

constexpr std::array<std::uint8_t, 256> make_inv_sbox() {
  std::array<std::uint8_t, 256> inv{};
  for (int i = 0; i < 256; ++i) inv[kSbox[static_cast<std::size_t>(i)]] = static_cast<std::uint8_t>(i);
  return inv;
}

constexpr std::array<std::uint8_t, 256> kInvSbox = make_inv_sbox();

inline constexpr std::uint8_t xtime(std::uint8_t a) {
  return static_cast<std::uint8_t>((a << 1) ^ ((a & 0x80) ? 0x1b : 0));
}

// Precomputed GF(2^8) multiplication tables for the MixColumns /
// InvMixColumns constants used while generating the T-tables.
template <std::uint8_t C>
constexpr std::array<std::uint8_t, 256> make_gmul_table() {
  std::array<std::uint8_t, 256> table{};
  for (int i = 0; i < 256; ++i) {
    std::uint8_t a = static_cast<std::uint8_t>(i), b = C, r = 0;
    while (b) {
      if (b & 1) r ^= a;
      a = static_cast<std::uint8_t>((a << 1) ^ ((a & 0x80) ? 0x1b : 0));
      b >>= 1;
    }
    table[static_cast<std::size_t>(i)] = r;
  }
  return table;
}
constexpr auto kMul2 = make_gmul_table<2>();
constexpr auto kMul3 = make_gmul_table<3>();
constexpr auto kMul9 = make_gmul_table<9>();
constexpr auto kMul11 = make_gmul_table<11>();
constexpr auto kMul13 = make_gmul_table<13>();
constexpr auto kMul14 = make_gmul_table<14>();

// T-tables (rijndael-alg-fst formulation): each entry is one S-box
// substitution pre-multiplied through MixColumns, so a full round is 16
// table lookups + XORs instead of per-byte GF arithmetic. Te{1,2,3} and
// Td{1,2,3} are byte rotations of Te0/Td0.
constexpr std::array<std::uint32_t, 256> make_te(unsigned rot) {
  std::array<std::uint32_t, 256> t{};
  for (int i = 0; i < 256; ++i) {
    std::uint8_t s = kSbox[static_cast<std::size_t>(i)];
    std::uint32_t w = (static_cast<std::uint32_t>(kMul2[s]) << 24) |
                      (static_cast<std::uint32_t>(s) << 16) |
                      (static_cast<std::uint32_t>(s) << 8) |
                      static_cast<std::uint32_t>(kMul3[s]);
    t[static_cast<std::size_t>(i)] = std::rotr(w, static_cast<int>(rot));
  }
  return t;
}

constexpr std::array<std::uint32_t, 256> make_td(unsigned rot) {
  std::array<std::uint32_t, 256> t{};
  for (int i = 0; i < 256; ++i) {
    std::uint8_t s = kInvSbox[static_cast<std::size_t>(i)];
    std::uint32_t w = (static_cast<std::uint32_t>(kMul14[s]) << 24) |
                      (static_cast<std::uint32_t>(kMul9[s]) << 16) |
                      (static_cast<std::uint32_t>(kMul13[s]) << 8) |
                      static_cast<std::uint32_t>(kMul11[s]);
    t[static_cast<std::size_t>(i)] = std::rotr(w, static_cast<int>(rot));
  }
  return t;
}

constexpr auto kTe0 = make_te(0), kTe1 = make_te(8), kTe2 = make_te(16), kTe3 = make_te(24);
constexpr auto kTd0 = make_td(0), kTd1 = make_td(8), kTd2 = make_td(16), kTd3 = make_td(24);

inline constexpr std::uint32_t sub_word(std::uint32_t w) {
  return (static_cast<std::uint32_t>(kSbox[w >> 24]) << 24) |
         (static_cast<std::uint32_t>(kSbox[(w >> 16) & 0xff]) << 16) |
         (static_cast<std::uint32_t>(kSbox[(w >> 8) & 0xff]) << 8) |
         static_cast<std::uint32_t>(kSbox[w & 0xff]);
}

// InvMixColumns of one round-key word, expressed via the decryption
// T-tables (Td contains InvSbox, which S cancels).
inline constexpr std::uint32_t inv_mix_word(std::uint32_t w) {
  return kTd0[kSbox[w >> 24]] ^ kTd1[kSbox[(w >> 16) & 0xff]] ^
         kTd2[kSbox[(w >> 8) & 0xff]] ^ kTd3[kSbox[w & 0xff]];
}

}  // namespace

Aes128::Aes128(const AesKey& key) {
  for (int i = 0; i < 4; ++i) ek_[static_cast<std::size_t>(i)] = get_u32(key.data() + i * 4);
  std::uint8_t rcon = 1;
  for (std::size_t i = 4; i < 44; ++i) {
    std::uint32_t temp = ek_[i - 1];
    if (i % 4 == 0) {
      temp = sub_word(std::rotl(temp, 8)) ^ (static_cast<std::uint32_t>(rcon) << 24);
      rcon = xtime(rcon);
    }
    ek_[i] = ek_[i - 4] ^ temp;
  }
  // Equivalent inverse cipher: round keys in reverse round order, with
  // InvMixColumns applied to all but the first and last.
  for (std::size_t r = 0; r <= 10; ++r)
    for (std::size_t w = 0; w < 4; ++w) dk_[r * 4 + w] = ek_[(10 - r) * 4 + w];
  for (std::size_t i = 4; i < 40; ++i) dk_[i] = inv_mix_word(dk_[i]);
}

void Aes128::encrypt_block(const std::uint8_t* in, std::uint8_t* out) const {
  std::uint32_t s0 = get_u32(in) ^ ek_[0];
  std::uint32_t s1 = get_u32(in + 4) ^ ek_[1];
  std::uint32_t s2 = get_u32(in + 8) ^ ek_[2];
  std::uint32_t s3 = get_u32(in + 12) ^ ek_[3];
  for (int round = 1; round < 10; ++round) {
    const std::uint32_t* rk = ek_.data() + round * 4;
    std::uint32_t t0 = kTe0[s0 >> 24] ^ kTe1[(s1 >> 16) & 0xff] ^
                       kTe2[(s2 >> 8) & 0xff] ^ kTe3[s3 & 0xff] ^ rk[0];
    std::uint32_t t1 = kTe0[s1 >> 24] ^ kTe1[(s2 >> 16) & 0xff] ^
                       kTe2[(s3 >> 8) & 0xff] ^ kTe3[s0 & 0xff] ^ rk[1];
    std::uint32_t t2 = kTe0[s2 >> 24] ^ kTe1[(s3 >> 16) & 0xff] ^
                       kTe2[(s0 >> 8) & 0xff] ^ kTe3[s1 & 0xff] ^ rk[2];
    std::uint32_t t3 = kTe0[s3 >> 24] ^ kTe1[(s0 >> 16) & 0xff] ^
                       kTe2[(s1 >> 8) & 0xff] ^ kTe3[s2 & 0xff] ^ rk[3];
    s0 = t0; s1 = t1; s2 = t2; s3 = t3;
  }
  const std::uint32_t* rk = ek_.data() + 40;
  put_u32(out, (sub_word((s0 & 0xff000000u) | (s1 & 0x00ff0000u) |
                         (s2 & 0x0000ff00u) | (s3 & 0x000000ffu))) ^ rk[0]);
  put_u32(out + 4, (sub_word((s1 & 0xff000000u) | (s2 & 0x00ff0000u) |
                             (s3 & 0x0000ff00u) | (s0 & 0x000000ffu))) ^ rk[1]);
  put_u32(out + 8, (sub_word((s2 & 0xff000000u) | (s3 & 0x00ff0000u) |
                             (s0 & 0x0000ff00u) | (s1 & 0x000000ffu))) ^ rk[2]);
  put_u32(out + 12, (sub_word((s3 & 0xff000000u) | (s0 & 0x00ff0000u) |
                              (s1 & 0x0000ff00u) | (s2 & 0x000000ffu))) ^ rk[3]);
}

void Aes128::decrypt_block(const std::uint8_t* in, std::uint8_t* out) const {
  std::uint32_t s0 = get_u32(in) ^ dk_[0];
  std::uint32_t s1 = get_u32(in + 4) ^ dk_[1];
  std::uint32_t s2 = get_u32(in + 8) ^ dk_[2];
  std::uint32_t s3 = get_u32(in + 12) ^ dk_[3];
  for (int round = 1; round < 10; ++round) {
    const std::uint32_t* rk = dk_.data() + round * 4;
    std::uint32_t t0 = kTd0[s0 >> 24] ^ kTd1[(s3 >> 16) & 0xff] ^
                       kTd2[(s2 >> 8) & 0xff] ^ kTd3[s1 & 0xff] ^ rk[0];
    std::uint32_t t1 = kTd0[s1 >> 24] ^ kTd1[(s0 >> 16) & 0xff] ^
                       kTd2[(s3 >> 8) & 0xff] ^ kTd3[s2 & 0xff] ^ rk[1];
    std::uint32_t t2 = kTd0[s2 >> 24] ^ kTd1[(s1 >> 16) & 0xff] ^
                       kTd2[(s0 >> 8) & 0xff] ^ kTd3[s3 & 0xff] ^ rk[2];
    std::uint32_t t3 = kTd0[s3 >> 24] ^ kTd1[(s2 >> 16) & 0xff] ^
                       kTd2[(s1 >> 8) & 0xff] ^ kTd3[s0 & 0xff] ^ rk[3];
    s0 = t0; s1 = t1; s2 = t2; s3 = t3;
  }
  const std::uint32_t* rk = dk_.data() + 40;
  auto inv_sub = [](std::uint32_t a, std::uint32_t b, std::uint32_t c,
                    std::uint32_t d) {
    return (static_cast<std::uint32_t>(kInvSbox[a >> 24]) << 24) |
           (static_cast<std::uint32_t>(kInvSbox[(b >> 16) & 0xff]) << 16) |
           (static_cast<std::uint32_t>(kInvSbox[(c >> 8) & 0xff]) << 8) |
           static_cast<std::uint32_t>(kInvSbox[d & 0xff]);
  };
  put_u32(out, inv_sub(s0, s3, s2, s1) ^ rk[0]);
  put_u32(out + 4, inv_sub(s1, s0, s3, s2) ^ rk[1]);
  put_u32(out + 8, inv_sub(s2, s1, s0, s3) ^ rk[2]);
  put_u32(out + 12, inv_sub(s3, s2, s1, s0) ^ rk[3]);
}

AesKey make_aes_key(ByteView key) {
  if (key.size() != kAesKeySize) throw std::invalid_argument("AES key must be 16 bytes");
  AesKey k;
  std::memcpy(k.data(), key.data(), kAesKeySize);
  return k;
}

void aes128_cbc_encrypt_inplace(const Aes128& aes, const std::uint8_t* iv,
                                std::span<std::uint8_t> buf,
                                std::size_t plaintext_len) {
  if (buf.size() != cbc_padded_size(plaintext_len))
    throw std::invalid_argument("CBC buffer must be the padded size");
  std::uint8_t pad = static_cast<std::uint8_t>(buf.size() - plaintext_len);
  for (std::size_t i = plaintext_len; i < buf.size(); ++i) buf[i] = pad;
  const std::uint8_t* prev = iv;
  for (std::size_t off = 0; off < buf.size(); off += kAesBlockSize) {
    std::uint8_t* block = buf.data() + off;
    for (std::size_t i = 0; i < kAesBlockSize; ++i) block[i] ^= prev[i];
    aes.encrypt_block(block, block);
    prev = block;
  }
}

Result<std::size_t> aes128_cbc_decrypt_inplace(const Aes128& aes,
                                               const std::uint8_t* iv,
                                               std::span<std::uint8_t> buf) {
  if (buf.empty() || buf.size() % kAesBlockSize != 0)
    return err("CBC ciphertext must be a positive multiple of 16 bytes");
  std::uint8_t prev[kAesBlockSize];
  std::memcpy(prev, iv, kAesBlockSize);
  for (std::size_t off = 0; off < buf.size(); off += kAesBlockSize) {
    std::uint8_t* block = buf.data() + off;
    std::uint8_t saved[kAesBlockSize];
    std::memcpy(saved, block, kAesBlockSize);
    aes.decrypt_block(block, block);
    for (std::size_t i = 0; i < kAesBlockSize; ++i) block[i] ^= prev[i];
    std::memcpy(prev, saved, kAesBlockSize);
  }
  std::uint8_t pad = buf.back();
  if (pad == 0 || pad > kAesBlockSize || pad > buf.size()) return err("bad CBC padding");
  for (std::size_t i = buf.size() - pad; i < buf.size(); ++i)
    if (buf[i] != pad) return err("bad CBC padding");
  return buf.size() - pad;
}

void aes128_ctr_inplace(const Aes128& aes, const std::uint8_t* nonce,
                        std::span<std::uint8_t> data) {
  std::uint8_t counter[kAesBlockSize];
  std::memcpy(counter, nonce, kAesBlockSize);
  std::uint8_t keystream[kAesBlockSize];
  for (std::size_t off = 0; off < data.size(); off += kAesBlockSize) {
    aes.encrypt_block(counter, keystream);
    std::size_t n = std::min(kAesBlockSize, data.size() - off);
    for (std::size_t i = 0; i < n; ++i) data[off + i] ^= keystream[i];
    // increment big-endian counter
    for (int i = kAesBlockSize - 1; i >= 0; --i)
      if (++counter[i] != 0) break;
  }
}

Bytes aes128_cbc_encrypt(const AesKey& key, ByteView iv, ByteView plaintext) {
  if (iv.size() != kAesBlockSize) throw std::invalid_argument("CBC IV must be 16 bytes");
  Aes128 aes(key);
  Bytes out(cbc_padded_size(plaintext.size()));
  if (!plaintext.empty()) std::memcpy(out.data(), plaintext.data(), plaintext.size());
  aes128_cbc_encrypt_inplace(aes, iv.data(), out, plaintext.size());
  return out;
}

Result<Bytes> aes128_cbc_decrypt(const AesKey& key, ByteView iv,
                                 ByteView ciphertext) {
  if (iv.size() != kAesBlockSize) return err("CBC IV must be 16 bytes");
  Aes128 aes(key);
  Bytes out(ciphertext.begin(), ciphertext.end());
  auto len = aes128_cbc_decrypt_inplace(aes, iv.data(), out);
  if (!len.ok()) return err(len.error());
  out.resize(*len);
  return out;
}

Bytes aes128_ctr(const AesKey& key, ByteView nonce, ByteView data) {
  if (nonce.size() != kAesBlockSize) throw std::invalid_argument("CTR nonce must be 16 bytes");
  Aes128 aes(key);
  Bytes out(data.begin(), data.end());
  aes128_ctr_inplace(aes, nonce.data(), out);
  return out;
}

}  // namespace endbox::crypto
