// HMAC-SHA-256 (RFC 2104) and HKDF-style key derivation. The VPN data
// channel, config-file signing and the enclave sealing format all
// authenticate with HMAC-SHA-256.
#pragma once

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace endbox::crypto {

/// Reusable HMAC-SHA-256 key: the ipad/opad block states are hashed
/// once at construction, so each MAC afterwards costs only the data
/// blocks plus one finalisation — per-session instead of per-packet key
/// processing on the VPN data path. Copy/assignment are cheap (a few
/// hundred bytes of midstate, no heap).
class HmacKey {
 public:
  HmacKey() = default;
  explicit HmacKey(ByteView key);

  /// Incremental MAC seeded from the precomputed states. All state
  /// lives on the stack; update() accepts any chunking of the input.
  class Mac {
   public:
    void update(ByteView data) { inner_.update(data); }
    Sha256Digest finish();

   private:
    friend class HmacKey;
    Mac(const Sha256& inner, const Sha256& outer) : inner_(inner), outer_(outer) {}
    Sha256 inner_;
    Sha256 outer_;
  };

  Mac begin() const { return Mac(inner_, outer_); }

  /// One-shot MAC over a single span (no allocation).
  Sha256Digest mac(ByteView data) const;

  /// Constant-time verification against an expected MAC.
  bool verify(ByteView data, ByteView mac) const;

 private:
  Sha256 inner_;  ///< state after hashing key ^ ipad
  Sha256 outer_;  ///< state after hashing key ^ opad
};

/// Computes HMAC-SHA-256 over `data` with `key` (any key length).
Bytes hmac_sha256(ByteView key, ByteView data);

/// True when `mac` equals HMAC(key, data), compared in constant time.
bool hmac_verify(ByteView key, ByteView data, ByteView mac);

/// Simple HKDF-expand style derivation: HMAC(key, label || 0x01),
/// truncated/expanded to `length` bytes by counter-mode re-hashing.
Bytes derive_key(ByteView key, std::string_view label, std::size_t length);

}  // namespace endbox::crypto
