// HMAC-SHA-256 (RFC 2104) and HKDF-style key derivation. The VPN data
// channel, config-file signing and the enclave sealing format all
// authenticate with HMAC-SHA-256.
#pragma once

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace endbox::crypto {

/// Computes HMAC-SHA-256 over `data` with `key` (any key length).
Bytes hmac_sha256(ByteView key, ByteView data);

/// True when `mac` equals HMAC(key, data), compared in constant time.
bool hmac_verify(ByteView key, ByteView data, ByteView mac);

/// Simple HKDF-expand style derivation: HMAC(key, label || 0x01),
/// truncated/expanded to `length` bytes by counter-mode re-hashing.
Bytes derive_key(ByteView key, std::string_view label, std::size_t length);

}  // namespace endbox::crypto
