// SHA-256 (FIPS 180-4). Used for enclave measurements, HMAC, key
// derivation and certificate digests. Implemented from the spec; no
// external dependencies.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace endbox::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;
using Sha256Digest = std::array<std::uint8_t, kSha256DigestSize>;

class Sha256 {
 public:
  Sha256();

  void update(ByteView data);
  Sha256Digest finish();

  /// One-shot convenience.
  static Sha256Digest hash(ByteView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// Digest as a Bytes value (handy for wire formats).
Bytes sha256(ByteView data);

}  // namespace endbox::crypto
