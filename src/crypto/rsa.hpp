// Small-modulus RSA used for the attestation / certificate chain.
//
// The CA signs enclave public keys, the IAS signs attestation
// verification reports, and config files carry CA signatures. A real
// deployment uses 3072-bit RSA; for the simulation we use a structurally
// identical textbook RSA over a ~62-bit modulus (two 31-bit primes, e =
// 65537, modexp via unsigned __int128). It is NOT cryptographically
// strong — it exists so that the key-management *protocol* (Fig 4 of the
// paper) is executed for real: keygen in the enclave, quote carries the
// public key, CA verifies and signs, client presents the certificate.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace endbox::crypto {

struct RsaPublicKey {
  std::uint64_t n = 0;  ///< modulus
  std::uint64_t e = 0;  ///< public exponent

  Bytes serialize() const;
  static RsaPublicKey deserialize(ByteView data);
  bool operator==(const RsaPublicKey&) const = default;
};

struct RsaKeyPair {
  RsaPublicKey pub;
  std::uint64_t d = 0;  ///< private exponent — never serialised
};

/// Generates a fresh key pair from two random 31-bit primes.
RsaKeyPair rsa_generate(Rng& rng);

/// Signs SHA-256(message) reduced mod n. Returns an 8-byte signature.
Bytes rsa_sign(const RsaKeyPair& key, ByteView message);

/// Verifies a signature produced by rsa_sign.
bool rsa_verify(const RsaPublicKey& key, ByteView message, ByteView signature);

/// Encrypts a short secret (< 8 bytes effective) to the public key.
/// Used to provision the shared config key into the enclave (Fig 4, step 6).
Bytes rsa_encrypt(const RsaPublicKey& key, std::uint64_t value);
std::uint64_t rsa_decrypt(const RsaKeyPair& key, ByteView ciphertext);

/// Exposed for tests: modular exponentiation via __int128.
std::uint64_t modexp(std::uint64_t base, std::uint64_t exp, std::uint64_t mod);
/// Exposed for tests: Miller-Rabin primality test.
bool is_prime(std::uint64_t n);

}  // namespace endbox::crypto
