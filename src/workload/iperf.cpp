#include "workload/iperf.hpp"

#include <queue>

namespace endbox::workload {

namespace {
struct Pending {
  sim::Time ready;
  std::size_t source;
  bool operator>(const Pending& other) const { return ready > other.ready; }
};
}  // namespace

IperfReport IperfHarness::run() {
  IperfReport report;
  if (sources_.empty()) return report;
  const sim::Time end = config_.duration;

  // Next send opportunity per source: a source may send when both its
  // client pipeline is free and (offered mode) the pacing gap elapsed.
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> queue;
  for (std::size_t i = 0; i < sources_.size(); ++i) queue.push({0, i});

  while (!queue.empty()) {
    Pending next = queue.top();
    queue.pop();
    if (next.ready >= end) continue;
    IperfSource& source = sources_[next.source];

    SendOutcome sent = source.send(next.ready);
    report.writes_sent += sent.writes;
    report.wire_messages += sent.wire.size();

    // Deliver wire messages: the source's own path, else the shared
    // bottleneck link (if any), then the server.
    sim::Time server_done = next.ready;
    bool delivered = false;
    std::uint32_t writes_completed = 0;
    if (serve_batch_ && sent.wire.size() > 1) {
      // The frames travel the link back to back; the server drains the
      // whole train in one batched pass once it has fully arrived.
      sim::Time arrival = next.ready;
      for (const Bytes& wire : sent.wire) {
        arrival = source.path.hops() > 0
                      ? source.path.deliver(next.ready, wire.size())
                      : (config_.link
                             ? config_.link->transmit(next.ready, wire.size())
                             : next.ready);
      }
      if (burst_observer_) burst_observer_(sent.wire.size(), arrival);
      ServeBatchOutcome served = serve_batch_(sent.wire, arrival);
      server_done = std::max(server_done, served.done);
      delivered = served.delivered > 0;
      if (served.done < end) writes_completed = served.delivered;
    } else {
      for (const Bytes& wire : sent.wire) {
        sim::Time arrival =
            source.path.hops() > 0
                ? source.path.deliver(next.ready, wire.size())
                : (config_.link ? config_.link->transmit(next.ready, wire.size())
                                : next.ready);
        if (burst_observer_) burst_observer_(1, arrival);
        ServeOutcome served = serve_(wire, arrival);
        server_done = std::max(server_done, served.done);
        delivered |= served.delivered;
        if (served.delivered && served.done < end) ++writes_completed;
      }
    }
    if (sent.writes <= 1) {
      // Historical single-write rule: the write counts when any of its
      // frames completed an application write before the deadline.
      if (delivered && server_done < end) ++report.writes_delivered;
    } else {
      // Burst sources: every completed reassembly is one delivered
      // application write (capped by the writes actually sent).
      report.writes_delivered += std::min(writes_completed, sent.writes);
    }

    // Schedule the next write (or burst) for this source.
    sim::Time next_ready = sent.done;
    if (source.offered_bps > 0) {
      auto gap = static_cast<sim::Time>(static_cast<double>(source.write_size) * 8.0 *
                                        static_cast<double>(sent.writes) /
                                        source.offered_bps * 1e9);
      next_ready = std::max(next_ready, next.ready + gap);
    }
    if (next_ready < end) queue.push({next_ready, next.source});
  }

  report.elapsed = end;
  double bits = 0;
  for (const auto& source : sources_) (void)source;
  // Goodput: delivered writes x write size (uniform per harness run
  // because every source uses the same write size in our experiments).
  bits = static_cast<double>(report.writes_delivered) *
         static_cast<double>(sources_.front().write_size) * 8.0;
  report.throughput_mbps = bits / sim::to_seconds(end) / 1e6;
  return report;
}

}  // namespace endbox::workload
