#include "workload/ping.hpp"

#include <algorithm>
#include <stdexcept>

namespace endbox::workload {

double PingStats::average() const {
  if (rtts_ms.empty()) return 0;
  double sum = 0;
  for (double v : rtts_ms) sum += v;
  return sum / static_cast<double>(rtts_ms.size());
}

double PingStats::min() const {
  return rtts_ms.empty() ? 0 : *std::min_element(rtts_ms.begin(), rtts_ms.end());
}

double PingStats::max() const {
  return rtts_ms.empty() ? 0 : *std::max_element(rtts_ms.begin(), rtts_ms.end());
}

double PingStats::percentile(double p) const {
  if (rtts_ms.empty()) return 0;
  if (p < 0 || p > 100) throw std::invalid_argument("percentile out of range");
  std::vector<double> sorted = rtts_ms;
  std::sort(sorted.begin(), sorted.end());
  double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  std::size_t lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

PingStats PingRunner::run(sim::Time start, std::size_t count, sim::Time interval) {
  PingStats stats;
  for (std::size_t i = 0; i < count; ++i) {
    sim::Time sent_at = start + static_cast<sim::Time>(i) * interval;
    ++stats.sent;
    auto reply = round_trip_(sent_at);
    if (!reply) {
      ++stats.lost;
      continue;
    }
    stats.rtts_ms.push_back(sim::to_millis(*reply - sent_at));
  }
  return stats;
}

}  // namespace endbox::workload
