// ICMP ping measurement (latency experiments: Fig 7, Fig 11, and the
// client-to-client latency of section V-G).
//
// A ping RTT is composed from closures so each experiment wires its own
// set-up: per-direction processing cost (client/EndBox/middlebox) plus
// network paths. Reports per-ping RTTs and summary statistics.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "sim/clock.hpp"

namespace endbox::workload {

struct PingStats {
  std::vector<double> rtts_ms;   ///< successful pings only
  std::uint64_t sent = 0;
  std::uint64_t lost = 0;

  double average() const;
  double min() const;
  double max() const;
  double percentile(double p) const;  ///< p in [0,100]
};

class PingRunner {
 public:
  /// Round-trip closure: given the send time, returns the reply arrival
  /// time, or nullopt when the ping was lost.
  using RoundTrip = std::function<std::optional<sim::Time>(sim::Time now)>;

  explicit PingRunner(RoundTrip round_trip) : round_trip_(std::move(round_trip)) {}

  /// Sends `count` pings starting at `start`, one per `interval`.
  PingStats run(sim::Time start, std::size_t count, sim::Time interval);

 private:
  RoundTrip round_trip_;
};

}  // namespace endbox::workload
