#include "workload/pageload.hpp"

#include <algorithm>
#include <cmath>

namespace endbox::workload {

std::vector<Site> generate_alexa_like_sites(std::size_t count, Rng& rng) {
  std::vector<Site> sites;
  sites.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Site site;
    // Object count: log-normal-ish, median ~30, long tail to ~150.
    double u = rng.uniform01();
    site.objects = static_cast<std::size_t>(8 + 25.0 * std::exp(1.2 * u * u * 2));
    site.objects = std::min<std::size_t>(site.objects, 180);
    site.object_bytes.reserve(site.objects);
    for (std::size_t o = 0; o < site.objects; ++o) {
      // Object sizes: mostly small (a few KB), occasional images >100 KB.
      double v = rng.uniform01();
      std::size_t bytes = v < 0.7
                              ? static_cast<std::size_t>(rng.uniform(800, 20'000))
                              : static_cast<std::size_t>(rng.uniform(20'000, 400'000));
      site.object_bytes.push_back(bytes);
    }
    // RTT: 10-80 ms for most sites, a long tail of distant origins.
    double w = rng.uniform01();
    double rtt_ms = w < 0.8 ? 10 + 70 * rng.uniform01() : 80 + 220 * rng.uniform01();
    site.rtt = sim::from_millis(rtt_ms);
    sites.push_back(std::move(site));
  }
  return sites;
}

sim::Duration page_load_time(const Site& site, const PageLoadConfig& config) {
  // Connection set-up: DNS + TCP handshake + TLS handshake = 3 RTTs.
  sim::Duration total = 3 * site.rtt;

  // Objects fetched over `parallel_connections` pipelines; each object
  // costs one request RTT plus its transfer time plus per-packet
  // processing at the client.
  unsigned lanes = std::max(1u, config.parallel_connections);
  std::vector<sim::Duration> lane_time(lanes, 0);
  for (std::size_t o = 0; o < site.object_bytes.size(); ++o) {
    std::size_t bytes = site.object_bytes[o];
    auto packets = static_cast<sim::Duration>((bytes + config.mtu - 1) / config.mtu);
    auto transfer = static_cast<sim::Duration>(static_cast<double>(bytes) * 8.0 /
                                               config.download_bps * 1e9);
    sim::Duration object_cost =
        site.rtt + transfer + packets * config.per_packet_cost;
    // Assign to the least-loaded lane (browsers keep connections busy).
    auto lane = std::min_element(lane_time.begin(), lane_time.end());
    *lane += object_cost;
  }
  total += *std::max_element(lane_time.begin(), lane_time.end());
  return total;
}

std::vector<double> page_load_cdf(const std::vector<Site>& sites,
                                  const PageLoadConfig& config) {
  std::vector<double> seconds;
  seconds.reserve(sites.size());
  for (const auto& site : sites)
    seconds.push_back(sim::to_seconds(
        static_cast<sim::Time>(page_load_time(site, config))));
  std::sort(seconds.begin(), seconds.end());
  return seconds;
}

}  // namespace endbox::workload
