// HTTP page-load model for the Alexa-top-1000 experiment (Fig 6).
//
// Each synthetic site has a number of objects, per-object sizes, and a
// server RTT drawn from heavy-tailed distributions calibrated to
// typical web measurements (tens of objects, tens-of-KB objects,
// 10-300 ms RTTs). Loading a page costs: DNS+TCP+TLS setup RTTs, then
// per-object request/response transfers over a download bandwidth,
// plus a per-packet client-side processing cost — the term EndBox adds.
// Because EndBox's per-packet cost is microseconds against network
// RTTs of milliseconds, the resulting CDFs nearly coincide, which is
// exactly the paper's observation.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "sim/clock.hpp"

namespace endbox::workload {

struct Site {
  std::size_t objects = 10;
  std::vector<std::size_t> object_bytes;
  sim::Duration rtt = 0;  ///< client <-> origin round trip
};

struct PageLoadConfig {
  double download_bps = 50e6;       ///< access-link bandwidth
  std::size_t mtu = 1500;
  /// Extra client-side processing per packet (EndBox's contribution;
  /// 0 for a direct connection).
  sim::Duration per_packet_cost = 0;
  /// Parallel connections a browser uses per site.
  unsigned parallel_connections = 6;
};

/// Generates `count` synthetic sites (deterministic given the RNG).
std::vector<Site> generate_alexa_like_sites(std::size_t count, Rng& rng);

/// Page load time for one site under the given configuration.
sim::Duration page_load_time(const Site& site, const PageLoadConfig& config);

/// Convenience: load times for all sites, in seconds, sorted ascending
/// (ready for CDF plotting).
std::vector<double> page_load_cdf(const std::vector<Site>& sites,
                                  const PageLoadConfig& config);

}  // namespace endbox::workload
