// iperf-style throughput measurement harness (the evaluation's tool of
// choice for Figs 8-10).
//
// Each traffic source is an adapter closure pair: `send` produces the
// tunnel wire messages for one application write and reports when the
// client CPU finished it; `serve` consumes one wire message at the
// server and reports whether an application write completed. The
// harness runs any number of sources either closed-loop (maximum rate,
// single-client Figs 8/9) or at a fixed offered rate (200 Mbps per
// client, Fig 10), over a shared bottleneck link, and reports goodput.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "common/bytes.hpp"
#include "netsim/link.hpp"
#include "sim/clock.hpp"

namespace endbox::workload {

struct SendOutcome {
  std::vector<Bytes> wire;  ///< tunnel messages (>= 1 per write when fragmented)
  sim::Time done = 0;       ///< client CPU completion
  std::uint32_t writes = 1; ///< application writes in this outcome (burst > 1
                            ///< sources produce several per send call)
};

struct ServeOutcome {
  bool delivered = false;   ///< an application write fully arrived
  sim::Time done = 0;       ///< server CPU completion
};

struct ServeBatchOutcome {
  std::uint32_t delivered = 0;  ///< application writes completed
  sim::Time done = 0;           ///< server CPU completion for the burst
};

struct IperfSource {
  /// Produces one application write of `payload` bytes at `now`.
  std::function<SendOutcome(sim::Time now)> send;
  /// Bits per second this source offers; 0 = closed loop (as fast as
  /// the client pipeline allows).
  double offered_bps = 0;
  /// Application write size (sets the inter-send gap in offered mode).
  std::size_t write_size = 1500;
  /// Per-source route to the server (e.g. access link + shared uplink
  /// in a star topology). When non-empty it carries this source's wire
  /// frames and IperfConfig::link is ignored for them.
  netsim::Path path;
};

struct IperfConfig {
  sim::Time duration = sim::from_seconds(1.0);
  /// Shared client->server bottleneck for sources without their own
  /// path; nullptr = infinitely fast wire.
  netsim::Link* link = nullptr;
};

struct IperfReport {
  double throughput_mbps = 0;        ///< application goodput at the server
  std::uint64_t writes_sent = 0;
  std::uint64_t writes_delivered = 0;
  std::uint64_t wire_messages = 0;
  sim::Time elapsed = 0;
};

class IperfHarness {
 public:
  using ServeFn = std::function<ServeOutcome(const Bytes& wire, sim::Time now)>;
  /// Batched drain: the whole frame train of one send, handed over once
  /// it has fully arrived (the last frame's arrival time).
  using ServeBatchFn =
      std::function<ServeBatchOutcome(std::span<const Bytes> wires, sim::Time now)>;
  /// Observes every server-side drain: frame count and arrival time of
  /// the train (1 frame for per-frame serves). This is the offered-load
  /// signal an AdaptiveReshardController consumes — the driver
  /// accumulates frames per control interval and feeds observe().
  using BurstObserver = std::function<void(std::size_t frames, sim::Time now)>;

  IperfHarness(ServeFn serve, IperfConfig config)
      : serve_(std::move(serve)), config_(config) {}

  /// Installs a batched server drain used for multi-frame sends (burst
  /// sources); single-frame sends stay on the per-frame path.
  void set_batch_serve(ServeBatchFn serve_batch) {
    serve_batch_ = std::move(serve_batch);
  }

  /// Installs the per-drain load observer (see BurstObserver).
  void set_burst_observer(BurstObserver observer) {
    burst_observer_ = std::move(observer);
  }

  void add_source(IperfSource source) { sources_.push_back(std::move(source)); }

  /// Runs all sources for the configured duration of virtual time.
  IperfReport run();

 private:
  ServeFn serve_;
  ServeBatchFn serve_batch_;
  BurstObserver burst_observer_;
  IperfConfig config_;
  std::vector<IperfSource> sources_;
};

}  // namespace endbox::workload
