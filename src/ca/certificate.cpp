#include "ca/certificate.hpp"

namespace endbox::ca {

Bytes Certificate::signed_portion() const {
  Bytes out = subject_key.serialize();
  out.insert(out.end(), mrenclave.begin(), mrenclave.end());
  put_u64(out, serial);
  return out;
}

Bytes Certificate::serialize() const {
  Bytes out = signed_portion();
  put_u16(out, static_cast<std::uint16_t>(signature.size()));
  append(out, signature);
  return out;
}

Result<Certificate> Certificate::deserialize(ByteView data) {
  try {
    ByteReader r(data);
    Certificate cert;
    cert.subject_key = crypto::RsaPublicKey::deserialize(r.view(16));
    auto mr = r.take(cert.mrenclave.size());
    std::copy(mr.begin(), mr.end(), cert.mrenclave.begin());
    cert.serial = r.u64();
    cert.signature = r.take(r.u16());
    if (!r.empty()) return err("Certificate: trailing bytes");
    return cert;
  } catch (const std::out_of_range&) {
    return err("Certificate: truncated");
  }
}

bool Certificate::verify(const crypto::RsaPublicKey& ca_key) const {
  return crypto::rsa_verify(ca_key, signed_portion(), signature);
}

}  // namespace endbox::ca
