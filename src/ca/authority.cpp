#include "ca/authority.hpp"

namespace endbox::ca {

CertificateAuthority::CertificateAuthority(Rng& rng,
                                           const sgx::AttestationService& ias)
    : rng_(rng),
      ias_(ias),
      key_(crypto::rsa_generate(rng)),
      // Config key must be encryptable to any enclave key (value < n for
      // 62-bit moduli), so draw 48 bits.
      config_key_(rng.uniform(1, (1ULL << 48) - 1)) {}

Result<Certificate> CertificateAuthority::issue_legacy_certificate(
    const crypto::RsaPublicKey& key) {
  Certificate cert;
  cert.subject_key = key;
  cert.mrenclave = {};  // no enclave behind this key
  cert.serial = next_serial_++;
  cert.signature = crypto::rsa_sign(key_, cert.signed_portion());
  return cert;
}

void CertificateAuthority::allow_measurement(const sgx::Measurement& measurement) {
  allowed_measurements_.insert(measurement);
}

Result<ProvisioningResponse> CertificateAuthority::provision(
    ByteView serialized_quote, const crypto::RsaPublicKey& enclave_key) {
  // Step 4: relay to IAS and check the signed verification report.
  auto avr = ias_.verify(serialized_quote);
  if (!avr.ok()) return err("CA: " + avr.error());
  if (!sgx::AttestationService::verify_avr(*avr, ias_.report_signing_public_key()))
    return err("CA: AVR signature invalid");
  if (!avr->is_valid) return err("CA: platform is not a genuine SGX CPU");

  // Known measurement only (the AVR echoes MRENCLAVE from the quote).
  if (!allowed_measurements_.count(avr->mrenclave))
    return err("CA: unknown enclave measurement");

  // The quote must bind the key being certified (anti-MITM).
  if (avr->report_data != sgx::bind_report_data(enclave_key.serialize()))
    return err("CA: quote does not bind the presented public key");

  // Step 5: sign the public key into a certificate.
  Certificate cert;
  cert.subject_key = enclave_key;
  cert.mrenclave = avr->mrenclave;
  cert.serial = next_serial_++;
  cert.signature = crypto::rsa_sign(key_, cert.signed_portion());

  // Step 6: provision the shared config key, encrypted to the enclave.
  ProvisioningResponse response;
  response.certificate = cert;
  response.encrypted_config_key =
      crypto::rsa_encrypt(enclave_key, config_key_ % enclave_key.n);
  return response;
}

}  // namespace endbox::ca
