// The network owner's certificate authority (Fig 4, steps 3-6).
//
// The CA receives a quote from a client enclave, relays it to the IAS,
// checks the verification report and the measurement allow-list, and —
// when everything holds — signs the enclave's public key into a
// certificate and provisions the symmetric config-file key encrypted to
// that public key. Unattested enclaves never obtain certificates, so
// they can never connect to the VPN server (R3/R2).
#pragma once

#include <set>

#include "ca/certificate.hpp"
#include "sgx/ias.hpp"

namespace endbox::ca {

/// What the CA returns to a successfully attested enclave (step 6).
struct ProvisioningResponse {
  Certificate certificate;
  Bytes encrypted_config_key;  ///< config key RSA-encrypted to the enclave key
};

class CertificateAuthority {
 public:
  CertificateAuthority(Rng& rng, const sgx::AttestationService& ias);

  /// Pre-deployed into enclave binaries at compile time (section III-C).
  const crypto::RsaPublicKey& public_key() const { return key_.pub; }

  /// Adds an enclave measurement to the allow-list of known builds.
  void allow_measurement(const sgx::Measurement& measurement);

  /// The symmetric key used to encrypt/sign config files (section III-E).
  std::uint64_t config_key() const { return config_key_; }

  /// Full provisioning flow: quote -> IAS -> AVR check -> measurement
  /// check -> certificate + encrypted config key. The quote's report
  /// data must bind the enclave public key (hash match) so a MITM
  /// cannot swap in its own key.
  Result<ProvisioningResponse> provision(ByteView serialized_quote,
                                         const crypto::RsaPublicKey& enclave_key);

  /// Conventional PKI enrolment used by baseline (non-EndBox) VPN
  /// deployments in the evaluation: signs a key without attestation.
  /// The certificate carries a zero measurement.
  Result<Certificate> issue_legacy_certificate(const crypto::RsaPublicKey& key);

  /// Admin-side signing key for configuration bundles (the CA and the
  /// network administrators are the same trust domain, section III-E).
  const crypto::RsaKeyPair& admin_signing_key() const { return key_; }

  std::uint64_t certificates_issued() const { return next_serial_ - 1; }

 private:
  Rng& rng_;
  const sgx::AttestationService& ias_;
  crypto::RsaKeyPair key_;
  std::set<sgx::Measurement> allowed_measurements_;
  std::uint64_t config_key_;
  std::uint64_t next_serial_ = 1;
};

}  // namespace endbox::ca
