// Certificates binding an enclave-resident public key to an attested
// enclave measurement, signed by the network owner's CA (Fig 4).
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "crypto/rsa.hpp"
#include "sgx/quote.hpp"

namespace endbox::ca {

struct Certificate {
  crypto::RsaPublicKey subject_key;   ///< the enclave's public key
  sgx::Measurement mrenclave{};       ///< attested measurement
  std::uint64_t serial = 0;
  Bytes signature;                    ///< CA signature over the fields above

  Bytes signed_portion() const;
  Bytes serialize() const;
  static Result<Certificate> deserialize(ByteView data);

  /// Verifies the CA signature with the (pre-deployed) CA public key.
  bool verify(const crypto::RsaPublicKey& ca_key) const;
};

}  // namespace endbox::ca
